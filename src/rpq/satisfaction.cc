#include "rpq/satisfaction.h"

#include <algorithm>

#include "automata/ops.h"
#include "rpq/alphabet.h"

namespace rpqi {

TwoWayNfa BuildSatisfactionAutomaton(const Nfa& query_input,
                                     const SatisfactionOptions& options) {
  const Nfa query = RemoveEpsilon(query_input);
  const int n = query.NumStates();
  RPQI_CHECK_GE(options.total_symbols, query.num_symbols() + 1);
  RPQI_CHECK_GE(options.dollar_symbol, query.num_symbols());
  for (int t : options.transparent) RPQI_CHECK_GE(t, query.num_symbols());

  TwoWayNfa automaton(options.total_symbols);
  // lint: allow-unbudgeted 2n+1 states, fixed by the Section 3 layout
  // State layout: forward copies [0,n), backward copies [n,2n), final = 2n.
  for (int s = 0; s < 2 * n + 1; ++s) automaton.AddState();
  const int final_state = 2 * n;
  auto backward = [n](int s) { return n + s; };

  for (int s = 0; s < n; ++s) {
    automaton.SetInitial(s, query.IsInitial(s));
  }
  automaton.SetAccepting(final_state);

  // Group 1 (paper, Section 3): at any point a forward-mode state may turn
  // around — move the head one cell left and enter backward mode.
  for (int s = 0; s < n; ++s) {
    for (int symbol = 0; symbol < options.total_symbols; ++symbol) {
      automaton.AddTransition(s, symbol, backward(s), Move::kLeft);
    }
  }

  // Group 2: each query transition s1 --r--> s2 is performed forward (reading
  // r, moving right) or backward (in backward mode, reading r⁻ of the cell the
  // head sits on, staying put and returning to forward mode).
  for (int s1 = 0; s1 < n; ++s1) {
    for (const Nfa::Transition& t : query.TransitionsFrom(s1)) {
      automaton.AddTransition(s1, t.symbol, t.to, Move::kRight);
      automaton.AddTransition(backward(s1),
                              SignedAlphabet::InverseSymbol(t.symbol), t.to,
                              Move::kStay);
    }
  }

  // Group 3: on the terminator, an accepting query state moves past the end
  // of the word into the (otherwise stuck) final state. Because the final
  // state has no outgoing transitions, a premature firing on an inner $ simply
  // dies; acceptance requires reaching position |word|.
  for (int s = 0; s < n; ++s) {
    if (query.IsAccepting(s)) {
      automaton.AddTransition(s, options.dollar_symbol, final_state,
                              Move::kRight);
    }
  }

  // Skip moves over markers: transparent symbols and inner $ separators do not
  // correspond to database edges, so the evaluation glides over them, in the
  // current direction, without changing query state.
  std::vector<int> skippable = options.transparent;
  skippable.push_back(options.dollar_symbol);
  for (int s = 0; s < n; ++s) {
    for (int symbol : skippable) {
      automaton.AddTransition(s, symbol, s, Move::kRight);
      automaton.AddTransition(backward(s), symbol, backward(s), Move::kLeft);
    }
  }

  return automaton;
}

bool WordSatisfies(const Nfa& query, const std::vector<int>& word) {
  SatisfactionOptions options;
  options.total_symbols = query.num_symbols() + 1;
  options.dollar_symbol = query.num_symbols();
  TwoWayNfa automaton = BuildSatisfactionAutomaton(query, options);
  std::vector<int> terminated = word;
  terminated.push_back(options.dollar_symbol);
  return SimulateTwoWay(automaton, terminated);
}

bool WordSatisfiesViaLineDb(const Nfa& query_input,
                            const std::vector<int>& word) {
  const Nfa query = RemoveEpsilon(query_input);
  const int num_nodes = static_cast<int>(word.size()) + 1;
  const int num_states = query.NumStates();

  // Reachability over (query state, line-db node). From node v, symbol σ can
  // be traversed to v+1 if word[v] == σ, or to v−1 if word[v−1] == σ⁻.
  std::vector<char> visited(static_cast<size_t>(num_nodes) * num_states, 0);
  std::vector<std::pair<int, int>> stack;
  auto visit = [&](int state, int node) {
    size_t index = static_cast<size_t>(node) * num_states + state;
    if (!visited[index]) {
      visited[index] = 1;
      stack.push_back({state, node});
    }
  };
  for (int s : query.InitialStates()) visit(s, 0);

  while (!stack.empty()) {
    auto [state, node] = stack.back();
    stack.pop_back();
    for (const Nfa::Transition& t : query.TransitionsFrom(state)) {
      if (node + 1 < num_nodes && word[node] == t.symbol) {
        visit(t.to, node + 1);
      }
      if (node - 1 >= 0 &&
          word[node - 1] == SignedAlphabet::InverseSymbol(t.symbol)) {
        visit(t.to, node - 1);
      }
    }
  }
  for (int s = 0; s < num_states; ++s) {
    if (query.IsAccepting(s) &&
        visited[static_cast<size_t>(num_nodes - 1) * num_states + s]) {
      return true;
    }
  }
  return false;
}

}  // namespace rpqi
