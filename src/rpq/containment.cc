#include "rpq/containment.h"

#include "automata/lazy.h"
#include "automata/ops.h"
#include "automata/table_dfa.h"
#include "rpq/satisfaction.h"

namespace rpqi {

StatusOr<bool> RpqiContainedWithBudget(const Nfa& q1, const Nfa& q2,
                                       Budget* budget) {
  RPQI_CHECK_EQ(q1.num_symbols(), q2.num_symbols());
  const int total_symbols = q1.num_symbols() + 1;
  const int dollar = q1.num_symbols();

  // L(q1) · $ over the extended alphabet.
  Nfa left = Concat(WidenAlphabet(q1, total_symbols),
                    SingleWordNfa(total_symbols, {dollar}));

  SatisfactionOptions options;
  options.total_symbols = total_symbols;
  options.dollar_symbol = dollar;
  TwoWayNfa satisfies_q2 = BuildSatisfactionAutomaton(q2, options);

  LazySubsetDfa left_dfa(left);
  LazyTableDfa not_satisfies(satisfies_q2, /*complement=*/true);
  LazyProductDfa product({&left_dfa, &not_satisfies});

  EmptinessResult result =
      FindAcceptedWord(&product, /*max_states=*/int64_t{1} << 24, budget);
  if (result.outcome == EmptinessResult::Outcome::kLimitExceeded) {
    if (!result.status.ok()) return result.status;
    return Status::ResourceExhausted("containment check exceeded its state budget");
  }
  return result.outcome == EmptinessResult::Outcome::kEmpty;
}

bool RpqiContained(const Nfa& q1, const Nfa& q2) {
  StatusOr<bool> result = RpqiContainedWithBudget(q1, q2, nullptr);
  RPQI_CHECK(result.ok()) << result.status().ToString();
  return *result;
}

bool RpqiEquivalent(const Nfa& q1, const Nfa& q2) {
  return RpqiContained(q1, q2) && RpqiContained(q2, q1);
}

}  // namespace rpqi
