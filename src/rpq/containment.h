#ifndef RPQI_RPQ_CONTAINMENT_H_
#define RPQI_RPQ_CONTAINMENT_H_

#include "automata/nfa.h"
#include "base/budget.h"
#include "base/status.h"

namespace rpqi {

/// Decides containment of RPQIs: ans(q1, B) ⊆ ans(q2, B) for every database
/// B. By the homomorphism argument underlying Theorem 4, this holds iff every
/// word of L(q1) *satisfies* q2; the check intersects L(q1)·$ with the
/// complement of the satisfaction automaton A_q2 (translated on the fly by the
/// table construction) and tests emptiness.
///
/// Both queries must be over the same signed alphabet Σ±.
bool RpqiContained(const Nfa& q1, const Nfa& q2);

/// Budgeted variant: honors the (borrowed, nullable) budget's deadline /
/// cancellation / state quota during the emptiness search and returns the
/// typed error on exhaustion instead of aborting.
StatusOr<bool> RpqiContainedWithBudget(const Nfa& q1, const Nfa& q2,
                                       Budget* budget);

/// ans-equality on every database.
bool RpqiEquivalent(const Nfa& q1, const Nfa& q2);

}  // namespace rpqi

#endif  // RPQI_RPQ_CONTAINMENT_H_
