#ifndef RPQI_RPQ_COMPILE_H_
#define RPQI_RPQ_COMPILE_H_

#include <string_view>
#include <vector>

#include "automata/nfa.h"
#include "base/status.h"
#include "regex/ast.h"
#include "rpq/alphabet.h"

namespace rpqi {

/// Registers every relation mentioned in `expressions` into `alphabet`.
void RegisterRelations(const std::vector<RegexPtr>& expressions,
                       SignedAlphabet* alphabet);

/// Thompson construction: compiles an RPQI expression into an NFA over the
/// signed alphabet. Every atom's relation must already be registered.
StatusOr<Nfa> CompileRegex(const RegexPtr& expression,
                           const SignedAlphabet& alphabet);

/// Compiles, aborting on unknown relations. For tests and examples.
Nfa MustCompileRegex(const RegexPtr& expression, const SignedAlphabet& alphabet);

/// Parses and compiles in one step (registering relations on the fly).
Nfa MustCompileRegex(std::string_view text, SignedAlphabet* alphabet);

/// Maps every symbol of a Σ±-word to its "inverse word": reverses the word
/// and inverts each symbol, i.e. the label of the same semipath walked
/// backwards.
std::vector<int> InverseWord(const std::vector<int>& word);

/// Reinterprets an automaton over Σ± as its inverse query: L(result) =
/// {InverseWord(w) : w ∈ L(a)} — used for def(p⁻) = inv(def(p)) in Section 4.
Nfa InverseAutomaton(const Nfa& a);

}  // namespace rpqi

#endif  // RPQI_RPQ_COMPILE_H_
