#ifndef RPQI_RPQ_SATISFACTION_H_
#define RPQI_RPQ_SATISFACTION_H_

#include <vector>

#include "automata/nfa.h"
#include "automata/two_way.h"

namespace rpqi {

/// Parameters for the Section 3 construction of the two-way automaton A_E
/// that recognizes the words satisfying an RPQI E.
///
/// The automaton runs over an extended alphabet of `total_symbols` symbols:
/// the query's own Σ± symbols occupy [0, query.num_symbols()), and ids at or
/// above that may serve as the terminator `dollar_symbol` or as `transparent`
/// markers that the evaluation skips in both directions (Section 4 interleaves
/// view names and $ separators with the payload; Section 5.2 adds object
/// constants, which are handled separately in answer/).
struct SatisfactionOptions {
  int total_symbols = 0;
  int dollar_symbol = 0;
  std::vector<int> transparent;
};

/// Builds A_E (Section 3, generalized): a two-way automaton accepting exactly
/// the words `u · $` whose payload (the subsequence of Σ± symbols of u)
/// satisfies the query E, i.e. the line database of the payload admits a
/// semipath conforming to E from its first to its last node.
///
/// States: for each query state s a forward copy and a "backward mode" copy
/// s⁻; plus one final state. The paper's three transition groups are
/// implemented verbatim, with additional skip moves over transparent symbols
/// and inner $ separators in both modes.
TwoWayNfa BuildSatisfactionAutomaton(const Nfa& query,
                                     const SatisfactionOptions& options);

/// Theorem 2 decision: does `word` (over Σ±) satisfy the query? Builds A_E
/// over the minimal extended alphabet and simulates it on `word · $`.
bool WordSatisfies(const Nfa& query, const std::vector<int>& word);

/// Independent reference implementation of WordSatisfies used for
/// cross-validation: evaluates the query over the line database of `word` by
/// product-graph reachability, without two-way automata.
bool WordSatisfiesViaLineDb(const Nfa& query, const std::vector<int>& word);

}  // namespace rpqi

#endif  // RPQI_RPQ_SATISFACTION_H_
