#include "rpq/compile.h"

#include <algorithm>

#include "automata/ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "regex/parser.h"

namespace rpqi {

void RegisterRelations(const std::vector<RegexPtr>& expressions,
                       SignedAlphabet* alphabet) {
  std::vector<std::string> names;
  for (const RegexPtr& e : expressions) CollectAtomNames(e, &names);
  for (const std::string& name : names) alphabet->AddRelation(name);
}

namespace {

/// Thompson fragment: one entry, one exit, built inside `nfa`.
struct Fragment {
  int entry;
  int exit;
};

StatusOr<Fragment> Build(const RegexPtr& e, const SignedAlphabet& alphabet,
                         Nfa* nfa) {
  switch (e->kind) {
    case RegexKind::kEmptySet: {
      Fragment f{nfa->AddState(), nfa->AddState()};
      return f;  // no connection: accepts nothing
    }
    case RegexKind::kEpsilon: {
      Fragment f{nfa->AddState(), nfa->AddState()};
      nfa->AddTransition(f.entry, kEpsilon, f.exit);
      return f;
    }
    case RegexKind::kAtom: {
      int symbol = alphabet.SymbolId(e->atom_name, e->atom_inverse);
      if (symbol < 0) {
        return Status::InvalidArgument("unregistered relation '" +
                                       e->atom_name + "'");
      }
      Fragment f{nfa->AddState(), nfa->AddState()};
      nfa->AddTransition(f.entry, symbol, f.exit);
      return f;
    }
    case RegexKind::kConcat: {
      StatusOr<Fragment> left = Build(e->left, alphabet, nfa);
      if (!left.ok()) return left.status();
      StatusOr<Fragment> right = Build(e->right, alphabet, nfa);
      if (!right.ok()) return right.status();
      nfa->AddTransition(left->exit, kEpsilon, right->entry);
      return Fragment{left->entry, right->exit};
    }
    case RegexKind::kUnion: {
      StatusOr<Fragment> left = Build(e->left, alphabet, nfa);
      if (!left.ok()) return left.status();
      StatusOr<Fragment> right = Build(e->right, alphabet, nfa);
      if (!right.ok()) return right.status();
      Fragment f{nfa->AddState(), nfa->AddState()};
      nfa->AddTransition(f.entry, kEpsilon, left->entry);
      nfa->AddTransition(f.entry, kEpsilon, right->entry);
      nfa->AddTransition(left->exit, kEpsilon, f.exit);
      nfa->AddTransition(right->exit, kEpsilon, f.exit);
      return f;
    }
    case RegexKind::kStar: {
      StatusOr<Fragment> inner = Build(e->left, alphabet, nfa);
      if (!inner.ok()) return inner.status();
      Fragment f{nfa->AddState(), nfa->AddState()};
      nfa->AddTransition(f.entry, kEpsilon, f.exit);
      nfa->AddTransition(f.entry, kEpsilon, inner->entry);
      nfa->AddTransition(inner->exit, kEpsilon, inner->entry);
      nfa->AddTransition(inner->exit, kEpsilon, f.exit);
      return f;
    }
  }
  RPQI_CHECK(false) << "unreachable";
  return Status::InvalidArgument("corrupt AST");
}

}  // namespace

StatusOr<Nfa> CompileRegex(const RegexPtr& expression,
                           const SignedAlphabet& alphabet) {
  static const obs::Counter compiles("compile.regexes");
  static const obs::Counter compiled_states("compile.nfa_states");
  obs::Span span("compile.regex");
  Nfa nfa(alphabet.NumSymbols());
  StatusOr<Fragment> f = Build(expression, alphabet, &nfa);
  if (!f.ok()) return f.status();
  nfa.SetInitial(f->entry);
  nfa.SetAccepting(f->exit);
  Nfa result = RemoveEpsilon(Trim(nfa));
  compiles.Increment();
  compiled_states.Add(result.NumStates());
  span.Note("states", result.NumStates());
  return result;
}

Nfa MustCompileRegex(const RegexPtr& expression,
                     const SignedAlphabet& alphabet) {
  StatusOr<Nfa> result = CompileRegex(expression, alphabet);
  RPQI_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

Nfa MustCompileRegex(std::string_view text, SignedAlphabet* alphabet) {
  RegexPtr expression = MustParseRegex(text);
  RegisterRelations({expression}, alphabet);
  return MustCompileRegex(expression, *alphabet);
}

std::vector<int> InverseWord(const std::vector<int>& word) {
  std::vector<int> result(word.rbegin(), word.rend());
  for (int& symbol : result) symbol = SignedAlphabet::InverseSymbol(symbol);
  return result;
}

Nfa InverseAutomaton(const Nfa& a) {
  Nfa reversed = ReverseNfa(a);
  // lint: allow-unbudgeted same state count as the input
  Nfa result(reversed.num_symbols());
  for (int s = 0; s < reversed.NumStates(); ++s) result.AddState();
  for (int s = 0; s < reversed.NumStates(); ++s) {
    result.SetInitial(s, reversed.IsInitial(s));
    result.SetAccepting(s, reversed.IsAccepting(s));
    for (const Nfa::Transition& t : reversed.TransitionsFrom(s)) {
      int symbol = t.symbol == kEpsilon
                       ? kEpsilon
                       : SignedAlphabet::InverseSymbol(t.symbol);
      result.AddTransition(s, symbol, t.to);
    }
  }
  return result;
}

}  // namespace rpqi
