#ifndef RPQI_RPQ_ALPHABET_H_
#define RPQI_RPQ_ALPHABET_H_

#include <string>
#include <vector>

#include "base/interner.h"
#include "base/logging.h"

namespace rpqi {

/// The signed alphabet Σ± of Section 2: for every database relation p there
/// are two symbols, p (forward traversal) and p⁻ (inverse traversal). A
/// relation with id k owns symbols 2k (forward) and 2k+1 (inverse), so the
/// inverse of a symbol is computed by flipping its low bit.
class SignedAlphabet {
 public:
  SignedAlphabet() = default;

  /// Registers a relation name; returns its relation id (idempotent).
  int AddRelation(const std::string& name) { return relations_.Intern(name); }

  /// Relation id of `name`, or -1 if unknown.
  int RelationId(const std::string& name) const {
    return relations_.Find(name);
  }

  int NumRelations() const { return relations_.size(); }
  /// Number of symbols in Σ± (= 2 × relations).
  int NumSymbols() const { return 2 * relations_.size(); }

  static int ForwardSymbol(int relation) { return 2 * relation; }
  static int InverseSymbolOfRelation(int relation) { return 2 * relation + 1; }
  /// The paper's r ↦ r⁻ on symbols: p ↦ p⁻ and p⁻ ↦ p.
  static int InverseSymbol(int symbol) { return symbol ^ 1; }
  static bool IsInverseSymbol(int symbol) { return (symbol & 1) != 0; }
  static int RelationOfSymbol(int symbol) { return symbol >> 1; }

  /// Symbol id of `name`, inverted if `inverse`; -1 if the name is unknown.
  int SymbolId(const std::string& name, bool inverse) const {
    int relation = relations_.Find(name);
    if (relation < 0) return -1;
    return inverse ? InverseSymbolOfRelation(relation)
                   : ForwardSymbol(relation);
  }

  const std::string& RelationName(int relation) const {
    return relations_.NameOf(relation);
  }

  /// Printable name of a symbol: "p" or "p^-".
  std::string SymbolName(int symbol) const {
    RPQI_CHECK(0 <= symbol && symbol < NumSymbols());
    std::string name = relations_.NameOf(RelationOfSymbol(symbol));
    if (IsInverseSymbol(symbol)) name += "^-";
    return name;
  }

 private:
  StringInterner relations_;
};

}  // namespace rpqi

#endif  // RPQI_RPQ_ALPHABET_H_
