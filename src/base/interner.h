#ifndef RPQI_BASE_INTERNER_H_
#define RPQI_BASE_INTERNER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "base/logging.h"
#include "obs/metrics.h"

namespace rpqi {

/// Maps canonical state encodings (vectors of 64-bit words) to dense integer
/// ids, retaining the encodings for reverse lookup. This is the backbone of
/// every on-the-fly automaton construction: lazily discovered states are
/// interned so that product/searches operate over small integers.
class WordVectorInterner {
 public:
  WordVectorInterner() = default;

  WordVectorInterner(const WordVectorInterner&) = delete;
  WordVectorInterner& operator=(const WordVectorInterner&) = delete;

  /// Returns the dense id for `key`, creating one if never seen.
  int Intern(const std::vector<uint64_t>& key) {
    return InternHashed(key, HashWords(key));
  }

  /// Like Intern, but with `HashWords(key)` precomputed by the caller (e.g. a
  /// Bitset's cached hash), so the key bytes are scanned at most once. The
  /// primary index is an open-addressed table mapping the full 64-bit hash to
  /// one id (interning is the innermost operation of every lazy Step, so the
  /// index must not pay a node allocation or pointer chase per probe);
  /// distinct keys sharing a hash (vanishingly rare) spill into a by-key
  /// overflow map.
  int InternHashed(const std::vector<uint64_t>& key, uint64_t hash) {
    if ((used_slots_ + 1) * 4 > capacity_ * 3) Grow();
    const size_t mask = capacity_ - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (slot_ids_[i] != -1) {
      if (slot_hashes_[i] == hash) {
        int id = slot_ids_[i];
        if (keys_[id] == key) return id;
        // Full-hash collision between distinct keys: rare enough that one
        // counter bump per hit is free relative to the map operation.
        static const obs::Counter overflow_hits("interner.overflow_hits");
        overflow_hits.Increment();
        auto [it, inserted] = overflow_.try_emplace(key, size());
        if (inserted) keys_.push_back(key);
        return it->second;
      }
      i = (i + 1) & mask;
    }
    int id = size();
    slot_ids_[i] = id;
    slot_hashes_[i] = hash;
    ++used_slots_;
    keys_.push_back(key);
    return id;
  }

  /// Id for `key` if already interned, else -1.
  int Find(const std::vector<uint64_t>& key) const {
    return FindHashed(key, HashWords(key));
  }

  int FindHashed(const std::vector<uint64_t>& key, uint64_t hash) const {
    if (capacity_ == 0) return -1;
    const size_t mask = capacity_ - 1;
    for (size_t i = static_cast<size_t>(hash) & mask; slot_ids_[i] != -1;
         i = (i + 1) & mask) {
      if (slot_hashes_[i] != hash) continue;
      int id = slot_ids_[i];
      if (keys_[id] == key) return id;
      auto overflow_it = overflow_.find(key);
      return overflow_it == overflow_.end() ? -1 : overflow_it->second;
    }
    return -1;
  }

  const std::vector<uint64_t>& KeyOf(int id) const {
    RPQI_CHECK(0 <= id && id < static_cast<int>(keys_.size()));
    return keys_[id];
  }

  int size() const { return static_cast<int>(keys_.size()); }

 private:
  /// Doubles the open-addressed table (initially 64 slots) and re-inserts the
  /// stored (hash, id) pairs; key bytes are never touched on rehash, and the
  /// by-key overflow map is a separate container, so its entries survive
  /// untouched.
  void Grow() {
    static const obs::Counter rehashes("interner.rehashes");
    rehashes.Increment();
    size_t new_capacity = capacity_ == 0 ? 64 : capacity_ * 2;
    std::vector<int> new_ids(new_capacity, -1);
    std::vector<uint64_t> new_hashes(new_capacity, 0);
    const size_t mask = new_capacity - 1;
    for (size_t i = 0; i < capacity_; ++i) {
      if (slot_ids_[i] == -1) continue;
      size_t j = static_cast<size_t>(slot_hashes_[i]) & mask;
      while (new_ids[j] != -1) j = (j + 1) & mask;
      new_ids[j] = slot_ids_[i];
      new_hashes[j] = slot_hashes_[i];
    }
    slot_ids_ = std::move(new_ids);
    slot_hashes_ = std::move(new_hashes);
    capacity_ = new_capacity;
  }

  // Open-addressed primary index: HashWords(key) -> id, linear probing over
  // power-of-two capacity; slot_ids_[i] == -1 marks an empty slot.
  std::vector<int> slot_ids_;
  std::vector<uint64_t> slot_hashes_;
  size_t capacity_ = 0;
  size_t used_slots_ = 0;
  std::unordered_map<std::vector<uint64_t>, int, WordVectorHash> overflow_;
  std::deque<std::vector<uint64_t>> keys_;  // id -> key (stable addresses)
};

/// Interns strings (node names, relation names) to dense ids.
class StringInterner {
 public:
  StringInterner() = default;

  StringInterner(const StringInterner&) = default;
  StringInterner& operator=(const StringInterner&) = default;

  int Intern(const std::string& name) {
    auto [it, inserted] = ids_.try_emplace(name, static_cast<int>(names_.size()));
    if (inserted) names_.push_back(name);
    return it->second;
  }

  int Find(const std::string& name) const {
    auto it = ids_.find(name);
    return it == ids_.end() ? -1 : it->second;
  }

  const std::string& NameOf(int id) const {
    RPQI_CHECK(0 <= id && id < static_cast<int>(names_.size()));
    return names_[id];
  }

  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::unordered_map<std::string, int> ids_;
  std::vector<std::string> names_;
};

}  // namespace rpqi

#endif  // RPQI_BASE_INTERNER_H_
