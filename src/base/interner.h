#ifndef RPQI_BASE_INTERNER_H_
#define RPQI_BASE_INTERNER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "base/logging.h"

namespace rpqi {

/// Maps canonical state encodings (vectors of 64-bit words) to dense integer
/// ids, retaining the encodings for reverse lookup. This is the backbone of
/// every on-the-fly automaton construction: lazily discovered states are
/// interned so that product/searches operate over small integers.
class WordVectorInterner {
 public:
  WordVectorInterner() = default;

  WordVectorInterner(const WordVectorInterner&) = delete;
  WordVectorInterner& operator=(const WordVectorInterner&) = delete;

  /// Returns the dense id for `key`, creating one if never seen.
  int Intern(const std::vector<uint64_t>& key) {
    auto [it, inserted] = ids_.try_emplace(key, static_cast<int>(keys_.size()));
    if (inserted) keys_.push_back(&it->first);
    return it->second;
  }

  /// Id for `key` if already interned, else -1.
  int Find(const std::vector<uint64_t>& key) const {
    auto it = ids_.find(key);
    return it == ids_.end() ? -1 : it->second;
  }

  const std::vector<uint64_t>& KeyOf(int id) const {
    RPQI_CHECK(0 <= id && id < static_cast<int>(keys_.size()));
    return *keys_[id];
  }

  int size() const { return static_cast<int>(keys_.size()); }

 private:
  std::unordered_map<std::vector<uint64_t>, int, WordVectorHash> ids_;
  std::deque<const std::vector<uint64_t>*> keys_;
};

/// Interns strings (node names, relation names) to dense ids.
class StringInterner {
 public:
  StringInterner() = default;

  StringInterner(const StringInterner&) = default;
  StringInterner& operator=(const StringInterner&) = default;

  int Intern(const std::string& name) {
    auto [it, inserted] = ids_.try_emplace(name, static_cast<int>(names_.size()));
    if (inserted) names_.push_back(name);
    return it->second;
  }

  int Find(const std::string& name) const {
    auto it = ids_.find(name);
    return it == ids_.end() ? -1 : it->second;
  }

  const std::string& NameOf(int id) const {
    RPQI_CHECK(0 <= id && id < static_cast<int>(names_.size()));
    return names_[id];
  }

  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::unordered_map<std::string, int> ids_;
  std::vector<std::string> names_;
};

}  // namespace rpqi

#endif  // RPQI_BASE_INTERNER_H_
