#ifndef RPQI_BASE_HASH_H_
#define RPQI_BASE_HASH_H_

#include <cstdint>
#include <cstddef>
#include <vector>

#include "base/logging.h"

namespace rpqi {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // Derived from the 64-bit finalizer of MurmurHash3.
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  value *= 0xc4ceb9fe1a85ec53ULL;
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

/// Hashes a span of 64-bit words; used to intern lazily-constructed automaton
/// states whose canonical encoding is a word vector.
inline uint64_t HashWords(const uint64_t* words, size_t count) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < count; ++i) h = HashCombine(h, words[i]);
  return h;
}

inline uint64_t HashWords(const std::vector<uint64_t>& words) {
  return HashWords(words.data(), words.size());
}

struct WordVectorHash {
  size_t operator()(const std::vector<uint64_t>& words) const {
    return static_cast<size_t>(HashWords(words));
  }
};

/// Collision-free packing of two non-negative ids (< 2^32 each) into one
/// 64-bit map key. Use this instead of ad-hoc `a * N + b` packings, whose
/// arithmetic silently collides once ids outgrow the chosen multiplier.
inline uint64_t PairKey(int64_t a, int64_t b) {
  RPQI_CHECK_GE(a, 0);
  RPQI_CHECK_GE(b, 0);
  RPQI_CHECK_LT(a, int64_t{1} << 32);
  RPQI_CHECK_LT(b, int64_t{1} << 32);
  return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
}

inline int PairKeyFirst(uint64_t key) { return static_cast<int>(key >> 32); }
inline int PairKeySecond(uint64_t key) {
  return static_cast<int>(key & 0xffffffffULL);
}

}  // namespace rpqi

#endif  // RPQI_BASE_HASH_H_
