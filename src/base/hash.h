#ifndef RPQI_BASE_HASH_H_
#define RPQI_BASE_HASH_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace rpqi {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // Derived from the 64-bit finalizer of MurmurHash3.
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  value *= 0xc4ceb9fe1a85ec53ULL;
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

/// Hashes a span of 64-bit words; used to intern lazily-constructed automaton
/// states whose canonical encoding is a word vector.
inline uint64_t HashWords(const std::vector<uint64_t>& words) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t w : words) h = HashCombine(h, w);
  return h;
}

struct WordVectorHash {
  size_t operator()(const std::vector<uint64_t>& words) const {
    return static_cast<size_t>(HashWords(words));
  }
};

}  // namespace rpqi

#endif  // RPQI_BASE_HASH_H_
