#include "base/thread_pool.h"

#include <algorithm>
#include <memory>
#include <system_error>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace rpqi {

namespace {

std::atomic<int> global_thread_count{1};

/// Counts worker threads both pool kinds failed to spawn; each failure
/// degrades the pool to fewer workers instead of leaking an exception into
/// ParallelFor/TrySubmit callers.
const obs::Counter& SpawnFailures() {
  static const obs::Counter counter("thread_pool.spawn_failures");
  return counter;
}

/// Backlog of every WorkerPool in the process (they are not created
/// concurrently in practice: one per Serve call / transport).
const obs::Gauge& QueueDepthGauge() {
  static const obs::Gauge gauge("worker_pool.queue_depth");
  return gauge;
}

/// Time each task sat queued before a worker picked it up.
const obs::Histogram& QueueWaitHistogram() {
  static const obs::Histogram histogram("worker_pool.queue_wait_us");
  return histogram;
}

}  // namespace

int GlobalThreadCount() {
  // order: plain configuration cell; no data is published through it
  return global_thread_count.load(std::memory_order_relaxed);
}

void SetGlobalThreadCount(int threads) {
  // order: plain configuration cell; no data is published through it
  global_thread_count.store(std::max(1, threads), std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int num_threads) {
  int background = std::max(0, num_threads - 1);
  workers_.reserve(background);
  for (int i = 0; i < background; ++i) {
    // std::thread construction fails with std::system_error under thread
    // exhaustion; the pool degrades to the workers it already has (zero is
    // fine — ParallelFor then runs serially on the caller) instead of letting
    // the exception escape into a ParallelFor caller mid-pipeline.
    if (RPQI_FAULT_FIRED("thread_pool.spawn")) {
      SpawnFailures().Increment();
      break;
    }
    try {
      workers_.emplace_back([this] { WorkerLoop(); });
    } catch (const std::system_error&) {
      SpawnFailures().Increment();
      break;
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&pool_mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

// Reads count_/body_ without pool_mu_: both are frozen for the whole batch —
// written under pool_mu_ before the epoch bump that wakes the workers
// (acquiring pool_mu_ in WorkerLoop orders those writes before the reads
// here), and run_mu_ blocks the next batch until every reader has reported
// done via busy_.
//
// lint: allow-no-tsa the epoch/busy protocol above freezes count_/body_
void ThreadPool::Drain() RPQI_NO_THREAD_SAFETY_ANALYSIS {
  while (true) {
    // order: iteration claims need no ordering, only atomicity; the body's
    // own results are published by the busy_ handshake under pool_mu_
    int64_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) return;
    (*body_)(i);
  }
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& body) {
  static const obs::Counter batches("thread_pool.parallel_fors");
  static const obs::Counter items("thread_pool.items");
  if (count <= 0) return;
  batches.Increment();
  items.Add(count);
  if (workers_.empty()) {
    for (int64_t i = 0; i < count; ++i) body(i);
    return;
  }
  // One batch at a time: the epoch/busy/cursor protocol below assumes a
  // single in-flight submission, so concurrent callers queue up here.
  MutexLock run_lock(&run_mu_);
  {
    MutexLock lock(&pool_mu_);
    body_ = &body;
    count_ = count;
    // order: the workers synchronize on pool_mu_ (epoch_), not on the cursor
    cursor_.store(0, std::memory_order_relaxed);
    busy_ = static_cast<int>(workers_.size());
    ++epoch_;
  }
  work_cv_.NotifyAll();
  Drain();  // the caller participates
  {
    MutexLock lock(&pool_mu_);
    while (busy_ != 0) done_cv_.Wait(&pool_mu_);
    body_ = nullptr;
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      MutexLock lock(&pool_mu_);
      while (!shutdown_ && epoch_ == seen_epoch) work_cv_.Wait(&pool_mu_);
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    Drain();
    {
      MutexLock lock(&pool_mu_);
      if (--busy_ == 0) done_cv_.NotifyAll();
    }
  }
}

WorkerPool::WorkerPool(int num_threads, int max_queued)
    : max_queued_(static_cast<size_t>(std::max(0, max_queued))) {
  int count = std::max(1, num_threads);
  std::vector<std::thread> spawned;
  spawned.reserve(count);
  for (int i = 0; i < count; ++i) {
    if (RPQI_FAULT_FIRED("worker_pool.spawn")) {
      SpawnFailures().Increment();
      break;
    }
    try {
      spawned.emplace_back([this] { WorkerLoop(); });
    } catch (const std::system_error&) {
      SpawnFailures().Increment();
      break;
    }
  }
  // With zero spawned workers the pool degrades to synchronous execution:
  // TrySubmit runs tasks inline on the submitting thread (see below), so the
  // serving loop keeps answering — slower, but never wedged. The freshly
  // spawned workers take queue_mu_ themselves, so publish under the lock.
  MutexLock lock(&queue_mu_);
  threads_ = std::move(spawned);
}

WorkerPool::~WorkerPool() { Drain(); }

int WorkerPool::num_threads() const {
  MutexLock lock(&queue_mu_);
  return static_cast<int>(threads_.size());
}

bool WorkerPool::TrySubmit(std::function<void()> task) {
  bool inline_run = false;
  {
    MutexLock lock(&queue_mu_);
    if (draining_) return false;
    if (threads_.empty()) {
      inline_run = true;  // degraded pool: every worker spawn failed
    } else {
      if (queue_.size() >= max_queued_) return false;
      queue_.push_back({std::move(task), std::chrono::steady_clock::now()});
      QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
    }
  }
  if (inline_run) {
    task();
    return true;
  }
  work_cv_.NotifyOne();
  return true;
}

void WorkerPool::Drain() {
  // Detach the thread handles under the lock, join them outside it (a join
  // can block arbitrarily long; holding queue_mu_ through it would deadlock
  // the workers it waits for). Clearing the member off-lock instead would
  // race concurrent num_threads()/TrySubmit readers.
  std::vector<std::thread> to_join;
  {
    MutexLock lock(&queue_mu_);
    if (draining_ && threads_.empty()) return;
    draining_ = true;
    to_join.swap(threads_);
  }
  work_cv_.NotifyAll();
  for (std::thread& thread : to_join) thread.join();
}

int64_t WorkerPool::QueuedNow() const {
  MutexLock lock(&queue_mu_);
  return static_cast<int64_t>(queue_.size());
}

void WorkerPool::WorkerLoop() {
  while (true) {
    QueuedTask queued;
    {
      MutexLock lock(&queue_mu_);
      while (!draining_ && queue_.empty()) work_cv_.Wait(&queue_mu_);
      if (queue_.empty()) return;  // draining and nothing left to run
      queued = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
    }
    QueueWaitHistogram().RecordUs(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - queued.enqueued_at)
            .count());
    // Injected task-start stall: models a worker losing its timeslice (page
    // fault, noisy neighbor) between dequeue and execution.
    RPQI_FAULT_STALL("worker_pool.task_start");
    queued.task();
  }
}

ThreadPool* ThreadPool::Shared(int num_threads) {
  static const obs::Counter pools_created("thread_pool.pools_created");
  static Mutex shared_pools_mu;
  // Growth appends instead of replacing: a pool handed out by an earlier call
  // may be mid-ParallelFor on another thread, so no pool is ever destroyed
  // before process exit. The vector stays tiny (one entry per strict growth).
  // (Guarded by shared_pools_mu; local statics cannot carry RPQI_GUARDED_BY
  // on the Clang versions the CI floor supports.)
  static std::vector<std::unique_ptr<ThreadPool>> pools;
  MutexLock lock(&shared_pools_mu);
  for (const auto& pool : pools) {
    if (pool->num_threads() >= num_threads) return pool.get();
  }
  pools.push_back(std::make_unique<ThreadPool>(num_threads));
  pools_created.Increment();
  return pools.back().get();
}

}  // namespace rpqi
