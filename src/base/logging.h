#ifndef RPQI_BASE_LOGGING_H_
#define RPQI_BASE_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace rpqi {
namespace internal_logging {

/// Accumulates a fatal-error message and aborts the process on destruction.
/// Used by the CHECK family below; never instantiate directly.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::abort();
  }

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace rpqi

/// CHECK(cond) aborts with a diagnostic if `cond` is false. Additional context
/// can be streamed: CHECK(x > 0) << "x was " << x;
#define RPQI_CHECK(condition)                                            \
  if (!(condition))                                                      \
  ::rpqi::internal_logging::FatalMessage(__FILE__, __LINE__, #condition) \
      .stream()

#define RPQI_CHECK_EQ(a, b) RPQI_CHECK((a) == (b))
#define RPQI_CHECK_NE(a, b) RPQI_CHECK((a) != (b))
#define RPQI_CHECK_LT(a, b) RPQI_CHECK((a) < (b))
#define RPQI_CHECK_LE(a, b) RPQI_CHECK((a) <= (b))
#define RPQI_CHECK_GT(a, b) RPQI_CHECK((a) > (b))
#define RPQI_CHECK_GE(a, b) RPQI_CHECK((a) >= (b))

/// Debug-only CHECK for bounds already guaranteed by construction-time
/// validation: active without NDEBUG, compiled to nothing (condition
/// unevaluated, but still parsed and type-checked) in release builds. Use on
/// interior hot loops only — API boundaries and constructors keep RPQI_CHECK,
/// so malformed data is still rejected where it enters.
#ifdef NDEBUG
#define RPQI_DCHECK(condition) \
  while (false) RPQI_CHECK(condition)
#else
#define RPQI_DCHECK(condition) RPQI_CHECK(condition)
#endif

#define RPQI_DCHECK_EQ(a, b) RPQI_DCHECK((a) == (b))
#define RPQI_DCHECK_NE(a, b) RPQI_DCHECK((a) != (b))
#define RPQI_DCHECK_LT(a, b) RPQI_DCHECK((a) < (b))
#define RPQI_DCHECK_LE(a, b) RPQI_DCHECK((a) <= (b))
#define RPQI_DCHECK_GT(a, b) RPQI_DCHECK((a) > (b))
#define RPQI_DCHECK_GE(a, b) RPQI_DCHECK((a) >= (b))

#endif  // RPQI_BASE_LOGGING_H_
