#ifndef RPQI_BASE_BITSET_H_
#define RPQI_BASE_BITSET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/hash.h"
#include "base/logging.h"

namespace rpqi {

/// Fixed-size-at-construction dynamic bitset used to represent state sets and
/// state relations of automata. Word-parallel bulk operations are the hot path
/// of the two-way-automaton translations, so the representation is a plain
/// vector<uint64_t> that can also serve directly as an interning key.
class Bitset {
 public:
  Bitset() : num_bits_(0) {}
  explicit Bitset(int num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {
    RPQI_CHECK_GE(num_bits, 0);
  }

  int size() const { return num_bits_; }

  bool Test(int i) const {
    RPQI_CHECK(0 <= i && i < num_bits_) << "bit " << i << " of " << num_bits_;
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(int i) {
    RPQI_CHECK(0 <= i && i < num_bits_) << "bit " << i << " of " << num_bits_;
    words_[i >> 6] |= uint64_t{1} << (i & 63);
    hash_valid_ = false;
  }

  void Reset(int i) {
    RPQI_CHECK(0 <= i && i < num_bits_) << "bit " << i << " of " << num_bits_;
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
    hash_valid_ = false;
  }

  void Clear() {
    for (auto& w : words_) w = 0;
    hash_valid_ = false;
  }

  void SetAll() {
    for (auto& w : words_) w = ~uint64_t{0};
    TrimTail();
    hash_valid_ = false;
  }

  bool Any() const {
    for (uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }

  bool None() const { return !Any(); }

  int Count() const {
    int count = 0;
    for (uint64_t w : words_) count += __builtin_popcountll(w);
    return count;
  }

  /// True if this and `other` share at least one set bit.
  bool Intersects(const Bitset& other) const {
    RPQI_CHECK_EQ(num_bits_, other.num_bits_);
    for (size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & other.words_[i]) return true;
    return false;
  }

  /// True if every bit set here is also set in `other`.
  bool IsSubsetOf(const Bitset& other) const {
    RPQI_CHECK_EQ(num_bits_, other.num_bits_);
    for (size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & ~other.words_[i]) return false;
    return true;
  }

  Bitset& operator|=(const Bitset& other) {
    RPQI_CHECK_EQ(num_bits_, other.num_bits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    hash_valid_ = false;
    return *this;
  }

  Bitset& operator&=(const Bitset& other) {
    RPQI_CHECK_EQ(num_bits_, other.num_bits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    hash_valid_ = false;
    return *this;
  }

  Bitset& operator-=(const Bitset& other) {
    RPQI_CHECK_EQ(num_bits_, other.num_bits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
    hash_valid_ = false;
    return *this;
  }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

  /// Index of the first set bit at or after `from`, or -1 if none. Use to
  /// iterate: for (int i = bs.NextSetBit(0); i >= 0; i = bs.NextSetBit(i+1)).
  int NextSetBit(int from) const {
    if (from >= num_bits_) return -1;
    int word_index = from >> 6;
    uint64_t word = words_[word_index] & (~uint64_t{0} << (from & 63));
    while (true) {
      if (word != 0) {
        int bit = (word_index << 6) + __builtin_ctzll(word);
        return bit < num_bits_ ? bit : -1;
      }
      if (++word_index >= static_cast<int>(words_.size())) return -1;
      word = words_[word_index];
    }
  }

  /// Raw word storage; usable as an interning key fragment.
  const std::vector<uint64_t>& words() const { return words_; }

  /// HashWords over the word storage, cached between mutations. Hot interning
  /// paths hash the same bitset repeatedly (probe + insert), so every mutator
  /// invalidates the cache instead of recomputing eagerly.
  uint64_t Hash() const {
    if (!hash_valid_) {
      cached_hash_ = HashWords(words_);
      hash_valid_ = true;
    }
    return cached_hash_;
  }

  /// True when the cached hash (if any) matches the stored words. Stale
  /// caches indicate a mutation that bypassed the invalidation hooks; the
  /// analysis validators check this.
  bool CachedHashCoherent() const {
    return !hash_valid_ || cached_hash_ == HashWords(words_);
  }

  /// Poisons the cached hash without touching the words. Only for exercising
  /// the coherence validators in tests.
  void CorruptCachedHashForTesting() {
    cached_hash_ = Hash() ^ 0x5851f42d4c957f2dULL;
    hash_valid_ = true;
  }

  /// Renders as e.g. "{0,3,7}" for diagnostics.
  std::string ToString() const {
    std::string out = "{";
    for (int i = NextSetBit(0); i >= 0; i = NextSetBit(i + 1)) {
      if (out.size() > 1) out += ",";
      out += std::to_string(i);
    }
    out += "}";
    return out;
  }

 private:
  void TrimTail() {
    int tail = num_bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  int num_bits_;
  std::vector<uint64_t> words_;
  mutable uint64_t cached_hash_ = 0;
  mutable bool hash_valid_ = false;
};

}  // namespace rpqi

#endif  // RPQI_BASE_BITSET_H_
