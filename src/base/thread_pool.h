#ifndef RPQI_BASE_THREAD_POOL_H_
#define RPQI_BASE_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace rpqi {

/// Process-wide default worker count for the parallel frontier paths
/// (DeterminizeWithLimit, Intersect). 1 means serial; set from the CLI's
/// global --threads flag. Reads and writes are atomic.
int GlobalThreadCount();
void SetGlobalThreadCount(int threads);

/// A small work-queue pool for data-parallel frontier expansion. The pool owns
/// `num_threads - 1` background workers; the caller participates in every
/// ParallelFor, so a pool of 1 degenerates to a plain loop with no threads.
///
/// Intended use is the level-synchronous pattern of the subset/product
/// constructions: workers evaluate pure per-item step functions over a
/// frontier slice, then the caller merges the results serially in frontier
/// order so state numbering stays bit-identical to the serial algorithm.
///
/// Worker spawning is best-effort: a std::thread construction failure during
/// pool growth (thread exhaustion, or the `thread_pool.spawn` fault site)
/// degrades the pool to the workers already spawned — possibly zero, in which
/// case ParallelFor runs serially on the caller — and bumps the
/// `thread_pool.spawn_failures` counter; no exception escapes the pool.
///
/// Lock discipline: `run_mu_` serializes batches and is always acquired
/// before `pool_mu_`, which guards the epoch/cursor handoff state (see the
/// hierarchy in base/thread_annotations.h). The batch body/count fields are
/// guarded by `pool_mu_` for writers; workers read them lock-free under the
/// epoch protocol (see Drain's waiver).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers plus the participating caller. `workers_` is immutable after
  /// construction, so this needs no lock.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(i) for every i in [0, count), distributing iterations over the
  /// workers plus the calling thread, and returns once all finished. `body`
  /// must be safe to call concurrently and must not throw; iterations are
  /// claimed from an atomic cursor, so no ordering is guaranteed. Concurrent
  /// ParallelFor calls on one pool are serialized by a submission mutex: safe
  /// from any thread, one batch at a time.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& body)
      RPQI_EXCLUDES(run_mu_, pool_mu_);

  /// Process-wide pool with at least `num_threads` threads. The first call
  /// creates one lazily; a later call asking for more threads creates a
  /// larger pool but retains every previously returned pool, so pointers
  /// handed out earlier stay valid and usable even while other threads are
  /// inside ParallelFor on them (the growth used to replace — and destroy —
  /// the pool object in place, racing any in-flight batch).
  static ThreadPool* Shared(int num_threads);

 private:
  void WorkerLoop() RPQI_EXCLUDES(pool_mu_);
  void Drain();

  Mutex run_mu_;   // serializes ParallelFor submissions; outer to pool_mu_
  Mutex pool_mu_;  // guards the epoch/busy handoff state below
  CondVar work_cv_;
  CondVar done_cv_;
  std::vector<std::thread> workers_;  // immutable after construction
  bool shutdown_ RPQI_GUARDED_BY(pool_mu_) = false;
  /// Bumped per ParallelFor; wakes the workers.
  uint64_t epoch_ RPQI_GUARDED_BY(pool_mu_) = 0;
  /// Workers still draining the current epoch.
  int busy_ RPQI_GUARDED_BY(pool_mu_) = 0;
  /// Written under pool_mu_ by ParallelFor; read lock-free by Drain under the
  /// epoch protocol (workers observe the epoch bump inside pool_mu_, which
  /// orders these writes before their reads; run_mu_ keeps the fields frozen
  /// until every reader reports done via busy_).
  int64_t count_ RPQI_GUARDED_BY(pool_mu_) = 0;
  const std::function<void(int64_t)>* body_ RPQI_GUARDED_BY(pool_mu_) =
      nullptr;
  std::atomic<int64_t> cursor_{0};
};

/// A long-lived worker pool with a *bounded* task queue — the execution
/// substrate of the serving subsystem (src/service). Unlike ThreadPool's
/// fork-join ParallelFor, tasks here are independent closures submitted over
/// the pool's lifetime; the queue bound makes admission control explicit:
/// TrySubmit never blocks and returns false when the backlog is full, so the
/// caller can turn overload into a structured rejection instead of unbounded
/// memory growth.
///
/// `max_queued` counts tasks accepted but not yet picked up by a worker;
/// tasks being executed do not count against it. Drain() (also run by the
/// destructor) stops admission, lets the workers finish every accepted task,
/// and joins them — the graceful-drain semantics of `rpqi serve` on EOF.
///
/// Spawning is best-effort like ThreadPool's: failures degrade the pool to
/// fewer workers (counted by `thread_pool.spawn_failures`). If *every* spawn
/// failed, TrySubmit degrades to running accepted tasks inline on the
/// submitting thread, so the serving loop stays live instead of wedging.
///
/// Observability: the `worker_pool.queue_depth` gauge tracks the backlog on
/// every enqueue/dequeue, and `worker_pool.queue_wait_us` records how long
/// each task sat queued before a worker picked it up — under saturation these
/// two show whether latency accumulates in the queue or in execution.
///
/// Every mutable field — including the worker thread handles, which Drain
/// detaches under the lock before joining them outside it — is guarded by
/// `queue_mu_`.
class WorkerPool {
 public:
  WorkerPool(int num_threads, int max_queued);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Workers currently attached (0 after Drain, or when every spawn failed).
  int num_threads() const RPQI_EXCLUDES(queue_mu_);

  /// Enqueues `task` unless the pool is draining or the queue is at capacity.
  /// Tasks must not throw; they run exactly once, on an arbitrary worker.
  bool TrySubmit(std::function<void()> task) RPQI_EXCLUDES(queue_mu_);

  /// Closes admission, waits for every accepted task to finish, and joins the
  /// workers. Idempotent; after Drain(), TrySubmit always returns false.
  void Drain() RPQI_EXCLUDES(queue_mu_);

  /// Tasks currently accepted but not yet started (for stats endpoints).
  int64_t QueuedNow() const RPQI_EXCLUDES(queue_mu_);

 private:
  /// A queued closure plus its enqueue timestamp, for the queue-wait
  /// histogram.
  struct QueuedTask {
    std::function<void()> task;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void WorkerLoop() RPQI_EXCLUDES(queue_mu_);

  mutable Mutex queue_mu_;
  CondVar work_cv_;
  std::deque<QueuedTask> queue_ RPQI_GUARDED_BY(queue_mu_);
  /// Drain swaps this vector out under queue_mu_, then joins the detached
  /// handles lock-free; it used to clear() the member off-lock, racing
  /// num_threads()/TrySubmit readers (pinned by
  /// WorkerPoolTest.DrainRacingSubmittersAndStatsReaders).
  std::vector<std::thread> threads_ RPQI_GUARDED_BY(queue_mu_);
  const size_t max_queued_;
  bool draining_ RPQI_GUARDED_BY(queue_mu_) = false;
};

}  // namespace rpqi

#endif  // RPQI_BASE_THREAD_POOL_H_
