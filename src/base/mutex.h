#ifndef RPQI_BASE_MUTEX_H_
#define RPQI_BASE_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.h"

namespace rpqi {

/// A std::mutex annotated as a thread-safety capability, so Clang's
/// -Wthread-safety analysis can connect RPQI_GUARDED_BY fields to the lock
/// scopes that protect them (std::mutex itself carries no annotations, which
/// makes std::lock_guard invisible to the analysis). Every mutex owned by a
/// concurrent component uses this wrapper; each instance's member name must
/// appear in the declared lock hierarchy (base/thread_annotations.h) so the
/// `lock-order` lint can rank its acquisitions.
class RPQI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RPQI_ACQUIRE() { mu_.lock(); }
  void Unlock() RPQI_RELEASE() { mu_.unlock(); }
  bool TryLock() RPQI_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex, annotated as a scoped capability: the analysis
/// treats the constructor as acquiring and the destructor as releasing, so a
/// guarded field touched outside a MutexLock scope is a compile error under
/// Clang. Prefer this over manual Lock/Unlock pairs everywhere.
class RPQI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) RPQI_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RPQI_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with base::Mutex. Wait() atomically releases the
/// mutex and reacquires it before returning, like std::condition_variable —
/// the RPQI_REQUIRES annotation tells the analysis the lock is held across
/// the call, so waiting loops that re-test guarded predicates stay analyzable:
///
///   MutexLock lock(&queue_mu_);
///   while (queue_.empty() && !draining_) work_cv_.Wait(&queue_mu_);
///
/// Always wait in a predicate loop (spurious wakeups are real; clang-tidy's
/// bugprone-spuriously-wake-up-functions enforces it).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu, blocks until notified (or spuriously woken),
  /// and reacquires *mu before returning.
  void Wait(Mutex* mu) RPQI_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so its destructor leaves the mutex held —
    // the caller's MutexLock scope remains the one true owner.
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // leave the mutex held: the caller's scope owns it
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rpqi

#endif  // RPQI_BASE_MUTEX_H_
