#ifndef RPQI_BASE_STRINGS_H_
#define RPQI_BASE_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace rpqi {

/// Splits `text` on `sep`, dropping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Joins `pieces` with `sep` between them.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

}  // namespace rpqi

#endif  // RPQI_BASE_STRINGS_H_
