#ifndef RPQI_BASE_FLAGS_H_
#define RPQI_BASE_FLAGS_H_

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "base/status.h"

namespace rpqi {

/// Command-line flag parsing shared by the CLI front ends. The accepted
/// grammar is deliberately rigid: every argument is `--name value` (repeated
/// flags accumulate); bare positionals and `--name=value` are rejected with a
/// diagnostic naming the offending argument.
using FlagMap = std::map<std::string, std::vector<std::string>>;

/// Parses argv[first..argc) into a FlagMap. A trailing `--name` with no
/// following value is its own error class ("requires a value") rather than the
/// misleading "unexpected argument" it used to fall through to.
inline StatusOr<FlagMap> ParseFlags(int argc, char** argv, int first) {
  FlagMap flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() == 2) {
      return Status::InvalidArgument("unexpected argument '" + arg + "'");
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag " + arg + " requires a value");
    }
    flags[arg.substr(2)].push_back(argv[++i]);
  }
  return flags;
}

/// The value of a flag that must appear exactly once.
inline StatusOr<std::string> SingleFlag(const FlagMap& flags,
                                        const std::string& name) {
  auto it = flags.find(name);
  if (it == flags.end() || it->second.size() != 1) {
    return Status::InvalidArgument("missing or repeated --" + name);
  }
  return it->second[0];
}

/// Strict base-10 integer parse with an inclusive range check; `what` names
/// the flag in diagnostics.
inline StatusOr<int64_t> ParseInt64(const std::string& text,
                                    const std::string& what, int64_t min,
                                    int64_t max) {
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument(what + ": '" + text +
                                   "' is not an integer");
  }
  if (value < min || value > max) {
    return Status::InvalidArgument(what + ": " + text + " out of range [" +
                                   std::to_string(min) + ", " +
                                   std::to_string(max) + "]");
  }
  return static_cast<int64_t>(value);
}

}  // namespace rpqi

#endif  // RPQI_BASE_FLAGS_H_
