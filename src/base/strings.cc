#include "base/strings.h"

namespace rpqi {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) pieces.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return pieces;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
          text[begin] == '\r')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace rpqi
