#ifndef RPQI_BASE_STATUS_H_
#define RPQI_BASE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "base/logging.h"

namespace rpqi {

/// Lightweight error-status type in the style of database engines (RocksDB,
/// Arrow): operations that can fail return a Status or a StatusOr<T> instead
/// of throwing. Codes:
///   kInvalidArgument   parse/validation errors;
///   kResourceExhausted a construction exceeded its state/memory budget;
///   kDeadlineExceeded  a wall-clock deadline (Budget) expired;
///   kCancelled         a cooperative cancellation flag was observed set.
///
/// Both Status and StatusOr are [[nodiscard]]: silently dropping an error is
/// the failure mode this type exists to prevent. A deliberate discard must be
/// written as `(void)expr;  // lint: allow-discard <why>` so both the compiler
/// and tools/rpqi_lint.py accept it.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk,
    kInvalidArgument,
    kResourceExhausted,
    kDeadlineExceeded,
    kCancelled,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(Code::kInvalidArgument, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(Code::kResourceExhausted, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(Code::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(Code::kCancelled, std::move(message));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument: " + message_;
      case Code::kResourceExhausted:
        return "ResourceExhausted: " + message_;
      case Code::kDeadlineExceeded:
        return "DeadlineExceeded: " + message_;
      case Code::kCancelled:
        return "Cancelled: " + message_;
    }
    return "Unknown";
  }

 private:
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Code code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Access via value() after
/// checking ok(); value() on an error aborts.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : payload_(std::move(value)) {}  // NOLINT: implicit by design
  StatusOr(Status status) : payload_(std::move(status)) {  // NOLINT
    RPQI_CHECK(!std::get<Status>(payload_).ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  const T& value() const& {
    RPQI_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T& value() & {
    RPQI_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T&& value() && {
    RPQI_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Process exit code for a Status, shared by every CLI entry point so that
/// scripts and CI can branch on the failure class:
///   0  kOk (the command decides between 0 and 1 for negative answers);
///   2  kInvalidArgument (also used for unusable --trace-out/--metrics-out);
///   3  kResourceExhausted;
///   4  kDeadlineExceeded;
///   5  kCancelled.
/// Deadline expiry and cooperative cancellation used to share exit code 4,
/// which made retry-on-timeout wrappers retry deliberate interrupts too.
inline int ExitCodeForStatus(const Status& status) {
  switch (status.code()) {
    case Status::Code::kOk:
      return 0;
    case Status::Code::kInvalidArgument:
      return 2;
    case Status::Code::kResourceExhausted:
      return 3;
    case Status::Code::kDeadlineExceeded:
      return 4;
    case Status::Code::kCancelled:
      return 5;
  }
  return 2;
}

}  // namespace rpqi

/// Propagates a non-OK Status out of the enclosing function:
///   RPQI_RETURN_IF_ERROR(budget->Check());
#define RPQI_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::rpqi::Status _rpqi_status_ = (expr);         \
    if (!_rpqi_status_.ok()) return _rpqi_status_; \
  } while (0)

/// Unwraps a StatusOr<T> into `lhs`, propagating the error status:
///   RPQI_ASSIGN_OR_RETURN(Dfa dfa, DeterminizeWithLimit(nfa, limit));
#define RPQI_ASSIGN_OR_RETURN(lhs, rexpr) \
  RPQI_ASSIGN_OR_RETURN_IMPL_(           \
      RPQI_STATUS_CONCAT_(_rpqi_statusor_, __LINE__), lhs, rexpr)

#define RPQI_STATUS_CONCAT_INNER_(a, b) a##b
#define RPQI_STATUS_CONCAT_(a, b) RPQI_STATUS_CONCAT_INNER_(a, b)
#define RPQI_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

#endif  // RPQI_BASE_STATUS_H_
