#ifndef RPQI_BASE_THREAD_ANNOTATIONS_H_
#define RPQI_BASE_THREAD_ANNOTATIONS_H_

/// Thread-safety capability annotations (ABSL style), checked by Clang's
/// -Wthread-safety analysis. Under GCC (and any compiler without the
/// attribute) every macro expands to nothing, so annotated code compiles
/// identically everywhere; the `thread-safety` CI job builds with Clang and
/// -Werror=thread-safety so a guarded field touched off-lock, a conditionally
/// held lock, or a double-acquire fails the build instead of waiting for TSan
/// to stumble over it.
///
/// Usage pattern (see base/mutex.h for the annotated Mutex/MutexLock/CondVar):
///
///   class Accountant {
///     void Add(int64_t delta) RPQI_EXCLUDES(mu_) {
///       MutexLock lock(&mu_);
///       total_ += delta;
///     }
///     Mutex mu_;
///     int64_t total_ RPQI_GUARDED_BY(mu_) = 0;
///   };
///
/// Escape hatch: RPQI_NO_THREAD_SAFETY_ANALYSIS disables the analysis for one
/// function. Every use must carry a same-line written waiver
/// `// lint: allow-no-tsa <why>` naming the protocol that substitutes for the
/// lock (enforced by tools/rpqi_lint.py, rule `lock-order`).
///
/// ----------------------------------------------------------------------------
/// The declared lock hierarchy. A thread holding a lock may only acquire locks
/// strictly *below* it in this list (outermost first). tools/rpqi_lint.py's
/// `lock-order` rule parses the block between the BEGIN/END markers — one
/// mutex name per line, outermost first — and rejects any function whose
/// nested MutexLock/lock_guard scopes (or RPQI_REQUIRES annotations) acquire
/// against the order; waiver: `// lint: allow-lock-order <why>`.
///
/// The obs metrics registry is deliberately the innermost lock: every layer
/// bumps counters, so `registry_mu` must be acquirable while holding anything.
///
// RPQI_LOCK_ORDER_BEGIN
//   shared_pools_mu   base::ThreadPool::Shared pool registry
//   run_mu_           base::ThreadPool submission serialization
//   pool_mu_          base::ThreadPool epoch/worker state
//   queue_mu_         base::WorkerPool task queue + drain flag
//   snapshot_mu_      service::SnapshotStore current-snapshot swap
//   shard_mu          service::PlanCache per-shard LRU state
//   breaker_mu_       service::CircuitBreaker per-op state machine
//   writer_mu_        service::Server NDJSON response writer
//   conn_mu_          net::TcpTransport per-connection buffers/refcounts
//   g_sink_mu         obs trace sink (file/stream + epoch)
//   fault_mu          fault-injection site table
//   registry_mu       obs metrics registry (innermost; everything counts)
// RPQI_LOCK_ORDER_END

#if defined(__clang__)
#define RPQI_THREAD_SAFETY_ANALYSIS_ENABLED 1
#define RPQI_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define RPQI_THREAD_SAFETY_ANALYSIS_ENABLED 0
#define RPQI_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op off Clang
#endif

/// Declares a data member protected by the given capability (mutex).
#define RPQI_GUARDED_BY(x) RPQI_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Declares a pointer member whose *pointee* is protected by the capability.
#define RPQI_PT_GUARDED_BY(x) \
  RPQI_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Documents acquisition order relative to other capabilities (checked by
/// Clang when both sides are annotated; the lint's lock-order rule is the
/// project-wide source of truth).
#define RPQI_ACQUIRED_BEFORE(...) \
  RPQI_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define RPQI_ACQUIRED_AFTER(...) \
  RPQI_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

/// The calling thread must hold the capability (exclusively / shared).
#define RPQI_REQUIRES(...) \
  RPQI_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define RPQI_REQUIRES_SHARED(...) \
  RPQI_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the capability and holds it past return.
#define RPQI_ACQUIRE(...) \
  RPQI_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define RPQI_ACQUIRE_SHARED(...) \
  RPQI_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))
#define RPQI_RELEASE(...) \
  RPQI_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define RPQI_RELEASE_SHARED(...) \
  RPQI_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

/// The function attempts the acquisition; the first argument is the return
/// value that signals success.
#define RPQI_TRY_ACQUIRE(...) \
  RPQI_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// The calling thread must NOT hold the capability (deadlock prevention for
/// non-reentrant locks).
#define RPQI_EXCLUDES(...) \
  RPQI_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Asserts (at analysis level) that the capability is held; for code reached
/// only from contexts the analysis cannot see.
#define RPQI_ASSERT_CAPABILITY(x) \
  RPQI_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

/// The function returns a reference to the given capability.
#define RPQI_RETURN_CAPABILITY(x) \
  RPQI_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Marks a type as a capability (mutexes) / a scoped capability (RAII locks).
#define RPQI_CAPABILITY(x) RPQI_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))
#define RPQI_SCOPED_CAPABILITY RPQI_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Disables the analysis for one function. Requires a same-line written
/// waiver: `// lint: allow-no-tsa <why>` (tools/rpqi_lint.py, `lock-order`).
#define RPQI_NO_THREAD_SAFETY_ANALYSIS \
  RPQI_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // RPQI_BASE_THREAD_ANNOTATIONS_H_
