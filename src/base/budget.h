#ifndef RPQI_BASE_BUDGET_H_
#define RPQI_BASE_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

#include "base/status.h"

namespace rpqi {

/// Cooperative execution budget for the provably expensive constructions
/// (rewriting generation is 2EXPTIME, Theorem 7; answering is co-NP/PSPACE,
/// Table 1). A Budget carries
///   * a wall-clock deadline (steady clock),
///   * an external cancellation flag (e.g. flipped by a server's RPC layer
///     from another thread),
///   * a state/node quota shared by every pipeline stage that charges it.
/// Enforcement is cooperative: the exponential loops call Check() or
/// ChargeStates() and propagate the returned Status. Check() is cheap — the
/// cancellation flag is one relaxed atomic load, and the clock is consulted
/// only every kStride calls. A null `Budget*` means "unlimited" throughout
/// the library; use the BudgetCheck/BudgetCharge helpers for null-safety.
///
/// Budgets are not thread-safe (each worker owns one); only the cancellation
/// flag may be touched concurrently.
class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  Budget() : start_(Clock::now()) {}

  static Budget Unlimited() { return Budget(); }
  static Budget WithDeadline(std::chrono::milliseconds timeout) {
    Budget budget;
    budget.set_deadline(budget.start_ + timeout);
    return budget;
  }

  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  /// The flag is borrowed; it must outlive the budget. Setting it to true
  /// makes the next Check() fail with kCancelled.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_flag_ = flag; }
  void set_max_states(int64_t max_states) { max_states_ = max_states; }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point start_time() const { return start_; }
  int64_t max_states() const { return max_states_; }
  int64_t states_charged() const { return states_charged_; }
  int64_t RemainingStates() const {
    return states_charged_ >= max_states_ ? 0 : max_states_ - states_charged_;
  }

  /// Deadline/cancellation check; sticky once failed. Call from the inner
  /// loops of every potentially-exponential construction.
  Status Check() {
    if (!sticky_.ok()) return sticky_;
    // order: cancellation is best-effort; observing the flag one inner-loop
    // iteration late is within contract, and no data rides on the edge
    if (cancel_flag_ != nullptr &&
        cancel_flag_->load(std::memory_order_relaxed)) {
      sticky_ = Status::Cancelled("execution cancelled by caller");
      return sticky_;
    }
    if (has_deadline_ && --check_countdown_ < 0) {
      check_countdown_ = kStride;
      if (Clock::now() > deadline_) {
        sticky_ = Status::DeadlineExceeded(
            "wall-clock deadline of " +
            std::to_string(std::chrono::duration_cast<std::chrono::milliseconds>(
                               deadline_ - start_)
                               .count()) +
            " ms exceeded");
        return sticky_;
      }
    }
    return Status::Ok();
  }

  /// Accounts `n` newly discovered states/nodes against the shared quota and
  /// performs a Check().
  Status ChargeStates(int64_t n) {
    states_charged_ += n;
    if (states_charged_ > max_states_) {
      sticky_ = Status::ResourceExhausted(
          "state quota of " + std::to_string(max_states_) + " exceeded");
      return sticky_;
    }
    return Check();
  }

  /// A fresh budget for graceful-degradation work after this one expired:
  /// same cancellation flag, deadline extended to `factor` times the
  /// originally granted wall-clock window (so a caller that asked for T ms
  /// gets an overall bound of ~factor·T), and a reset state quota.
  Budget GraceBudget(double factor) const {
    Budget grace;
    grace.start_ = start_;
    grace.cancel_flag_ = cancel_flag_;
    grace.max_states_ = max_states_;
    if (has_deadline_) {
      auto window = std::chrono::duration_cast<std::chrono::nanoseconds>(
          deadline_ - start_);
      grace.set_deadline(start_ +
                         std::chrono::nanoseconds(static_cast<int64_t>(
                             static_cast<double>(window.count()) * factor)));
    }
    return grace;
  }

 private:
  static constexpr int kStride = 256;

  Clock::time_point start_;
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  const std::atomic<bool>* cancel_flag_ = nullptr;
  int64_t max_states_ = std::numeric_limits<int64_t>::max();
  int64_t states_charged_ = 0;
  int check_countdown_ = 0;  // first Check() with a deadline consults the clock
  Status sticky_;
};

/// Null-safe wrappers: a null budget is unlimited.
inline Status BudgetCheck(Budget* budget) {
  return budget == nullptr ? Status::Ok() : budget->Check();
}
inline Status BudgetCharge(Budget* budget, int64_t n) {
  return budget == nullptr ? Status::Ok() : budget->ChargeStates(n);
}

}  // namespace rpqi

#endif  // RPQI_BASE_BUDGET_H_
