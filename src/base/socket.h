#ifndef RPQI_BASE_SOCKET_H_
#define RPQI_BASE_SOCKET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "base/status.h"

namespace rpqi {

/// Minimal POSIX socket RAII + readiness-poll wrappers for the TCP transport
/// (src/net). Deliberately small: IPv4 only, no TLS, no getaddrinfo — the
/// transport serves loopback and LAN traffic, and anything fancier belongs in
/// a proxy in front of it. Everything returns Status instead of throwing, in
/// line with the rest of the codebase.

/// Owns one file descriptor; closes it on destruction. Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }
  ~UniqueFd() { reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the current descriptor (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Marks `fd` O_NONBLOCK.
Status SetNonBlocking(int fd);

/// Disables Nagle coalescing; an NDJSON request/response protocol wants each
/// flushed line on the wire immediately.
Status SetTcpNoDelay(int fd);

/// Creates a non-blocking IPv4 listener bound to `host:port` (SO_REUSEADDR
/// set). `host` must be a dotted quad or "localhost"; port 0 asks the kernel
/// for an ephemeral port — recover it with LocalPort.
StatusOr<UniqueFd> ListenTcp(const std::string& host, int port, int backlog);

/// The locally bound port of a socket (after bind).
StatusOr<int> LocalPort(int fd);

/// Blocking IPv4 connect for client-side code (loadgen, tests).
StatusOr<UniqueFd> ConnectTcp(const std::string& host, int port);

/// One entry in a PollSockets call: the caller sets `fd` and the want_ flags,
/// the poll fills in the readiness results.
struct PollEvent {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  /// Results (valid after PollSockets returns > 0).
  bool readable = false;
  bool writable = false;
  /// POLLERR/POLLHUP/POLLNVAL — the fd needs attention regardless of the
  /// want_ flags.
  bool error = false;
};

/// poll(2) over `events` with EINTR retry; returns the number of entries with
/// any result flag set (0 on timeout). `timeout_ms` < 0 blocks indefinitely.
StatusOr<int> PollSockets(std::vector<PollEvent>* events, int timeout_ms);

/// Self-pipe wakeup: lets any thread (or a signal handler — write(2) is
/// async-signal-safe) interrupt a PollSockets call blocked on read_fd().
/// Both ends are non-blocking; Notify coalesces, Drain consumes everything.
class WakePipe {
 public:
  WakePipe() = default;
  Status Open();
  /// Safe from any thread and from signal handlers; a full pipe is fine (the
  /// reader is already guaranteed to wake).
  void Notify() const;
  /// Consumes every pending wakeup byte; call after poll reports read_fd()
  /// readable.
  void Drain() const;
  int read_fd() const { return read_end_.get(); }

 private:
  UniqueFd read_end_;
  UniqueFd write_end_;
};

}  // namespace rpqi

#endif  // RPQI_BASE_SOCKET_H_
