#include "base/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rpqi {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::InvalidArgument(what + ": " + std::strerror(errno));
}

/// Resolves `host` to an IPv4 sockaddr. Only dotted quads and "localhost" are
/// accepted — see the header's scope note.
StatusOr<sockaddr_in> ResolveIpv4(const std::string& host, int port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string target = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, target.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 address '" + host +
                                   "' (use a dotted quad or 'localhost')");
  }
  return addr;
}

}  // namespace

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::Ok();
}

Status SetTcpNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)");
  }
  return Status::Ok();
}

StatusOr<UniqueFd> ListenTcp(const std::string& host, int port, int backlog) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port " + std::to_string(port) +
                                   " out of range [0, 65535]");
  }
  RPQI_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveIpv4(host, port));
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return ErrnoStatus("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) < 0) return ErrnoStatus("listen");
  RPQI_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  return fd;
}

StatusOr<int> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return ErrnoStatus("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

StatusOr<UniqueFd> ConnectTcp(const std::string& host, int port) {
  RPQI_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveIpv4(host, port));
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return ErrnoStatus("connect " + host + ":" + std::to_string(port));
  }
  RPQI_RETURN_IF_ERROR(SetTcpNoDelay(fd.get()));
  return fd;
}

StatusOr<int> PollSockets(std::vector<PollEvent>* events, int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(events->size());
  for (const PollEvent& event : *events) {
    pollfd pfd;
    pfd.fd = event.fd;
    pfd.events = 0;
    pfd.revents = 0;
    if (event.want_read) pfd.events |= POLLIN;
    if (event.want_write) pfd.events |= POLLOUT;
    fds.push_back(pfd);
  }
  int ready;
  do {
    ready = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready < 0) return ErrnoStatus("poll");
  for (size_t i = 0; i < fds.size(); ++i) {
    PollEvent& event = (*events)[i];
    event.readable = (fds[i].revents & POLLIN) != 0;
    event.writable = (fds[i].revents & POLLOUT) != 0;
    event.error = (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
  }
  return ready;
}

Status WakePipe::Open() {
  int fds[2];
  if (::pipe(fds) < 0) return ErrnoStatus("pipe");
  read_end_.reset(fds[0]);
  write_end_.reset(fds[1]);
  RPQI_RETURN_IF_ERROR(SetNonBlocking(read_end_.get()));
  RPQI_RETURN_IF_ERROR(SetNonBlocking(write_end_.get()));
  return Status::Ok();
}

void WakePipe::Notify() const {
  if (!write_end_.valid()) return;
  char byte = 0;
  // A full pipe (EAGAIN) already guarantees the reader will wake; any other
  // failure has no caller-side remedy, so the result is deliberately dropped.
  ssize_t rc;
  do {
    rc = ::write(write_end_.get(), &byte, 1);
  } while (rc < 0 && errno == EINTR);
}

void WakePipe::Drain() const {
  if (!read_end_.valid()) return;
  char buffer[64];
  while (::read(read_end_.get(), buffer, sizeof(buffer)) > 0) {
  }
}

}  // namespace rpqi
