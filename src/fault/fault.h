#ifndef RPQI_FAULT_FAULT_H_
#define RPQI_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"

namespace rpqi {
namespace fault {

/// Deterministic, seeded fault-injection layer.
///
/// Production code declares named *injection sites* with the RPQI_FAULT_POINT
/// / RPQI_FAULT_FIRED / RPQI_FAULT_STALL macros below. When the layer is
/// disabled (the default) a site costs exactly one relaxed atomic load — the
/// same contract as obs::Span — so sites stay compiled into release builds.
/// Arming happens per run through Configure(), fed from the `RPQI_FAULT`
/// environment variable or the CLI's global `--fault` flag:
///
///   RPQI_FAULT='snapshot.open=once,plan_cache.insert=prob:0.2:42'
///
/// Spec grammar (comma-separated entries):
///   entry  := site '=' policy (';' option)*
///   policy := 'every' ':' N          fire on every Nth armed hit
///           | 'once' [':' N]         fire exactly once, on the Nth hit
///           | 'prob' ':' P [':' S]   fire with probability P per hit, from a
///                                    per-site deterministic PRNG seeded S
///   option := 'ms' '=' N             stall duration for RPQI_FAULT_STALL
///
/// Every decision is deterministic given the spec and the per-site hit order:
/// `every`/`once` count armed hits, `prob` advances a splitmix64 stream seeded
/// from S and the site name. Each site keeps hit/fire tallies (ListSites) and
/// mirrors them into the obs registry as `fault.hit.<site>` /
/// `fault.fired.<site>` counters plus the `fault.hits` / `fault.fires`
/// aggregates, so tests and `admin stats` can assert "the fault fired AND the
/// response was a structured error".
///
/// Site names are lowercase dotted identifiers ([a-z0-9_.]+), unique per code
/// location (enforced by tools/rpqi_lint.py against the site catalog test in
/// tests/fault_test.cc).

namespace internal {

/// The one-load fast path. Relaxed is sufficient: arming happens-before the
/// serving threads start in every supported configuration, and a late-armed
/// site misfiring a few hits later is harmless by design.
extern std::atomic<bool> g_enabled;

/// Slow path behind the enabled check: resolves `name` to a registry slot
/// (registering it on first execution, caching through `slot`), tallies the
/// hit, and evaluates the armed policy. Returns true when the site fires.
bool SiteFires(const char* name, std::atomic<int>* slot);

/// SiteFires for stall sites: when the policy fires, sleeps the site's
/// configured `ms=` duration (default 1 ms) on the calling thread.
void MaybeStall(const char* name, std::atomic<int>* slot);

}  // namespace internal

/// Per-site tallies and arming state, for tests and `admin stats`.
struct SiteInfo {
  std::string name;
  /// The armed policy spec ("every:3", "once:1", "prob:0.2:42"), or "" when
  /// the site has been hit but never armed.
  std::string policy;
  bool armed = false;
  /// Executions of the site while the layer was enabled (armed or not);
  /// disabled runs tally nothing, keeping the fast path to the single load.
  int64_t hits = 0;
  int64_t fires = 0;
};

/// Parses `spec` and arms the named sites (additive across calls; re-arming a
/// site replaces its policy and resets its policy state, not its tallies).
/// Enables the layer when at least one site is armed. Sites not yet touched
/// by code register eagerly so ListSites shows them immediately.
Status Configure(const std::string& spec);

/// Disarms every site, resets tallies and policy state, disables the layer.
/// Test teardown calls this so armed faults never leak across tests.
void DisarmAll();

/// True when at least one site is armed.
bool Enabled();

std::vector<SiteInfo> ListSites();

/// Tallies for one site by name (0 when never registered).
int64_t HitCount(const std::string& site);
int64_t FireCount(const std::string& site);

}  // namespace fault
}  // namespace rpqi

/// Status-returning injection site: when the armed policy fires, returns
/// `status_expr` out of the enclosing function. Use inside functions
/// returning Status or StatusOr<T>:
///   RPQI_FAULT_POINT("automata.determinize_state",
///                    Status::ResourceExhausted("injected ..."));
#define RPQI_FAULT_POINT(site, status_expr)                              \
  do {                                                                     \
    if (::rpqi::fault::internal::g_enabled.load(                           \
            std::memory_order_relaxed /* order: gate; see g_enabled */)) { \
      static std::atomic<int> _rpqi_fault_slot{-1};                        \
      if (::rpqi::fault::internal::SiteFires(site, &_rpqi_fault_slot)) {   \
        return (status_expr);                                              \
      }                                                                    \
    }                                                                      \
  } while (0)

/// Boolean injection site for paths that cannot propagate a Status (thread
/// spawn, cache insert, queue admission). Evaluates to true when the site
/// fires; false whenever the layer is disabled.
#define RPQI_FAULT_FIRED(site)                                          \
  (::rpqi::fault::internal::g_enabled.load(                               \
       std::memory_order_relaxed /* order: gate; see g_enabled */) &&     \
   []() -> bool {                                                         \
     static std::atomic<int> _rpqi_fault_slot{-1};                        \
     return ::rpqi::fault::internal::SiteFires(site, &_rpqi_fault_slot);  \
   }())

/// Stall injection site: when the policy fires, sleeps the site's `ms=`
/// duration (default 1 ms) on the calling thread. Models worker stalls and
/// scheduling hiccups without touching any result.
#define RPQI_FAULT_STALL(site)                                           \
  do {                                                                     \
    if (::rpqi::fault::internal::g_enabled.load(                           \
            std::memory_order_relaxed /* order: gate; see g_enabled */)) { \
      static std::atomic<int> _rpqi_fault_slot{-1};                        \
      ::rpqi::fault::internal::MaybeStall(site, &_rpqi_fault_slot);        \
    }                                                                      \
  } while (0)

#endif  // RPQI_FAULT_FAULT_H_
