#include "fault/fault.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "obs/metrics.h"

namespace rpqi {
namespace fault {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

enum class PolicyKind { kEveryNth, kOneShot, kProbability };

struct Policy {
  PolicyKind kind = PolicyKind::kOneShot;
  int64_t n = 1;          // every:N period / once:N target hit
  double probability = 0;  // prob:P
  uint64_t seed = 1;       // prob seed (mixed with the site name)
  int64_t stall_ms = 1;    // ms= option, used by RPQI_FAULT_STALL sites
  std::string spec;        // the entry text, echoed by ListSites
};

struct Site {
  std::string name;
  bool armed = false;
  Policy policy;
  int64_t hits = 0;        // while the layer was enabled
  int64_t armed_hits = 0;  // while this site was armed (policy input)
  int64_t fires = 0;
  bool one_shot_spent = false;
  uint64_t rng_state = 0;
  // Mirrors into the obs registry (fault.hit.<name> / fault.fired.<name>).
  // RegisterMetric copies the name, so the composed strings may be temporary.
  int hit_metric_slot = -1;
  int fire_metric_slot = -1;
};

/// `fault_mu` sits just above `registry_mu` in the lock hierarchy
/// (base/thread_annotations.h): SiteIndexLocked registers obs counters while
/// holding it, so the obs registry lock nests inside.
struct Registry {
  Mutex fault_mu;
  std::vector<std::unique_ptr<Site>> sites RPQI_GUARDED_BY(fault_mu);
  std::map<std::string, int> index_by_name RPQI_GUARDED_BY(fault_mu);
};

Registry& Reg() {
  // Leaked for the same reason as the obs registry: sites may be hit from
  // worker threads that outlive function-local statics during shutdown.
  static Registry* registry = std::make_unique<Registry>().release();
  return *registry;
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t SeedFor(const Policy& policy, const std::string& name) {
  uint64_t h = policy.seed ^ 0x4641554c54ULL;  // "FAULT"
  for (char c : name) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  return h == 0 ? 1 : h;
}

/// Registers (or finds) the site under `name`; caller holds reg.fault_mu.
int SiteIndexLocked(Registry& reg, const std::string& name)
    RPQI_REQUIRES(reg.fault_mu) {
  auto it = reg.index_by_name.find(name);
  if (it != reg.index_by_name.end()) return it->second;
  auto site = std::make_unique<Site>();
  site->name = name;
  site->hit_metric_slot = obs::internal::RegisterMetric(
      ("fault.hit." + name).c_str(), obs::MetricKind::kCounter);
  site->fire_metric_slot = obs::internal::RegisterMetric(
      ("fault.fired." + name).c_str(), obs::MetricKind::kCounter);
  int index = static_cast<int>(reg.sites.size());
  reg.sites.push_back(std::move(site));
  reg.index_by_name.emplace(name, index);
  return index;
}

/// Tallies one hit on `site` and evaluates its policy; the caller holds the
/// registry's fault_mu (which keeps the per-site policy state consistent —
/// the Site itself carries no lock of its own).
bool HitLocked(Site& site) {
  static const obs::Counter total_hits("fault.hits");
  static const obs::Counter total_fires("fault.fires");
  ++site.hits;
  total_hits.Increment();
  obs::internal::AddToSlot(site.hit_metric_slot, 1);
  if (!site.armed) return false;
  ++site.armed_hits;
  bool fire = false;
  switch (site.policy.kind) {
    case PolicyKind::kEveryNth:
      fire = site.armed_hits % site.policy.n == 0;
      break;
    case PolicyKind::kOneShot:
      fire = !site.one_shot_spent && site.armed_hits == site.policy.n;
      if (fire) site.one_shot_spent = true;
      break;
    case PolicyKind::kProbability: {
      uint64_t draw = SplitMix64(&site.rng_state) >> 11;
      fire = static_cast<double>(draw) * 0x1.0p-53 < site.policy.probability;
      break;
    }
  }
  if (fire) {
    ++site.fires;
    total_fires.Increment();
    obs::internal::AddToSlot(site.fire_metric_slot, 1);
  }
  return fire;
}

Site* ResolveSite(const char* name, std::atomic<int>* slot, Registry& reg)
    RPQI_REQUIRES(reg.fault_mu) {
  // order: the slot is a per-callsite memo of an immutable index; a stale -1
  // just repeats the (idempotent) lookup under fault_mu
  int index = slot->load(std::memory_order_relaxed);
  if (index < 0) {
    index = SiteIndexLocked(reg, name);
    // order: publishes nothing but the index; sites are never removed
    slot->store(index, std::memory_order_relaxed);
  }
  return reg.sites[index].get();
}

Status SpecError(const std::string& entry, const std::string& why) {
  return Status::InvalidArgument("fault spec entry '" + entry + "': " + why);
}

bool ValidSiteName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
              c == '.';
    if (!ok) return false;
  }
  return true;
}

StatusOr<int64_t> ParseSpecInt(const std::string& entry,
                               const std::string& text, int64_t min_value) {
  if (text.empty()) return SpecError(entry, "expected an integer");
  int64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return SpecError(entry, "bad integer '" + text + "'");
    }
    if (value > (int64_t{1} << 53)) {
      return SpecError(entry, "integer '" + text + "' out of range");
    }
    value = value * 10 + (c - '0');
  }
  if (value < min_value) {
    return SpecError(entry, "integer '" + text + "' must be >= " +
                                std::to_string(min_value));
  }
  return value;
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t end = text.find(sep, start);
    parts.push_back(text.substr(start, end - start));
    if (end == std::string::npos) return parts;
    start = end + 1;
  }
}

StatusOr<Policy> ParsePolicy(const std::string& entry,
                             const std::string& text) {
  Policy policy;
  std::vector<std::string> options = SplitOn(text, ';');
  std::vector<std::string> fields = SplitOn(options[0], ':');
  const std::string& kind = fields[0];
  if (kind == "every") {
    policy.kind = PolicyKind::kEveryNth;
    if (fields.size() != 2) return SpecError(entry, "'every' needs ':N'");
    RPQI_ASSIGN_OR_RETURN(policy.n, ParseSpecInt(entry, fields[1], 1));
  } else if (kind == "once") {
    policy.kind = PolicyKind::kOneShot;
    if (fields.size() > 2) return SpecError(entry, "'once' takes at most ':N'");
    if (fields.size() == 2) {
      RPQI_ASSIGN_OR_RETURN(policy.n, ParseSpecInt(entry, fields[1], 1));
    }
  } else if (kind == "prob") {
    policy.kind = PolicyKind::kProbability;
    if (fields.size() < 2 || fields.size() > 3) {
      return SpecError(entry, "'prob' needs ':P' and an optional ':SEED'");
    }
    char* end = nullptr;
    policy.probability = std::strtod(fields[1].c_str(), &end);
    if (end == fields[1].c_str() || *end != '\0' || policy.probability < 0.0 ||
        policy.probability > 1.0) {
      return SpecError(entry,
                       "probability '" + fields[1] + "' must be in [0, 1]");
    }
    if (fields.size() == 3) {
      RPQI_ASSIGN_OR_RETURN(int64_t seed, ParseSpecInt(entry, fields[2], 0));
      policy.seed = static_cast<uint64_t>(seed);
    }
  } else {
    return SpecError(entry, "unknown policy '" + kind +
                                "' (every:N | once[:N] | prob:P[:SEED])");
  }
  for (size_t i = 1; i < options.size(); ++i) {
    std::vector<std::string> kv = SplitOn(options[i], '=');
    if (kv.size() == 2 && kv[0] == "ms") {
      RPQI_ASSIGN_OR_RETURN(policy.stall_ms, ParseSpecInt(entry, kv[1], 0));
    } else {
      return SpecError(entry, "unknown option '" + options[i] + "' (ms=N)");
    }
  }
  policy.spec = text;
  return policy;
}

}  // namespace

namespace internal {

bool SiteFires(const char* name, std::atomic<int>* slot) {
  Registry& reg = Reg();
  MutexLock lock(&reg.fault_mu);
  return HitLocked(*ResolveSite(name, slot, reg));
}

void MaybeStall(const char* name, std::atomic<int>* slot) {
  Registry& reg = Reg();
  int64_t stall_ms = 0;
  {
    MutexLock lock(&reg.fault_mu);
    Site* site = ResolveSite(name, slot, reg);
    if (HitLocked(*site)) stall_ms = site->policy.stall_ms;
  }
  // Sleep outside the registry lock so a stalled worker never blocks other
  // sites (that would turn an injected stall into an injected deadlock).
  if (stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }
}

}  // namespace internal

Status Configure(const std::string& spec) {
  Registry& reg = Reg();
  // Parse the whole spec before arming anything: a bad trailing entry must
  // not leave the registry half-armed.
  std::vector<std::pair<std::string, Policy>> armed;
  for (const std::string& entry : SplitOn(spec, ',')) {
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return SpecError(entry, "expected 'site=policy'");
    }
    std::string site = entry.substr(0, eq);
    if (!ValidSiteName(site)) {
      return SpecError(entry, "bad site name '" + site + "' ([a-z0-9_.]+)");
    }
    RPQI_ASSIGN_OR_RETURN(Policy policy,
                          ParsePolicy(entry, entry.substr(eq + 1)));
    armed.emplace_back(std::move(site), std::move(policy));
  }
  if (armed.empty()) return Status::Ok();
  MutexLock lock(&reg.fault_mu);
  for (auto& [name, policy] : armed) {
    Site& site = *reg.sites[SiteIndexLocked(reg, name)];
    site.armed = true;
    site.rng_state = SeedFor(policy, name);
    site.armed_hits = 0;
    site.one_shot_spent = false;
    site.policy = std::move(policy);
  }
  // order: the gate is advisory (see fault.h); arming happens-before the
  // threads that matter in every supported configuration
  internal::g_enabled.store(true, std::memory_order_relaxed);
  return Status::Ok();
}

void DisarmAll() {
  Registry& reg = Reg();
  MutexLock lock(&reg.fault_mu);
  // order: same advisory-gate contract as Configure
  internal::g_enabled.store(false, std::memory_order_relaxed);
  for (auto& site : reg.sites) {
    site->armed = false;
    site->policy = Policy{};
    site->hits = 0;
    site->armed_hits = 0;
    site->fires = 0;
    site->one_shot_spent = false;
    site->rng_state = 0;
  }
}

bool Enabled() {
  // order: advisory gate; a stale read only delays/anticipates arming by a hit
  return internal::g_enabled.load(std::memory_order_relaxed);
}

std::vector<SiteInfo> ListSites() {
  Registry& reg = Reg();
  MutexLock lock(&reg.fault_mu);
  std::vector<SiteInfo> out;
  out.reserve(reg.sites.size());
  for (const auto& [name, index] : reg.index_by_name) {
    const Site& site = *reg.sites[index];
    SiteInfo info;
    info.name = name;
    info.policy = site.armed ? site.policy.spec : "";
    info.armed = site.armed;
    info.hits = site.hits;
    info.fires = site.fires;
    out.push_back(std::move(info));
  }
  return out;
}

int64_t HitCount(const std::string& site) {
  Registry& reg = Reg();
  MutexLock lock(&reg.fault_mu);
  auto it = reg.index_by_name.find(site);
  return it == reg.index_by_name.end() ? 0 : reg.sites[it->second]->hits;
}

int64_t FireCount(const std::string& site) {
  Registry& reg = Reg();
  MutexLock lock(&reg.fault_mu);
  auto it = reg.index_by_name.find(site);
  return it == reg.index_by_name.end() ? 0 : reg.sites[it->second]->fires;
}

}  // namespace fault
}  // namespace rpqi
