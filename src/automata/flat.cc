#include "automata/flat.h"

#include <cstddef>
#include <cstring>

#include "analysis/validate.h"
#include "automata/ops.h"
#include "base/hash.h"

namespace rpqi {

namespace {

/// The fixed on-disk header. Field order keeps every member naturally
/// aligned, so the struct layout is the wire layout with no packing pragma;
/// the static_asserts pin that (a compiler inserting padding would change
/// sizeof and fail the build, not corrupt files).
struct FlatPlanHeader {
  char magic[12];
  uint32_t version;
  uint32_t endian_tag;
  uint32_t num_symbols;
  uint64_t file_bytes;
  uint64_t checksum;
  uint64_t num_states;
  uint64_t num_edges;
  uint64_t num_initial;
  uint64_t tag_bytes;
  uint64_t has_answers;
  uint64_t num_answers;
};

static_assert(sizeof(FlatPlanHeader) == 88,
              "on-disk plan header layout changed; bump kFlatPlanVersion");
static_assert(alignof(FlatPlanHeader) == 8, "header must be 8-byte aligned");
static_assert(std::is_trivially_copyable_v<FlatPlanHeader>,
              "header is memcpy'd to/from disk");
static_assert(sizeof(FlatPlanHeader) % 8 == 0,
              "payload must start 8-byte aligned");

constexpr size_t kHeaderBytes = sizeof(FlatPlanHeader);

size_t Align8(size_t n) { return (n + 7) & ~size_t{7}; }

size_t WordsFor(uint64_t states) {
  return static_cast<size_t>((states + 63) / 64);
}

/// Folds `size` bytes into a running checksum, 8 at a time via memcpy
/// (alignment-free) with the length folded in first.
uint64_t ChecksumSpan(uint64_t h, const char* data, size_t size) {
  h = HashCombine(h, size);
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, 8);
    h = HashCombine(h, word);
  }
  for (; i < size; ++i) {
    h = HashCombine(h, static_cast<unsigned char>(data[i]));
  }
  return h;
}

constexpr size_t kChecksumFieldOffset = offsetof(FlatPlanHeader, checksum);

/// Checksum of the whole buffer except the 8 checksum bytes themselves: the
/// header fields (counts, flags, tag length) are covered too, so a bit flip
/// *anywhere* in the plan file is detected, not only in the payload.
uint64_t FileChecksum(const char* data, size_t size) {
  uint64_t h = 0x52505149504c4131ULL;  // "RPQIPLA1"
  h = ChecksumSpan(h, data, kChecksumFieldOffset);
  h = ChecksumSpan(h, data + kChecksumFieldOffset + 8,
                   size - kChecksumFieldOffset - 8);
  return h;
}

std::string Ctx(std::string_view source_name) {
  if (source_name.empty()) return "plan: ";
  return std::string(source_name) + ": ";
}

std::string Num(uint64_t n) { return std::to_string(n); }

/// Appends `count` elements of `src` as raw little-endian bytes.
template <typename T>
void AppendArray(std::string* out, const T* src, size_t count) {
  size_t bytes = count * sizeof(T);
  size_t at = out->size();
  out->resize(at + bytes);
  if (bytes > 0) std::memcpy(out->data() + at, src, bytes);
}

/// Copies `count` elements out of the buffer at `offset` (bounds already
/// checked against the declared total size).
template <typename T>
std::vector<T> ReadArray(std::string_view bytes, size_t offset, size_t count) {
  std::vector<T> out(count);
  if (count > 0) std::memcpy(out.data(), bytes.data() + offset,
                             count * sizeof(T));
  return out;
}

/// Section sizes are fully determined by the header counts, so the layout is
/// a deterministic walk rather than a section table: each section starts at
/// the previous 8-aligned end. Shared by the encoder, the size predictor,
/// and the decoder so they can never disagree.
struct PlanLayout {
  size_t tag = 0;
  size_t offsets = 0;
  size_t edges = 0;
  size_t initial_words = 0;
  size_t accepting_words = 0;
  size_t initial_list = 0;
  size_t answers = 0;
  size_t total = 0;
};

PlanLayout ComputeLayout(uint64_t num_states, uint64_t num_edges,
                         uint64_t num_initial, uint64_t tag_bytes,
                         uint64_t num_answers) {
  PlanLayout layout;
  size_t at = kHeaderBytes;
  auto place = [&at](size_t bytes) {
    at = Align8(at);
    size_t here = at;
    at += bytes;
    return here;
  };
  layout.tag = place(tag_bytes);
  layout.offsets = place((num_states + 1) * sizeof(uint32_t));
  layout.edges = place(num_edges * sizeof(FlatNfa::Edge));
  layout.initial_words = place(WordsFor(num_states) * sizeof(uint64_t));
  layout.accepting_words = place(WordsFor(num_states) * sizeof(uint64_t));
  layout.initial_list = place(num_initial * sizeof(int32_t));
  layout.answers = place(num_answers * 2 * sizeof(uint32_t));
  layout.total = Align8(at);
  return layout;
}

}  // namespace

FlatNfa CompileFlat(const Nfa& input) {
  // ε-closure is pre-applied once here, not per evaluation: RemoveEpsilon
  // folds closures into direct transitions and fixes up initial/accepting.
  Nfa scratch(0);
  const Nfa* src = &input;
  if (input.HasEpsilonTransitions()) {
    scratch = RemoveEpsilon(input);
    src = &scratch;
  }
  const int num_states = src->NumStates();

  std::vector<uint32_t> offsets(static_cast<size_t>(num_states) + 1, 0);
  std::vector<FlatNfa::Edge> edges;
  edges.reserve(static_cast<size_t>(src->NumTransitions()));
  for (int s = 0; s < num_states; ++s) {
    size_t begin = edges.size();
    for (const Nfa::Transition& t : src->TransitionsFrom(s)) {
      edges.push_back({static_cast<int32_t>(t.symbol),
                       static_cast<int32_t>(t.to)});
    }
    // Sorted + deduplicated per state: duplicate transitions are legal in an
    // Nfa but carry no information, and sortedness is what makes EdgesFor a
    // binary search and the serialized bytes canonical.
    std::sort(edges.begin() + begin, edges.end());
    edges.erase(std::unique(edges.begin() + begin, edges.end()), edges.end());
    offsets[s + 1] = static_cast<uint32_t>(edges.size());
  }

  std::vector<uint64_t> initial_words(WordsFor(num_states), 0);
  std::vector<uint64_t> accepting_words(WordsFor(num_states), 0);
  std::vector<int32_t> initial_list;
  for (int s = 0; s < num_states; ++s) {
    if (src->IsInitial(s)) {
      initial_words[s >> 6] |= uint64_t{1} << (s & 63);
      initial_list.push_back(s);
    }
    if (src->IsAccepting(s)) {
      accepting_words[s >> 6] |= uint64_t{1} << (s & 63);
    }
  }

  FlatNfa flat = FlatNfa::FromPartsUnchecked(
      src->num_symbols(), std::move(offsets), std::move(edges),
      std::move(initial_words), std::move(accepting_words),
      std::move(initial_list));
  RPQI_VALIDATE_STAGE(ValidateFlatNfa(flat));
  return flat;
}

bool IsFlatPlan(std::string_view prefix) {
  return prefix.size() >= sizeof(kFlatPlanMagic) &&
         std::memcmp(prefix.data(), kFlatPlanMagic, sizeof(kFlatPlanMagic)) ==
             0;
}

int64_t EncodedFlatPlanBytes(const FlatPlan& plan) {
  return static_cast<int64_t>(
      ComputeLayout(plan.nfa.NumStates(), plan.nfa.NumEdges(),
                    plan.nfa.initial_list().size(), plan.tag.size(),
                    plan.has_answers ? plan.answers.size() : 0)
          .total);
}

std::string EncodeFlatPlan(const FlatPlan& plan) {
  const FlatNfa& nfa = plan.nfa;
  RPQI_CHECK_EQ(nfa.offsets().size(),
                static_cast<size_t>(nfa.NumStates()) + 1);
  const uint64_t num_answers = plan.has_answers ? plan.answers.size() : 0;
  const PlanLayout layout =
      ComputeLayout(nfa.NumStates(), nfa.NumEdges(), nfa.initial_list().size(),
                    plan.tag.size(), num_answers);

  FlatPlanHeader header{};
  std::memcpy(header.magic, kFlatPlanMagic, sizeof(kFlatPlanMagic));
  header.version = kFlatPlanVersion;
  header.endian_tag = kFlatPlanEndianTag;
  header.num_symbols = static_cast<uint32_t>(nfa.num_symbols());
  header.file_bytes = layout.total;
  header.num_states = static_cast<uint64_t>(nfa.NumStates());
  header.num_edges = static_cast<uint64_t>(nfa.NumEdges());
  header.num_initial = nfa.initial_list().size();
  header.tag_bytes = plan.tag.size();
  header.has_answers = plan.has_answers ? 1 : 0;
  header.num_answers = num_answers;

  std::string out(kHeaderBytes, '\0');
  auto pad_to = [&out](size_t offset) {
    out.resize(offset, '\0');
  };
  pad_to(layout.tag);
  out.append(plan.tag);
  pad_to(layout.offsets);
  AppendArray(&out, nfa.offsets().data(), nfa.offsets().size());
  pad_to(layout.edges);
  AppendArray(&out, nfa.edges().data(), nfa.edges().size());
  pad_to(layout.initial_words);
  AppendArray(&out, nfa.initial_words().data(), nfa.initial_words().size());
  pad_to(layout.accepting_words);
  AppendArray(&out, nfa.accepting_words().data(),
              nfa.accepting_words().size());
  pad_to(layout.initial_list);
  AppendArray(&out, nfa.initial_list().data(), nfa.initial_list().size());
  pad_to(layout.answers);
  if (num_answers > 0) {
    static_assert(sizeof(std::pair<uint32_t, uint32_t>) == 8,
                  "answer pairs are serialized as two u32 words");
    AppendArray(&out, plan.answers.data(), plan.answers.size());
  }
  pad_to(layout.total);

  header.checksum = 0;
  std::memcpy(out.data(), &header, kHeaderBytes);
  header.checksum = FileChecksum(out.data(), out.size());
  std::memcpy(out.data(), &header, kHeaderBytes);
  return out;
}

StatusOr<FlatPlan> DecodeFlatPlan(std::string_view bytes,
                                  std::string_view source_name) {
  const std::string ctx = Ctx(source_name);
  if (bytes.size() < kHeaderBytes) {
    return Status::InvalidArgument(ctx + "truncated: " + Num(bytes.size()) +
                                   " bytes, but the header alone is " +
                                   Num(kHeaderBytes));
  }
  FlatPlanHeader header;
  std::memcpy(&header, bytes.data(), kHeaderBytes);
  if (!IsFlatPlan(bytes)) {
    return Status::InvalidArgument(ctx +
                                   "byte 0: bad magic (not an RPQIPLAN1 "
                                   "compiled plan)");
  }
  if (header.version != kFlatPlanVersion) {
    return Status::InvalidArgument(
        ctx + "byte " + Num(offsetof(FlatPlanHeader, version)) +
        ": unsupported version " + Num(header.version) + " (this build reads " +
        Num(kFlatPlanVersion) + ")");
  }
  if (header.endian_tag != kFlatPlanEndianTag) {
    return Status::InvalidArgument(
        ctx + "byte " + Num(offsetof(FlatPlanHeader, endian_tag)) +
        ": endianness tag mismatch (written on a foreign byte order)");
  }
  if (header.file_bytes != bytes.size()) {
    return Status::InvalidArgument(
        ctx + "byte " + Num(offsetof(FlatPlanHeader, file_bytes)) +
        ": header declares " + Num(header.file_bytes) +
        " bytes but the buffer holds " + Num(bytes.size()) +
        " (truncated or torn write)");
  }
  if (header.has_answers > 1) {
    return Status::InvalidArgument(
        ctx + "byte " + Num(offsetof(FlatPlanHeader, has_answers)) +
        ": has_answers flag is " + Num(header.has_answers) +
        ", expected 0 or 1");
  }
  // Plausibility caps: each count-derived section must fit in the buffer, so
  // the layout arithmetic below cannot wrap uint64 and smuggle a tiny
  // section past the total-size check (same discipline as the columnar
  // parser's implausible-counts guard).
  const uint64_t size = bytes.size();
  if (header.num_states > (uint64_t{1} << 31) ||
      header.num_edges > size / sizeof(FlatNfa::Edge) ||
      header.num_states + 1 > size / sizeof(uint32_t) ||
      header.num_initial > size / sizeof(int32_t) ||
      header.tag_bytes > size || header.num_answers > size / 8 ||
      header.num_symbols > (uint64_t{1} << 31)) {
    return Status::InvalidArgument(
        ctx + "byte " + Num(offsetof(FlatPlanHeader, num_states)) +
        ": implausible counts (states " + Num(header.num_states) +
        ", edges " + Num(header.num_edges) + ", initial " +
        Num(header.num_initial) + ", tag " + Num(header.tag_bytes) +
        ", answers " + Num(header.num_answers) + ")");
  }
  const PlanLayout layout =
      ComputeLayout(header.num_states, header.num_edges, header.num_initial,
                    header.tag_bytes,
                    header.has_answers != 0 ? header.num_answers : 0);
  if (layout.total != size) {
    return Status::InvalidArgument(
        ctx + "byte " + Num(offsetof(FlatPlanHeader, num_states)) +
        ": counts dictate " + Num(layout.total) +
        " bytes but the buffer holds " + Num(size));
  }
  const uint64_t computed = FileChecksum(bytes.data(), bytes.size());
  if (computed != header.checksum) {
    return Status::InvalidArgument(
        ctx + "byte " + Num(offsetof(FlatPlanHeader, checksum)) +
        ": checksum mismatch over the buffer's " + Num(size) +
        " bytes: stored " + Num(header.checksum) + ", computed " +
        Num(computed) + " (corrupt or torn write)");
  }

  FlatPlan plan;
  plan.tag.assign(bytes.data() + layout.tag,
                  static_cast<size_t>(header.tag_bytes));
  plan.nfa = FlatNfa::FromPartsUnchecked(
      static_cast<int>(header.num_symbols),
      ReadArray<uint32_t>(bytes, layout.offsets,
                          static_cast<size_t>(header.num_states) + 1),
      ReadArray<FlatNfa::Edge>(bytes, layout.edges,
                               static_cast<size_t>(header.num_edges)),
      ReadArray<uint64_t>(bytes, layout.initial_words,
                          WordsFor(header.num_states)),
      ReadArray<uint64_t>(bytes, layout.accepting_words,
                          WordsFor(header.num_states)),
      ReadArray<int32_t>(bytes, layout.initial_list,
                         static_cast<size_t>(header.num_initial)));
  plan.has_answers = header.has_answers != 0;
  if (plan.has_answers) {
    // Read as raw u32 words, not memcpy-into-pair: std::pair is not
    // trivially assignable as far as -Wclass-memaccess is concerned.
    std::vector<uint32_t> words = ReadArray<uint32_t>(
        bytes, layout.answers, static_cast<size_t>(header.num_answers) * 2);
    plan.answers.reserve(static_cast<size_t>(header.num_answers));
    for (size_t i = 0; i < words.size(); i += 2) {
      plan.answers.push_back({words[i], words[i + 1]});
    }
  }
  // The checksum proves integrity, not well-formedness: a buggy or hostile
  // *encoder* checksums its own garbage correctly. The structural validator
  // is the admission gate before any span accessor runs.
  if (Status valid = ValidateFlatNfa(plan.nfa); !valid.ok()) {
    return Status::InvalidArgument(ctx + "structurally invalid plan: " +
                                   valid.message());
  }
  return plan;
}

}  // namespace rpqi
