#include "automata/random.h"

namespace rpqi {

Nfa RandomNfa(std::mt19937_64& rng, const RandomAutomatonOptions& options) {
  // lint: allow-unbudgeted test generator bounded by options.num_states
  Nfa nfa(options.num_symbols);
  for (int s = 0; s < options.num_states; ++s) nfa.AddState();
  nfa.SetInitial(0);

  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> pick_state(0, options.num_states - 1);

  double p = options.transition_density / options.num_states;
  for (int s = 0; s < options.num_states; ++s) {
    for (int a = 0; a < options.num_symbols; ++a) {
      for (int t = 0; t < options.num_states; ++t) {
        if (coin(rng) < p) nfa.AddTransition(s, a, t);
      }
    }
  }
  bool any_accepting = false;
  for (int s = 0; s < options.num_states; ++s) {
    if (coin(rng) < options.accepting_probability) {
      nfa.SetAccepting(s);
      any_accepting = true;
    }
  }
  if (!any_accepting) nfa.SetAccepting(pick_state(rng));
  return nfa;
}

TwoWayNfa RandomTwoWayNfa(std::mt19937_64& rng,
                          const RandomAutomatonOptions& options) {
  TwoWayNfa automaton(options.num_symbols);
  // lint: allow-unbudgeted test generator bounded by options.num_states
  for (int s = 0; s < options.num_states; ++s) automaton.AddState();
  automaton.SetInitial(0);

  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> pick_state(0, options.num_states - 1);
  std::uniform_int_distribution<int> pick_move(-1, 1);

  double p = options.transition_density / options.num_states;
  for (int s = 0; s < options.num_states; ++s) {
    for (int a = 0; a < options.num_symbols; ++a) {
      for (int t = 0; t < options.num_states; ++t) {
        if (coin(rng) < p) {
          automaton.AddTransition(s, a, t, static_cast<Move>(pick_move(rng)));
        }
      }
    }
  }
  bool any_accepting = false;
  for (int s = 0; s < options.num_states; ++s) {
    if (coin(rng) < options.accepting_probability) {
      automaton.SetAccepting(s);
      any_accepting = true;
    }
  }
  if (!any_accepting) automaton.SetAccepting(pick_state(rng));
  return automaton;
}

std::vector<int> RandomWord(std::mt19937_64& rng, int num_symbols, int length) {
  std::uniform_int_distribution<int> pick_symbol(0, num_symbols - 1);
  std::vector<int> word(length);
  for (int& symbol : word) symbol = pick_symbol(rng);
  return word;
}

}  // namespace rpqi
