#include "automata/ops.h"

#include <algorithm>
#include <array>
#include <deque>
#include <queue>
#include <unordered_map>

#include "analysis/validate.h"
#include "automata/adjacency.h"
#include "base/bitset.h"
#include "base/hash.h"
#include "base/interner.h"
#include "base/thread_pool.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rpqi {

namespace {

/// ε-closure of `states` (as a bitset over nfa states).
Bitset EpsilonClosure(const Nfa& nfa, const Bitset& states) {
  Bitset closure = states;
  std::vector<int> stack;
  for (int s = closure.NextSetBit(0); s >= 0; s = closure.NextSetBit(s + 1)) {
    stack.push_back(s);
  }
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (t.symbol == kEpsilon && !closure.Test(t.to)) {
        closure.Set(t.to);
        stack.push_back(t.to);
      }
    }
  }
  return closure;
}

Bitset InitialClosure(const Nfa& nfa) {
  Bitset init(nfa.NumStates());
  for (int s : nfa.InitialStates()) init.Set(s);
  return EpsilonClosure(nfa, init);
}

/// One symbol step of the subset construction, including ε-closure.
Bitset SubsetStep(const Nfa& nfa, const Bitset& states, int symbol) {
  Bitset next(nfa.NumStates());
  for (int s = states.NextSetBit(0); s >= 0; s = states.NextSetBit(s + 1)) {
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (t.symbol == symbol) next.Set(t.to);
    }
  }
  if (!nfa.HasEpsilonTransitions()) return next;
  return EpsilonClosure(nfa, next);
}

/// Subset step of an ε-free NFA through its per-symbol CSR index, written
/// into a caller-owned scratch bitset (no allocation on the hot path).
void SubsetStepInto(const SymbolAdjacency& adjacency, const Bitset& states,
                    int symbol, Bitset* next) {
  next->Clear();
  for (int s = states.NextSetBit(0); s >= 0; s = states.NextSetBit(s + 1)) {
    for (const int32_t* t = adjacency.begin(s, symbol),
                      * end = adjacency.end(s, symbol);
         t != end; ++t) {
      next->Set(*t);
    }
  }
}

bool SubsetAccepts(const Nfa& nfa, const Bitset& states) {
  for (int s = states.NextSetBit(0); s >= 0; s = states.NextSetBit(s + 1)) {
    if (nfa.IsAccepting(s)) return true;
  }
  return false;
}

}  // namespace

Nfa RemoveEpsilon(const Nfa& nfa) {
  if (!nfa.HasEpsilonTransitions()) return nfa;
  // lint: allow-unbudgeted same state count as the input
  Nfa result(nfa.num_symbols());
  for (int s = 0; s < nfa.NumStates(); ++s) result.AddState();

  for (int s = 0; s < nfa.NumStates(); ++s) {
    Bitset single(nfa.NumStates());
    single.Set(s);
    Bitset closure = EpsilonClosure(nfa, single);
    bool accepting = false;
    for (int q = closure.NextSetBit(0); q >= 0; q = closure.NextSetBit(q + 1)) {
      if (nfa.IsAccepting(q)) accepting = true;
      for (const Nfa::Transition& t : nfa.TransitionsFrom(q)) {
        if (t.symbol != kEpsilon) result.AddTransition(s, t.symbol, t.to);
      }
    }
    result.SetAccepting(s, accepting);
    result.SetInitial(s, nfa.IsInitial(s));
  }
  {
    NfaValidateOptions options;
    options.require_epsilon_free = true;
    options.expected_num_symbols = nfa.num_symbols();
    RPQI_VALIDATE_STAGE(ValidateNfa(result, options));
  }
  return result;
}

Nfa Trim(const Nfa& nfa) {
  const int n = nfa.NumStates();
  // Forward reachability.
  std::vector<char> reachable(n, 0);
  std::vector<int> stack;
  for (int s : nfa.InitialStates()) {
    reachable[s] = 1;
    stack.push_back(s);
  }
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (!reachable[t.to]) {
        reachable[t.to] = 1;
        stack.push_back(t.to);
      }
    }
  }
  // Backward reachability over reversed edges.
  std::vector<std::vector<int>> reverse_edges(n);
  for (int s = 0; s < n; ++s) {
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      reverse_edges[t.to].push_back(s);
    }
  }
  std::vector<char> useful(n, 0);
  for (int s = 0; s < n; ++s) {
    if (nfa.IsAccepting(s) && reachable[s]) {
      useful[s] = 1;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (int q : reverse_edges[s]) {
      if (reachable[q] && !useful[q]) {
        useful[q] = 1;
        stack.push_back(q);
      }
    }
  }

  Nfa result(nfa.num_symbols());
  // lint: allow-unbudgeted keeps a subset of the input's states
  std::vector<int> new_id(n, -1);
  for (int s = 0; s < n; ++s) {
    if (useful[s]) new_id[s] = result.AddState();
  }
  if (result.NumStates() == 0) {
    // Empty language: keep one non-accepting initial state for well-formedness.
    int s = result.AddState();
    result.SetInitial(s);
    return result;
  }
  for (int s = 0; s < n; ++s) {
    if (!useful[s]) continue;
    result.SetInitial(new_id[s], nfa.IsInitial(s));
    result.SetAccepting(new_id[s], nfa.IsAccepting(s));
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (useful[t.to]) result.AddTransition(new_id[s], t.symbol, new_id[t.to]);
    }
  }
  return result;
}

StatusOr<Dfa> DeterminizeWithLimit(const Nfa& input, int64_t max_states,
                                   Budget* budget, int threads) {
  static const obs::Counter runs_counter("determinize.runs");
  static const obs::Counter states_counter("determinize.states");
  static const obs::Counter parallel_counter("determinize.parallel_batches");
  obs::Span span("automata.determinize");
  if (threads <= 0) threads = GlobalThreadCount();
  const Nfa nfa = RemoveEpsilon(input);
  const int num_symbols = nfa.num_symbols();
  const SymbolAdjacency adjacency(nfa);
  WordVectorInterner interner;
  std::vector<Bitset> subset_of;   // interned id -> subset
  std::vector<bool> accepting;

  Bitset start = InitialClosure(nfa);
  int start_id = interner.InternHashed(start.words(), start.Hash());
  subset_of.push_back(start);
  accepting.push_back(SubsetAccepts(nfa, start));

  std::vector<std::vector<int>> next_rows;
  // Interns a freshly computed subset, enforcing the state cap and charging
  // the budget exactly once per new state (identical on both paths).
  auto intern_step = [&](const Bitset& subset, uint64_t hash,
                         bool subset_accepting) -> StatusOr<int> {
    int next_id = interner.InternHashed(subset.words(), hash);
    if (next_id == static_cast<int>(subset_of.size())) {
      if (interner.size() > max_states) {
        return Status::ResourceExhausted("subset construction exceeded " +
                                         std::to_string(max_states) +
                                         " states");
      }
      // Models allocation failure while growing the subset table; surfaces
      // through the same kResourceExhausted path as a real quota hit.
      RPQI_FAULT_POINT("automata.determinize_state",
                       Status::ResourceExhausted(
                           "injected state-allocation failure in subset "
                           "construction"));
      RPQI_RETURN_IF_ERROR(BudgetCharge(budget, 1));
      subset_of.push_back(subset);
      accepting.push_back(subset_accepting);
    }
    return next_id;
  };

  if (threads <= 1) {
    Bitset scratch(nfa.NumStates());
    for (int id = 0; id < interner.size(); ++id) {
      RPQI_RETURN_IF_ERROR(BudgetCheck(budget));
      next_rows.emplace_back(num_symbols, -1);
      for (int a = 0; a < num_symbols; ++a) {
        SubsetStepInto(adjacency, subset_of[id], a, &scratch);
        RPQI_ASSIGN_OR_RETURN(
            int next_id,
            intern_step(scratch, scratch.Hash(), SubsetAccepts(nfa, scratch)));
        next_rows[id][a] = next_id;
      }
    }
  } else {
    // Level-synchronous parallel frontier: workers evaluate the subset step
    // for every (frontier state, symbol) pair of a chunk; the merge then
    // interns the results serially in (frontier order, symbol) order — the
    // exact discovery order of the serial loop — so state numbering and the
    // resulting DFA are bit-identical to threads == 1. Only the merge thread
    // touches the interner and the budget.
    constexpr int kFrontierChunk = 1024;
    ThreadPool* pool = ThreadPool::Shared(threads);
    struct StepResult {
      Bitset subset;
      uint64_t hash = 0;
      bool accepting = false;
    };
    std::vector<StepResult> results;
    int level_begin = 0;
    while (level_begin < interner.size()) {
      RPQI_RETURN_IF_ERROR(BudgetCheck(budget));
      int level_end =
          std::min(interner.size(), level_begin + kFrontierChunk);
      int level_size = level_end - level_begin;
      results.assign(static_cast<size_t>(level_size) * num_symbols,
                     StepResult{});
      parallel_counter.Increment();
      pool->ParallelFor(level_size, [&](int64_t i) {
        int id = level_begin + static_cast<int>(i);
        for (int a = 0; a < num_symbols; ++a) {
          StepResult& r = results[i * num_symbols + a];
          r.subset = Bitset(nfa.NumStates());
          SubsetStepInto(adjacency, subset_of[id], a, &r.subset);
          r.hash = r.subset.Hash();
          r.accepting = SubsetAccepts(nfa, r.subset);
        }
      });
      for (int i = 0; i < level_size; ++i) {
        next_rows.emplace_back(num_symbols, -1);
        for (int a = 0; a < num_symbols; ++a) {
          StepResult& r = results[static_cast<size_t>(i) * num_symbols + a];
          RPQI_ASSIGN_OR_RETURN(int next_id,
                                intern_step(r.subset, r.hash, r.accepting));
          next_rows[level_begin + i][a] = next_id;
        }
      }
      level_begin = level_end;
    }
  }

  runs_counter.Increment();
  states_counter.Add(interner.size());
  span.Note("states", interner.size());
  span.Note("threads", threads);
  Dfa dfa(nfa.num_symbols(), interner.size());
  dfa.SetInitial(start_id);
  for (int id = 0; id < interner.size(); ++id) {
    dfa.SetAccepting(id, accepting[id]);
    for (int a = 0; a < nfa.num_symbols(); ++a) {
      dfa.SetNext(id, a, next_rows[id][a]);
    }
  }
  {
    // The subset construction is total by construction (the empty subset is a
    // sink); a missing edge here would corrupt every complement downstream.
    DfaValidateOptions options;
    options.require_total = true;
    options.expected_num_symbols = input.num_symbols();
    RPQI_VALIDATE_STAGE(ValidateDfa(dfa, options));
  }
  return dfa;
}

Dfa Determinize(const Nfa& nfa) {
  StatusOr<Dfa> result = DeterminizeWithLimit(nfa, int64_t{1} << 22);
  RPQI_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

Nfa Intersect(const Nfa& a_input, const Nfa& b_input, int threads) {
  static const obs::Counter parallel_counter("intersect.parallel_batches");
  obs::Span span("automata.intersect");
  if (threads <= 0) threads = GlobalThreadCount();
  const Nfa a = RemoveEpsilon(a_input);
  const Nfa b = RemoveEpsilon(b_input);
  RPQI_CHECK_EQ(a.num_symbols(), b.num_symbols());
  Nfa result(a.num_symbols());

  // Lazily discover reachable product states.
  std::unordered_map<uint64_t, int> ids;
  std::vector<std::pair<int, int>> pairs;
  auto intern = [&](int sa, int sb) {
    uint64_t key = PairKey(sa, sb);
    auto [it, inserted] = ids.try_emplace(key, result.NumStates());
    if (inserted) {
      int state = result.AddState();
      RPQI_CHECK_EQ(state, it->second);
      pairs.push_back({sa, sb});
      result.SetAccepting(state, a.IsAccepting(sa) && b.IsAccepting(sb));
    }
    return it->second;
  };

  for (int sa : a.InitialStates()) {
    for (int sb : b.InitialStates()) {
      result.SetInitial(intern(sa, sb));
    }
  }
  if (threads <= 1) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      auto [sa, sb] = pairs[i];
      int from = static_cast<int>(i);
      for (const Nfa::Transition& ta : a.TransitionsFrom(sa)) {
        for (const Nfa::Transition& tb : b.TransitionsFrom(sb)) {
          if (ta.symbol == tb.symbol) {
            result.AddTransition(from, ta.symbol, intern(ta.to, tb.to));
          }
        }
      }
    }
  } else {
    // Level-synchronous frontier: workers enumerate each frontier pair's
    // matching transitions into per-pair candidate lists; the serial merge
    // interns targets in (pair order, candidate order) — exactly the serial
    // discovery order — so state numbering and transitions are bit-identical
    // to threads == 1.
    struct Candidate {
      int symbol;
      int to_a;
      int to_b;
    };
    ThreadPool* pool = ThreadPool::Shared(threads);
    std::vector<std::vector<Candidate>> candidates;
    size_t level_begin = 0;
    while (level_begin < pairs.size()) {
      size_t level_end = pairs.size();
      size_t level_size = level_end - level_begin;
      candidates.assign(level_size, {});
      parallel_counter.Increment();
      pool->ParallelFor(static_cast<int64_t>(level_size), [&](int64_t i) {
        auto [sa, sb] = pairs[level_begin + i];
        std::vector<Candidate>& out = candidates[i];
        for (const Nfa::Transition& ta : a.TransitionsFrom(sa)) {
          for (const Nfa::Transition& tb : b.TransitionsFrom(sb)) {
            if (ta.symbol == tb.symbol) out.push_back({ta.symbol, ta.to, tb.to});
          }
        }
      });
      for (size_t i = 0; i < level_size; ++i) {
        int from = static_cast<int>(level_begin + i);
        for (const Candidate& c : candidates[i]) {
          result.AddTransition(from, c.symbol, intern(c.to_a, c.to_b));
        }
      }
      level_begin = level_end;
    }
  }
  return result;
}

Nfa UnionNfa(const Nfa& a, const Nfa& b) {
  RPQI_CHECK_EQ(a.num_symbols(), b.num_symbols());
  // lint: allow-unbudgeted disjoint copy of the two inputs
  Nfa result(a.num_symbols());
  for (int s = 0; s < a.NumStates(); ++s) result.AddState();
  for (int s = 0; s < b.NumStates(); ++s) result.AddState();
  int offset = a.NumStates();
  for (int s = 0; s < a.NumStates(); ++s) {
    result.SetInitial(s, a.IsInitial(s));
    result.SetAccepting(s, a.IsAccepting(s));
    for (const Nfa::Transition& t : a.TransitionsFrom(s)) {
      result.AddTransition(s, t.symbol, t.to);
    }
  }
  for (int s = 0; s < b.NumStates(); ++s) {
    result.SetInitial(offset + s, b.IsInitial(s));
    result.SetAccepting(offset + s, b.IsAccepting(s));
    for (const Nfa::Transition& t : b.TransitionsFrom(s)) {
      result.AddTransition(offset + s, t.symbol, offset + t.to);
    }
  }
  return result;
}

Nfa Concat(const Nfa& a, const Nfa& b) {
  RPQI_CHECK_EQ(a.num_symbols(), b.num_symbols());
  // lint: allow-unbudgeted disjoint copy of the two inputs
  Nfa result(a.num_symbols());
  for (int s = 0; s < a.NumStates(); ++s) result.AddState();
  for (int s = 0; s < b.NumStates(); ++s) result.AddState();
  int offset = a.NumStates();
  for (int s = 0; s < a.NumStates(); ++s) {
    result.SetInitial(s, a.IsInitial(s));
    for (const Nfa::Transition& t : a.TransitionsFrom(s)) {
      result.AddTransition(s, t.symbol, t.to);
    }
  }
  for (int s = 0; s < b.NumStates(); ++s) {
    result.SetAccepting(offset + s, b.IsAccepting(s));
    for (const Nfa::Transition& t : b.TransitionsFrom(s)) {
      result.AddTransition(offset + s, t.symbol, offset + t.to);
    }
  }
  for (int sa = 0; sa < a.NumStates(); ++sa) {
    if (!a.IsAccepting(sa)) continue;
    for (int sb = 0; sb < b.NumStates(); ++sb) {
      if (b.IsInitial(sb)) result.AddTransition(sa, kEpsilon, offset + sb);
    }
  }
  return result;
}

Nfa Star(const Nfa& a) {
  Nfa result(a.num_symbols());
  int hub = result.AddState();  // new initial+accepting hub state
  // lint: allow-unbudgeted copy of the input plus one hub state
  result.SetInitial(hub);
  result.SetAccepting(hub);
  int offset = 1;
  for (int s = 0; s < a.NumStates(); ++s) result.AddState();
  for (int s = 0; s < a.NumStates(); ++s) {
    for (const Nfa::Transition& t : a.TransitionsFrom(s)) {
      result.AddTransition(offset + s, t.symbol, offset + t.to);
    }
    if (a.IsInitial(s)) result.AddTransition(hub, kEpsilon, offset + s);
    if (a.IsAccepting(s)) result.AddTransition(offset + s, kEpsilon, hub);
  }
  return result;
}

Nfa ReverseNfa(const Nfa& a) {
  // lint: allow-unbudgeted same state count as the input
  Nfa result(a.num_symbols());
  for (int s = 0; s < a.NumStates(); ++s) result.AddState();
  for (int s = 0; s < a.NumStates(); ++s) {
    result.SetInitial(s, a.IsAccepting(s));
    result.SetAccepting(s, a.IsInitial(s));
    for (const Nfa::Transition& t : a.TransitionsFrom(s)) {
      result.AddTransition(t.to, t.symbol, s);
    }
  }
  return result;
}

Nfa Project(const Nfa& a, const std::vector<int>& mapping,
            int new_num_symbols) {
  RPQI_CHECK_EQ(static_cast<int>(mapping.size()), a.num_symbols());
  // lint: allow-unbudgeted same state count as the input
  Nfa result(new_num_symbols);
  for (int s = 0; s < a.NumStates(); ++s) result.AddState();
  for (int s = 0; s < a.NumStates(); ++s) {
    result.SetInitial(s, a.IsInitial(s));
    result.SetAccepting(s, a.IsAccepting(s));
    for (const Nfa::Transition& t : a.TransitionsFrom(s)) {
      int image = t.symbol == kEpsilon ? kEpsilon : mapping[t.symbol];
      result.AddTransition(s, image, t.to);
    }
  }
  return result;
}

bool Accepts(const Nfa& nfa, const std::vector<int>& word) {
  Bitset current = InitialClosure(nfa);
  for (int symbol : word) {
    if (current.None()) return false;
    current = SubsetStep(nfa, current, symbol);
  }
  return SubsetAccepts(nfa, current);
}

bool IsEmpty(const Nfa& nfa) { return !ShortestAcceptedWord(nfa).has_value(); }

std::optional<std::vector<int>> ShortestAcceptedWord(const Nfa& nfa) {
  // BFS over states; ε-transitions contribute no letters.
  const int n = nfa.NumStates();
  std::vector<int> parent(n, -2);       // -2 unvisited, -1 root
  std::vector<int> parent_symbol(n, kEpsilon);
  std::deque<int> queue;                // 0-1 BFS: ε edges go to the front
  for (int s : nfa.InitialStates()) {
    parent[s] = -1;
    queue.push_back(s);
  }
  int goal = -1;
  // Plain BFS is not length-optimal with ε edges; use 0-1 BFS (deque).
  std::vector<int> dist(n, -1);
  for (int s : nfa.InitialStates()) dist[s] = 0;
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    if (nfa.IsAccepting(s)) {
      goal = s;
      break;
    }
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      int weight = t.symbol == kEpsilon ? 0 : 1;
      if (dist[t.to] == -1 || dist[s] + weight < dist[t.to]) {
        dist[t.to] = dist[s] + weight;
        parent[t.to] = s;
        parent_symbol[t.to] = t.symbol;
        if (weight == 0) {
          queue.push_front(t.to);
        } else {
          queue.push_back(t.to);
        }
      }
    }
  }
  if (goal < 0) return std::nullopt;
  std::vector<int> word;
  for (int s = goal; parent[s] != -1; s = parent[s]) {
    if (parent_symbol[s] != kEpsilon) word.push_back(parent_symbol[s]);
  }
  std::reverse(word.begin(), word.end());
  return word;
}

StatusOr<bool> IsContainedWithBudget(const Nfa& a_input, const Nfa& b_input,
                                     Budget* budget) {
  // L(a) ⊆ L(b) iff L(a) ∩ complement(L(b)) = ∅. Run the product of `a`
  // with the lazily determinized complement of `b` without materializing it.
  const Nfa a = RemoveEpsilon(Trim(a_input));
  const Nfa b = RemoveEpsilon(b_input);
  RPQI_CHECK_EQ(a.num_symbols(), b.num_symbols());

  const SymbolAdjacency b_adjacency(b);
  WordVectorInterner subset_interner;
  std::vector<Bitset> subsets;
  auto intern_subset = [&](const Bitset& subset) {
    int id = subset_interner.InternHashed(subset.words(), subset.Hash());
    if (id == static_cast<int>(subsets.size())) subsets.push_back(subset);
    return id;
  };

  int start_subset = intern_subset(InitialClosure(b));
  // Product state: (a state, interned b-subset id). For a fixed a-state the
  // product language is antitone in the b-subset (a smaller subset rejects
  // more words of L(b), so the complement side accepts more), so we keep only
  // the ⊆-minimal discovered b-subsets per a-state and drop dominated
  // arrivals. Members are only ever evicted by strict subsets, so domination
  // is preserved transitively and each (a state, subset) pair is enqueued at
  // most once — the antichain replaces the visited set outright.
  std::unordered_map<int, std::vector<int>> minimal;
  std::vector<std::pair<int, int>> stack;
  auto visit = [&](int sa, int subset_id) {
    std::vector<int>& chain = minimal[sa];
    const Bitset& subset = subsets[subset_id];
    for (int member : chain) {
      if (subsets[member].IsSubsetOf(subset)) return;  // dominated
    }
    chain.erase(std::remove_if(chain.begin(), chain.end(),
                               [&](int member) {
                                 return subset.IsSubsetOf(subsets[member]);
                               }),
                chain.end());
    chain.push_back(subset_id);
    stack.push_back({sa, subset_id});
  };
  for (int sa : a.InitialStates()) visit(sa, start_subset);

  // Cache of subset transitions to avoid recomputing the subset step.
  Bitset scratch(b.NumStates());
  std::unordered_map<uint64_t, int> subset_next;
  auto subset_step_cached = [&](int subset_id, int symbol) {
    uint64_t key = PairKey(subset_id, symbol);
    auto it = subset_next.find(key);
    if (it != subset_next.end()) return it->second;
    SubsetStepInto(b_adjacency, subsets[subset_id], symbol, &scratch);
    int next_id = intern_subset(scratch);
    subset_next.emplace(key, next_id);
    return next_id;
  };

  while (!stack.empty()) {
    RPQI_RETURN_IF_ERROR(BudgetCharge(budget, 1));
    auto [sa, subset_id] = stack.back();
    stack.pop_back();
    if (a.IsAccepting(sa) && !SubsetAccepts(b, subsets[subset_id])) {
      return false;  // found a word in L(a) \ L(b)
    }
    for (const Nfa::Transition& t : a.TransitionsFrom(sa)) {
      visit(t.to, subset_step_cached(subset_id, t.symbol));
    }
  }
  return true;
}

bool IsContained(const Nfa& a, const Nfa& b) {
  StatusOr<bool> result = IsContainedWithBudget(a, b, /*budget=*/nullptr);
  RPQI_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

bool AreEquivalent(const Nfa& a, const Nfa& b) {
  return IsContained(a, b) && IsContained(b, a);
}

Nfa SingleWordNfa(int num_symbols, const std::vector<int>& word) {
  // lint: allow-unbudgeted one state per word position
  Nfa nfa(num_symbols);
  int state = nfa.AddState();
  nfa.SetInitial(state);
  for (int symbol : word) {
    int next = nfa.AddState();
    nfa.AddTransition(state, symbol, next);
    state = next;
  }
  nfa.SetAccepting(state);
  return nfa;
}

Nfa UniversalNfa(int num_symbols) {
  Nfa nfa(num_symbols);
  int state = nfa.AddState();
  nfa.SetInitial(state);
  nfa.SetAccepting(state);
  for (int a = 0; a < num_symbols; ++a) nfa.AddTransition(state, a, state);
  return nfa;
}

Nfa WidenAlphabet(const Nfa& a, int new_num_symbols, int offset) {
  RPQI_CHECK_GE(new_num_symbols, a.num_symbols() + offset);
  // lint: allow-unbudgeted same state count as the input
  Nfa result(new_num_symbols);
  for (int s = 0; s < a.NumStates(); ++s) result.AddState();
  for (int s = 0; s < a.NumStates(); ++s) {
    result.SetInitial(s, a.IsInitial(s));
    result.SetAccepting(s, a.IsAccepting(s));
    for (const Nfa::Transition& t : a.TransitionsFrom(s)) {
      int symbol = t.symbol == kEpsilon ? kEpsilon : t.symbol + offset;
      result.AddTransition(s, symbol, t.to);
    }
  }
  return result;
}

}  // namespace rpqi
