#include "automata/dot.h"

namespace rpqi {

namespace {

std::string SymbolLabel(const std::function<std::string(int)>& symbol_name,
                        int symbol) {
  if (symbol < 0) return "ε";
  if (symbol_name) return symbol_name(symbol);
  return std::to_string(symbol);
}

}  // namespace

std::string NfaToDot(const Nfa& nfa,
                     const std::function<std::string(int)>& symbol_name) {
  std::string out = "digraph nfa {\n  rankdir=LR;\n";
  for (int s = 0; s < nfa.NumStates(); ++s) {
    out += "  q" + std::to_string(s) + " [shape=" +
           (nfa.IsAccepting(s) ? "doublecircle" : "circle") + "];\n";
    if (nfa.IsInitial(s)) {
      out += "  start" + std::to_string(s) + " [shape=point];\n";
      out += "  start" + std::to_string(s) + " -> q" + std::to_string(s) +
             ";\n";
    }
  }
  for (int s = 0; s < nfa.NumStates(); ++s) {
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      out += "  q" + std::to_string(s) + " -> q" + std::to_string(t.to) +
             " [label=\"" + SymbolLabel(symbol_name, t.symbol) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

std::string DfaToDot(const Dfa& dfa,
                     const std::function<std::string(int)>& symbol_name) {
  std::string out = "digraph dfa {\n  rankdir=LR;\n";
  for (int s = 0; s < dfa.NumStates(); ++s) {
    out += "  q" + std::to_string(s) + " [shape=" +
           (dfa.IsAccepting(s) ? "doublecircle" : "circle") + "];\n";
  }
  out += "  start [shape=point];\n  start -> q" +
         std::to_string(dfa.initial()) + ";\n";
  for (int s = 0; s < dfa.NumStates(); ++s) {
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      int to = dfa.Next(s, a);
      if (to >= 0) {
        out += "  q" + std::to_string(s) + " -> q" + std::to_string(to) +
               " [label=\"" + SymbolLabel(symbol_name, a) + "\"];\n";
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace rpqi
