#ifndef RPQI_AUTOMATA_TWO_WAY_H_
#define RPQI_AUTOMATA_TWO_WAY_H_

#include <vector>

#include "base/logging.h"

namespace rpqi {

/// Head movement of a two-way automaton transition.
enum class Move : int { kLeft = -1, kStay = 0, kRight = 1 };

/// A two-way nondeterministic finite automaton (Section 3 of the paper).
///
/// A configuration is a pair (state, position) with position ∈ [0, n] for an
/// input word of length n. A transition may be taken only at positions < n
/// (the head reads word[position]); it moves the head left, right, or keeps it
/// in place. A move left of position 0 is simply unavailable. A run accepts
/// when it reaches (f, n) with f accepting.
class TwoWayNfa {
 public:
  struct Transition {
    int to;
    Move move;
  };

  explicit TwoWayNfa(int num_symbols) : num_symbols_(num_symbols) {
    RPQI_CHECK_GE(num_symbols, 0);
  }

  int num_symbols() const { return num_symbols_; }
  int NumStates() const { return static_cast<int>(delta_.size()); }

  /// O(1): maintained by AddTransition.
  int NumTransitions() const { return num_transitions_; }

  int AddState() {
    delta_.emplace_back(num_symbols_);
    initial_.push_back(false);
    accepting_.push_back(false);
    return NumStates() - 1;
  }

  void AddTransition(int from, int symbol, int to, Move move) {
    RPQI_CHECK(0 <= from && from < NumStates());
    RPQI_CHECK(0 <= to && to < NumStates());
    RPQI_CHECK(0 <= symbol && symbol < num_symbols_);
    delta_[from][symbol].push_back({to, move});
    ++num_transitions_;
  }

  void SetInitial(int state, bool value = true) {
    RPQI_CHECK(0 <= state && state < NumStates());
    initial_[state] = value;
  }
  void SetAccepting(int state, bool value = true) {
    RPQI_CHECK(0 <= state && state < NumStates());
    accepting_[state] = value;
  }

  bool IsInitial(int state) const { return initial_[state]; }
  bool IsAccepting(int state) const { return accepting_[state]; }

  const std::vector<Transition>& TransitionsOn(int state, int symbol) const {
    RPQI_CHECK(0 <= state && state < NumStates());
    RPQI_CHECK(0 <= symbol && symbol < num_symbols_);
    return delta_[state][symbol];
  }

  std::vector<int> InitialStates() const {
    std::vector<int> result;
    for (int s = 0; s < NumStates(); ++s)
      if (initial_[s]) result.push_back(s);
    return result;
  }

 private:
  int num_symbols_;
  int num_transitions_ = 0;
  // delta_[state][symbol] -> possible (state, move) successors.
  std::vector<std::vector<std::vector<Transition>>> delta_;
  std::vector<bool> initial_;
  std::vector<bool> accepting_;
};

/// Decides membership by direct reachability over the configuration graph
/// (states × positions). O(|word| · states · transitions); this is the
/// reference semantics every translation is validated against.
bool SimulateTwoWay(const TwoWayNfa& automaton, const std::vector<int>& word);

}  // namespace rpqi

#endif  // RPQI_AUTOMATA_TWO_WAY_H_
