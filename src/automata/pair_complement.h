#ifndef RPQI_AUTOMATA_PAIR_COMPLEMENT_H_
#define RPQI_AUTOMATA_PAIR_COMPLEMENT_H_

#include "automata/nfa.h"
#include "automata/two_way.h"
#include "base/status.h"

namespace rpqi {

/// Vardi's single-exponential complementation of a two-way automaton
/// ("A note on the reduction of two-way automata to one-way automata", IPL
/// 1989) — the construction behind the paper's O(2^n) complement bound
/// (Section 3) and hence behind the complexity claims of Theorems 7/16.
///
/// A word a_0…a_{n-1} is *rejected* by the 2NFA iff there exists a certificate
/// T_0,…,T_n of state sets (T_j over-approximates the configurations reachable
/// at position j) with:
///   (1) I ⊆ T_0;
///   (2) for every j < n, s ∈ T_j and (t,k) ∈ ρ(s, a_j):
///         k = 0 ⇒ t ∈ T_j;  k = 1 ⇒ t ∈ T_{j+1};  k = −1 ∧ j > 0 ⇒ t ∈ T_{j−1};
///   (3) T_n ∩ F = ∅.
/// The complement NFA guesses the certificate: its states are pairs
/// (T_{j−1}, T_j) so that every condition mentioning letter a_j is checkable
/// when that letter is consumed.
///
/// This is a *reference implementation* with eager subset enumeration
/// (exponential branching on the guess of T_{j+1}); it exists to cross-validate
/// the lazy deterministic table translation (LazyTableDfa with complement=true)
/// and to measure the classical construction in bench_two_way_translation.
/// Use only for small automata (≲ 10 states); beyond `max_states` discovered
/// NFA states it fails with ResourceExhausted.
StatusOr<Nfa> VardiComplement(const TwoWayNfa& two_way, int64_t max_states);

}  // namespace rpqi

#endif  // RPQI_AUTOMATA_PAIR_COMPLEMENT_H_
