#ifndef RPQI_AUTOMATA_OPS_H_
#define RPQI_AUTOMATA_OPS_H_

#include <functional>
#include <optional>
#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "base/budget.h"
#include "base/status.h"

namespace rpqi {

/// Returns an ε-free NFA with the same language (forward ε-closure folding).
Nfa RemoveEpsilon(const Nfa& nfa);

/// Drops states that are not both reachable from an initial state and
/// co-reachable to an accepting state.
Nfa Trim(const Nfa& nfa);

/// Subset construction. Fails with ResourceExhausted if more than `max_states`
/// subset states are discovered; `budget` (optional) additionally enforces a
/// wall-clock deadline and cooperative cancellation. With `threads > 1` the
/// BFS frontier is partitioned across a worker pool (level-synchronous: the
/// workers evaluate subset steps, a serial merge interns them in frontier
/// order), producing a DFA bit-identical to the serial construction; `threads
/// <= 0` uses GlobalThreadCount(). Budget state charges are identical on both
/// paths; deadline checks run once per frontier chunk when parallel.
StatusOr<Dfa> DeterminizeWithLimit(const Nfa& nfa, int64_t max_states,
                                   Budget* budget = nullptr, int threads = 1);

/// Subset construction with a generous default limit; aborts on blowup beyond
/// it (use DeterminizeWithLimit when the input is adversarial).
Dfa Determinize(const Nfa& nfa);

/// L(a) ∩ L(b) via the product construction (inputs may have ε-transitions).
/// With `threads > 1` the product frontier is explored by a worker pool with
/// a deterministic serial merge (bit-identical result); `threads <= 0` uses
/// GlobalThreadCount().
Nfa Intersect(const Nfa& a, const Nfa& b, int threads = 1);

/// L(a) ∪ L(b) by disjoint union of the automata.
Nfa UnionNfa(const Nfa& a, const Nfa& b);

/// L(a) · L(b) with ε-transitions from a's accepting states into b.
Nfa Concat(const Nfa& a, const Nfa& b);

/// L(a)*.
Nfa Star(const Nfa& a);

/// {reverse(w) : w ∈ L(a)} — flips transitions and swaps initial/accepting.
Nfa ReverseNfa(const Nfa& a);

/// Image of L(a) under a symbol-to-symbol homomorphism. `mapping[s]` is the
/// image symbol of s, or kEpsilon to erase s. The result is over
/// `new_num_symbols` symbols.
Nfa Project(const Nfa& a, const std::vector<int>& mapping, int new_num_symbols);

/// Membership test (handles ε-transitions).
bool Accepts(const Nfa& nfa, const std::vector<int>& word);

/// True if the automaton accepts no word.
bool IsEmpty(const Nfa& nfa);

/// A shortest accepted word, or nullopt if the language is empty.
std::optional<std::vector<int>> ShortestAcceptedWord(const Nfa& nfa);

/// True if L(a) ⊆ L(b). Runs an on-the-fly product of `a` with the lazily
/// determinized complement of `b`, pruned by a per-a-state antichain of
/// ⊆-minimal b-subsets; never materializes the full subset DFA.
bool IsContained(const Nfa& a, const Nfa& b);

/// Budgeted containment: like IsContained but every discovered product state
/// is charged against `budget`, and deadline/cancellation are honored.
StatusOr<bool> IsContainedWithBudget(const Nfa& a, const Nfa& b,
                                     Budget* budget);

/// True if L(a) = L(b).
bool AreEquivalent(const Nfa& a, const Nfa& b);

/// NFA accepting exactly the single word `word`.
Nfa SingleWordNfa(int num_symbols, const std::vector<int>& word);

/// NFA accepting Σ* over `num_symbols` symbols.
Nfa UniversalNfa(int num_symbols);

/// Re-hosts an automaton into a larger alphabet (language unchanged; the new
/// symbols simply never occur). `offset` shifts every existing symbol id.
Nfa WidenAlphabet(const Nfa& a, int new_num_symbols, int offset = 0);

}  // namespace rpqi

#endif  // RPQI_AUTOMATA_OPS_H_
