#ifndef RPQI_AUTOMATA_ADJACENCY_H_
#define RPQI_AUTOMATA_ADJACENCY_H_

#include <cstdint>
#include <vector>

#include "automata/nfa.h"
#include "base/logging.h"

namespace rpqi {

/// Per-(state, symbol) CSR index of an ε-free NFA's transitions. Subset steps
/// need exactly the targets of one symbol at a time; scanning each state's
/// full transition list instead costs a factor |Σ| more, which dominates once
/// the combined alphabets of the Section 4/5 constructions (Σ± + Σ_E± + $)
/// get wide.
class SymbolAdjacency {
 public:
  explicit SymbolAdjacency(const Nfa& nfa) : num_symbols_(nfa.num_symbols()) {
    const int n = nfa.NumStates();
    offsets_.assign(static_cast<size_t>(n) * num_symbols_ + 1, 0);
    for (int s = 0; s < n; ++s) {
      for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
        RPQI_CHECK(t.symbol != kEpsilon)
            << "SymbolAdjacency requires an ε-free NFA";
        ++offsets_[Index(s, t.symbol) + 1];
      }
    }
    for (size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
    targets_.resize(offsets_.back());
    std::vector<int32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (int s = 0; s < n; ++s) {
      for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
        targets_[cursor[Index(s, t.symbol)]++] = t.to;
      }
    }
  }

  const int32_t* begin(int state, int symbol) const {
    return targets_.data() + offsets_[Index(state, symbol)];
  }
  const int32_t* end(int state, int symbol) const {
    return targets_.data() + offsets_[Index(state, symbol) + 1];
  }

 private:
  size_t Index(int state, int symbol) const {
    return static_cast<size_t>(state) * num_symbols_ + symbol;
  }

  int num_symbols_;
  std::vector<int32_t> offsets_;  // (state·|Σ| + symbol) -> targets_ begin
  std::vector<int32_t> targets_;
};

}  // namespace rpqi

#endif  // RPQI_AUTOMATA_ADJACENCY_H_
