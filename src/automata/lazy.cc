#include "automata/lazy.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "automata/ops.h"

namespace rpqi {

// ---------------------------------------------------------------------------
// LazyDfaFromDfa

LazyDfaFromDfa::LazyDfaFromDfa(Dfa dfa) : dfa_(std::move(dfa)) {
  sink_ = dfa_.NumStates();  // virtual sink id
}

int LazyDfaFromDfa::Step(int state, int symbol) {
  if (state == sink_) return sink_;
  int to = dfa_.Next(state, symbol);
  return to < 0 ? sink_ : to;
}

bool LazyDfaFromDfa::IsAccepting(int state) {
  return state != sink_ && dfa_.IsAccepting(state);
}

// ---------------------------------------------------------------------------
// LazySubsetDfa

namespace {

Bitset NfaInitialClosure(const Nfa& nfa) {
  Bitset init(nfa.NumStates());
  for (int s : nfa.InitialStates()) init.Set(s);
  return init;  // nfa_ is ε-free here, closure is identity
}

}  // namespace

LazySubsetDfa::LazySubsetDfa(const Nfa& nfa, bool complement)
    : nfa_(RemoveEpsilon(nfa)), complement_(complement) {}

int LazySubsetDfa::Intern(const Bitset& subset) {
  int id = interner_.Intern(subset.words());
  if (id == static_cast<int>(subsets_.size())) {
    subsets_.push_back(subset);
    bool accepts = false;
    for (int s = subset.NextSetBit(0); s >= 0; s = subset.NextSetBit(s + 1)) {
      if (nfa_.IsAccepting(s)) {
        accepts = true;
        break;
      }
    }
    accepting_.push_back(accepts);
  }
  return id;
}

int LazySubsetDfa::StartState() { return Intern(NfaInitialClosure(nfa_)); }

int LazySubsetDfa::Step(int state, int symbol) {
  RPQI_CHECK(0 <= state && state < static_cast<int>(subsets_.size()));
  if (state >= static_cast<int>(step_cache_.size())) {
    step_cache_.resize(subsets_.size(),
                       std::vector<int>(nfa_.num_symbols(), -1));
  }
  int& cached = step_cache_[state][symbol];
  if (cached < 0) cached = ComputeStep(state, symbol);
  return cached;
}

int LazySubsetDfa::ComputeStep(int state, int symbol) {
  Bitset next(nfa_.NumStates());
  const Bitset& current = subsets_[state];
  for (int s = current.NextSetBit(0); s >= 0; s = current.NextSetBit(s + 1)) {
    for (const Nfa::Transition& t : nfa_.TransitionsFrom(s)) {
      if (t.symbol == symbol) next.Set(t.to);
    }
  }
  return Intern(next);
}

bool LazySubsetDfa::IsAccepting(int state) {
  RPQI_CHECK(0 <= state && state < static_cast<int>(accepting_.size()));
  return accepting_[state] != complement_;
}

// ---------------------------------------------------------------------------
// LazyProductDfa

LazyProductDfa::LazyProductDfa(std::vector<LazyDfa*> parts)
    : parts_(std::move(parts)) {
  RPQI_CHECK(!parts_.empty());
  num_symbols_ = parts_[0]->NumSymbols();
  for (LazyDfa* part : parts_) {
    RPQI_CHECK_EQ(part->NumSymbols(), num_symbols_);
  }
}

int LazyProductDfa::Intern(const std::vector<uint64_t>& key) {
  return interner_.Intern(key);
}

int LazyProductDfa::StartState() {
  std::vector<uint64_t> key(parts_.size());
  for (size_t i = 0; i < parts_.size(); ++i) {
    key[i] = static_cast<uint64_t>(parts_[i]->StartState());
  }
  return Intern(key);
}

int LazyProductDfa::Step(int state, int symbol) {
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  std::vector<uint64_t> next(parts_.size());
  for (size_t i = 0; i < parts_.size(); ++i) {
    next[i] = static_cast<uint64_t>(
        parts_[i]->Step(static_cast<int>(key[i]), symbol));
  }
  return Intern(next);
}

bool LazyProductDfa::IsAccepting(int state) {
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (!parts_[i]->IsAccepting(static_cast<int>(key[i]))) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// LazyImageSubsetDfa

LazyImageSubsetDfa::LazyImageSubsetDfa(LazyDfa* inner, std::vector<int> mapping,
                                       int image_symbols, bool complement)
    : inner_(inner),
      mapping_(std::move(mapping)),
      image_symbols_(image_symbols),
      complement_(complement),
      preimage_(image_symbols) {
  RPQI_CHECK_EQ(static_cast<int>(mapping_.size()), inner->NumSymbols());
  for (int symbol = 0; symbol < inner->NumSymbols(); ++symbol) {
    int image = mapping_[symbol];
    if (image == kEpsilon) {
      erased_symbols_.push_back(symbol);
    } else {
      RPQI_CHECK(0 <= image && image < image_symbols);
      preimage_[image].push_back(symbol);
    }
  }
}

int LazyImageSubsetDfa::CloseAndIntern(std::vector<int> states) {
  // BFS closure under erased-symbol steps.
  std::sort(states.begin(), states.end());
  states.erase(std::unique(states.begin(), states.end()), states.end());
  std::unordered_map<int, char> seen;
  std::vector<int> stack = states;
  for (int s : states) seen[s] = 1;
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (int symbol : erased_symbols_) {
      int to = inner_->Step(s, symbol);
      if (seen.try_emplace(to, 1).second) {
        states.push_back(to);
        stack.push_back(to);
      }
    }
  }
  std::sort(states.begin(), states.end());
  std::vector<uint64_t> key(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    key[i] = static_cast<uint64_t>(states[i]);
  }
  return interner_.Intern(key);
}

int LazyImageSubsetDfa::StartState() {
  return CloseAndIntern({inner_->StartState()});
}

int LazyImageSubsetDfa::Step(int state, int symbol) {
  RPQI_CHECK(0 <= symbol && symbol < image_symbols_);
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  std::vector<int> next;
  for (uint64_t raw : key) {
    int s = static_cast<int>(raw);
    for (int inner_symbol : preimage_[symbol]) {
      next.push_back(inner_->Step(s, inner_symbol));
    }
  }
  return CloseAndIntern(std::move(next));
}

bool LazyImageSubsetDfa::IsAccepting(int state) {
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  bool accepts = false;
  for (uint64_t raw : key) {
    if (inner_->IsAccepting(static_cast<int>(raw))) {
      accepts = true;
      break;
    }
  }
  return accepts != complement_;
}

// ---------------------------------------------------------------------------
// Emptiness / materialization

EmptinessResult FindAcceptedWord(LazyDfa* dfa, int64_t max_states,
                                 Budget* budget) {
  EmptinessResult result;
  const int num_symbols = dfa->NumSymbols();

  struct NodeInfo {
    int parent;
    int symbol;
  };
  std::vector<NodeInfo> info;            // indexed by BFS discovery order
  std::unordered_map<int, int> discovered;  // state id -> discovery index
  std::deque<std::pair<int, int>> queue;    // (state id, discovery index)

  int start = dfa->StartState();
  discovered[start] = 0;
  info.push_back({-1, -1});
  queue.push_back({start, 0});

  while (!queue.empty()) {
    if (Status budget_status = BudgetCheck(budget); !budget_status.ok()) {
      result.outcome = EmptinessResult::Outcome::kLimitExceeded;
      result.states_explored = static_cast<int64_t>(discovered.size());
      result.status = std::move(budget_status);
      return result;
    }
    auto [state, index] = queue.front();
    queue.pop_front();
    if (dfa->IsAccepting(state)) {
      std::vector<int> word;
      for (int i = index; info[i].parent != -1; i = info[i].parent) {
        word.push_back(info[i].symbol);
      }
      std::reverse(word.begin(), word.end());
      result.outcome = EmptinessResult::Outcome::kFoundWord;
      result.witness = std::move(word);
      result.states_explored = static_cast<int64_t>(discovered.size());
      return result;
    }
    for (int a = 0; a < num_symbols; ++a) {
      int to = dfa->Step(state, a);
      auto [it, inserted] =
          discovered.try_emplace(to, static_cast<int>(info.size()));
      if (inserted) {
        info.push_back({index, a});
        queue.push_back({to, it->second});
        Status charge_status = BudgetCharge(budget, 1);
        if (static_cast<int64_t>(discovered.size()) > max_states ||
            !charge_status.ok()) {
          result.outcome = EmptinessResult::Outcome::kLimitExceeded;
          result.states_explored = static_cast<int64_t>(discovered.size());
          result.status = charge_status.ok()
                              ? Status::ResourceExhausted(
                                    "emptiness search exceeded " +
                                    std::to_string(max_states) + " states")
                              : std::move(charge_status);
          return result;
        }
      }
    }
  }
  result.outcome = EmptinessResult::Outcome::kEmpty;
  result.states_explored = static_cast<int64_t>(discovered.size());
  return result;
}

EmptinessResult FindAcceptedWordWithNfa(const Nfa& input,
                                        const std::vector<LazyDfa*>& parts,
                                        int64_t max_states, Budget* budget) {
  const Nfa nfa = RemoveEpsilon(input);
  for (LazyDfa* part : parts) {
    RPQI_CHECK_EQ(part->NumSymbols(), nfa.num_symbols());
  }
  EmptinessResult result;

  struct NodeInfo {
    int parent;
    int symbol;
  };
  std::vector<NodeInfo> info;
  WordVectorInterner interner;
  std::deque<std::pair<int, int>> queue;  // (interned id, discovery index)

  auto intern = [&](int nfa_state, const std::vector<uint64_t>& part_states) {
    std::vector<uint64_t> key;
    key.reserve(parts.size() + 1);
    key.push_back(static_cast<uint64_t>(nfa_state));
    key.insert(key.end(), part_states.begin(), part_states.end());
    return interner.Intern(key);
  };

  std::vector<uint64_t> start_parts(parts.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    start_parts[i] = static_cast<uint64_t>(parts[i]->StartState());
  }
  for (int s : nfa.InitialStates()) {
    int id = intern(s, start_parts);
    if (id == static_cast<int>(info.size())) {
      info.push_back({-1, -1});
      queue.push_back({id, id});
    }
  }

  auto accepts = [&](int id) {
    const std::vector<uint64_t>& key = interner.KeyOf(id);
    if (!nfa.IsAccepting(static_cast<int>(key[0]))) return false;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (!parts[i]->IsAccepting(static_cast<int>(key[1 + i]))) return false;
    }
    return true;
  };

  while (!queue.empty()) {
    if (Status budget_status = BudgetCheck(budget); !budget_status.ok()) {
      result.outcome = EmptinessResult::Outcome::kLimitExceeded;
      result.states_explored = interner.size();
      result.status = std::move(budget_status);
      return result;
    }
    auto [id, index] = queue.front();
    queue.pop_front();
    if (accepts(id)) {
      std::vector<int> word;
      for (int i = index; info[i].parent != -1; i = info[i].parent) {
        word.push_back(info[i].symbol);
      }
      std::reverse(word.begin(), word.end());
      result.outcome = EmptinessResult::Outcome::kFoundWord;
      result.witness = std::move(word);
      result.states_explored = interner.size();
      return result;
    }
    const std::vector<uint64_t> key = interner.KeyOf(id);
    int nfa_state = static_cast<int>(key[0]);
    // Group NFA successors by symbol; each symbol advances all parts once.
    for (const Nfa::Transition& t : nfa.TransitionsFrom(nfa_state)) {
      std::vector<uint64_t> part_states(parts.size());
      for (size_t i = 0; i < parts.size(); ++i) {
        part_states[i] = static_cast<uint64_t>(
            parts[i]->Step(static_cast<int>(key[1 + i]), t.symbol));
      }
      int to = intern(t.to, part_states);
      if (to == static_cast<int>(info.size())) {
        info.push_back({index, t.symbol});
        queue.push_back({to, to});
        Status charge_status = BudgetCharge(budget, 1);
        if (interner.size() > max_states || !charge_status.ok()) {
          result.outcome = EmptinessResult::Outcome::kLimitExceeded;
          result.states_explored = interner.size();
          result.status = charge_status.ok()
                              ? Status::ResourceExhausted(
                                    "emptiness search exceeded " +
                                    std::to_string(max_states) + " states")
                              : std::move(charge_status);
          return result;
        }
      }
    }
  }
  result.outcome = EmptinessResult::Outcome::kEmpty;
  result.states_explored = interner.size();
  return result;
}

StatusOr<Dfa> MaterializeLazyDfa(LazyDfa* dfa, int64_t max_states,
                                 Budget* budget) {
  const int num_symbols = dfa->NumSymbols();
  std::unordered_map<int, int> dense;  // lazy state id -> dense id
  std::vector<int> lazy_id_of;         // dense id -> lazy state id
  std::vector<std::vector<int>> rows;

  int start = dfa->StartState();
  dense[start] = 0;
  lazy_id_of.push_back(start);

  for (size_t i = 0; i < lazy_id_of.size(); ++i) {
    RPQI_RETURN_IF_ERROR(BudgetCheck(budget));
    rows.emplace_back(num_symbols, -1);
    for (int a = 0; a < num_symbols; ++a) {
      int to = dfa->Step(lazy_id_of[i], a);
      auto [it, inserted] =
          dense.try_emplace(to, static_cast<int>(lazy_id_of.size()));
      if (inserted) {
        if (static_cast<int64_t>(lazy_id_of.size()) + 1 > max_states) {
          return Status::ResourceExhausted(
              "lazy DFA materialization exceeded " +
              std::to_string(max_states) + " states");
        }
        RPQI_RETURN_IF_ERROR(BudgetCharge(budget, 1));
        lazy_id_of.push_back(to);
      }
      rows[i][a] = it->second;
    }
  }

  Dfa result(num_symbols, static_cast<int>(lazy_id_of.size()));
  result.SetInitial(0);
  for (size_t i = 0; i < lazy_id_of.size(); ++i) {
    result.SetAccepting(static_cast<int>(i), dfa->IsAccepting(lazy_id_of[i]));
    for (int a = 0; a < num_symbols; ++a) {
      result.SetNext(static_cast<int>(i), a, rows[i][a]);
    }
  }
  return result;
}

}  // namespace rpqi
