#include "automata/lazy.h"

#include <algorithm>
#include <bit>
#include <deque>
#include <unordered_map>

#include "automata/ops.h"
#include "base/hash.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rpqi {

// ---------------------------------------------------------------------------
// LazyDfaFromDfa

LazyDfaFromDfa::LazyDfaFromDfa(Dfa dfa) : dfa_(std::move(dfa)) {
  sink_ = dfa_.NumStates();  // virtual sink id
}

int LazyDfaFromDfa::Step(int state, int symbol) {
  if (state == sink_) return sink_;
  int to = dfa_.Next(state, symbol);
  return to < 0 ? sink_ : to;
}

bool LazyDfaFromDfa::IsAccepting(int state) {
  return state != sink_ && dfa_.IsAccepting(state);
}

// ---------------------------------------------------------------------------
// LazySubsetDfa

namespace {

Bitset NfaInitialClosure(const Nfa& nfa) {
  Bitset init(nfa.NumStates());
  for (int s : nfa.InitialStates()) init.Set(s);
  return init;  // nfa_ is ε-free here, closure is identity
}

}  // namespace

LazySubsetDfa::LazySubsetDfa(const Nfa& nfa, bool complement)
    : nfa_(RemoveEpsilon(nfa)),
      complement_(complement),
      adjacency_(nfa_),
      scratch_next_(nfa_.NumStates()) {}

int LazySubsetDfa::Intern(const Bitset& subset) {
  int id = interner_.InternHashed(subset.words(), subset.Hash());
  if (id == static_cast<int>(subsets_.size())) {
    subsets_.push_back(subset);
    bool accepts = false;
    for (int s = subset.NextSetBit(0); s >= 0; s = subset.NextSetBit(s + 1)) {
      if (nfa_.IsAccepting(s)) {
        accepts = true;
        break;
      }
    }
    accepting_.push_back(accepts);
  }
  return id;
}

int LazySubsetDfa::StartState() { return Intern(NfaInitialClosure(nfa_)); }

int LazySubsetDfa::Step(int state, int symbol) {
  RPQI_CHECK(0 <= state && state < static_cast<int>(subsets_.size()));
  size_t index = static_cast<size_t>(state) * nfa_.num_symbols() + symbol;
  if (index >= step_cache_.size()) {
    step_cache_.resize(subsets_.size() * nfa_.num_symbols(), -1);
  }
  int& cached = step_cache_[index];
  if (cached < 0) cached = ComputeStep(state, symbol);
  return cached;
}

int LazySubsetDfa::ComputeStep(int state, int symbol) {
  scratch_next_.Clear();
  const Bitset& current = subsets_[state];
  for (int s = current.NextSetBit(0); s >= 0; s = current.NextSetBit(s + 1)) {
    for (const int32_t* t = adjacency_.begin(s, symbol),
                      * end = adjacency_.end(s, symbol);
         t != end; ++t) {
      scratch_next_.Set(*t);
    }
  }
  return Intern(scratch_next_);
}

bool LazySubsetDfa::IsAccepting(int state) {
  RPQI_CHECK(0 <= state && state < static_cast<int>(accepting_.size()));
  return accepting_[state] != complement_;
}

bool LazySubsetDfa::Subsumes(int state, int other) {
  const Bitset& fine = subsets_[state];
  const Bitset& coarse = subsets_[other];
  return complement_ ? fine.IsSubsetOf(coarse) : coarse.IsSubsetOf(fine);
}

SubsumptionSig LazySubsetDfa::SubsumptionSignature(int state) {
  // Lane-fold of the subset words: subset inclusion implies fold inclusion.
  // Complementing flips the subsumption direction, so the fold moves to the
  // antitone (shrink) side — keeping the filter words sparse either way.
  SubsumptionSig signature;
  uint64_t* side = complement_ ? signature.shrink : signature.grow;
  const std::vector<uint64_t>& words = subsets_[state].words();
  for (size_t i = 0; i < words.size(); ++i) side[i & 1] |= words[i];
  return signature;
}

// ---------------------------------------------------------------------------
// LazyProductDfa

LazyProductDfa::LazyProductDfa(std::vector<LazyDfa*> parts)
    : parts_(std::move(parts)) {
  RPQI_CHECK(!parts_.empty());
  num_symbols_ = parts_[0]->NumSymbols();
  for (LazyDfa* part : parts_) {
    RPQI_CHECK_EQ(part->NumSymbols(), num_symbols_);
    if (part->HasSubsumption()) has_subsumption_ = true;
  }
  scratch_key_.resize(parts_.size());
}

int LazyProductDfa::Intern(const std::vector<uint64_t>& key) {
  return interner_.Intern(key);
}

int LazyProductDfa::StartState() {
  for (size_t i = 0; i < parts_.size(); ++i) {
    scratch_key_[i] = static_cast<uint64_t>(parts_[i]->StartState());
  }
  return Intern(scratch_key_);
}

int LazyProductDfa::Step(int state, int symbol) {
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  for (size_t i = 0; i < parts_.size(); ++i) {
    scratch_key_[i] = static_cast<uint64_t>(
        parts_[i]->Step(static_cast<int>(key[i]), symbol));
  }
  return Intern(scratch_key_);
}

bool LazyProductDfa::IsAccepting(int state) {
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (!parts_[i]->IsAccepting(static_cast<int>(key[i]))) return false;
  }
  return true;
}

uint64_t LazyProductDfa::SubsumptionPartition(int state) {
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  uint64_t h = 0;
  for (size_t i = 0; i < parts_.size(); ++i) {
    h = HashCombine(h,
                    parts_[i]->SubsumptionPartition(static_cast<int>(key[i])));
  }
  return h;
}

bool LazyProductDfa::Subsumes(int state, int other) {
  const std::vector<uint64_t>& a = interner_.KeyOf(state);
  const std::vector<uint64_t>& b = interner_.KeyOf(other);
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (!parts_[i]->Subsumes(static_cast<int>(a[i]), static_cast<int>(b[i]))) {
      return false;
    }
  }
  return true;
}

SubsumptionSig LazyProductDfa::SubsumptionSignature(int state) {
  // The signature contract survives bitwise OR and any fixed per-part bit
  // permutation, so each part's signature is rotated and lane-swapped by the
  // part index before the union — decorrelating parts that would otherwise
  // pile their bits onto the same positions and blunt the filter.
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  SubsumptionSig signature;
  for (size_t i = 0; i < parts_.size(); ++i) {
    SubsumptionSig part =
        parts_[i]->SubsumptionSignature(static_cast<int>(key[i]));
    const int r = static_cast<int>((i * 23) & 63);
    const size_t lane = i & 1;
    signature.grow[lane] |= std::rotl(part.grow[0], r);
    signature.grow[lane ^ 1] |= std::rotl(part.grow[1], r);
    signature.shrink[lane] |= std::rotl(part.shrink[0], r);
    signature.shrink[lane ^ 1] |= std::rotl(part.shrink[1], r);
  }
  return signature;
}

// ---------------------------------------------------------------------------
// LazyImageSubsetDfa

LazyImageSubsetDfa::LazyImageSubsetDfa(LazyDfa* inner, std::vector<int> mapping,
                                       int image_symbols, bool complement)
    : inner_(inner),
      mapping_(std::move(mapping)),
      image_symbols_(image_symbols),
      complement_(complement),
      preimage_(image_symbols) {
  RPQI_CHECK_EQ(static_cast<int>(mapping_.size()), inner->NumSymbols());
  for (int symbol = 0; symbol < inner->NumSymbols(); ++symbol) {
    int image = mapping_[symbol];
    if (image == kEpsilon) {
      erased_symbols_.push_back(symbol);
    } else {
      RPQI_CHECK(0 <= image && image < image_symbols);
      preimage_[image].push_back(symbol);
    }
  }
}

int LazyImageSubsetDfa::CloseAndIntern(std::vector<int> states) {
  // BFS closure under erased-symbol steps.
  std::sort(states.begin(), states.end());
  states.erase(std::unique(states.begin(), states.end()), states.end());
  std::unordered_map<int, char> seen;
  std::vector<int> stack = states;
  for (int s : states) seen[s] = 1;
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (int symbol : erased_symbols_) {
      int to = inner_->Step(s, symbol);
      if (seen.try_emplace(to, 1).second) {
        states.push_back(to);
        stack.push_back(to);
      }
    }
  }
  std::sort(states.begin(), states.end());
  std::vector<uint64_t> key(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    key[i] = static_cast<uint64_t>(states[i]);
  }
  return interner_.Intern(key);
}

int LazyImageSubsetDfa::StartState() {
  return CloseAndIntern({inner_->StartState()});
}

int LazyImageSubsetDfa::Step(int state, int symbol) {
  RPQI_CHECK(0 <= symbol && symbol < image_symbols_);
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  std::vector<int> next;
  for (uint64_t raw : key) {
    int s = static_cast<int>(raw);
    for (int inner_symbol : preimage_[symbol]) {
      next.push_back(inner_->Step(s, inner_symbol));
    }
  }
  return CloseAndIntern(std::move(next));
}

bool LazyImageSubsetDfa::IsAccepting(int state) {
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  bool accepts = false;
  for (uint64_t raw : key) {
    if (inner_->IsAccepting(static_cast<int>(raw))) {
      accepts = true;
      break;
    }
  }
  return accepts != complement_;
}

bool LazyImageSubsetDfa::Subsumes(int state, int other) {
  // Keys are sorted unique inner ids; inclusion by std::includes. Without
  // complement bigger sets accept more, with complement smaller ones do.
  const std::vector<uint64_t>& a = interner_.KeyOf(state);
  const std::vector<uint64_t>& b = interner_.KeyOf(other);
  const std::vector<uint64_t>& fine = complement_ ? a : b;
  const std::vector<uint64_t>& coarse = complement_ ? b : a;
  return std::includes(coarse.begin(), coarse.end(), fine.begin(), fine.end());
}

SubsumptionSig LazyImageSubsetDfa::SubsumptionSignature(int state) {
  // Bloom filter over the inner ids: id-set inclusion implies bit inclusion,
  // moved to the antitone side under complement like the order itself.
  SubsumptionSig signature;
  uint64_t* side = complement_ ? signature.shrink : signature.grow;
  for (uint64_t raw : interner_.KeyOf(state)) {
    const unsigned bit = static_cast<unsigned>(raw) & 127;
    side[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
  return signature;
}

// ---------------------------------------------------------------------------
// Emptiness / materialization

namespace {

/// Antichain of queued states bucketed by subsumption partition. A candidate
/// dominated by a member is discarded; otherwise it joins its bucket,
/// superseding the members it dominates (those stay queued — only their
/// future pruning power is taken over).
///
/// Two devices keep the per-discovery linear scan affordable even when a
/// partition is coarse (e.g. the table/subset automata put every state in one
/// bucket):
///  - tier 1: the candidate's own partition bucket is scanned exhaustively.
///    Partitions group the states most likely to dominate each other, so
///    these buckets stay small and the scan stays cheap.
///  - tier 2: a single bounded cross-partition pool (the first
///    kGlobalMembers undominated states of the whole search) is scanned with
///    a signature pre-filter — a member can only dominate the candidate if
///    grow(candidate) ⊆ grow(member) and shrink(member) ⊆ shrink(candidate)
///    lanewise, so most pairs are rejected with four AND-NOTs. The
///    pool is bounded so each Blocks call costs O(bucket + kGlobalMembers);
///    once full, later states are still checked against it (and can still be
///    pruned) but stop contributing cross-partition pruning power, which
///    affects neither soundness nor the shortest-witness guarantee.
class SubsumptionAntichain {
  struct Bucket {
    std::vector<int> ids;
    std::vector<SubsumptionSig> sigs;  // parallel to ids
  };

 public:
  template <typename SubsumesFn>
  bool Blocks(int candidate, uint64_t partition, SubsumptionSig signature,
              SubsumesFn subsumes) {
    Bucket& bucket = buckets_[partition];
    for (size_t i = 0; i < bucket.sigs.size(); ++i) {
      if (MayDominate(bucket.sigs[i], signature) &&
          subsumes(bucket.ids[i], candidate)) {
        return true;
      }
    }
    for (size_t i = 0; i < global_ids_.size(); ++i) {
      if (MayDominate(global_sigs_[i], signature) &&
          subsumes(global_ids_[i], candidate)) {
        return true;
      }
    }
    Erase(bucket, candidate, signature, subsumes);
    bucket.ids.push_back(candidate);
    bucket.sigs.push_back(signature);
    if (global_ids_.size() < kGlobalMembers) {
      global_ids_.push_back(candidate);
      global_sigs_.push_back(signature);
    }
    return false;
  }

  int64_t TotalSize() const {
    int64_t total = 0;
    for (const auto& [partition, bucket] : buckets_) {
      total += static_cast<int64_t>(bucket.ids.size());
    }
    return total;
  }

 private:
  /// Signature pre-filter: false proves `dominator` cannot subsume
  /// `candidate`; true says nothing. One branch, four AND-NOTs per pair.
  static bool MayDominate(const SubsumptionSig& dominator,
                          const SubsumptionSig& candidate) {
    return ((candidate.grow[0] & ~dominator.grow[0]) |
            (candidate.grow[1] & ~dominator.grow[1]) |
            (dominator.shrink[0] & ~candidate.shrink[0]) |
            (dominator.shrink[1] & ~candidate.shrink[1])) == 0;
  }

  /// Drops the bucket members the candidate supersedes (they stay queued —
  /// only their future pruning power is taken over). The global pool keeps
  /// superseded members: redundant but sound, and eviction would only free
  /// slots for weaker (later, more specific) states.
  template <typename SubsumesFn>
  void Erase(Bucket& bucket, int candidate, SubsumptionSig signature,
             SubsumesFn subsumes) {
    size_t kept = 0;
    for (size_t i = 0; i < bucket.sigs.size(); ++i) {
      if (MayDominate(signature, bucket.sigs[i]) &&
          subsumes(candidate, bucket.ids[i])) {
        continue;  // superseded by the candidate
      }
      bucket.ids[kept] = bucket.ids[i];
      bucket.sigs[kept] = bucket.sigs[i];
      ++kept;
    }
    bucket.ids.resize(kept);
    bucket.sigs.resize(kept);
  }

  static constexpr size_t kGlobalMembers = 1 << 11;
  std::unordered_map<uint64_t, Bucket> buckets_;
  // Tier-2 pool; sigs packed separately from ids so the hot scan streams
  // 32-byte signature records and only touches ids on a filter hit.
  std::vector<int> global_ids_;
  std::vector<SubsumptionSig> global_sigs_;
};

}  // namespace

EmptinessResult FindAcceptedWord(LazyDfa* dfa, int64_t max_states,
                                 Budget* budget) {
  // Flushed once per search (not per state) so the hot loop stays clean.
  static const obs::Counter searches_counter("emptiness.searches");
  static const obs::Counter queued_counter("emptiness.states_queued");
  static const obs::Counter pruned_counter("emptiness.states_pruned");
  static const obs::Counter checks_counter("emptiness.budget_checks");
  obs::Span span("emptiness.search");
  EmptinessResult result;
  const int num_symbols = dfa->NumSymbols();
  const bool use_antichain = dfa->HasSubsumption();

  struct NodeInfo {
    int parent;
    int symbol;
  };
  std::vector<NodeInfo> info;            // indexed by BFS discovery order
  std::unordered_map<int, int> discovered;  // state id -> discovery index
  std::deque<std::pair<int, int>> queue;    // (state id, discovery index)
  SubsumptionAntichain antichain;
  auto subsumes = [&](int s, int t) { return dfa->Subsumes(s, t); };
  auto blocks = [&](int state) {
    return antichain.Blocks(state, dfa->SubsumptionPartition(state),
                            dfa->SubsumptionSignature(state), subsumes);
  };
  int64_t queued_states = 0;
  int64_t budget_checks = 0;
  auto finalize_stats = [&] {
    result.states_explored = queued_states;
    result.antichain_size = use_antichain ? antichain.TotalSize() : 0;
    searches_counter.Increment();
    queued_counter.Add(queued_states);
    pruned_counter.Add(result.states_pruned);
    checks_counter.Add(budget_checks);
    span.Note("states_explored", result.states_explored);
    span.Note("states_pruned", result.states_pruned);
    span.Note("antichain_size", result.antichain_size);
  };

  int start = dfa->StartState();
  discovered[start] = 0;
  info.push_back({-1, -1});
  queue.push_back({start, 0});
  queued_states = 1;
  if (use_antichain) blocks(start);

  while (!queue.empty()) {
    ++budget_checks;
    if (Status budget_status = BudgetCheck(budget); !budget_status.ok()) {
      result.outcome = EmptinessResult::Outcome::kLimitExceeded;
      finalize_stats();
      result.status = std::move(budget_status);
      return result;
    }
    auto [state, index] = queue.front();
    queue.pop_front();
    if (dfa->IsAccepting(state)) {
      std::vector<int> word;
      for (int i = index; info[i].parent != -1; i = info[i].parent) {
        word.push_back(info[i].symbol);
      }
      std::reverse(word.begin(), word.end());
      result.outcome = EmptinessResult::Outcome::kFoundWord;
      result.witness = std::move(word);
      finalize_stats();
      return result;
    }
    for (int a = 0; a < num_symbols; ++a) {
      int to = dfa->Step(state, a);
      auto [it, inserted] = discovered.try_emplace(to, -1);
      if (!inserted) continue;
      if (use_antichain && blocks(to)) {
        // Leave the -1 marker: a dominated state is dominated forever.
        ++result.states_pruned;
        continue;
      }
      it->second = static_cast<int>(info.size());
      info.push_back({index, a});
      queue.push_back({to, it->second});
      ++queued_states;
      Status charge_status = BudgetCharge(budget, 1);
      if (queued_states > max_states || !charge_status.ok()) {
        result.outcome = EmptinessResult::Outcome::kLimitExceeded;
        finalize_stats();
        result.status = charge_status.ok()
                            ? Status::ResourceExhausted(
                                  "emptiness search exceeded " +
                                  std::to_string(max_states) + " states")
                            : std::move(charge_status);
        return result;
      }
    }
  }
  result.outcome = EmptinessResult::Outcome::kEmpty;
  finalize_stats();
  return result;
}

EmptinessResult FindAcceptedWordWithNfa(const Nfa& input,
                                        const std::vector<LazyDfa*>& parts,
                                        int64_t max_states, Budget* budget) {
  static const obs::Counter searches_counter("emptiness.searches");
  static const obs::Counter queued_counter("emptiness.states_queued");
  static const obs::Counter pruned_counter("emptiness.states_pruned");
  static const obs::Counter checks_counter("emptiness.budget_checks");
  obs::Span span("emptiness.search_nfa");
  const Nfa nfa = RemoveEpsilon(input);
  for (LazyDfa* part : parts) {
    RPQI_CHECK_EQ(part->NumSymbols(), nfa.num_symbols());
  }
  EmptinessResult result;
  bool use_antichain = false;
  for (LazyDfa* part : parts) {
    if (part->HasSubsumption()) use_antichain = true;
  }

  struct NodeInfo {
    int parent;
    int symbol;
  };
  std::vector<NodeInfo> info;     // indexed by BFS discovery order
  std::vector<int> index_of_id;   // interned id -> info index, -1 = pruned
  WordVectorInterner interner;
  std::deque<std::pair<int, int>> queue;  // (interned id, discovery index)
  SubsumptionAntichain antichain;
  int64_t queued_states = 0;
  int64_t budget_checks = 0;
  auto finalize_stats = [&] {
    result.states_explored = queued_states;
    result.antichain_size = use_antichain ? antichain.TotalSize() : 0;
    searches_counter.Increment();
    queued_counter.Add(queued_states);
    pruned_counter.Add(result.states_pruned);
    checks_counter.Add(budget_checks);
    span.Note("states_explored", result.states_explored);
    span.Note("states_pruned", result.states_pruned);
    span.Note("antichain_size", result.antichain_size);
  };

  auto intern = [&](int nfa_state, const std::vector<uint64_t>& part_states) {
    std::vector<uint64_t> key;
    key.reserve(parts.size() + 1);
    key.push_back(static_cast<uint64_t>(nfa_state));
    key.insert(key.end(), part_states.begin(), part_states.end());
    return interner.Intern(key);
  };
  // Tuple subsumption: the NFA component must match exactly; the parts are
  // compared componentwise (parts without subsumption require equality).
  auto partition = [&](int id) {
    const std::vector<uint64_t>& key = interner.KeyOf(id);
    uint64_t h = HashCombine(0, key[0]);
    for (size_t i = 0; i < parts.size(); ++i) {
      h = HashCombine(
          h, parts[i]->SubsumptionPartition(static_cast<int>(key[1 + i])));
    }
    return h;
  };
  auto subsumes = [&](int s, int t) {
    const std::vector<uint64_t>& a = interner.KeyOf(s);
    const std::vector<uint64_t>& b = interner.KeyOf(t);
    if (a[0] != b[0]) return false;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (!parts[i]->Subsumes(static_cast<int>(a[1 + i]),
                              static_cast<int>(b[1 + i]))) {
        return false;
      }
    }
    return true;
  };
  auto blocks = [&](int id) {
    const std::vector<uint64_t>& key = interner.KeyOf(id);
    // The NFA component requires equality, so its Bloom bit is monotone too.
    SubsumptionSig signature;
    const unsigned nfa_bit = static_cast<unsigned>(key[0]) & 127;
    signature.grow[nfa_bit >> 6] |= uint64_t{1} << (nfa_bit & 63);
    // Same per-part rotation/lane-swap decorrelation as the lazy product.
    for (size_t i = 0; i < parts.size(); ++i) {
      SubsumptionSig part =
          parts[i]->SubsumptionSignature(static_cast<int>(key[1 + i]));
      const int r = static_cast<int>((i * 23) & 63);
      const size_t lane = i & 1;
      signature.grow[lane] |= std::rotl(part.grow[0], r);
      signature.grow[lane ^ 1] |= std::rotl(part.grow[1], r);
      signature.shrink[lane] |= std::rotl(part.shrink[0], r);
      signature.shrink[lane ^ 1] |= std::rotl(part.shrink[1], r);
    }
    return antichain.Blocks(id, partition(id), signature, subsumes);
  };

  std::vector<uint64_t> start_parts(parts.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    start_parts[i] = static_cast<uint64_t>(parts[i]->StartState());
  }
  for (int s : nfa.InitialStates()) {
    int id = intern(s, start_parts);
    if (id == static_cast<int>(index_of_id.size())) {
      if (use_antichain && blocks(id)) {
        index_of_id.push_back(-1);
        ++result.states_pruned;
        continue;
      }
      index_of_id.push_back(static_cast<int>(info.size()));
      info.push_back({-1, -1});
      queue.push_back({id, index_of_id[id]});
      ++queued_states;
    }
  }

  auto accepts = [&](int id) {
    const std::vector<uint64_t>& key = interner.KeyOf(id);
    if (!nfa.IsAccepting(static_cast<int>(key[0]))) return false;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (!parts[i]->IsAccepting(static_cast<int>(key[1 + i]))) return false;
    }
    return true;
  };

  while (!queue.empty()) {
    ++budget_checks;
    if (Status budget_status = BudgetCheck(budget); !budget_status.ok()) {
      result.outcome = EmptinessResult::Outcome::kLimitExceeded;
      finalize_stats();
      result.status = std::move(budget_status);
      return result;
    }
    auto [id, index] = queue.front();
    queue.pop_front();
    if (accepts(id)) {
      std::vector<int> word;
      for (int i = index; info[i].parent != -1; i = info[i].parent) {
        word.push_back(info[i].symbol);
      }
      std::reverse(word.begin(), word.end());
      result.outcome = EmptinessResult::Outcome::kFoundWord;
      result.witness = std::move(word);
      finalize_stats();
      return result;
    }
    const std::vector<uint64_t> key = interner.KeyOf(id);
    int nfa_state = static_cast<int>(key[0]);
    // Group NFA successors by symbol; each symbol advances all parts once.
    for (const Nfa::Transition& t : nfa.TransitionsFrom(nfa_state)) {
      std::vector<uint64_t> part_states(parts.size());
      for (size_t i = 0; i < parts.size(); ++i) {
        part_states[i] = static_cast<uint64_t>(
            parts[i]->Step(static_cast<int>(key[1 + i]), t.symbol));
      }
      int to = intern(t.to, part_states);
      if (to == static_cast<int>(index_of_id.size())) {
        if (use_antichain && blocks(to)) {
          index_of_id.push_back(-1);
          ++result.states_pruned;
          continue;
        }
        index_of_id.push_back(static_cast<int>(info.size()));
        info.push_back({index, t.symbol});
        queue.push_back({to, index_of_id[to]});
        ++queued_states;
        Status charge_status = BudgetCharge(budget, 1);
        if (queued_states > max_states || !charge_status.ok()) {
          result.outcome = EmptinessResult::Outcome::kLimitExceeded;
          finalize_stats();
          result.status = charge_status.ok()
                              ? Status::ResourceExhausted(
                                    "emptiness search exceeded " +
                                    std::to_string(max_states) + " states")
                              : std::move(charge_status);
          return result;
        }
      }
    }
  }
  result.outcome = EmptinessResult::Outcome::kEmpty;
  finalize_stats();
  return result;
}

StatusOr<Dfa> MaterializeLazyDfa(LazyDfa* dfa, int64_t max_states,
                                 Budget* budget) {
  static const obs::Counter runs_counter("materialize.runs");
  static const obs::Counter states_counter("materialize.states");
  obs::Span span("automata.materialize");
  const int num_symbols = dfa->NumSymbols();
  std::unordered_map<int, int> dense;  // lazy state id -> dense id
  std::vector<int> lazy_id_of;         // dense id -> lazy state id
  std::vector<std::vector<int>> rows;

  int start = dfa->StartState();
  dense[start] = 0;
  lazy_id_of.push_back(start);

  for (size_t i = 0; i < lazy_id_of.size(); ++i) {
    RPQI_RETURN_IF_ERROR(BudgetCheck(budget));
    rows.emplace_back(num_symbols, -1);
    for (int a = 0; a < num_symbols; ++a) {
      int to = dfa->Step(lazy_id_of[i], a);
      auto [it, inserted] =
          dense.try_emplace(to, static_cast<int>(lazy_id_of.size()));
      if (inserted) {
        if (static_cast<int64_t>(lazy_id_of.size()) + 1 > max_states) {
          return Status::ResourceExhausted(
              "lazy DFA materialization exceeded " +
              std::to_string(max_states) + " states");
        }
        // Allocation-failure injection twin of automata.determinize_state,
        // covering the product/materialization side of the hot path.
        RPQI_FAULT_POINT("automata.materialize_state",
                         Status::ResourceExhausted(
                             "injected state-allocation failure in lazy DFA "
                             "materialization"));
        RPQI_RETURN_IF_ERROR(BudgetCharge(budget, 1));
        lazy_id_of.push_back(to);
      }
      rows[i][a] = it->second;
    }
  }

  Dfa result(num_symbols, static_cast<int>(lazy_id_of.size()));
  result.SetInitial(0);
  for (size_t i = 0; i < lazy_id_of.size(); ++i) {
    result.SetAccepting(static_cast<int>(i), dfa->IsAccepting(lazy_id_of[i]));
    for (int a = 0; a < num_symbols; ++a) {
      result.SetNext(static_cast<int>(i), a, rows[i][a]);
    }
  }
  runs_counter.Increment();
  states_counter.Add(static_cast<int64_t>(lazy_id_of.size()));
  span.Note("states", static_cast<int64_t>(lazy_id_of.size()));
  return result;
}

}  // namespace rpqi
