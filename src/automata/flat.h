#ifndef RPQI_AUTOMATA_FLAT_H_
#define RPQI_AUTOMATA_FLAT_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "automata/nfa.h"
#include "base/logging.h"
#include "base/status.h"

namespace rpqi {

/// Flat compiled plan form of an ε-free NFA ("RPQIPLAN1"; DESIGN.md §16).
///
/// The general Nfa stores one heap vector per state, so the eval product BFS
/// chases two pointers per expanded configuration. The flat form pre-applies
/// the ε-closure and packs every transition into ONE contiguous array of
/// (symbol, target) pairs with a CSR-style offset table — the same layout the
/// graph side uses (LabelCsr) — so the BFS inner loop walks two flat spans.
/// Per-state spans are sorted by (symbol, target) and deduplicated, which
/// makes `EdgesFor(state, symbol)` a binary search and the whole structure
/// byte-stable for serialization.
///
/// Initial/accepting membership is kept as word bitsets plus an explicit
/// sorted initial-state list (the BFS seeds from the list; the bitsets are
/// the O(1) membership test and the serialized form).
///
/// Invariants (enforced by CompileFlat on the trusted path and by
/// ValidateFlatNfa in src/analysis on the deserialization path):
///   * offsets().size() == NumStates() + 1, offsets()[0] == 0, monotone,
///     back() == NumEdges();
///   * every edge: 0 <= symbol < num_symbols(), 0 <= to < NumStates()
///     (no ε — the flat form is ε-free by construction);
///   * each state's span strictly increasing by (symbol, to);
///   * initial/accepting words sized ceil(states / 64) with zero tail bits,
///     and InitialStates() sorted, duplicate-free, equal to the initial
///     bitset as a set.
class FlatNfa {
 public:
  struct Edge {
    int32_t symbol;
    int32_t to;

    friend bool operator==(const Edge& a, const Edge& b) {
      return a.symbol == b.symbol && a.to == b.to;
    }
    friend bool operator<(const Edge& a, const Edge& b) {
      return a.symbol != b.symbol ? a.symbol < b.symbol : a.to < b.to;
    }
  };
  static_assert(sizeof(Edge) == 8, "edges are serialized as two i32 words");

  FlatNfa() = default;

  /// Assembles a FlatNfa from raw parts WITHOUT checking the invariants
  /// above. Trusted builders (CompileFlat) uphold them by construction;
  /// untrusted data (DecodeFlatPlan) must pass ValidateFlatNfa before the
  /// span accessors are used.
  static FlatNfa FromPartsUnchecked(int num_symbols,
                                    std::vector<uint32_t> offsets,
                                    std::vector<Edge> edges,
                                    std::vector<uint64_t> initial_words,
                                    std::vector<uint64_t> accepting_words,
                                    std::vector<int32_t> initial_list) {
    FlatNfa flat;
    flat.num_symbols_ = num_symbols;
    flat.offsets_ = std::move(offsets);
    flat.edges_ = std::move(edges);
    flat.initial_words_ = std::move(initial_words);
    flat.accepting_words_ = std::move(accepting_words);
    flat.initial_list_ = std::move(initial_list);
    return flat;
  }

  int num_symbols() const { return num_symbols_; }
  int NumStates() const {
    return offsets_.empty() ? 0 : static_cast<int>(offsets_.size()) - 1;
  }
  int64_t NumEdges() const { return static_cast<int64_t>(edges_.size()); }

  /// All out-edges of `state`, sorted by (symbol, target) — the eval BFS
  /// iterates this span directly.
  std::span<const Edge> Edges(int state) const {
    RPQI_DCHECK(0 <= state && state < NumStates());
    return {edges_.data() + offsets_[state],
            static_cast<size_t>(offsets_[state + 1] - offsets_[state])};
  }

  /// The sub-span of Edges(state) carrying exactly `symbol`: binary search
  /// over the sorted span (states have few distinct symbols, so this beats a
  /// per-(state, symbol) offset table that would cost states × symbols).
  std::span<const Edge> EdgesFor(int state, int symbol) const {
    std::span<const Edge> all = Edges(state);
    auto lo = std::lower_bound(
        all.begin(), all.end(), symbol,
        [](const Edge& e, int s) { return e.symbol < s; });
    auto hi = std::upper_bound(
        lo, all.end(), symbol, [](int s, const Edge& e) { return s < e.symbol; });
    return {lo, hi};
  }

  bool IsInitial(int state) const {
    RPQI_DCHECK(0 <= state && state < NumStates());
    return (initial_words_[state >> 6] >> (state & 63)) & 1;
  }
  bool IsAccepting(int state) const {
    RPQI_DCHECK(0 <= state && state < NumStates());
    return (accepting_words_[state >> 6] >> (state & 63)) & 1;
  }
  bool HasAcceptingState() const {
    for (uint64_t w : accepting_words_)
      if (w != 0) return true;
    return false;
  }

  /// Sorted, duplicate-free initial-state ids.
  std::span<const int32_t> InitialStates() const { return initial_list_; }

  /// Exact heap footprint (capacity, not size — this feeds the plan cache's
  /// byte budget, which bounds *resident* bytes).
  int64_t ByteSize() const {
    return static_cast<int64_t>(sizeof(FlatNfa)) +
           static_cast<int64_t>(offsets_.capacity()) * sizeof(uint32_t) +
           static_cast<int64_t>(edges_.capacity()) * sizeof(Edge) +
           static_cast<int64_t>(initial_words_.capacity() +
                                accepting_words_.capacity()) *
               sizeof(uint64_t) +
           static_cast<int64_t>(initial_list_.capacity()) * sizeof(int32_t);
  }

  // Raw part views for serialization and validation (analysis reads these
  // with its own bounds checks — never the span accessors, which assume the
  // invariants already hold).
  const std::vector<uint32_t>& offsets() const { return offsets_; }
  const std::vector<Edge>& edges() const { return edges_; }
  const std::vector<uint64_t>& initial_words() const { return initial_words_; }
  const std::vector<uint64_t>& accepting_words() const {
    return accepting_words_;
  }
  const std::vector<int32_t>& initial_list() const { return initial_list_; }

 private:
  int num_symbols_ = 0;
  std::vector<uint32_t> offsets_;  // NumStates() + 1 entries
  std::vector<Edge> edges_;
  std::vector<uint64_t> initial_words_;    // ceil(NumStates() / 64)
  std::vector<uint64_t> accepting_words_;  // ceil(NumStates() / 64)
  std::vector<int32_t> initial_list_;
};

/// Compiles `nfa` to the flat plan form: applies RemoveEpsilon when needed,
/// then packs, sorts, and deduplicates the per-state edge lists. The result
/// always satisfies the FlatNfa invariants.
FlatNfa CompileFlat(const Nfa& nfa);

/// A serializable compiled plan: the flat automaton plus an opaque caller
/// tag (the serving layer stores the full plan-cache key and compares it on
/// load, so a filename hash collision can never alias two plans) and an
/// optional precomputed answer set (u32 pairs; the serving layer stores
/// eval's node-id pairs, sound because the tag pins the snapshot content).
struct FlatPlan {
  FlatNfa nfa;
  std::string tag;
  bool has_answers = false;
  std::vector<std::pair<uint32_t, uint32_t>> answers;
};

/// Binary plan format "RPQIPLAN1": a fixed little-endian header (magic,
/// version, endian tag, total size, whole-file checksum, counts) followed by
/// 8-aligned sections in fixed order (tag bytes, offsets, edges, initial
/// words, accepting words, initial list, answers). Same discipline as the
/// columnar snapshot format (graphdb/columnar.cc): the checksum covers every
/// byte except its own field, so a flip anywhere is rejected; validation
/// errors name the absolute byte offset of the offending field.
inline constexpr char kFlatPlanMagic[12] = {'R', 'P', 'Q', 'I', 'P', 'L',
                                            'A', 'N', '1', '\0', '\0', '\0'};
inline constexpr uint32_t kFlatPlanVersion = 1;
inline constexpr uint32_t kFlatPlanEndianTag = 0x01020304;

/// True when `prefix` (the first bytes of a file) starts with the plan magic.
bool IsFlatPlan(std::string_view prefix);

/// Exact encoded size of `plan` in bytes — EncodeFlatPlan(plan).size()
/// without building the buffer (the disk-store accounting uses this).
int64_t EncodedFlatPlanBytes(const FlatPlan& plan);

/// Serializes to the RPQIPLAN1 wire form. The nfa must satisfy the FlatNfa
/// invariants (CHECK-enforced cheaply: counts only).
std::string EncodeFlatPlan(const FlatPlan& plan);

/// Parses and fully validates an untrusted buffer: header checks, size and
/// count plausibility, whole-file checksum, then ValidateFlatNfa over the
/// decoded automaton. Never aborts on malformed input — every rejection is a
/// Status naming `source_name` and a byte offset.
StatusOr<FlatPlan> DecodeFlatPlan(std::string_view bytes,
                                  std::string_view source_name);

}  // namespace rpqi

#endif  // RPQI_AUTOMATA_FLAT_H_
