#ifndef RPQI_AUTOMATA_RANDOM_H_
#define RPQI_AUTOMATA_RANDOM_H_

#include <random>
#include <vector>

#include "automata/nfa.h"
#include "automata/two_way.h"

namespace rpqi {

/// Options for random automaton generation (used by property tests and the
/// translation benches; all generation is seeded and deterministic).
struct RandomAutomatonOptions {
  int num_states = 4;
  int num_symbols = 2;
  /// Expected number of outgoing transitions per (state, symbol).
  double transition_density = 1.0;
  /// Probability that a state is accepting (at least one is forced).
  double accepting_probability = 0.3;
};

/// A random NFA with one initial state.
Nfa RandomNfa(std::mt19937_64& rng, const RandomAutomatonOptions& options);

/// A random two-way NFA; moves are drawn uniformly from {left, stay, right}.
TwoWayNfa RandomTwoWayNfa(std::mt19937_64& rng,
                          const RandomAutomatonOptions& options);

/// A uniformly random word of the given length over [0, num_symbols).
std::vector<int> RandomWord(std::mt19937_64& rng, int num_symbols, int length);

}  // namespace rpqi

#endif  // RPQI_AUTOMATA_RANDOM_H_
