#ifndef RPQI_AUTOMATA_DFA_H_
#define RPQI_AUTOMATA_DFA_H_

#include <vector>

#include "base/logging.h"

namespace rpqi {

class Nfa;

/// A complete deterministic finite automaton: every state has exactly one
/// successor per symbol (a rejecting sink plays the role of "no transition").
class Dfa {
 public:
  Dfa(int num_symbols, int num_states)
      : num_symbols_(num_symbols),
        num_states_(num_states),
        next_(static_cast<size_t>(num_states) * num_symbols, -1),
        accepting_(num_states, false),
        initial_(0) {
    RPQI_CHECK_GE(num_symbols, 0);
    RPQI_CHECK_GT(num_states, 0);
  }

  int num_symbols() const { return num_symbols_; }
  int NumStates() const { return num_states_; }

  int initial() const { return initial_; }
  void SetInitial(int state) {
    RPQI_CHECK(0 <= state && state < num_states_);
    initial_ = state;
  }

  void SetAccepting(int state, bool value = true) {
    RPQI_CHECK(0 <= state && state < num_states_);
    accepting_[state] = value;
  }
  bool IsAccepting(int state) const {
    // Interior hot-loop read (the subset-construction and rewriting inner
    // loops call this per transition): bounds are established by the
    // construction-time RPQI_CHECKs above, so release builds skip the check.
    RPQI_DCHECK(0 <= state && state < num_states_);
    return accepting_[state];
  }

  void SetNext(int state, int symbol, int to) {
    RPQI_CHECK(0 <= state && state < num_states_);
    RPQI_CHECK(0 <= symbol && symbol < num_symbols_);
    RPQI_CHECK(0 <= to && to < num_states_);
    next_[static_cast<size_t>(state) * num_symbols_ + symbol] = to;
  }

  int Next(int state, int symbol) const {
    // Same contract as IsAccepting: two checks per transition dominated the
    // release-mode rewriting loops, and SetNext/SetInitial already reject
    // out-of-range ids at construction.
    RPQI_DCHECK(0 <= state && state < num_states_);
    RPQI_DCHECK(0 <= symbol && symbol < num_symbols_);
    return next_[static_cast<size_t>(state) * num_symbols_ + symbol];
  }

  /// True if every (state, symbol) pair has a successor.
  bool IsComplete() const {
    for (int v : next_)
      if (v < 0) return false;
    return true;
  }

  bool Accepts(const std::vector<int>& word) const {
    int state = initial_;
    for (int symbol : word) {
      state = Next(state, symbol);
      if (state < 0) return false;
    }
    return accepting_[state];
  }

 private:
  int num_symbols_;
  int num_states_;
  std::vector<int> next_;
  std::vector<bool> accepting_;
  int initial_;
};

/// Ensures totality by adding a rejecting sink if any transition is missing.
Dfa Complete(const Dfa& dfa);

/// Language complement: completes, then flips acceptance.
Dfa ComplementDfa(const Dfa& dfa);

/// Hopcroft partition-refinement minimization. The result is complete and has
/// the minimum number of states among complete DFAs for the language
/// (including the sink state, if the language is not universal-prefix-closed).
Dfa Minimize(const Dfa& dfa);

/// Converts to an equivalent NFA (one initial state, same transitions).
Nfa DfaToNfa(const Dfa& dfa);

}  // namespace rpqi

#endif  // RPQI_AUTOMATA_DFA_H_
