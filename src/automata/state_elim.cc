#include "automata/state_elim.h"

#include <map>
#include <utility>

#include "automata/ops.h"

namespace rpqi {

RegexPtr NfaToRegex(const Nfa& input,
                    const std::vector<RegexPtr>& atom_of_symbol) {
  RPQI_CHECK_EQ(static_cast<int>(atom_of_symbol.size()), input.num_symbols());
  const Nfa nfa = Trim(input);
  const int n = nfa.NumStates();

  // Work on a generalized NFA with fresh start (n) and end (n+1) states and a
  // regex label per ordered state pair.
  const int start = n;
  const int end = n + 1;
  std::map<std::pair<int, int>, RegexPtr> label;
  auto add = [&](int from, int to, const RegexPtr& regex) {
    auto [it, inserted] = label.try_emplace({from, to}, regex);
    if (!inserted) it->second = RUnion(it->second, regex);
  };

  for (int s = 0; s < n; ++s) {
    if (nfa.IsInitial(s)) add(start, s, REpsilon());
    if (nfa.IsAccepting(s)) add(s, end, REpsilon());
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      add(s, t.to, t.symbol == kEpsilon ? REpsilon()
                                        : atom_of_symbol[t.symbol]);
    }
  }

  auto get = [&](int from, int to) -> RegexPtr {
    auto it = label.find({from, to});
    return it == label.end() ? REmpty() : it->second;
  };

  // Eliminate internal states one by one.
  for (int victim = 0; victim < n; ++victim) {
    RegexPtr self = get(victim, victim);
    RegexPtr self_star =
        self->kind == RegexKind::kEmptySet ? REpsilon() : RStar(self);

    // Collect current in/out edges of the victim.
    std::vector<std::pair<int, RegexPtr>> incoming, outgoing;
    for (const auto& [key, regex] : label) {
      if (regex->kind == RegexKind::kEmptySet) continue;
      if (key.second == victim && key.first != victim) {
        incoming.push_back({key.first, regex});
      }
      if (key.first == victim && key.second != victim) {
        outgoing.push_back({key.second, regex});
      }
    }
    for (const auto& [from, in_regex] : incoming) {
      for (const auto& [to, out_regex] : outgoing) {
        add(from, to, RConcat(RConcat(in_regex, self_star), out_regex));
      }
    }
    // Remove all edges touching the victim.
    for (auto it = label.begin(); it != label.end();) {
      if (it->first.first == victim || it->first.second == victim) {
        it = label.erase(it);
      } else {
        ++it;
      }
    }
  }
  return get(start, end);
}

}  // namespace rpqi
