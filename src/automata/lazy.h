#ifndef RPQI_AUTOMATA_LAZY_H_
#define RPQI_AUTOMATA_LAZY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "base/bitset.h"
#include "base/budget.h"
#include "base/interner.h"
#include "base/status.h"

namespace rpqi {

/// A deterministic automaton whose states are discovered on demand. This is
/// the realization of Section 5.2's remark that A_ODA need not be constructed
/// explicitly: "we can construct it on the fly while checking for
/// nonemptiness". States are dense ids interned by each implementation; Step
/// is total (implementations model missing transitions with a rejecting sink).
class LazyDfa {
 public:
  virtual ~LazyDfa() = default;

  virtual int NumSymbols() const = 0;
  /// Interned id of the start state.
  virtual int StartState() = 0;
  /// Interned id of the successor of `state` on `symbol`.
  virtual int Step(int state, int symbol) = 0;
  virtual bool IsAccepting(int state) = 0;
  /// Number of states discovered so far (for stats/ablation benches).
  virtual int64_t NumDiscoveredStates() const = 0;
};

/// Wraps an explicit DFA (completing it on the fly with a sink id).
class LazyDfaFromDfa : public LazyDfa {
 public:
  explicit LazyDfaFromDfa(Dfa dfa);

  int NumSymbols() const override { return dfa_.num_symbols(); }
  int StartState() override { return dfa_.initial(); }
  int Step(int state, int symbol) override;
  bool IsAccepting(int state) override;
  int64_t NumDiscoveredStates() const override { return dfa_.NumStates() + 1; }

 private:
  Dfa dfa_;
  int sink_;
};

/// On-the-fly subset construction of an NFA. `complement` flips acceptance,
/// yielding the lazily determinized complement.
class LazySubsetDfa : public LazyDfa {
 public:
  explicit LazySubsetDfa(const Nfa& nfa, bool complement = false);

  int NumSymbols() const override { return nfa_.num_symbols(); }
  int StartState() override;
  int Step(int state, int symbol) override;
  bool IsAccepting(int state) override;
  int64_t NumDiscoveredStates() const override { return interner_.size(); }

 private:
  int Intern(const Bitset& subset);
  int ComputeStep(int state, int symbol);

  Nfa nfa_;  // ε-free copy
  bool complement_;
  WordVectorInterner interner_;
  std::vector<Bitset> subsets_;
  std::vector<bool> accepting_;
  std::vector<std::vector<int>> step_cache_;  // [state][symbol], -1 = unknown
};

/// Conjunctive product of lazy automata: accepts iff every part accepts.
/// All parts must share the alphabet size. Parts are borrowed, not owned.
class LazyProductDfa : public LazyDfa {
 public:
  explicit LazyProductDfa(std::vector<LazyDfa*> parts);

  int NumSymbols() const override { return num_symbols_; }
  int StartState() override;
  int Step(int state, int symbol) override;
  bool IsAccepting(int state) override;
  int64_t NumDiscoveredStates() const override { return interner_.size(); }

 private:
  int Intern(const std::vector<uint64_t>& key);

  std::vector<LazyDfa*> parts_;
  int num_symbols_;
  WordVectorInterner interner_;
};

/// Lazy determinization of the homomorphic image of a lazy automaton: given
/// `inner` over one alphabet and a symbol mapping (image symbol id, or
/// kEpsilon to erase), this is a deterministic automaton over the image
/// alphabet whose language is { h(w) : w ∈ L(inner) }. States are ε-closed
/// sets of inner states (closure under erased-symbol steps). With
/// `complement = true`, acceptance is flipped — which is exactly the
/// fully-on-the-fly form of "complement of the projection" used by the
/// Theorem 8 nonemptiness check.
class LazyImageSubsetDfa : public LazyDfa {
 public:
  LazyImageSubsetDfa(LazyDfa* inner, std::vector<int> mapping,
                     int image_symbols, bool complement = false);

  int NumSymbols() const override { return image_symbols_; }
  int StartState() override;
  int Step(int state, int symbol) override;
  bool IsAccepting(int state) override;
  int64_t NumDiscoveredStates() const override { return interner_.size(); }

 private:
  /// Closes `states` (sorted, unique inner ids) under erased-symbol steps and
  /// interns the result.
  int CloseAndIntern(std::vector<int> states);

  LazyDfa* inner_;
  std::vector<int> mapping_;  // indexed by inner symbol id
  int image_symbols_;
  bool complement_;
  std::vector<int> erased_symbols_;
  std::vector<std::vector<int>> preimage_;  // image symbol -> inner symbols
  WordVectorInterner interner_;
};

/// Outcome of an on-the-fly emptiness check.
struct EmptinessResult {
  enum class Outcome { kFoundWord, kEmpty, kLimitExceeded };
  Outcome outcome;
  std::vector<int> witness;  // a shortest accepted word when kFoundWord
  int64_t states_explored = 0;
  /// On kLimitExceeded: the precise limit that was hit — ResourceExhausted
  /// (state cap), DeadlineExceeded, or Cancelled. Ok otherwise.
  Status status;
};

/// BFS over the lazy automaton, stopping at the first accepting state (which
/// yields a shortest witness) or after `max_states` distinct states. `budget`
/// (optional) adds deadline/cancellation enforcement and state accounting;
/// budget exhaustion surfaces as kLimitExceeded with the code in `status`.
EmptinessResult FindAcceptedWord(LazyDfa* dfa, int64_t max_states,
                                 Budget* budget = nullptr);

/// Emptiness of L(nfa) ∩ ⋂ L(parts) without determinizing the NFA: BFS over
/// (NFA state, part states) tuples. Use when one intersection component is a
/// genuinely nondeterministic automaton whose subset construction would blow
/// up (e.g. the certificate NFAs of Theorem 17).
EmptinessResult FindAcceptedWordWithNfa(const Nfa& nfa,
                                        const std::vector<LazyDfa*>& parts,
                                        int64_t max_states,
                                        Budget* budget = nullptr);

/// Materializes the reachable fragment into an explicit DFA; fails with
/// ResourceExhausted beyond `max_states` (or the budget's deadline /
/// cancellation / quota status).
StatusOr<Dfa> MaterializeLazyDfa(LazyDfa* dfa, int64_t max_states,
                                 Budget* budget = nullptr);

}  // namespace rpqi

#endif  // RPQI_AUTOMATA_LAZY_H_
