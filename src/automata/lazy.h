#ifndef RPQI_AUTOMATA_LAZY_H_
#define RPQI_AUTOMATA_LAZY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "automata/adjacency.h"
#include "automata/dfa.h"
#include "automata/nfa.h"
#include "base/bitset.h"
#include "base/budget.h"
#include "base/interner.h"
#include "base/status.h"

namespace rpqi {

/// 128-bit-per-side Bloom-style summaries used by the emptiness searches to
/// pre-filter Subsumes calls. Whenever Subsumes(a, b) holds, the signatures
/// must satisfy grow(b) ⊆ grow(a) (monotone) and shrink(a) ⊆ shrink(b)
/// (antitone), lanewise, where x ⊆ y means (x & ~y) == 0 per lane word.
/// Both conditions compose under bitwise OR, and any fixed bit permutation
/// (rotation, lane swap) preserves them — which is how product automata
/// combine their parts' signatures without piling every part onto the same
/// bits. Inclusion-ordered automata spread an OR-fold of their state words
/// across the grow lanes (or the shrink lanes when complemented, where the
/// subsumption direction flips); per-word rotations keep distinct key words
/// from aliasing. The zero signature is trivially valid.
struct SubsumptionSig {
  uint64_t grow[2] = {0, 0};
  uint64_t shrink[2] = {0, 0};
};

/// A deterministic automaton whose states are discovered on demand. This is
/// the realization of Section 5.2's remark that A_ODA need not be constructed
/// explicitly: "we can construct it on the fly while checking for
/// nonemptiness". States are dense ids interned by each implementation; Step
/// is total (implementations model missing transitions with a rejecting sink).
class LazyDfa {
 public:
  virtual ~LazyDfa() = default;

  virtual int NumSymbols() const = 0;
  /// Interned id of the start state.
  virtual int StartState() = 0;
  /// Interned id of the successor of `state` on `symbol`.
  virtual int Step(int state, int symbol) = 0;
  virtual bool IsAccepting(int state) = 0;
  /// Number of states discovered so far (for stats/ablation benches).
  virtual int64_t NumDiscoveredStates() const = 0;

  /// Antichain ("subsumption") support for the emptiness searches. When
  /// HasSubsumption() is true, Subsumes(state, other) must imply
  /// L(other) ⊆ L(state) — L(q) being the language accepted when starting
  /// from q — and must be sound for ANY pair of discovered states.
  /// SubsumptionPartition() is a performance hint: states likely to dominate
  /// each other should share a partition, and the searches scan a state's
  /// own partition exhaustively while comparing across partitions only
  /// opportunistically — but they are free to call Subsumes on any pair.
  /// FindAcceptedWord may then discard a newly discovered state as soon as an
  /// already-queued state subsumes it: the dominator accepts every word the
  /// discarded state would, and was discovered no later (BFS), so the verdict
  /// and the shortest-witness length are both preserved. The defaults (each
  /// state alone in its partition, reflexive subsumption) leave every search
  /// exhaustive.
  virtual bool HasSubsumption() const { return false; }
  virtual uint64_t SubsumptionPartition(int state) {
    return static_cast<uint64_t>(state);
  }
  virtual bool Subsumes(int state, int other) { return state == other; }
  /// See SubsumptionSig for the contract; the default is trivially valid.
  virtual SubsumptionSig SubsumptionSignature(int /*state*/) { return {}; }
};

/// Wraps an explicit DFA (completing it on the fly with a sink id).
class LazyDfaFromDfa : public LazyDfa {
 public:
  explicit LazyDfaFromDfa(Dfa dfa);

  int NumSymbols() const override { return dfa_.num_symbols(); }
  int StartState() override { return dfa_.initial(); }
  int Step(int state, int symbol) override;
  bool IsAccepting(int state) override;
  int64_t NumDiscoveredStates() const override { return dfa_.NumStates() + 1; }

 private:
  Dfa dfa_;
  int sink_;
};

/// On-the-fly subset construction of an NFA. `complement` flips acceptance,
/// yielding the lazily determinized complement.
class LazySubsetDfa : public LazyDfa {
 public:
  explicit LazySubsetDfa(const Nfa& nfa, bool complement = false);

  int NumSymbols() const override { return nfa_.num_symbols(); }
  int StartState() override;
  int Step(int state, int symbol) override;
  bool IsAccepting(int state) override;
  int64_t NumDiscoveredStates() const override { return interner_.size(); }

  /// Subset languages are monotone in the subset, so all states are mutually
  /// comparable: without complement bigger subsets accept more (keep
  /// ⊆-maximal subsets), with complement smaller ones do (keep ⊆-minimal).
  bool HasSubsumption() const override { return true; }
  uint64_t SubsumptionPartition(int /*state*/) override { return 0; }
  bool Subsumes(int state, int other) override;
  SubsumptionSig SubsumptionSignature(int state) override;

 private:
  int Intern(const Bitset& subset);
  int ComputeStep(int state, int symbol);

  Nfa nfa_;  // ε-free copy
  bool complement_;
  SymbolAdjacency adjacency_;
  WordVectorInterner interner_;
  std::vector<Bitset> subsets_;
  std::vector<bool> accepting_;
  std::vector<int> step_cache_;  // state·|Σ| + symbol -> id, -1 = unknown
  Bitset scratch_next_;          // reused across ComputeStep calls
};

/// Conjunctive product of lazy automata: accepts iff every part accepts.
/// All parts must share the alphabet size. Parts are borrowed, not owned.
class LazyProductDfa : public LazyDfa {
 public:
  explicit LazyProductDfa(std::vector<LazyDfa*> parts);

  int NumSymbols() const override { return num_symbols_; }
  int StartState() override;
  int Step(int state, int symbol) override;
  bool IsAccepting(int state) override;
  int64_t NumDiscoveredStates() const override { return interner_.size(); }

  /// Componentwise subsumption: a product state dominates another when every
  /// part dominates the corresponding part (parts without native subsumption
  /// contribute plain equality, which is trivially sound).
  bool HasSubsumption() const override { return has_subsumption_; }
  uint64_t SubsumptionPartition(int state) override;
  bool Subsumes(int state, int other) override;
  SubsumptionSig SubsumptionSignature(int state) override;

 private:
  int Intern(const std::vector<uint64_t>& key);

  std::vector<LazyDfa*> parts_;
  int num_symbols_;
  bool has_subsumption_ = false;
  WordVectorInterner interner_;
  std::vector<uint64_t> scratch_key_;  // reused across Step calls
};

/// Lazy determinization of the homomorphic image of a lazy automaton: given
/// `inner` over one alphabet and a symbol mapping (image symbol id, or
/// kEpsilon to erase), this is a deterministic automaton over the image
/// alphabet whose language is { h(w) : w ∈ L(inner) }. States are ε-closed
/// sets of inner states (closure under erased-symbol steps). With
/// `complement = true`, acceptance is flipped — which is exactly the
/// fully-on-the-fly form of "complement of the projection" used by the
/// Theorem 8 nonemptiness check.
class LazyImageSubsetDfa : public LazyDfa {
 public:
  LazyImageSubsetDfa(LazyDfa* inner, std::vector<int> mapping,
                     int image_symbols, bool complement = false);

  int NumSymbols() const override { return image_symbols_; }
  int StartState() override;
  int Step(int state, int symbol) override;
  bool IsAccepting(int state) override;
  int64_t NumDiscoveredStates() const override { return interner_.size(); }

  /// Image-subset states are sorted inner-id sets, ordered by inclusion just
  /// like plain subsets (complement flips the direction).
  bool HasSubsumption() const override { return true; }
  uint64_t SubsumptionPartition(int /*state*/) override { return 0; }
  bool Subsumes(int state, int other) override;
  SubsumptionSig SubsumptionSignature(int state) override;

 private:
  /// Closes `states` (sorted, unique inner ids) under erased-symbol steps and
  /// interns the result.
  int CloseAndIntern(std::vector<int> states);

  LazyDfa* inner_;
  std::vector<int> mapping_;  // indexed by inner symbol id
  int image_symbols_;
  bool complement_;
  std::vector<int> erased_symbols_;
  std::vector<std::vector<int>> preimage_;  // image symbol -> inner symbols
  WordVectorInterner interner_;
};

/// Outcome of an on-the-fly emptiness check.
struct EmptinessResult {
  enum class Outcome { kFoundWord, kEmpty, kLimitExceeded };
  Outcome outcome;
  std::vector<int> witness;  // a shortest accepted word when kFoundWord
  int64_t states_explored = 0;
  /// Antichain accounting (zero when the automaton has no subsumption):
  /// frontier states discarded because a queued state subsumed them, and the
  /// number of live antichain members when the search stopped.
  int64_t states_pruned = 0;
  int64_t antichain_size = 0;
  /// On kLimitExceeded: the precise limit that was hit — ResourceExhausted
  /// (state cap), DeadlineExceeded, or Cancelled. Ok otherwise.
  Status status;
};

/// BFS over the lazy automaton, stopping at the first accepting state (which
/// yields a shortest witness) or after `max_states` distinct states. `budget`
/// (optional) adds deadline/cancellation enforcement and state accounting;
/// budget exhaustion surfaces as kLimitExceeded with the code in `status`.
/// When the automaton advertises subsumption (see LazyDfa::HasSubsumption),
/// dominated frontier states are pruned against an antichain of queued
/// states, which usually decides universality/containment-style checks
/// without materializing the determinized state space.
EmptinessResult FindAcceptedWord(LazyDfa* dfa, int64_t max_states,
                                 Budget* budget = nullptr);

/// Emptiness of L(nfa) ∩ ⋂ L(parts) without determinizing the NFA: BFS over
/// (NFA state, part states) tuples. Use when one intersection component is a
/// genuinely nondeterministic automaton whose subset construction would blow
/// up (e.g. the certificate NFAs of Theorem 17).
EmptinessResult FindAcceptedWordWithNfa(const Nfa& nfa,
                                        const std::vector<LazyDfa*>& parts,
                                        int64_t max_states,
                                        Budget* budget = nullptr);

/// Materializes the reachable fragment into an explicit DFA; fails with
/// ResourceExhausted beyond `max_states` (or the budget's deadline /
/// cancellation / quota status).
StatusOr<Dfa> MaterializeLazyDfa(LazyDfa* dfa, int64_t max_states,
                                 Budget* budget = nullptr);

}  // namespace rpqi

#endif  // RPQI_AUTOMATA_LAZY_H_
