#include "automata/two_way.h"

#include <vector>

#include "analysis/validate.h"

namespace rpqi {

bool SimulateTwoWay(const TwoWayNfa& automaton, const std::vector<int>& word) {
  // The reference semantics every translation is validated against must
  // itself run on a structurally sound automaton (AddTransition does not
  // range-check the Move enum).
  RPQI_VALIDATE_STAGE(ValidateTwoWay(automaton));
  const int n = static_cast<int>(word.size());
  const int num_states = automaton.NumStates();

  // visited[pos * num_states + state]
  std::vector<char> visited(static_cast<size_t>(n + 1) * num_states, 0);
  std::vector<std::pair<int, int>> stack;  // (state, position)

  auto visit = [&](int state, int pos) {
    size_t index = static_cast<size_t>(pos) * num_states + state;
    if (!visited[index]) {
      visited[index] = 1;
      stack.push_back({state, pos});
    }
  };

  for (int s : automaton.InitialStates()) visit(s, 0);

  while (!stack.empty()) {
    auto [state, pos] = stack.back();
    stack.pop_back();
    if (pos == n) {
      if (automaton.IsAccepting(state)) return true;
      continue;  // no transitions past the end of the word
    }
    for (const TwoWayNfa::Transition& t :
         automaton.TransitionsOn(state, word[pos])) {
      int next_pos = pos + static_cast<int>(t.move);
      if (next_pos < 0) continue;  // falling off the left end: move unavailable
      visit(t.to, next_pos);
    }
  }
  return false;
}

}  // namespace rpqi
