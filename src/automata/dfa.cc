#include "automata/dfa.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "automata/nfa.h"

namespace rpqi {

Dfa Complete(const Dfa& dfa) {
  if (dfa.IsComplete()) return dfa;
  Dfa result(dfa.num_symbols(), dfa.NumStates() + 1);
  int sink = dfa.NumStates();
  result.SetInitial(dfa.initial());
  for (int s = 0; s < dfa.NumStates(); ++s) {
    result.SetAccepting(s, dfa.IsAccepting(s));
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      int to = dfa.Next(s, a);
      result.SetNext(s, a, to < 0 ? sink : to);
    }
  }
  for (int a = 0; a < dfa.num_symbols(); ++a) result.SetNext(sink, a, sink);
  return result;
}

Dfa ComplementDfa(const Dfa& dfa) {
  Dfa result = Complete(dfa);
  for (int s = 0; s < result.NumStates(); ++s) {
    result.SetAccepting(s, !result.IsAccepting(s));
  }
  return result;
}

namespace {

/// Restricts `dfa` to states reachable from the initial state (minimization
/// requires this for correctness of the partition argument).
Dfa RestrictToReachable(const Dfa& dfa) {
  std::vector<int> order;
  std::vector<int> new_id(dfa.NumStates(), -1);
  order.push_back(dfa.initial());
  new_id[dfa.initial()] = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    int s = order[i];
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      int to = dfa.Next(s, a);
      if (to >= 0 && new_id[to] < 0) {
        new_id[to] = static_cast<int>(order.size());
        order.push_back(to);
      }
    }
  }
  Dfa result(dfa.num_symbols(), static_cast<int>(order.size()));
  result.SetInitial(0);
  for (size_t i = 0; i < order.size(); ++i) {
    int s = order[i];
    result.SetAccepting(static_cast<int>(i), dfa.IsAccepting(s));
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      int to = dfa.Next(s, a);
      if (to >= 0) result.SetNext(static_cast<int>(i), a, new_id[to]);
    }
  }
  return result;
}

}  // namespace

Dfa Minimize(const Dfa& input) {
  Dfa dfa = RestrictToReachable(Complete(input));
  const int n = dfa.NumStates();
  const int k = dfa.num_symbols();

  // Precompute reverse transitions: preimage[a][s] = states q with q --a--> s.
  std::vector<std::vector<std::vector<int>>> preimage(
      k, std::vector<std::vector<int>>(n));
  for (int s = 0; s < n; ++s) {
    for (int a = 0; a < k; ++a) {
      preimage[a][dfa.Next(s, a)].push_back(s);
    }
  }

  // Hopcroft's algorithm. Blocks are maintained as an array of block ids per
  // state plus member lists; the worklist holds (block, symbol) splitters.
  std::vector<int> block_of(n);
  std::vector<std::vector<int>> blocks;
  {
    std::vector<int> accepting_states, rejecting_states;
    for (int s = 0; s < n; ++s) {
      (dfa.IsAccepting(s) ? accepting_states : rejecting_states).push_back(s);
    }
    if (!accepting_states.empty()) blocks.push_back(accepting_states);
    if (!rejecting_states.empty()) blocks.push_back(rejecting_states);
    for (size_t b = 0; b < blocks.size(); ++b)
      for (int s : blocks[b]) block_of[s] = static_cast<int>(b);
  }

  std::vector<std::pair<int, int>> worklist;  // (block id, symbol)
  for (size_t b = 0; b < blocks.size(); ++b)
    for (int a = 0; a < k; ++a) worklist.push_back({static_cast<int>(b), a});

  std::vector<int> touched_count;  // per block: how many members are in X
  std::vector<char> state_in_x(n, 0);
  while (!worklist.empty()) {
    auto [splitter_block, a] = worklist.back();
    worklist.pop_back();

    // X = preimage of the splitter block under symbol a.
    std::vector<int> x;
    for (int s : blocks[splitter_block]) {
      for (int q : preimage[a][s]) {
        if (!state_in_x[q]) {
          state_in_x[q] = 1;
          x.push_back(q);
        }
      }
    }
    if (x.empty()) continue;

    // Find blocks split by X.
    touched_count.assign(blocks.size(), 0);
    std::vector<int> touched_blocks;
    for (int q : x) {
      if (touched_count[block_of[q]]++ == 0) touched_blocks.push_back(block_of[q]);
    }
    for (int b : touched_blocks) {
      int in_x = touched_count[b];
      int total = static_cast<int>(blocks[b].size());
      if (in_x == total) continue;  // not split
      // Split block b into (b ∩ X) and (b \ X); keep the smaller as new block.
      std::vector<int> inside, outside;
      for (int s : blocks[b]) (state_in_x[s] ? inside : outside).push_back(s);
      int new_block = static_cast<int>(blocks.size());
      if (inside.size() <= outside.size()) {
        blocks[b] = std::move(outside);
        blocks.push_back(std::move(inside));
      } else {
        blocks[b] = std::move(inside);
        blocks.push_back(std::move(outside));
      }
      for (int s : blocks[new_block]) block_of[s] = new_block;
      for (int sym = 0; sym < k; ++sym) worklist.push_back({new_block, sym});
    }
    for (int q : x) state_in_x[q] = 0;
  }

  // Build the quotient automaton.
  Dfa result(k, static_cast<int>(blocks.size()));
  result.SetInitial(block_of[dfa.initial()]);
  for (size_t b = 0; b < blocks.size(); ++b) {
    int representative = blocks[b][0];
    result.SetAccepting(static_cast<int>(b), dfa.IsAccepting(representative));
    for (int a = 0; a < k; ++a) {
      result.SetNext(static_cast<int>(b), a,
                     block_of[dfa.Next(representative, a)]);
    }
  }
  return result;
}

Nfa DfaToNfa(const Dfa& dfa) {
  // lint: allow-unbudgeted linear copy of the input DFA
  Nfa nfa(dfa.num_symbols());
  for (int s = 0; s < dfa.NumStates(); ++s) nfa.AddState();
  nfa.SetInitial(dfa.initial());
  for (int s = 0; s < dfa.NumStates(); ++s) {
    if (dfa.IsAccepting(s)) nfa.SetAccepting(s);
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      int to = dfa.Next(s, a);
      if (to >= 0) nfa.AddTransition(s, a, to);
    }
  }
  return nfa;
}

}  // namespace rpqi
