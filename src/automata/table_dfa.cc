#include "automata/table_dfa.h"

#include <algorithm>
#include <bit>

#include "base/hash.h"

namespace rpqi {

namespace {

/// Calls fn(state) for every set bit in the `words`-word state-set mask.
template <typename Fn>
inline void ForEachState(const uint64_t* mask, int words, Fn fn) {
  for (int w = 0; w < words; ++w) {
    uint64_t bits = mask[w];
    while (bits != 0) {
      fn((w << 6) + __builtin_ctzll(bits));
      bits &= bits - 1;
    }
  }
}

}  // namespace

LazyTableDfa::LazyTableDfa(const TwoWayNfa& two_way, bool complement)
    : two_way_(two_way),
      complement_(complement),
      n_(two_way.NumStates()),
      words_per_set_((two_way.NumStates() + 63) / 64),
      accepting_states_(two_way.NumStates()),
      left_targets_(two_way.NumStates()) {
  for (int s = 0; s < n_; ++s) {
    if (two_way_.IsAccepting(s)) accepting_states_.Set(s);
  }
  // Behavior rows are only ever consulted when a left move lands in their
  // state (see ComputeStep); rows of states that are never left-move targets
  // are dead and get masked out before interning, which collapses otherwise
  // distinct table states into one.
  for (int s = 0; s < n_; ++s) {
    for (int symbol = 0; symbol < two_way_.num_symbols(); ++symbol) {
      for (const TwoWayNfa::Transition& t : two_way_.TransitionsOn(s, symbol)) {
        if (t.move == Move::kLeft) left_targets_.Set(t.to);
      }
    }
  }
  row_index_.assign(n_, -1);
  for (int s = 0; s < n_; ++s) {
    if (left_targets_.Test(s)) {
      row_index_[s] = num_live_rows_;
      ++num_live_rows_;
    }
  }
}

int LazyTableDfa::StartState() {
  // Compact key: the reach set followed by the live (left-target) behavior
  // rows, all empty initially except R = initial states.
  Bitset reach(n_);
  for (int s : two_way_.InitialStates()) reach.Set(s);
  std::vector<uint64_t> key(
      static_cast<size_t>(words_per_set_) * (num_live_rows_ + 1), 0);
  for (int w = 0; w < words_per_set_; ++w) key[w] = reach.words()[w];
  int id = interner_.InternHashed(key, HashWords(key));
  if (id == static_cast<int>(b_of_.size())) b_of_.push_back(-1);
  return id;
}

int LazyTableDfa::Step(int state, int symbol) {
  const int num_symbols = two_way_.num_symbols();
  size_t index = static_cast<size_t>(state) * num_symbols + symbol;
  if (index >= step_cache_.size()) {
    step_cache_.resize(static_cast<size_t>(interner_.size()) * num_symbols,
                       -1);
  }
  int& cached = step_cache_[index];
  if (cached < 0) cached = ComputeStep(state, symbol);
  return cached;
}

int LazyTableDfa::ComputeStep(int state, int symbol) {
  if (masks_.empty()) BuildMasks();
  // Adaptive bail-out: filling a BStep pays a full-n closure that only
  // amortizes when (B part, symbol) pairs recur. Require a 25% hit rate once
  // past the warm-up window, else step without touching the cache (or even
  // interning B parts — see BPartOf).
  if (b_step_misses_ > 128 && b_step_hits_ * 3 < b_step_misses_) {
    return ComputeStepDirect(state, symbol);
  }
  int b_id = BPartOf(state);
  uint64_t cache_key = PairKey(b_id, symbol);
  auto it = b_step_index_.find(cache_key);
  if (it != b_step_index_.end()) {
    ++b_step_hits_;
    return ApplyBStep(state, b_steps_[it->second]);
  }
  ++b_step_misses_;
  return ApplyBStep(state, ComputeBStep(cache_key, b_id, symbol));
}

int LazyTableDfa::BPartOf(int state) {
  int& b = b_of_[state];
  if (b < 0) {
    const std::vector<uint64_t>& key = interner_.KeyOf(state);
    std::vector<uint64_t> b_words(key.begin() + words_per_set_, key.end());
    b = b_interner_.InternHashed(b_words, HashWords(b_words));
  }
  return b;
}

int LazyTableDfa::ApplyBStep(int state, const BStep& bs) {
  const int W = words_per_set_;
  const std::vector<uint64_t>& key = interner_.KeyOf(state);

  // R' = ⋃ { closure-result row of s : s ∈ R } — every state the two-way
  // automaton can hand to the next cell after stay/left excursions from R.
  if (W == 1) {
    uint64_t acc = 0;
    uint64_t bits = key[0];
    while (bits != 0) {
      acc |= bs.rows[__builtin_ctzll(bits)];
      bits &= bits - 1;
    }
    scratch_key_[0] = acc;
  } else {
    for (int w = 0; w < W; ++w) scratch_key_[w] = 0;
    ForEachState(key.data(), W, [&](int s) {
      const uint64_t* row = &bs.rows[static_cast<size_t>(s) * W];
      for (int w = 0; w < W; ++w) scratch_key_[w] |= row[w];
    });
  }
  std::copy(bs.new_b_words.begin(), bs.new_b_words.end(),
            scratch_key_.begin() + W);
  int id = interner_.InternHashed(scratch_key_, HashWords(scratch_key_));
  if (id == static_cast<int>(b_of_.size())) b_of_.push_back(bs.new_b_id);
  return id;
}

int LazyTableDfa::ComputeStepDirect(int state, int symbol) {
  if (words_per_set_ == 1) return ComputeStepDirect1(state, symbol);
  const int W = words_per_set_;
  const SymbolMasks& masks = masks_[symbol];
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  const uint64_t* b_section = key.data() + W;
  uint64_t* one_step = scratch_one_step_.data();
  uint64_t* rows = scratch_rows_.data();

  // Discover the states whose closure rows are actually needed — the reach
  // set (for R') and the live rows (for B') — closed under one-step edges,
  // building one_step and seeding rows with the right-move targets as we go.
  scratch_order_.clear();
  size_t built = 0;
  auto discover = [&](int s) {
    if (!scratch_visited_[s]) {
      scratch_visited_[s] = 1;
      scratch_order_.push_back(s);
    }
  };
  ForEachState(key.data(), W, discover);
  ForEachState(left_targets_.words().data(), W, discover);
  while (built < scratch_order_.size()) {
    int s = scratch_order_[built++];
    uint64_t* row = &one_step[static_cast<size_t>(s) * W];
    for (int w = 0; w < W; ++w) {
      row[w] = masks.stay[static_cast<size_t>(s) * W + w];
      rows[static_cast<size_t>(s) * W + w] =
          masks.right[static_cast<size_t>(s) * W + w];
    }
    ForEachState(&masks.left[static_cast<size_t>(s) * W], W, [&](int t) {
      const uint64_t* behavior =
          &b_section[static_cast<size_t>(row_index_[t]) * W];
      for (int w = 0; w < W; ++w) row[w] |= behavior[w];
    });
    ForEachState(row, W, discover);
  }
  // Least fixpoint rows[s] = right[s] ∪ ⋃_{t ∈ one_step[s]} rows[t],
  // Gauss-Seidel in reverse discovery order (targets tend to be discovered
  // after their sources, so sources see settled targets first).
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = scratch_order_.size(); i-- > 0;) {
      int s = scratch_order_[i];
      uint64_t* result = &rows[static_cast<size_t>(s) * W];
      ForEachState(&one_step[static_cast<size_t>(s) * W], W, [&](int t) {
        const uint64_t* from = &rows[static_cast<size_t>(t) * W];
        for (int w = 0; w < W; ++w) {
          uint64_t add = from[w] & ~result[w];
          if (add != 0) {
            result[w] |= add;
            changed = true;
          }
        }
      });
    }
  }
  for (int s : scratch_order_) scratch_visited_[s] = 0;

  // Assemble the successor key: R' then the live closure rows.
  for (int w = 0; w < W; ++w) scratch_key_[w] = 0;
  ForEachState(key.data(), W, [&](int s) {
    const uint64_t* row = &rows[static_cast<size_t>(s) * W];
    for (int w = 0; w < W; ++w) scratch_key_[w] |= row[w];
  });
  ForEachState(left_targets_.words().data(), W, [&](int s) {
    std::copy_n(&rows[static_cast<size_t>(s) * W], W,
                scratch_key_.begin() + W +
                    static_cast<size_t>(row_index_[s]) * W);
  });
  int id = interner_.InternHashed(scratch_key_, HashWords(scratch_key_));
  // -1 = B part not interned; resolved lazily by BPartOf should the cached
  // path ever need it (it will not while the cache stays bailed out).
  if (id == static_cast<int>(b_of_.size())) b_of_.push_back(-1);
  return id;
}

int LazyTableDfa::ComputeStepDirect1(int state, int symbol) {
  const SymbolMasks& masks = masks_[symbol];
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  const uint64_t* behavior = key.data() + 1;
  const uint64_t* stay = masks.stay.data();
  const uint64_t* left = masks.left.data();
  const uint64_t* right = masks.right.data();
  uint64_t* one_step = scratch_one_step_.data();
  uint64_t* rows = scratch_rows_.data();

  // Discovery runs on plain word masks: `discovered` doubles as the visited
  // set, `pending` as the work queue.
  scratch_order_.clear();
  uint64_t discovered = key[0] | left_targets_.words()[0];
  uint64_t pending = discovered;
  while (pending != 0) {
    int s = __builtin_ctzll(pending);
    pending &= pending - 1;
    scratch_order_.push_back(s);
    uint64_t row = stay[s];
    uint64_t lt = left[s];
    while (lt != 0) {
      row |= behavior[row_index_[__builtin_ctzll(lt)]];
      lt &= lt - 1;
    }
    one_step[s] = row;
    rows[s] = right[s];
    uint64_t fresh = row & ~discovered;
    discovered |= fresh;
    pending |= fresh;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = scratch_order_.size(); i-- > 0;) {
      int s = scratch_order_[i];
      uint64_t acc = rows[s];
      uint64_t bits = one_step[s];
      while (bits != 0) {
        acc |= rows[__builtin_ctzll(bits)];
        bits &= bits - 1;
      }
      if (acc != rows[s]) {
        rows[s] = acc;
        changed = true;
      }
    }
  }
  uint64_t reach = 0;
  uint64_t bits = key[0];
  while (bits != 0) {
    reach |= rows[__builtin_ctzll(bits)];
    bits &= bits - 1;
  }
  scratch_key_[0] = reach;
  uint64_t lt = left_targets_.words()[0];
  while (lt != 0) {
    int s = __builtin_ctzll(lt);
    lt &= lt - 1;
    scratch_key_[1 + row_index_[s]] = rows[s];
  }
  int id = interner_.InternHashed(scratch_key_, HashWords(scratch_key_));
  if (id == static_cast<int>(b_of_.size())) b_of_.push_back(-1);
  return id;
}

const LazyTableDfa::BStep& LazyTableDfa::ComputeBStep(uint64_t cache_key,
                                                      int b_id, int symbol) {
  const SymbolMasks& masks = masks_[symbol];
  const int W = words_per_set_;
  // B rows of the source part: row r of the compact encoding at r·W.
  const std::vector<uint64_t>& b_words = b_interner_.KeyOf(b_id);
  //   one_step[s] = stay targets of s ∪ behavior rows of s's left targets.
  uint64_t* one_step = scratch_one_step_.data();
  BStep bs;
  bs.rows.assign(static_cast<size_t>(n_) * W, 0);
  for (int s = 0; s < n_; ++s) {
    uint64_t* row = &one_step[static_cast<size_t>(s) * W];
    uint64_t* result = &bs.rows[static_cast<size_t>(s) * W];
    for (int w = 0; w < W; ++w) {
      row[w] = masks.stay[static_cast<size_t>(s) * W + w];
      result[w] = masks.right[static_cast<size_t>(s) * W + w];
    }
    ForEachState(&masks.left[static_cast<size_t>(s) * W], W, [&](int t) {
      const uint64_t* behavior =
          &b_words[static_cast<size_t>(row_index_[t]) * W];
      for (int w = 0; w < W; ++w) row[w] |= behavior[w];
    });
  }
  // Least fixpoint result[s] = right[s] ∪ ⋃_{t ∈ one_step[s]} result[t],
  // Gauss-Seidel until stable.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int s = 0; s < n_; ++s) {
      uint64_t* result = &bs.rows[static_cast<size_t>(s) * W];
      ForEachState(&one_step[static_cast<size_t>(s) * W], W, [&](int t) {
        const uint64_t* from = &bs.rows[static_cast<size_t>(t) * W];
        for (int w = 0; w < W; ++w) {
          uint64_t add = from[w] & ~result[w];
          if (add != 0) {
            result[w] |= add;
            changed = true;
          }
        }
      });
    }
  }
  // Successor B part: the closure-result rows of the live states.
  bs.new_b_words.assign(static_cast<size_t>(num_live_rows_) * W, 0);
  ForEachState(left_targets_.words().data(), W, [&](int s) {
    std::copy_n(&bs.rows[static_cast<size_t>(s) * W], W,
                &bs.new_b_words[static_cast<size_t>(row_index_[s]) * W]);
  });
  bs.new_b_id = b_interner_.InternHashed(bs.new_b_words,
                                         HashWords(bs.new_b_words));
  int index = static_cast<int>(b_steps_.size());
  b_steps_.push_back(std::move(bs));
  b_step_index_.emplace(cache_key, index);
  return b_steps_[index];
}

void LazyTableDfa::BuildMasks() {
  const int W = words_per_set_;
  masks_.resize(two_way_.num_symbols());
  for (int symbol = 0; symbol < two_way_.num_symbols(); ++symbol) {
    SymbolMasks& masks = masks_[symbol];
    masks.stay.assign(static_cast<size_t>(n_) * W, 0);
    masks.left.assign(static_cast<size_t>(n_) * W, 0);
    masks.right.assign(static_cast<size_t>(n_) * W, 0);
    for (int s = 0; s < n_; ++s) {
      for (const TwoWayNfa::Transition& t : two_way_.TransitionsOn(s, symbol)) {
        size_t word = static_cast<size_t>(s) * W + (t.to >> 6);
        uint64_t bit = uint64_t{1} << (t.to & 63);
        switch (t.move) {
          case Move::kStay: masks.stay[word] |= bit; break;
          case Move::kLeft: masks.left[word] |= bit; break;
          case Move::kRight: masks.right[word] |= bit; break;
        }
      }
    }
  }
  scratch_one_step_.assign(static_cast<size_t>(n_) * W, 0);
  scratch_rows_.assign(static_cast<size_t>(n_) * W, 0);
  scratch_key_.assign(static_cast<size_t>(W) * (num_live_rows_ + 1), 0);
  scratch_order_.reserve(n_);
  scratch_visited_.assign(n_, 0);
}

bool LazyTableDfa::IsAccepting(int state) {
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  bool reach_accepts = false;
  for (int i = 0; i < words_per_set_; ++i) {
    if (key[i] & accepting_states_.words()[i]) {
      reach_accepts = true;
      break;
    }
  }
  return reach_accepts != complement_;
}

uint64_t LazyTableDfa::SubsumptionPartition(int state) {
  // The componentwise order compares any two states, but partitioning by
  // (a hash of) the B part keeps antichain buckets small; within a bucket
  // the order reduces to R-inclusion, which is where most pruning lives —
  // the searches' bounded cross-partition pool picks up the rest. A hash
  // collision merely merges two buckets; Subsumes stays exact.
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  return HashWords(key.data() + words_per_set_,
                   key.size() - static_cast<size_t>(words_per_set_));
}

bool LazyTableDfa::Subsumes(int state, int other) {
  const std::vector<uint64_t>& a = interner_.KeyOf(state);
  const std::vector<uint64_t>& b = interner_.KeyOf(other);
  // The per-letter update is monotone in the whole (R, B) encoding: bigger
  // rows produce bigger closures, hence bigger successor rows, hence a bigger
  // reach set on every future letter. Acceptance is R ∩ F ≠ ∅ (monotone in
  // R), so componentwise inclusion of the full key orders the languages —
  // flipped under complement, where acceptance is R ∩ F = ∅.
  for (size_t i = 0; i < a.size(); ++i) {
    if (complement_ ? (a[i] & ~b[i]) != 0 : (b[i] & ~a[i]) != 0) return false;
  }
  return true;
}

SubsumptionSig LazyTableDfa::SubsumptionSignature(int state) {
  // Rotated lane-fold of the whole key: componentwise inclusion implies fold
  // inclusion, and since every key word only populates the low n_ bits, each
  // word is rotated by its index before the fold so the R row and the B rows
  // land on distinct signature bits instead of aliasing. The complement flip
  // moves the fold to the antitone (shrink) side, which keeps the filter
  // words sparse in both directions.
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  SubsumptionSig signature;
  uint64_t* side = complement_ ? signature.shrink : signature.grow;
  for (size_t i = 0; i < key.size(); ++i) {
    side[i & 1] |= std::rotl(key[i], static_cast<int>((i * 29) & 63));
  }
  return signature;
}

}  // namespace rpqi
