#include "automata/table_dfa.h"

namespace rpqi {

LazyTableDfa::LazyTableDfa(const TwoWayNfa& two_way, bool complement)
    : two_way_(two_way),
      complement_(complement),
      n_(two_way.NumStates()),
      words_per_set_((two_way.NumStates() + 63) / 64),
      accepting_states_(two_way.NumStates()),
      left_targets_(two_way.NumStates()) {
  for (int s = 0; s < n_; ++s) {
    if (two_way_.IsAccepting(s)) accepting_states_.Set(s);
  }
  // Behavior rows are only ever consulted when a left move lands in their
  // state (see ComputeStep); rows of states that are never left-move targets
  // are dead and get masked out before interning, which collapses otherwise
  // distinct table states into one.
  for (int s = 0; s < n_; ++s) {
    for (int symbol = 0; symbol < two_way_.num_symbols(); ++symbol) {
      for (const TwoWayNfa::Transition& t : two_way_.TransitionsOn(s, symbol)) {
        if (t.move == Move::kLeft) left_targets_.Set(t.to);
      }
    }
  }
  row_index_.assign(n_, -1);
  for (int s = 0; s < n_; ++s) {
    if (left_targets_.Test(s)) {
      row_index_[s] = num_live_rows_;
      ++num_live_rows_;
    }
  }
}

int LazyTableDfa::Intern(const Bitset& reach,
                         const std::vector<Bitset>& behavior) {
  // Compact key: the reach set followed by the live (left-target) behavior
  // rows only — dead rows are never consulted, so omitting them both shrinks
  // keys and merges otherwise-distinct table states.
  std::vector<uint64_t> key;
  key.reserve(static_cast<size_t>(words_per_set_) * (num_live_rows_ + 1));
  key.insert(key.end(), reach.words().begin(), reach.words().end());
  for (int s = 0; s < n_; ++s) {
    if (!left_targets_.Test(s)) continue;
    key.insert(key.end(), behavior[s].words().begin(),
               behavior[s].words().end());
  }
  return interner_.Intern(key);
}

void LazyTableDfa::Decode(int state, Bitset* reach,
                          std::vector<Bitset>* behavior) const {
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  *reach = Bitset(n_);
  behavior->assign(n_, Bitset(n_));
  // Bitset words() is read-only; rebuild by bit testing on the raw words.
  auto test_bit = [&](int word_offset, int bit) {
    return (key[word_offset + (bit >> 6)] >> (bit & 63)) & 1;
  };
  for (int s = 0; s < n_; ++s) {
    if (test_bit(0, s)) reach->Set(s);
  }
  for (int row = 0; row < n_; ++row) {
    if (row_index_[row] < 0) continue;
    int offset = words_per_set_ * (1 + row_index_[row]);
    for (int t = 0; t < n_; ++t) {
      if (test_bit(offset, t)) (*behavior)[row].Set(t);
    }
  }
}

int LazyTableDfa::StartState() {
  Bitset reach(n_);
  for (int s : two_way_.InitialStates()) reach.Set(s);
  std::vector<Bitset> behavior(n_, Bitset(n_));
  return Intern(reach, behavior);
}

int LazyTableDfa::Step(int state, int symbol) {
  if (state >= static_cast<int>(step_cache_.size())) {
    step_cache_.resize(interner_.size(),
                       std::vector<int>(two_way_.num_symbols(), -1));
  }
  int& cached = step_cache_[state][symbol];
  if (cached < 0) cached = ComputeStep(state, symbol);
  return cached;
}

int LazyTableDfa::ComputeStep(int state, int symbol) {
  if (n_ <= 64) return ComputeStepSmall(state, symbol);
  Bitset reach(n_);
  std::vector<Bitset> behavior;
  Decode(state, &reach, &behavior);

  // closure[s] = states reachable from s while the head stays on the current
  // cell: stay-moves, or a left move followed by a B-summarized excursion.
  // Computed as the reflexive-transitive closure of the one-step relation.
  std::vector<Bitset> one_step(n_, Bitset(n_));
  for (int s = 0; s < n_; ++s) {
    for (const TwoWayNfa::Transition& t : two_way_.TransitionsOn(s, symbol)) {
      if (t.move == Move::kStay) {
        one_step[s].Set(t.to);
      } else if (t.move == Move::kLeft) {
        one_step[s] |= behavior[t.to];
      }
    }
  }
  // Closure by iterating until fixpoint (row-wise union propagation).
  std::vector<Bitset> closure(n_, Bitset(n_));
  for (int s = 0; s < n_; ++s) closure[s].Set(s);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int s = 0; s < n_; ++s) {
      Bitset updated = closure[s];
      for (int mid = closure[s].NextSetBit(0); mid >= 0;
           mid = closure[s].NextSetBit(mid + 1)) {
        updated |= one_step[mid];
      }
      if (!(updated == closure[s])) {
        closure[s] = updated;
        changed = true;
      }
    }
  }

  // forward[s] = states entered by a right move from s on this symbol.
  std::vector<Bitset> forward(n_, Bitset(n_));
  for (int s = 0; s < n_; ++s) {
    for (const TwoWayNfa::Transition& t : two_way_.TransitionsOn(s, symbol)) {
      if (t.move == Move::kRight) forward[s].Set(t.to);
    }
  }

  // New behavior row s: closure then one right move.
  std::vector<Bitset> new_behavior(n_, Bitset(n_));
  for (int s = 0; s < n_; ++s) {
    for (int mid = closure[s].NextSetBit(0); mid >= 0;
         mid = closure[s].NextSetBit(mid + 1)) {
      new_behavior[s] |= forward[mid];
    }
  }

  // New reach set: union of new behavior rows over current reach states.
  Bitset new_reach(n_);
  for (int s = reach.NextSetBit(0); s >= 0; s = reach.NextSetBit(s + 1)) {
    new_reach |= new_behavior[s];
  }

  return Intern(new_reach, new_behavior);
}

int LazyTableDfa::ComputeStepSmall(int state, int symbol) {
  // Specialization for ≤ 64 two-way states: sets and behavior rows are raw
  // uint64 masks, avoiding all Bitset heap traffic on the hot path.
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  const uint64_t reach = key[0];
  // key[1 + row_index_[s]] = behavior row s (words_per_set_ == 1).

  // Per-(symbol) transition masks, computed once and cached.
  if (static_cast<int>(small_masks_.size()) == 0) BuildSmallMasks();
  const SmallSymbolMasks& masks = small_masks_[symbol];

  // one_step[s] = stay targets ∪ (⋃ behavior rows of left targets).
  uint64_t one_step[64];
  for (int s = 0; s < n_; ++s) {
    uint64_t row = masks.stay[s];
    uint64_t left = masks.left[s];
    while (left != 0) {
      int t = __builtin_ctzll(left);
      left &= left - 1;
      row |= key[1 + row_index_[t]];
    }
    one_step[s] = row;
  }
  // closure[s] = reflexive-transitive closure of one_step.
  uint64_t closure[64];
  for (int s = 0; s < n_; ++s) closure[s] = one_step[s] | (uint64_t{1} << s);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int s = 0; s < n_; ++s) {
      uint64_t updated = closure[s];
      uint64_t members = closure[s];
      while (members != 0) {
        int mid = __builtin_ctzll(members);
        members &= members - 1;
        updated |= closure[mid];
      }
      if (updated != closure[s]) {
        closure[s] = updated;
        changed = true;
      }
    }
  }
  // New behavior rows and reach set.
  std::vector<uint64_t> next_key(static_cast<size_t>(num_live_rows_) + 1, 0);
  for (int s = 0; s < n_; ++s) {
    bool live = (left_target_mask_ & (uint64_t{1} << s)) != 0;
    bool in_reach = (reach & (uint64_t{1} << s)) != 0;
    if (!live && !in_reach) continue;
    uint64_t row = 0;
    uint64_t members = closure[s];
    while (members != 0) {
      int mid = __builtin_ctzll(members);
      members &= members - 1;
      row |= masks.right[mid];
    }
    if (live) next_key[1 + row_index_[s]] = row;
    if (in_reach) next_key[0] |= row;
  }
  return interner_.Intern(next_key);
}

void LazyTableDfa::BuildSmallMasks() {
  small_masks_.resize(two_way_.num_symbols());
  for (int symbol = 0; symbol < two_way_.num_symbols(); ++symbol) {
    SmallSymbolMasks& masks = small_masks_[symbol];
    masks.stay.assign(n_, 0);
    masks.left.assign(n_, 0);
    masks.right.assign(n_, 0);
    for (int s = 0; s < n_; ++s) {
      for (const TwoWayNfa::Transition& t : two_way_.TransitionsOn(s, symbol)) {
        uint64_t bit = uint64_t{1} << t.to;
        switch (t.move) {
          case Move::kStay: masks.stay[s] |= bit; break;
          case Move::kLeft: masks.left[s] |= bit; break;
          case Move::kRight: masks.right[s] |= bit; break;
        }
      }
    }
  }
  left_target_mask_ = 0;
  for (int s = 0; s < n_; ++s) {
    if (left_targets_.Test(s)) left_target_mask_ |= uint64_t{1} << s;
  }
}

bool LazyTableDfa::IsAccepting(int state) {
  const std::vector<uint64_t>& key = interner_.KeyOf(state);
  bool reach_accepts = false;
  for (int i = 0; i < words_per_set_; ++i) {
    if (key[i] & accepting_states_.words()[i]) {
      reach_accepts = true;
      break;
    }
  }
  return reach_accepts != complement_;
}

}  // namespace rpqi
