#include "automata/pair_complement.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace rpqi {

namespace {

constexpr int kMaxTwoWayStates = 20;

struct PairState {
  bool has_prev;
  uint32_t prev;
  uint32_t cur;
};

uint64_t KeyOf(const PairState& p) {
  return (p.has_prev ? (uint64_t{1} << 62) : 0) |
         (static_cast<uint64_t>(p.prev) << 31) | p.cur;
}

}  // namespace

StatusOr<Nfa> VardiComplement(const TwoWayNfa& two_way, int64_t max_states) {
  const int n = two_way.NumStates();
  RPQI_CHECK_LE(n, kMaxTwoWayStates)
      << "VardiComplement is a reference implementation for small automata";
  const uint32_t full = n == 32 ? ~uint32_t{0} : ((uint32_t{1} << n) - 1);

  uint32_t initial_mask = 0;
  uint32_t accepting_mask = 0;
  for (int s = 0; s < n; ++s) {
    if (two_way.IsInitial(s)) initial_mask |= uint32_t{1} << s;
    if (two_way.IsAccepting(s)) accepting_mask |= uint32_t{1} << s;
  }

  Nfa result(two_way.num_symbols());
  std::unordered_map<uint64_t, int> ids;
  std::vector<PairState> pair_of;

  auto intern = [&](const PairState& p) -> int {
    auto [it, inserted] = ids.try_emplace(KeyOf(p), result.NumStates());
    if (inserted) {
      int state = result.AddState();
      RPQI_CHECK_EQ(state, it->second);
      pair_of.push_back(p);
      // Accept iff the current certificate set avoids all accepting states.
      result.SetAccepting(state, (p.cur & accepting_mask) == 0);
    }
    return it->second;
  };

  // Initial NFA states: (⊥, T0) for every T0 ⊇ I.
  uint32_t non_initial = full & ~initial_mask;
  for (uint32_t sub = non_initial;; sub = (sub - 1) & non_initial) {
    int id = intern({false, 0, initial_mask | sub});
    result.SetInitial(id);
    if (sub == 0) break;
  }

  for (size_t i = 0; i < pair_of.size(); ++i) {
    if (static_cast<int64_t>(pair_of.size()) > max_states) {
      return Status::ResourceExhausted("VardiComplement exceeded " +
                                       std::to_string(max_states) + " states");
    }
    // Copy: pair_of may reallocate as successors are interned.
    const PairState p = pair_of[i];
    for (int a = 0; a < two_way.num_symbols(); ++a) {
      // Check stay/left conditions for letter a and collect the forced
      // forward set; if any condition fails there is no successor on a.
      bool consistent = true;
      uint32_t forced_forward = 0;
      for (int s = 0; s < n && consistent; ++s) {
        if (!((p.cur >> s) & 1)) continue;
        for (const TwoWayNfa::Transition& t : two_way.TransitionsOn(s, a)) {
          uint32_t target_bit = uint32_t{1} << t.to;
          if (t.move == Move::kStay) {
            if (!(p.cur & target_bit)) {
              consistent = false;
              break;
            }
          } else if (t.move == Move::kLeft) {
            // At the first position a left move is unavailable; elsewhere the
            // target must be covered by the previous certificate set.
            if (p.has_prev && !(p.prev & target_bit)) {
              consistent = false;
              break;
            }
          } else {
            forced_forward |= target_bit;
          }
        }
      }
      if (!consistent) continue;
      // Guess T_{j+1}: any superset of the forced forward set.
      uint32_t free_bits = full & ~forced_forward;
      for (uint32_t sub = free_bits;; sub = (sub - 1) & free_bits) {
        int to = intern({true, p.cur, forced_forward | sub});
        result.AddTransition(static_cast<int>(i), a, to);
        if (sub == 0) break;
      }
    }
  }
  return result;
}

}  // namespace rpqi
