#ifndef RPQI_AUTOMATA_NFA_H_
#define RPQI_AUTOMATA_NFA_H_

#include <vector>

#include "base/logging.h"

namespace rpqi {

/// Symbol id used on ε-transitions.
inline constexpr int kEpsilon = -1;

/// A nondeterministic finite automaton over a dense integer alphabet
/// [0, num_symbols). States are dense integers created by AddState().
/// ε-transitions are allowed (symbol == kEpsilon); operations that require
/// ε-freedom call RemoveEpsilon internally.
class Nfa {
 public:
  struct Transition {
    int symbol;  // kEpsilon for ε
    int to;
  };

  explicit Nfa(int num_symbols) : num_symbols_(num_symbols) {
    RPQI_CHECK_GE(num_symbols, 0);
  }

  Nfa(const Nfa&) = default;
  Nfa& operator=(const Nfa&) = default;
  Nfa(Nfa&&) = default;
  Nfa& operator=(Nfa&&) = default;

  int num_symbols() const { return num_symbols_; }
  int NumStates() const { return static_cast<int>(transitions_.size()); }

  /// O(1): maintained by AddTransition (this is called inside budget-charging
  /// loops, where an O(states) recount would be quadratic overall).
  int NumTransitions() const { return num_transitions_; }

  int AddState() {
    transitions_.emplace_back();
    initial_.push_back(false);
    accepting_.push_back(false);
    return NumStates() - 1;
  }

  void AddTransition(int from, int symbol, int to) {
    RPQI_CHECK(0 <= from && from < NumStates());
    RPQI_CHECK(0 <= to && to < NumStates());
    RPQI_CHECK(symbol == kEpsilon || (0 <= symbol && symbol < num_symbols_))
        << "symbol " << symbol << " outside alphabet of " << num_symbols_;
    transitions_[from].push_back({symbol, to});
    ++num_transitions_;
    if (symbol == kEpsilon) ++num_epsilon_transitions_;
  }

  void SetInitial(int state, bool value = true) {
    RPQI_CHECK(0 <= state && state < NumStates());
    initial_[state] = value;
  }

  void SetAccepting(int state, bool value = true) {
    RPQI_CHECK(0 <= state && state < NumStates());
    accepting_[state] = value;
  }

  bool IsInitial(int state) const { return initial_[state]; }
  bool IsAccepting(int state) const { return accepting_[state]; }

  const std::vector<Transition>& TransitionsFrom(int state) const {
    return transitions_[state];
  }

  std::vector<int> InitialStates() const {
    std::vector<int> result;
    for (int s = 0; s < NumStates(); ++s)
      if (initial_[s]) result.push_back(s);
    return result;
  }

  std::vector<int> AcceptingStates() const {
    std::vector<int> result;
    for (int s = 0; s < NumStates(); ++s)
      if (accepting_[s]) result.push_back(s);
    return result;
  }

  /// O(1): maintained by AddTransition. The subset-construction hot paths
  /// branch on this per step to skip ε-closure for ε-free automata.
  bool HasEpsilonTransitions() const { return num_epsilon_transitions_ > 0; }
  int NumEpsilonTransitions() const { return num_epsilon_transitions_; }

  /// Poisons the cached transition counters without touching the transition
  /// lists. Only for exercising the coherence validators in tests.
  void CorruptTransitionCountForTesting() {
    num_transitions_ += 1;
    num_epsilon_transitions_ += 1;
  }

 private:
  int num_symbols_;
  int num_transitions_ = 0;
  int num_epsilon_transitions_ = 0;
  std::vector<std::vector<Transition>> transitions_;
  std::vector<bool> initial_;
  std::vector<bool> accepting_;
};

}  // namespace rpqi

#endif  // RPQI_AUTOMATA_NFA_H_
