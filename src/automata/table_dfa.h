#ifndef RPQI_AUTOMATA_TABLE_DFA_H_
#define RPQI_AUTOMATA_TABLE_DFA_H_

#include <vector>

#include "automata/lazy.h"
#include "automata/two_way.h"
#include "base/bitset.h"
#include "base/interner.h"

namespace rpqi {

/// Shepherdson/Vardi table translation of a two-way automaton into a lazy
/// *deterministic* one-way automaton.
///
/// After consuming a prefix u of the input, the automaton's state is the pair
///   R(u) = { t : some run from an initial configuration, confined to u,
///                exits u to the right in state t }
///   B(u) = { (s,t) : a run entering u from the right in state s, confined to
///                    u, exits u to the right in state t }
/// Both components update deterministically per input letter: left excursions
/// into the already-consumed prefix are summarized by B, stay-moves by a
/// transitive closure within the current cell. The word is accepted iff
/// R(word) contains an accepting state — i.e. the two-way automaton can reach
/// the past-the-end position in an accepting state.
///
/// With `complement = true` the acceptance condition is flipped; since the
/// automaton is deterministic this yields the complement language for free,
/// which is how the constructions of Sections 4 and 5 obtain the complements
/// A2 and the complements of A_Vi / A_(Q,c,d) without an extra subset
/// construction.
///
/// Worst-case state count is 2^(n²+n) for n two-way states; states are
/// discovered lazily and interned, so only the reachable fragment is paid for.
class LazyTableDfa : public LazyDfa {
 public:
  explicit LazyTableDfa(const TwoWayNfa& two_way, bool complement = false);

  int NumSymbols() const override { return two_way_.num_symbols(); }
  int StartState() override;
  int Step(int state, int symbol) override;
  bool IsAccepting(int state) override;
  int64_t NumDiscoveredStates() const override { return interner_.size(); }

 private:
  // State encoding: [R words | B row words], where B is stored row-major
  // (row s = set of t with (s,t) ∈ B).
  int Intern(const Bitset& reach, const std::vector<Bitset>& behavior);
  void Decode(int state, Bitset* reach, std::vector<Bitset>* behavior) const;
  int ComputeStep(int state, int symbol);
  // uint64-mask fast path for automata with ≤ 64 states (the common case for
  // the Section 4/5 constructions).
  int ComputeStepSmall(int state, int symbol);
  void BuildSmallMasks();

  struct SmallSymbolMasks {
    std::vector<uint64_t> stay, left, right;  // indexed by source state
  };

  TwoWayNfa two_way_;
  bool complement_;
  int n_;                    // number of two-way states
  int words_per_set_;        // ceil(n/64)
  Bitset accepting_states_;  // of the two-way automaton
  Bitset left_targets_;      // states reachable by a left move (live B rows)
  std::vector<int> row_index_;  // state -> compact key row slot, -1 if dead
  int num_live_rows_ = 0;
  WordVectorInterner interner_;
  // Memoized transitions: step_cache_[state][symbol], -1 = not yet computed.
  // Lazy product states share component states heavily, so this converts the
  // (expensive) table update into a per-(state, symbol) one-time cost.
  std::vector<std::vector<int>> step_cache_;
  // Fast-path precomputation (n ≤ 64).
  std::vector<SmallSymbolMasks> small_masks_;
  uint64_t left_target_mask_ = 0;
};

}  // namespace rpqi

#endif  // RPQI_AUTOMATA_TABLE_DFA_H_
