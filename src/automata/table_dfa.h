#ifndef RPQI_AUTOMATA_TABLE_DFA_H_
#define RPQI_AUTOMATA_TABLE_DFA_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "automata/lazy.h"
#include "automata/two_way.h"
#include "base/bitset.h"
#include "base/interner.h"

namespace rpqi {

/// Shepherdson/Vardi table translation of a two-way automaton into a lazy
/// *deterministic* one-way automaton.
///
/// After consuming a prefix u of the input, the automaton's state is the pair
///   R(u) = { t : some run from an initial configuration, confined to u,
///                exits u to the right in state t }
///   B(u) = { (s,t) : a run entering u from the right in state s, confined to
///                    u, exits u to the right in state t }
/// Both components update deterministically per input letter: left excursions
/// into the already-consumed prefix are summarized by B, stay-moves by a
/// transitive closure within the current cell. The word is accepted iff
/// R(word) contains an accepting state — i.e. the two-way automaton can reach
/// the past-the-end position in an accepting state.
///
/// With `complement = true` the acceptance condition is flipped; since the
/// automaton is deterministic this yields the complement language for free,
/// which is how the constructions of Sections 4 and 5 obtain the complements
/// A2 and the complements of A_Vi / A_(Q,c,d) without an extra subset
/// construction.
///
/// Worst-case state count is 2^(n²+n) for n two-way states; states are
/// discovered lazily and interned, so only the reachable fragment is paid for.
/// The per-letter update works directly on the interned key words and is
/// restricted to the states reachable (via stay/left excursions) from the
/// rows it must output, which is what makes materializing these automata the
/// dominant-but-affordable cost of the Theorem 6/7 pipeline.
class LazyTableDfa : public LazyDfa {
 public:
  explicit LazyTableDfa(const TwoWayNfa& two_way, bool complement = false);

  int NumSymbols() const override { return two_way_.num_symbols(); }
  int StartState() override;
  int Step(int state, int symbol) override;
  bool IsAccepting(int state) override;
  int64_t NumDiscoveredStates() const override { return interner_.size(); }

  /// Antichain support: the per-letter table update is monotone in the whole
  /// (R, B) encoding and acceptance is R ∩ F ≠ ∅ (monotone in R), so
  /// componentwise inclusion of the full key orders the languages — flipped
  /// when the acceptance condition is complemented. States are partitioned
  /// by B part to keep the searches' antichain buckets small; within a
  /// bucket the order reduces to R-inclusion.
  bool HasSubsumption() const override { return true; }
  uint64_t SubsumptionPartition(int state) override;
  bool Subsumes(int state, int other) override;
  SubsumptionSig SubsumptionSignature(int state) override;

 private:
  // State encoding: [R words | live B row words], where a B row s is live iff
  // s is the target of some left move (dead rows are never consulted and are
  // omitted, which merges otherwise-distinct table states).
  //
  // The per-letter update factors through the behavior part: the stay/left
  // closure — and hence both the successor B part and the per-state result
  // rows that R is pushed through — depends only on (B, symbol), never on R.
  // Those closures are computed once per distinct (B part, symbol) and
  // cached (`BStep`); a step then reduces to OR-ing cached rows over R and
  // splicing in the cached successor B words.
  //
  // The cache only amortizes when B parts repeat across states. Some
  // automata (notably the complemented excess automata of the Theorem 6
  // pipeline) mint an essentially fresh B part per state, so the full-n
  // closure a cache fill pays is pure overhead there; once the observed hit
  // rate shows the cache is not amortizing, ComputeStep switches to a
  // per-call closure restricted to the rows the step actually needs
  // (ComputeStepDirect).
  int ComputeStep(int state, int symbol);

  /// Closure summary for one (B part, symbol) pair.
  struct BStep {
    std::vector<uint64_t> rows;  // n_ × W: result row of each two-way state
    std::vector<uint64_t> new_b_words;  // num_live_rows_ × W successor B part
    int new_b_id;                       // interned id of the successor B part
  };
  /// Computes and caches the BStep for (b_id, symbol): one_step[s] = stay
  /// targets ∪ B rows of left targets, then the least fixpoint
  /// result[s] = right[s] ∪ ⋃_{t ∈ one_step[s]} result[t] over all states
  /// (Gauss-Seidel; a dense transitive closure is never materialized).
  const BStep& ComputeBStep(uint64_t cache_key, int b_id, int symbol);
  /// Builds the successor state of `state` from a cached/fresh BStep.
  int ApplyBStep(int state, const BStep& bs);
  /// Cache-free step: closure computed per call, restricted to the states
  /// reachable (via stay/left excursions) from the rows the step must output.
  int ComputeStepDirect(int state, int symbol);
  /// W == 1 specialization: with ≤ 64 two-way states every row is one word,
  /// so discovery, the fixpoint, and assembly run on plain word ops with no
  /// visited array or per-bit callbacks.
  int ComputeStepDirect1(int state, int symbol);
  /// Interned B-part id of `state`, resolving the -1 sentinel lazily —
  /// states minted by ComputeStepDirect never pay for B interning unless the
  /// cached path later asks for them.
  int BPartOf(int state);
  void BuildMasks();

  /// Per-symbol transition masks, row-major: words_per_set_ words per source
  /// state, one row per two-way state.
  struct SymbolMasks {
    std::vector<uint64_t> stay, left, right;
  };

  TwoWayNfa two_way_;
  bool complement_;
  int n_;                    // number of two-way states
  int words_per_set_;        // ceil(n/64)
  Bitset accepting_states_;  // of the two-way automaton
  Bitset left_targets_;      // states reachable by a left move (live B rows)
  std::vector<int> row_index_;  // state -> compact key row slot, -1 if dead
  int num_live_rows_ = 0;
  WordVectorInterner interner_;
  // Memoized transitions, indexed state * num_symbols + symbol (-1 = not yet
  // computed). Lazy product states share component states heavily, so this
  // converts the (expensive) table update into a per-(state, symbol) one-time
  // cost.
  std::vector<int> step_cache_;
  std::vector<SymbolMasks> masks_;  // per symbol; built on first step
  // Behavior-part bookkeeping: B parts are interned separately so the
  // closure cache and subsumption partitions key on a dense int id.
  WordVectorInterner b_interner_;
  std::vector<int> b_of_;  // state id -> B part id, -1 = not interned yet
  std::unordered_map<uint64_t, int> b_step_index_;  // PairKey(b, sym) -> idx
  std::vector<BStep> b_steps_;
  int64_t b_step_hits_ = 0;
  int64_t b_step_misses_ = 0;
  // Scratch buffers reused across step calls (this class is not thread-safe,
  // like every lazy automaton).
  std::vector<uint64_t> scratch_one_step_;  // n_ rows × words_per_set_
  std::vector<uint64_t> scratch_rows_;      // n_ rows × words_per_set_
  std::vector<uint64_t> scratch_key_;
  std::vector<int> scratch_order_;   // closure discovery order
  std::vector<char> scratch_visited_;  // per two-way state
};

}  // namespace rpqi

#endif  // RPQI_AUTOMATA_TABLE_DFA_H_
