#ifndef RPQI_AUTOMATA_DOT_H_
#define RPQI_AUTOMATA_DOT_H_

#include <functional>
#include <string>

#include "automata/dfa.h"
#include "automata/nfa.h"

namespace rpqi {

/// Renders the automaton in Graphviz DOT format. `symbol_name` maps symbol
/// ids to labels (defaults to the numeric id when null).
std::string NfaToDot(const Nfa& nfa,
                     const std::function<std::string(int)>& symbol_name = {});
std::string DfaToDot(const Dfa& dfa,
                     const std::function<std::string(int)>& symbol_name = {});

}  // namespace rpqi

#endif  // RPQI_AUTOMATA_DOT_H_
