#ifndef RPQI_AUTOMATA_STATE_ELIM_H_
#define RPQI_AUTOMATA_STATE_ELIM_H_

#include <vector>

#include "automata/nfa.h"
#include "regex/ast.h"

namespace rpqi {

/// Converts an automaton back to a regular expression by state elimination
/// (Brzozowski–McCluskey). `atom_of_symbol[a]` supplies the regex atom to use
/// for symbol id a — e.g. RAtom("p") or RAtom("p", /*inverse=*/true) — so
/// callers control how signed/marker symbols print.
///
/// Output size can be exponential in the automaton size; intended for
/// presenting rewritings, not for further computation (keep computing on the
/// automaton form).
RegexPtr NfaToRegex(const Nfa& nfa, const std::vector<RegexPtr>& atom_of_symbol);

}  // namespace rpqi

#endif  // RPQI_AUTOMATA_STATE_ELIM_H_
