#ifndef RPQI_NET_FRAMING_H_
#define RPQI_NET_FRAMING_H_

#include <cstddef>
#include <string>
#include <vector>

namespace rpqi {
namespace net {

/// Incremental NDJSON line framing over a byte stream. TCP hands the
/// transport arbitrary chunks — half a line, three lines and a fragment — so
/// the framer accumulates bytes until it sees '\n' and emits complete lines
/// (without the terminator; a trailing '\r' is stripped for telnet-style
/// clients).
///
/// A line longer than `max_line_bytes` is abandoned the moment the limit is
/// crossed: the framer switches to discard mode, swallows bytes until the
/// next '\n', and reports the event through Feed's return value so the
/// transport can answer it with a structured `invalid_request` — the peer
/// keeps its connection and its framing, only the oversized request dies.
/// This mirrors the stdio server's kMaxLineBytes guard; without it one
/// newline-less client could grow the buffer without bound.
class LineFramer {
 public:
  explicit LineFramer(size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Consumes `data` and appends every completed line to `*lines`. Returns
  /// the number of oversized lines rejected during this call (each deserves
  /// one error response).
  int Feed(const char* data, size_t size, std::vector<std::string>* lines);

  /// Bytes buffered for an incomplete line (diagnostics/tests).
  size_t pending_bytes() const { return partial_.size(); }

  /// True when the stream ended mid-line (EOF with no trailing newline); the
  /// stdio protocol treats such a fragment as a request, so the transport
  /// can choose to flush it.
  bool has_partial() const { return !partial_.empty() && !discarding_; }

  /// Hands over the unterminated tail (valid when has_partial()).
  std::string TakePartial();

 private:
  const size_t max_line_bytes_;
  std::string partial_;
  /// True while swallowing the remainder of an oversized line.
  bool discarding_ = false;
};

}  // namespace net
}  // namespace rpqi

#endif  // RPQI_NET_FRAMING_H_
