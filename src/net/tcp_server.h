#ifndef RPQI_NET_TCP_SERVER_H_
#define RPQI_NET_TCP_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/socket.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "service/server.h"

namespace rpqi {
namespace net {

/// Configuration for one TcpTransport. The worker-thread count and queue
/// depth come from the Server's own options — the transport is a frontend,
/// not a second scheduler.
struct TcpTransportOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port; read it back with port().
  int port = 0;
  /// Accepted connections held open at once. One more is shed at accept time:
  /// it receives a single `overloaded` error line and is closed, so clients
  /// see a structured rejection instead of a silent RST or an unbounded
  /// backlog.
  int max_connections = 64;
  int backlog = 128;
  /// Longest request line accepted; beyond it the line is discarded and
  /// answered with `invalid_request` (the connection survives). Matches the
  /// stdio server's 8 MiB guard.
  size_t max_line_bytes = size_t{8} << 20;
  /// Most lines admitted as one batch. Adjacent lines arriving in one read
  /// share a snapshot pin and plan-cache lookups (service.batch.* counters);
  /// the cap bounds how long one batch monopolizes a worker.
  int max_batch = 64;
};

/// TCP frontend for service::Server — `rpqi serve --transport tcp`. Speaks
/// exactly the stdio NDJSON protocol: one JSON request per line in, one JSON
/// response line out, responses within a connection may be reordered across
/// batches but echo ids.
///
/// Architecture: a single poll(2) readiness loop owns the listener, the
/// connection table, and every socket read/write; Server work runs on the
/// Server's bounded WorkerPool. Each read round's complete lines form one
/// ParsedBatch (admission happens on the loop thread, at arrival), the batch
/// is submitted to the pool, and the worker appends its response lines to the
/// connection's write buffer under that connection's `conn_mu_` and rings the
/// transport's wake pipe so the loop re-polls for writability. Only the loop
/// thread ever touches file descriptors; workers touch nothing but the
/// buffer, so a peer that disconnects mid-batch costs an orphaned buffer
/// append and nothing else.
///
/// Overload shows up in three distinct, structured ways:
///   - accept-time shedding (`overloaded` line + close) past max_connections;
///   - WorkerPool queue full: the whole batch is rejected with `overloaded`
///     responses written inline (the Serve loop equivalent);
///   - namespace quotas: per-request `overloaded` inside ParseBatch.
///
/// Shutdown: an `admin shutdown` on ANY connection (or RequestShutdown())
/// closes the listener and stops reading on every connection, but every batch
/// already admitted — on every connection — still executes, and every write
/// buffer drains before its socket closes. A client that asks the server to
/// stop never truncates another client's in-flight responses.
///
/// Fault sites: `net.accept` (accepted socket dropped immediately —
/// connect-reset seen by the peer), `net.read` (a read round skipped —
/// delivery delay), `net.write` (write capped to one byte — pathological
/// short write exercising the partial-write resume path).
class TcpTransport {
 public:
  TcpTransport(service::Server* server, const TcpTransportOptions& options);
  ~TcpTransport();

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds and listens. After Ok, port() reports the bound port (useful with
  /// port 0).
  Status Listen();

  int port() const { return port_; }

  /// Blocking serve loop; returns after a clean drain (shutdown requested and
  /// every admitted batch answered + flushed).
  Status Serve();

  /// Asks Serve() to drain and return. Safe from any thread and from signal
  /// handlers (the wake pipe's write(2) is async-signal-safe).
  void RequestShutdown();

 private:
  struct Conn;

  /// Accepts until EAGAIN, shedding past max_connections.
  void AcceptReady();
  /// One read round on `conn`: recv, frame, batch, submit.
  void ReadReady(const std::shared_ptr<Conn>& conn);
  /// Flushes as much of the connection's write buffer as the socket takes.
  void WriteReady(const std::shared_ptr<Conn>& conn);
  /// Groups `lines` into batches of <= max_batch and hands them to the pool
  /// (or rejects them inline when the pool is full).
  void SubmitLines(const std::shared_ptr<Conn>& conn,
                   std::vector<std::string> lines);
  /// Enters drain mode: close the listener, stop reading everywhere.
  void BeginDrain();

  service::Server* const server_;
  const TcpTransportOptions options_;
  UniqueFd listener_;
  int port_ = 0;
  WakePipe wake_;
  /// Set by RequestShutdown (any thread) or an admin shutdown batch; the loop
  /// polls it each round.
  std::atomic<bool> shutdown_requested_{false};
  /// Loop-thread state: the connection table and drain flag are only touched
  /// from Serve()'s thread.
  std::map<int, std::shared_ptr<Conn>> conns_;
  bool draining_ = false;
  /// The pool batches execute on; non-null only while Serve() runs (it is a
  /// Serve-local owned via this pointer so SubmitLines can reach it).
  WorkerPool* pool_ = nullptr;
};

}  // namespace net
}  // namespace rpqi

#endif  // RPQI_NET_TCP_SERVER_H_
