#include "net/tcp_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iterator>
#include <utility>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "fault/fault.h"
#include "net/framing.h"
#include "obs/metrics.h"
#include "service/json.h"

namespace rpqi {
namespace net {

namespace {

const obs::Counter& AcceptedCounter() {
  static const obs::Counter counter("net.accepted");
  return counter;
}

const obs::Counter& ShedCounter() {
  static const obs::Counter counter("net.conns.shed");
  return counter;
}

const obs::Counter& OversizedCounter() {
  static const obs::Counter counter("net.oversized_lines");
  return counter;
}

const obs::Counter& BytesReadCounter() {
  static const obs::Counter counter("net.bytes_read");
  return counter;
}

const obs::Counter& BytesWrittenCounter() {
  static const obs::Counter counter("net.bytes_written");
  return counter;
}

/// Batches the WorkerPool refused (queue full); their requests were all
/// answered `overloaded` inline on the loop thread.
const obs::Counter& BatchesRejectedCounter() {
  static const obs::Counter counter("net.batches_rejected");
  return counter;
}

const obs::Gauge& OpenConnectionsGauge() {
  static const obs::Gauge gauge("net.open_connections");
  return gauge;
}

bool IsBlankLine(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

bool WouldBlock(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == EINTR;
}

}  // namespace

/// One accepted connection. The loop thread owns the socket and the framing
/// state; `conn_mu_` guards only what workers share with the loop — the write
/// buffer and the count of batches submitted but not yet answered. Workers
/// never see the fd, so the loop can close it whenever the shared state says
/// the connection is finished.
struct TcpTransport::Conn {
  Conn(UniqueFd socket, size_t max_line_bytes)
      : fd(std::move(socket)), framer(max_line_bytes) {}

  UniqueFd fd;           // loop thread only
  LineFramer framer;     // loop thread only
  bool read_closed = false;  // loop thread only: EOF seen or drain started
  bool dead = false;         // loop thread only: socket error, drop now

  Mutex conn_mu_;
  /// Response bytes not yet on the wire; [out_pos, size) is unsent.
  std::string out_buf RPQI_GUARDED_BY(conn_mu_);
  size_t out_pos RPQI_GUARDED_BY(conn_mu_) = 0;
  /// Batches handed to the pool whose responses have not been appended yet;
  /// the connection cannot close while this is nonzero.
  int pending_batches RPQI_GUARDED_BY(conn_mu_) = 0;

  void AppendLines(const std::vector<std::string>& lines, bool finish_batch)
      RPQI_EXCLUDES(conn_mu_) {
    MutexLock lock(&conn_mu_);
    for (const std::string& line : lines) {
      out_buf += line;
      out_buf += '\n';
    }
    if (finish_batch) --pending_batches;
  }

  bool HasUnsentBytes() RPQI_EXCLUDES(conn_mu_) {
    MutexLock lock(&conn_mu_);
    return out_pos < out_buf.size();
  }

  /// True when nothing remains: no batches in flight, nothing buffered.
  bool Finished() RPQI_EXCLUDES(conn_mu_) {
    MutexLock lock(&conn_mu_);
    return pending_batches == 0 && out_pos >= out_buf.size();
  }
};

TcpTransport::TcpTransport(service::Server* server,
                           const TcpTransportOptions& options)
    : server_(server), options_(options) {}

TcpTransport::~TcpTransport() = default;

Status TcpTransport::Listen() {
  RPQI_ASSIGN_OR_RETURN(
      listener_,
      ListenTcp(options_.bind_address, options_.port, options_.backlog));
  RPQI_ASSIGN_OR_RETURN(port_, LocalPort(listener_.get()));
  return Status::Ok();
}

void TcpTransport::RequestShutdown() {
  // order: loop-exit hint; the loop re-checks state under its own poll cycle
  shutdown_requested_.store(true, std::memory_order_relaxed);
  wake_.Notify();
}

void TcpTransport::BeginDrain() {
  draining_ = true;
  // Refuse new connections first: the drain promise is "everything already
  // accepted finishes", not "we keep taking work while finishing".
  listener_.reset();
  for (auto& [fd, conn] : conns_) conn->read_closed = true;
}

void TcpTransport::AcceptReady() {
  while (true) {
    int raw = ::accept(listener_.get(), nullptr, nullptr);
    if (raw < 0) {
      if (WouldBlock(errno)) return;
      // Transient accept failures (ECONNABORTED, EMFILE burst) just end this
      // round; the listener stays polled.
      return;
    }
    UniqueFd accepted(raw);
    // Injected accept failure: the socket is dropped before any handshake,
    // so the peer sees a connect followed by an immediate close.
    if (RPQI_FAULT_FIRED("net.accept")) continue;
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      ShedCounter().Increment();
      // Best-effort structured rejection: one overloaded line, then close.
      // The socket is fresh and its send buffer empty, so a single short
      // write is overwhelmingly likely to carry the whole line.
      std::string line = service::ErrorResponseLine(
          service::Json::Null(), "overloaded",
          "connection limit " + std::to_string(options_.max_connections) +
              " reached");
      line += '\n';
      (void)::send(accepted.get(), line.data(), line.size(), MSG_NOSIGNAL);
      continue;
    }
    if (!SetNonBlocking(accepted.get()).ok() ||
        !SetTcpNoDelay(accepted.get()).ok()) {
      continue;
    }
    AcceptedCounter().Increment();
    int fd = accepted.get();
    conns_.emplace(fd, std::make_shared<Conn>(std::move(accepted),
                                              options_.max_line_bytes));
    OpenConnectionsGauge().Set(static_cast<int64_t>(conns_.size()));
  }
}

void TcpTransport::ReadReady(const std::shared_ptr<Conn>& conn) {
  // Injected read delay: this round is skipped; level-triggered poll reports
  // the data again next round, so delivery is delayed, never lost.
  if (RPQI_FAULT_FIRED("net.read")) return;
  char buf[64 * 1024];
  ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
  if (n < 0) {
    if (!WouldBlock(errno)) conn->dead = true;
    return;
  }
  std::vector<std::string> lines;
  if (n == 0) {
    conn->read_closed = true;
    // EOF mid-line: match the stdio server, where getline delivers an
    // unterminated final line as a request.
    if (conn->framer.has_partial()) lines.push_back(conn->framer.TakePartial());
  } else {
    BytesReadCounter().Add(n);
    int oversized = conn->framer.Feed(buf, static_cast<size_t>(n), &lines);
    if (oversized > 0) {
      OversizedCounter().Add(oversized);
      std::vector<std::string> errors;
      errors.reserve(oversized);
      for (int i = 0; i < oversized; ++i) {
        errors.push_back(service::ErrorResponseLine(
            service::Json::Null(), "invalid_request",
            "request line exceeds " + std::to_string(options_.max_line_bytes) +
                " bytes"));
      }
      conn->AppendLines(errors, /*finish_batch=*/false);
    }
  }
  lines.erase(std::remove_if(lines.begin(), lines.end(), IsBlankLine),
              lines.end());
  SubmitLines(conn, std::move(lines));
}

void TcpTransport::SubmitLines(const std::shared_ptr<Conn>& conn,
                               std::vector<std::string> lines) {
  for (size_t start = 0; start < lines.size();
       start += static_cast<size_t>(options_.max_batch)) {
    size_t end = std::min(lines.size(),
                          start + static_cast<size_t>(options_.max_batch));
    std::vector<std::string> chunk(
        std::make_move_iterator(lines.begin() + start),
        std::make_move_iterator(lines.begin() + end));
    std::shared_ptr<service::Server::ParsedBatch> batch =
        server_->ParseBatch(chunk);
    if (service::Server::RequestsShutdown(*batch)) {
      // The batch (and its shutdown response) still executes; the drain
      // itself starts at the top of the next loop iteration.
      // order: loop-exit hint, same contract as RequestShutdown
      shutdown_requested_.store(true, std::memory_order_relaxed);
    }
    {
      MutexLock lock(&conn->conn_mu_);
      ++conn->pending_batches;
    }
    bool submitted = pool_->TrySubmit([this, conn, batch] {
      conn->AppendLines(server_->ExecuteBatch(batch.get()),
                        /*finish_batch=*/true);
      wake_.Notify();
    });
    if (!submitted) {
      BatchesRejectedCounter().Increment();
      conn->AppendLines(
          server_->RejectBatch(
              batch.get(), "overloaded",
              "request queue full (depth " +
                  std::to_string(
                      server_->options().admission.queue_depth) +
                  ")"),
          /*finish_batch=*/true);
    }
  }
}

void TcpTransport::WriteReady(const std::shared_ptr<Conn>& conn) {
  MutexLock lock(&conn->conn_mu_);
  while (conn->out_pos < conn->out_buf.size()) {
    size_t len = conn->out_buf.size() - conn->out_pos;
    // Injected short write: one byte goes out, exercising the resume path a
    // slow client's full send buffer would hit.
    if (RPQI_FAULT_FIRED("net.write")) len = 1;
    ssize_t wrote = ::send(conn->fd.get(), conn->out_buf.data() + conn->out_pos,
                           len, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (!WouldBlock(errno)) conn->dead = true;
      return;
    }
    BytesWrittenCounter().Add(wrote);
    conn->out_pos += static_cast<size_t>(wrote);
  }
  conn->out_buf.clear();
  conn->out_pos = 0;
}

Status TcpTransport::Serve() {
  if (!listener_.valid()) RPQI_RETURN_IF_ERROR(Listen());
  RPQI_RETURN_IF_ERROR(wake_.Open());
  // order: fresh serve cycle; flag-only reset before any reader exists
  shutdown_requested_.store(false, std::memory_order_relaxed);
  draining_ = false;
  {
    WorkerPool pool(server_->options().threads,
                    server_->options().admission.queue_depth);
    pool_ = &pool;
    std::vector<PollEvent> events;
    std::vector<std::shared_ptr<Conn>> polled;
    while (true) {
      // order: flag-only hint set by workers / other threads; everything the
      // drain acts on is re-read from the connection table below
      if (shutdown_requested_.load(std::memory_order_relaxed) && !draining_) {
        BeginDrain();
      }
      // Sweep connections that are finished (or dead). A finished connection
      // whose peer already hit EOF — or whose server is draining — has
      // answered and flushed everything it ever admitted.
      for (auto it = conns_.begin(); it != conns_.end();) {
        Conn& conn = *it->second;
        if (conn.dead || (conn.read_closed && conn.Finished())) {
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      OpenConnectionsGauge().Set(static_cast<int64_t>(conns_.size()));
      if (draining_ && conns_.empty()) break;

      events.clear();
      polled.clear();
      PollEvent wake_event;
      wake_event.fd = wake_.read_fd();
      wake_event.want_read = true;
      events.push_back(wake_event);
      polled.push_back(nullptr);
      if (listener_.valid()) {
        PollEvent accept_event;
        accept_event.fd = listener_.get();
        accept_event.want_read = true;
        events.push_back(accept_event);
        polled.push_back(nullptr);
      }
      for (auto& [fd, conn] : conns_) {
        PollEvent event;
        event.fd = fd;
        event.want_read = !conn->read_closed;
        event.want_write = conn->HasUnsentBytes();
        if (!event.want_read && !event.want_write) continue;
        events.push_back(event);
        polled.push_back(conn);
      }
      // The wake pipe interrupts the poll whenever a worker finishes a
      // batch; the finite timeout is a belt-and-suspenders liveness floor.
      StatusOr<int> ready = PollSockets(&events, 500);
      if (!ready.ok()) {
        pool.Drain();
        pool_ = nullptr;
        return ready.status();
      }
      for (size_t i = 0; i < events.size(); ++i) {
        const PollEvent& event = events[i];
        if (polled[i] == nullptr) {
          if (event.fd == wake_.read_fd()) {
            if (event.readable) wake_.Drain();
          } else if (event.readable && listener_.valid()) {
            AcceptReady();
          }
          continue;
        }
        if (event.error) {
          polled[i]->dead = true;
          continue;
        }
        if (event.writable) WriteReady(polled[i]);
        if (event.readable && !polled[i]->dead) ReadReady(polled[i]);
      }
    }
    pool.Drain();
    pool_ = nullptr;
  }
  conns_.clear();
  listener_.reset();
  return Status::Ok();
}

}  // namespace net
}  // namespace rpqi
