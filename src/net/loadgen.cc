#include "net/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <deque>
#include <fstream>
#include <random>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <cerrno>
#include <sys/socket.h>

#include "base/socket.h"
#include "graphdb/io.h"
#include "net/framing.h"
#include "regex/printer.h"
#include "service/json.h"
#include "workload/scenario.h"

namespace rpqi {
namespace net {

namespace {

using service::Json;
using service::JsonObject;

/// One request body in the replayed mix (the id is stamped per send).
struct RequestTemplate {
  std::string op;
  std::string query;
  /// For rewrite: view name -> expression.
  std::vector<std::pair<std::string, std::string>> views;
};

std::string RenderRequest(const RequestTemplate& tmpl, const std::string& id) {
  JsonObject body;
  body.emplace_back("id", Json::Str(id));
  body.emplace_back("op", Json::Str(tmpl.op));
  body.emplace_back("query", Json::Str(tmpl.query));
  if (!tmpl.views.empty()) {
    JsonObject views;
    for (const auto& [name, expr] : tmpl.views) {
      views.emplace_back(name, Json::Str(expr));
    }
    body.emplace_back("views", Json::Obj(std::move(views)));
  }
  return Json::Obj(std::move(body)).Dump();
}

/// The scenario's request mix, cycled by every connection. `db_text` receives
/// the graph eval requests run against (empty for the rewrite-only "hard"
/// mix).
Status BuildMix(const LoadGenOptions& options,
                std::vector<RequestTemplate>* mix, std::string* db_text) {
  if (options.scenario == "modules") {
    std::mt19937_64 rng(options.seed);
    SoftwareModulesScenario scenario =
        MakeSoftwareModulesScenario(rng, /*num_modules=*/8,
                                    /*num_variables=*/12);
    *db_text = SaveGraphText(scenario.db, scenario.alphabet);
    std::vector<std::pair<std::string, std::string>> views;
    for (size_t i = 0; i < scenario.view_names.size(); ++i) {
      views.emplace_back(scenario.view_names[i],
                         RegexToString(scenario.view_definitions[i]));
    }
    std::string visibility = RegexToString(scenario.visibility_query);
    // 2:1:1 eval-heavy mix: the visibility query (plan-cache hit after the
    // first), each view as a standalone eval, and the paper's Example 3
    // rewriting.
    mix->push_back({"eval", visibility, {}});
    for (const auto& view : views) {
      mix->push_back({"eval", view.second, {}});
    }
    mix->push_back({"eval", visibility, {}});
    mix->push_back({"rewrite", visibility, views});
    return Status::Ok();
  }
  if (options.scenario == "hard") {
    HardRewritingInstance instance = MakeHardRewritingInstance(/*k=*/3);
    std::vector<std::pair<std::string, std::string>> views;
    for (size_t i = 0; i < instance.view_names.size(); ++i) {
      views.emplace_back(instance.view_names[i],
                         RegexToString(instance.view_definitions[i]));
    }
    // Rewrite-only: exercises the planner and the plan cache without needing
    // any snapshot on the server.
    mix->push_back({"rewrite", RegexToString(instance.query), views});
    db_text->clear();
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown scenario '" + options.scenario +
                                 "' (modules|hard)");
}

/// Per-connection tallies merged into the report at the end.
struct ConnResult {
  Status status = Status::Ok();
  int64_t sent = 0;
  int64_t received = 0;
  int64_t ok = 0;
  int64_t dropped = 0;
  int64_t unanswered = 0;
  std::map<std::string, int64_t> errors;
  std::vector<int64_t> latencies_us;
};

int64_t NowUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

void RunConnection(const LoadGenOptions& options,
                   const std::vector<RequestTemplate>& mix, int conn_index,
                   std::chrono::steady_clock::time_point start,
                   ConnResult* result) {
  StatusOr<UniqueFd> connected = ConnectTcp(options.host, options.port);
  if (!connected.ok()) {
    result->status = connected.status();
    return;
  }
  UniqueFd fd = std::move(connected).value();
  Status nonblocking = SetNonBlocking(fd.get());
  if (!nonblocking.ok()) {
    result->status = nonblocking;
    return;
  }

  LineFramer framer(size_t{1} << 20);
  // The out buffer keeps absolute offsets for the whole run (never
  // compacted): a few MB at most, and it keeps per-request send boundaries
  // trivially stable.
  std::string out;
  size_t out_pos = 0;
  /// (id, end offset in `out`) per enqueued request, oldest first.
  std::deque<std::pair<std::string, size_t>> boundaries;
  std::unordered_map<std::string, int64_t> sent_at_us;

  const double per_conn_qps =
      options.qps / std::max(1, options.connections);
  const int64_t interval_us =
      per_conn_qps > 0 ? static_cast<int64_t>(1e6 / per_conn_qps) : 1000000;
  const int64_t deadline_us = options.duration_ms * 1000;
  const int64_t grace_end_us = deadline_us + 2 * 1000 * 1000;

  int64_t seq = 0;
  int64_t next_due_us = 0;
  std::vector<PollEvent> events(1);

  auto enqueue = [&](int64_t now_us) {
    std::string id =
        "c" + std::to_string(conn_index) + "-" + std::to_string(seq);
    const RequestTemplate& tmpl = mix[static_cast<size_t>(seq) % mix.size()];
    ++seq;
    out += RenderRequest(tmpl, id);
    out += '\n';
    boundaries.emplace_back(id, out.size());
    // Open loop stamps the *scheduled* time, not the actual write: a client
    // that falls behind still charges the server-visible schedule, the
    // standard coordinated-omission correction. Closed loop stamps now.
    sent_at_us[id] = options.open_loop ? next_due_us : now_us;
    ++result->sent;
  };

  while (true) {
    int64_t now_us = NowUs(start);
    bool sending_window = now_us < deadline_us;
    if (sending_window) {
      if (options.open_loop) {
        // Absolute schedule: every slot that has come due is enqueued, even
        // if several became due at once (catch-up bursts are the open-loop
        // contract).
        while (next_due_us <= now_us && NowUs(start) < deadline_us) {
          enqueue(now_us);
          next_due_us += interval_us;
        }
      } else {
        if (sent_at_us.empty() && now_us >= next_due_us) {
          enqueue(now_us);
          // Pace from now, not from the nominal slot: closed loop never
          // bursts to catch up.
          next_due_us = now_us + interval_us;
        }
      }
    } else {
      if (sent_at_us.empty() && out_pos >= out.size()) break;
      if (now_us >= grace_end_us) break;
    }

    events[0] = PollEvent{};
    events[0].fd = fd.get();
    events[0].want_read = true;
    events[0].want_write = out_pos < out.size();
    int64_t wait_us = sending_window
                          ? std::max<int64_t>(0, next_due_us - now_us)
                          : 50 * 1000;
    StatusOr<int> ready =
        PollSockets(&events, static_cast<int>(
                                 std::min<int64_t>(50, wait_us / 1000) + 1));
    if (!ready.ok()) {
      result->status = ready.status();
      break;
    }
    if (events[0].error) break;
    if (events[0].writable && out_pos < out.size()) {
      ssize_t wrote = ::send(fd.get(), out.data() + out_pos,
                             out.size() - out_pos, MSG_NOSIGNAL);
      if (wrote > 0) {
        out_pos += static_cast<size_t>(wrote);
      } else if (wrote < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR) {
        break;
      }
    }
    if (events[0].readable) {
      char buf[64 * 1024];
      ssize_t n = ::recv(fd.get(), buf, sizeof(buf), 0);
      if (n == 0) break;  // server closed (drain after shutdown)
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        break;
      }
      std::vector<std::string> lines;
      framer.Feed(buf, static_cast<size_t>(n), &lines);
      int64_t recv_us = NowUs(start);
      for (const std::string& line : lines) {
        StatusOr<Json> parsed = service::ParseJson(line);
        if (!parsed.ok() || !parsed->is_object()) continue;
        const Json* id = parsed->Find("id");
        if (id != nullptr && id->is_string()) {
          auto it = sent_at_us.find(id->string_value());
          if (it != sent_at_us.end()) {
            result->latencies_us.push_back(recv_us - it->second);
            sent_at_us.erase(it);
          }
        }
        ++result->received;
        const Json* status = parsed->Find("status");
        if (status != nullptr && status->is_string() &&
            status->string_value() == "ok") {
          ++result->ok;
        } else {
          const Json* error = parsed->Find("error");
          const Json* code =
              error != nullptr && error->is_object() ? error->Find("code")
                                                     : nullptr;
          std::string code_name = code != nullptr && code->is_string()
                                      ? code->string_value()
                                      : "unknown";
          ++result->errors[code_name];
        }
      }
    }
  }

  // Requests whose bytes never fully left the client are drops, not
  // unanswered server requests.
  for (const auto& [id, end] : boundaries) {
    if (end > out_pos && sent_at_us.erase(id) > 0) {
      ++result->dropped;
      --result->sent;
    }
  }
  result->unanswered = static_cast<int64_t>(sent_at_us.size());
}

int64_t Percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(std::llround(rank))];
}

}  // namespace

StatusOr<LoadGenReport> RunLoadGen(const LoadGenOptions& options) {
  if (options.port <= 0) {
    return Status::InvalidArgument("loadgen needs a --port");
  }
  if (options.connections < 1 || options.connections > 1024) {
    return Status::InvalidArgument("--connections must be in [1, 1024]");
  }
  if (!(options.qps > 0) || options.qps > 1e6) {
    return Status::InvalidArgument("--qps must be in (0, 1e6]");
  }
  std::vector<RequestTemplate> mix;
  std::string db_text;
  RPQI_RETURN_IF_ERROR(BuildMix(options, &mix, &db_text));
  if (!options.emit_db_path.empty()) {
    RPQI_RETURN_IF_ERROR(
        EmitScenarioDb(options.scenario, options.seed, options.emit_db_path));
  }

  std::vector<ConnResult> results(options.connections);
  std::vector<std::thread> threads;
  threads.reserve(options.connections);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < options.connections; ++i) {
    threads.emplace_back([&options, &mix, &results, start, i] {
      RunConnection(options, mix, i, start, &results[i]);
    });
  }
  for (std::thread& thread : threads) thread.join();

  LoadGenReport report;
  report.mode = options.open_loop ? "open" : "closed";
  report.scenario = options.scenario;
  report.target_qps = options.qps;
  report.duration_ms = options.duration_ms;
  report.connections = options.connections;
  std::vector<int64_t> latencies;
  for (ConnResult& result : results) {
    if (!result.status.ok()) return result.status;
    report.sent += result.sent;
    report.received += result.received;
    report.ok += result.ok;
    report.dropped += result.dropped;
    report.unanswered += result.unanswered;
    for (const auto& [code, count] : result.errors) {
      report.errors[code] += count;
    }
    latencies.insert(latencies.end(), result.latencies_us.begin(),
                     result.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_us = Percentile(latencies, 50);
  report.p95_us = Percentile(latencies, 95);
  report.p99_us = Percentile(latencies, 99);
  report.max_us = latencies.empty() ? 0 : latencies.back();
  report.achieved_qps =
      options.duration_ms > 0
          ? static_cast<double>(report.received) /
                (static_cast<double>(options.duration_ms) / 1000.0)
          : 0.0;
  return report;
}

Status EmitScenarioDb(const std::string& scenario, uint64_t seed,
                      const std::string& path) {
  LoadGenOptions mix_options;
  mix_options.scenario = scenario;
  mix_options.seed = seed;
  std::vector<RequestTemplate> mix;
  std::string db_text;
  RPQI_RETURN_IF_ERROR(BuildMix(mix_options, &mix, &db_text));
  std::ofstream db_file(path, std::ios::binary | std::ios::trunc);
  db_file << db_text;
  db_file.close();
  if (!db_file) {
    return Status::InvalidArgument("cannot write graph to '" + path + "'");
  }
  return Status::Ok();
}

std::string LoadGenReportJson(const LoadGenReport& report) {
  JsonObject errors;
  for (const auto& [code, count] : report.errors) {
    errors.emplace_back(code, Json::Int(count));
  }
  JsonObject latency;
  latency.emplace_back("p50_us", Json::Int(report.p50_us));
  latency.emplace_back("p95_us", Json::Int(report.p95_us));
  latency.emplace_back("p99_us", Json::Int(report.p99_us));
  latency.emplace_back("max_us", Json::Int(report.max_us));
  JsonObject body;
  body.emplace_back("mode", Json::Str(report.mode));
  body.emplace_back("scenario", Json::Str(report.scenario));
  body.emplace_back("target_qps", Json::Int(static_cast<int64_t>(
                                      std::llround(report.target_qps))));
  body.emplace_back(
      "achieved_qps",
      Json::Int(static_cast<int64_t>(std::llround(report.achieved_qps))));
  body.emplace_back("duration_ms", Json::Int(report.duration_ms));
  body.emplace_back("connections", Json::Int(report.connections));
  body.emplace_back("sent", Json::Int(report.sent));
  body.emplace_back("received", Json::Int(report.received));
  body.emplace_back("ok", Json::Int(report.ok));
  body.emplace_back("dropped", Json::Int(report.dropped));
  body.emplace_back("unanswered", Json::Int(report.unanswered));
  body.emplace_back("errors", Json::Obj(std::move(errors)));
  body.emplace_back("latency", Json::Obj(std::move(latency)));
  return Json::Obj(std::move(body)).Dump();
}

}  // namespace net
}  // namespace rpqi
