#ifndef RPQI_NET_LOADGEN_H_
#define RPQI_NET_LOADGEN_H_

#include <cstdint>
#include <map>
#include <string>

#include "base/status.h"

namespace rpqi {
namespace net {

/// Configuration for one `rpqi loadgen` run: replay a src/workload scenario's
/// request mix against a TCP server at a target rate and measure what comes
/// back.
struct LoadGenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Aggregate target across all connections.
  double qps = 200.0;
  /// How long new requests are issued; outstanding ones get a grace period
  /// (2s) to finish after the deadline.
  int64_t duration_ms = 5000;
  int connections = 1;
  /// Closed loop (default): each connection keeps at most one request in
  /// flight and paces sends to its share of the rate — latency feedback slows
  /// the client down, the classic coordinated-omission trap. Open loop: sends
  /// fire on an absolute schedule regardless of outstanding responses, so a
  /// slow server accumulates queueing delay in the measured latencies instead
  /// of hiding it.
  bool open_loop = false;
  /// Request mix: "modules" (the paper's Example 1 software-modules scenario:
  /// eval + rewrite over its views) or "hard" (the exponential-rewriting
  /// family: rewrite-only, no snapshot needed).
  std::string scenario = "modules";
  uint64_t seed = 7;
  /// When set, the scenario's graph is written here (text format) before the
  /// run — start the server on this file so eval requests resolve.
  std::string emit_db_path;
};

/// Results of a run. Latency is measured per request, send to response line.
struct LoadGenReport {
  std::string mode;  // "open" | "closed"
  std::string scenario;
  double target_qps = 0;
  double achieved_qps = 0;
  int64_t duration_ms = 0;  // actual wall time of the sending window
  int connections = 0;
  int64_t sent = 0;
  int64_t received = 0;
  int64_t ok = 0;
  /// Error responses by structured code (invalid_request, overloaded, ...).
  std::map<std::string, int64_t> errors;
  /// Open loop: scheduled sends that never went out (client fell behind or
  /// the deadline hit first). Always 0 in closed loop.
  int64_t dropped = 0;
  /// Requests sent but unanswered when the grace period expired.
  int64_t unanswered = 0;
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;
  int64_t max_us = 0;
};

/// Runs the load; connects `connections` sockets, each driven by its own
/// thread. Returns an error only for setup failures (bad scenario, connect
/// refused); server-side errors are counted in the report.
StatusOr<LoadGenReport> RunLoadGen(const LoadGenOptions& options);

/// One-line JSON rendering of the report (the CI saturation-smoke artifact).
std::string LoadGenReportJson(const LoadGenReport& report);

/// Writes the scenario's graph to `path` without generating any load — CI
/// uses this to create the server's db file before starting the server the
/// loadgen will then target.
Status EmitScenarioDb(const std::string& scenario, uint64_t seed,
                      const std::string& path);

}  // namespace net
}  // namespace rpqi

#endif  // RPQI_NET_LOADGEN_H_
