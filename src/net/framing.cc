#include "net/framing.h"

#include <cstring>
#include <utility>

namespace rpqi {
namespace net {

int LineFramer::Feed(const char* data, size_t size,
                     std::vector<std::string>* lines) {
  int oversized = 0;
  size_t pos = 0;
  while (pos < size) {
    const char* newline = static_cast<const char*>(
        std::memchr(data + pos, '\n', size - pos));
    size_t chunk_end = newline == nullptr
                           ? size
                           : static_cast<size_t>(newline - data);
    if (discarding_) {
      // Swallow the rest of the oversized line; resume framing after '\n'.
      if (newline != nullptr) discarding_ = false;
      pos = chunk_end + 1;
      continue;
    }
    size_t chunk = chunk_end - pos;
    if (partial_.size() + chunk > max_line_bytes_) {
      partial_.clear();
      ++oversized;
      if (newline == nullptr) {
        discarding_ = true;
        return oversized;
      }
      pos = chunk_end + 1;
      continue;
    }
    partial_.append(data + pos, chunk);
    if (newline == nullptr) return oversized;
    if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
    lines->push_back(std::move(partial_));
    partial_.clear();
    pos = chunk_end + 1;
  }
  return oversized;
}

std::string LineFramer::TakePartial() {
  std::string tail = std::move(partial_);
  partial_.clear();
  return tail;
}

}  // namespace net
}  // namespace rpqi
