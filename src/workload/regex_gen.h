#ifndef RPQI_WORKLOAD_REGEX_GEN_H_
#define RPQI_WORKLOAD_REGEX_GEN_H_

#include <random>
#include <string>
#include <vector>

#include "regex/ast.h"

namespace rpqi {

/// Options for random RPQI expression generation (property tests, complexity
/// sweeps). `inverse_probability = 0` yields plain RPQs — the knob behind the
/// inverse-overhead experiment.
struct RandomRegexOptions {
  /// Relation names to draw atoms from.
  std::vector<std::string> relation_names = {"a", "b"};
  /// Approximate number of AST nodes.
  int target_size = 8;
  double inverse_probability = 0.3;
  double star_probability = 0.25;
  double union_probability = 0.35;  // vs concat for binary nodes
};

/// A random RPQI expression of roughly the requested size.
RegexPtr RandomRegex(std::mt19937_64& rng, const RandomRegexOptions& options);

}  // namespace rpqi

#endif  // RPQI_WORKLOAD_REGEX_GEN_H_
