#ifndef RPQI_WORKLOAD_SCENARIO_H_
#define RPQI_WORKLOAD_SCENARIO_H_

#include <random>
#include <string>
#include <vector>

#include "graphdb/graph.h"
#include "regex/ast.h"
#include "rpq/alphabet.h"

namespace rpqi {

/// The paper's Example 1: a database of software modules with relations
/// hasSubmodule (module nesting) and containsVar (variable definitions), plus
/// the Algol-visibility query
///   (hasSubmodule^-)* (containsVar | hasSubmodule).
struct SoftwareModulesScenario {
  SignedAlphabet alphabet;
  GraphDb db;
  RegexPtr visibility_query;
  /// Natural navigation views: up = hasSubmodule^-, downOrVar =
  /// containsVar | hasSubmodule.
  std::vector<RegexPtr> view_definitions;
  std::vector<std::string> view_names;
};

/// Generates a random module tree with `num_modules` modules and
/// `num_variables` variables attached uniformly.
SoftwareModulesScenario MakeSoftwareModulesScenario(std::mt19937_64& rng,
                                                    int num_modules,
                                                    int num_variables);

/// Crafted family exhibiting exponential rewriting growth: the query
///   a (b c)^(2^k-ish patterns)… is approximated by the classic
///   (a|b)* a (a|b)^k  "k-th letter from a marked position" family, whose
///   minimal DFA has ≥ 2^k states. Views expose single letters, so the
///   maximal rewriting inherits the blowup — the adversarial input for
///   Theorems 7/8.
struct HardRewritingInstance {
  SignedAlphabet alphabet;
  RegexPtr query;
  std::vector<RegexPtr> view_definitions;
  std::vector<std::string> view_names;
};
HardRewritingInstance MakeHardRewritingInstance(int k);

}  // namespace rpqi

#endif  // RPQI_WORKLOAD_SCENARIO_H_
