#include "workload/scenario.h"

#include "regex/parser.h"

namespace rpqi {

SoftwareModulesScenario MakeSoftwareModulesScenario(std::mt19937_64& rng,
                                                    int num_modules,
                                                    int num_variables) {
  SoftwareModulesScenario scenario;
  int has_submodule = scenario.alphabet.AddRelation("hasSubmodule");
  int contains_var = scenario.alphabet.AddRelation("containsVar");

  for (int i = 0; i < num_modules; ++i) {
    scenario.db.AddNode("module" + std::to_string(i));
  }
  for (int i = 1; i < num_modules; ++i) {
    std::uniform_int_distribution<int> pick_parent(0, i - 1);
    scenario.db.AddEdge(pick_parent(rng), has_submodule, i);
  }
  std::uniform_int_distribution<int> pick_module(0, num_modules - 1);
  for (int i = 0; i < num_variables; ++i) {
    int variable = scenario.db.AddNode("var" + std::to_string(i));
    scenario.db.AddEdge(pick_module(rng), contains_var, variable);
  }

  scenario.visibility_query =
      MustParseRegex("(hasSubmodule^-)* (containsVar | hasSubmodule)");
  scenario.view_definitions = {
      MustParseRegex("hasSubmodule^-"),
      MustParseRegex("containsVar | hasSubmodule"),
  };
  scenario.view_names = {"up", "downOrVar"};
  return scenario;
}

HardRewritingInstance MakeHardRewritingInstance(int k) {
  HardRewritingInstance instance;
  instance.alphabet.AddRelation("a");
  instance.alphabet.AddRelation("b");

  // (a|b)* a (a|b)^k : membership depends on the k-th letter before the end,
  // forcing exponentially many distinguishable prefixes.
  std::string text = "(a | b)* a";
  for (int i = 0; i < k; ++i) text += " (a | b)";
  instance.query = MustParseRegex(text);

  instance.view_definitions = {MustParseRegex("a"), MustParseRegex("b")};
  instance.view_names = {"va", "vb"};
  return instance;
}

}  // namespace rpqi
