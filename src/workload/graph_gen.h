#ifndef RPQI_WORKLOAD_GRAPH_GEN_H_
#define RPQI_WORKLOAD_GRAPH_GEN_H_

#include <random>

#include "graphdb/graph.h"

namespace rpqi {

/// Options for random database generation. All generators are deterministic
/// given the RNG state; relations are ids [0, num_relations).
struct RandomGraphOptions {
  int num_nodes = 10;
  int num_relations = 2;
  /// Expected out-degree per node (edges drawn uniformly).
  double average_out_degree = 2.0;
};

/// Uniform random multigraph ("Erdős–Rényi-style" over labeled edges).
GraphDb RandomGraph(std::mt19937_64& rng, const RandomGraphOptions& options);

/// A simple chain n0 -r0-> n1 -r1-> … with uniformly random relations; the
/// line databases on which word-satisfaction semantics is easiest to audit.
GraphDb ChainGraph(std::mt19937_64& rng, int num_nodes, int num_relations);

/// A random rooted tree with edges pointing away from the root — matches the
/// paper's Example 1 shape when num_relations = 1 (hasSubmodule).
GraphDb RandomTree(std::mt19937_64& rng, int num_nodes, int num_relations);

}  // namespace rpqi

#endif  // RPQI_WORKLOAD_GRAPH_GEN_H_
