#include "workload/regex_gen.h"

#include "base/logging.h"

namespace rpqi {

namespace {

RegexPtr Generate(std::mt19937_64& rng, const RandomRegexOptions& options,
                  int budget) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (budget <= 1) {
    std::uniform_int_distribution<size_t> pick_name(
        0, options.relation_names.size() - 1);
    bool inverse = coin(rng) < options.inverse_probability;
    return RAtom(options.relation_names[pick_name(rng)], inverse);
  }
  if (coin(rng) < options.star_probability) {
    return RStar(Generate(rng, options, budget - 1));
  }
  std::uniform_int_distribution<int> split(1, budget - 1);
  int left_budget = split(rng);
  RegexPtr left = Generate(rng, options, left_budget);
  RegexPtr right = Generate(rng, options, budget - 1 - left_budget);
  if (coin(rng) < options.union_probability) return RUnion(left, right);
  return RConcat(left, right);
}

}  // namespace

RegexPtr RandomRegex(std::mt19937_64& rng, const RandomRegexOptions& options) {
  RPQI_CHECK(!options.relation_names.empty());
  RPQI_CHECK_GE(options.target_size, 1);
  return Generate(rng, options, options.target_size);
}

}  // namespace rpqi
