#include "workload/graph_gen.h"

namespace rpqi {

GraphDb RandomGraph(std::mt19937_64& rng, const RandomGraphOptions& options) {
  GraphDb db;
  for (int i = 0; i < options.num_nodes; ++i) {
    db.AddNode("n" + std::to_string(i));
  }
  std::uniform_int_distribution<int> pick_node(0, options.num_nodes - 1);
  std::uniform_int_distribution<int> pick_relation(0,
                                                   options.num_relations - 1);
  int num_edges = static_cast<int>(options.average_out_degree *
                                   options.num_nodes);
  for (int i = 0; i < num_edges; ++i) {
    db.AddEdge(pick_node(rng), pick_relation(rng), pick_node(rng));
  }
  return db;
}

GraphDb ChainGraph(std::mt19937_64& rng, int num_nodes, int num_relations) {
  GraphDb db;
  for (int i = 0; i < num_nodes; ++i) {
    db.AddNode("n" + std::to_string(i));
  }
  std::uniform_int_distribution<int> pick_relation(0, num_relations - 1);
  for (int i = 0; i + 1 < num_nodes; ++i) {
    db.AddEdge(i, pick_relation(rng), i + 1);
  }
  return db;
}

GraphDb RandomTree(std::mt19937_64& rng, int num_nodes, int num_relations) {
  GraphDb db;
  for (int i = 0; i < num_nodes; ++i) {
    db.AddNode("n" + std::to_string(i));
  }
  std::uniform_int_distribution<int> pick_relation(0, num_relations - 1);
  for (int i = 1; i < num_nodes; ++i) {
    std::uniform_int_distribution<int> pick_parent(0, i - 1);
    db.AddEdge(pick_parent(rng), pick_relation(rng), i);
  }
  return db;
}

}  // namespace rpqi
