#ifndef RPQI_OBS_TRACE_H_
#define RPQI_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace rpqi {
namespace obs {

/// Stage-span tracer. Spans are RAII objects naming a pipeline stage; on
/// destruction each emits one NDJSON record to the process-wide sink:
///
///   {"type":"span","name":"rewrite.A1","id":7,"parent":6,"thread":0,
///    "start_us":123,"dur_us":456,
///    "counters":{"emptiness.searches":1},"notes":{"a1_states":34}}
///
/// `id`/`parent` link spans into per-thread trees (parent 0 = root).
/// `start_us` is steady-clock time since Tracer start; `counters` are the
/// metric deltas this thread produced while the span was open (increments
/// from other threads land on their own shards and are not attributed);
/// `notes` are explicit Note() annotations.
///
/// When the tracer is off (the default) a Span costs one relaxed atomic load
/// — spans stay compiled into release builds and are enabled per run by
/// `rpqi ... --trace-out=FILE` or Tracer::StartToFile.
class Tracer {
 public:
  /// Starts emitting to `path` (truncating). Returns false — and leaves
  /// tracing disabled — when the file cannot be opened.
  static bool StartToFile(const std::string& path);
  /// Starts emitting to a borrowed stream (tests). The stream must outlive
  /// tracing; call Stop before destroying it.
  static void StartToStream(std::ostream* out);
  /// Disables tracing and flushes/closes the sink. Spans still open emit
  /// nothing when they close.
  static void Stop();
  static bool IsEnabled();
};

/// RAII stage span; see Tracer. Construct with a string literal (the name is
/// borrowed, not copied). Spans must be closed in LIFO order per thread —
/// RPQI_VALIDATE builds check this and abort on a violation.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a named integer to the span record (stage sizes, outcome
  /// codes). No-op when tracing is off. `key` is borrowed.
  void Note(const char* key, int64_t value);

  uint64_t id() const { return id_; }

 private:
  const char* name_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  bool active_ = false;
  std::chrono::steady_clock::time_point start_;
  std::vector<int64_t> baseline_;  // this thread's counter slots at open
  std::vector<std::pair<const char*, int64_t>> notes_;
};

}  // namespace obs
}  // namespace rpqi

#endif  // RPQI_OBS_TRACE_H_
