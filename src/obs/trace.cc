#include "obs/trace.h"

#include <atomic>
#include <fstream>

#include "base/logging.h"
#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "obs/metrics.h"

namespace rpqi {
namespace obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_next_span_id{1};
std::atomic<int> g_next_thread_id{0};

/// Guards the sink below. `g_enabled` is the lock-free fast-path gate: Span
/// open/close check it before ever touching the sink, and Stop() clears it
/// before taking the lock so in-flight spans bail out instead of queueing on
/// a closing sink.
Mutex g_sink_mu;
// Backing storage for file sinks.
std::ofstream g_file RPQI_GUARDED_BY(g_sink_mu);
// The active sink (file or borrowed).
std::ostream* g_out RPQI_GUARDED_BY(g_sink_mu) = nullptr;
std::chrono::steady_clock::time_point g_epoch RPQI_GUARDED_BY(g_sink_mu);

int LocalThreadId() {
  thread_local int id = g_next_thread_id.fetch_add(1);
  return id;
}

thread_local std::vector<const Span*> t_span_stack;

void EscapeTo(std::ostream& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out << '\\';
    out << *p;
  }
}

}  // namespace

bool Tracer::StartToFile(const std::string& path) {
  MutexLock lock(&g_sink_mu);
  g_file.open(path, std::ios::trunc);
  if (!g_file) return false;
  g_out = &g_file;
  g_epoch = std::chrono::steady_clock::now();
  // order: release pairs with the acquire implied by g_sink_mu in the span
  // writer — a span that sees enabled==true then sees the sink set up
  g_enabled.store(true, std::memory_order_release);
  return true;
}

void Tracer::StartToStream(std::ostream* out) {
  MutexLock lock(&g_sink_mu);
  g_out = out;
  g_epoch = std::chrono::steady_clock::now();
  // order: release pairs with the acquire implied by g_sink_mu in the span
  // writer — a span that sees enabled==true then sees the sink set up
  g_enabled.store(true, std::memory_order_release);
}

void Tracer::Stop() {
  // order: clearing the gate needs no payload edge of its own — spans that
  // still see true serialize on g_sink_mu and re-check g_out under it
  g_enabled.store(false, std::memory_order_relaxed);
  MutexLock lock(&g_sink_mu);
  if (g_out != nullptr) g_out->flush();
  if (g_file.is_open()) g_file.close();
  g_out = nullptr;
}

bool Tracer::IsEnabled() {
  // order: a stale read only costs one dropped/attempted span; the sink
  // itself is reached under g_sink_mu
  return g_enabled.load(std::memory_order_relaxed);
}

Span::Span(const char* name) : name_(name) {
  if (!Tracer::IsEnabled()) return;
  active_ = true;
  // order: ids need only uniqueness, not ordering across threads
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_id_ = t_span_stack.empty() ? 0 : t_span_stack.back()->id();
  t_span_stack.push_back(this);
  baseline_ = internal::ThreadCounterValues();
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
#ifdef RPQI_VALIDATE_ENABLED
  RPQI_CHECK(!t_span_stack.empty() && t_span_stack.back() == this)
      << "span '" << name_ << "' closed out of LIFO order";
#endif
  if (!t_span_stack.empty() && t_span_stack.back() == this) {
    t_span_stack.pop_back();
  }
  if (!Tracer::IsEnabled()) return;
  auto end = std::chrono::steady_clock::now();
  std::vector<std::pair<std::string, int64_t>> deltas;
  internal::AppendCounterDeltasSince(baseline_, &deltas);

  MutexLock lock(&g_sink_mu);
  if (g_out == nullptr) return;
  std::ostream& out = *g_out;
  out << "{\"type\":\"span\",\"name\":\"";
  EscapeTo(out, name_);
  out << "\",\"id\":" << id_ << ",\"parent\":" << parent_id_
      << ",\"thread\":" << LocalThreadId() << ",\"start_us\":"
      << std::chrono::duration_cast<std::chrono::microseconds>(start_ - g_epoch)
             .count()
      << ",\"dur_us\":"
      << std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
             .count();
  if (!deltas.empty()) {
    out << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, delta] : deltas) {
      if (!first) out << ',';
      first = false;
      out << '"';
      EscapeTo(out, name.c_str());
      out << "\":" << delta;
    }
    out << '}';
  }
  if (!notes_.empty()) {
    out << ",\"notes\":{";
    bool first = true;
    for (const auto& [key, value] : notes_) {
      if (!first) out << ',';
      first = false;
      out << '"';
      EscapeTo(out, key);
      out << "\":" << value;
    }
    out << '}';
  }
  out << "}\n";
}

void Span::Note(const char* key, int64_t value) {
  if (!active_) return;
  notes_.emplace_back(key, value);
}

}  // namespace obs
}  // namespace rpqi
