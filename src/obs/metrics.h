#ifndef RPQI_OBS_METRICS_H_
#define RPQI_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace rpqi {
namespace obs {

/// Process-wide metrics registry.
///
/// Writes go to lock-free per-thread shards (one relaxed fetch_add on a
/// thread-local atomic slot; no locks, no allocation after the first touch);
/// TakeMetricsSnapshot() merges the shards under a mutex. The intended usage
/// pattern keeps even that fetch_add off the innermost loops: hot code
/// accumulates into plain locals and flushes once per search/stage, so the
/// registry cost is per-stage, not per-state.
///
/// Three metric kinds:
///   Counter    monotonic event count, summed across shards;
///   Gauge      last-written value (stored centrally, not sharded);
///   Histogram  log2(microsecond)-bucketed durations with count and sum.
///
/// Handles are cheap value types resolving to a slot id at construction;
/// construct them as function-local statics next to the code they count.

inline constexpr int kHistogramBuckets = 20;

enum class MetricKind { kCounter, kGauge, kHistogram };

struct HistogramData {
  int64_t count = 0;
  int64_t sum_us = 0;
  /// buckets[b] counts durations with bit_width(us) == b (so bucket 0 is
  /// sub-microsecond); the last bucket absorbs everything longer.
  std::array<int64_t, kHistogramBuckets> buckets{};
};

namespace internal {
int RegisterMetric(const char* name, MetricKind kind);
void AddToSlot(int slot, int64_t delta);
void SetGaugeValue(int gauge_index, int64_t value);
void RecordHistogramUs(int first_slot, int64_t us);
/// Copy of the calling thread's counter slots, for span baselines.
std::vector<int64_t> ThreadCounterValues();
/// Appends (name, delta) for every counter this thread bumped since
/// `baseline` was taken with ThreadCounterValues on the same thread.
void AppendCounterDeltasSince(
    const std::vector<int64_t>& baseline,
    std::vector<std::pair<std::string, int64_t>>* out);
}  // namespace internal

/// Point-in-time view of every registered metric, merged across threads.
class MetricsSnapshot {
 public:
  /// Value of a counter/gauge by name; 0 when never registered.
  int64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  const std::map<std::string, int64_t>& gauges() const { return gauges_; }
  const std::map<std::string, HistogramData>& histograms() const {
    return histograms_;
  }

  /// Counter and histogram deltas of `this` relative to `before`; gauges keep
  /// their value from `this`. Counters are monotonic, so deltas are >= 0 when
  /// `before` was taken earlier on the same process.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& before) const;

  /// One NDJSON record per metric, sorted by name within each kind:
  ///   {"type":"counter","name":"emptiness.searches","value":12}
  ///   {"type":"gauge","name":"...","value":3}
  ///   {"type":"histogram","name":"...","count":2,"sum_us":57,"buckets":[...]}
  void WriteNdjson(std::ostream& out) const;

 private:
  friend MetricsSnapshot TakeMetricsSnapshot();
  std::map<std::string, int64_t> counters_;
  std::map<std::string, int64_t> gauges_;
  std::map<std::string, HistogramData> histograms_;
};

MetricsSnapshot TakeMetricsSnapshot();

/// Monotonic event counter. Add(0) is a no-op; negative deltas are reserved
/// for tests and never used by library code.
class Counter {
 public:
  explicit Counter(const char* name)
      : slot_(internal::RegisterMetric(name, MetricKind::kCounter)) {}
  void Add(int64_t delta) const {
    if (delta != 0) internal::AddToSlot(slot_, delta);
  }
  void Increment() const { internal::AddToSlot(slot_, 1); }

 private:
  int slot_;
};

/// Last-write-wins value (sizes, configuration echoes).
class Gauge {
 public:
  explicit Gauge(const char* name)
      : index_(internal::RegisterMetric(name, MetricKind::kGauge)) {}
  void Set(int64_t value) const { internal::SetGaugeValue(index_, value); }

 private:
  int index_;
};

/// Duration histogram; record via RecordUs or the ScopedUsTimer below.
class Histogram {
 public:
  explicit Histogram(const char* name)
      : first_slot_(internal::RegisterMetric(name, MetricKind::kHistogram)) {}
  void RecordUs(int64_t us) const {
    internal::RecordHistogramUs(first_slot_, us);
  }

 private:
  int first_slot_;
};

}  // namespace obs
}  // namespace rpqi

#endif  // RPQI_OBS_METRICS_H_
