#include "obs/metrics.h"

#include <atomic>
#include <bit>
#include <memory>

#include "base/logging.h"
#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace rpqi {
namespace obs {

namespace {

/// Total atomic slots across all counters and histograms. 1024 slots bound
/// the per-thread shard at 8 KiB; registration past the bound degrades to a
/// no-op handle rather than failing.
constexpr int kMaxSlots = 1024;
constexpr int kMaxGauges = 256;

struct Shard {
  std::array<std::atomic<int64_t>, kMaxSlots> slots{};
};

struct MetricInfo {
  std::string name;
  MetricKind kind;
  int first_slot;  // slot index (counter/histogram) or gauge index
};

/// The process-wide registry. `registry_mu` is the innermost lock of the
/// declared hierarchy (base/thread_annotations.h): every layer bumps counters
/// while holding its own locks, so nothing may be acquired under it. The hot
/// write path (AddToSlot) never takes it — shard slots are atomics reached
/// through a thread_local handle.
struct Registry {
  Mutex registry_mu;
  std::vector<MetricInfo> metrics RPQI_GUARDED_BY(registry_mu);
  /// -> index into `metrics`.
  std::map<std::string, int> index_by_name RPQI_GUARDED_BY(registry_mu);
  int next_slot RPQI_GUARDED_BY(registry_mu) = 0;
  int next_gauge RPQI_GUARDED_BY(registry_mu) = 0;
  std::array<std::atomic<int64_t>, kMaxGauges> gauges{};
  // Every shard ever created, owned forever so scrapes never race a thread
  // teardown; exited threads fold their totals into `retired` and donate
  // their (zeroed) shard back through `free_shards` for reuse.
  std::vector<std::unique_ptr<Shard>> shards RPQI_GUARDED_BY(registry_mu);
  std::vector<int> free_shards RPQI_GUARDED_BY(registry_mu);
  std::array<int64_t, kMaxSlots> retired RPQI_GUARDED_BY(registry_mu) = {};
};

Registry& Reg() {
  // Intentionally leaked: worker threads owned by static ThreadPool objects
  // may run their thread_local shard destructors during static destruction,
  // after a function-local static Registry would already be gone.
  static Registry* registry = std::make_unique<Registry>().release();
  return *registry;
}

struct ShardHandle {
  Shard* shard = nullptr;
  int index = -1;

  ShardHandle() {
    Registry& reg = Reg();
    MutexLock lock(&reg.registry_mu);
    if (!reg.free_shards.empty()) {
      index = reg.free_shards.back();
      reg.free_shards.pop_back();
    } else {
      reg.shards.push_back(std::make_unique<Shard>());
      index = static_cast<int>(reg.shards.size()) - 1;
    }
    shard = reg.shards[index].get();
  }

  ~ShardHandle() {
    Registry& reg = Reg();
    MutexLock lock(&reg.registry_mu);
    for (int i = 0; i < kMaxSlots; ++i) {
      // order: the exiting thread's own writes are already visible to it;
      // cross-thread visibility of the folded total comes from registry_mu
      int64_t value = shard->slots[i].exchange(0, std::memory_order_relaxed);
      if (value != 0) reg.retired[i] += value;
    }
    reg.free_shards.push_back(index);
  }
};

Shard& LocalShard() {
  thread_local ShardHandle handle;
  return *handle.shard;
}

int SlotsFor(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return 1;
    case MetricKind::kGauge:
      return 0;
    case MetricKind::kHistogram:
      return 2 + kHistogramBuckets;  // count, sum, buckets
  }
  return 0;
}

/// Merged total for one slot across live and retired shards; the caller holds
/// the registry lock for the shard-table walk.
int64_t SumSlot(const Registry& reg, int slot)
    RPQI_REQUIRES(reg.registry_mu) {
  int64_t total = reg.retired[slot];
  for (const auto& shard : reg.shards) {
    // order: scrapes are statistical reads; each slot is independently
    // atomic and monotonic, so a torn cross-slot view is acceptable
    total += shard->slots[slot].load(std::memory_order_relaxed);
  }
  return total;
}

void JsonEscapeTo(std::ostream& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

namespace internal {

int RegisterMetric(const char* name, MetricKind kind) {
  Registry& reg = Reg();
  MutexLock lock(&reg.registry_mu);
  auto it = reg.index_by_name.find(name);
  if (it != reg.index_by_name.end()) {
    const MetricInfo& info = reg.metrics[it->second];
    RPQI_CHECK(info.kind == kind)
        << "metric '" << name << "' registered with two kinds";
    return info.first_slot;
  }
  int first_slot = -1;
  if (kind == MetricKind::kGauge) {
    if (reg.next_gauge < kMaxGauges) first_slot = reg.next_gauge++;
  } else {
    int needed = SlotsFor(kind);
    if (reg.next_slot + needed <= kMaxSlots) {
      first_slot = reg.next_slot;
      reg.next_slot += needed;
    }
  }
  if (first_slot < 0) return -1;  // table full: handle degrades to a no-op
  reg.index_by_name.emplace(name, static_cast<int>(reg.metrics.size()));
  reg.metrics.push_back({name, kind, first_slot});
  return first_slot;
}

void AddToSlot(int slot, int64_t delta) {
  if (slot < 0) return;
  // order: the lock-free hot path; totals are summed under registry_mu, and
  // per-slot atomicity is all a monotonic counter needs
  LocalShard().slots[slot].fetch_add(delta, std::memory_order_relaxed);
}

void SetGaugeValue(int gauge_index, int64_t value) {
  if (gauge_index < 0) return;
  // order: last-write-wins cell; readers tolerate any interleaving
  Reg().gauges[gauge_index].store(value, std::memory_order_relaxed);
}

void RecordHistogramUs(int first_slot, int64_t us) {
  if (first_slot < 0) return;
  Shard& shard = LocalShard();
  // order: same contract as AddToSlot — independent monotonic slots
  shard.slots[first_slot].fetch_add(1, std::memory_order_relaxed);
  // order: same contract as AddToSlot — independent monotonic slots
  shard.slots[first_slot + 1].fetch_add(us < 0 ? 0 : us,
                                        std::memory_order_relaxed);
  int bucket = us <= 0 ? 0 : std::bit_width(static_cast<uint64_t>(us));
  if (bucket >= kHistogramBuckets) bucket = kHistogramBuckets - 1;
  // order: same contract as AddToSlot — independent monotonic slots
  shard.slots[first_slot + 2 + bucket].fetch_add(1, std::memory_order_relaxed);
}

std::vector<int64_t> ThreadCounterValues() {
  Registry& reg = Reg();
  Shard& shard = LocalShard();
  int watermark;
  {
    MutexLock lock(&reg.registry_mu);
    watermark = reg.next_slot;
  }
  std::vector<int64_t> values(watermark);
  for (int i = 0; i < watermark; ++i) {
    // order: reading this thread's own shard; no cross-thread edge needed
    values[i] = shard.slots[i].load(std::memory_order_relaxed);
  }
  return values;
}

void AppendCounterDeltasSince(
    const std::vector<int64_t>& baseline,
    std::vector<std::pair<std::string, int64_t>>* out) {
  Registry& reg = Reg();
  Shard& shard = LocalShard();
  MutexLock lock(&reg.registry_mu);
  for (const MetricInfo& info : reg.metrics) {
    if (info.kind != MetricKind::kCounter) continue;
    int slot = info.first_slot;
    if (slot < 0) continue;
    // A counter registered after the baseline was taken had no slot value on
    // this thread back then, so its baseline is exactly 0 — skipping it would
    // under-report the first request that ever touches a subsystem.
    int64_t base =
        slot < static_cast<int>(baseline.size()) ? baseline[slot] : 0;
    // order: reading this thread's own shard; no cross-thread edge needed
    int64_t delta = shard.slots[slot].load(std::memory_order_relaxed) - base;
    if (delta != 0) out->emplace_back(info.name, delta);
  }
}

}  // namespace internal

int64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& before) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters_) {
    auto it = before.counters_.find(name);
    delta.counters_[name] =
        value - (it == before.counters_.end() ? 0 : it->second);
  }
  delta.gauges_ = gauges_;
  for (const auto& [name, data] : histograms_) {
    HistogramData d = data;
    auto it = before.histograms_.find(name);
    if (it != before.histograms_.end()) {
      d.count -= it->second.count;
      d.sum_us -= it->second.sum_us;
      for (int b = 0; b < kHistogramBuckets; ++b) {
        d.buckets[b] -= it->second.buckets[b];
      }
    }
    delta.histograms_[name] = d;
  }
  return delta;
}

void MetricsSnapshot::WriteNdjson(std::ostream& out) const {
  for (const auto& [name, value] : counters_) {
    out << "{\"type\":\"counter\",\"name\":\"";
    JsonEscapeTo(out, name);
    out << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, value] : gauges_) {
    out << "{\"type\":\"gauge\",\"name\":\"";
    JsonEscapeTo(out, name);
    out << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, data] : histograms_) {
    out << "{\"type\":\"histogram\",\"name\":\"";
    JsonEscapeTo(out, name);
    out << "\",\"count\":" << data.count << ",\"sum_us\":" << data.sum_us
        << ",\"buckets\":[";
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (b > 0) out << ',';
      out << data.buckets[b];
    }
    out << "]}\n";
  }
}

MetricsSnapshot TakeMetricsSnapshot() {
  Registry& reg = Reg();
  MetricsSnapshot snapshot;
  MutexLock lock(&reg.registry_mu);
  for (const MetricInfo& info : reg.metrics) {
    if (info.first_slot < 0) continue;
    switch (info.kind) {
      case MetricKind::kCounter:
        snapshot.counters_[info.name] = SumSlot(reg, info.first_slot);
        break;
      case MetricKind::kGauge:
        snapshot.gauges_[info.name] =
            // order: last-write-wins cell; see SetGaugeValue
            reg.gauges[info.first_slot].load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram: {
        HistogramData data;
        data.count = SumSlot(reg, info.first_slot);
        data.sum_us = SumSlot(reg, info.first_slot + 1);
        for (int b = 0; b < kHistogramBuckets; ++b) {
          data.buckets[b] = SumSlot(reg, info.first_slot + 2 + b);
        }
        snapshot.histograms_[info.name] = data;
        break;
      }
    }
  }
  return snapshot;
}

}  // namespace obs
}  // namespace rpqi
