#ifndef RPQI_CRPQ_CRPQ_H_
#define RPQI_CRPQ_CRPQ_H_

#include <vector>

#include "automata/nfa.h"
#include "base/status.h"
#include "graphdb/graph.h"

namespace rpqi {

/// Conjunctive regular path queries with inverse (C2RPQs) — the query class
/// the paper's conclusion points to (its technique extends to containment of
/// these, reference [12]). A query is a conjunction of atoms x —E→ y over
/// variables, with a tuple of distinguished (output) variables:
///
///   q(x̄) ← ⋀ᵢ  Eᵢ(vᵢ, wᵢ)
///
/// where each Eᵢ is an RPQI over the shared Σ±. Semantics: an answer is the
/// projection to x̄ of any assignment of all variables to database nodes such
/// that every atom's pair is in ans(Eᵢ, B).
struct CrpqAtom {
  int from_variable = 0;
  Nfa automaton{0};  // RPQI over Σ±
  int to_variable = 0;
};

struct ConjunctiveRpqi {
  int num_variables = 0;
  std::vector<CrpqAtom> atoms;
  /// Output tuple (indices into the variables); may repeat and may be empty
  /// (a boolean query).
  std::vector<int> distinguished;
};

/// Validates variable indices and alphabet agreement; aborts on malformed
/// queries.
void CheckCrpq(const ConjunctiveRpqi& query);

/// Evaluates a C2RPQ over a database: all distinct output tuples, sorted.
/// Implementation: each atom's binary relation is materialized by the RPQI
/// evaluator and indexed; the conjunction is solved by backtracking join with
/// smallest-relation-first atom ordering and forward pruning.
std::vector<std::vector<int>> EvalCrpq(const GraphDb& db,
                                       const ConjunctiveRpqi& query);

/// Boolean satisfaction: does any assignment exist?
bool CrpqSatisfiable(const GraphDb& db, const ConjunctiveRpqi& query);

}  // namespace rpqi

#endif  // RPQI_CRPQ_CRPQ_H_
