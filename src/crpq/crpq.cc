#include "crpq/crpq.h"

#include <algorithm>
#include <map>
#include <set>

#include "graphdb/eval.h"

namespace rpqi {

void CheckCrpq(const ConjunctiveRpqi& query) {
  RPQI_CHECK_GE(query.num_variables, 1);
  RPQI_CHECK(!query.atoms.empty());
  int num_symbols = query.atoms[0].automaton.num_symbols();
  for (const CrpqAtom& atom : query.atoms) {
    RPQI_CHECK(0 <= atom.from_variable &&
               atom.from_variable < query.num_variables);
    RPQI_CHECK(0 <= atom.to_variable &&
               atom.to_variable < query.num_variables);
    RPQI_CHECK_EQ(atom.automaton.num_symbols(), num_symbols)
        << "atoms must share the signed alphabet";
  }
  for (int v : query.distinguished) {
    RPQI_CHECK(0 <= v && v < query.num_variables);
  }
}

namespace {

/// Materialized atom relation with both access paths.
struct AtomRelation {
  int from_variable;
  int to_variable;
  std::vector<std::pair<int, int>> pairs;             // sorted
  std::map<int, std::vector<int>> by_from, by_to;     // indexes
};

/// Backtracking join over the atom relations. Variables are assigned in the
/// order induced by processing atoms smallest-first; each atom either checks
/// (both endpoints bound), extends through an index (one endpoint bound), or
/// enumerates its pairs (neither bound).
class JoinSolver {
 public:
  JoinSolver(const ConjunctiveRpqi& query, std::vector<AtomRelation> relations)
      : query_(query), relations_(std::move(relations)) {
    // Smallest relations first: cheap failure, strong pruning.
    std::sort(relations_.begin(), relations_.end(),
              [](const AtomRelation& a, const AtomRelation& b) {
                return a.pairs.size() < b.pairs.size();
              });
    assignment_.assign(query.num_variables, -1);
  }

  std::vector<std::vector<int>> Solve(bool stop_at_first) {
    stop_at_first_ = stop_at_first;
    Recurse(0);
    std::sort(results_.begin(), results_.end());
    results_.erase(std::unique(results_.begin(), results_.end()),
                   results_.end());
    return std::move(results_);
  }

 private:
  void Emit() {
    std::vector<int> tuple;
    tuple.reserve(query_.distinguished.size());
    for (int v : query_.distinguished) tuple.push_back(assignment_[v]);
    results_.push_back(std::move(tuple));
  }

  bool Done() const { return stop_at_first_ && !results_.empty(); }

  void Recurse(size_t atom_index) {
    if (Done()) return;
    if (atom_index == relations_.size()) {
      // All atoms satisfied; unconstrained variables (possible when the
      // distinguished tuple mentions variables not in any atom) are invalid
      // by construction — CheckCrpq requires atoms to cover usage, and any
      // remaining -1 assignment means the variable is free over all nodes.
      Emit();
      return;
    }
    const AtomRelation& relation = relations_[atom_index];
    int from = assignment_[relation.from_variable];
    int to = assignment_[relation.to_variable];

    auto with_binding = [&](int variable, int value, auto&& continuation) {
      int saved = assignment_[variable];
      assignment_[variable] = value;
      continuation();
      assignment_[variable] = saved;
    };

    if (from >= 0 && to >= 0) {
      if (std::binary_search(relation.pairs.begin(), relation.pairs.end(),
                             std::make_pair(from, to))) {
        Recurse(atom_index + 1);
      }
      return;
    }
    if (from >= 0) {
      auto it = relation.by_from.find(from);
      if (it == relation.by_from.end()) return;
      for (int value : it->second) {
        if (Done()) return;
        with_binding(relation.to_variable, value,
                     [&] { Recurse(atom_index + 1); });
      }
      return;
    }
    if (to >= 0) {
      auto it = relation.by_to.find(to);
      if (it == relation.by_to.end()) return;
      for (int value : it->second) {
        if (Done()) return;
        with_binding(relation.from_variable, value,
                     [&] { Recurse(atom_index + 1); });
      }
      return;
    }
    for (const auto& [x, y] : relation.pairs) {
      if (Done()) return;
      with_binding(relation.from_variable, x, [&] {
        // Self-loop atoms (from == to variable) must bind consistently.
        if (relation.from_variable == relation.to_variable) {
          if (x == y) Recurse(atom_index + 1);
        } else {
          with_binding(relation.to_variable, y,
                       [&] { Recurse(atom_index + 1); });
        }
      });
    }
  }

  const ConjunctiveRpqi& query_;
  std::vector<AtomRelation> relations_;
  std::vector<int> assignment_;
  std::vector<std::vector<int>> results_;
  bool stop_at_first_ = false;
};

std::vector<AtomRelation> MaterializeAtoms(const GraphDb& db,
                                           const ConjunctiveRpqi& query) {
  std::vector<AtomRelation> relations;
  relations.reserve(query.atoms.size());
  for (const CrpqAtom& atom : query.atoms) {
    AtomRelation relation;
    relation.from_variable = atom.from_variable;
    relation.to_variable = atom.to_variable;
    relation.pairs = EvalRpqiAllPairs(db, atom.automaton);
    for (const auto& [x, y] : relation.pairs) {
      relation.by_from[x].push_back(y);
      relation.by_to[y].push_back(x);
    }
    relations.push_back(std::move(relation));
  }
  return relations;
}

/// Variables mentioned by no atom range freely over all nodes; expand them in
/// the output (only distinguished ones matter).
std::vector<std::vector<int>> ExpandFreeVariables(
    const GraphDb& db, const ConjunctiveRpqi& query,
    std::vector<std::vector<int>> tuples) {
  std::vector<bool> covered(query.num_variables, false);
  for (const CrpqAtom& atom : query.atoms) {
    covered[atom.from_variable] = true;
    covered[atom.to_variable] = true;
  }
  std::vector<int> free_positions;
  for (size_t i = 0; i < query.distinguished.size(); ++i) {
    if (!covered[query.distinguished[i]]) {
      free_positions.push_back(static_cast<int>(i));
    }
  }
  if (free_positions.empty()) return tuples;

  // Free distinguished variables take every node value. (Repeated free
  // variables in the tuple must agree; track by variable id.)
  std::vector<std::vector<int>> expanded;
  for (const auto& base : tuples) {
    std::map<int, int> variable_value;  // free variable -> chosen node
    // Enumerate assignments for the distinct free variables.
    std::vector<int> free_variables;
    for (int position : free_positions) {
      int variable = query.distinguished[position];
      if (variable_value.emplace(variable, 0).second) {
        free_variables.push_back(variable);
      }
    }
    std::vector<int> choice(free_variables.size(), 0);
    while (true) {
      std::vector<int> tuple = base;
      for (size_t i = 0; i < free_variables.size(); ++i) {
        variable_value[free_variables[i]] = choice[i];
      }
      for (int position : free_positions) {
        tuple[position] = variable_value[query.distinguished[position]];
      }
      expanded.push_back(std::move(tuple));
      // Odometer increment over the free-variable choices.
      size_t i = 0;
      while (i < choice.size() && ++choice[i] == db.NumNodes()) {
        choice[i] = 0;
        ++i;
      }
      if (i == choice.size()) break;
    }
  }
  std::sort(expanded.begin(), expanded.end());
  expanded.erase(std::unique(expanded.begin(), expanded.end()),
                 expanded.end());
  return expanded;
}

}  // namespace

std::vector<std::vector<int>> EvalCrpq(const GraphDb& db,
                                       const ConjunctiveRpqi& query) {
  CheckCrpq(query);
  JoinSolver solver(query, MaterializeAtoms(db, query));
  return ExpandFreeVariables(db, query,
                             solver.Solve(/*stop_at_first=*/false));
}

bool CrpqSatisfiable(const GraphDb& db, const ConjunctiveRpqi& query) {
  CheckCrpq(query);
  JoinSolver solver(query, MaterializeAtoms(db, query));
  return !solver.Solve(/*stop_at_first=*/true).empty();
}

}  // namespace rpqi
