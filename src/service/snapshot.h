#ifndef RPQI_SERVICE_SNAPSHOT_H_
#define RPQI_SERVICE_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "graphdb/graph.h"
#include "rpq/alphabet.h"

namespace rpqi {
namespace service {

/// An immutable, validated graph database plus the alphabet it was parsed
/// under. Snapshots are shared via shared_ptr<const GraphSnapshot>: requests
/// pin the snapshot they started with, so an `admin reload` swapping the
/// store's current snapshot never mutates or frees state under a running
/// query.
struct GraphSnapshot {
  GraphDb db;
  SignedAlphabet alphabet;
  std::string source_path;
  /// Monotonic store version (1 for the first load). 0 only for snapshots
  /// built outside a store (direct LoadGraphSnapshot callers, e.g. the CLI).
  int64_t version = 0;
  /// Content fingerprint: hash of the source text. Part of every plan-cache
  /// key derived against this snapshot, so plans computed against different
  /// graph contents can never be confused — while a reload of byte-identical
  /// content keeps the cache warm.
  uint64_t fingerprint = 0;
};

/// The shared load-and-validate entry point: reads `path`, parses the graph
/// text format (graphdb/io.h) registering relations into a copy of
/// `base_alphabet`, and runs the structural validator (analysis/validate.h).
/// Both the one-shot CLI commands and the serving layer load graphs through
/// here. `base_alphabet` lets a caller that already registered query/view
/// relations keep its relation ids stable (the CLI `rewrite --db` path); pass
/// a default-constructed alphabet otherwise. Parse errors carry the file
/// name, line number, and byte offset of the offending line.
StatusOr<std::shared_ptr<const GraphSnapshot>> LoadGraphSnapshot(
    const std::string& path, const SignedAlphabet& base_alphabet = {});

/// Retry schedule for SnapshotStore::Reload. Only *transient* failures — the
/// file could not be opened or the read was cut short, i.e. nothing about the
/// content was judged yet — are retried; a parse or validation error is a
/// property of the file and retrying it would just re-fail.
struct ReloadRetryPolicy {
  /// Total load attempts (>= 1); 1 means no retry.
  int attempts = 1;
  /// Sleep before the first retry; doubles per subsequent retry (capped only
  /// by `attempts`). 0 retries immediately.
  int64_t backoff_ms = 0;
  /// Sleep hook; defaults to std::this_thread::sleep_for. Tests substitute a
  /// recording fake so retry schedules are asserted without wall-clock time.
  std::function<void(int64_t)> sleeper;
};

/// Holds the serving layer's current snapshot; Reload() atomically replaces
/// it (last write wins) while readers keep whatever they pinned. Thread-safe.
class SnapshotStore {
 public:
  SnapshotStore() = default;

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Loads `path` and, on success, swaps it in as the current snapshot with
  /// the next version number. On failure the current snapshot is untouched
  /// and no version number is consumed. When `policy.attempts` > 1,
  /// transient failures are retried with exponential backoff; `transient`
  /// (optional) reports whether the *final* failure was transient, so the
  /// caller can surface it as `unavailable` rather than a content error.
  StatusOr<int64_t> Reload(const std::string& path,
                           const ReloadRetryPolicy& policy = {},
                           bool* transient = nullptr);

  /// The current snapshot, or nullptr when nothing was ever loaded.
  std::shared_ptr<const GraphSnapshot> Current() const;

  /// Version of the current snapshot (0 when empty).
  int64_t version() const;

 private:
  mutable Mutex snapshot_mu_;
  std::shared_ptr<const GraphSnapshot> current_
      RPQI_GUARDED_BY(snapshot_mu_);
  /// Counts successful publishes only: a failed reload consumes no version.
  int64_t versions_issued_ RPQI_GUARDED_BY(snapshot_mu_) = 0;
};

}  // namespace service
}  // namespace rpqi

#endif  // RPQI_SERVICE_SNAPSHOT_H_
