#ifndef RPQI_SERVICE_JSON_H_
#define RPQI_SERVICE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace rpqi {
namespace service {

/// Minimal JSON value for the NDJSON serve protocol (src/service/server.h).
/// Self-contained on purpose: the container bakes in no JSON library, and the
/// protocol needs only the scalar types below plus arrays and objects.
///
/// Objects preserve insertion order (a vector of pairs, not a map) so
/// responses render with stable field order; lookups are linear, which is
/// fine at protocol-object sizes.
class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool value) {
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = value;
    return j;
  }
  static Json Int(int64_t value) {
    Json j;
    j.type_ = Type::kInt;
    j.int_ = value;
    return j;
  }
  static Json Double(double value) {
    Json j;
    j.type_ = Type::kDouble;
    j.double_ = value;
    return j;
  }
  static Json Str(std::string value) {
    Json j;
    j.type_ = Type::kString;
    j.string_ = std::move(value);
    return j;
  }
  static Json Arr(JsonArray value) {
    Json j;
    j.type_ = Type::kArray;
    j.array_ = std::move(value);
    return j;
  }
  static Json Obj(JsonObject value) {
    Json j;
    j.type_ = Type::kObject;
    j.object_ = std::move(value);
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }
  const JsonArray& array() const { return array_; }
  const JsonObject& object() const { return object_; }

  /// Object member lookup; nullptr when `this` is not an object or the key is
  /// absent. First occurrence wins on (malformed) duplicate keys.
  const Json* Find(std::string_view key) const {
    if (type_ != Type::kObject) return nullptr;
    for (const auto& [name, value] : object_) {
      if (name == key) return &value;
    }
    return nullptr;
  }

  /// Compact single-line rendering (no spaces), suitable for NDJSON.
  std::string Dump() const;
  void DumpTo(std::string* out) const;

 private:
  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

/// Appends `text` JSON-escaped (quotes, backslash, control characters) to
/// `out`, without surrounding quotes.
void JsonEscapeTo(std::string_view text, std::string* out);

/// Strict single-document parse: exactly one JSON value plus trailing
/// whitespace. Numbers without '.', 'e', 'E' that fit an int64 parse as kInt,
/// everything else as kDouble. Nesting is capped (64) so adversarial input
/// cannot blow the stack.
StatusOr<Json> ParseJson(std::string_view text);

}  // namespace service
}  // namespace rpqi

#endif  // RPQI_SERVICE_JSON_H_
