#include "service/breaker.h"

#include <chrono>

#include "base/mutex.h"
#include "obs/metrics.h"

namespace rpqi {
namespace service {
namespace {

const char* StateName(int state) {
  switch (state) {
    case 0:
      return "closed";
    case 1:
      return "open";
    default:
      return "half_open";
  }
}

}  // namespace

CircuitBreaker::CircuitBreaker(const Options& options) : options_(options) {}

int64_t CircuitBreaker::NowMs() const {
  if (options_.now_ms) return options_.now_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool CircuitBreaker::ShouldReject(const std::string& key) {
  static const obs::Counter rejected("service.breaker.rejected");
  static const obs::Counter probes("service.breaker.probes");
  if (!enabled()) return false;
  MutexLock lock(&breaker_mu_);
  Entry& entry = entries_[key];
  if (entry.state == State::kClosed) return false;
  if (entry.state == State::kOpen) {
    if (NowMs() - entry.opened_at_ms < options_.cooldown_ms) {
      ++entry.rejected;
      rejected.Increment();
      return true;
    }
    // Cooldown over: this request becomes the half-open probe.
    entry.state = State::kHalfOpen;
    entry.probe_in_flight = true;
    probes.Increment();
    return false;
  }
  // Half-open: only the elected probe may pass; everyone else still fails
  // fast until the probe reports back.
  if (entry.probe_in_flight) {
    ++entry.rejected;
    rejected.Increment();
    return true;
  }
  entry.probe_in_flight = true;
  probes.Increment();
  return false;
}

void CircuitBreaker::RecordSuccess(const std::string& key) {
  static const obs::Counter closes("service.breaker.closes");
  if (!enabled()) return;
  MutexLock lock(&breaker_mu_);
  Entry& entry = entries_[key];
  if (entry.state == State::kHalfOpen) closes.Increment();
  entry.state = State::kClosed;
  entry.consecutive_failures = 0;
  entry.probe_in_flight = false;
}

void CircuitBreaker::RecordInternalError(const std::string& key) {
  static const obs::Counter trips("service.breaker.trips");
  if (!enabled()) return;
  MutexLock lock(&breaker_mu_);
  Entry& entry = entries_[key];
  if (entry.state == State::kHalfOpen) {
    // Failed probe: straight back to open for another full cooldown.
    entry.state = State::kOpen;
    entry.opened_at_ms = NowMs();
    entry.probe_in_flight = false;
    ++entry.trips;
    trips.Increment();
    return;
  }
  if (entry.state == State::kOpen) return;  // raced rejections; already open
  if (++entry.consecutive_failures >= options_.failure_threshold) {
    entry.state = State::kOpen;
    entry.opened_at_ms = NowMs();
    ++entry.trips;
    trips.Increment();
  }
}

std::vector<CircuitBreaker::KeyState> CircuitBreaker::Snapshot() const {
  MutexLock lock(&breaker_mu_);
  std::vector<KeyState> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    KeyState state;
    state.key = key;
    state.state = StateName(static_cast<int>(entry.state));
    state.consecutive_failures = entry.consecutive_failures;
    state.trips = entry.trips;
    state.rejected = entry.rejected;
    out.push_back(std::move(state));
  }
  return out;
}

}  // namespace service
}  // namespace rpqi
