#ifndef RPQI_SERVICE_ERRORS_H_
#define RPQI_SERVICE_ERRORS_H_

#include <string>

#include "base/status.h"

namespace rpqi {
namespace service {

/// The protocol's `unavailable` error class: the serving layer is (possibly
/// temporarily) unable to execute an otherwise-valid request — no snapshot
/// loaded, a reload that failed on transient I/O, a tripped circuit breaker.
/// Encoded as a message prefix on kInvalidArgument so the per-op plumbing can
/// stay a plain Status (adding a Status code would ripple into the CLI exit
/// code mapping); StatusErrorCode in server.cc peels it back off.
inline constexpr char kUnavailablePrefix[] = "unavailable: ";

inline Status Unavailable(const std::string& message) {
  return Status::InvalidArgument(kUnavailablePrefix + message);
}

inline bool IsUnavailable(const Status& status) {
  return status.code() == Status::Code::kInvalidArgument &&
         status.message().rfind(kUnavailablePrefix, 0) == 0;
}

/// The message without the prefix (identity for non-unavailable statuses).
inline std::string StripUnavailable(const Status& status) {
  if (IsUnavailable(status)) {
    return status.message().substr(sizeof(kUnavailablePrefix) - 1);
  }
  return status.message();
}

}  // namespace service
}  // namespace rpqi

#endif  // RPQI_SERVICE_ERRORS_H_
