#ifndef RPQI_SERVICE_ADMISSION_H_
#define RPQI_SERVICE_ADMISSION_H_

#include <chrono>
#include <cstdint>

#include "base/budget.h"
#include "base/status.h"

namespace rpqi {
namespace service {

/// Server-wide admission policy: the queue bound plus the default/maximum
/// per-request execution quotas. Zero means "no limit" for every field except
/// queue_depth.
struct AdmissionPolicy {
  /// Requests accepted but not yet executing; one more than this many
  /// outstanding requests is rejected with the `overloaded` error code.
  int queue_depth = 64;
  /// Deadline applied when a request carries no timeout_ms of its own.
  int64_t default_timeout_ms = 0;
  /// Upper bound clamped onto request-supplied timeouts (0 = no cap): a
  /// client cannot opt out of the operator's latency ceiling.
  int64_t max_timeout_ms = 0;
  /// State quota applied when a request carries no max_states of its own.
  int64_t default_max_states = 0;
  /// Upper bound clamped onto request-supplied state quotas (0 = no cap).
  int64_t max_states_cap = 0;
};

/// The execution grant attached to one admitted request. The deadline is
/// anchored at *admission* time, so time spent queued behind other requests
/// counts against the request's budget — under overload, stale requests fail
/// fast at dequeue instead of occupying a worker.
struct Admission {
  std::chrono::steady_clock::time_point admitted_at;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline;
  int64_t max_states = 0;  // 0 = unlimited

  /// Materializes the grant as a Budget for the executing worker. Call at
  /// execution start; an already-expired deadline fails the first Check().
  Budget MakeBudget() const {
    Budget budget;
    if (has_deadline) budget.set_deadline(deadline);
    if (max_states > 0) budget.set_max_states(max_states);
    return budget;
  }

  /// True when the deadline passed while the request sat in the queue.
  bool ExpiredInQueue() const {
    return has_deadline && std::chrono::steady_clock::now() > deadline;
  }
};

/// Derives one request's execution grant from the policy. `timeout_ms` and
/// `max_states` are the request's own asks (0 = absent): defaults fill gaps,
/// caps clamp excess. Effective timeouts are additionally clamped to 2^40 ms
/// (~35 years) so absurd client values cannot overflow deadline arithmetic.
Admission AdmitRequest(const AdmissionPolicy& policy, int64_t timeout_ms,
                       int64_t max_states);

}  // namespace service
}  // namespace rpqi

#endif  // RPQI_SERVICE_ADMISSION_H_
