#ifndef RPQI_SERVICE_SERVER_H_
#define RPQI_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "service/admission.h"
#include "service/breaker.h"
#include "service/json.h"
#include "service/plan_cache.h"
#include "service/snapshot.h"

namespace rpqi {
namespace service {

/// One tenant namespace: a named snapshot with its own view set and admission
/// quota. Requests select a namespace with a `"ns"` field; requests without
/// one run against the server's default snapshot.
struct NamespaceOptions {
  std::string name;
  /// Graph loaded into the namespace's snapshot store at Init().
  std::string db_path;
  /// Optional view-definition file: one `name=expression` per line ('#'
  /// comments and blank lines ignored). A namespaced `rewrite` request that
  /// carries no `views` field uses these.
  std::string views_path;
  /// Requests from this namespace admitted (queued or executing) at once;
  /// one more is rejected with the `overloaded` error code. 0 = unlimited.
  int64_t max_inflight = 0;
};

/// Configuration for one Server instance. Zero-valued quota fields mean
/// "unlimited"; see AdmissionPolicy for the per-request derivation.
struct ServerOptions {
  /// Worker threads executing requests (the request-level concurrency; the
  /// per-request pipeline stays serial to avoid nested parallelism).
  int threads = 1;
  AdmissionPolicy admission;
  /// Plan-cache capacity; <= 0 disables caching.
  int64_t plan_cache_bytes = int64_t{64} << 20;
  int plan_cache_shards = 8;
  /// Directory for the persistent plan cache (--plan-cache-dir): compiled
  /// eval plans are serialized here so a restarted server serves its first
  /// repeated query at warm-cache latency. Empty disables persistence. The
  /// directory must already exist.
  std::string plan_cache_dir;
  /// Graph database loaded at Init(); empty = start without a snapshot (eval
  /// requests fail with `unavailable` until an `admin reload`).
  std::string initial_db_path;
  /// Tenant namespaces loaded at Init(); duplicate names are an Init error.
  /// The plan cache is shared across namespaces — keys embed the snapshot
  /// fingerprint, so tenants serving identical graph content share plans and
  /// different content can never alias.
  std::vector<NamespaceOptions> namespaces;
  /// Circuit breaker over the query ops (eval/rewrite/answer, keyed per op).
  /// 0 disables it. `admin` deliberately bypasses the breaker so an
  /// `admin reload` can repair the condition that tripped it.
  int breaker_failure_threshold = 0;
  int64_t breaker_cooldown_ms = 1000;
  /// Test hook: fake monotonic clock (ms) for the breaker's cooldown timer.
  std::function<int64_t()> breaker_now_ms;
  /// Retry schedule applied to `admin reload` (and Init); transient I/O
  /// failures are retried, content errors are not.
  ReloadRetryPolicy reload_retry;
};

/// Renders a protocol error response line (no trailing newline) outside the
/// request pipeline — for transports that must reject input they cannot even
/// hand to the Server (oversized frames, connection shedding).
std::string ErrorResponseLine(const Json& id, const std::string& code,
                              const std::string& message);

/// The long-lived query-serving engine behind `rpqi serve`: reads NDJSON
/// requests (one JSON object per line) from an input stream, executes them on
/// a bounded worker pool, and writes one NDJSON response line per request.
/// Responses may be emitted out of order; each echoes the request's `id`.
///
/// Protocol (see README, "The serve protocol", for the full reference):
///   {"id":1,"op":"eval","query":"(a|b)* c","timeout_ms":500}
///   {"id":2,"op":"rewrite","query":"a b","views":{"v1":"a","v2":"b"}}
///   {"id":3,"op":"answer","mode":"oda","objects":3,"query":"a",
///    "views":[{"name":"v","expr":"a","assumption":"exact",
///              "extension":[[0,1]]}],"pairs":[[0,1]]}
///   {"id":4,"op":"admin","action":"reload","db":"graph.txt"}
///   {"id":5,"op":"eval","query":"a","ns":"tenant1"}
/// Responses carry "status":"ok" plus op fields, or "status":"error" with a
/// structured code (invalid_request, unavailable, overloaded,
/// resource_exhausted, deadline_exceeded, cancelled) — request failures are
/// responses, never process exits.
///
/// Lifecycle: Serve() returns after the input hits EOF (or an
/// `admin shutdown` request) *and* every accepted request has been answered
/// (graceful drain). A Server may Serve() repeatedly; the plan cache and
/// snapshot store persist across calls — that is the whole point. The TCP
/// transport (src/net/tcp_server.h) bypasses Serve() and drives the server
/// through ParseBatch/ExecuteBatch instead.
class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads the initial snapshot (when the options name one) and every
  /// configured namespace. Split from the constructor so the CLI can map a
  /// bad --db to a clean exit code.
  Status Init();

  /// Blocking serve loop; returns Ok after a clean drain. The streams are
  /// borrowed for the duration of the call.
  Status Serve(std::istream& in, std::ostream& out);

  /// Parses and executes one request line synchronously on the calling
  /// thread and returns the response line (no trailing newline). The
  /// single-request entry point for tests and benchmarks; admission control
  /// (queueing) is bypassed, quotas still apply.
  std::string HandleLine(const std::string& line);

  /// A group of adjacent request lines read together from one transport
  /// buffer, parsed and admitted as a unit. Opaque to transports; the
  /// lifetime of namespace-quota tickets is tied to it.
  struct ParsedBatch;

  /// Parses `lines` into a batch. Call on the transport's read thread:
  /// admission (deadline anchoring, namespace-quota tickets) happens here, at
  /// arrival time, so time queued behind other batches counts against each
  /// request's own deadline. Lines that fail parsing or admission carry a
  /// ready-made error response inside the batch.
  std::shared_ptr<ParsedBatch> ParseBatch(const std::vector<std::string>& lines);

  /// True when the batch contains an `admin shutdown` request — the transport
  /// should stop reading new input but still execute this batch.
  static bool RequestsShutdown(const ParsedBatch& batch);

  /// Executes every request in the batch on the calling thread and returns
  /// one response line per input line, in input order. Requests in one batch
  /// share a BatchContext: the snapshot is pinned once per store and
  /// plan-cache lookups resolve once per distinct key
  /// (`service.batch.snapshot_pins_saved` / `service.batch.plan_lookups_saved`
  /// count the amortization; `service.batch.size` is the batch-size
  /// histogram). Namespace-quota tickets are released on return.
  std::vector<std::string> ExecuteBatch(ParsedBatch* batch);

  /// Rejection responses for a batch the transport could not enqueue (pool
  /// full): one line per batch entry, echoing each request's id. Releases the
  /// batch's quota tickets.
  std::vector<std::string> RejectBatch(ParsedBatch* batch,
                                       const std::string& code,
                                       const std::string& message);

  const PlanCache& plan_cache() const { return plan_cache_; }
  SnapshotStore& snapshot_store() { return snapshot_store_; }
  const ServerOptions& options() const { return options_; }

 private:
  struct Request;
  struct Namespace;
  /// Per-batch amortization state: pinned snapshots + resolved plans.
  struct BatchContext;

  enum class ParseOutcome {
    kOk,
    /// Malformed envelope; `*error_response` is the invalid_request line.
    kInvalid,
    /// Admission rejected it (namespace quota); `*error_response` is the
    /// overloaded line.
    kRejected,
  };

  /// Parses the envelope (id/op/quota/ns fields) and admits the request.
  ParseOutcome ParseRequest(const std::string& line, Request* request,
                            std::string* error_response);
  /// Executes a parsed request and renders the full response line. `ctx` is
  /// non-null when the request runs as part of a batch.
  std::string ExecuteToResponse(const Request& request,
                                BatchContext* ctx = nullptr);

  /// `*cache_source` reports where the plan came from: "miss" (compiled
  /// fresh), "hit" (in-memory cache or batch context), or "disk" (persistent
  /// store; eval only). Echoed as the response's `cache` field.
  StatusOr<JsonObject> OpEval(const Request& request, Budget* budget,
                              const char** cache_source, BatchContext* ctx);
  StatusOr<JsonObject> OpRewrite(const Request& request, Budget* budget,
                                 const char** cache_source, BatchContext* ctx);
  StatusOr<JsonObject> OpAnswer(const Request& request, Budget* budget);
  StatusOr<JsonObject> OpAdmin(const Request& request);

  /// The snapshot store a request routes to: its namespace's, or the default.
  SnapshotStore& StoreFor(const Request& request);

  /// Emits one response line + flush atomically, so concurrent workers can
  /// never interleave partial lines on the shared output stream.
  void WriteLine(std::ostream* out, const std::string& line)
      RPQI_EXCLUDES(writer_mu_);

  ServerOptions options_;
  PlanCache plan_cache_;
  PlanDiskStore plan_disk_;
  SnapshotStore snapshot_store_;
  /// Tenant namespaces by name; populated at Init(), immutable afterwards
  /// (the Namespace objects themselves are internally synchronized).
  std::map<std::string, std::unique_ptr<Namespace>> namespaces_;
  CircuitBreaker breaker_;
  /// Serializes whole-line writes to the output stream borrowed by Serve().
  /// A member (not a Serve-local) so the capability has a name the analysis
  /// and the lock-order lint can track across WriteLine callers.
  Mutex writer_mu_;
  std::atomic<bool> shutdown_requested_{false};
};

}  // namespace service
}  // namespace rpqi

#endif  // RPQI_SERVICE_SERVER_H_
