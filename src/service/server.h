#ifndef RPQI_SERVICE_SERVER_H_
#define RPQI_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "service/admission.h"
#include "service/breaker.h"
#include "service/json.h"
#include "service/plan_cache.h"
#include "service/snapshot.h"

namespace rpqi {
namespace service {

/// Configuration for one Server instance. Zero-valued quota fields mean
/// "unlimited"; see AdmissionPolicy for the per-request derivation.
struct ServerOptions {
  /// Worker threads executing requests (the request-level concurrency; the
  /// per-request pipeline stays serial to avoid nested parallelism).
  int threads = 1;
  AdmissionPolicy admission;
  /// Plan-cache capacity; <= 0 disables caching.
  int64_t plan_cache_bytes = int64_t{64} << 20;
  int plan_cache_shards = 8;
  /// Directory for the persistent plan cache (--plan-cache-dir): compiled
  /// eval plans are serialized here so a restarted server serves its first
  /// repeated query at warm-cache latency. Empty disables persistence. The
  /// directory must already exist.
  std::string plan_cache_dir;
  /// Graph database loaded at Init(); empty = start without a snapshot (eval
  /// requests fail with `unavailable` until an `admin reload`).
  std::string initial_db_path;
  /// Circuit breaker over the query ops (eval/rewrite/answer, keyed per op).
  /// 0 disables it. `admin` deliberately bypasses the breaker so an
  /// `admin reload` can repair the condition that tripped it.
  int breaker_failure_threshold = 0;
  int64_t breaker_cooldown_ms = 1000;
  /// Test hook: fake monotonic clock (ms) for the breaker's cooldown timer.
  std::function<int64_t()> breaker_now_ms;
  /// Retry schedule applied to `admin reload` (and Init); transient I/O
  /// failures are retried, content errors are not.
  ReloadRetryPolicy reload_retry;
};

/// The long-lived query-serving engine behind `rpqi serve`: reads NDJSON
/// requests (one JSON object per line) from an input stream, executes them on
/// a bounded worker pool, and writes one NDJSON response line per request.
/// Responses may be emitted out of order; each echoes the request's `id`.
///
/// Protocol (see README, "The serve protocol", for the full reference):
///   {"id":1,"op":"eval","query":"(a|b)* c","timeout_ms":500}
///   {"id":2,"op":"rewrite","query":"a b","views":{"v1":"a","v2":"b"}}
///   {"id":3,"op":"answer","mode":"oda","objects":3,"query":"a",
///    "views":[{"name":"v","expr":"a","assumption":"exact",
///              "extension":[[0,1]]}],"pairs":[[0,1]]}
///   {"id":4,"op":"admin","action":"reload","db":"graph.txt"}
/// Responses carry "status":"ok" plus op fields, or "status":"error" with a
/// structured code (invalid_request, unavailable, overloaded,
/// resource_exhausted, deadline_exceeded, cancelled) — request failures are
/// responses, never process exits.
///
/// Lifecycle: Serve() returns after the input hits EOF (or an
/// `admin shutdown` request) *and* every accepted request has been answered
/// (graceful drain). A Server may Serve() repeatedly; the plan cache and
/// snapshot store persist across calls — that is the whole point.
class Server {
 public:
  explicit Server(const ServerOptions& options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads the initial snapshot when the options name one. Split from the
  /// constructor so the CLI can map a bad --db to a clean exit code.
  Status Init();

  /// Blocking serve loop; returns Ok after a clean drain. The streams are
  /// borrowed for the duration of the call.
  Status Serve(std::istream& in, std::ostream& out);

  /// Parses and executes one request line synchronously on the calling
  /// thread and returns the response line (no trailing newline). The
  /// single-request entry point for tests and benchmarks; admission control
  /// (queueing) is bypassed, quotas still apply.
  std::string HandleLine(const std::string& line);

  const PlanCache& plan_cache() const { return plan_cache_; }
  SnapshotStore& snapshot_store() { return snapshot_store_; }

 private:
  struct Request;

  /// Parses the envelope (id/op/quota fields). Errors become a ready-made
  /// error response in `*error_response` and return false.
  bool ParseRequest(const std::string& line, Request* request,
                    std::string* error_response);
  /// Executes a parsed request and renders the full response line.
  std::string ExecuteToResponse(const Request& request);

  /// `*cache_source` reports where the plan came from: "miss" (compiled
  /// fresh), "hit" (in-memory cache), or "disk" (persistent store; eval
  /// only). Echoed as the response's `cache` field.
  StatusOr<JsonObject> OpEval(const Request& request, Budget* budget,
                              const char** cache_source);
  StatusOr<JsonObject> OpRewrite(const Request& request, Budget* budget,
                                 const char** cache_source);
  StatusOr<JsonObject> OpAnswer(const Request& request, Budget* budget);
  StatusOr<JsonObject> OpAdmin(const Request& request);

  /// Emits one response line + flush atomically, so concurrent workers can
  /// never interleave partial lines on the shared output stream.
  void WriteLine(std::ostream* out, const std::string& line)
      RPQI_EXCLUDES(writer_mu_);

  ServerOptions options_;
  PlanCache plan_cache_;
  PlanDiskStore plan_disk_;
  SnapshotStore snapshot_store_;
  CircuitBreaker breaker_;
  /// Serializes whole-line writes to the output stream borrowed by Serve().
  /// A member (not a Serve-local) so the capability has a name the analysis
  /// and the lock-order lint can track across WriteLine callers.
  Mutex writer_mu_;
  std::atomic<bool> shutdown_requested_{false};
};

}  // namespace service
}  // namespace rpqi

#endif  // RPQI_SERVICE_SERVER_H_
