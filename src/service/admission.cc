#include "service/admission.h"

#include <algorithm>

namespace rpqi {
namespace service {

Admission AdmitRequest(const AdmissionPolicy& policy, int64_t timeout_ms,
                       int64_t max_states) {
  Admission admission;
  admission.admitted_at = std::chrono::steady_clock::now();

  int64_t effective_timeout =
      timeout_ms > 0 ? timeout_ms : policy.default_timeout_ms;
  if (policy.max_timeout_ms > 0) {
    effective_timeout = effective_timeout > 0
                            ? std::min(effective_timeout, policy.max_timeout_ms)
                            : policy.max_timeout_ms;
  }
  // ~35 years: indistinguishable from "no deadline" for any real request,
  // but small enough that admitted_at + timeout cannot overflow the
  // steady_clock representation (which would wrap the deadline into the past
  // and expire every request instantly).
  effective_timeout = std::min(effective_timeout, int64_t{1} << 40);
  if (effective_timeout > 0) {
    admission.has_deadline = true;
    admission.deadline =
        admission.admitted_at + std::chrono::milliseconds(effective_timeout);
  }

  int64_t effective_states =
      max_states > 0 ? max_states : policy.default_max_states;
  if (policy.max_states_cap > 0) {
    effective_states = effective_states > 0
                           ? std::min(effective_states, policy.max_states_cap)
                           : policy.max_states_cap;
  }
  admission.max_states = std::max<int64_t>(0, effective_states);
  return admission;
}

}  // namespace service
}  // namespace rpqi
