#ifndef RPQI_SERVICE_BREAKER_H_
#define RPQI_SERVICE_BREAKER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace rpqi {
namespace service {

/// A per-operation circuit breaker for the serve path. Each key (op name)
/// carries the classic three-state machine:
///
///   closed    — requests pass; K consecutive *internal* errors trip it.
///   open      — requests fast-fail (`unavailable`) without touching the
///               engine; after `cooldown_ms` the next request half-opens.
///   half-open — exactly one probe request passes; success closes the
///               breaker, failure re-opens it for another cooldown.
///
/// "Internal error" means the engine gave out (resource exhaustion, injected
/// faults) — caller mistakes (invalid_request) and per-request deadlines are
/// the client's problem and never count. Time is injected via `now_ms` so
/// tests drive the open→half-open transition with a fake clock.
///
/// Disabled by default (failure_threshold == 0): every method is a cheap
/// no-op and the serve path behaves exactly as before.
class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive internal errors that trip a key; 0 disables the breaker.
    int failure_threshold = 0;
    /// How long a tripped key fast-fails before allowing a probe.
    int64_t cooldown_ms = 1000;
    /// Monotonic clock in milliseconds; defaults to steady_clock. Tests
    /// substitute a fake to step time deterministically.
    std::function<int64_t()> now_ms;
  };

  struct KeyState {
    std::string key;
    /// "closed", "open", or "half_open".
    std::string state;
    int consecutive_failures = 0;
    int64_t trips = 0;
    int64_t rejected = 0;
  };

  explicit CircuitBreaker(const Options& options);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  bool enabled() const { return options_.failure_threshold > 0; }

  /// Pre-flight gate. True => fast-fail the request as `unavailable` without
  /// executing it. False either means the key is closed, or this request was
  /// elected the half-open probe (exactly one per cooldown expiry).
  bool ShouldReject(const std::string& key);

  /// Report the outcome of a request that was allowed through.
  void RecordSuccess(const std::string& key);
  void RecordInternalError(const std::string& key);

  /// Point-in-time view of every key ever touched (for `admin stats`).
  std::vector<KeyState> Snapshot() const;

 private:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Entry {
    State state = State::kClosed;
    int consecutive_failures = 0;
    int64_t opened_at_ms = 0;
    bool probe_in_flight = false;
    int64_t trips = 0;
    int64_t rejected = 0;
  };

  int64_t NowMs() const;

  /// Immutable after construction (including the injected clock), so reading
  /// it off-lock in enabled()/NowMs() is safe.
  Options options_;
  mutable Mutex breaker_mu_;
  std::map<std::string, Entry> entries_ RPQI_GUARDED_BY(breaker_mu_);
};

}  // namespace service
}  // namespace rpqi

#endif  // RPQI_SERVICE_BREAKER_H_
