#ifndef RPQI_SERVICE_PLAN_CACHE_H_
#define RPQI_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "automata/flat.h"
#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "rewrite/rewriter.h"

namespace rpqi {
namespace service {

/// A cached, immutable compilation artifact: everything expensive the serving
/// layer derives from a (query, view set, snapshot) triple. Entries are
/// shared via shared_ptr<const CachedPlan>, so an eviction never frees a plan
/// a concurrent request is still executing against. Which fields are present
/// depends on the op that built the plan:
///   eval     flat_plan (the compiled FlatNfa — also the serializable
///            payload the persistent store writes) + eval_answers (node-id
///            pairs over the keyed snapshot; sound to memoize because
///            snapshots are immutable);
///   rewrite  rewriting (compiled maximal-rewriting DFA + stats) +
///            view_names + exactness verdict.
struct CachedPlan {
  std::optional<FlatNfa> flat_plan;
  std::optional<std::vector<std::pair<int, int>>> eval_answers;
  std::optional<MaximalRewriting> rewriting;
  std::vector<std::string> view_names;
  /// Theorem 9 verdict: unset when the rewriting is non-exhaustive (the
  /// exactness check is only meaningful against the full maximal rewriting).
  std::optional<bool> exact;

  /// Exact heap footprint (vector capacities, not sizes): this is what the
  /// cache's byte budget bounds, so it must track *resident* bytes —
  /// undercounting here lets --plan-cache-mb quietly overshoot.
  int64_t ApproxBytes() const;
};

/// Sharded LRU plan cache with a global byte budget split evenly across
/// shards. Keys are the full canonical key strings (see server.cc,
/// "plan-cache key derivation") — entries compare by string equality, so hash
/// collisions can never alias two plans. Lookups/inserts take one shard
/// mutex; the shard is chosen by key hash, so concurrent requests for
/// different queries rarely contend.
///
/// Counters (obs registry): service.plan_cache.{hit,miss,insert,evict} plus
/// the service.plan_cache.{bytes,entries} gauges; the same numbers are
/// available per-instance (and race-free for tests) through stats().
class PlanCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t inserts = 0;
    int64_t evictions = 0;
    int64_t entries = 0;
    int64_t bytes = 0;
  };

  /// `capacity_bytes <= 0` disables caching (every Get misses, Put drops).
  explicit PlanCache(int64_t capacity_bytes, int num_shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The plan under `key`, bumping it to most-recently-used; nullptr on miss.
  std::shared_ptr<const CachedPlan> Get(const std::string& key);

  /// Inserts (or replaces) the plan under `key`, then evicts LRU entries
  /// until the shard is back under its byte budget. A plan larger than the
  /// whole shard budget is inserted and evicted immediately — Put never
  /// rejects, so hit/miss accounting stays exact.
  void Put(const std::string& key, std::shared_ptr<const CachedPlan> plan);

  Stats stats() const;
  int64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedPlan> plan;
    int64_t bytes = 0;
  };
  struct Shard {
    mutable Mutex shard_mu;
    // Front = most recently used.
    std::list<Entry> lru RPQI_GUARDED_BY(shard_mu);
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        RPQI_GUARDED_BY(shard_mu);
    int64_t bytes RPQI_GUARDED_BY(shard_mu) = 0;
    int64_t hits RPQI_GUARDED_BY(shard_mu) = 0;
    int64_t misses RPQI_GUARDED_BY(shard_mu) = 0;
    int64_t inserts RPQI_GUARDED_BY(shard_mu) = 0;
    int64_t evictions RPQI_GUARDED_BY(shard_mu) = 0;
  };

  Shard& ShardFor(const std::string& key);
  void PublishGauges() const;

  int64_t capacity_bytes_;
  int64_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Persistent twin of the in-memory cache (`--plan-cache-dir`): serialized
/// RPQIPLAN1 payloads keyed by a hash of the canonical plan-cache key, so a
/// restarted server serves its first repeated query at warm-cache latency.
/// Strictly best-effort — every failure (missing file, torn write, checksum
/// mismatch, tag collision) degrades to a recompile, never an error. The full
/// key string is stored inside the payload (FlatPlan::tag) and compared on
/// load, so filename-hash collisions cannot alias two plans.
///
/// Counters: service.plan_cache.{disk_hit,disk_miss,disk_reject,disk_write,
/// disk_write_failed}. Carries the `plan_cache.disk_io` fault site (fired on
/// both load and save, making disk I/O fail cleanly).
class PlanDiskStore {
 public:
  /// An empty `dir` disables the store (Load always misses, Save drops).
  /// The directory must already exist; it is shared state, so the store
  /// never creates or removes it.
  explicit PlanDiskStore(std::string dir);

  PlanDiskStore(const PlanDiskStore&) = delete;
  PlanDiskStore& operator=(const PlanDiskStore&) = delete;

  bool enabled() const { return !dir_.empty(); }

  /// Where the plan for `key` lives: <dir>/plan-<16-hex-key-hash>.rpqiplan.
  std::string PathForKey(const std::string& key) const;

  /// Loads, checksum-validates, and tag-checks the persisted plan for `key`.
  /// `num_nodes` bounds the answer node-ids (a plan whose answers name nodes
  /// outside the snapshot is rejected, not served). nullptr on any miss or
  /// rejection.
  std::shared_ptr<const CachedPlan> Load(const std::string& key,
                                         int num_nodes);

  /// Persists `plan` (which must carry flat_plan + eval_answers) under
  /// `key`, via write-to-temp + atomic rename. Best-effort: failures only
  /// bump service.plan_cache.disk_write_failed.
  void Save(const std::string& key, const CachedPlan& plan);

 private:
  std::string dir_;
};

}  // namespace service
}  // namespace rpqi

#endif  // RPQI_SERVICE_PLAN_CACHE_H_
