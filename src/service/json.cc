#include "service/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace rpqi {
namespace service {
namespace {

constexpr int kMaxDepth = 64;

void AppendInt(int64_t value, std::string* out) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld",
                static_cast<long long>(value));
  out->append(buffer);
}

void AppendDouble(double value, std::string* out) {
  if (!std::isfinite(value)) {  // NaN/Inf are not JSON; degrade to null
    out->append("null");
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out->append(buffer);
}

/// Recursive-descent parser over a bounded cursor. All failures carry the
/// byte offset so protocol errors point at the offending character.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Json> Parse() {
    RPQI_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json at byte " + std::to_string(pos_) +
                                   ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  StatusOr<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting deeper than 64 levels");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        RPQI_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json::Str(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) return Json::Bool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return Json::Bool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) return Json::Null();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  StatusOr<Json> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonObject members;
    SkipWhitespace();
    if (Consume('}')) return Json::Obj(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      RPQI_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      RPQI_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Json::Obj(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<Json> ParseArray(int depth) {
    ++pos_;  // '['
    JsonArray elements;
    SkipWhitespace();
    if (Consume(']')) return Json::Arr(std::move(elements));
    while (true) {
      RPQI_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      elements.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Json::Arr(std::move(elements));
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          RPQI_ASSIGN_OR_RETURN(int code, ParseHex4());
          // Encode the code point as UTF-8. Surrogate pairs are passed
          // through as two 3-byte sequences (CESU-8): the protocol only
          // round-trips identifiers, it does not normalize text.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  StatusOr<int> ParseHex4() {
    int value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return Error("unterminated \\u escape");
      char c = text_[pos_++];
      value <<= 4;
      if ('0' <= c && c <= '9') {
        value |= c - '0';
      } else if ('a' <= c && c <= 'f') {
        value |= c - 'a' + 10;
      } else if ('A' <= c && c <= 'F') {
        value |= c - 'A' + 10;
      } else {
        return Error("invalid \\u escape digit");
      }
    }
    return value;
  }

  StatusOr<Json> ParseNumber() {
    size_t start = pos_;
    Consume('-');
    while (pos_ < text_.size() && '0' <= text_[pos_] && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() && '0' <= text_[pos_] && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && '0' <= text_[pos_] && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return Error("invalid number");
    errno = 0;
    if (integral) {
      char* end = nullptr;
      long long value = std::strtoll(token.c_str(), &end, 10);
      if (errno != ERANGE && end == token.c_str() + token.size()) {
        return Json::Int(value);
      }
      errno = 0;  // integer overflow: fall through to double
    }
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      return Error("invalid number '" + token + "'");
    }
    return Json::Double(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

void JsonEscapeTo(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
}

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      return;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Type::kInt:
      AppendInt(int_, out);
      return;
    case Type::kDouble:
      AppendDouble(double_, out);
      return;
    case Type::kString:
      out->push_back('"');
      JsonEscapeTo(string_, out);
      out->push_back('"');
      return;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& element : array_) {
        if (!first) out->push_back(',');
        first = false;
        element.DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        JsonEscapeTo(key, out);
        out->push_back('"');
        out->push_back(':');
        value.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

StatusOr<Json> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace service
}  // namespace rpqi
