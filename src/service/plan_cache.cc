#include "service/plan_cache.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/hash.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace rpqi {
namespace service {
namespace {

/// Exact heap footprint of a compiled rewriting DFA: its vectors are sized
/// once at construction (capacity == size), one int cell per (state, symbol)
/// plus the word-rounded accepting bits.
int64_t DfaBytes(const Dfa& dfa) {
  return static_cast<int64_t>(sizeof(Dfa)) +
         static_cast<int64_t>(dfa.NumStates()) * dfa.num_symbols() *
             static_cast<int64_t>(sizeof(int)) +
         static_cast<int64_t>((dfa.NumStates() + 63) / 64) * 8;
}

uint64_t HashKey(const std::string& key) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ key.size();
  for (char c : key) {
    h = HashCombine(h, static_cast<unsigned char>(c));
  }
  return h;
}

/// The single `plan_cache.disk_io` injection site, shared by Load and Save:
/// a fired fault models the disk failing (EIO, ENOSPC, a vanished file), and
/// both directions must degrade to recompute-and-serve.
bool DiskIoFaultFired() { return RPQI_FAULT_FIRED("plan_cache.disk_io"); }

}  // namespace

int64_t CachedPlan::ApproxBytes() const {
  int64_t bytes = 128;  // entry + bookkeeping overhead
  // Heap blocks are counted at *capacity*: the byte budget bounds resident
  // memory, and vector growth slack is resident whether or not it holds
  // elements. (The old per-field estimates ignored the per-state vector heap
  // blocks entirely, so --plan-cache-mb under-bounded actual usage.)
  if (flat_plan.has_value()) bytes += flat_plan->ByteSize();
  if (eval_answers.has_value()) {
    bytes += static_cast<int64_t>(sizeof(*eval_answers)) +
             static_cast<int64_t>(eval_answers->capacity()) *
                 static_cast<int64_t>(sizeof(std::pair<int, int>));
  }
  if (rewriting.has_value()) bytes += DfaBytes(rewriting->dfa) + 128;
  for (const std::string& name : view_names) {
    bytes += 32 + static_cast<int64_t>(name.size());
  }
  return bytes;
}

PlanCache::PlanCache(int64_t capacity_bytes, int num_shards)
    : capacity_bytes_(std::max<int64_t>(0, capacity_bytes)) {
  int shards = std::max(1, num_shards);
  shard_capacity_ = capacity_bytes_ / shards;
  shards_.reserve(shards);
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  return *shards_[HashKey(key) % shards_.size()];
}

std::shared_ptr<const CachedPlan> PlanCache::Get(const std::string& key) {
  static const obs::Counter hits("service.plan_cache.hit");
  static const obs::Counter misses("service.plan_cache.miss");
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.shard_mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    misses.Increment();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  hits.Increment();
  return it->second->plan;
}

void PlanCache::Put(const std::string& key,
                    std::shared_ptr<const CachedPlan> plan) {
  static const obs::Counter inserts("service.plan_cache.insert");
  static const obs::Counter evictions("service.plan_cache.evict");
  static const obs::Counter dropped("service.plan_cache.insert_dropped");
  if (plan == nullptr) return;
  // Models an allocation/admission failure inside the cache: the insert is
  // silently dropped. Correctness must never depend on a Put landing — the
  // next Get simply misses and recomputes.
  if (RPQI_FAULT_FIRED("plan_cache.insert")) {
    dropped.Increment();
    return;
  }
  int64_t bytes = plan->ApproxBytes() + static_cast<int64_t>(key.size());
  Shard& shard = ShardFor(key);
  int64_t evicted = 0;
  {
    MutexLock lock(&shard.shard_mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Replace in place (two racing misses computed the same plan); the
      // refresh also bumps recency. The displaced entry counts as an
      // eviction so `inserts - evictions` always balances the entry count.
      shard.bytes -= it->second->bytes;
      shard.lru.erase(it->second);
      shard.index.erase(it);
      ++shard.evictions;
      ++evicted;
    }
    shard.lru.push_front(Entry{key, std::move(plan), bytes});
    shard.index[key] = shard.lru.begin();
    shard.bytes += bytes;
    ++shard.inserts;
    while (shard.bytes > shard_capacity_ && !shard.lru.empty()) {
      Entry& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      ++shard.evictions;
      ++evicted;
    }
  }
  inserts.Increment();
  evictions.Add(evicted);
  PublishGauges();
}

PlanCache::Stats PlanCache::stats() const {
  Stats stats;
  // Shard locks are taken one at a time (sequentially, never nested), so the
  // totals are a per-shard-consistent sum, not a single atomic snapshot.
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->shard_mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.inserts += shard->inserts;
    stats.evictions += shard->evictions;
    stats.entries += static_cast<int64_t>(shard->lru.size());
    stats.bytes += shard->bytes;
  }
  return stats;
}

void PlanCache::PublishGauges() const {
  static const obs::Gauge bytes_gauge("service.plan_cache.bytes");
  static const obs::Gauge entries_gauge("service.plan_cache.entries");
  Stats now = stats();
  bytes_gauge.Set(now.bytes);
  entries_gauge.Set(now.entries);
}

PlanDiskStore::PlanDiskStore(std::string dir) : dir_(std::move(dir)) {}

std::string PlanDiskStore::PathForKey(const std::string& key) const {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(HashKey(key)));
  return dir_ + "/plan-" + buffer + ".rpqiplan";
}

std::shared_ptr<const CachedPlan> PlanDiskStore::Load(const std::string& key,
                                                      int num_nodes) {
  static const obs::Counter disk_hits("service.plan_cache.disk_hit");
  static const obs::Counter disk_misses("service.plan_cache.disk_miss");
  static const obs::Counter disk_rejects("service.plan_cache.disk_reject");
  if (!enabled()) return nullptr;
  const std::string path = PathForKey(key);
  // A fired fault models read(2) failing mid-load; like every other failure
  // below, the caller recompiles and re-persists.
  if (DiskIoFaultFired()) {
    disk_rejects.Increment();
    return nullptr;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    disk_misses.Increment();
    return nullptr;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    disk_rejects.Increment();
    return nullptr;
  }
  StatusOr<FlatPlan> decoded = DecodeFlatPlan(buffer.str(), path);
  // Tag mismatch = a filename-hash collision with another key, or a file
  // from a different graph snapshot under a reused hash — either way this is
  // not our plan. Treated as a rejection, not a miss, so the counter
  // distinguishes "nothing persisted yet" from "persisted bytes unusable".
  if (!decoded.ok() || decoded->tag != key || !decoded->has_answers) {
    disk_rejects.Increment();
    return nullptr;
  }
  auto plan = std::make_shared<CachedPlan>();
  plan->eval_answers.emplace();
  plan->eval_answers->reserve(decoded->answers.size());
  for (const auto& [x, y] : decoded->answers) {
    // The tag pins the snapshot fingerprint, so persisted node ids should
    // always be in range; the check is the last line of defense against an
    // encoder bug, since NodeName(id) on a stale id would abort the server.
    if (x >= static_cast<uint32_t>(num_nodes) ||
        y >= static_cast<uint32_t>(num_nodes)) {
      disk_rejects.Increment();
      return nullptr;
    }
    plan->eval_answers->push_back({static_cast<int>(x), static_cast<int>(y)});
  }
  plan->flat_plan = std::move(decoded->nfa);
  disk_hits.Increment();
  return plan;
}

void PlanDiskStore::Save(const std::string& key, const CachedPlan& plan) {
  static const obs::Counter disk_writes("service.plan_cache.disk_write");
  static const obs::Counter disk_write_failed(
      "service.plan_cache.disk_write_failed");
  if (!enabled()) return;
  if (!plan.flat_plan.has_value() || !plan.eval_answers.has_value()) return;
  FlatPlan payload;
  payload.nfa = *plan.flat_plan;
  payload.tag = key;
  payload.has_answers = true;
  payload.answers.reserve(plan.eval_answers->size());
  for (const auto& [x, y] : *plan.eval_answers) {
    payload.answers.push_back(
        {static_cast<uint32_t>(x), static_cast<uint32_t>(y)});
  }
  const std::string encoded = EncodeFlatPlan(payload);
  const std::string path = PathForKey(key);
  const std::string tmp = path + ".tmp";
  auto fail = [&] {
    disk_write_failed.Increment();
    // The failed write is already counted; the orphaned temp file is
    // best-effort cleanup.
    (void)std::remove(tmp.c_str());  // lint: allow-discard cleanup only
  };
  if (DiskIoFaultFired()) {
    fail();
    return;
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      fail();
      return;
    }
    out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
    out.flush();
    if (!out.good()) {
      fail();
      return;
    }
  }
  // Atomic replace: a concurrent or post-restart reader observes either the
  // old plan or the complete new one, never a prefix. No fsync — unlike the
  // columnar snapshot writer, losing a plan to power loss is harmless (the
  // checksum rejects any torn survivor and the server recompiles).
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    fail();
    return;
  }
  disk_writes.Increment();
}

}  // namespace service
}  // namespace rpqi
