#include "service/plan_cache.h"

#include <algorithm>

#include "base/hash.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace rpqi {
namespace service {
namespace {

int64_t NfaBytes(const Nfa& nfa) {
  return 64 + static_cast<int64_t>(nfa.NumStates()) * 40 +
         static_cast<int64_t>(nfa.NumTransitions()) * 8;
}

int64_t DfaBytes(const Dfa& dfa) {
  return 64 + static_cast<int64_t>(dfa.NumStates()) *
                  (static_cast<int64_t>(dfa.num_symbols()) * 4 + 1);
}

uint64_t HashKey(const std::string& key) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ key.size();
  for (char c : key) {
    h = HashCombine(h, static_cast<unsigned char>(c));
  }
  return h;
}

}  // namespace

int64_t CachedPlan::ApproxBytes() const {
  int64_t bytes = 128;  // entry + bookkeeping overhead
  if (query_nfa.has_value()) bytes += NfaBytes(*query_nfa);
  if (eval_answers.has_value()) {
    bytes += 24 + static_cast<int64_t>(eval_answers->size()) * 8;
  }
  if (rewriting.has_value()) bytes += DfaBytes(rewriting->dfa) + 128;
  for (const std::string& name : view_names) {
    bytes += 32 + static_cast<int64_t>(name.size());
  }
  return bytes;
}

PlanCache::PlanCache(int64_t capacity_bytes, int num_shards)
    : capacity_bytes_(std::max<int64_t>(0, capacity_bytes)) {
  int shards = std::max(1, num_shards);
  shard_capacity_ = capacity_bytes_ / shards;
  shards_.reserve(shards);
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  return *shards_[HashKey(key) % shards_.size()];
}

std::shared_ptr<const CachedPlan> PlanCache::Get(const std::string& key) {
  static const obs::Counter hits("service.plan_cache.hit");
  static const obs::Counter misses("service.plan_cache.miss");
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.shard_mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    misses.Increment();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  hits.Increment();
  return it->second->plan;
}

void PlanCache::Put(const std::string& key,
                    std::shared_ptr<const CachedPlan> plan) {
  static const obs::Counter inserts("service.plan_cache.insert");
  static const obs::Counter evictions("service.plan_cache.evict");
  static const obs::Counter dropped("service.plan_cache.insert_dropped");
  if (plan == nullptr) return;
  // Models an allocation/admission failure inside the cache: the insert is
  // silently dropped. Correctness must never depend on a Put landing — the
  // next Get simply misses and recomputes.
  if (RPQI_FAULT_FIRED("plan_cache.insert")) {
    dropped.Increment();
    return;
  }
  int64_t bytes = plan->ApproxBytes() + static_cast<int64_t>(key.size());
  Shard& shard = ShardFor(key);
  int64_t evicted = 0;
  {
    MutexLock lock(&shard.shard_mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Replace in place (two racing misses computed the same plan); the
      // refresh also bumps recency. The displaced entry counts as an
      // eviction so `inserts - evictions` always balances the entry count.
      shard.bytes -= it->second->bytes;
      shard.lru.erase(it->second);
      shard.index.erase(it);
      ++shard.evictions;
      ++evicted;
    }
    shard.lru.push_front(Entry{key, std::move(plan), bytes});
    shard.index[key] = shard.lru.begin();
    shard.bytes += bytes;
    ++shard.inserts;
    while (shard.bytes > shard_capacity_ && !shard.lru.empty()) {
      Entry& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      ++shard.evictions;
      ++evicted;
    }
  }
  inserts.Increment();
  evictions.Add(evicted);
  PublishGauges();
}

PlanCache::Stats PlanCache::stats() const {
  Stats stats;
  // Shard locks are taken one at a time (sequentially, never nested), so the
  // totals are a per-shard-consistent sum, not a single atomic snapshot.
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->shard_mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.inserts += shard->inserts;
    stats.evictions += shard->evictions;
    stats.entries += static_cast<int64_t>(shard->lru.size());
    stats.bytes += shard->bytes;
  }
  return stats;
}

void PlanCache::PublishGauges() const {
  static const obs::Gauge bytes_gauge("service.plan_cache.bytes");
  static const obs::Gauge entries_gauge("service.plan_cache.entries");
  Stats now = stats();
  bytes_gauge.Set(now.bytes);
  entries_gauge.Set(now.entries);
}

}  // namespace service
}  // namespace rpqi
