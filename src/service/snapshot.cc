#include "service/snapshot.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "analysis/validate.h"
#include "base/hash.h"
#include "graphdb/io.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rpqi {
namespace service {
namespace {

uint64_t FingerprintText(const std::string& text) {
  // Hash 8 bytes at a time plus a length term; the tail bytes are folded in
  // one by one. Content-addressed, so identical text => identical key space.
  uint64_t h = HashCombine(0x5349474e41505348ULL, text.size());
  size_t i = 0;
  for (; i + 8 <= text.size(); i += 8) {
    uint64_t word = 0;
    for (int b = 0; b < 8; ++b) {
      word |= static_cast<uint64_t>(static_cast<unsigned char>(text[i + b]))
              << (8 * b);
    }
    h = HashCombine(h, word);
  }
  for (; i < text.size(); ++i) {
    h = HashCombine(h, static_cast<unsigned char>(text[i]));
  }
  return h;
}

/// Loads and validates; returns a still-mutable snapshot so SnapshotStore can
/// stamp the version before publishing it as const.
StatusOr<std::shared_ptr<GraphSnapshot>> LoadMutable(
    const std::string& path, const SignedAlphabet& base_alphabet) {
  static const obs::Counter loads("service.snapshot.loads");
  obs::Span span("service.snapshot.load");
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();

  auto snapshot = std::make_shared<GraphSnapshot>();
  snapshot->alphabet = base_alphabet;
  snapshot->source_path = path;
  snapshot->fingerprint = FingerprintText(text);
  RPQI_ASSIGN_OR_RETURN(snapshot->db,
                        LoadGraphText(text, &snapshot->alphabet));
  RPQI_RETURN_IF_ERROR(
      ValidateGraphDb(snapshot->db, snapshot->alphabet.NumRelations()));
  loads.Increment();
  span.Note("nodes", snapshot->db.NumNodes());
  span.Note("edges", snapshot->db.NumEdges());
  return snapshot;
}

}  // namespace

StatusOr<std::shared_ptr<const GraphSnapshot>> LoadGraphSnapshot(
    const std::string& path, const SignedAlphabet& base_alphabet) {
  RPQI_ASSIGN_OR_RETURN(std::shared_ptr<GraphSnapshot> snapshot,
                        LoadMutable(path, base_alphabet));
  return std::shared_ptr<const GraphSnapshot>(std::move(snapshot));
}

StatusOr<int64_t> SnapshotStore::Reload(const std::string& path) {
  static const obs::Counter reloads("service.snapshot.reloads");
  static const obs::Gauge version_gauge("service.snapshot.version");
  // Load outside the lock: a slow parse must not block Current() readers.
  RPQI_ASSIGN_OR_RETURN(std::shared_ptr<GraphSnapshot> loaded,
                        LoadMutable(path, SignedAlphabet()));
  std::lock_guard<std::mutex> lock(mu_);
  int64_t version = ++versions_issued_;
  loaded->version = version;
  current_ = std::move(loaded);
  reloads.Increment();
  version_gauge.Set(version);
  return version;
}

std::shared_ptr<const GraphSnapshot> SnapshotStore::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

int64_t SnapshotStore::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_ == nullptr ? 0 : current_->version;
}

}  // namespace service
}  // namespace rpqi
