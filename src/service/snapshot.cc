#include "service/snapshot.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "analysis/validate.h"
#include "base/mutex.h"
#include "fault/fault.h"
#include "graphdb/columnar.h"
#include "graphdb/io.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rpqi {
namespace service {
namespace {

/// Loads and validates; returns a still-mutable snapshot so SnapshotStore can
/// stamp the version before publishing it as const. `*transient` is set true
/// only for failures that happened before the content was judged (open/read
/// errors) — those are worth retrying; parse and validation errors are not.
/// Columnar files are one exception: every OpenColumnarFile failure
/// (truncation, checksum, structure) stays transient, because `rpqi compact`
/// publishes by atomic rename — a torn binary means a replace is in flight
/// and a retry will see the complete file.
StatusOr<std::shared_ptr<GraphSnapshot>> LoadMutable(
    const std::string& path, const SignedAlphabet& base_alphabet,
    bool* transient) {
  static const obs::Counter loads("service.snapshot.loads");
  static const obs::Counter mmap_opens("service.snapshot.mmap_opens");
  static const obs::Counter mmap_bytes("service.snapshot.mmap_bytes");
  obs::Span span("service.snapshot.load");
  *transient = true;  // until the content is in memory, failures are I/O
  RPQI_FAULT_POINT("snapshot.open",
                   Status::InvalidArgument("cannot open '" + path +
                                           "': injected open failure"));
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open '" + path + "'");
  }
  // Sniff the magic: binary columnar snapshots take the mmap path, anything
  // else stays on the text import path. A short read just means "too small
  // to be columnar".
  char prefix[8] = {};
  in.read(prefix, sizeof(prefix));
  if (IsColumnarSnapshot(std::string_view(prefix, sizeof(prefix)))) {
    in.close();
    // Models mmap(2)/open(2) failing on the binary path (ENOMEM, EACCES, a
    // file swapped out from under us).
    RPQI_FAULT_POINT("snapshot.mmap_open",
                     Status::InvalidArgument("cannot mmap '" + path +
                                             "': injected mmap failure"));
    RPQI_ASSIGN_OR_RETURN(ColumnarParts parts, OpenColumnarFile(path));
    *transient = false;  // a complete, checksummed file is in hand
    auto snapshot = std::make_shared<GraphSnapshot>();
    snapshot->alphabet = base_alphabet;
    snapshot->source_path = path;
    // The header carries the *source text's* fingerprint, so reloading the
    // compacted twin of a text snapshot keeps the plan cache warm.
    snapshot->fingerprint = parts.fingerprint;
    std::vector<int> relation_ids;
    relation_ids.reserve(parts.num_relations);
    for (int r = 0; r < parts.num_relations; ++r) {
      relation_ids.push_back(
          snapshot->alphabet.AddRelation(std::string(parts.RelationName(r))));
    }
    int64_t bytes = parts.file_bytes;
    snapshot->db = MakeColumnarGraphDb(parts, relation_ids,
                                       snapshot->alphabet.NumRelations());
    RPQI_RETURN_IF_ERROR(
        ValidateGraphDb(snapshot->db, snapshot->alphabet.NumRelations()));
    loads.Increment();
    mmap_opens.Increment();
    mmap_bytes.Add(bytes);
    span.Note("nodes", snapshot->db.NumNodes());
    span.Note("edges", snapshot->db.NumEdges());
    return snapshot;
  }
  in.clear();
  in.seekg(0);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  // Models read(2) returning short / EIO after a successful open. The text is
  // deliberately NOT truncated for real: a truncation at a line boundary can
  // still parse and would silently load a partial graph.
  RPQI_FAULT_POINT("snapshot.read",
                   Status::InvalidArgument("error reading '" + path +
                                           "': injected short read"));
  if (in.bad()) {
    return Status::InvalidArgument("error reading '" + path + "'");
  }
  *transient = false;  // content is in hand; anything below is the file's fault

  auto snapshot = std::make_shared<GraphSnapshot>();
  snapshot->alphabet = base_alphabet;
  snapshot->source_path = path;
  snapshot->fingerprint = FingerprintGraphText(text);
  GraphTextLimits limits;
  limits.source_name = path;
  RPQI_ASSIGN_OR_RETURN(snapshot->db,
                        LoadGraphText(text, &snapshot->alphabet, limits));
  // Text-loaded graphs get the in-memory CSR so eval takes the same span
  // iteration path as mmapped snapshots.
  snapshot->db.BuildLabelIndex(snapshot->alphabet.NumRelations());
  RPQI_RETURN_IF_ERROR(
      ValidateGraphDb(snapshot->db, snapshot->alphabet.NumRelations()));
  loads.Increment();
  span.Note("nodes", snapshot->db.NumNodes());
  span.Note("edges", snapshot->db.NumEdges());
  return snapshot;
}

}  // namespace

StatusOr<std::shared_ptr<const GraphSnapshot>> LoadGraphSnapshot(
    const std::string& path, const SignedAlphabet& base_alphabet) {
  bool transient = false;
  RPQI_ASSIGN_OR_RETURN(std::shared_ptr<GraphSnapshot> snapshot,
                        LoadMutable(path, base_alphabet, &transient));
  return std::shared_ptr<const GraphSnapshot>(std::move(snapshot));
}

StatusOr<int64_t> SnapshotStore::Reload(const std::string& path,
                                        const ReloadRetryPolicy& policy,
                                        bool* transient) {
  static const obs::Counter reloads("service.snapshot.reloads");
  static const obs::Counter retries("service.snapshot.retries");
  static const obs::Counter failures("service.snapshot.reload_failures");
  static const obs::Gauge version_gauge("service.snapshot.version");
  bool local_transient = false;
  if (transient == nullptr) transient = &local_transient;
  int attempts = policy.attempts < 1 ? 1 : policy.attempts;
  int64_t backoff_ms = policy.backoff_ms;
  for (int attempt = 1;; ++attempt) {
    *transient = false;
    // Load outside the lock: a slow parse must not block Current() readers.
    StatusOr<std::shared_ptr<GraphSnapshot>> loaded =
        LoadMutable(path, SignedAlphabet(), transient);
    Status failure = Status::Ok();
    if (loaded.ok()) {
      // Models a crash between load and publish (the classic "reload worked
      // but never took effect" incident). The store is untouched and no
      // version number is consumed, so a retry continues the same sequence.
      *transient = true;
      if (!RPQI_FAULT_FIRED("snapshot.reload_swap")) {
        *transient = false;
        MutexLock lock(&snapshot_mu_);
        int64_t version = ++versions_issued_;
        (*loaded)->version = version;
        current_ = std::move(loaded).value();
        reloads.Increment();
        version_gauge.Set(version);
        return version;
      }
      failure = Status::InvalidArgument(
          "injected failure publishing reloaded snapshot '" + path + "'");
    } else {
      failure = loaded.status();
    }
    // Only transient failures are worth another attempt; a parse/validation
    // error is a property of the file and would just re-fail.
    if (!*transient || attempt >= attempts) {
      failures.Increment();
      return failure;
    }
    retries.Increment();
    if (backoff_ms > 0) {
      if (policy.sleeper) {
        policy.sleeper(backoff_ms);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      }
      // Exponential, with a shift-overflow guard for absurd configs.
      if (backoff_ms < (int64_t{1} << 60)) backoff_ms *= 2;
    }
  }
}

std::shared_ptr<const GraphSnapshot> SnapshotStore::Current() const {
  MutexLock lock(&snapshot_mu_);
  return current_;
}

int64_t SnapshotStore::version() const {
  MutexLock lock(&snapshot_mu_);
  return current_ == nullptr ? 0 : current_->version;
}

}  // namespace service
}  // namespace rpqi
