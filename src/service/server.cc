#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "answer/cda.h"
#include "answer/oda.h"
#include "answer/views.h"
#include "base/thread_pool.h"
#include "fault/fault.h"
#include "graphdb/eval.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "regex/parser.h"
#include "regex/printer.h"
#include "rewrite/exactness.h"
#include "rewrite/rewriter.h"
#include "rpq/compile.h"
#include "service/errors.h"

namespace rpqi {
namespace service {
namespace {

// Requests larger than this are rejected before parsing; a line this long is
// a protocol error or an attack, not a query.
constexpr size_t kMaxLineBytes = size_t{1} << 20;

constexpr int64_t kMaxSleepMs = 10000;

const char* StatusErrorCode(const Status& status) {
  switch (status.code()) {
    case Status::Code::kOk:
      return "ok";
    case Status::Code::kInvalidArgument:
      return IsUnavailable(status) ? "unavailable" : "invalid_request";
    case Status::Code::kResourceExhausted:
      return "resource_exhausted";
    case Status::Code::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::Code::kCancelled:
      return "cancelled";
  }
  return "invalid_request";
}

std::string RenderResponse(const Json& id, const char* status_word,
                           JsonObject fields) {
  JsonObject response;
  response.emplace_back("id", id);
  response.emplace_back("status", Json::Str(status_word));
  for (auto& field : fields) response.push_back(std::move(field));
  return Json::Obj(std::move(response)).Dump();
}

std::string ErrorResponse(const Json& id, const std::string& code,
                          const std::string& message) {
  JsonObject fields;
  fields.emplace_back("code", Json::Str(code));
  fields.emplace_back("message", Json::Str(message));
  return RenderResponse(id, "error", std::move(fields));
}

/// Required string member; InvalidArgument naming the key otherwise.
StatusOr<std::string> RequireString(const Json& body, const char* key) {
  const Json* value = body.Find(key);
  if (value == nullptr || !value->is_string()) {
    return Status::InvalidArgument(std::string("request needs a string '") +
                                   key + "' field");
  }
  return value->string_value();
}

/// Optional non-negative integer member with a default; InvalidArgument when
/// present but not an integer >= 0.
StatusOr<int64_t> OptionalInt(const Json& body, const char* key,
                              int64_t default_value) {
  const Json* value = body.Find(key);
  if (value == nullptr) return default_value;
  if (!value->is_int() || value->int_value() < 0) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a non-negative integer");
  }
  return value->int_value();
}

StatusOr<RegexPtr> ParseExpr(const std::string& text) {
  StatusOr<RegexPtr> parsed = ParseRegex(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument("in expression '" + text +
                                   "': " + parsed.status().message());
  }
  return parsed;
}

StatusOr<std::pair<int, int>> ParsePairElement(const Json& element,
                                               const char* what,
                                               int num_objects) {
  if (!element.is_array() || element.array().size() != 2 ||
      !element.array()[0].is_int() || !element.array()[1].is_int()) {
    return Status::InvalidArgument(std::string(what) +
                                   " entries must be [int,int] pairs");
  }
  int64_t a = element.array()[0].int_value();
  int64_t b = element.array()[1].int_value();
  if (a < 0 || b < 0 || a >= num_objects || b >= num_objects) {
    return Status::InvalidArgument(
        std::string(what) + " pair [" + std::to_string(a) + "," +
        std::to_string(b) + "] names an object outside [0, " +
        std::to_string(num_objects) + ")");
  }
  return std::pair<int, int>{static_cast<int>(a), static_cast<int>(b)};
}

/// Named view expressions of a rewrite request, canonically ordered.
struct NamedViews {
  std::vector<std::string> names;
  std::vector<RegexPtr> exprs;
};

/// Accepts {"v1":"expr",...} or [["v1","expr"],...]; sorts by name so the
/// plan-cache key and the compiled automata are order-independent.
StatusOr<NamedViews> ParseNamedViews(const Json& body) {
  const Json* views = body.Find("views");
  if (views == nullptr) {
    return Status::InvalidArgument("request needs a 'views' field");
  }
  std::vector<std::pair<std::string, std::string>> raw;
  if (views->is_object()) {
    for (const auto& [name, expr] : views->object()) {
      if (!expr.is_string()) {
        return Status::InvalidArgument("view '" + name +
                                       "': expression must be a string");
      }
      raw.emplace_back(name, expr.string_value());
    }
  } else if (views->is_array()) {
    for (const Json& element : views->array()) {
      if (!element.is_array() || element.array().size() != 2 ||
          !element.array()[0].is_string() || !element.array()[1].is_string()) {
        return Status::InvalidArgument(
            "'views' array entries must be [name, expression] string pairs");
      }
      raw.emplace_back(element.array()[0].string_value(),
                       element.array()[1].string_value());
    }
  } else {
    return Status::InvalidArgument(
        "'views' must be an object or an array of [name, expression] pairs");
  }
  if (raw.empty()) {
    return Status::InvalidArgument("'views' must name at least one view");
  }
  std::sort(raw.begin(), raw.end());
  NamedViews result;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (i > 0 && raw[i].first == raw[i - 1].first) {
      return Status::InvalidArgument("duplicate view name '" + raw[i].first +
                                     "'");
    }
    RPQI_ASSIGN_OR_RETURN(RegexPtr expr, ParseExpr(raw[i].second));
    result.names.push_back(raw[i].first);
    result.exprs.push_back(std::move(expr));
  }
  return result;
}

JsonObject PlanCacheStatsJson(const PlanCache& cache) {
  PlanCache::Stats stats = cache.stats();
  JsonObject object;
  object.emplace_back("hits", Json::Int(stats.hits));
  object.emplace_back("misses", Json::Int(stats.misses));
  object.emplace_back("inserts", Json::Int(stats.inserts));
  object.emplace_back("evictions", Json::Int(stats.evictions));
  object.emplace_back("entries", Json::Int(stats.entries));
  object.emplace_back("bytes", Json::Int(stats.bytes));
  object.emplace_back("capacity_bytes", Json::Int(cache.capacity_bytes()));
  return object;
}

std::string FingerprintHex(uint64_t fingerprint) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

/// Parses a `name=expression` views file (one view per line; '#' comments and
/// blank lines ignored) into a canonically ordered view set, mirroring the
/// validation ParseNamedViews applies to request-supplied views.
Status LoadViewsFile(const std::string& path, std::vector<std::string>* names,
                     std::vector<RegexPtr>* exprs) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open views file '" + path + "'");
  }
  std::vector<std::pair<std::string, std::string>> raw;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    size_t eq = line.find('=', start);
    if (eq == std::string::npos || eq == start) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_number) +
                                     ": expected NAME=EXPRESSION");
    }
    std::string name = line.substr(start, eq - start);
    name.erase(name.find_last_not_of(" \t") + 1);
    raw.emplace_back(std::move(name), line.substr(eq + 1));
  }
  if (raw.empty()) {
    return Status::InvalidArgument("views file '" + path +
                                   "' defines no views");
  }
  std::sort(raw.begin(), raw.end());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (i > 0 && raw[i].first == raw[i - 1].first) {
      return Status::InvalidArgument("views file '" + path +
                                     "': duplicate view name '" +
                                     raw[i].first + "'");
    }
    RPQI_ASSIGN_OR_RETURN(RegexPtr expr, ParseExpr(raw[i].second));
    names->push_back(raw[i].first);
    exprs->push_back(std::move(expr));
  }
  return Status::Ok();
}

}  // namespace

std::string ErrorResponseLine(const Json& id, const std::string& code,
                              const std::string& message) {
  return ErrorResponse(id, code, message);
}

/// One tenant namespace: its own snapshot store, the pre-parsed view set, and
/// a counting admission quota. Immutable after Init() except `store` (admin
/// reload swaps snapshots) and `inflight`; both are internally synchronized.
struct Server::Namespace {
  std::string name;
  NamespaceOptions options;
  SnapshotStore store;
  /// Views from options.views_path, sorted by name (parsed once at Init).
  std::vector<std::string> view_names;
  std::vector<RegexPtr> view_exprs;
  /// Requests admitted (queued or executing) right now.
  std::atomic<int64_t> inflight{0};
};

/// One admitted request: the parsed envelope plus its execution grant.
struct Server::Request {
  /// Holds one unit of a namespace's max_inflight quota from admission until
  /// the request object dies (its response has been rendered).
  struct NsTicket {
    Namespace* held = nullptr;
    NsTicket() = default;
    NsTicket(NsTicket&& other) noexcept : held(other.held) {
      other.held = nullptr;
    }
    NsTicket& operator=(NsTicket&& other) noexcept {
      if (this != &other) {
        Release();
        held = other.held;
        other.held = nullptr;
      }
      return *this;
    }
    NsTicket(const NsTicket&) = delete;
    NsTicket& operator=(const NsTicket&) = delete;
    ~NsTicket() { Release(); }
    void Release() {
      if (held != nullptr) {
        // order: counting ticket only; no data is published through it
        held->inflight.fetch_sub(1, std::memory_order_relaxed);
        held = nullptr;
      }
    }
  };

  Json id;
  std::string op;
  Json body;
  Admission admission;
  bool is_shutdown = false;
  /// Resolved tenant (nullptr = the server's default snapshot).
  Namespace* ns = nullptr;
  NsTicket ticket;
};

/// Amortization state shared by the requests of one batch: each snapshot
/// store is pinned at most once and each plan-cache key resolves at most
/// once, however many requests in the batch touch them.
struct Server::BatchContext {
  std::map<const SnapshotStore*, std::shared_ptr<const GraphSnapshot>>
      snapshots;
  std::map<std::string, std::shared_ptr<const CachedPlan>> plans;
};

struct Server::ParsedBatch {
  struct Entry {
    Request request;
    /// Ready-made response when parsing or admission failed (`ready` false).
    std::string error_response;
    bool ready = false;
  };
  std::vector<Entry> entries;
  bool wants_shutdown = false;
};

namespace {

CircuitBreaker::Options BreakerOptions(const ServerOptions& options) {
  CircuitBreaker::Options breaker;
  breaker.failure_threshold = options.breaker_failure_threshold;
  breaker.cooldown_ms = options.breaker_cooldown_ms;
  breaker.now_ms = options.breaker_now_ms;
  return breaker;
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      plan_cache_(options.plan_cache_bytes, options.plan_cache_shards),
      plan_disk_(options.plan_cache_dir),
      breaker_(BreakerOptions(options)) {}

Server::~Server() = default;

Status Server::Init() {
  if (!options_.initial_db_path.empty()) {
    RPQI_RETURN_IF_ERROR(
        snapshot_store_.Reload(options_.initial_db_path, options_.reload_retry)
            .status());
  }
  for (const NamespaceOptions& ns_options : options_.namespaces) {
    if (ns_options.name.empty()) {
      return Status::InvalidArgument("namespace name must be non-empty");
    }
    if (namespaces_.count(ns_options.name) != 0) {
      return Status::InvalidArgument("duplicate namespace '" +
                                     ns_options.name + "'");
    }
    auto ns = std::make_unique<Namespace>();
    ns->name = ns_options.name;
    ns->options = ns_options;
    if (ns_options.db_path.empty()) {
      return Status::InvalidArgument("namespace '" + ns_options.name +
                                     "' needs a graph path");
    }
    Status loaded =
        ns->store.Reload(ns_options.db_path, options_.reload_retry).status();
    if (!loaded.ok()) {
      return Status::InvalidArgument("namespace '" + ns_options.name +
                                     "': " + loaded.message());
    }
    if (!ns_options.views_path.empty()) {
      Status views = LoadViewsFile(ns_options.views_path, &ns->view_names,
                                   &ns->view_exprs);
      if (!views.ok()) {
        return Status::InvalidArgument("namespace '" + ns_options.name +
                                       "': " + views.message());
      }
    }
    namespaces_.emplace(ns->name, std::move(ns));
  }
  return Status::Ok();
}

SnapshotStore& Server::StoreFor(const Request& request) {
  return request.ns != nullptr ? request.ns->store : snapshot_store_;
}

Server::ParseOutcome Server::ParseRequest(const std::string& line,
                                          Request* request,
                                          std::string* error_response) {
  if (line.size() > kMaxLineBytes) {
    *error_response = ErrorResponse(
        Json::Null(), "invalid_request",
        "request line exceeds " + std::to_string(kMaxLineBytes) + " bytes");
    return ParseOutcome::kInvalid;
  }
  std::string_view payload = line;
  // Models a request cut mid-line by the transport: the parser must fail it
  // as a clean invalid_request, never crash or stall.
  if (RPQI_FAULT_FIRED("service.request_truncate")) {
    payload = payload.substr(0, payload.size() / 2);
  }
  StatusOr<Json> parsed = ParseJson(payload);
  if (!parsed.ok()) {
    *error_response = ErrorResponse(Json::Null(), "invalid_request",
                                    parsed.status().message());
    return ParseOutcome::kInvalid;
  }
  if (!parsed->is_object()) {
    *error_response = ErrorResponse(Json::Null(), "invalid_request",
                                    "request must be a JSON object");
    return ParseOutcome::kInvalid;
  }
  request->body = std::move(parsed).value();
  const Json* id = request->body.Find("id");
  request->id = id == nullptr ? Json::Null() : *id;
  const Json* op = request->body.Find("op");
  if (op == nullptr || !op->is_string()) {
    *error_response = ErrorResponse(request->id, "invalid_request",
                                    "request needs a string 'op' field");
    return ParseOutcome::kInvalid;
  }
  request->op = op->string_value();

  StatusOr<int64_t> timeout_ms = OptionalInt(request->body, "timeout_ms", 0);
  StatusOr<int64_t> max_states = OptionalInt(request->body, "max_states", 0);
  if (!timeout_ms.ok() || !max_states.ok()) {
    const Status& bad =
        timeout_ms.ok() ? max_states.status() : timeout_ms.status();
    *error_response =
        ErrorResponse(request->id, "invalid_request", bad.message());
    return ParseOutcome::kInvalid;
  }
  request->admission =
      AdmitRequest(options_.admission, *timeout_ms, *max_states);

  if (request->op == "admin") {
    const Json* action = request->body.Find("action");
    request->is_shutdown = action != nullptr && action->is_string() &&
                           action->string_value() == "shutdown";
  }

  const Json* ns_field = request->body.Find("ns");
  if (ns_field != nullptr) {
    if (!ns_field->is_string()) {
      *error_response = ErrorResponse(request->id, "invalid_request",
                                      "'ns' must be a string namespace name");
      return ParseOutcome::kInvalid;
    }
    auto it = namespaces_.find(ns_field->string_value());
    if (it == namespaces_.end()) {
      *error_response = ErrorResponse(
          request->id, "invalid_request",
          "unknown namespace '" + ns_field->string_value() + "'");
      return ParseOutcome::kInvalid;
    }
    request->ns = it->second.get();
  }
  // Namespace admission quota, taken at arrival so a flooding tenant is shed
  // here instead of occupying the shared queue. The ticket rides on the
  // request object and frees the slot when the response has been rendered.
  if (request->ns != nullptr && request->ns->options.max_inflight > 0) {
    static const obs::Counter ns_rejected("service.rejected.ns_quota");
    // order: counting ticket only; no data is published through it
    int64_t before =
        request->ns->inflight.fetch_add(1, std::memory_order_relaxed);
    request->ticket.held = request->ns;
    if (before >= request->ns->options.max_inflight) {
      ns_rejected.Increment();
      *error_response = ErrorResponse(
          request->id, "overloaded",
          "namespace '" + request->ns->name + "' is at max_inflight " +
              std::to_string(request->ns->options.max_inflight));
      return ParseOutcome::kRejected;
    }
  }
  return ParseOutcome::kOk;
}

std::string Server::ExecuteToResponse(const Request& request,
                                      BatchContext* ctx) {
  static const obs::Counter requests("service.requests");
  static const obs::Counter expired("service.rejected.expired_in_queue");
  static const obs::Histogram request_us("service.request_us");
  obs::Span span("service.request");
  std::vector<int64_t> baseline = obs::internal::ThreadCounterValues();
  auto start = std::chrono::steady_clock::now();
  requests.Increment();

  StatusOr<JsonObject> fields = Status::InvalidArgument("unreachable");
  const char* cache_source = "miss";
  bool cacheable_op = false;
  if (request.admission.ExpiredInQueue()) {
    expired.Increment();
    fields = Status::DeadlineExceeded(
        "deadline expired while the request was queued");
  } else {
    // The breaker guards the query ops only: `admin` must stay reachable so
    // an `admin reload` can repair whatever tripped it. A fast-failed
    // request never reaches the engine, so it reports no outcome either.
    bool breaker_guarded = request.op == "eval" || request.op == "rewrite" ||
                           request.op == "answer";
    if (breaker_guarded && breaker_.ShouldReject(request.op)) {
      breaker_guarded = false;
      fields = Unavailable("circuit breaker open for op '" + request.op +
                           "'; retrying after cooldown");
    } else {
      Budget budget = request.admission.MakeBudget();
      if (request.op == "eval") {
        cacheable_op = true;
        fields = OpEval(request, &budget, &cache_source, ctx);
      } else if (request.op == "rewrite") {
        cacheable_op = true;
        fields = OpRewrite(request, &budget, &cache_source, ctx);
      } else if (request.op == "answer") {
        fields = OpAnswer(request, &budget);
      } else if (request.op == "admin") {
        fields = OpAdmin(request);
      } else {
        fields = Status::InvalidArgument("unknown op '" + request.op + "'");
      }
    }
    if (breaker_guarded) {
      // Only internal exhaustion counts against the breaker: the engine gave
      // out. Any other outcome — success, a caller mistake, a caller-chosen
      // deadline — proves the engine is reachable and resets the streak.
      if (!fields.ok() &&
          fields.status().code() == Status::Code::kResourceExhausted) {
        breaker_.RecordInternalError(request.op);
      } else {
        breaker_.RecordSuccess(request.op);
      }
    }
  }

  int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  request_us.RecordUs(us);
  span.Note("ok", fields.ok() ? 1 : 0);

  JsonObject tail;
  if (cacheable_op && fields.ok()) {
    // "hit" = in-memory cache, "disk" = persistent store (eval only),
    // "miss" = compiled fresh this request.
    tail.emplace_back("cache", Json::Str(cache_source));
  }
  tail.emplace_back("us", Json::Int(us));
  // Same-thread counter deltas: the request ran entirely on this worker, so
  // the deltas are exactly this request's footprint.
  std::vector<std::pair<std::string, int64_t>> deltas;
  obs::internal::AppendCounterDeltasSince(baseline, &deltas);
  JsonObject counters;
  for (const auto& [name, delta] : deltas) {
    counters.emplace_back(name, Json::Int(delta));
  }
  tail.emplace_back("counters", Json::Obj(std::move(counters)));

  if (!fields.ok()) {
    JsonObject error_fields;
    error_fields.emplace_back("code",
                              Json::Str(StatusErrorCode(fields.status())));
    error_fields.emplace_back(
        "message", Json::Str(StripUnavailable(fields.status())));
    for (auto& field : tail) error_fields.push_back(std::move(field));
    return RenderResponse(request.id, "error", std::move(error_fields));
  }
  JsonObject ok_fields = std::move(fields).value();
  for (auto& field : tail) ok_fields.push_back(std::move(field));
  return RenderResponse(request.id, "ok", std::move(ok_fields));
}

StatusOr<JsonObject> Server::OpEval(const Request& request, Budget* budget,
                                    const char** cache_source,
                                    BatchContext* ctx) {
  static const obs::Counter pins_saved("service.batch.snapshot_pins_saved");
  static const obs::Counter lookups_saved("service.batch.plan_lookups_saved");
  SnapshotStore& store = StoreFor(request);
  // Within a batch the snapshot is pinned once per store; every further
  // request reuses the pin (and is thereby guaranteed to see the same graph
  // version as its batch peers, even across a concurrent reload).
  std::shared_ptr<const GraphSnapshot> snapshot;
  if (ctx != nullptr) {
    auto pinned = ctx->snapshots.find(&store);
    if (pinned != ctx->snapshots.end()) {
      snapshot = pinned->second;
      pins_saved.Increment();
    }
  }
  if (snapshot == nullptr) {
    snapshot = store.Current();
    if (snapshot != nullptr && ctx != nullptr) {
      ctx->snapshots.emplace(&store, snapshot);
    }
  }
  if (snapshot == nullptr) {
    return Unavailable(
        "no graph snapshot loaded; start with --db or send "
        "{\"op\":\"admin\",\"action\":\"reload\",\"db\":...}");
  }
  RPQI_ASSIGN_OR_RETURN(std::string query_text,
                        RequireString(request.body, "query"));
  RPQI_ASSIGN_OR_RETURN(RegexPtr expr, ParseExpr(query_text));
  // Key: op, snapshot content fingerprint, canonicalized query AST. Textual
  // variants of one AST ("a|b" vs "(a|b)") share an entry; different
  // snapshot contents can never alias.
  std::string key = "eval|" + FingerprintHex(snapshot->fingerprint) + "|" +
                    RegexToString(expr);

  std::shared_ptr<const CachedPlan> plan;
  if (ctx != nullptr) {
    auto resolved = ctx->plans.find(key);
    if (resolved != ctx->plans.end() &&
        resolved->second->eval_answers.has_value()) {
      // Batch-context hit: an earlier request in this batch already resolved
      // the key, so the sharded cache lookup is skipped entirely.
      plan = resolved->second;
      *cache_source = "hit";
      lookups_saved.Increment();
    }
  }
  if (plan == nullptr) {
    plan = plan_cache_.Get(key);
    if (plan != nullptr && plan->eval_answers.has_value()) {
      *cache_source = "hit";
    } else if ((plan = plan_disk_.Load(key, snapshot->db.NumNodes())) !=
               nullptr) {
      // Persistent store hit (typically the first repeated query after a
      // restart): promote into the in-memory cache so the next request is a
      // plain "hit".
      *cache_source = "disk";
      plan_cache_.Put(key, plan);
    } else {
      SignedAlphabet alphabet = snapshot->alphabet;
      RegisterRelations({expr}, &alphabet);
      RPQI_ASSIGN_OR_RETURN(Nfa query, CompileRegex(expr, alphabet));
      FlatNfa compiled = CompileEvalPlan(query);
      RPQI_ASSIGN_OR_RETURN(auto pairs, EvalRpqiAllPairsWithBudget(
                                            snapshot->db, compiled, budget));
      auto fresh = std::make_shared<CachedPlan>();
      fresh->flat_plan = std::move(compiled);
      fresh->eval_answers = std::move(pairs);
      plan_cache_.Put(key, fresh);
      plan_disk_.Save(key, *fresh);
      plan = std::move(fresh);
    }
    if (ctx != nullptr) ctx->plans[key] = plan;
  }

  JsonArray answers;
  answers.reserve(plan->eval_answers->size());
  for (const auto& [x, y] : *plan->eval_answers) {
    answers.push_back(
        Json::Arr({Json::Str(std::string(snapshot->db.NodeName(x))),
                   Json::Str(std::string(snapshot->db.NodeName(y)))}));
  }
  JsonObject fields;
  fields.emplace_back("snapshot_version", Json::Int(snapshot->version));
  fields.emplace_back("answers", Json::Arr(std::move(answers)));
  return fields;
}

StatusOr<JsonObject> Server::OpRewrite(const Request& request, Budget* budget,
                                       const char** cache_source,
                                       BatchContext* ctx) {
  static const obs::Counter lookups_saved("service.batch.plan_lookups_saved");
  RPQI_ASSIGN_OR_RETURN(std::string query_text,
                        RequireString(request.body, "query"));
  RPQI_ASSIGN_OR_RETURN(RegexPtr query_expr, ParseExpr(query_text));
  NamedViews views;
  if (request.body.Find("views") == nullptr && request.ns != nullptr &&
      !request.ns->view_names.empty()) {
    // Namespaced request without explicit views: the tenant's configured view
    // set applies (already sorted and validated at Init).
    views.names = request.ns->view_names;
    views.exprs = request.ns->view_exprs;
  } else {
    RPQI_ASSIGN_OR_RETURN(views, ParseNamedViews(request.body));
  }

  std::string key = "rewrite|" + RegexToString(query_expr);
  for (size_t i = 0; i < views.names.size(); ++i) {
    key += "|" + views.names[i] + "=" + RegexToString(views.exprs[i]);
  }

  std::shared_ptr<const CachedPlan> plan;
  if (ctx != nullptr) {
    auto resolved = ctx->plans.find(key);
    if (resolved != ctx->plans.end() &&
        resolved->second->rewriting.has_value()) {
      // Batch-context hit: an earlier request in this batch already resolved
      // the key, so the sharded cache lookup is skipped entirely.
      plan = resolved->second;
      *cache_source = "hit";
      lookups_saved.Increment();
    }
  }
  if (plan == nullptr) {
    plan = plan_cache_.Get(key);
    if (plan != nullptr && plan->rewriting.has_value()) {
      *cache_source = "hit";
      if (ctx != nullptr) ctx->plans[key] = plan;
    } else {
      plan = nullptr;
    }
  }
  if (plan == nullptr) {
    SignedAlphabet alphabet;
    RegisterRelations({query_expr}, &alphabet);
    RegisterRelations(views.exprs, &alphabet);
    RPQI_ASSIGN_OR_RETURN(Nfa query, CompileRegex(query_expr, alphabet));
    std::vector<Nfa> view_nfas;
    for (const RegexPtr& expr : views.exprs) {
      RPQI_ASSIGN_OR_RETURN(Nfa view, CompileRegex(expr, alphabet));
      view_nfas.push_back(std::move(view));
    }
    RewritingOptions options;
    options.budget = budget;
    if (request.admission.max_states > 0) {
      options.max_subset_states = request.admission.max_states;
      options.max_product_states = request.admission.max_states;
    }
    RPQI_ASSIGN_OR_RETURN(MaximalRewriting rewriting,
                          ComputeMaximalRewriting(query, view_nfas, options));
    auto fresh = std::make_shared<CachedPlan>();
    fresh->view_names = views.names;
    if (rewriting.exhaustive && !rewriting.empty) {
      fresh->exact = IsExactRewriting(query, view_nfas, rewriting.dfa);
    }
    bool exhaustive = rewriting.exhaustive;
    fresh->rewriting = std::move(rewriting);
    // Only exhaustive results are cached: a degraded partial rewriting
    // reflects this request's budget, not the query, and must not be served
    // to better-funded callers (the same rule applies to the batch context —
    // batch peers may carry different budgets).
    if (exhaustive) {
      plan_cache_.Put(key, fresh);
      if (ctx != nullptr) ctx->plans[key] = fresh;
    }
    plan = std::move(fresh);
  }

  const MaximalRewriting& rewriting = *plan->rewriting;
  JsonObject fields;
  fields.emplace_back("empty", Json::Bool(rewriting.empty));
  fields.emplace_back(
      "rewriting",
      Json::Str(rewriting.empty
                    ? "%empty"
                    : RewritingToString(rewriting.dfa, plan->view_names)));
  fields.emplace_back("exhaustive", Json::Bool(rewriting.exhaustive));
  fields.emplace_back("exact", plan->exact.has_value()
                                   ? Json::Bool(*plan->exact)
                                   : Json::Null());
  if (!rewriting.exhaustive) {
    fields.emplace_back("partial_word_length",
                        Json::Int(rewriting.partial_word_length));
    fields.emplace_back("degradation_cause",
                        Json::Str(rewriting.degradation_cause.ToString()));
  }
  JsonObject stats;
  stats.emplace_back("a1_states", Json::Int(rewriting.stats.a1_states));
  stats.emplace_back("a3_states", Json::Int(rewriting.stats.a3_states));
  stats.emplace_back("a2_states_discovered",
                     Json::Int(rewriting.stats.a2_states_discovered));
  stats.emplace_back("product_states",
                     Json::Int(rewriting.stats.product_states));
  stats.emplace_back("a4_states", Json::Int(rewriting.stats.a4_states));
  stats.emplace_back("rewriting_states",
                     Json::Int(rewriting.stats.rewriting_states));
  fields.emplace_back("stats", Json::Obj(std::move(stats)));
  return fields;
}

StatusOr<JsonObject> Server::OpAnswer(const Request& request, Budget* budget) {
  RPQI_ASSIGN_OR_RETURN(std::string mode, RequireString(request.body, "mode"));
  if (mode != "cda" && mode != "oda") {
    return Status::InvalidArgument("'mode' must be 'cda' or 'oda', got '" +
                                   mode + "'");
  }
  RPQI_ASSIGN_OR_RETURN(int64_t objects64,
                        OptionalInt(request.body, "objects", 0));
  if (objects64 < 1 || objects64 > (1 << 20)) {
    return Status::InvalidArgument(
        "'objects' must be an integer in [1, 2^20]");
  }
  int num_objects = static_cast<int>(objects64);
  RPQI_ASSIGN_OR_RETURN(std::string query_text,
                        RequireString(request.body, "query"));
  RPQI_ASSIGN_OR_RETURN(RegexPtr query_expr, ParseExpr(query_text));

  const Json* views = request.body.Find("views");
  if (views == nullptr || !views->is_array() || views->array().empty()) {
    return Status::InvalidArgument(
        "request needs a non-empty 'views' array of "
        "{name, expr, assumption, extension} objects");
  }
  struct ViewSpec {
    RegexPtr expr;
    ViewAssumption assumption;
    std::vector<std::pair<int, int>> extension;
  };
  std::vector<ViewSpec> specs;
  for (const Json& element : views->array()) {
    if (!element.is_object()) {
      return Status::InvalidArgument("'views' entries must be objects");
    }
    ViewSpec spec;
    RPQI_ASSIGN_OR_RETURN(std::string expr_text,
                          RequireString(element, "expr"));
    RPQI_ASSIGN_OR_RETURN(spec.expr, ParseExpr(expr_text));
    RPQI_ASSIGN_OR_RETURN(std::string assumption,
                          RequireString(element, "assumption"));
    if (assumption == "sound") {
      spec.assumption = ViewAssumption::kSound;
    } else if (assumption == "complete") {
      spec.assumption = ViewAssumption::kComplete;
    } else if (assumption == "exact") {
      spec.assumption = ViewAssumption::kExact;
    } else {
      return Status::InvalidArgument("unknown assumption '" + assumption +
                                     "' (sound|complete|exact)");
    }
    const Json* extension = element.Find("extension");
    if (extension == nullptr || !extension->is_array()) {
      return Status::InvalidArgument(
          "view needs an 'extension' array of [a,b] pairs");
    }
    for (const Json& pair : extension->array()) {
      RPQI_ASSIGN_OR_RETURN(auto parsed,
                            ParsePairElement(pair, "extension", num_objects));
      spec.extension.push_back(parsed);
    }
    specs.push_back(std::move(spec));
  }

  std::vector<std::pair<int, int>> probes;
  const Json* pairs = request.body.Find("pairs");
  if (pairs != nullptr) {
    if (!pairs->is_array()) {
      return Status::InvalidArgument("'pairs' must be an array of [c,d]");
    }
    for (const Json& pair : pairs->array()) {
      RPQI_ASSIGN_OR_RETURN(auto parsed,
                            ParsePairElement(pair, "pairs", num_objects));
      probes.push_back(parsed);
    }
  } else {
    if (static_cast<int64_t>(num_objects) * num_objects > (1 << 20)) {
      return Status::InvalidArgument(
          "all-pairs probing above 2^20 pairs needs an explicit 'pairs' "
          "array");
    }
    for (int c = 0; c < num_objects; ++c) {
      for (int d = 0; d < num_objects; ++d) probes.push_back({c, d});
    }
  }

  SignedAlphabet alphabet;
  RegisterRelations({query_expr}, &alphabet);
  for (const ViewSpec& spec : specs) RegisterRelations({spec.expr}, &alphabet);
  AnsweringInstance instance;
  instance.num_objects = num_objects;
  RPQI_ASSIGN_OR_RETURN(instance.query, CompileRegex(query_expr, alphabet));
  for (ViewSpec& spec : specs) {
    View view;
    RPQI_ASSIGN_OR_RETURN(view.definition, CompileRegex(spec.expr, alphabet));
    view.extension = std::move(spec.extension);
    view.assumption = spec.assumption;
    instance.views.push_back(std::move(view));
  }

  JsonArray results;
  if (mode == "oda") {
    OdaOptions options;
    options.budget = budget;
    // One solver for the whole probe batch: the Section 5.2 view-side
    // automata are built once and reused per pair.
    OdaSolver solver(instance, options);
    for (const auto& [c, d] : probes) {
      RPQI_ASSIGN_OR_RETURN(OdaResult result, solver.CertainAnswer(c, d));
      results.push_back(Json::Obj({{"pair", Json::Arr({Json::Int(c),
                                                       Json::Int(d)})},
                                   {"certain", Json::Bool(result.certain)}}));
    }
  } else {
    CdaOptions options;
    options.budget = budget;
    for (const auto& [c, d] : probes) {
      RPQI_ASSIGN_OR_RETURN(CdaResult result,
                            CertainAnswerCda(instance, c, d, options));
      results.push_back(Json::Obj({{"pair", Json::Arr({Json::Int(c),
                                                       Json::Int(d)})},
                                   {"certain", Json::Bool(result.certain)}}));
    }
  }
  JsonObject fields;
  fields.emplace_back("mode", Json::Str(mode));
  fields.emplace_back("results", Json::Arr(std::move(results)));
  return fields;
}

StatusOr<JsonObject> Server::OpAdmin(const Request& request) {
  RPQI_ASSIGN_OR_RETURN(std::string action,
                        RequireString(request.body, "action"));
  // Admin requests route like query requests: a namespaced request reloads /
  // reports its own namespace's store, so one tenant's `admin reload` can
  // never swap another tenant's snapshot.
  SnapshotStore& store = StoreFor(request);
  JsonObject fields;
  fields.emplace_back("action", Json::Str(action));
  if (request.ns != nullptr) {
    fields.emplace_back("ns", Json::Str(request.ns->name));
  }
  if (action == "reload") {
    std::string db_path;
    if (request.ns != nullptr && request.body.Find("db") == nullptr) {
      // Namespaced reload defaults to the configured path: re-reads the file
      // the namespace was started from (picks up external updates in place).
      db_path = request.ns->options.db_path;
    } else {
      RPQI_ASSIGN_OR_RETURN(db_path, RequireString(request.body, "db"));
    }
    bool transient = false;
    StatusOr<int64_t> reloaded =
        store.Reload(db_path, options_.reload_retry, &transient);
    if (!reloaded.ok()) {
      // A transient failure (open/read error, injected abort) is the
      // environment's fault, not the request's: report `unavailable` so the
      // client knows the same request may succeed on retry. Content errors
      // stay invalid_request. Either way the old snapshot keeps serving.
      if (transient) return Unavailable(reloaded.status().message());
      return reloaded.status();
    }
    int64_t version = reloaded.value();
    std::shared_ptr<const GraphSnapshot> snapshot = store.Current();
    fields.emplace_back("snapshot_version", Json::Int(version));
    fields.emplace_back("nodes", Json::Int(snapshot->db.NumNodes()));
    fields.emplace_back("edges", Json::Int(snapshot->db.NumEdges()));
    fields.emplace_back("fingerprint",
                        Json::Str(FingerprintHex(snapshot->fingerprint)));
    return fields;
  }
  if (action == "stats") {
    fields.emplace_back("plan_cache",
                        Json::Obj(PlanCacheStatsJson(plan_cache_)));
    JsonObject snapshot_stats;
    std::shared_ptr<const GraphSnapshot> snapshot = store.Current();
    snapshot_stats.emplace_back("version", Json::Int(store.version()));
    if (snapshot != nullptr) {
      snapshot_stats.emplace_back("path", Json::Str(snapshot->source_path));
      snapshot_stats.emplace_back("nodes", Json::Int(snapshot->db.NumNodes()));
      snapshot_stats.emplace_back("edges", Json::Int(snapshot->db.NumEdges()));
      snapshot_stats.emplace_back(
          "fingerprint", Json::Str(FingerprintHex(snapshot->fingerprint)));
    }
    fields.emplace_back("snapshot", Json::Obj(std::move(snapshot_stats)));
    if (request.ns != nullptr) {
      // Scoped stats: this namespace's quota state and view set.
      JsonObject ns_stats;
      // order: stats snapshot; an instantaneous count needs no ordering
      int64_t inflight =
          request.ns->inflight.load(std::memory_order_relaxed);
      ns_stats.emplace_back("max_inflight",
                            Json::Int(request.ns->options.max_inflight));
      ns_stats.emplace_back("inflight", Json::Int(inflight));
      ns_stats.emplace_back(
          "views", Json::Int(static_cast<int64_t>(
                       request.ns->view_names.size())));
      fields.emplace_back("namespace", Json::Obj(std::move(ns_stats)));
    } else if (!namespaces_.empty()) {
      // Global stats enumerate every namespace (names + quota occupancy) so
      // an operator can see all tenants from one unscoped request.
      JsonArray all;
      for (const auto& [name, ns] : namespaces_) {
        // order: stats snapshot; an instantaneous count needs no ordering
        int64_t inflight = ns->inflight.load(std::memory_order_relaxed);
        all.push_back(Json::Obj(
            {{"name", Json::Str(name)},
             {"snapshot_version", Json::Int(ns->store.version())},
             {"max_inflight", Json::Int(ns->options.max_inflight)},
             {"inflight", Json::Int(inflight)},
             {"views",
              Json::Int(static_cast<int64_t>(ns->view_names.size()))}}));
      }
      fields.emplace_back("namespaces", Json::Arr(std::move(all)));
    }
    JsonObject admission;
    admission.emplace_back("threads", Json::Int(options_.threads));
    admission.emplace_back("queue_depth",
                           Json::Int(options_.admission.queue_depth));
    admission.emplace_back("default_timeout_ms",
                           Json::Int(options_.admission.default_timeout_ms));
    admission.emplace_back("default_max_states",
                           Json::Int(options_.admission.default_max_states));
    fields.emplace_back("admission", Json::Obj(std::move(admission)));
    JsonObject breaker;
    breaker.emplace_back("enabled", Json::Bool(breaker_.enabled()));
    breaker.emplace_back("failure_threshold",
                         Json::Int(options_.breaker_failure_threshold));
    breaker.emplace_back("cooldown_ms",
                         Json::Int(options_.breaker_cooldown_ms));
    JsonArray breaker_keys;
    for (const CircuitBreaker::KeyState& key : breaker_.Snapshot()) {
      breaker_keys.push_back(Json::Obj(
          {{"op", Json::Str(key.key)},
           {"state", Json::Str(key.state)},
           {"consecutive_failures", Json::Int(key.consecutive_failures)},
           {"trips", Json::Int(key.trips)},
           {"rejected", Json::Int(key.rejected)}}));
    }
    breaker.emplace_back("keys", Json::Arr(std::move(breaker_keys)));
    fields.emplace_back("breaker", Json::Obj(std::move(breaker)));
    if (fault::Enabled()) {
      JsonArray faults;
      for (const fault::SiteInfo& site : fault::ListSites()) {
        faults.push_back(Json::Obj({{"site", Json::Str(site.name)},
                                    {"policy", Json::Str(site.policy)},
                                    {"armed", Json::Bool(site.armed)},
                                    {"hits", Json::Int(site.hits)},
                                    {"fires", Json::Int(site.fires)}}));
      }
      fields.emplace_back("faults", Json::Arr(std::move(faults)));
    }
    return fields;
  }
  if (action == "sleep") {
    // Test/diagnostic helper: occupies this worker, making queue backpressure
    // reproducible (tools/cli_serve_test.py).
    RPQI_ASSIGN_OR_RETURN(int64_t ms, OptionalInt(request.body, "ms", 0));
    ms = std::min(ms, kMaxSleepMs);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    fields.emplace_back("slept_ms", Json::Int(ms));
    return fields;
  }
  if (action == "shutdown") {
    fields.emplace_back("draining", Json::Bool(true));
    return fields;
  }
  return Status::InvalidArgument(
      "unknown admin action '" + action +
      "' (reload|stats|sleep|shutdown)");
}

void Server::WriteLine(std::ostream* out, const std::string& line) {
  MutexLock lock(&writer_mu_);
  *out << line << '\n';
  out->flush();
}

std::string Server::HandleLine(const std::string& line) {
  Request request;
  std::string error_response;
  if (ParseRequest(line, &request, &error_response) != ParseOutcome::kOk) {
    return error_response;
  }
  return ExecuteToResponse(request);
}

std::shared_ptr<Server::ParsedBatch> Server::ParseBatch(
    const std::vector<std::string>& lines) {
  static const obs::Counter invalid("service.rejected.invalid");
  auto batch = std::make_shared<ParsedBatch>();
  batch->entries.reserve(lines.size());
  for (const std::string& line : lines) {
    ParsedBatch::Entry entry;
    switch (ParseRequest(line, &entry.request, &entry.error_response)) {
      case ParseOutcome::kOk:
        entry.ready = true;
        if (entry.request.is_shutdown) batch->wants_shutdown = true;
        break;
      case ParseOutcome::kInvalid:
        invalid.Increment();
        break;
      case ParseOutcome::kRejected:
        break;  // quota rejection; counted inside ParseRequest
    }
    batch->entries.push_back(std::move(entry));
  }
  return batch;
}

bool Server::RequestsShutdown(const ParsedBatch& batch) {
  return batch.wants_shutdown;
}

std::vector<std::string> Server::ExecuteBatch(ParsedBatch* batch) {
  static const obs::Counter batches("service.batches");
  static const obs::Histogram batch_size("service.batch.size");
  batches.Increment();
  // RecordUs despite the name: the histogram buckets are unitless log2 bins,
  // which is exactly the right shape for a batch-size distribution too.
  batch_size.RecordUs(static_cast<int64_t>(batch->entries.size()));
  BatchContext ctx;
  std::vector<std::string> responses;
  responses.reserve(batch->entries.size());
  for (ParsedBatch::Entry& entry : batch->entries) {
    responses.push_back(entry.ready ? ExecuteToResponse(entry.request, &ctx)
                                    : entry.error_response);
  }
  // Destroying the entries releases every namespace-quota ticket: the batch
  // stops counting against its tenants the moment its responses exist.
  batch->entries.clear();
  return responses;
}

std::vector<std::string> Server::RejectBatch(ParsedBatch* batch,
                                             const std::string& code,
                                             const std::string& message) {
  std::vector<std::string> responses;
  responses.reserve(batch->entries.size());
  for (ParsedBatch::Entry& entry : batch->entries) {
    responses.push_back(entry.ready
                            ? ErrorResponse(entry.request.id, code, message)
                            : entry.error_response);
  }
  batch->entries.clear();  // releases quota tickets, as in ExecuteBatch
  return responses;
}

Status Server::Serve(std::istream& in, std::ostream& out) {
  static const obs::Counter accepted("service.requests.accepted");
  static const obs::Counter rejected("service.rejected.queue_full");
  static const obs::Counter invalid("service.rejected.invalid");
  // order: only the serve loop's own getline condition reads this flag; the
  // worker that sets it synchronizes with the loop via the pool queue
  shutdown_requested_.store(false, std::memory_order_relaxed);
  {
    WorkerPool pool(options_.threads, options_.admission.queue_depth);
    std::string line;
    // order: see the store above — the flag is a loop-exit hint, not a
    // payload publication
    while (!shutdown_requested_.load(std::memory_order_relaxed) &&
           std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      auto request = std::make_shared<Request>();
      std::string error_response;
      ParseOutcome outcome = ParseRequest(line, request.get(), &error_response);
      if (outcome != ParseOutcome::kOk) {
        // kRejected (namespace quota) has its own counter inside ParseRequest;
        // only malformed envelopes count as invalid.
        if (outcome == ParseOutcome::kInvalid) invalid.Increment();
        WriteLine(&out, error_response);
        continue;
      }
      if (request->is_shutdown) {
        // Stop reading after this request; it still goes through the queue so
        // its response serializes behind everything accepted before it.
        // order: same flag-only contract as the loop condition above
        shutdown_requested_.store(true, std::memory_order_relaxed);
      }
      Json id = request->id;  // for the rejection path below
      // Models a queue-full burst without needing real backpressure: the
      // request takes the exact `overloaded` rejection path below.
      bool submitted = !RPQI_FAULT_FIRED("service.queue_full") &&
                       pool.TrySubmit([this, &out, request] {
                         WriteLine(&out, ExecuteToResponse(*request));
                       });
      if (submitted) {
        accepted.Increment();
      } else {
        rejected.Increment();
        WriteLine(&out, ErrorResponse(
                            id, "overloaded",
                            "request queue full (depth " +
                                std::to_string(options_.admission.queue_depth) +
                                ")"));
      }
    }
    pool.Drain();
  }
  out.flush();
  return Status::Ok();
}

}  // namespace service
}  // namespace rpqi
