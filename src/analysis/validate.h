#ifndef RPQI_ANALYSIS_VALIDATE_H_
#define RPQI_ANALYSIS_VALIDATE_H_

#include <string>
#include <utility>
#include <vector>

#include "automata/dfa.h"
#include "automata/flat.h"
#include "automata/nfa.h"
#include "automata/two_way.h"
#include "base/bitset.h"
#include "base/status.h"
#include "graphdb/graph.h"
#include "regex/ast.h"

namespace rpqi {

/// Structural-invariant validators for every intermediate of the rewriting and
/// answering pipelines (A1 two-way → A2 complement → A3 conformance → A4
/// projection → R, Theorems 6/7). The constructions are fragile: a single
/// silently malformed intermediate — a transition out of range, an alphabet
/// not closed under inverse, a "DFA" with a missing or duplicate edge —
/// produces *wrong rewritings*, not crashes. Each validator returns
/// Status::InvalidArgument with a diagnostic naming the offending state /
/// transition / symbol id, so a violation points at the stage that broke.
///
/// Validators are pure readers: they never mutate, never abort, and depend
/// only on header-inline accessors (analysis links nothing but base, so every
/// library may call into it without cycles). At stage boundaries they are
/// invoked through RPQI_VALIDATE_STAGE below, which compiles to nothing unless
/// the build enables -DRPQI_VALIDATE=ON (default ON in Debug, OFF in Release).

// ---------------------------------------------------------------------------
// One-way NFAs.

struct NfaValidateOptions {
  /// Reject ε-transitions (required after RemoveEpsilon, for A3 fragments,
  /// and for any automaton fed to a subset construction that assumes
  /// ε-freedom).
  bool require_epsilon_free = false;
  /// Require at least one initial state (an automaton with none accepts
  /// nothing and usually indicates a lost SetInitial).
  bool require_initial_state = false;
  /// Require the alphabet to be a signed alphabet Σ±: an even number of
  /// symbols, so every symbol s has its inverse partner s^1 in range
  /// (SignedAlphabet pairs relation k as 2k / 2k+1).
  bool require_signed_alphabet = false;
  /// If >= 0, the automaton's alphabet must have exactly this many symbols
  /// (stage-boundary agreement, e.g. A3 over TotalSymbols, A4 over 2·|views|).
  int expected_num_symbols = -1;
};

/// Checks dense-range transitions (symbol within the alphabet or ε, target
/// within [0, NumStates())) plus the options above, and that the O(1) cached
/// transition / ε-transition counters agree with the transition lists (the
/// subset-construction hot paths and budget charging trust these caches).
Status ValidateNfa(const Nfa& nfa, const NfaValidateOptions& options = {});

/// Checks that a Bitset's cached 64-bit hash (used by the interning hot
/// paths) matches its words — i.e. no mutation bypassed the invalidation.
Status ValidateBitsetHash(const Bitset& bits);

/// Validates an NFA that is *claimed* deterministic (the edge-list view of a
/// DFA): ε-free, exactly one initial state, and at most one transition per
/// (state, symbol) — a duplicate edge is reported with both target ids. With
/// `require_total`, every (state, symbol) must have exactly one successor.
Status ValidateDeterministic(const Nfa& nfa, bool require_total = false);

// ---------------------------------------------------------------------------
// Flat compiled plans.

/// Structural invariants of the flat plan form (automata/flat.h): offset
/// table shaped NumStates()+1 / starts at 0 / monotone / ends at NumEdges();
/// every edge's symbol in [0, num_symbols) (ε is banned — the flat form is
/// ε-closure-free by construction) and target in [0, NumStates()); per-state
/// spans strictly increasing by (symbol, target); initial/accepting bitset
/// words sized ceil(states/64) with zero tail bits; and the initial-state
/// list sorted, duplicate-free, and set-equal to the initial bitset. This is
/// the admission gate for deserialized plans, so it reads only the raw part
/// vectors — never the span accessors, which assume these invariants. With
/// `expected_num_symbols >= 0` the alphabet width must match exactly.
Status ValidateFlatNfa(const FlatNfa& flat, int expected_num_symbols = -1);

// ---------------------------------------------------------------------------
// Raw (untrusted) automaton descriptions.

/// An automaton as it arrives from outside the type system — a deserializer,
/// an external tool, a test vector. Unlike Nfa::AddTransition, nothing here is
/// range-checked at construction; ValidateRawNfa is the admission gate.
struct RawNfa {
  struct Edge {
    int from = 0;
    int symbol = 0;  // kEpsilon allowed
    int to = 0;
  };
  int num_symbols = 0;
  int num_states = 0;
  std::vector<int> initial;    // state ids
  std::vector<int> accepting;  // state ids
  std::vector<Edge> transitions;
};

/// Checks every id in `raw` against its declared ranges; diagnostics name the
/// transition index and the offending id.
Status ValidateRawNfa(const RawNfa& raw, const NfaValidateOptions& options = {});

/// ValidateRawNfa, then builds the Nfa. The only path from untrusted data
/// into the automaton types.
StatusOr<Nfa> BuildValidatedNfa(const RawNfa& raw,
                                const NfaValidateOptions& options = {});

// ---------------------------------------------------------------------------
// DFAs.

struct DfaValidateOptions {
  /// Require totality: every (state, symbol) has a successor. The Theorem 6/7
  /// complement stages are only correct on *complete* DFAs (a missing edge
  /// silently shrinks the complement's language).
  bool require_total = true;
  int expected_num_symbols = -1;
};

/// Checks the initial state and every successor entry for range validity
/// (entries may be -1 = missing only when totality is not required).
Status ValidateDfa(const Dfa& dfa, const DfaValidateOptions& options = {});

// ---------------------------------------------------------------------------
// Two-way automata (Section 3).

struct TwoWayValidateOptions {
  bool require_initial_state = false;
  /// Require accepting states to have no outgoing transitions. The Section 3
  /// satisfaction automaton A1 relies on its final state being stuck: a
  /// premature $ firing must die rather than continue (satisfaction.cc,
  /// group 3).
  bool require_stuck_accepting = false;
  int expected_num_symbols = -1;
};

/// Checks state/symbol ranges and direction consistency: every transition's
/// Move must be one of kLeft/kStay/kRight (TwoWayNfa::AddTransition does not
/// range-check the enum, so a casted garbage value survives until here).
Status ValidateTwoWay(const TwoWayNfa& automaton,
                      const TwoWayValidateOptions& options = {});

// ---------------------------------------------------------------------------
// Regular-expression ASTs.

/// Structural validity of a regex DAG: non-null children where the node kind
/// requires them (kConcat/kUnion both, kStar left only), no children on
/// leaves, non-empty atom names. Nodes are identified in diagnostics by their
/// preorder index from `root`.
Status ValidateRegexAst(const RegexPtr& root);

// ---------------------------------------------------------------------------
// Graph databases.

/// Checks every edge's relation id against [0, num_relations) — GraphDb only
/// enforces relation >= 0 because it does not know the alphabet — and the
/// out/in adjacency mirror (every out-edge must have its in-edge twin, and
/// the totals must agree).
Status ValidateGraphDb(const GraphDb& db, int num_relations);

// ---------------------------------------------------------------------------
// Views (Section 5 answering instances; Section 4 rewriting inputs).

/// Alphabet agreement and extension ranges for a view-based answering
/// instance, unpacked so analysis does not depend on answer/:
///   * every definition is over exactly `query_num_symbols` symbols (the
///     shared signed alphabet Σ±), and structurally valid as an NFA;
///   * `extensions` (if non-empty) parallels `definitions`, and every pair
///     names objects in [0, num_objects).
Status ValidateViewExtensions(
    int query_num_symbols, const std::vector<Nfa>& definitions,
    const std::vector<std::vector<std::pair<int, int>>>& extensions,
    int num_objects);

/// Name binding between view definitions and view extensions: every
/// referenced extension name must be defined, and definitions must be
/// duplicate-free. A dangling name is reported verbatim.
Status ValidateViewNames(const std::vector<std::string>& definition_names,
                         const std::vector<std::string>& extension_names);

}  // namespace rpqi

/// Stage-boundary assertion. In validating builds (-DRPQI_VALIDATE=ON; the
/// default for Debug and the CI Debug job) a failed validator aborts with the
/// validator's diagnostic; in other builds the expression is not evaluated at
/// all, so hot paths pay nothing.
#ifdef RPQI_VALIDATE_ENABLED
#define RPQI_VALIDATE_STAGE(expr)                      \
  do {                                                 \
    ::rpqi::Status _rpqi_validate_status_ = (expr);    \
    RPQI_CHECK(_rpqi_validate_status_.ok())            \
        << "stage invariant violated: "                \
        << _rpqi_validate_status_.ToString();          \
  } while (0)
#else
#define RPQI_VALIDATE_STAGE(expr) \
  do {                            \
  } while (0)
#endif

#endif  // RPQI_ANALYSIS_VALIDATE_H_
