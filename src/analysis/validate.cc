#include "analysis/validate.h"

#include <algorithm>
#include <span>
#include <unordered_map>
#include <unordered_set>

namespace rpqi {

namespace {

std::string Id(int64_t value) { return std::to_string(value); }

/// Shared range checks for one transition of a one-way automaton, `where`
/// names the transition ("state 2, transition 3" / "transition 7").
Status CheckEdge(const std::string& where, int symbol, int to, int num_symbols,
                 int num_states, bool allow_epsilon) {
  if (symbol == kEpsilon) {
    if (!allow_epsilon) {
      return Status::InvalidArgument(where +
                                     ": ε-transition in a context that "
                                     "requires ε-freedom");
    }
  } else if (symbol < 0 || symbol >= num_symbols) {
    return Status::InvalidArgument(where + ": symbol " + Id(symbol) +
                                   " out of alphabet range [0, " +
                                   Id(num_symbols) + ")");
  }
  if (to < 0 || to >= num_states) {
    return Status::InvalidArgument(where + ": target state " + Id(to) +
                                   " out of range [0, " + Id(num_states) + ")");
  }
  return Status::Ok();
}

Status CheckAlphabetShape(const std::string& what, int num_symbols,
                          const NfaValidateOptions& options) {
  if (options.expected_num_symbols >= 0 &&
      num_symbols != options.expected_num_symbols) {
    return Status::InvalidArgument(
        what + ": alphabet has " + Id(num_symbols) + " symbols, stage expects " +
        Id(options.expected_num_symbols));
  }
  if (options.require_signed_alphabet && num_symbols % 2 != 0) {
    return Status::InvalidArgument(
        what + ": alphabet of " + Id(num_symbols) +
        " symbols is not closed under inverse: symbol " + Id(num_symbols - 1) +
        " has no ± partner (signed alphabets pair 2k with 2k+1)");
  }
  return Status::Ok();
}

}  // namespace

Status ValidateNfa(const Nfa& nfa, const NfaValidateOptions& options) {
  RPQI_RETURN_IF_ERROR(CheckAlphabetShape("nfa", nfa.num_symbols(), options));
  bool has_initial = false;
  int64_t transitions = 0;
  int64_t epsilon_transitions = 0;
  for (int s = 0; s < nfa.NumStates(); ++s) {
    has_initial = has_initial || nfa.IsInitial(s);
    int index = 0;
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      RPQI_RETURN_IF_ERROR(CheckEdge(
          "nfa: state " + Id(s) + ", transition " + Id(index), t.symbol, t.to,
          nfa.num_symbols(), nfa.NumStates(),
          /*allow_epsilon=*/!options.require_epsilon_free));
      ++index;
      ++transitions;
      if (t.symbol == kEpsilon) ++epsilon_transitions;
    }
  }
  // Coherence of the O(1) cached counters against the transition lists (the
  // hot paths branch on these instead of recounting; a stale cache silently
  // skips ε-closure or mischarges budgets).
  if (transitions != nfa.NumTransitions()) {
    return Status::InvalidArgument(
        "nfa: cached transition count " + Id(nfa.NumTransitions()) +
        " != actual " + Id(static_cast<int>(transitions)));
  }
  if (epsilon_transitions != nfa.NumEpsilonTransitions()) {
    return Status::InvalidArgument(
        "nfa: cached ε-transition count " + Id(nfa.NumEpsilonTransitions()) +
        " != actual " + Id(static_cast<int>(epsilon_transitions)));
  }
  if (options.require_initial_state && !has_initial) {
    return Status::InvalidArgument(
        "nfa: no initial state among " + Id(nfa.NumStates()) +
        " states (the automaton accepts nothing)");
  }
  return Status::Ok();
}

Status ValidateFlatNfa(const FlatNfa& flat, int expected_num_symbols) {
  const int num_symbols = flat.num_symbols();
  if (num_symbols < 0) {
    return Status::InvalidArgument("flat: negative alphabet size " +
                                   Id(num_symbols));
  }
  if (expected_num_symbols >= 0 && num_symbols != expected_num_symbols) {
    return Status::InvalidArgument(
        "flat: alphabet has " + Id(num_symbols) + " symbols, stage expects " +
        Id(expected_num_symbols));
  }
  const std::vector<uint32_t>& offsets = flat.offsets();
  const std::vector<FlatNfa::Edge>& edges = flat.edges();
  if (offsets.empty()) {
    if (!edges.empty() || !flat.initial_list().empty()) {
      return Status::InvalidArgument(
          "flat: empty offset table but " + Id(static_cast<int>(edges.size())) +
          " edges / " + Id(static_cast<int>(flat.initial_list().size())) +
          " initial states");
    }
    return Status::Ok();
  }
  const int num_states = static_cast<int>(offsets.size()) - 1;
  if (offsets[0] != 0) {
    return Status::InvalidArgument("flat: offsets start at " +
                                   Id(static_cast<int>(offsets[0])) +
                                   ", expected 0");
  }
  if (offsets[num_states] != edges.size()) {
    return Status::InvalidArgument(
        "flat: offsets end at " + Id(static_cast<int>(offsets[num_states])) +
        " but the edge array holds " + Id(static_cast<int>(edges.size())));
  }
  for (int s = 0; s < num_states; ++s) {
    if (offsets[s + 1] < offsets[s]) {
      return Status::InvalidArgument("flat: state " + Id(s) +
                                     ": offset table decreases (" +
                                     Id(static_cast<int>(offsets[s])) + " -> " +
                                     Id(static_cast<int>(offsets[s + 1])) +
                                     ")");
    }
    for (uint32_t i = offsets[s]; i < offsets[s + 1]; ++i) {
      const FlatNfa::Edge& e = edges[i];
      // ε is banned outright: the flat form is defined as ε-closure-free,
      // so kEpsilon (or any negative symbol) is malformed, not a transition.
      if (e.symbol < 0 || e.symbol >= num_symbols) {
        return Status::InvalidArgument(
            "flat: state " + Id(s) + ", edge " + Id(static_cast<int>(i)) +
            ": symbol " + Id(e.symbol) + " out of range [0, " +
            Id(num_symbols) + ")");
      }
      if (e.to < 0 || e.to >= num_states) {
        return Status::InvalidArgument(
            "flat: state " + Id(s) + ", edge " + Id(static_cast<int>(i)) +
            ": target state " + Id(e.to) + " out of range [0, " +
            Id(num_states) + ")");
      }
      if (i > offsets[s] && !(edges[i - 1] < e)) {
        return Status::InvalidArgument(
            "flat: state " + Id(s) + ", edge " + Id(static_cast<int>(i)) +
            ": span not strictly (symbol, target)-sorted at symbol " +
            Id(e.symbol) + " -> " + Id(e.to));
      }
    }
  }
  const size_t expected_words = static_cast<size_t>((num_states + 63) / 64);
  auto check_words = [&](const std::vector<uint64_t>& words,
                         const char* what) -> Status {
    if (words.size() != expected_words) {
      return Status::InvalidArgument(
          "flat: " + std::string(what) + " bitset holds " +
          Id(static_cast<int>(words.size())) + " words, expected " +
          Id(static_cast<int>(expected_words)));
    }
    const int tail = num_states & 63;
    if (tail != 0 && !words.empty() &&
        (words.back() & (~uint64_t{0} << tail)) != 0) {
      return Status::InvalidArgument("flat: " + std::string(what) +
                                     " bitset has bits set beyond state " +
                                     Id(num_states - 1));
    }
    return Status::Ok();
  };
  RPQI_RETURN_IF_ERROR(check_words(flat.initial_words(), "initial"));
  RPQI_RETURN_IF_ERROR(check_words(flat.accepting_words(), "accepting"));
  // The explicit initial list must be exactly the bitset's set, in order:
  // the BFS seeds from the list while membership tests read the bitset, so
  // disagreement between them is a wrong-answer bug, not a style issue.
  int64_t listed = 0;
  int32_t previous = -1;
  for (int32_t s : flat.initial_list()) {
    if (s < 0 || s >= num_states) {
      return Status::InvalidArgument("flat: initial list names state " +
                                     Id(s) + " out of range [0, " +
                                     Id(num_states) + ")");
    }
    if (s <= previous) {
      return Status::InvalidArgument(
          "flat: initial list not strictly ascending at state " + Id(s));
    }
    if (((flat.initial_words()[s >> 6] >> (s & 63)) & 1) == 0) {
      return Status::InvalidArgument("flat: initial list names state " +
                                     Id(s) +
                                     " but the initial bitset does not");
    }
    previous = s;
    ++listed;
  }
  int64_t set_bits = 0;
  for (uint64_t w : flat.initial_words()) set_bits += __builtin_popcountll(w);
  if (set_bits != listed) {
    return Status::InvalidArgument(
        "flat: initial bitset has " + Id(static_cast<int>(set_bits)) +
        " states but the initial list names " + Id(static_cast<int>(listed)));
  }
  return Status::Ok();
}

Status ValidateBitsetHash(const Bitset& bits) {
  if (!bits.CachedHashCoherent()) {
    return Status::InvalidArgument(
        "bitset: cached hash is stale (a mutation bypassed the "
        "invalidation path)");
  }
  return Status::Ok();
}

Status ValidateDeterministic(const Nfa& nfa, bool require_total) {
  NfaValidateOptions base;
  base.require_epsilon_free = true;
  RPQI_RETURN_IF_ERROR(ValidateNfa(nfa, base));

  int initial = -1;
  for (int s = 0; s < nfa.NumStates(); ++s) {
    if (!nfa.IsInitial(s)) continue;
    if (initial >= 0) {
      return Status::InvalidArgument("deterministic nfa: states " +
                                     Id(initial) + " and " + Id(s) +
                                     " are both initial");
    }
    initial = s;
  }
  if (initial < 0) {
    return Status::InvalidArgument("deterministic nfa: no initial state");
  }

  std::vector<int> successor(nfa.num_symbols(), -1);
  for (int s = 0; s < nfa.NumStates(); ++s) {
    successor.assign(nfa.num_symbols(), -1);
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (successor[t.symbol] >= 0) {
        return Status::InvalidArgument(
            "deterministic nfa: duplicate edge on state " + Id(s) +
            ", symbol " + Id(t.symbol) + ": targets " +
            Id(successor[t.symbol]) + " and " + Id(t.to));
      }
      successor[t.symbol] = t.to;
    }
    if (require_total) {
      for (int a = 0; a < nfa.num_symbols(); ++a) {
        if (successor[a] < 0) {
          return Status::InvalidArgument(
              "deterministic nfa: state " + Id(s) +
              " has no successor on symbol " + Id(a) +
              " (totality required)");
        }
      }
    }
  }
  return Status::Ok();
}

Status ValidateRawNfa(const RawNfa& raw, const NfaValidateOptions& options) {
  if (raw.num_symbols < 0) {
    return Status::InvalidArgument("raw nfa: negative alphabet size " +
                                   Id(raw.num_symbols));
  }
  if (raw.num_states < 0) {
    return Status::InvalidArgument("raw nfa: negative state count " +
                                   Id(raw.num_states));
  }
  RPQI_RETURN_IF_ERROR(
      CheckAlphabetShape("raw nfa", raw.num_symbols, options));
  for (size_t i = 0; i < raw.transitions.size(); ++i) {
    const RawNfa::Edge& edge = raw.transitions[i];
    std::string where = "raw nfa: transition " + Id(static_cast<int>(i));
    if (edge.from < 0 || edge.from >= raw.num_states) {
      return Status::InvalidArgument(where + ": source state " + Id(edge.from) +
                                     " out of range [0, " + Id(raw.num_states) +
                                     ")");
    }
    RPQI_RETURN_IF_ERROR(
        CheckEdge(where, edge.symbol, edge.to, raw.num_symbols, raw.num_states,
                  /*allow_epsilon=*/!options.require_epsilon_free));
  }
  for (int s : raw.initial) {
    if (s < 0 || s >= raw.num_states) {
      return Status::InvalidArgument("raw nfa: initial state " + Id(s) +
                                     " out of range [0, " + Id(raw.num_states) +
                                     ")");
    }
  }
  for (int s : raw.accepting) {
    if (s < 0 || s >= raw.num_states) {
      return Status::InvalidArgument("raw nfa: accepting state " + Id(s) +
                                     " out of range [0, " + Id(raw.num_states) +
                                     ")");
    }
  }
  if (options.require_initial_state && raw.initial.empty()) {
    return Status::InvalidArgument("raw nfa: no initial state");
  }
  return Status::Ok();
}

StatusOr<Nfa> BuildValidatedNfa(const RawNfa& raw,
                                const NfaValidateOptions& options) {
  RPQI_RETURN_IF_ERROR(ValidateRawNfa(raw, options));
  Nfa nfa(raw.num_symbols);
  // lint: allow-unbudgeted linear in the validated description
  for (int s = 0; s < raw.num_states; ++s) nfa.AddState();
  for (const RawNfa::Edge& edge : raw.transitions) {
    nfa.AddTransition(edge.from, edge.symbol, edge.to);
  }
  for (int s : raw.initial) nfa.SetInitial(s);
  for (int s : raw.accepting) nfa.SetAccepting(s);
  return nfa;
}

Status ValidateDfa(const Dfa& dfa, const DfaValidateOptions& options) {
  if (options.expected_num_symbols >= 0 &&
      dfa.num_symbols() != options.expected_num_symbols) {
    return Status::InvalidArgument(
        "dfa: alphabet has " + Id(dfa.num_symbols()) +
        " symbols, stage expects " + Id(options.expected_num_symbols));
  }
  if (dfa.initial() < 0 || dfa.initial() >= dfa.NumStates()) {
    return Status::InvalidArgument("dfa: initial state " + Id(dfa.initial()) +
                                   " out of range [0, " + Id(dfa.NumStates()) +
                                   ")");
  }
  for (int s = 0; s < dfa.NumStates(); ++s) {
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      int to = dfa.Next(s, a);
      if (to < 0) {
        if (options.require_total) {
          return Status::InvalidArgument(
              "dfa: state " + Id(s) + " has no successor on symbol " + Id(a) +
              " (complement stages require a complete DFA)");
        }
        continue;
      }
      if (to >= dfa.NumStates()) {
        return Status::InvalidArgument(
            "dfa: state " + Id(s) + ", symbol " + Id(a) + ": target state " +
            Id(to) + " out of range [0, " + Id(dfa.NumStates()) + ")");
      }
    }
  }
  return Status::Ok();
}

Status ValidateTwoWay(const TwoWayNfa& automaton,
                      const TwoWayValidateOptions& options) {
  if (options.expected_num_symbols >= 0 &&
      automaton.num_symbols() != options.expected_num_symbols) {
    return Status::InvalidArgument(
        "two-way nfa: alphabet has " + Id(automaton.num_symbols()) +
        " symbols, stage expects " + Id(options.expected_num_symbols));
  }
  bool has_initial = false;
  for (int s = 0; s < automaton.NumStates(); ++s) {
    has_initial = has_initial || automaton.IsInitial(s);
    for (int a = 0; a < automaton.num_symbols(); ++a) {
      for (const TwoWayNfa::Transition& t : automaton.TransitionsOn(s, a)) {
        std::string where =
            "two-way nfa: state " + Id(s) + ", symbol " + Id(a);
        if (t.to < 0 || t.to >= automaton.NumStates()) {
          return Status::InvalidArgument(
              where + ": target state " + Id(t.to) + " out of range [0, " +
              Id(automaton.NumStates()) + ")");
        }
        int move = static_cast<int>(t.move);
        if (move < -1 || move > 1) {
          return Status::InvalidArgument(
              where + ", target " + Id(t.to) + ": head move " + Id(move) +
              " is not a direction (must be -1 left, 0 stay, or 1 right)");
        }
        if (options.require_stuck_accepting && automaton.IsAccepting(s)) {
          return Status::InvalidArgument(
              "two-way nfa: accepting state " + Id(s) +
              " has an outgoing transition on symbol " + Id(a) +
              " (A1's final state must be stuck so premature $ firings die)");
        }
      }
    }
  }
  if (options.require_initial_state && !has_initial) {
    return Status::InvalidArgument("two-way nfa: no initial state among " +
                                   Id(automaton.NumStates()) + " states");
  }
  return Status::Ok();
}

Status ValidateRegexAst(const RegexPtr& root) {
  if (root == nullptr) {
    return Status::InvalidArgument("regex: root node is null");
  }
  // Preorder indices identify nodes in diagnostics. Iterative traversal: the
  // AST is a shared-pointer DAG, and adversarial sharing can make it
  // exponentially larger than its pointer graph — cap the walk.
  constexpr int kMaxVisited = 1 << 20;
  std::vector<const Regex*> stack = {root.get()};
  int preorder = -1;
  while (!stack.empty()) {
    const Regex* node = stack.back();
    stack.pop_back();
    if (++preorder >= kMaxVisited) {
      return Status::InvalidArgument(
          "regex: traversal exceeded " + Id(kMaxVisited) +
          " nodes (cyclic or pathologically shared AST)");
    }
    const std::string where = "regex: node " + Id(preorder);
    const bool wants_left =
        node->kind == RegexKind::kConcat || node->kind == RegexKind::kUnion ||
        node->kind == RegexKind::kStar;
    const bool wants_right =
        node->kind == RegexKind::kConcat || node->kind == RegexKind::kUnion;
    switch (node->kind) {
      case RegexKind::kEmptySet:
      case RegexKind::kEpsilon:
      case RegexKind::kAtom:
        if (node->left != nullptr || node->right != nullptr) {
          return Status::InvalidArgument(where + ": leaf kind has children");
        }
        if (node->kind == RegexKind::kAtom && node->atom_name.empty()) {
          return Status::InvalidArgument(where + ": atom with empty name");
        }
        break;
      case RegexKind::kConcat:
      case RegexKind::kUnion:
      case RegexKind::kStar:
        if (node->left == nullptr) {
          return Status::InvalidArgument(where + ": missing left operand");
        }
        if (wants_right && node->right == nullptr) {
          return Status::InvalidArgument(where + ": missing right operand");
        }
        if (!wants_right && node->right != nullptr) {
          return Status::InvalidArgument(where +
                                         ": star node with a right operand");
        }
        break;
      default:
        return Status::InvalidArgument(
            where + ": unknown node kind " +
            Id(static_cast<int>(node->kind)));
    }
    // Push right before left so preorder indices read left-to-right.
    if (wants_right && node->right != nullptr) stack.push_back(node->right.get());
    if (wants_left && node->left != nullptr) stack.push_back(node->left.get());
  }
  return Status::Ok();
}

namespace {

/// Invariants of a LabelCsr (built in memory or mapped from a columnar
/// snapshot): offsets start at 0, never decrease, and end at the edge count;
/// targets are in range and sorted within each span; relation ids beyond the
/// alphabet have no edges; and the two directions mirror each other. The
/// mirror check counts each out-run (from, r, to)×k against the in-span of
/// `to` — containment with equal multiplicities plus equal totals is full
/// multiset equality, without materializing a hash map of triples.
Status ValidateLabelCsr(const GraphDb& db, int num_relations) {
  const LabelCsr& csr = db.label_csr();
  const int n = db.NumNodes();
  if (csr.num_nodes != n) {
    return Status::InvalidArgument("graphdb: label index covers " +
                                   Id(csr.num_nodes) + " nodes, database has " +
                                   Id(n));
  }
  const uint64_t rows = static_cast<uint64_t>(csr.num_relations) * n;
  const uint64_t num_edges = static_cast<uint64_t>(db.NumEdges());
  struct Direction {
    const char* what;
    const uint64_t* offsets;
    const uint32_t* targets;
  };
  const Direction directions[2] = {
      {"out", csr.out_offsets(), csr.out_targets()},
      {"in", csr.in_offsets(), csr.in_targets()},
  };
  for (const Direction& d : directions) {
    if (d.offsets[0] != 0 || d.offsets[rows] != num_edges) {
      return Status::InvalidArgument(
          "graphdb: " + std::string(d.what) + " label index spans [" +
          Id(static_cast<int64_t>(d.offsets[0])) + ", " +
          Id(static_cast<int64_t>(d.offsets[rows])) + "), expected [0, " +
          Id(static_cast<int64_t>(num_edges)) + ")");
    }
    for (uint64_t row = 0; row < rows; ++row) {
      if (d.offsets[row + 1] < d.offsets[row]) {
        return Status::InvalidArgument("graphdb: " + std::string(d.what) +
                                       " label index offsets decrease at row " +
                                       Id(static_cast<int64_t>(row)));
      }
      for (uint64_t i = d.offsets[row]; i < d.offsets[row + 1]; ++i) {
        if (d.targets[i] >= static_cast<uint64_t>(n)) {
          return Status::InvalidArgument(
              "graphdb: " + std::string(d.what) + " label index target " +
              Id(d.targets[i]) + " out of range [0, " + Id(n) + ")");
        }
        if (i > d.offsets[row] && d.targets[i] < d.targets[i - 1]) {
          return Status::InvalidArgument(
              "graphdb: " + std::string(d.what) + " label index row " +
              Id(static_cast<int64_t>(row)) + " is not sorted");
        }
      }
      if (row >= static_cast<uint64_t>(num_relations) * n &&
          d.offsets[row + 1] > d.offsets[row]) {
        return Status::InvalidArgument(
            "graphdb: label index names relation id " +
            Id(static_cast<int64_t>(row / n)) + " beyond the alphabet's " +
            Id(num_relations) + " relations");
      }
    }
  }
  for (int r = 0; r < csr.num_relations; ++r) {
    for (int node = 0; node < n; ++node) {
      std::span<const uint32_t> out = csr.Out(node, r);
      for (size_t i = 0; i < out.size();) {
        uint32_t to = out[i];
        size_t run = i;
        while (run < out.size() && out[run] == to) ++run;
        std::span<const uint32_t> mirror = csr.In(static_cast<int>(to), r);
        auto range = std::equal_range(mirror.begin(), mirror.end(),
                                      static_cast<uint32_t>(node));
        if (static_cast<size_t>(range.second - range.first) != run - i) {
          return Status::InvalidArgument(
              "graphdb: edge node " + Id(node) + " --" + Id(r) + "--> node " +
              Id(to) + " out of sync between the label index directions");
        }
        i = run;
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Status ValidateGraphDb(const GraphDb& db, int num_relations) {
  if (num_relations <= 0 && db.NumEdges() > 0) {
    return Status::InvalidArgument(
        "graphdb: edges present but the alphabet declares " +
        Id(num_relations) + " relations");
  }
  if (db.columnar()) {
    // Columnar databases carry adjacency only in the label index; the row
    // checks below would be vacuous. The dictionary's sortedness and bounds
    // were already enforced byte-by-byte by ParseColumnarView.
    return ValidateLabelCsr(db, num_relations);
  }
  if (db.has_label_index()) {
    RPQI_RETURN_IF_ERROR(ValidateLabelCsr(db, num_relations));
  }
  // Edge multiset symmetry: every out-edge from --r--> to must be mirrored by
  // exactly one in-edge at `to`. Key encodes (from, relation, to).
  std::unordered_map<int64_t, int> balance;
  int64_t total_out = 0;
  int64_t total_in = 0;
  for (int node = 0; node < db.NumNodes(); ++node) {
    for (const GraphDb::Edge& e : db.OutEdges(node)) {
      if (e.relation < 0 || e.relation >= num_relations) {
        return Status::InvalidArgument(
            "graphdb: edge " + std::string(db.NodeName(node)) + " --" +
            Id(e.relation) + "--> node " + Id(e.to) + ": relation id " +
            Id(e.relation) + " out of range [0, " + Id(num_relations) + ")");
      }
      if (e.to < 0 || e.to >= db.NumNodes()) {
        return Status::InvalidArgument(
            "graphdb: edge from node " + Id(node) + ": target node " +
            Id(e.to) + " out of range [0, " + Id(db.NumNodes()) + ")");
      }
      int64_t k = (static_cast<int64_t>(node) * db.NumNodes() + e.to) *
                      num_relations +
                  e.relation;
      ++balance[k];
      ++total_out;
    }
    for (const GraphDb::Edge& e : db.InEdges(node)) {
      if (e.to < 0 || e.to >= db.NumNodes() || e.relation < 0 ||
          e.relation >= num_relations) {
        return Status::InvalidArgument(
            "graphdb: in-edge list of node " + Id(node) +
            " names relation " + Id(e.relation) + " / source " + Id(e.to) +
            " out of range");
      }
      int64_t k = (static_cast<int64_t>(e.to) * db.NumNodes() + node) *
                      num_relations +
                  e.relation;
      --balance[k];
      ++total_in;
    }
  }
  if (total_out != total_in) {
    return Status::InvalidArgument(
        "graphdb: adjacency mirror out of sync: " + Id(total_out) +
        " out-edges vs " + Id(total_in) + " in-edges");
  }
  for (const auto& [k, count] : balance) {
    if (count != 0) {
      int relation = static_cast<int>(k % num_relations);
      int64_t rest = k / num_relations;
      int to = static_cast<int>(rest % db.NumNodes());
      int from = static_cast<int>(rest / db.NumNodes());
      return Status::InvalidArgument(
          "graphdb: edge node " + Id(from) + " --" + Id(relation) +
          "--> node " + Id(to) + " present in only one adjacency direction");
    }
  }
  return Status::Ok();
}

Status ValidateViewExtensions(
    int query_num_symbols, const std::vector<Nfa>& definitions,
    const std::vector<std::vector<std::pair<int, int>>>& extensions,
    int num_objects) {
  if (query_num_symbols < 0 || query_num_symbols % 2 != 0) {
    return Status::InvalidArgument(
        "views: query alphabet of " + Id(query_num_symbols) +
        " symbols is not a signed alphabet (must be even, pairing 2k/2k+1)");
  }
  if (!extensions.empty() && extensions.size() != definitions.size()) {
    return Status::InvalidArgument(
        "views: " + Id(static_cast<int>(definitions.size())) +
        " definitions but " + Id(static_cast<int>(extensions.size())) +
        " extensions");
  }
  for (size_t i = 0; i < definitions.size(); ++i) {
    const std::string where = "views: view " + Id(static_cast<int>(i));
    if (definitions[i].num_symbols() != query_num_symbols) {
      return Status::InvalidArgument(
          where + ": definition alphabet has " +
          Id(definitions[i].num_symbols()) + " symbols, query has " +
          Id(query_num_symbols) +
          " (query and views must share the signed alphabet)");
    }
    NfaValidateOptions nfa_options;
    nfa_options.require_signed_alphabet = true;
    Status definition_ok = ValidateNfa(definitions[i], nfa_options);
    if (!definition_ok.ok()) {
      return Status::InvalidArgument(where + ": " + definition_ok.message());
    }
    if (i < extensions.size()) {
      for (size_t p = 0; p < extensions[i].size(); ++p) {
        const auto& [a, b] = extensions[i][p];
        if (a < 0 || a >= num_objects || b < 0 || b >= num_objects) {
          return Status::InvalidArgument(
              where + ": extension pair " + Id(static_cast<int>(p)) + " (" +
              Id(a) + ", " + Id(b) + ") names an object outside [0, " +
              Id(num_objects) + ")");
        }
      }
    }
  }
  return Status::Ok();
}

Status ValidateViewNames(const std::vector<std::string>& definition_names,
                         const std::vector<std::string>& extension_names) {
  std::unordered_set<std::string> defined;
  for (const std::string& name : definition_names) {
    if (!defined.insert(name).second) {
      return Status::InvalidArgument("views: view '" + name +
                                     "' is defined twice");
    }
  }
  for (const std::string& name : extension_names) {
    if (defined.find(name) == defined.end()) {
      return Status::InvalidArgument(
          "views: extension references undefined view '" + name +
          "' (dangling view name)");
    }
  }
  return Status::Ok();
}

}  // namespace rpqi
