#include "rewrite/rewriter.h"

#include <chrono>
#include <utility>

#include "analysis/validate.h"
#include "automata/lazy.h"
#include "automata/ops.h"
#include "automata/state_elim.h"
#include "automata/table_dfa.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "regex/printer.h"
#include "rpq/compile.h"
#include "rpq/satisfaction.h"

namespace rpqi {

namespace {

/// Accumulates the enclosing scope's wall-clock time into a stats field.
class StageTimer {
 public:
  explicit StageTimer(int64_t* out_us)
      : out_us_(out_us), start_(Budget::Clock::now()) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() {
    *out_us_ += std::chrono::duration_cast<std::chrono::microseconds>(
                    Budget::Clock::now() - start_)
                    .count();
  }

 private:
  int64_t* out_us_;
  Budget::Clock::time_point start_;
};

RewritingAlphabet MakeAlphabet(const Nfa& query, const std::vector<Nfa>& views) {
  RewritingAlphabet alphabet;
  alphabet.sigma_symbols = query.num_symbols();
  alphabet.num_views = static_cast<int>(views.size());
  for (const Nfa& view : views) {
    RPQI_CHECK_EQ(view.num_symbols(), query.num_symbols())
        << "query and views must share the signed alphabet";
  }
  RPQI_VALIDATE_STAGE(ValidateViewExtensions(query.num_symbols(), views,
                                             /*extensions=*/{},
                                             /*num_objects=*/0));
  return alphabet;
}

/// A1 (Section 4): the Section 3 satisfaction automaton for the query over
/// the combined alphabet, with view symbols transparent and $ as terminator.
TwoWayNfa BuildA1(const Nfa& query, const RewritingAlphabet& alphabet) {
  SatisfactionOptions options;
  options.total_symbols = alphabet.TotalSymbols();
  options.dollar_symbol = alphabet.DollarSymbol();
  for (int view = 0; view < alphabet.num_views; ++view) {
    options.transparent.push_back(alphabet.ViewSymbol(view, false));
    options.transparent.push_back(alphabet.ViewSymbol(view, true));
  }
  return BuildSatisfactionAutomaton(query, options);
}

/// A3 (Section 4): accepts exactly the well-formed words
/// $e₁w₁$e₂w₂$…$eₘwₘ$ with wᵢ ∈ L(def(eᵢ)), where def(e⁻) = inv(def(e)).
Nfa BuildA3(const std::vector<Nfa>& views, const RewritingAlphabet& alphabet) {
  Nfa a3(alphabet.TotalSymbols());
  int start = a3.AddState();
  int chooser = a3.AddState();  // reached after each $; also the end state
  a3.SetInitial(start);
  a3.SetAccepting(chooser);
  a3.AddTransition(start, alphabet.DollarSymbol(), chooser);

  for (int view = 0; view < alphabet.num_views; ++view) {
    for (bool inverse : {false, true}) {
      Nfa definition =
          inverse ? InverseAutomaton(views[view]) : views[view];
      definition = RemoveEpsilon(definition);
      int offset = a3.NumStates();
      // lint: allow-unbudgeted linear in the view definitions
      for (int s = 0; s < definition.NumStates(); ++s) a3.AddState();
      for (int s = 0; s < definition.NumStates(); ++s) {
        for (const Nfa::Transition& t : definition.TransitionsFrom(s)) {
          a3.AddTransition(offset + s, t.symbol, offset + t.to);
        }
        if (definition.IsInitial(s)) {
          a3.AddTransition(chooser, alphabet.ViewSymbol(view, inverse),
                           offset + s);
        }
        if (definition.IsAccepting(s)) {
          a3.AddTransition(offset + s, alphabet.DollarSymbol(), chooser);
        }
      }
    }
  }
  return a3;
}

/// Symbol mapping for the projection onto Σ_E± (view symbols keep their
/// Σ_E± id, everything else is erased).
std::vector<int> ProjectionMapping(const RewritingAlphabet& alphabet) {
  std::vector<int> mapping(alphabet.TotalSymbols(), kEpsilon);
  for (int view = 0; view < alphabet.num_views; ++view) {
    for (bool inverse : {false, true}) {
      int symbol = alphabet.ViewSymbol(view, inverse);
      mapping[symbol] = alphabet.ViewAlphabetId(symbol);
    }
  }
  return mapping;
}

/// The exact Theorem 7 pipeline. `stats` is an out-parameter so a failed run
/// still reports the sizes/timings of the stages it completed.
StatusOr<MaximalRewriting> ComputeExactRewriting(
    const Nfa& query, const std::vector<Nfa>& views,
    const RewritingOptions& options, const RewritingAlphabet& alphabet,
    RewritingStats* stats) {
  static const obs::Counter runs("rewrite.exact_runs");
  obs::Span pipeline_span("rewrite.pipeline");
  runs.Increment();
  RPQI_RETURN_IF_ERROR(BudgetCheck(options.budget));

  TwoWayNfa a1(0);
  Nfa a3(0);
  {
    StageTimer timer(&stats->a1_build_us);
    {
      obs::Span span("rewrite.A1");
      a1 = BuildA1(query, alphabet);
      span.Note("states", a1.NumStates());
    }
    {
      obs::Span span("rewrite.A3");
      a3 = BuildA3(views, alphabet);
      span.Note("states", a3.NumStates());
    }
  }
  stats->a1_states = a1.NumStates();
  stats->a3_states = a3.NumStates();
  // A1 must keep its final state stuck (satisfaction.cc group 3) and A3 must
  // be an ε-free conformance automaton over the combined alphabet; a violation
  // here silently corrupts the complement/intersection stages downstream.
  {
    TwoWayValidateOptions a1_options;
    a1_options.require_stuck_accepting = true;
    a1_options.expected_num_symbols = alphabet.TotalSymbols();
    RPQI_VALIDATE_STAGE(ValidateTwoWay(a1, a1_options));
    NfaValidateOptions a3_options;
    a3_options.require_epsilon_free = true;
    a3_options.require_initial_state = true;
    a3_options.expected_num_symbols = alphabet.TotalSymbols();
    RPQI_VALIDATE_STAGE(ValidateNfa(a3, a3_options));
  }

  // A2 ∩ A3 materialized lazily: A2 is the complement of A1 obtained by
  // flipping the deterministic table translation.
  LazyTableDfa a2(a1, /*complement=*/true);
  LazySubsetDfa a3_dfa(a3);
  LazyProductDfa product({&a2, &a3_dfa});
  StatusOr<Dfa> product_dfa = [&] {
    StageTimer timer(&stats->product_us);
    obs::Span span("rewrite.A2xA3");
    auto result = MaterializeLazyDfa(&product, options.max_product_states,
                                     options.budget);
    span.Note("a2_states_discovered", a2.NumDiscoveredStates());
    if (result.ok()) span.Note("states", result->NumStates());
    return result;
  }();
  stats->a2_states_discovered = a2.NumDiscoveredStates();
  if (!product_dfa.ok()) return product_dfa.status();
  stats->product_states = product_dfa->NumStates();
  {
    DfaValidateOptions product_options;
    product_options.expected_num_symbols = alphabet.TotalSymbols();
    RPQI_VALIDATE_STAGE(ValidateDfa(*product_dfa, product_options));
  }

  // A4: project onto Σ_E±, so it accepts exactly the *bad* view words.
  Nfa a4(0);
  {
    StageTimer timer(&stats->projection_us);
    obs::Span span("rewrite.A4");
    a4 = Trim(Project(DfaToNfa(*product_dfa), ProjectionMapping(alphabet),
                      2 * alphabet.num_views));
    span.Note("states", a4.NumStates());
  }
  stats->a4_states = a4.NumStates();
  {
    // A4 lives over Σ_E± (one forward/inverse symbol pair per view).
    NfaValidateOptions a4_options;
    a4_options.require_signed_alphabet = true;
    a4_options.expected_num_symbols = 2 * alphabet.num_views;
    RPQI_VALIDATE_STAGE(ValidateNfa(a4, a4_options));
  }

  // R = complement of A4.
  StageTimer timer(&stats->complement_us);
  obs::Span r_span("rewrite.R");
  StatusOr<Dfa> a4_dfa = DeterminizeWithLimit(a4, options.max_subset_states,
                                              options.budget, options.threads);
  if (!a4_dfa.ok()) return a4_dfa.status();
  RPQI_RETURN_IF_ERROR(BudgetCheck(options.budget));
  Dfa rewriting = ComplementDfa(*a4_dfa);
  if (options.minimize_result) rewriting = Minimize(rewriting);
  stats->rewriting_states = rewriting.NumStates();
  r_span.Note("states", rewriting.NumStates());
  {
    // The rewriting must be a *complete* DFA over Σ_E±: complementation is
    // only correct when no (state, symbol) edge is missing.
    DfaValidateOptions rewriting_options;
    rewriting_options.require_total = true;
    rewriting_options.expected_num_symbols = 2 * alphabet.num_views;
    RPQI_VALIDATE_STAGE(ValidateDfa(rewriting, rewriting_options));
  }

  MaximalRewriting result;
  result.dfa = std::move(rewriting);
  result.stats = *stats;
  result.empty = !ShortestAcceptedWord(DfaToNfa(result.dfa)).has_value();
  return result;
}

/// Graceful degradation (motivated by the approximate-rewriting line of work):
/// certify view words one at a time with the on-the-fly membership check and
/// return a DFA accepting exactly the certified words. Sound by construction —
/// every accepted word passed IsWordInMaximalRewriting — merely incomplete.
StatusOr<MaximalRewriting> ComputePartialRewriting(
    const Nfa& query, const std::vector<Nfa>& views,
    const RewritingOptions& options, const RewritingAlphabet& alphabet,
    Status cause, RewritingStats stats) {
  static const obs::Counter fallbacks("rewrite.partial_fallbacks");
  obs::Span span("rewrite.partial");
  fallbacks.Increment();
  StageTimer timer(&stats.partial_us);
  // The fallback runs on a grace budget: the same cancellation flag, a reset
  // state quota, and a deadline of 2x the originally granted window — so a
  // caller that asked for T ms observes a hard bound of ~2T overall.
  Budget grace_storage;
  Budget* grace = nullptr;
  if (options.budget != nullptr) {
    grace_storage = options.budget->GraceBudget(2.0);
    grace = &grace_storage;
  }

  const int num_view_symbols = 2 * alphabet.num_views;
  std::vector<std::vector<int>> certified;
  std::vector<std::vector<int>> frontier = {{}};  // words of current length
  int completed_length = -1;
  bool truncated = false;
  for (int length = 0; length <= options.partial_max_word_length && !truncated;
       ++length) {
    for (const std::vector<int>& word : frontier) {
      if (stats.partial_words_checked >= options.partial_max_words) {
        truncated = true;
        break;
      }
      ++stats.partial_words_checked;
      StatusOr<bool> in_rewriting = IsWordInMaximalRewritingWithBudget(
          query, views, word, options.max_subset_states, grace);
      if (!in_rewriting.ok()) {
        // Cancellation always aborts; any other exhaustion keeps the words
        // certified so far (still a sound under-approximation).
        if (in_rewriting.status().code() == Status::Code::kCancelled) {
          return in_rewriting.status();
        }
        truncated = true;
        break;
      }
      if (*in_rewriting) certified.push_back(word);
    }
    if (truncated) break;
    completed_length = length;
    if (length == options.partial_max_word_length) break;
    std::vector<std::vector<int>> next;
    next.reserve(frontier.size() * num_view_symbols);
    for (const std::vector<int>& word : frontier) {
      for (int symbol = 0; symbol < num_view_symbols; ++symbol) {
        std::vector<int> extended = word;
        extended.push_back(symbol);
        next.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
  }

  // Assemble the finite certified language as a DFA over Σ_E±.
  Nfa language(num_view_symbols);
  if (certified.empty()) {
    int state = language.AddState();
    language.SetInitial(state);
  }
  for (const std::vector<int>& word : certified) {
    language = UnionNfa(language, SingleWordNfa(num_view_symbols, word));
  }
  // A finite language of ≤ partial_max_words short words determinizes in
  // O(total length) states; no limit needed.
  StatusOr<Dfa> dfa =
      DeterminizeWithLimit(language, int64_t{1} << 24, /*budget=*/nullptr);
  if (!dfa.ok()) return dfa.status();

  MaximalRewriting result;
  result.dfa = Minimize(*dfa);
  result.empty = certified.empty();
  result.exhaustive = false;
  result.partial_word_length = completed_length < 0 ? 0 : completed_length;
  result.degradation_cause = std::move(cause);
  stats.rewriting_states = result.dfa.NumStates();
  result.stats = stats;
  return result;
}

}  // namespace

StatusOr<MaximalRewriting> ComputeMaximalRewriting(
    const Nfa& query, const std::vector<Nfa>& views,
    const RewritingOptions& options) {
  RewritingAlphabet alphabet = MakeAlphabet(query, views);
  RewritingStats stats;
  StatusOr<MaximalRewriting> exact =
      ComputeExactRewriting(query, views, options, alphabet, &stats);
  if (exact.ok()) return exact;
  const Status& cause = exact.status();
  // Degrade only on resource/deadline exhaustion: cancellation means the
  // caller no longer wants an answer, and invalid input has no partial form.
  if (!options.allow_partial ||
      cause.code() == Status::Code::kCancelled ||
      cause.code() == Status::Code::kInvalidArgument) {
    return exact;
  }
  return ComputePartialRewriting(query, views, options, alphabet, cause,
                                 stats);
}

StatusOr<bool> IsWordInMaximalRewritingWithBudget(
    const Nfa& query, const std::vector<Nfa>& views,
    const std::vector<int>& view_word, int64_t max_states, Budget* budget) {
  RewritingAlphabet alphabet = MakeAlphabet(query, views);
  const int total = alphabet.TotalSymbols();
  const int dollar = alphabet.DollarSymbol();

  // W = $ e₁ L(def(e₁)) $ … $ eₘ L(def(eₘ)) $ for this specific view word.
  Nfa w = SingleWordNfa(total, {dollar});
  for (int e : view_word) {
    RPQI_CHECK(0 <= e && e < 2 * alphabet.num_views);
    int view = e / 2;
    bool inverse = (e % 2) != 0;
    Nfa definition = inverse ? InverseAutomaton(views[view]) : views[view];
    w = Concat(w, SingleWordNfa(total, {alphabet.ViewSymbol(view, inverse)}));
    w = Concat(w, WidenAlphabet(definition, total));
    w = Concat(w, SingleWordNfa(total, {dollar}));
  }

  // e₁…eₘ ∈ R iff every word of W satisfies the query, i.e. W ∩ comp(A1) = ∅.
  TwoWayNfa a1 = BuildA1(query, alphabet);
  LazySubsetDfa w_dfa(w);
  LazyTableDfa not_a1(a1, /*complement=*/true);
  LazyProductDfa product({&w_dfa, &not_a1});
  EmptinessResult result = FindAcceptedWord(&product, max_states, budget);
  if (result.outcome == EmptinessResult::Outcome::kLimitExceeded) {
    return result.status;
  }
  return result.outcome == EmptinessResult::Outcome::kEmpty;
}

bool IsWordInMaximalRewriting(const Nfa& query, const std::vector<Nfa>& views,
                              const std::vector<int>& view_word) {
  StatusOr<bool> result = IsWordInMaximalRewritingWithBudget(
      query, views, view_word, /*max_states=*/int64_t{1} << 24);
  RPQI_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

StatusOr<bool> MaximalRewritingNonEmpty(const Nfa& query,
                                        const std::vector<Nfa>& views,
                                        const RewritingOptions& options) {
  RewritingAlphabet alphabet = MakeAlphabet(query, views);

  // Fully on the fly: R ≠ ∅ iff A4 is not universal over Σ_E±, i.e. the
  // complemented lazy image-subset automaton of (A2 ∩ A3) accepts some word.
  TwoWayNfa a1 = BuildA1(query, alphabet);
  Nfa a3 = BuildA3(views, alphabet);
  LazyTableDfa a2(a1, /*complement=*/true);
  LazySubsetDfa a3_dfa(a3);
  LazyProductDfa product({&a2, &a3_dfa});
  LazyImageSubsetDfa not_a4(&product, ProjectionMapping(alphabet),
                            2 * alphabet.num_views, /*complement=*/true);

  EmptinessResult result =
      FindAcceptedWord(&not_a4, options.max_subset_states, options.budget);
  if (result.outcome == EmptinessResult::Outcome::kLimitExceeded) {
    return result.status;
  }
  return result.outcome == EmptinessResult::Outcome::kFoundWord;
}

std::string RewritingToString(const Dfa& rewriting,
                              const std::vector<std::string>& view_names) {
  RPQI_CHECK_EQ(static_cast<int>(view_names.size()) * 2,
                rewriting.num_symbols());
  std::vector<RegexPtr> atoms;
  atoms.reserve(rewriting.num_symbols());
  for (size_t view = 0; view < view_names.size(); ++view) {
    atoms.push_back(RAtom(view_names[view], false));
    atoms.push_back(RAtom(view_names[view], true));
  }
  return RegexToString(NfaToRegex(DfaToNfa(rewriting), atoms));
}

}  // namespace rpqi
