#include "rewrite/rewriter.h"

#include <utility>

#include "automata/lazy.h"
#include "automata/ops.h"
#include "automata/state_elim.h"
#include "automata/table_dfa.h"
#include "regex/printer.h"
#include "rpq/compile.h"
#include "rpq/satisfaction.h"

namespace rpqi {

namespace {

RewritingAlphabet MakeAlphabet(const Nfa& query, const std::vector<Nfa>& views) {
  RewritingAlphabet alphabet;
  alphabet.sigma_symbols = query.num_symbols();
  alphabet.num_views = static_cast<int>(views.size());
  for (const Nfa& view : views) {
    RPQI_CHECK_EQ(view.num_symbols(), query.num_symbols())
        << "query and views must share the signed alphabet";
  }
  return alphabet;
}

/// A1 (Section 4): the Section 3 satisfaction automaton for the query over
/// the combined alphabet, with view symbols transparent and $ as terminator.
TwoWayNfa BuildA1(const Nfa& query, const RewritingAlphabet& alphabet) {
  SatisfactionOptions options;
  options.total_symbols = alphabet.TotalSymbols();
  options.dollar_symbol = alphabet.DollarSymbol();
  for (int view = 0; view < alphabet.num_views; ++view) {
    options.transparent.push_back(alphabet.ViewSymbol(view, false));
    options.transparent.push_back(alphabet.ViewSymbol(view, true));
  }
  return BuildSatisfactionAutomaton(query, options);
}

/// A3 (Section 4): accepts exactly the well-formed words
/// $e₁w₁$e₂w₂$…$eₘwₘ$ with wᵢ ∈ L(def(eᵢ)), where def(e⁻) = inv(def(e)).
Nfa BuildA3(const std::vector<Nfa>& views, const RewritingAlphabet& alphabet) {
  Nfa a3(alphabet.TotalSymbols());
  int start = a3.AddState();
  int chooser = a3.AddState();  // reached after each $; also the end state
  a3.SetInitial(start);
  a3.SetAccepting(chooser);
  a3.AddTransition(start, alphabet.DollarSymbol(), chooser);

  for (int view = 0; view < alphabet.num_views; ++view) {
    for (bool inverse : {false, true}) {
      Nfa definition =
          inverse ? InverseAutomaton(views[view]) : views[view];
      definition = RemoveEpsilon(definition);
      int offset = a3.NumStates();
      for (int s = 0; s < definition.NumStates(); ++s) a3.AddState();
      for (int s = 0; s < definition.NumStates(); ++s) {
        for (const Nfa::Transition& t : definition.TransitionsFrom(s)) {
          a3.AddTransition(offset + s, t.symbol, offset + t.to);
        }
        if (definition.IsInitial(s)) {
          a3.AddTransition(chooser, alphabet.ViewSymbol(view, inverse),
                           offset + s);
        }
        if (definition.IsAccepting(s)) {
          a3.AddTransition(offset + s, alphabet.DollarSymbol(), chooser);
        }
      }
    }
  }
  return a3;
}

/// Symbol mapping for the projection onto Σ_E± (view symbols keep their
/// Σ_E± id, everything else is erased).
std::vector<int> ProjectionMapping(const RewritingAlphabet& alphabet) {
  std::vector<int> mapping(alphabet.TotalSymbols(), kEpsilon);
  for (int view = 0; view < alphabet.num_views; ++view) {
    for (bool inverse : {false, true}) {
      int symbol = alphabet.ViewSymbol(view, inverse);
      mapping[symbol] = alphabet.ViewAlphabetId(symbol);
    }
  }
  return mapping;
}

}  // namespace

StatusOr<MaximalRewriting> ComputeMaximalRewriting(
    const Nfa& query, const std::vector<Nfa>& views,
    const RewritingOptions& options) {
  RewritingAlphabet alphabet = MakeAlphabet(query, views);
  RewritingStats stats;

  TwoWayNfa a1 = BuildA1(query, alphabet);
  stats.a1_states = a1.NumStates();

  Nfa a3 = BuildA3(views, alphabet);
  stats.a3_states = a3.NumStates();

  // A2 ∩ A3 materialized lazily: A2 is the complement of A1 obtained by
  // flipping the deterministic table translation.
  LazyTableDfa a2(a1, /*complement=*/true);
  LazySubsetDfa a3_dfa(a3);
  LazyProductDfa product({&a2, &a3_dfa});
  StatusOr<Dfa> product_dfa =
      MaterializeLazyDfa(&product, options.max_product_states);
  if (!product_dfa.ok()) return product_dfa.status();
  stats.a2_states_discovered = a2.NumDiscoveredStates();
  stats.product_states = product_dfa->NumStates();

  // A4: project onto Σ_E±, so it accepts exactly the *bad* view words.
  Nfa a4 = Trim(Project(DfaToNfa(*product_dfa), ProjectionMapping(alphabet),
                        2 * alphabet.num_views));
  stats.a4_states = a4.NumStates();

  // R = complement of A4.
  StatusOr<Dfa> a4_dfa = DeterminizeWithLimit(a4, options.max_subset_states);
  if (!a4_dfa.ok()) return a4_dfa.status();
  Dfa rewriting = ComplementDfa(*a4_dfa);
  if (options.minimize_result) rewriting = Minimize(rewriting);
  stats.rewriting_states = rewriting.NumStates();

  MaximalRewriting result{std::move(rewriting), false, stats};
  result.empty = !ShortestAcceptedWord(DfaToNfa(result.dfa)).has_value();
  return result;
}

bool IsWordInMaximalRewriting(const Nfa& query, const std::vector<Nfa>& views,
                              const std::vector<int>& view_word) {
  RewritingAlphabet alphabet = MakeAlphabet(query, views);
  const int total = alphabet.TotalSymbols();
  const int dollar = alphabet.DollarSymbol();

  // W = $ e₁ L(def(e₁)) $ … $ eₘ L(def(eₘ)) $ for this specific view word.
  Nfa w = SingleWordNfa(total, {dollar});
  for (int e : view_word) {
    RPQI_CHECK(0 <= e && e < 2 * alphabet.num_views);
    int view = e / 2;
    bool inverse = (e % 2) != 0;
    Nfa definition = inverse ? InverseAutomaton(views[view]) : views[view];
    w = Concat(w, SingleWordNfa(total, {alphabet.ViewSymbol(view, inverse)}));
    w = Concat(w, WidenAlphabet(definition, total));
    w = Concat(w, SingleWordNfa(total, {dollar}));
  }

  // e₁…eₘ ∈ R iff every word of W satisfies the query, i.e. W ∩ comp(A1) = ∅.
  TwoWayNfa a1 = BuildA1(query, alphabet);
  LazySubsetDfa w_dfa(w);
  LazyTableDfa not_a1(a1, /*complement=*/true);
  LazyProductDfa product({&w_dfa, &not_a1});
  EmptinessResult result =
      FindAcceptedWord(&product, /*max_states=*/int64_t{1} << 24);
  RPQI_CHECK(result.outcome != EmptinessResult::Outcome::kLimitExceeded);
  return result.outcome == EmptinessResult::Outcome::kEmpty;
}

StatusOr<bool> MaximalRewritingNonEmpty(const Nfa& query,
                                        const std::vector<Nfa>& views,
                                        const RewritingOptions& options) {
  RewritingAlphabet alphabet = MakeAlphabet(query, views);

  // Fully on the fly: R ≠ ∅ iff A4 is not universal over Σ_E±, i.e. the
  // complemented lazy image-subset automaton of (A2 ∩ A3) accepts some word.
  TwoWayNfa a1 = BuildA1(query, alphabet);
  Nfa a3 = BuildA3(views, alphabet);
  LazyTableDfa a2(a1, /*complement=*/true);
  LazySubsetDfa a3_dfa(a3);
  LazyProductDfa product({&a2, &a3_dfa});
  LazyImageSubsetDfa not_a4(&product, ProjectionMapping(alphabet),
                            2 * alphabet.num_views, /*complement=*/true);

  EmptinessResult result = FindAcceptedWord(&not_a4, options.max_subset_states);
  if (result.outcome == EmptinessResult::Outcome::kLimitExceeded) {
    return Status::ResourceExhausted(
        "nonemptiness search exceeded its state budget");
  }
  return result.outcome == EmptinessResult::Outcome::kFoundWord;
}

std::string RewritingToString(const Dfa& rewriting,
                              const std::vector<std::string>& view_names) {
  RPQI_CHECK_EQ(static_cast<int>(view_names.size()) * 2,
                rewriting.num_symbols());
  std::vector<RegexPtr> atoms;
  atoms.reserve(rewriting.num_symbols());
  for (size_t view = 0; view < view_names.size(); ++view) {
    atoms.push_back(RAtom(view_names[view], false));
    atoms.push_back(RAtom(view_names[view], true));
  }
  return RegexToString(NfaToRegex(DfaToNfa(rewriting), atoms));
}

}  // namespace rpqi
