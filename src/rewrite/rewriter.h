#ifndef RPQI_REWRITE_REWRITER_H_
#define RPQI_REWRITE_REWRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "base/status.h"

namespace rpqi {

/// Describes the combined word alphabet used by the Section 4 constructions:
/// Σ± first, then the signed view alphabet Σ_E±, then the $ separator.
/// For k views, view i owns symbols base+2i (e_i) and base+2i+1 (e_i⁻) where
/// base = |Σ±|; the final symbol is $.
struct RewritingAlphabet {
  int sigma_symbols = 0;  // |Σ±|
  int num_views = 0;      // k

  int TotalSymbols() const { return sigma_symbols + 2 * num_views + 1; }
  int DollarSymbol() const { return sigma_symbols + 2 * num_views; }
  int ViewSymbol(int view, bool inverse) const {
    return sigma_symbols + 2 * view + (inverse ? 1 : 0);
  }
  bool IsViewSymbol(int symbol) const {
    return symbol >= sigma_symbols && symbol < DollarSymbol();
  }
  /// Maps a combined-alphabet view symbol to its id in Σ_E± ([0, 2k)).
  int ViewAlphabetId(int symbol) const { return symbol - sigma_symbols; }
};

/// Resource limits for the (provably worst-case doubly exponential)
/// constructions. Exceeding a limit yields Status::ResourceExhausted rather
/// than unbounded memory use.
struct RewritingOptions {
  int64_t max_product_states = int64_t{1} << 20;
  int64_t max_subset_states = int64_t{1} << 20;
  bool minimize_result = true;
};

/// Size accounting for every stage of the pipeline (Theorem 7's objects).
struct RewritingStats {
  int a1_states = 0;                 // two-way automaton A1
  int a3_states = 0;                 // structure/conformance NFA A3
  int64_t a2_states_discovered = 0;  // lazily discovered states of A2
  int product_states = 0;            // materialized A2 ∩ A3
  int a4_states = 0;                 // after projection onto Σ_E±
  int rewriting_states = 0;          // final DFA for the maximal rewriting
};

/// The maximal rewriting R_{E,E0} of Theorem 6: a DFA over Σ_E± (2k symbols,
/// view i forward = 2i, inverse = 2i+1) accepting exactly the view words all
/// of whose expansions satisfy the query.
struct MaximalRewriting {
  Dfa dfa;
  bool empty = false;  // true iff the rewriting language is empty
  RewritingStats stats;
};

/// Computes the maximal rewriting of `query` w.r.t. `views` (Theorems 6/7).
/// All automata are over the same Σ±. The pipeline follows the paper:
///   A1: two-way automaton accepting $e₁w₁$…$eₘwₘ$ whose payload w₁…wₘ
///       satisfies the query (built from the Section 3 construction with
///       view symbols transparent);
///   A2: its complement, via the deterministic table translation, on the fly;
///   A3: one-way automaton enforcing the block structure and wᵢ ∈ L(def(eᵢ));
///   A4: projection of A2 ∩ A3 onto the view symbols (the *bad* view words);
///   R : complement of A4.
StatusOr<MaximalRewriting> ComputeMaximalRewriting(
    const Nfa& query, const std::vector<Nfa>& views,
    const RewritingOptions& options = {});

/// Decides membership of a single view word in the maximal rewriting without
/// materializing it: e₁…eₘ ∈ R iff L($e₁·def(e₁)·$…$) ⊆ L(A1). Symbols of
/// `view_word` are in Σ_E± ids ([0, 2k)). Used for cross-validation and for
/// the on-the-fly ablation.
bool IsWordInMaximalRewriting(const Nfa& query, const std::vector<Nfa>& views,
                              const std::vector<int>& view_word);

/// Theorem 8 check, fully on the fly: is the maximal rewriting nonempty?
/// Searches for a view word rejected by A4 through a lazy subset construction
/// over the lazy projected product — no automaton is materialized.
StatusOr<bool> MaximalRewritingNonEmpty(const Nfa& query,
                                        const std::vector<Nfa>& views,
                                        const RewritingOptions& options = {});

/// Pretty-prints the rewriting as an RPQI expression over the view names.
std::string RewritingToString(const Dfa& rewriting,
                              const std::vector<std::string>& view_names);

}  // namespace rpqi

#endif  // RPQI_REWRITE_REWRITER_H_
