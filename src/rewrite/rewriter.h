#ifndef RPQI_REWRITE_REWRITER_H_
#define RPQI_REWRITE_REWRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "base/budget.h"
#include "base/status.h"

namespace rpqi {

/// Describes the combined word alphabet used by the Section 4 constructions:
/// Σ± first, then the signed view alphabet Σ_E±, then the $ separator.
/// For k views, view i owns symbols base+2i (e_i) and base+2i+1 (e_i⁻) where
/// base = |Σ±|; the final symbol is $.
struct RewritingAlphabet {
  int sigma_symbols = 0;  // |Σ±|
  int num_views = 0;      // k

  int TotalSymbols() const { return sigma_symbols + 2 * num_views + 1; }
  int DollarSymbol() const { return sigma_symbols + 2 * num_views; }
  int ViewSymbol(int view, bool inverse) const {
    return sigma_symbols + 2 * view + (inverse ? 1 : 0);
  }
  bool IsViewSymbol(int symbol) const {
    return symbol >= sigma_symbols && symbol < DollarSymbol();
  }
  /// Maps a combined-alphabet view symbol to its id in Σ_E± ([0, 2k)).
  int ViewAlphabetId(int symbol) const { return symbol - sigma_symbols; }
};

/// Resource limits for the (provably worst-case doubly exponential)
/// constructions. Exceeding a limit yields Status::ResourceExhausted rather
/// than unbounded memory use; a Budget additionally enforces a wall-clock
/// deadline and cooperative cancellation across every pipeline stage.
struct RewritingOptions {
  int64_t max_product_states = int64_t{1} << 20;
  int64_t max_subset_states = int64_t{1} << 20;
  bool minimize_result = true;
  /// Optional execution budget (borrowed, may be null). Shared by all stages:
  /// deadline/cancellation are checked in every exponential loop and
  /// discovered states are charged against its quota.
  Budget* budget = nullptr;
  /// Graceful degradation: when the exact pipeline exhausts its budget (state
  /// cap or deadline — not cancellation), fall back to a *certified
  /// under-approximation* instead of failing dry: every view word of length
  /// ≤ partial_max_word_length is validated with the on-the-fly
  /// IsWordInMaximalRewriting check, and the returned DFA accepts exactly the
  /// certified words (flagged `exhaustive = false`).
  bool allow_partial = true;
  int partial_max_word_length = 3;
  int64_t partial_max_words = 2048;
  /// Worker threads for the A4 subset-construction frontier (see
  /// DeterminizeWithLimit): 1 = serial, <= 0 = the process-wide default from
  /// SetGlobalThreadCount. Results are bit-identical to the serial path.
  int threads = 1;
};

/// Size and per-stage wall-clock accounting for the pipeline (Theorem 7's
/// objects). Stage timings are in microseconds.
struct RewritingStats {
  int a1_states = 0;                 // two-way automaton A1
  int a3_states = 0;                 // structure/conformance NFA A3
  int64_t a2_states_discovered = 0;  // lazily discovered states of A2
  int product_states = 0;            // materialized A2 ∩ A3
  int a4_states = 0;                 // after projection onto Σ_E±
  int rewriting_states = 0;          // final DFA for the maximal rewriting
  int64_t a1_build_us = 0;           // A1/A3 construction
  int64_t product_us = 0;            // A2 ∩ A3 lazy materialization
  int64_t projection_us = 0;         // A4 projection + trim
  int64_t complement_us = 0;         // determinize + complement + minimize
  int64_t partial_us = 0;            // certified-partial fallback, if taken
  int64_t partial_words_checked = 0;  // words probed by the fallback
};

/// The maximal rewriting R_{E,E0} of Theorem 6: a DFA over Σ_E± (2k symbols,
/// view i forward = 2i, inverse = 2i+1) accepting exactly the view words all
/// of whose expansions satisfy the query.
struct MaximalRewriting {
  Dfa dfa{0, 1};
  bool empty = false;  // true iff the rewriting language is empty
  /// False when the budget ran out and `dfa` is only a certified
  /// under-approximation: L(dfa) ⊆ L(maximal rewriting), with every accepted
  /// word individually validated by IsWordInMaximalRewriting. All words up to
  /// `partial_word_length` letters were examined (longer words are absent).
  bool exhaustive = true;
  int partial_word_length = 0;
  /// Why the exact pipeline stopped (Ok when exhaustive).
  Status degradation_cause;
  RewritingStats stats;
};

/// Computes the maximal rewriting of `query` w.r.t. `views` (Theorems 6/7).
/// All automata are over the same Σ±. The pipeline follows the paper:
///   A1: two-way automaton accepting $e₁w₁$…$eₘwₘ$ whose payload w₁…wₘ
///       satisfies the query (built from the Section 3 construction with
///       view symbols transparent);
///   A2: its complement, via the deterministic table translation, on the fly;
///   A3: one-way automaton enforcing the block structure and wᵢ ∈ L(def(eᵢ));
///   A4: projection of A2 ∩ A3 onto the view symbols (the *bad* view words);
///   R : complement of A4.
StatusOr<MaximalRewriting> ComputeMaximalRewriting(
    const Nfa& query, const std::vector<Nfa>& views,
    const RewritingOptions& options = {});

/// Decides membership of a single view word in the maximal rewriting without
/// materializing it: e₁…eₘ ∈ R iff L($e₁·def(e₁)·$…$) ⊆ L(A1). Symbols of
/// `view_word` are in Σ_E± ids ([0, 2k)). Used for cross-validation and for
/// the on-the-fly ablation.
bool IsWordInMaximalRewriting(const Nfa& query, const std::vector<Nfa>& views,
                              const std::vector<int>& view_word);

/// Budgeted form of the on-the-fly membership check: returns the budget's
/// status (DeadlineExceeded/Cancelled/ResourceExhausted) instead of aborting
/// when the lazily explored product outgrows `max_states` or the budget.
StatusOr<bool> IsWordInMaximalRewritingWithBudget(
    const Nfa& query, const std::vector<Nfa>& views,
    const std::vector<int>& view_word, int64_t max_states,
    Budget* budget = nullptr);

/// Theorem 8 check, fully on the fly: is the maximal rewriting nonempty?
/// Searches for a view word rejected by A4 through a lazy subset construction
/// over the lazy projected product — no automaton is materialized.
StatusOr<bool> MaximalRewritingNonEmpty(const Nfa& query,
                                        const std::vector<Nfa>& views,
                                        const RewritingOptions& options = {});

/// Pretty-prints the rewriting as an RPQI expression over the view names.
std::string RewritingToString(const Dfa& rewriting,
                              const std::vector<std::string>& view_names);

}  // namespace rpqi

#endif  // RPQI_REWRITE_REWRITER_H_
