#ifndef RPQI_REWRITE_EXACTNESS_H_
#define RPQI_REWRITE_EXACTNESS_H_

#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"

namespace rpqi {

/// Soundness check (Definition 3, for testing the pipeline): is `rewriting`
/// (over Σ_E±) actually a rewriting of `query` w.r.t. `views`, i.e. does
/// ans(expand(R), B) ⊆ ans(query, B) hold on every database? By Theorem 4
/// this reduces to RPQI containment of the expansion in the query.
bool IsSoundRewriting(const Nfa& query, const std::vector<Nfa>& views,
                      const Dfa& rewriting);

/// Exactness check (Theorem 9): does ans(expand(R), B) = ans(query, B) hold
/// on every database? Given a maximal rewriting only the ⊇ direction is open,
/// which is RPQI containment of the query in the expansion.
bool IsExactRewriting(const Nfa& query, const std::vector<Nfa>& views,
                      const Dfa& rewriting);

}  // namespace rpqi

#endif  // RPQI_REWRITE_EXACTNESS_H_
