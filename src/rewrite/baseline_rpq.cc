#include "rewrite/baseline_rpq.h"

#include <utility>

#include "automata/ops.h"

namespace rpqi {

bool IsInverseFree(const Nfa& automaton) {
  for (int s = 0; s < automaton.NumStates(); ++s) {
    for (const Nfa::Transition& t : automaton.TransitionsFrom(s)) {
      if (t.symbol != kEpsilon && (t.symbol % 2) != 0) return false;
    }
  }
  return true;
}

namespace {

/// States of `complement_dfa` reachable from `from` by some word of
/// L(definition) — one product BFS per source state.
std::vector<int> ReachableByDefinition(const Dfa& complement_dfa, int from,
                                       const Nfa& definition) {
  const int def_states = definition.NumStates();
  std::vector<char> visited(
      static_cast<size_t>(complement_dfa.NumStates()) * def_states, 0);
  std::vector<std::pair<int, int>> stack;
  auto visit = [&](int dfa_state, int def_state) {
    size_t index = static_cast<size_t>(dfa_state) * def_states + def_state;
    if (!visited[index]) {
      visited[index] = 1;
      stack.push_back({dfa_state, def_state});
    }
  };
  for (int s : definition.InitialStates()) visit(from, s);

  std::vector<char> result_set(complement_dfa.NumStates(), 0);
  while (!stack.empty()) {
    auto [dfa_state, def_state] = stack.back();
    stack.pop_back();
    if (definition.IsAccepting(def_state)) result_set[dfa_state] = 1;
    for (const Nfa::Transition& t : definition.TransitionsFrom(def_state)) {
      int next = complement_dfa.Next(dfa_state, t.symbol);
      if (next >= 0) visit(next, t.to);
    }
  }
  std::vector<int> result;
  for (int s = 0; s < complement_dfa.NumStates(); ++s) {
    if (result_set[s]) result.push_back(s);
  }
  return result;
}

}  // namespace

StatusOr<MaximalRewriting> ComputeBaselineRpqRewriting(
    const Nfa& query, const std::vector<Nfa>& views,
    const RewritingOptions& options) {
  RPQI_CHECK(IsInverseFree(query)) << "baseline requires an inverse-free query";
  for (const Nfa& view : views) {
    RPQI_CHECK(IsInverseFree(view)) << "baseline requires inverse-free views";
    RPQI_CHECK_EQ(view.num_symbols(), query.num_symbols());
  }
  const int k = static_cast<int>(views.size());
  RewritingStats stats;

  StatusOr<Dfa> determinized =
      DeterminizeWithLimit(query, options.max_subset_states);
  if (!determinized.ok()) return determinized.status();
  Dfa complement = ComplementDfa(*determinized);
  stats.a1_states = complement.NumStates();

  // A4' over Σ_E (k symbols): bad view words — some expansion lands in an
  // accepting state of the complement.
  std::vector<Nfa> eps_free_views;
  eps_free_views.reserve(views.size());
  for (const Nfa& view : views) eps_free_views.push_back(RemoveEpsilon(view));

  Nfa a4(k);
  // lint: allow-unbudgeted same state count as the complement
  for (int s = 0; s < complement.NumStates(); ++s) a4.AddState();
  a4.SetInitial(complement.initial());
  for (int s = 0; s < complement.NumStates(); ++s) {
    a4.SetAccepting(s, complement.IsAccepting(s));
    for (int view = 0; view < k; ++view) {
      for (int to : ReachableByDefinition(complement, s, eps_free_views[view])) {
        a4.AddTransition(s, view, to);
      }
    }
  }
  a4 = Trim(a4);
  stats.a4_states = a4.NumStates();

  StatusOr<Dfa> a4_dfa = DeterminizeWithLimit(a4, options.max_subset_states);
  if (!a4_dfa.ok()) return a4_dfa.status();
  Dfa rewriting_forward = ComplementDfa(*a4_dfa);
  if (options.minimize_result) rewriting_forward = Minimize(rewriting_forward);

  // Re-host on Σ_E± (2k symbols) with inverse view symbols leading to a sink,
  // so the result type matches the RPQI rewriter's.
  Dfa rewriting(2 * k, rewriting_forward.NumStates() + 1);
  int sink = rewriting_forward.NumStates();
  rewriting.SetInitial(rewriting_forward.initial());
  for (int s = 0; s < rewriting_forward.NumStates(); ++s) {
    rewriting.SetAccepting(s, rewriting_forward.IsAccepting(s));
    for (int view = 0; view < k; ++view) {
      int to = rewriting_forward.Next(s, view);
      rewriting.SetNext(s, 2 * view, to < 0 ? sink : to);
      rewriting.SetNext(s, 2 * view + 1, sink);
    }
  }
  for (int symbol = 0; symbol < 2 * k; ++symbol) {
    rewriting.SetNext(sink, symbol, sink);
  }
  stats.rewriting_states = rewriting.NumStates();

  MaximalRewriting result;
  result.dfa = std::move(rewriting);
  result.stats = stats;
  result.empty = !ShortestAcceptedWord(DfaToNfa(result.dfa)).has_value();
  return result;
}

}  // namespace rpqi
