#include "rewrite/eval.h"

#include "automata/ops.h"
#include "graphdb/eval.h"
#include "graphdb/views.h"

namespace rpqi {

std::vector<std::pair<int, int>> EvaluateRewriting(
    const Dfa& rewriting, int num_objects,
    const std::vector<std::vector<std::pair<int, int>>>& extensions) {
  RPQI_CHECK_EQ(rewriting.num_symbols(),
                2 * static_cast<int>(extensions.size()));
  GraphDb view_graph = BuildViewGraph(num_objects, extensions);
  Nfa query = Trim(DfaToNfa(rewriting));
  return EvalRpqiAllPairs(view_graph, query);
}

}  // namespace rpqi
