#include "rewrite/eval.h"

#include <algorithm>
#include <deque>
#include <set>

#include "automata/ops.h"
#include "base/bitset.h"
#include "graphdb/eval.h"
#include "graphdb/views.h"
#include "rewrite/rewriter.h"

namespace rpqi {

std::vector<std::pair<int, int>> EvaluateRewriting(
    const Dfa& rewriting, int num_objects,
    const std::vector<std::vector<std::pair<int, int>>>& extensions) {
  RPQI_CHECK_EQ(rewriting.num_symbols(),
                2 * static_cast<int>(extensions.size()));
  GraphDb view_graph = BuildViewGraph(num_objects, extensions);
  Nfa query = Trim(DfaToNfa(rewriting));
  return EvalRpqiAllPairs(view_graph, query);
}

namespace {

/// A binary relation over the objects, as one adjacency bitset per source.
using Relation = std::vector<Bitset>;

bool RelationEmpty(const Relation& relation) {
  for (const Bitset& row : relation) {
    if (!row.None()) return false;
  }
  return true;
}

/// rows ∘ step: (x,z) iff ∃y with (x,y) ∈ rows and (y,z) ∈ step.
Relation Compose(const Relation& rows, const Relation& step, int num_objects) {
  Relation result(num_objects, Bitset(num_objects));
  for (int x = 0; x < num_objects; ++x) {
    for (int y = rows[x].NextSetBit(0); y >= 0;
         y = rows[x].NextSetBit(y + 1)) {
      for (int z = step[y].NextSetBit(0); z >= 0;
           z = step[y].NextSetBit(z + 1)) {
        result[x].Set(z);
      }
    }
  }
  return result;
}

}  // namespace

StatusOr<DirectViewAnswersResult> DirectViewAnswers(
    const Nfa& query, const std::vector<Nfa>& views, int num_objects,
    const std::vector<std::vector<std::pair<int, int>>>& extensions,
    const DirectViewAnswersOptions& options) {
  RPQI_CHECK_EQ(views.size(), extensions.size());
  const int num_view_symbols = 2 * static_cast<int>(views.size());

  // Per-symbol step relations over the view graph: symbol 2i follows the
  // extension pairs of view i forward, 2i+1 backwards.
  std::vector<Relation> step(num_view_symbols,
                             Relation(num_objects, Bitset(num_objects)));
  for (size_t view = 0; view < extensions.size(); ++view) {
    for (const auto& [a, b] : extensions[view]) {
      RPQI_CHECK(0 <= a && a < num_objects && 0 <= b && b < num_objects);
      step[2 * view][a].Set(b);
      step[2 * view + 1][b].Set(a);
    }
  }

  // BFS over realized view words: each node carries the word and the object
  // relation it denotes; empty relations are pruned (the word labels no
  // semipath, so it can contribute no answers and neither can extensions).
  struct Node {
    std::vector<int> word;
    Relation reach;
  };
  std::deque<Node> queue;
  Relation identity(num_objects, Bitset(num_objects));
  for (int x = 0; x < num_objects; ++x) identity[x].Set(x);
  queue.push_back({{}, std::move(identity)});

  DirectViewAnswersResult result;
  std::set<std::pair<int, int>> answers;
  while (!queue.empty()) {
    if (result.words_checked >= options.max_words) {
      result.exhaustive_to_length = false;
      break;
    }
    Node node = std::move(queue.front());
    queue.pop_front();
    ++result.words_checked;

    StatusOr<bool> certified = IsWordInMaximalRewritingWithBudget(
        query, views, node.word, options.max_states_per_check, options.budget);
    if (!certified.ok()) {
      if (certified.status().code() == Status::Code::kCancelled) {
        return certified.status();
      }
      result.exhaustive_to_length = false;
      break;
    }
    if (*certified) {
      for (int x = 0; x < num_objects; ++x) {
        for (int y = node.reach[x].NextSetBit(0); y >= 0;
             y = node.reach[x].NextSetBit(y + 1)) {
          answers.insert({x, y});
        }
      }
    }
    if (static_cast<int>(node.word.size()) < options.max_word_length) {
      for (int symbol = 0; symbol < num_view_symbols; ++symbol) {
        Relation next = Compose(node.reach, step[symbol], num_objects);
        if (RelationEmpty(next)) continue;
        std::vector<int> word = node.word;
        word.push_back(symbol);
        queue.push_back({std::move(word), std::move(next)});
      }
    }
  }

  result.answers.assign(answers.begin(), answers.end());
  return result;
}

}  // namespace rpqi
