#include "rewrite/expansion.h"

#include "automata/ops.h"
#include "rpq/compile.h"

namespace rpqi {

Nfa ExpandRewriting(const Nfa& rewriting, const std::vector<Nfa>& views) {
  RPQI_CHECK_EQ(rewriting.num_symbols(),
                2 * static_cast<int>(views.size()));
  RPQI_CHECK(!views.empty());
  const int sigma_symbols = views[0].num_symbols();

  Nfa result(sigma_symbols);
  // lint: allow-unbudgeted linear in the rewriting plus its view definitions
  // Host copies of the rewriting's states first.
  for (int s = 0; s < rewriting.NumStates(); ++s) result.AddState();
  for (int s = 0; s < rewriting.NumStates(); ++s) {
    result.SetInitial(s, rewriting.IsInitial(s));
    result.SetAccepting(s, rewriting.IsAccepting(s));
  }
  for (int s = 0; s < rewriting.NumStates(); ++s) {
    for (const Nfa::Transition& t : rewriting.TransitionsFrom(s)) {
      if (t.symbol == kEpsilon) {
        result.AddTransition(s, kEpsilon, t.to);
        continue;
      }
      int view = t.symbol / 2;
      bool inverse = (t.symbol % 2) != 0;
      Nfa definition =
          RemoveEpsilon(inverse ? InverseAutomaton(views[view]) : views[view]);
      int offset = result.NumStates();
      for (int q = 0; q < definition.NumStates(); ++q) result.AddState();
      for (int q = 0; q < definition.NumStates(); ++q) {
        for (const Nfa::Transition& d : definition.TransitionsFrom(q)) {
          result.AddTransition(offset + q, d.symbol, offset + d.to);
        }
        if (definition.IsInitial(q)) {
          result.AddTransition(s, kEpsilon, offset + q);
        }
        if (definition.IsAccepting(q)) {
          result.AddTransition(offset + q, kEpsilon, t.to);
        }
      }
    }
  }
  return RemoveEpsilon(Trim(result));
}

Nfa ExpandRewriting(const Dfa& rewriting, const std::vector<Nfa>& views) {
  return ExpandRewriting(Trim(DfaToNfa(rewriting)), views);
}

}  // namespace rpqi
