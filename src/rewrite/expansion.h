#ifndef RPQI_REWRITE_EXPANSION_H_
#define RPQI_REWRITE_EXPANSION_H_

#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"

namespace rpqi {

/// expand_E(R): substitutes every view edge of the rewriting automaton by the
/// automaton of its definition — forward symbols 2i by def(eᵢ), inverse
/// symbols 2i+1 by inv(def(eᵢ)) — yielding a query over Σ±. `rewriting` is
/// over Σ_E± (2k symbols); the result is over the views' shared Σ±.
Nfa ExpandRewriting(const Nfa& rewriting, const std::vector<Nfa>& views);
Nfa ExpandRewriting(const Dfa& rewriting, const std::vector<Nfa>& views);

}  // namespace rpqi

#endif  // RPQI_REWRITE_EXPANSION_H_
