#include "rewrite/exactness.h"

#include "rewrite/expansion.h"
#include "rpq/containment.h"

namespace rpqi {

bool IsSoundRewriting(const Nfa& query, const std::vector<Nfa>& views,
                      const Dfa& rewriting) {
  Nfa expansion = ExpandRewriting(rewriting, views);
  return RpqiContained(expansion, query);
}

bool IsExactRewriting(const Nfa& query, const std::vector<Nfa>& views,
                      const Dfa& rewriting) {
  Nfa expansion = ExpandRewriting(rewriting, views);
  return RpqiContained(query, expansion);
}

}  // namespace rpqi
