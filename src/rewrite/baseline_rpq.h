#ifndef RPQI_REWRITE_BASELINE_RPQ_H_
#define RPQI_REWRITE_BASELINE_RPQ_H_

#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "base/status.h"
#include "rewrite/rewriter.h"

namespace rpqi {

/// Maximal rewriting for *plain* RPQs (no inverse operator), following the
/// one-way-automaton method of Calvanese, De Giacomo, Lenzerini, Vardi,
/// "Rewriting of regular expressions and regular path queries" (PODS'99,
/// reference [10] of the paper) — the baseline this paper extends.
///
/// For inverse-free queries a word w satisfies E0 iff w ∈ L(E0), so the bad
/// view words are those with an expansion outside L(E0):
///   1. D := determinize(E0), C := complement(D);
///   2. A4' over Σ_E: states of C, an edge q --e--> q' whenever some word of
///      L(def(e)) drives C from q to q';
///   3. R := complement(determinize(A4')) — single-exponential from D.
///
/// Inputs must not mention inverse symbols (odd Σ± ids); the result DFA is
/// over Σ_E forward symbols only, re-hosted on 2k symbols (odd view symbols
/// are dead) so it is directly comparable with ComputeMaximalRewriting.
StatusOr<MaximalRewriting> ComputeBaselineRpqRewriting(
    const Nfa& query, const std::vector<Nfa>& views,
    const RewritingOptions& options = {});

/// True if the automaton uses no inverse (odd) symbols — the applicability
/// condition of the baseline.
bool IsInverseFree(const Nfa& automaton);

}  // namespace rpqi

#endif  // RPQI_REWRITE_BASELINE_RPQ_H_
