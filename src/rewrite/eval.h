#ifndef RPQI_REWRITE_EVAL_H_
#define RPQI_REWRITE_EVAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "base/budget.h"
#include "base/status.h"
#include "graphdb/graph.h"

namespace rpqi {

/// Second phase of view-based query rewriting: evaluates a rewriting (a query
/// over Σ_E±, symbols 2i/2i+1 for view i) over materialized view extensions.
/// Builds the view graph (extension pair (a,b) of view i ⇒ edge a --i--> b)
/// and runs the standard RPQI evaluator on it.
std::vector<std::pair<int, int>> EvaluateRewriting(
    const Dfa& rewriting, int num_objects,
    const std::vector<std::vector<std::pair<int, int>>>& extensions);

/// Options for DirectViewAnswers (the degraded answering path).
struct DirectViewAnswersOptions {
  int max_word_length = 3;
  int64_t max_words = 2048;
  int64_t max_states_per_check = int64_t{1} << 22;
  Budget* budget = nullptr;  // borrowed, may be null
};

struct DirectViewAnswersResult {
  std::vector<std::pair<int, int>> answers;  // sorted, unique
  /// True if every view word of length ≤ max_word_length realized in the
  /// view graph was checked; false if a cap or the budget cut the sweep
  /// short (the answers reported so far remain sound).
  bool exhaustive_to_length = true;
  int64_t words_checked = 0;
};

/// Degraded answering path used when the materialized maximal rewriting is
/// unavailable (budget exhaustion): enumerates the view words of bounded
/// length that actually label semipaths in the view graph, certifies each
/// with the on-the-fly IsWordInMaximalRewriting check, and reports the object
/// pairs connected by certified words. Every reported pair is a certain
/// answer (sound under-approximation of the full rewriting evaluation).
/// Only cancellation aborts with a status; any other budget exhaustion
/// returns the (sound) answers accumulated so far.
StatusOr<DirectViewAnswersResult> DirectViewAnswers(
    const Nfa& query, const std::vector<Nfa>& views, int num_objects,
    const std::vector<std::vector<std::pair<int, int>>>& extensions,
    const DirectViewAnswersOptions& options = {});

}  // namespace rpqi

#endif  // RPQI_REWRITE_EVAL_H_
