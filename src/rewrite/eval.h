#ifndef RPQI_REWRITE_EVAL_H_
#define RPQI_REWRITE_EVAL_H_

#include <utility>
#include <vector>

#include "automata/dfa.h"
#include "graphdb/graph.h"

namespace rpqi {

/// Second phase of view-based query rewriting: evaluates a rewriting (a query
/// over Σ_E±, symbols 2i/2i+1 for view i) over materialized view extensions.
/// Builds the view graph (extension pair (a,b) of view i ⇒ edge a --i--> b)
/// and runs the standard RPQI evaluator on it.
std::vector<std::pair<int, int>> EvaluateRewriting(
    const Dfa& rewriting, int num_objects,
    const std::vector<std::vector<std::pair<int, int>>>& extensions);

}  // namespace rpqi

#endif  // RPQI_REWRITE_EVAL_H_
