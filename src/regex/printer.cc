#include "regex/printer.h"

#include "base/logging.h"

namespace rpqi {

namespace {

// Precedence levels: union (lowest), concat, star/atom (highest).
enum Precedence { kUnionPrec = 0, kConcatPrec = 1, kAtomPrec = 2 };

void Render(const RegexPtr& e, int parent_prec, std::string* out) {
  switch (e->kind) {
    case RegexKind::kEmptySet:
      *out += "%empty";
      return;
    case RegexKind::kEpsilon:
      *out += "%eps";
      return;
    case RegexKind::kAtom:
      *out += e->atom_name;
      if (e->atom_inverse) *out += "^-";
      return;
    case RegexKind::kStar: {
      // The star operand always needs grouping unless it is a bare atom.
      if (e->left->kind == RegexKind::kAtom && !e->left->atom_inverse) {
        Render(e->left, kAtomPrec, out);
      } else {
        *out += "(";
        Render(e->left, kUnionPrec, out);
        *out += ")";
      }
      *out += "*";
      return;
    }
    case RegexKind::kConcat: {
      bool parens = parent_prec > kConcatPrec;
      if (parens) *out += "(";
      Render(e->left, kConcatPrec, out);
      *out += " ";
      Render(e->right, kConcatPrec, out);
      if (parens) *out += ")";
      return;
    }
    case RegexKind::kUnion: {
      bool parens = parent_prec > kUnionPrec;
      if (parens) *out += "(";
      Render(e->left, kUnionPrec, out);
      *out += " | ";
      Render(e->right, kUnionPrec, out);
      if (parens) *out += ")";
      return;
    }
  }
  RPQI_CHECK(false) << "unreachable";
}

}  // namespace

std::string RegexToString(const RegexPtr& e) {
  RPQI_CHECK(e != nullptr);
  std::string out;
  Render(e, kUnionPrec, &out);
  return out;
}

}  // namespace rpqi
