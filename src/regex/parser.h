#ifndef RPQI_REGEX_PARSER_H_
#define RPQI_REGEX_PARSER_H_

#include <string_view>

#include "base/status.h"
#include "regex/ast.h"

namespace rpqi {

/// Parses the textual RPQI syntax into an AST.
///
/// Grammar (whitespace insignificant):
///   alternation := concat ('|' concat)*
///   concat      := repetition+              -- juxtaposition concatenates
///   repetition  := primary ('*' | '+' | '?' | '^-')*
///   primary     := IDENT | '(' alternation ')' | '%empty' | '%eps'
///   IDENT       := [A-Za-z_][A-Za-z0-9_]*
///
/// `^-` is the inverse operator: `p^-` is p⁻; on a parenthesized group it
/// applies the paper's inv() transformation to the whole subexpression.
///
/// Examples:
///   (hasSubmodule^-)* (containsVar | hasSubmodule)     -- the paper's Example 1
///   (a b^-)* c+ (d | %eps)
StatusOr<RegexPtr> ParseRegex(std::string_view text);

/// Parses, aborting on syntax errors. For tests and hard-coded expressions.
RegexPtr MustParseRegex(std::string_view text);

}  // namespace rpqi

#endif  // RPQI_REGEX_PARSER_H_
