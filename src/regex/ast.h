#ifndef RPQI_REGEX_AST_H_
#define RPQI_REGEX_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace rpqi {

/// Node kinds of regular expressions over a signed alphabet Σ± (relation names
/// and their inverses). These are the RPQI expressions of the paper's
/// Section 2; kAtom carries the relation name plus an inverse flag (p vs p⁻).
enum class RegexKind {
  kEmptySet,  // ∅ — denotes the empty language
  kEpsilon,   // ε — the language {ε}
  kAtom,      // p or p⁻
  kConcat,    // e1 · e2
  kUnion,     // e1 ∪ e2
  kStar,      // e*
};

/// Immutable regular-expression node. Build with the factory functions below;
/// share freely (nodes are never mutated after construction).
struct Regex;
using RegexPtr = std::shared_ptr<const Regex>;

struct Regex {
  RegexKind kind = RegexKind::kEmptySet;
  // kAtom only.
  std::string atom_name = {};
  bool atom_inverse = false;
  // kConcat/kUnion: both; kStar: left only.
  RegexPtr left = nullptr;
  RegexPtr right = nullptr;
};

/// ∅ — the empty language.
RegexPtr REmpty();
/// ε — the empty word.
RegexPtr REpsilon();
/// Atom `name`, inverted (p⁻) if `inverse`.
RegexPtr RAtom(std::string name, bool inverse = false);
/// e1 · e2 (with ∅/ε simplifications applied).
RegexPtr RConcat(RegexPtr e1, RegexPtr e2);
/// e1 ∪ e2 (with ∅ simplifications applied).
RegexPtr RUnion(RegexPtr e1, RegexPtr e2);
/// e* (with ∅*/ε* ⇒ ε simplification applied).
RegexPtr RStar(RegexPtr e);
/// e+ = e · e*.
RegexPtr RPlus(RegexPtr e);
/// e? = e ∪ ε.
RegexPtr ROptional(RegexPtr e);

/// The paper's inv() transformation (Section 4): mirrors the expression and
/// flips every atom's inverse flag, so that L(inv(e)) = {inv(w) : w ∈ L(e)}.
RegexPtr Inv(const RegexPtr& e);

/// Number of AST nodes; the "size of the query" for complexity experiments.
int RegexSize(const RegexPtr& e);

/// Collects the distinct relation names mentioned in `e` into `names`.
void CollectAtomNames(const RegexPtr& e, std::vector<std::string>* names);

}  // namespace rpqi

#endif  // RPQI_REGEX_AST_H_
