#include "regex/parser.h"

#include <cctype>
#include <string>

namespace rpqi {

namespace {

/// Recursive-descent parser over a raw character window.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<RegexPtr> Parse() {
    StatusOr<RegexPtr> result = ParseAlternation();
    if (!result.ok()) return result;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    return result;
  }

 private:
  Status Error(const std::string& message) {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(pos_) + " in \"" +
                                   std::string(text_) + "\"");
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWhitespace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool TryConsume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<RegexPtr> ParseAlternation() {
    StatusOr<RegexPtr> left = ParseConcat();
    if (!left.ok()) return left;
    RegexPtr result = left.value();
    while (TryConsume('|')) {
      StatusOr<RegexPtr> right = ParseConcat();
      if (!right.ok()) return right;
      result = RUnion(result, right.value());
    }
    return result;
  }

  static bool StartsPrimary(char c) {
    return c == '(' || c == '%' || c == '_' ||
           std::isalpha(static_cast<unsigned char>(c));
  }

  StatusOr<RegexPtr> ParseConcat() {
    StatusOr<RegexPtr> first = ParseRepetition();
    if (!first.ok()) return first;
    RegexPtr result = first.value();
    while (StartsPrimary(Peek())) {
      StatusOr<RegexPtr> next = ParseRepetition();
      if (!next.ok()) return next;
      result = RConcat(result, next.value());
    }
    return result;
  }

  StatusOr<RegexPtr> ParseRepetition() {
    StatusOr<RegexPtr> primary = ParsePrimary();
    if (!primary.ok()) return primary;
    RegexPtr result = primary.value();
    while (true) {
      char c = Peek();
      if (c == '*') {
        ++pos_;
        result = RStar(result);
      } else if (c == '+') {
        ++pos_;
        result = RPlus(result);
      } else if (c == '?') {
        ++pos_;
        result = ROptional(result);
      } else if (c == '^') {
        ++pos_;
        if (pos_ >= text_.size() || text_[pos_] != '-') {
          return Error("expected '-' after '^'");
        }
        ++pos_;
        result = Inv(result);
      } else {
        break;
      }
    }
    return result;
  }

  StatusOr<RegexPtr> ParsePrimary() {
    char c = Peek();
    if (c == '(') {
      ++pos_;
      StatusOr<RegexPtr> inner = ParseAlternation();
      if (!inner.ok()) return inner;
      if (!TryConsume(')')) return Error("expected ')'");
      return inner;
    }
    if (c == '%') {
      ++pos_;
      std::string word = ConsumeIdent();
      if (word == "eps" || word == "epsilon") return REpsilon();
      if (word == "empty") return REmpty();
      return Error("unknown %-token '%" + word + "'");
    }
    if (c == '_' || std::isalpha(static_cast<unsigned char>(c))) {
      std::string name = ConsumeIdent();
      return RAtom(std::move(name));
    }
    return Error("expected identifier, '(' or %-token");
  }

  std::string ConsumeIdent() {
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '_' || std::isalnum(static_cast<unsigned char>(c))) {
        out += c;
        ++pos_;
      } else {
        break;
      }
    }
    return out;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<RegexPtr> ParseRegex(std::string_view text) {
  return Parser(text).Parse();
}

RegexPtr MustParseRegex(std::string_view text) {
  StatusOr<RegexPtr> result = ParseRegex(text);
  RPQI_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

}  // namespace rpqi
