#include "regex/ast.h"

#include <algorithm>

#include "base/logging.h"

namespace rpqi {

namespace {

RegexPtr MakeNode(Regex node) {
  return std::make_shared<const Regex>(std::move(node));
}

}  // namespace

RegexPtr REmpty() {
  static const RegexPtr kEmpty = MakeNode({.kind = RegexKind::kEmptySet});
  return kEmpty;
}

RegexPtr REpsilon() {
  static const RegexPtr kEpsilon = MakeNode({.kind = RegexKind::kEpsilon});
  return kEpsilon;
}

RegexPtr RAtom(std::string name, bool inverse) {
  RPQI_CHECK(!name.empty());
  return MakeNode({.kind = RegexKind::kAtom,
                   .atom_name = std::move(name),
                   .atom_inverse = inverse});
}

RegexPtr RConcat(RegexPtr e1, RegexPtr e2) {
  RPQI_CHECK(e1 != nullptr);
  RPQI_CHECK(e2 != nullptr);
  if (e1->kind == RegexKind::kEmptySet || e2->kind == RegexKind::kEmptySet) {
    return REmpty();
  }
  if (e1->kind == RegexKind::kEpsilon) return e2;
  if (e2->kind == RegexKind::kEpsilon) return e1;
  return MakeNode({.kind = RegexKind::kConcat,
                   .left = std::move(e1),
                   .right = std::move(e2)});
}

RegexPtr RUnion(RegexPtr e1, RegexPtr e2) {
  RPQI_CHECK(e1 != nullptr);
  RPQI_CHECK(e2 != nullptr);
  if (e1->kind == RegexKind::kEmptySet) return e2;
  if (e2->kind == RegexKind::kEmptySet) return e1;
  return MakeNode({.kind = RegexKind::kUnion,
                   .left = std::move(e1),
                   .right = std::move(e2)});
}

RegexPtr RStar(RegexPtr e) {
  RPQI_CHECK(e != nullptr);
  if (e->kind == RegexKind::kEmptySet || e->kind == RegexKind::kEpsilon) {
    return REpsilon();
  }
  if (e->kind == RegexKind::kStar) return e;
  return MakeNode({.kind = RegexKind::kStar, .left = std::move(e)});
}

RegexPtr RPlus(RegexPtr e) { return RConcat(e, RStar(e)); }

RegexPtr ROptional(RegexPtr e) { return RUnion(std::move(e), REpsilon()); }

RegexPtr Inv(const RegexPtr& e) {
  RPQI_CHECK(e != nullptr);
  switch (e->kind) {
    case RegexKind::kEmptySet:
    case RegexKind::kEpsilon:
      return e;
    case RegexKind::kAtom:
      return RAtom(e->atom_name, !e->atom_inverse);
    case RegexKind::kConcat:
      return RConcat(Inv(e->right), Inv(e->left));
    case RegexKind::kUnion:
      return RUnion(Inv(e->left), Inv(e->right));
    case RegexKind::kStar:
      return RStar(Inv(e->left));
  }
  RPQI_CHECK(false) << "unreachable";
  return nullptr;
}

int RegexSize(const RegexPtr& e) {
  RPQI_CHECK(e != nullptr);
  switch (e->kind) {
    case RegexKind::kEmptySet:
    case RegexKind::kEpsilon:
    case RegexKind::kAtom:
      return 1;
    case RegexKind::kStar:
      return 1 + RegexSize(e->left);
    case RegexKind::kConcat:
    case RegexKind::kUnion:
      return 1 + RegexSize(e->left) + RegexSize(e->right);
  }
  RPQI_CHECK(false) << "unreachable";
  return 0;
}

void CollectAtomNames(const RegexPtr& e, std::vector<std::string>* names) {
  RPQI_CHECK(e != nullptr);
  switch (e->kind) {
    case RegexKind::kEmptySet:
    case RegexKind::kEpsilon:
      return;
    case RegexKind::kAtom:
      if (std::find(names->begin(), names->end(), e->atom_name) ==
          names->end()) {
        names->push_back(e->atom_name);
      }
      return;
    case RegexKind::kStar:
      CollectAtomNames(e->left, names);
      return;
    case RegexKind::kConcat:
    case RegexKind::kUnion:
      CollectAtomNames(e->left, names);
      CollectAtomNames(e->right, names);
      return;
  }
}

}  // namespace rpqi
