#ifndef RPQI_REGEX_PRINTER_H_
#define RPQI_REGEX_PRINTER_H_

#include <string>

#include "regex/ast.h"

namespace rpqi {

/// Renders `e` in the parser's input syntax with minimal parentheses, so that
/// ParseRegex(RegexToString(e)) reproduces an AST with the same language.
std::string RegexToString(const RegexPtr& e);

}  // namespace rpqi

#endif  // RPQI_REGEX_PRINTER_H_
