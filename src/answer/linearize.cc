#include "answer/linearize.h"

#include "automata/ops.h"
#include "rpq/alphabet.h"

namespace rpqi {

Nfa BuildStructureAutomaton(const LinearAlphabet& alphabet) {
  Nfa nfa(alphabet.TotalSymbols());
  int start = nfa.AddState();
  int sep = nfa.AddState();  // after a $; accepting (word may end here)
  int mid = nfa.AddState();  // inside a nonempty payload
  int closed = nfa.AddState();  // after the closing constant
  nfa.SetInitial(start);
  nfa.SetAccepting(sep);
  nfa.AddTransition(start, alphabet.DollarSymbol(), sep);
  nfa.AddTransition(closed, alphabet.DollarSymbol(), sep);

  // One state per object for "block opened with d": an immediately following
  // constant must be d itself (empty payloads may not identify two objects).
  // lint: allow-unbudgeted linear in the instance's object count
  for (int object = 0; object < alphabet.num_objects; ++object) {
    int opened = nfa.AddState();
    int d = alphabet.ObjectSymbol(object);
    nfa.AddTransition(sep, d, opened);
    nfa.AddTransition(opened, d, closed);  // mention block $d d$
    for (int symbol = 0; symbol < alphabet.sigma_symbols; ++symbol) {
      nfa.AddTransition(opened, symbol, mid);
    }
  }
  for (int symbol = 0; symbol < alphabet.sigma_symbols; ++symbol) {
    nfa.AddTransition(mid, symbol, mid);
  }
  for (int object = 0; object < alphabet.num_objects; ++object) {
    nfa.AddTransition(mid, alphabet.ObjectSymbol(object), closed);
  }
  return nfa;
}

Nfa BuildOccurrenceAutomaton(const LinearAlphabet& alphabet, int object) {
  Nfa nfa(alphabet.TotalSymbols());
  int searching = nfa.AddState();
  int found = nfa.AddState();
  nfa.SetInitial(searching);
  nfa.SetAccepting(found);
  for (int symbol = 0; symbol < alphabet.TotalSymbols(); ++symbol) {
    nfa.AddTransition(searching, symbol, searching);
    nfa.AddTransition(found, symbol, found);
  }
  nfa.AddTransition(searching, alphabet.ObjectSymbol(object), found);
  return nfa;
}

TwoWayNfa BuildLinearizedEvalAutomaton(const Nfa& definition_input,
                                       const LinearAlphabet& alphabet,
                                       const LinearEvalSpec& spec) {
  const Nfa definition = RemoveEpsilon(definition_input);
  RPQI_CHECK_EQ(definition.num_symbols(), alphabet.sigma_symbols);
  const int n = definition.NumStates();
  const int total = alphabet.TotalSymbols();

  TwoWayNfa automaton(total);
  // State layout:
  //   [0, n)                      forward query states
  //   [n, 2n)                     backward-mode query states
  //   [2n, 2n + n·objects)        search states ⟨s, d⟩
  //   scan_start                  initial head-positioning sweep
  //   scan_pre_anon               helper: previous cell was a Σ symbol
  //   anon_end_check              helper: peek left to confirm anonymous end
  //   final_state                 sweeps right and accepts past the end
  // lint: allow-unbudgeted state count fixed by the layout above
  for (int s = 0; s < 2 * n + n * alphabet.num_objects; ++s) {
    automaton.AddState();
  }
  const int scan_start = automaton.AddState();
  const int scan_pre_anon = automaton.AddState();
  const int anon_end_check = automaton.AddState();
  const int final_state = automaton.AddState();

  auto backward = [n](int s) { return n + s; };
  auto search = [n, &alphabet](int s, int object) {
    return 2 * n + s * alphabet.num_objects + object;
  };

  automaton.SetInitial(scan_start);
  automaton.SetAccepting(final_state);

  // --- Item 1: turn around into backward mode, from any cell.
  for (int s = 0; s < n; ++s) {
    for (int symbol = 0; symbol < total; ++symbol) {
      automaton.AddTransition(s, symbol, backward(s), Move::kLeft);
    }
  }

  // --- Item 2: query transitions, forward and backward.
  for (int s1 = 0; s1 < n; ++s1) {
    for (const Nfa::Transition& t : definition.TransitionsFrom(s1)) {
      automaton.AddTransition(s1, t.symbol, t.to, Move::kRight);
      automaton.AddTransition(backward(s1),
                              SignedAlphabet::InverseSymbol(t.symbol), t.to,
                              Move::kStay);
    }
  }

  // --- Item 3: head positioning. scan_start sweeps right over the word and
  // nondeterministically anchors the evaluation at a start node.
  for (int symbol = 0; symbol < total; ++symbol) {
    automaton.AddTransition(scan_start, symbol, scan_start, Move::kRight);
  }
  if (spec.start == LinearEvalSpec::Start::kAtConstant) {
    RPQI_CHECK(0 <= spec.start_constant &&
               spec.start_constant < alphabet.num_objects);
    int anchor = alphabet.ObjectSymbol(spec.start_constant);
    for (int s : definition.InitialStates()) {
      automaton.AddTransition(scan_start, anchor, s, Move::kStay);
    }
  } else {
    RPQI_CHECK_EQ(static_cast<int>(spec.excluded_starts.size()),
                  alphabet.num_objects);
    // Non-excluded constants.
    for (int object = 0; object < alphabet.num_objects; ++object) {
      if (spec.excluded_starts[object]) continue;
      for (int s : definition.InitialStates()) {
        automaton.AddTransition(scan_start, alphabet.ObjectSymbol(object), s,
                                Move::kStay);
      }
    }
    // Anonymous nodes: a cell holding a Σ symbol whose left neighbour is also
    // a Σ symbol is the "head on the edge leaving an anonymous node" position.
    for (int symbol = 0; symbol < alphabet.sigma_symbols; ++symbol) {
      automaton.AddTransition(scan_start, symbol, scan_pre_anon, Move::kRight);
    }
    for (int symbol = 0; symbol < alphabet.sigma_symbols; ++symbol) {
      for (int s : definition.InitialStates()) {
        automaton.AddTransition(scan_pre_anon, symbol, s, Move::kStay);
      }
    }
  }

  // --- Item 4: search mode — jump between occurrences of the same constant.
  // Without search mode only the same-occurrence normalizations remain: step
  // right past the constant to read the block it opens, and fold backward
  // mode into forward mode when the head sits on a constant.
  if (spec.use_search_mode) {
    for (int s = 0; s < n; ++s) {
      for (int object = 0; object < alphabet.num_objects; ++object) {
        int d = alphabet.ObjectSymbol(object);
        int sd = search(s, object);
        automaton.AddTransition(s, d, sd, Move::kStay);
        automaton.AddTransition(backward(s), d, sd, Move::kStay);
        for (int symbol = 0; symbol < total; ++symbol) {
          automaton.AddTransition(sd, symbol, sd, Move::kRight);
          automaton.AddTransition(sd, symbol, sd, Move::kLeft);
        }
        // Exit at any occurrence of d: stay put (to finish at d) or step
        // right (to read the first edge of the block that d opens).
        automaton.AddTransition(sd, d, s, Move::kStay);
        automaton.AddTransition(sd, d, s, Move::kRight);
      }
    }
  } else {
    for (int s = 0; s < n; ++s) {
      for (int object = 0; object < alphabet.num_objects; ++object) {
        int d = alphabet.ObjectSymbol(object);
        automaton.AddTransition(s, d, s, Move::kRight);
        automaton.AddTransition(backward(s), d, s, Move::kStay);
      }
    }
  }

  // --- Item 5: acceptance.
  auto accept_from = [&](int s, int symbol, Move move) {
    automaton.AddTransition(s, symbol, final_state, move);
  };
  for (int s = 0; s < n; ++s) {
    if (!definition.IsAccepting(s)) continue;
    switch (spec.end) {
      case LinearEvalSpec::End::kAtConstant: {
        RPQI_CHECK(0 <= spec.end_constant &&
                   spec.end_constant < alphabet.num_objects);
        accept_from(s, alphabet.ObjectSymbol(spec.end_constant), Move::kStay);
        break;
      }
      case LinearEvalSpec::End::kNotInAllowed: {
        RPQI_CHECK_EQ(static_cast<int>(spec.allowed_ends.size()),
                      alphabet.num_objects);
        for (int object = 0; object < alphabet.num_objects; ++object) {
          if (!spec.allowed_ends[object]) {
            accept_from(s, alphabet.ObjectSymbol(object), Move::kStay);
          }
        }
        // Anonymous end: the head sits on a Σ symbol whose left neighbour is
        // also a Σ symbol; peek left to confirm, then accept.
        for (int symbol = 0; symbol < alphabet.sigma_symbols; ++symbol) {
          automaton.AddTransition(s, symbol, anon_end_check, Move::kLeft);
        }
        break;
      }
      case LinearEvalSpec::End::kAnywhere: {
        for (int symbol = 0; symbol < total; ++symbol) {
          if (symbol == alphabet.DollarSymbol()) continue;
          accept_from(s, symbol, Move::kStay);
        }
        break;
      }
    }
  }
  for (int symbol = 0; symbol < alphabet.sigma_symbols; ++symbol) {
    automaton.AddTransition(anon_end_check, symbol, final_state, Move::kRight);
  }
  // The final state sweeps right and accepts past the end of the word.
  for (int symbol = 0; symbol < total; ++symbol) {
    automaton.AddTransition(final_state, symbol, final_state, Move::kRight);
  }

  return automaton;
}

StatusOr<GraphDb> WordToCanonicalDb(const std::vector<int>& word,
                                    const LinearAlphabet& alphabet) {
  GraphDb db;
  for (int object = 0; object < alphabet.num_objects; ++object) {
    db.AddNode("obj" + std::to_string(object));
  }
  size_t pos = 0;
  auto fail = [&](const std::string& message) {
    return Status::InvalidArgument("malformed canonical word at position " +
                                   std::to_string(pos) + ": " + message);
  };
  if (pos >= word.size() || word[pos] != alphabet.DollarSymbol()) {
    return fail("expected leading $");
  }
  ++pos;
  while (pos < word.size()) {
    if (!alphabet.IsObjectSymbol(word[pos])) return fail("expected constant");
    int from = alphabet.ObjectOf(word[pos]);
    ++pos;
    std::vector<int> labels;
    while (pos < word.size() && alphabet.IsSigmaSymbol(word[pos])) {
      labels.push_back(word[pos]);
      ++pos;
    }
    if (pos >= word.size() || !alphabet.IsObjectSymbol(word[pos])) {
      return fail("expected closing constant");
    }
    int to = alphabet.ObjectOf(word[pos]);
    ++pos;
    if (pos >= word.size() || word[pos] != alphabet.DollarSymbol()) {
      return fail("expected $ after block");
    }
    ++pos;
    if (labels.empty()) {
      if (from != to) return fail("empty block with distinct constants");
      continue;  // mention block, no edges
    }
    int previous = from;
    for (size_t i = 0; i < labels.size(); ++i) {
      int next = (i + 1 == labels.size()) ? to : db.AddAnonymousNode();
      int relation = SignedAlphabet::RelationOfSymbol(labels[i]);
      if (SignedAlphabet::IsInverseSymbol(labels[i])) {
        db.AddEdge(next, relation, previous);
      } else {
        db.AddEdge(previous, relation, next);
      }
      previous = next;
    }
  }
  return db;
}

std::vector<int> CanonicalDbToWord(const std::vector<CanonicalBlock>& blocks,
                                   const LinearAlphabet& alphabet) {
  std::vector<int> word;
  word.push_back(alphabet.DollarSymbol());
  for (const CanonicalBlock& block : blocks) {
    word.push_back(alphabet.ObjectSymbol(block.from));
    for (int label : block.labels) {
      RPQI_CHECK(alphabet.IsSigmaSymbol(label));
      word.push_back(label);
    }
    word.push_back(alphabet.ObjectSymbol(block.to));
    word.push_back(alphabet.DollarSymbol());
  }
  return word;
}

GraphDb BlocksToDb(const std::vector<CanonicalBlock>& blocks,
                   const LinearAlphabet& alphabet) {
  StatusOr<GraphDb> db =
      WordToCanonicalDb(CanonicalDbToWord(blocks, alphabet), alphabet);
  RPQI_CHECK(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

}  // namespace rpqi
