#include "answer/views.h"

#include <utility>
#include <vector>

#include "analysis/validate.h"
#include "automata/ops.h"
#include "base/logging.h"

namespace rpqi {

Status ValidateInstance(const AnsweringInstance& instance) {
  if (instance.num_objects < 1) {
    return Status::InvalidArgument(
        "answering instance: num_objects must be >= 1, got " +
        std::to_string(instance.num_objects));
  }
  std::vector<Nfa> definitions;
  std::vector<std::vector<std::pair<int, int>>> extensions;
  definitions.reserve(instance.views.size());
  extensions.reserve(instance.views.size());
  for (const View& view : instance.views) {
    definitions.push_back(view.definition);
    extensions.push_back(view.extension);
  }
  return ValidateViewExtensions(instance.query.num_symbols(), definitions,
                                extensions, instance.num_objects);
}

void CheckInstance(const AnsweringInstance& instance) {
  Status status = ValidateInstance(instance);
  RPQI_CHECK(status.ok()) << status.ToString();
}

AnsweringInstance NormalizeCompleteViews(const AnsweringInstance& instance) {
  CheckInstance(instance);
  int num_complete = 0;
  for (const View& view : instance.views) {
    if (view.assumption == ViewAssumption::kComplete) ++num_complete;
  }
  if (num_complete == 0) return instance;

  // Widen Σ± by one fresh relation per complete view.
  const int old_symbols = instance.query.num_symbols();
  const int new_symbols = old_symbols + 2 * num_complete;

  AnsweringInstance result;
  result.num_objects = instance.num_objects;
  result.query = WidenAlphabet(instance.query, new_symbols);

  int next_fresh_relation = old_symbols / 2;
  for (const View& view : instance.views) {
    View converted;
    converted.extension = view.extension;
    if (view.assumption == ViewAssumption::kComplete) {
      int fresh_symbol = 2 * next_fresh_relation;
      ++next_fresh_relation;
      converted.definition =
          UnionNfa(WidenAlphabet(view.definition, new_symbols),
                   SingleWordNfa(new_symbols, {fresh_symbol}));
      converted.assumption = ViewAssumption::kExact;
    } else {
      converted.definition = WidenAlphabet(view.definition, new_symbols);
      converted.assumption = view.assumption;
    }
    result.views.push_back(std::move(converted));
  }
  return result;
}

}  // namespace rpqi
