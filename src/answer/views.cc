#include "answer/views.h"

#include "automata/ops.h"
#include "base/logging.h"

namespace rpqi {

void CheckInstance(const AnsweringInstance& instance) {
  RPQI_CHECK_GE(instance.num_objects, 1);
  for (const View& view : instance.views) {
    RPQI_CHECK_EQ(view.definition.num_symbols(), instance.query.num_symbols())
        << "views and query must share the signed alphabet";
    for (const auto& [a, b] : view.extension) {
      RPQI_CHECK(0 <= a && a < instance.num_objects);
      RPQI_CHECK(0 <= b && b < instance.num_objects);
    }
  }
}

AnsweringInstance NormalizeCompleteViews(const AnsweringInstance& instance) {
  CheckInstance(instance);
  int num_complete = 0;
  for (const View& view : instance.views) {
    if (view.assumption == ViewAssumption::kComplete) ++num_complete;
  }
  if (num_complete == 0) return instance;

  // Widen Σ± by one fresh relation per complete view.
  const int old_symbols = instance.query.num_symbols();
  const int new_symbols = old_symbols + 2 * num_complete;

  AnsweringInstance result;
  result.num_objects = instance.num_objects;
  result.query = WidenAlphabet(instance.query, new_symbols);

  int next_fresh_relation = old_symbols / 2;
  for (const View& view : instance.views) {
    View converted;
    converted.extension = view.extension;
    if (view.assumption == ViewAssumption::kComplete) {
      int fresh_symbol = 2 * next_fresh_relation;
      ++next_fresh_relation;
      converted.definition =
          UnionNfa(WidenAlphabet(view.definition, new_symbols),
                   SingleWordNfa(new_symbols, {fresh_symbol}));
      converted.assumption = ViewAssumption::kExact;
    } else {
      converted.definition = WidenAlphabet(view.definition, new_symbols);
      converted.assumption = view.assumption;
    }
    result.views.push_back(std::move(converted));
  }
  return result;
}

}  // namespace rpqi
