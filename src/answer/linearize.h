#ifndef RPQI_ANSWER_LINEARIZE_H_
#define RPQI_ANSWER_LINEARIZE_H_

#include <vector>

#include "automata/nfa.h"
#include "automata/two_way.h"
#include "base/status.h"
#include "graphdb/graph.h"

namespace rpqi {

/// The word alphabet of Section 5.2: Σ± first, then one symbol per object of
/// D_V, then the $ separator. Canonical databases (Definition 12) are
/// linearized as  $ d w d' $ d'' w' d''' $ … $  where each block d w d'
/// spells one simple semipath from d to d' labeled w ∈ Σ±*, with fresh
/// anonymous nodes in between. Blocks with empty w must repeat the same
/// constant ($d d$) and serve as pure "object mention" blocks; every object
/// of D_V is required to occur in the word so that node existence is visible
/// to the automata.
struct LinearAlphabet {
  int sigma_symbols = 0;  // |Σ±|
  int num_objects = 0;    // |D_V|

  int TotalSymbols() const { return sigma_symbols + num_objects + 1; }
  int DollarSymbol() const { return sigma_symbols + num_objects; }
  int ObjectSymbol(int object) const { return sigma_symbols + object; }
  bool IsSigmaSymbol(int symbol) const { return symbol < sigma_symbols; }
  bool IsObjectSymbol(int symbol) const {
    return symbol >= sigma_symbols && symbol < DollarSymbol();
  }
  int ObjectOf(int symbol) const { return symbol - sigma_symbols; }
};

/// One-way automaton enforcing the linearization format:
/// $ (d Σ±* d' $)* with the empty-payload blocks restricted to d d.
Nfa BuildStructureAutomaton(const LinearAlphabet& alphabet);

/// Two-state automaton accepting words in which `object` occurs (node
/// existence; one per object goes into the A_ODA intersection).
Nfa BuildOccurrenceAutomaton(const LinearAlphabet& alphabet, int object);

/// Where the evaluation of a linearized query is anchored and how it accepts
/// — covering the three automaton shapes of Section 5.2:
///   * A_(E,a,b)   (Theorem 14): start kAtConstant a, end kAtConstant b;
///   * A_(V_i,a)   (exact-view excess, known first component): start
///     kAtConstant a, end kEndNotInAllowed with allowed = {b : (a,b) ∈ ext};
///   * A_(V_i,other) (excess from elsewhere): start kAnywhereExcept firsts,
///     end kAnywhere.
struct LinearEvalSpec {
  enum class Start { kAtConstant, kAnywhereExcept };
  enum class End { kAtConstant, kNotInAllowed, kAnywhere };

  Start start = Start::kAtConstant;
  int start_constant = -1;             // Start::kAtConstant
  std::vector<bool> excluded_starts;   // Start::kAnywhereExcept, per object

  End end = End::kAtConstant;
  int end_constant = -1;               // End::kAtConstant
  std::vector<bool> allowed_ends;      // End::kNotInAllowed, per object

  /// When false, the ⟨s,d⟩ search states (item 4 of the Section 5.2
  /// construction) are omitted and replaced by same-occurrence normalization
  /// moves only. The resulting automaton cannot jump between occurrences of
  /// the same constant — that is exactly the data-independent automaton of
  /// Theorem 17, where jumps are simulated by uniform object labelings (see
  /// answer/certificates.h).
  bool use_search_mode = true;
};

/// The two-way automaton of Theorem 14 (generalized): evaluates `definition`
/// (an RPQI over Σ±) over a linearized canonical database. Forward/backward
/// modes follow Section 3; "search mode" states ⟨s,d⟩ jump between
/// occurrences of the same object constant, realizing node identity across
/// blocks. Anchoring and acceptance follow `spec`; anonymous start/end nodes
/// are recognized by peeking at the neighboring cell.
TwoWayNfa BuildLinearizedEvalAutomaton(const Nfa& definition,
                                       const LinearAlphabet& alphabet,
                                       const LinearEvalSpec& spec);

/// Decodes a linearized word (as produced by the A_ODA emptiness witness)
/// into the canonical database it denotes: object nodes first (ids equal to
/// object ids), anonymous chain nodes after. Fails on malformed words.
StatusOr<GraphDb> WordToCanonicalDb(const std::vector<int>& word,
                                    const LinearAlphabet& alphabet);

/// Inverse direction, for tests: linearizes a canonical database given its
/// semipath blocks. Each block is (from-object, label word, to-object).
struct CanonicalBlock {
  int from = 0;
  std::vector<int> labels;
  int to = 0;
};
std::vector<int> CanonicalDbToWord(const std::vector<CanonicalBlock>& blocks,
                                   const LinearAlphabet& alphabet);

/// Builds the GraphDb denoted by explicit blocks (object nodes first).
GraphDb BlocksToDb(const std::vector<CanonicalBlock>& blocks,
                   const LinearAlphabet& alphabet);

}  // namespace rpqi

#endif  // RPQI_ANSWER_LINEARIZE_H_
