#include "answer/oda.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "analysis/validate.h"
#include "answer/linearize.h"
#include "automata/lazy.h"
#include "automata/ops.h"
#include "automata/table_dfa.h"
#include "graphdb/eval.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rpqi {

namespace {

/// Disjoint union of two-way automata over the same alphabet (language
/// union; multi-initial two-way automata are handled by every consumer).
TwoWayNfa UnionTwoWay(const std::vector<TwoWayNfa>& parts) {
  RPQI_CHECK(!parts.empty());
  TwoWayNfa result(parts[0].num_symbols());
  // lint: allow-unbudgeted linear copy of the input parts
  for (const TwoWayNfa& part : parts) {
    RPQI_CHECK_EQ(part.num_symbols(), result.num_symbols());
    int offset = result.NumStates();
    for (int s = 0; s < part.NumStates(); ++s) result.AddState();
    for (int s = 0; s < part.NumStates(); ++s) {
      result.SetInitial(offset + s, part.IsInitial(s));
      result.SetAccepting(offset + s, part.IsAccepting(s));
      for (int symbol = 0; symbol < part.num_symbols(); ++symbol) {
        for (const TwoWayNfa::Transition& t : part.TransitionsOn(s, symbol)) {
          result.AddTransition(offset + s, symbol, offset + t.to, t.move);
        }
      }
    }
  }
  RPQI_VALIDATE_STAGE(ValidateTwoWay(result));
  return result;
}

/// The exact-view excess automaton A_Vi: accepts linearized words whose
/// database has an ans(def(Vi)) pair outside ext(Vi).
TwoWayNfa BuildExcessAutomaton(const View& view,
                               const LinearAlphabet& alphabet) {
  std::vector<TwoWayNfa> parts;

  std::vector<bool> is_first(alphabet.num_objects, false);
  for (const auto& pair : view.extension) is_first[pair.first] = true;

  // A_(Vi,a) per distinct first component: evaluate def from a; a violation is
  // an end at a constant b with (a,b) ∉ ext, or at an anonymous node.
  for (int a = 0; a < alphabet.num_objects; ++a) {
    if (!is_first[a]) continue;
    LinearEvalSpec spec;
    spec.start = LinearEvalSpec::Start::kAtConstant;
    spec.start_constant = a;
    spec.end = LinearEvalSpec::End::kNotInAllowed;
    spec.allowed_ends.assign(alphabet.num_objects, false);
    for (const auto& [from, to] : view.extension) {
      if (from == a) spec.allowed_ends[to] = true;
    }
    parts.push_back(
        BuildLinearizedEvalAutomaton(view.definition, alphabet, spec));
  }

  // A_(Vi,other): any successful evaluation anchored outside the first
  // components (constant not in firsts, or anonymous node) is a violation.
  LinearEvalSpec other;
  other.start = LinearEvalSpec::Start::kAnywhereExcept;
  other.excluded_starts = is_first;
  other.end = LinearEvalSpec::End::kAnywhere;
  parts.push_back(
      BuildLinearizedEvalAutomaton(view.definition, alphabet, other));

  return UnionTwoWay(parts);
}

bool DfaLanguageEmpty(const Dfa& dfa) {
  return !ShortestAcceptedWord(DfaToNfa(dfa)).has_value();
}

/// Pairwise intersection with intermediate minimization: keeps every
/// intermediate automaton near its minimal size, which beats a flat BFS over
/// the k-way product by orders of magnitude when the intersection is empty.
StatusOr<Dfa> FoldIntersection(const Dfa& first,
                               const std::vector<const Dfa*>& rest,
                               int64_t budget) {
  Dfa accumulated = first;
  for (const Dfa* part : rest) {
    if (DfaLanguageEmpty(accumulated)) break;  // intersection already empty
    LazyDfaFromDfa lhs(accumulated);
    LazyDfaFromDfa rhs(*part);
    LazyProductDfa product({&lhs, &rhs});
    StatusOr<Dfa> merged = MaterializeLazyDfa(&product, budget);
    if (!merged.ok()) return merged.status();
    accumulated = Minimize(*merged);
  }
  return accumulated;
}

}  // namespace

// ---------------------------------------------------------------------------
// OdaSolver

struct OdaSolver::Impl {
  AnsweringInstance instance;  // normalized: no complete views
  OdaOptions options;
  LinearAlphabet alphabet;

  // View-side automata, owned for the lifetime of the solver.
  std::vector<Nfa> one_way;
  std::vector<TwoWayNfa> positive_two_way;
  std::vector<TwoWayNfa> complemented_two_way;
  std::vector<std::unique_ptr<LazyDfa>> lazies;
  // Components that fit the materialization budget are folded into
  // `view_context`; the rest stay lazy in `leftovers`. Built on demand by
  // EnsureViewContext: probes decided by the antichain-pruned lazy search
  // never pay for materializing the view side at all.
  bool context_attempted = false;
  std::optional<Dfa> view_context;
  std::vector<LazyDfa*> leftovers;
  Status build_status;

  Impl(const AnsweringInstance& raw, const OdaOptions& options_in)
      : instance(NormalizeCompleteViews(raw)), options(options_in) {
    alphabet.sigma_symbols = instance.query.num_symbols();
    alphabet.num_objects = instance.num_objects;
    BuildViewSide();
  }

  void BuildViewSide() {
    one_way.push_back(BuildStructureAutomaton(alphabet));
    for (int object = 0; object < alphabet.num_objects; ++object) {
      one_way.push_back(BuildOccurrenceAutomaton(alphabet, object));
    }
    for (const View& view : instance.views) {
      RPQI_CHECK(view.assumption != ViewAssumption::kComplete)
          << "NormalizeCompleteViews left a complete view behind";
      for (const auto& [a, b] : view.extension) {
        LinearEvalSpec spec;
        spec.start = LinearEvalSpec::Start::kAtConstant;
        spec.start_constant = a;
        spec.end = LinearEvalSpec::End::kAtConstant;
        spec.end_constant = b;
        positive_two_way.push_back(
            BuildLinearizedEvalAutomaton(view.definition, alphabet, spec));
      }
      if (view.assumption == ViewAssumption::kExact) {
        complemented_two_way.push_back(BuildExcessAutomaton(view, alphabet));
      }
    }

    for (const Nfa& nfa : one_way) {
      lazies.push_back(std::make_unique<LazySubsetDfa>(nfa));
    }
    for (const TwoWayNfa& automaton : positive_two_way) {
      lazies.push_back(
          std::make_unique<LazyTableDfa>(automaton, /*complement=*/false));
    }
    for (const TwoWayNfa& automaton : complemented_two_way) {
      lazies.push_back(
          std::make_unique<LazyTableDfa>(automaton, /*complement=*/true));
    }
  }

  /// Materializes + minimizes the view parts that fit the budget and folds
  /// them into one context DFA. Runs at most once; the result is shared by
  /// every later probe, so the cost amortizes exactly as before — it is just
  /// no longer paid by solvers whose probes all resolve in the lazy phase.
  void EnsureViewContext() {
    if (context_attempted) return;
    context_attempted = true;
    std::vector<Dfa> minimized;
    for (auto& lazy : lazies) {
      bool ok = false;
      if (options.part_materialize_budget > 0) {
        StatusOr<Dfa> dfa =
            MaterializeLazyDfa(lazy.get(), options.part_materialize_budget);
        if (dfa.ok()) {
          minimized.push_back(Minimize(*dfa));
          ok = true;
        }
      }
      if (!ok) leftovers.push_back(lazy.get());
    }
    if (!minimized.empty()) {
      std::vector<const Dfa*> rest;
      for (size_t i = 1; i < minimized.size(); ++i) {
        rest.push_back(&minimized[i]);
      }
      StatusOr<Dfa> folded =
          FoldIntersection(minimized[0], rest, options.max_states);
      if (folded.ok()) {
        view_context = std::move(folded).value();
      } else {
        build_status = folded.status();
      }
    }
  }

  /// Runs one probe. `complement_query` selects certain-answer search
  /// (counterexamples exclude the pair) vs possible-answer search.
  StatusOr<OdaResult> Probe(int c, int d, bool complement_query) {
    RPQI_CHECK(0 <= c && c < instance.num_objects);
    RPQI_CHECK(0 <= d && d < instance.num_objects);
    static const obs::Counter probes("oda.probes");
    static const obs::Counter overflows("oda.phase1_overflows");
    obs::Span probe_span("answer.ODA.probe");
    probes.Increment();

    LinearEvalSpec spec;
    spec.start = LinearEvalSpec::Start::kAtConstant;
    spec.start_constant = c;
    spec.end = LinearEvalSpec::End::kAtConstant;
    spec.end_constant = d;
    TwoWayNfa query_automaton =
        BuildLinearizedEvalAutomaton(instance.query, alphabet, spec);
    LazyTableDfa query_lazy(query_automaton, complement_query);

    // Phase 1: bounded witness search on the flat lazy product. Most
    // non-certain pairs have shallow counterexamples that surface within a
    // small state budget, long before the query component is materialized —
    // and with antichain pruning the search often decides the certain
    // direction outright. Before the view context exists, overflowing this
    // phase triggers the expensive materialization, so the cap is more
    // generous there; once the context is built, re-probing past a small cap
    // is cheap and phase 2 is the better tool.
    // Work done by an overflowing phase 1 must still show up in the final
    // result's accounting: the old code dropped the quick-search counters on
    // the floor, so a probe decided in phase 2 under-reported its
    // exploration.
    int64_t carried_explored = 0;
    int64_t carried_pruned = 0;
    {
      obs::Span phase_span("answer.ODA.phase1");
      std::vector<LazyDfa*> quick_parts;
      std::unique_ptr<LazyDfaFromDfa> quick_context;
      if (view_context.has_value()) {
        quick_context = std::make_unique<LazyDfaFromDfa>(*view_context);
        quick_parts.push_back(quick_context.get());
      } else {
        for (const auto& lazy : lazies) quick_parts.push_back(lazy.get());
      }
      for (LazyDfa* leftover : leftovers) quick_parts.push_back(leftover);
      quick_parts.push_back(&query_lazy);
      LazyProductDfa quick_product(quick_parts);
      int64_t quick_budget = std::min<int64_t>(
          options.max_states, view_context.has_value() ? 50000 : 200000);
      EmptinessResult quick =
          FindAcceptedWord(&quick_product, quick_budget, options.budget);
      if (quick.outcome != EmptinessResult::Outcome::kLimitExceeded) {
        return Finish(c, d, complement_query, std::move(quick));
      }
      // A deadline/cancellation is terminal; only a state-cap overflow falls
      // through to the exact phase.
      if (quick.status.code() == Status::Code::kDeadlineExceeded ||
          quick.status.code() == Status::Code::kCancelled) {
        return quick.status;
      }
      overflows.Increment();
      carried_explored = quick.states_explored;
      carried_pruned = quick.states_pruned;
    }

    // Phase 2: fold the query component into the view context and decide
    // exactly (required for the certain/exhaustion direction).
    obs::Span phase_span("answer.ODA.phase2");
    EnsureViewContext();
    std::optional<Dfa> final_dfa;
    std::vector<LazyDfa*> product_parts;
    std::unique_ptr<LazyDfaFromDfa> context_lazy;
    if (view_context.has_value() && options.part_materialize_budget > 0) {
      StatusOr<Dfa> query_dfa = MaterializeLazyDfa(
          &query_lazy, options.part_materialize_budget, options.budget);
      if (query_dfa.ok()) {
        Dfa minimized = Minimize(*query_dfa);
        StatusOr<Dfa> folded =
            FoldIntersection(*view_context, {&minimized}, options.max_states);
        if (folded.ok()) final_dfa = std::move(folded).value();
      }
    }

    EmptinessResult emptiness;
    if (final_dfa.has_value() && leftovers.empty()) {
      std::optional<std::vector<int>> witness =
          ShortestAcceptedWord(DfaToNfa(*final_dfa));
      if (witness.has_value()) {
        emptiness.outcome = EmptinessResult::Outcome::kFoundWord;
        emptiness.witness = std::move(*witness);
      } else {
        emptiness.outcome = EmptinessResult::Outcome::kEmpty;
      }
      emptiness.states_explored = final_dfa->NumStates();
    } else {
      // Flat lazy product over whatever could not be folded.
      if (final_dfa.has_value()) {
        context_lazy = std::make_unique<LazyDfaFromDfa>(*final_dfa);
        product_parts.push_back(context_lazy.get());
      } else if (view_context.has_value()) {
        context_lazy = std::make_unique<LazyDfaFromDfa>(*view_context);
        product_parts.push_back(context_lazy.get());
        product_parts.push_back(&query_lazy);
      } else {
        for (const auto& lazy : lazies) product_parts.push_back(lazy.get());
        product_parts.push_back(&query_lazy);
      }
      for (LazyDfa* leftover : leftovers) product_parts.push_back(leftover);
      LazyProductDfa product(product_parts);
      emptiness = FindAcceptedWord(&product, options.max_states,
                                   options.budget);
      if (emptiness.outcome == EmptinessResult::Outcome::kLimitExceeded) {
        if (!emptiness.status.ok() &&
            emptiness.status.code() != Status::Code::kResourceExhausted) {
          return emptiness.status;
        }
        return Status::ResourceExhausted("A_ODA emptiness exceeded " +
                                         std::to_string(options.max_states) +
                                         " states");
      }
    }

    emptiness.states_explored += carried_explored;
    emptiness.states_pruned += carried_pruned;
    return Finish(c, d, complement_query, std::move(emptiness));
  }

  /// Decodes and validates the outcome of an emptiness check.
  StatusOr<OdaResult> Finish(int c, int d, bool complement_query,
                             EmptinessResult emptiness) {
    OdaResult result;
    result.states_explored = emptiness.states_explored;
    result.states_pruned = emptiness.states_pruned;
    result.antichain_size = emptiness.antichain_size;
    if (emptiness.outcome == EmptinessResult::Outcome::kEmpty) {
      result.certain = complement_query;  // no witness against the claim
      return result;
    }
    StatusOr<GraphDb> witness_db =
        WordToCanonicalDb(emptiness.witness, alphabet);
    if (!witness_db.ok()) return witness_db.status();
    if (options.verify_witness && complement_query) {
      RPQI_CHECK(VerifyOdaCounterexample(instance, c, d, *witness_db))
          << "A_ODA produced a witness the independent evaluator rejects";
    }
    result.certain = !complement_query;  // possible-answer witness found
    result.counterexample = std::move(witness_db).value();
    result.counterexample_word = std::move(emptiness.witness);
    return result;
  }
};

OdaSolver::OdaSolver(const AnsweringInstance& instance,
                     const OdaOptions& options)
    : impl_(std::make_unique<Impl>(instance, options)) {
  CheckInstance(instance);
}

OdaSolver::~OdaSolver() = default;

StatusOr<OdaResult> OdaSolver::CertainAnswer(int c, int d) {
  StatusOr<OdaResult> result = impl_->Probe(c, d, /*complement_query=*/true);
  if (!result.ok()) return result;
  result->certain = !result->counterexample.has_value();
  return result;
}

StatusOr<OdaResult> OdaSolver::PossibleAnswer(int c, int d) {
  StatusOr<OdaResult> result = impl_->Probe(c, d, /*complement_query=*/false);
  if (!result.ok()) return result;
  result->certain = result->counterexample.has_value();
  return result;
}

StatusOr<OdaResult> CertainAnswerOda(const AnsweringInstance& instance, int c,
                                     int d, const OdaOptions& options) {
  return OdaSolver(instance, options).CertainAnswer(c, d);
}

StatusOr<OdaResult> PossibleAnswerOda(const AnsweringInstance& instance, int c,
                                      int d, const OdaOptions& options) {
  return OdaSolver(instance, options).PossibleAnswer(c, d);
}

bool VerifyOdaCounterexample(const AnsweringInstance& instance, int c, int d,
                             const GraphDb& db) {
  for (const View& view : instance.views) {
    std::set<std::pair<int, int>> answers;
    for (const auto& pair : EvalRpqiAllPairs(db, view.definition)) {
      answers.insert(pair);
    }
    std::set<std::pair<int, int>> extension(view.extension.begin(),
                                            view.extension.end());
    switch (view.assumption) {
      case ViewAssumption::kSound:
        for (const auto& pair : extension) {
          if (answers.find(pair) == answers.end()) return false;
        }
        break;
      case ViewAssumption::kComplete:
        for (const auto& pair : answers) {
          if (extension.find(pair) == extension.end()) return false;
        }
        break;
      case ViewAssumption::kExact:
        if (answers != extension) return false;
        break;
    }
  }
  return !EvalRpqiPair(db, instance.query, c, d);
}

}  // namespace rpqi
