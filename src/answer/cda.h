#ifndef RPQI_ANSWER_CDA_H_
#define RPQI_ANSWER_CDA_H_

#include <cstdint>
#include <optional>

#include "answer/views.h"
#include "base/budget.h"
#include "base/status.h"
#include "graphdb/graph.h"

namespace rpqi {

/// Options for the CDA solver. The search is worst-case exponential in the
/// number of candidate edges (the problem is co-NP-complete, Theorem 11);
/// `max_nodes` bounds the number of visited search nodes, and `budget`
/// (optional, borrowed) adds wall-clock deadline / cancellation enforcement
/// checked at every search node.
struct CdaOptions {
  int64_t max_nodes = int64_t{1} << 22;
  Budget* budget = nullptr;
};

/// Result of a certain/possible-answer check, with the witnessing database
/// when the answer is "not certain" (resp. "possible").
struct CdaResult {
  bool certain = false;              // or `possible` for PossibleAnswerCda
  std::optional<GraphDb> witness;    // counterexample / possibility witness
  int64_t nodes_visited = 0;
};

/// Theorem 11 decision procedure: is (c,d) a certain answer under the Closed
/// Domain Assumption? Under CDA the nodes of a consistent database are exactly
/// the objects of D_V, so the solver searches the space of edge sets over
/// D_V × Σ' × D_V by backtracking with three-valued edge states and
/// monotonicity-based pruning: RPQI answers grow with the edge set, so the
/// forced-in lower graph bounds ans from below and the not-yet-excluded upper
/// graph bounds it from above.
StatusOr<CdaResult> CertainAnswerCda(const AnsweringInstance& instance, int c,
                                     int d, const CdaOptions& options = {});

/// Dual check: is (c,d) in ans(Q, B) for *some* consistent B (a possible
/// answer)? Same solver with the query-side conditions flipped.
StatusOr<CdaResult> PossibleAnswerCda(const AnsweringInstance& instance, int c,
                                      int d, const CdaOptions& options = {});

/// Exhaustive oracle for tests: enumerates all 2^(|D_V|²·|Σ'|) candidate
/// databases. Aborts if more than 24 candidate edges exist.
bool CertainAnswerCdaBruteForce(const AnsweringInstance& instance, int c,
                                int d);

}  // namespace rpqi

#endif  // RPQI_ANSWER_CDA_H_
