#ifndef RPQI_ANSWER_CERTIFICATES_H_
#define RPQI_ANSWER_CERTIFICATES_H_

#include <optional>
#include <vector>

#include "answer/linearize.h"
#include "answer/views.h"
#include "automata/nfa.h"
#include "automata/two_way.h"
#include "base/bitset.h"
#include "base/status.h"

namespace rpqi {

/// Theorem 17 machinery: co-NP data complexity of certain answers under ODA.
///
/// The obstacle to co-NP via the Section 5.2 automata is "search mode": its
/// ⟨s,d⟩ states grow with the number of objects, so the two-way-to-one-way
/// translation is exponential in the data. The paper's fix: use the
/// *search-free* query automaton (LinearEvalSpec::use_search_mode = false)
/// and simulate jumps by requiring that for every occurrence of an object d,
/// the certificate set of states labeling that position is one and the same
/// set T_d. The NP witness for "not certain" is then the per-object labeling
/// (polynomially many objects, each labeled with a set over the fixed-size
/// automaton); completing it to a full rejection certificate is a
/// deterministic fixpoint, polynomial in the data.
struct UniformCertificate {
  /// label[d] = set of search-free-automaton states at every occurrence of d.
  std::vector<Bitset> object_labels;
};

/// The search-free query-exclusion automaton of Theorem 17 (A_(Q,c,d) without
/// item-4 search states).
TwoWayNfa BuildSearchFreeQueryAutomaton(const Nfa& query,
                                        const LinearAlphabet& alphabet, int c,
                                        int d);

/// Computes the minimal uniform rejection certificate of `word` for the
/// search-free automaton: the least per-position sets closed under the
/// automaton's moves and uniform across occurrences of each object. Returns
/// the per-object labeling if the certificate proves rejection (no accepting
/// state survives at the end position), nullopt otherwise. Polynomial in
/// |word| — this is the deterministic half of the co-NP upper bound.
std::optional<UniformCertificate> ComputeMinimalUniformCertificate(
    const TwoWayNfa& search_free, const LinearAlphabet& alphabet,
    const std::vector<int>& word);

/// NP-witness verification: given a labeling, decide whether some canonical
/// word (structure-valid, every object occurring, and accepted by all
/// automata in `positive_parts` — e.g. sound-view automata) admits a uniform
/// rejection certificate consistent with the labeling. Implemented as a
/// Vardi-style pair-of-sets automaton with the label equality enforced at
/// object positions, intersected on the fly. Returns a witness word, nullopt
/// if none exists, or ResourceExhausted past `max_states`.
StatusOr<std::optional<std::vector<int>>> FindWordForLabeling(
    const TwoWayNfa& search_free, const LinearAlphabet& alphabet,
    const UniformCertificate& labeling,
    const std::vector<const Nfa*>& positive_one_way,
    const std::vector<const TwoWayNfa*>& positive_two_way, int64_t max_states);

}  // namespace rpqi

#endif  // RPQI_ANSWER_CERTIFICATES_H_
