#include "answer/certificates.h"

#include <map>
#include <memory>
#include <unordered_map>

#include "automata/lazy.h"
#include "automata/table_dfa.h"

namespace rpqi {

TwoWayNfa BuildSearchFreeQueryAutomaton(const Nfa& query,
                                        const LinearAlphabet& alphabet, int c,
                                        int d) {
  LinearEvalSpec spec;
  spec.start = LinearEvalSpec::Start::kAtConstant;
  spec.start_constant = c;
  spec.end = LinearEvalSpec::End::kAtConstant;
  spec.end_constant = d;
  spec.use_search_mode = false;
  return BuildLinearizedEvalAutomaton(query, alphabet, spec);
}

std::optional<UniformCertificate> ComputeMinimalUniformCertificate(
    const TwoWayNfa& search_free, const LinearAlphabet& alphabet,
    const std::vector<int>& word) {
  const int num_states = search_free.NumStates();
  const int n = static_cast<int>(word.size());
  std::vector<Bitset> position_sets(n + 1, Bitset(num_states));
  std::vector<Bitset> labels(alphabet.num_objects, Bitset(num_states));
  for (int s : search_free.InitialStates()) position_sets[0].Set(s);

  // Least fixpoint of the certificate closure conditions plus the uniform
  // object-labeling synchronization: all conditions only add states, so the
  // iteration converges in at most (n+1)·|states| rounds.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int j = 0; j < n; ++j) {
      const Bitset& here = position_sets[j];
      for (int s = here.NextSetBit(0); s >= 0; s = here.NextSetBit(s + 1)) {
        for (const TwoWayNfa::Transition& t :
             search_free.TransitionsOn(s, word[j])) {
          int target_position = j + static_cast<int>(t.move);
          if (target_position < 0) continue;  // falling off the left end
          if (!position_sets[target_position].Test(t.to)) {
            position_sets[target_position].Set(t.to);
            changed = true;
          }
        }
      }
    }
    for (int j = 0; j < n; ++j) {
      if (!alphabet.IsObjectSymbol(word[j])) continue;
      Bitset& label = labels[alphabet.ObjectOf(word[j])];
      if (!position_sets[j].IsSubsetOf(label)) {
        label |= position_sets[j];
        changed = true;
      }
      if (!label.IsSubsetOf(position_sets[j])) {
        position_sets[j] |= label;
        changed = true;
      }
    }
  }

  for (int s = position_sets[n].NextSetBit(0); s >= 0;
       s = position_sets[n].NextSetBit(s + 1)) {
    if (search_free.IsAccepting(s)) return std::nullopt;  // not a rejection
  }
  return UniformCertificate{std::move(labels)};
}

namespace {

struct CertState {
  uint64_t closed;   // C_j: stay-closed certificate set at position j
  uint64_t forced;   // F_{j+1}: forward obligations for position j+1
};

/// Vardi-style rejection-certificate NFA with the Theorem 17 label
/// constraint, in the "closure at consume time" form: the automaton carries
/// the stay-closed set C_j of the position just consumed plus the forward
/// obligations F_{j+1}; consuming the next symbol guesses only which
/// left-move targets to add (extras outside that set can never be required,
/// so the restriction is complete), closes under stay moves, and checks the
/// left-move conditions against C_j. Reading an object symbol additionally
/// requires the closed set to equal the guessed label (the uniform-labeling
/// simulation of search mode).
class LabeledRejectionBuilder {
 public:
  LabeledRejectionBuilder(const TwoWayNfa& automaton,
                          const LinearAlphabet& alphabet,
                          const UniformCertificate& labeling)
      : automaton_(automaton), alphabet_(alphabet) {
    n_ = automaton.NumStates();
    RPQI_CHECK_LE(n_, 62) << "certificate NFA limited to small automata";
    for (int s = 0; s < n_; ++s) {
      if (automaton.IsInitial(s)) initial_mask_ |= uint64_t{1} << s;
      if (automaton.IsAccepting(s)) accepting_mask_ |= uint64_t{1} << s;
    }
    stay_.assign(alphabet.TotalSymbols(), std::vector<uint64_t>(n_, 0));
    left_.assign(alphabet.TotalSymbols(), std::vector<uint64_t>(n_, 0));
    right_.assign(alphabet.TotalSymbols(), std::vector<uint64_t>(n_, 0));
    for (int symbol = 0; symbol < alphabet.TotalSymbols(); ++symbol) {
      for (int s = 0; s < n_; ++s) {
        for (const TwoWayNfa::Transition& t :
             automaton.TransitionsOn(s, symbol)) {
          uint64_t bit = uint64_t{1} << t.to;
          switch (t.move) {
            case Move::kStay: stay_[symbol][s] |= bit; break;
            case Move::kLeft:
              left_[symbol][s] |= bit;
              left_targets_ |= bit;
              break;
            case Move::kRight: right_[symbol][s] |= bit; break;
          }
        }
      }
    }
    label_masks_.assign(alphabet.num_objects, 0);
    RPQI_CHECK_EQ(static_cast<int>(labeling.object_labels.size()),
                  alphabet.num_objects);
    for (int object = 0; object < alphabet.num_objects; ++object) {
      const Bitset& label = labeling.object_labels[object];
      RPQI_CHECK_EQ(label.size(), n_);
      for (int s = label.NextSetBit(0); s >= 0; s = label.NextSetBit(s + 1)) {
        label_masks_[object] |= uint64_t{1} << s;
      }
    }
  }

  StatusOr<Nfa> Build(int64_t max_states) {
    Nfa result(alphabet_.TotalSymbols());
    std::map<std::pair<uint64_t, uint64_t>, int> ids;
    std::vector<CertState> states;
    auto intern = [&](CertState state) {
      auto [it, inserted] = ids.try_emplace(
          std::make_pair(state.closed, state.forced), result.NumStates());
      if (inserted) {
        int id = result.AddState();
        RPQI_CHECK_EQ(id, it->second);
        states.push_back(state);
        // Acceptance: the final position holds exactly the pending forward
        // obligations (adding extras there could only hurt), so the word is
        // rejection-certified iff none of them is accepting.
        result.SetAccepting(id, (state.forced & accepting_mask_) == 0);
      }
      return it->second;
    };

    // Initial marker: before any symbol, pending obligations are the initial
    // states (they sit at position 0), and there is no previous set.
    int start = result.AddState();
    states.push_back({0, initial_mask_});
    result.SetInitial(start);
    // The empty word: position 0 IS the end; accept iff no initial state is
    // accepting. (Canonical words are never empty, but keep semantics exact.)
    result.SetAccepting(start, (initial_mask_ & accepting_mask_) == 0);

    for (size_t i = 0; i < states.size(); ++i) {
      if (static_cast<int64_t>(states.size()) > max_states) {
        return Status::ResourceExhausted("certificate NFA exceeded " +
                                         std::to_string(max_states) +
                                         " states");
      }
      const CertState state = states[i];
      bool is_start = (static_cast<int>(i) == start);
      for (int a = 0; a < alphabet_.TotalSymbols(); ++a) {
        uint64_t extras_pool = left_targets_ & ~state.forced;
        for (uint64_t sub = extras_pool;; sub = (sub - 1) & extras_pool) {
          uint64_t raw = state.forced | sub;
          uint64_t closed = StayClose(raw, a);
          bool ok = true;
          // Left conditions: targets must lie in the previous closed set
          // (vacuous at position 0, where a left move just falls off).
          if (!is_start) {
            uint64_t members = closed;
            while (members != 0 && ok) {
              int s = __builtin_ctzll(members);
              members &= members - 1;
              if (left_[a][s] & ~state.closed) ok = false;
            }
          }
          // Uniform-label constraint at object occurrences.
          if (ok && alphabet_.IsObjectSymbol(a) &&
              closed != label_masks_[alphabet_.ObjectOf(a)]) {
            ok = false;
          }
          if (ok) {
            uint64_t forced_next = 0;
            uint64_t members = closed;
            while (members != 0) {
              int s = __builtin_ctzll(members);
              members &= members - 1;
              forced_next |= right_[a][s];
            }
            result.AddTransition(static_cast<int>(i), a,
                                 intern({closed, forced_next}));
          }
          if (sub == 0) break;
        }
      }
    }
    return result;
  }

 private:
  uint64_t StayClose(uint64_t set, int symbol) const {
    uint64_t closed = set;
    bool changed = true;
    while (changed) {
      changed = false;
      uint64_t members = closed;
      while (members != 0) {
        int s = __builtin_ctzll(members);
        members &= members - 1;
        uint64_t addition = stay_[symbol][s] & ~closed;
        if (addition != 0) {
          closed |= addition;
          changed = true;
        }
      }
    }
    return closed;
  }

  const TwoWayNfa& automaton_;
  const LinearAlphabet& alphabet_;
  int n_ = 0;
  uint64_t initial_mask_ = 0;
  uint64_t accepting_mask_ = 0;
  uint64_t left_targets_ = 0;
  std::vector<std::vector<uint64_t>> stay_, left_, right_;  // [symbol][state]
  std::vector<uint64_t> label_masks_;
};

StatusOr<Nfa> BuildLabeledRejectionNfa(const TwoWayNfa& automaton,
                                       const LinearAlphabet& alphabet,
                                       const UniformCertificate& labeling,
                                       int64_t max_states) {
  return LabeledRejectionBuilder(automaton, alphabet, labeling)
      .Build(max_states);
}

}  // namespace

StatusOr<std::optional<std::vector<int>>> FindWordForLabeling(
    const TwoWayNfa& search_free, const LinearAlphabet& alphabet,
    const UniformCertificate& labeling,
    const std::vector<const Nfa*>& positive_one_way,
    const std::vector<const TwoWayNfa*>& positive_two_way,
    int64_t max_states) {
  StatusOr<Nfa> rejection =
      BuildLabeledRejectionNfa(search_free, alphabet, labeling, max_states);
  if (!rejection.ok()) return rejection.status();

  Nfa structure = BuildStructureAutomaton(alphabet);
  std::vector<Nfa> occurrences;
  for (int object = 0; object < alphabet.num_objects; ++object) {
    occurrences.push_back(BuildOccurrenceAutomaton(alphabet, object));
  }

  // The rejection NFA is massively nondeterministic (it guesses certificate
  // sets); run the product BFS on it directly instead of determinizing it.
  std::vector<std::unique_ptr<LazyDfa>> owned;
  owned.push_back(std::make_unique<LazySubsetDfa>(structure));
  for (const Nfa& occurrence : occurrences) {
    owned.push_back(std::make_unique<LazySubsetDfa>(occurrence));
  }
  for (const Nfa* nfa : positive_one_way) {
    owned.push_back(std::make_unique<LazySubsetDfa>(*nfa));
  }
  for (const TwoWayNfa* automaton : positive_two_way) {
    owned.push_back(std::make_unique<LazyTableDfa>(*automaton));
  }
  std::vector<LazyDfa*> parts;
  for (const auto& lazy : owned) parts.push_back(lazy.get());

  EmptinessResult result =
      FindAcceptedWordWithNfa(*rejection, parts, max_states);
  switch (result.outcome) {
    case EmptinessResult::Outcome::kFoundWord:
      return std::optional<std::vector<int>>(std::move(result.witness));
    case EmptinessResult::Outcome::kEmpty:
      return std::optional<std::vector<int>>(std::nullopt);
    case EmptinessResult::Outcome::kLimitExceeded:
      return Status::ResourceExhausted("labeled word search exceeded budget");
  }
  return Status::InvalidArgument("unreachable");
}

}  // namespace rpqi
