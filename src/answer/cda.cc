#include "answer/cda.h"

#include <algorithm>
#include <set>
#include <vector>

#include "analysis/validate.h"
#include "automata/ops.h"
#include "graphdb/eval.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rpqi {

namespace {

/// Candidate edge (from, relation, to) in the dense enumeration order.
struct CandidateEdges {
  int num_objects;
  int num_relations;

  int Count() const { return num_objects * num_objects * num_relations; }
  int IndexOf(int from, int relation, int to) const {
    return (from * num_objects + to) * num_relations + relation;
  }
  void Decode(int index, int* from, int* relation, int* to) const {
    *relation = index % num_relations;
    index /= num_relations;
    *to = index % num_objects;
    *from = index / num_objects;
  }
};

enum EdgeState : char { kUnknown = 0, kIn = 1, kOut = 2 };

GraphDb BuildGraph(const CandidateEdges& space,
                   const std::vector<char>& edge_state, bool include_unknown) {
  GraphDb db;
  for (int i = 0; i < space.num_objects; ++i) {
    db.AddNode("obj" + std::to_string(i));
  }
  for (int index = 0; index < space.Count(); ++index) {
    if (edge_state[index] == kIn ||
        (include_unknown && edge_state[index] == kUnknown)) {
      int from, relation, to;
      space.Decode(index, &from, &relation, &to);
      db.AddEdge(from, relation, to);
    }
  }
  return db;
}

bool PairsSubset(const std::vector<std::pair<int, int>>& pairs,
                 const GraphDb& db, const Nfa& query) {
  for (const auto& [a, b] : pairs) {
    if (!EvalRpqiPair(db, query, a, b)) return false;
  }
  return true;
}

bool AnswersWithin(const GraphDb& db, const Nfa& query,
                   const std::vector<std::pair<int, int>>& allowed) {
  std::set<std::pair<int, int>> allowed_set(allowed.begin(), allowed.end());
  for (const auto& pair : EvalRpqiAllPairs(db, query)) {
    if (allowed_set.find(pair) == allowed_set.end()) return false;
  }
  return true;
}

/// Is `db` consistent with every view of the instance?
bool ConsistentWithViews(const AnsweringInstance& instance, const GraphDb& db) {
  for (const View& view : instance.views) {
    switch (view.assumption) {
      case ViewAssumption::kSound:
        if (!PairsSubset(view.extension, db, view.definition)) return false;
        break;
      case ViewAssumption::kComplete:
        if (!AnswersWithin(db, view.definition, view.extension)) return false;
        break;
      case ViewAssumption::kExact:
        if (!PairsSubset(view.extension, db, view.definition)) return false;
        if (!AnswersWithin(db, view.definition, view.extension)) return false;
        break;
    }
  }
  return true;
}

/// Backtracking search for a consistent database where the query pair (c,d)
/// is absent (`want_query_pair == false`, certain-answer refutation) or
/// present (`want_query_pair == true`, possible-answer witness).
class CdaSolver {
 public:
  CdaSolver(const AnsweringInstance& instance, int c, int d,
            bool want_query_pair, int64_t max_nodes, Budget* budget)
      : instance_(instance),
        c_(c),
        d_(d),
        want_query_pair_(want_query_pair),
        max_nodes_(max_nodes),
        budget_(budget) {
    space_.num_objects = instance.num_objects;
    space_.num_relations = instance.query.num_symbols() / 2;
    eps_free_views_.reserve(instance.views.size());
    for (const View& view : instance.views) {
      eps_free_views_.push_back(RemoveEpsilon(view.definition));
    }
    eps_free_query_ = RemoveEpsilon(instance.query);
  }

  /// Returns the witness database, nullopt if none exists, or a status on
  /// budget exhaustion.
  StatusOr<CdaResult> Solve() {
    static const obs::Counter probes("cda.probes");
    static const obs::Counter visited_counter("cda.nodes_visited");
    obs::Span span("answer.CDA.probe");
    probes.Increment();
    std::vector<char> edge_state(space_.Count(), kUnknown);
    CdaResult result;
    Status status = Search(edge_state, &result);
    visited_counter.Add(nodes_visited_);  // flush even on budget exhaustion
    span.Note("nodes_visited", nodes_visited_);
    if (!status.ok()) return status;
    result.nodes_visited = nodes_visited_;
    if (result.witness.has_value()) {
      // A witness database leaves the solver and is re-evaluated by callers:
      // its edges must stay within the instance's relation alphabet.
      RPQI_VALIDATE_STAGE(
          ValidateGraphDb(*result.witness, space_.num_relations));
    }
    return result;
  }

 private:
  /// Pruning bounds. Monotonicity of RPQIs (more edges ⇒ more answers) gives:
  ///  * lower graph L (kIn edges only): any completion has ans ⊇ ans(·, L);
  ///  * upper graph U (kIn + kUnknown): any completion has ans ⊆ ans(·, U).
  Status Search(std::vector<char>& edge_state, CdaResult* result) {
    if (++nodes_visited_ > max_nodes_) {
      return Status::ResourceExhausted("CDA search exceeded node budget");
    }
    RPQI_RETURN_IF_ERROR(BudgetCharge(budget_, 1));
    GraphDb lower = BuildGraph(space_, edge_state, /*include_unknown=*/false);
    GraphDb upper = BuildGraph(space_, edge_state, /*include_unknown=*/true);

    // --- Pruning (conditions that no completion of this assignment can fix).
    for (size_t i = 0; i < instance_.views.size(); ++i) {
      const View& view = instance_.views[i];
      bool needs_lower_bound = view.assumption != ViewAssumption::kComplete;
      bool needs_upper_bound = view.assumption != ViewAssumption::kSound;
      // ext ⊆ ans must be achievable: ans over U is the best case.
      if (needs_lower_bound &&
          !PairsSubset(view.extension, upper, eps_free_views_[i])) {
        return Status::Ok();
      }
      // ans ⊆ ext must be achievable: ans over L is the least case.
      if (needs_upper_bound &&
          !AnswersWithin(lower, eps_free_views_[i], view.extension)) {
        return Status::Ok();
      }
    }
    if (!want_query_pair_ && EvalRpqiPair(lower, eps_free_query_, c_, d_)) {
      return Status::Ok();  // (c,d) already forced into the answer
    }
    if (want_query_pair_ && !EvalRpqiPair(upper, eps_free_query_, c_, d_)) {
      return Status::Ok();  // (c,d) can no longer be answered
    }

    // --- Early acceptance: L itself may already witness the goal.
    if (LowerGraphWorks(lower)) {
      result->witness = lower;
      return Status::Ok();
    }

    // --- Complete assignment?
    int branch_edge = -1;
    for (int index = 0; index < space_.Count(); ++index) {
      if (edge_state[index] == kUnknown) {
        branch_edge = index;
        break;
      }
    }
    if (branch_edge < 0) {
      // L == U; all pruning checks above imply full consistency.
      if (QueryGoalMet(lower)) result->witness = lower;
      return Status::Ok();
    }

    // --- Branch: try excluding the edge first (biases the search toward
    // sparse witnesses, which are the interesting ones for certain answers),
    // then including it.
    for (char value : {kOut, kIn}) {
      edge_state[branch_edge] = value;
      Status status = Search(edge_state, result);
      if (!status.ok()) return status;
      if (result->witness.has_value()) return Status::Ok();
    }
    edge_state[branch_edge] = kUnknown;
    return Status::Ok();
  }

  bool QueryGoalMet(const GraphDb& db) {
    return EvalRpqiPair(db, eps_free_query_, c_, d_) == want_query_pair_;
  }

  /// True if the lower graph L is consistent and meets the query goal — an
  /// early accept that skips the remaining branching.
  bool LowerGraphWorks(const GraphDb& lower) {
    if (!QueryGoalMet(lower)) return false;
    for (size_t i = 0; i < instance_.views.size(); ++i) {
      const View& view = instance_.views[i];
      bool needs_lower_bound = view.assumption != ViewAssumption::kComplete;
      bool needs_upper_bound = view.assumption != ViewAssumption::kSound;
      if (needs_lower_bound &&
          !PairsSubset(view.extension, lower, eps_free_views_[i])) {
        return false;
      }
      if (needs_upper_bound &&
          !AnswersWithin(lower, eps_free_views_[i], view.extension)) {
        return false;
      }
    }
    return true;
  }

  const AnsweringInstance& instance_;
  int c_;
  int d_;
  bool want_query_pair_;
  int64_t max_nodes_;
  Budget* budget_;
  CandidateEdges space_;
  std::vector<Nfa> eps_free_views_;
  Nfa eps_free_query_{0};
  int64_t nodes_visited_ = 0;
};

}  // namespace

StatusOr<CdaResult> CertainAnswerCda(const AnsweringInstance& instance, int c,
                                     int d, const CdaOptions& options) {
  CheckInstance(instance);
  CdaSolver solver(instance, c, d, /*want_query_pair=*/false,
                   options.max_nodes, options.budget);
  StatusOr<CdaResult> result = solver.Solve();
  if (!result.ok()) return result;
  // (c,d) is certain iff no consistent counterexample database exists.
  result->certain = !result->witness.has_value();
  return result;
}

StatusOr<CdaResult> PossibleAnswerCda(const AnsweringInstance& instance, int c,
                                      int d, const CdaOptions& options) {
  CheckInstance(instance);
  CdaSolver solver(instance, c, d, /*want_query_pair=*/true,
                   options.max_nodes, options.budget);
  StatusOr<CdaResult> result = solver.Solve();
  if (!result.ok()) return result;
  result->certain = result->witness.has_value();  // here: "possible"
  return result;
}

bool CertainAnswerCdaBruteForce(const AnsweringInstance& instance, int c,
                                int d) {
  CheckInstance(instance);
  CandidateEdges space{instance.num_objects, instance.query.num_symbols() / 2};
  RPQI_CHECK_LE(space.Count(), 24) << "brute force oracle limited to 2^24 DBs";
  Nfa query = RemoveEpsilon(instance.query);

  for (uint32_t mask = 0; mask < (uint32_t{1} << space.Count()); ++mask) {
    std::vector<char> edge_state(space.Count(), kOut);
    for (int index = 0; index < space.Count(); ++index) {
      if ((mask >> index) & 1) edge_state[index] = kIn;
    }
    GraphDb db = BuildGraph(space, edge_state, /*include_unknown=*/false);
    if (!ConsistentWithViews(instance, db)) continue;
    if (!EvalRpqiPair(db, query, c, d)) return false;  // counterexample
  }
  return true;
}

}  // namespace rpqi
