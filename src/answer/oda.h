#ifndef RPQI_ANSWER_ODA_H_
#define RPQI_ANSWER_ODA_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "answer/views.h"
#include "base/budget.h"
#include "base/status.h"
#include "graphdb/graph.h"

namespace rpqi {

/// Options for the on-the-fly A_ODA emptiness check (the problem is
/// PSPACE-complete in the expressions, Theorem 16; the lazily discovered
/// state space is capped).
struct OdaOptions {
  int64_t max_states = int64_t{1} << 22;
  /// Optional execution budget (borrowed): deadline / cancellation / state
  /// quota, enforced during both context construction and every probe.
  Budget* budget = nullptr;
  /// Re-verify any counterexample against the independent graphdb evaluator
  /// (defense in depth; cheap relative to the search).
  bool verify_witness = true;
  /// Before running the product, try to materialize and Hopcroft-minimize
  /// each component automaton whose reachable translation fits this budget;
  /// components beyond it stay lazy. Minimized components shrink the product
  /// space by orders of magnitude (ablated in bench_ablation_onthefly).
  /// Set to 0 to disable (pure on-the-fly mode).
  int64_t part_materialize_budget = int64_t{1} << 22;
};

struct OdaResult {
  bool certain = false;  // or `possible` for the possible-answer check
  /// When a witness exists: a canonical counterexample (or possibility
  /// witness) database and its linearization (Theorem 15's witness).
  std::optional<GraphDb> counterexample;
  std::optional<std::vector<int>> counterexample_word;
  int64_t states_explored = 0;
  /// Antichain accounting from the deciding emptiness search (zero when the
  /// probe was decided on a materialized DFA): frontier states discarded
  /// because a queued state subsumed them, and live antichain members when
  /// the search stopped.
  int64_t states_pruned = 0;
  int64_t antichain_size = 0;
};

/// Theorems 15/16 decision procedure, amortized over many probe pairs: the
/// solver builds the view-side automata of Section 5.2 once —
///   * the structure automaton A0 plus per-object occurrence automata,
///   * a two-way automaton A_(def(Vi),a,b) per extension pair of every view
///     (sound and exact), intersected positively,
///   * a two-way automaton A_Vi per exact view (union of A_(Vi,a) over first
///     components and A_(Vi,other)), intersected complemented —
/// materializes/minimizes/folds them within the budget, and reuses that
/// context for every (c,d) probe; only the query automaton A_(Q,c,d) is built
/// per probe. Complete views are normalized to exact views on construction.
class OdaSolver {
 public:
  explicit OdaSolver(const AnsweringInstance& instance,
                     const OdaOptions& options = {});
  ~OdaSolver();

  OdaSolver(const OdaSolver&) = delete;
  OdaSolver& operator=(const OdaSolver&) = delete;

  /// Is (c,d) in ans(Q,B) for every consistent B (certain answer)?
  StatusOr<OdaResult> CertainAnswer(int c, int d);
  /// Is (c,d) in ans(Q,B) for some consistent B (possible answer)? The
  /// result's `certain` field then means "possible".
  StatusOr<OdaResult> PossibleAnswer(int c, int d);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot conveniences (construct a solver, run one probe).
StatusOr<OdaResult> CertainAnswerOda(const AnsweringInstance& instance, int c,
                                     int d, const OdaOptions& options = {});
StatusOr<OdaResult> PossibleAnswerOda(const AnsweringInstance& instance, int c,
                                      int d, const OdaOptions& options = {});

/// Independent validation of a counterexample: `db`'s first
/// `instance.num_objects` nodes are the objects; checks view consistency and
/// (c,d) ∉ ans(Q, db) with the graphdb evaluator only.
bool VerifyOdaCounterexample(const AnsweringInstance& instance, int c, int d,
                             const GraphDb& db);

}  // namespace rpqi

#endif  // RPQI_ANSWER_ODA_H_
