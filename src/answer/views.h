#ifndef RPQI_ANSWER_VIEWS_H_
#define RPQI_ANSWER_VIEWS_H_

#include <utility>
#include <vector>

#include "automata/nfa.h"
#include "base/status.h"

namespace rpqi {

/// Section 5 view assumptions: how ext(V) relates to ans(def(V), B) on a
/// consistent database B.
enum class ViewAssumption {
  kSound,     // ext(V) ⊆ ans(def(V), B)   (SVA)
  kComplete,  // ext(V) ⊇ ans(def(V), B)   (CVA)
  kExact,     // ext(V) = ans(def(V), B)   (EVA)
};

/// One view: its RPQI definition over Σ±, its extension over object ids, and
/// the assumption under which the extension is interpreted.
struct View {
  Nfa definition{0};
  std::vector<std::pair<int, int>> extension;
  ViewAssumption assumption = ViewAssumption::kSound;
};

/// A view-based query-answering instance (Definition 10). Objects are dense
/// ids [0, num_objects); D_V is the set of objects mentioned in extensions
/// and, by convention here, every id below num_objects. The query and all
/// definitions share the signed alphabet Σ±.
struct AnsweringInstance {
  std::vector<View> views;
  Nfa query{0};
  int num_objects = 0;
};

/// Number of Σ± symbols of the instance (from the query automaton).
inline int SigmaSymbols(const AnsweringInstance& instance) {
  return instance.query.num_symbols();
}

/// Validates id ranges and alphabet agreement (via analysis/validate.h);
/// returns a precise diagnostic naming the offending view / pair.
Status ValidateInstance(const AnsweringInstance& instance);

/// ValidateInstance for internal callers: aborts on malformed input.
void CheckInstance(const AnsweringInstance& instance);

/// Rewrites complete views into exact views (the reduction noted in Section 5
/// after the assumption definitions, following [11]): a complete view V with
/// definition E becomes an exact view with definition E ∪ f for a fresh
/// relation f. Any database may realize missing pairs of ext(V) via f-edges,
/// so consistency and certain answers are preserved, and downstream code only
/// handles sound and exact views. The returned instance may use a wider Σ±
/// (fresh relations appended); sound and exact views pass through unchanged
/// (widened).
AnsweringInstance NormalizeCompleteViews(const AnsweringInstance& instance);

}  // namespace rpqi

#endif  // RPQI_ANSWER_VIEWS_H_
