#ifndef RPQI_GRAPHDB_IO_H_
#define RPQI_GRAPHDB_IO_H_

#include <string>
#include <string_view>

#include "base/status.h"
#include "graphdb/graph.h"
#include "rpq/alphabet.h"

namespace rpqi {

/// Parses the whitespace text format, one edge per line:
///   <from-node> <relation> <to-node>
/// Blank lines and lines starting with '#' are skipped. Relations are
/// registered into `alphabet` (so relation ids stay coordinated with query
/// compilation); nodes are interned into the returned database.
StatusOr<GraphDb> LoadGraphText(std::string_view text,
                                SignedAlphabet* alphabet);

/// Serializes back to the text format (stable node/relation names).
std::string SaveGraphText(const GraphDb& db, const SignedAlphabet& alphabet);

}  // namespace rpqi

#endif  // RPQI_GRAPHDB_IO_H_
