#ifndef RPQI_GRAPHDB_IO_H_
#define RPQI_GRAPHDB_IO_H_

#include <string>
#include <string_view>

#include "base/status.h"
#include "graphdb/graph.h"
#include "rpq/alphabet.h"

namespace rpqi {

/// Resource limits and error-context options for graph parsing: malformed or
/// adversarial input (huge node populations, unbounded token lengths) is
/// rejected with an InvalidArgument naming the offending location instead of
/// exhausting memory.
struct GraphTextLimits {
  int max_nodes = 1 << 22;
  int64_t max_edges = int64_t{1} << 26;
  size_t max_name_length = 4096;
  /// Prepended to every error ("<source_name>: line N (byte B): ...") so a
  /// failure that crosses layers — LoadGraphSnapshot, `admin reload` — still
  /// names the file it came from. Borrowed for the duration of the call;
  /// empty = no prefix (in-memory text with no useful name).
  std::string_view source_name = {};
};

/// Parses the whitespace text format, one edge per line:
///   <from-node> <relation> <to-node>
/// Blank lines and lines starting with '#' are skipped. Relations are
/// registered into `alphabet` (so relation ids stay coordinated with query
/// compilation); nodes are interned into the returned database. Every error
/// reports the source name (when given), the 1-based line number, and the
/// 0-based byte offset of that line's start — deep failures keep full file
/// context no matter how many layers they propagate through.
StatusOr<GraphDb> LoadGraphText(std::string_view text, SignedAlphabet* alphabet,
                                const GraphTextLimits& limits = {});

/// Serializes back to the text format (stable node/relation names). Works for
/// both storage modes: columnar databases emit their CSR spans.
std::string SaveGraphText(const GraphDb& db, const SignedAlphabet& alphabet);

/// Content fingerprint of a text snapshot — the plan-cache key component.
/// Byte-stable across builds and platforms; a columnar snapshot's header
/// persists the source text's fingerprint so both formats of the same graph
/// share plan-cache keys (`rpqi compact` relies on this).
uint64_t FingerprintGraphText(std::string_view text);

}  // namespace rpqi

#endif  // RPQI_GRAPHDB_IO_H_
