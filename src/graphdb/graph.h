#ifndef RPQI_GRAPHDB_GRAPH_H_
#define RPQI_GRAPHDB_GRAPH_H_

#include <string>
#include <vector>

#include "base/interner.h"
#include "base/logging.h"

namespace rpqi {

/// A semistructured database (Section 2): a finite directed graph whose edges
/// are labeled with relation ids. Relation ids follow the convention of
/// SignedAlphabet (relation k owns Σ± symbols 2k and 2k+1), so a GraphDb and
/// the query automata over it are coordinated through one alphabet.
///
/// Nodes are dense ids; named nodes are interned, anonymous nodes (the
/// intermediate objects of canonical databases, Definition 12) get synthetic
/// names.
class GraphDb {
 public:
  struct Edge {
    int relation;
    int to;
  };

  GraphDb() = default;

  GraphDb(const GraphDb&) = default;
  GraphDb& operator=(const GraphDb&) = default;
  GraphDb(GraphDb&&) = default;
  GraphDb& operator=(GraphDb&&) = default;

  /// Returns the id of the named node, creating it if new.
  int AddNode(const std::string& name) {
    int id = nodes_.Intern(name);
    if (id == static_cast<int>(out_.size())) {
      out_.emplace_back();
      in_.emplace_back();
    }
    return id;
  }

  /// Creates a fresh unnamed node (named "_anonN" internally).
  int AddAnonymousNode() {
    return AddNode("_anon" + std::to_string(NumNodes()));
  }

  int NodeId(const std::string& name) const { return nodes_.Find(name); }
  const std::string& NodeName(int id) const { return nodes_.NameOf(id); }

  int NumNodes() const { return static_cast<int>(out_.size()); }

  int NumEdges() const {
    int total = 0;
    for (const auto& edges : out_) total += static_cast<int>(edges.size());
    return total;
  }

  void AddEdge(int from, int relation, int to) {
    RPQI_CHECK(0 <= from && from < NumNodes());
    RPQI_CHECK(0 <= to && to < NumNodes());
    RPQI_CHECK_GE(relation, 0);
    out_[from].push_back({relation, to});
    in_[to].push_back({relation, from});
  }

  bool HasEdge(int from, int relation, int to) const {
    for (const Edge& e : out_[from]) {
      if (e.relation == relation && e.to == to) return true;
    }
    return false;
  }

  /// Outgoing edges of `node`: node --relation--> e.to.
  const std::vector<Edge>& OutEdges(int node) const { return out_[node]; }
  /// Incoming edges of `node`: e.to --relation--> node (e.to is the source).
  const std::vector<Edge>& InEdges(int node) const { return in_[node]; }

 private:
  StringInterner nodes_;
  std::vector<std::vector<Edge>> out_;
  std::vector<std::vector<Edge>> in_;
};

}  // namespace rpqi

#endif  // RPQI_GRAPHDB_GRAPH_H_
