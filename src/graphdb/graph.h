#ifndef RPQI_GRAPHDB_GRAPH_H_
#define RPQI_GRAPHDB_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/interner.h"
#include "base/logging.h"

namespace rpqi {

/// CSR adjacency indexed by (relation, direction): row `relation * num_nodes
/// + node` of `offsets` brackets that node's targets for that relation, so
/// the eval BFS iterates exactly the edges carrying the transition's label
/// instead of filtering the node's whole edge list. Targets within a span are
/// sorted ascending (binary-searchable membership; duplicates allowed — the
/// database is a multigraph).
///
/// The arrays either live in the `_store` vectors (built in memory by
/// GraphDb::BuildLabelIndex) or point into an mmapped columnar snapshot (the
/// `ext_` pointers; the owning GraphDb holds the mapping alive through its
/// backing handle). Accessors resolve external-first so the struct stays
/// safely copyable: copying an owned index copies the vectors and leaves the
/// external pointers null.
struct LabelCsr {
  int num_nodes = 0;
  int num_relations = 0;

  const uint64_t* ext_out_offsets = nullptr;
  const uint32_t* ext_out_targets = nullptr;
  const uint64_t* ext_in_offsets = nullptr;
  const uint32_t* ext_in_targets = nullptr;

  std::vector<uint64_t> out_offsets_store;  // num_relations * num_nodes + 1
  std::vector<uint32_t> out_targets_store;  // num_edges
  std::vector<uint64_t> in_offsets_store;
  std::vector<uint32_t> in_targets_store;

  const uint64_t* out_offsets() const {
    return ext_out_offsets != nullptr ? ext_out_offsets
                                      : out_offsets_store.data();
  }
  const uint32_t* out_targets() const {
    return ext_out_targets != nullptr ? ext_out_targets
                                      : out_targets_store.data();
  }
  const uint64_t* in_offsets() const {
    return ext_in_offsets != nullptr ? ext_in_offsets
                                     : in_offsets_store.data();
  }
  const uint32_t* in_targets() const {
    return ext_in_targets != nullptr ? ext_in_targets
                                     : in_targets_store.data();
  }

  /// Targets of `node`'s out-edges labeled `relation`. Relations registered
  /// after the index was built (a query naming a relation absent from the
  /// graph) have no edges, hence the empty span above num_relations.
  std::span<const uint32_t> Out(int node, int relation) const {
    if (relation >= num_relations) return {};
    size_t row = static_cast<size_t>(relation) * num_nodes + node;
    const uint64_t* offsets = out_offsets();
    return {out_targets() + offsets[row],
            static_cast<size_t>(offsets[row + 1] - offsets[row])};
  }
  /// Sources of `node`'s in-edges labeled `relation` (the inverse direction,
  /// materialized — not recomputed by scanning out-edges).
  std::span<const uint32_t> In(int node, int relation) const {
    if (relation >= num_relations) return {};
    size_t row = static_cast<size_t>(relation) * num_nodes + node;
    const uint64_t* offsets = in_offsets();
    return {in_targets() + offsets[row],
            static_cast<size_t>(offsets[row + 1] - offsets[row])};
  }
};

/// Zero-copy description of a columnar snapshot's graph sections, produced by
/// graphdb/columnar.cc and consumed by GraphDb::FromColumnar. The node
/// dictionary pointers always alias `backing`; the CSR inside `csr` may be
/// external (identity relation mapping) or owned (remapped relation ids).
struct ColumnarGraphView {
  int num_nodes = 0;
  int64_t num_edges = 0;
  /// Node names concatenated in id order; name_offsets has num_nodes + 1
  /// entries bracketing each name's bytes.
  const char* name_blob = nullptr;
  const uint64_t* name_offsets = nullptr;
  /// Node ids permuted so names read in strictly increasing order — the
  /// sorted dictionary that replaces the interner's hash map on the read
  /// path (NodeId is a binary search).
  const uint32_t* nodes_by_name = nullptr;
  LabelCsr csr;
  std::shared_ptr<const void> backing;
};

/// A semistructured database (Section 2): a finite directed graph whose edges
/// are labeled with relation ids. Relation ids follow the convention of
/// SignedAlphabet (relation k owns Σ± symbols 2k and 2k+1), so a GraphDb and
/// the query automata over it are coordinated through one alphabet.
///
/// Nodes are dense ids; named nodes are interned, anonymous nodes (the
/// intermediate objects of canonical databases, Definition 12) get synthetic
/// names.
///
/// Two storage modes share this interface:
///   * row mode — the build/import path: an interner plus per-node edge
///     vectors, grown by AddNode/AddEdge. BuildLabelIndex() additionally
///     derives the LabelCsr view for the eval hot path.
///   * columnar mode — the read path of an mmapped binary snapshot
///     (graphdb/columnar.h): node names are a sorted dictionary view and
///     adjacency lives only in the LabelCsr. Columnar databases are
///     immutable; the mutators below reject them.
class GraphDb {
 public:
  struct Edge {
    int relation;
    int to;
  };

  GraphDb() = default;

  GraphDb(const GraphDb&) = default;
  GraphDb& operator=(const GraphDb&) = default;
  GraphDb(GraphDb&&) = default;
  GraphDb& operator=(GraphDb&&) = default;

  /// Adopts a columnar snapshot's sections as an immutable database.
  static GraphDb FromColumnar(ColumnarGraphView view);

  /// Returns the id of the named node, creating it if new.
  int AddNode(const std::string& name) {
    RPQI_CHECK(!columnar_);
    int id = nodes_.Intern(name);
    if (id == static_cast<int>(out_.size())) {
      out_.emplace_back();
      in_.emplace_back();
    }
    return id;
  }

  /// Creates a fresh unnamed node (named "_anonN" internally).
  int AddAnonymousNode() {
    return AddNode("_anon" + std::to_string(NumNodes()));
  }

  int NodeId(const std::string& name) const;
  std::string_view NodeName(int id) const {
    if (!columnar_) return nodes_.NameOf(id);
    RPQI_CHECK(0 <= id && id < num_nodes_);
    return {name_blob_ + name_offsets_[id],
            static_cast<size_t>(name_offsets_[id + 1] - name_offsets_[id])};
  }

  int NumNodes() const {
    return columnar_ ? num_nodes_ : static_cast<int>(out_.size());
  }

  int64_t NumEdges() const { return num_edges_; }

  void AddEdge(int from, int relation, int to) {
    RPQI_CHECK(!columnar_);
    RPQI_CHECK(0 <= from && from < NumNodes());
    RPQI_CHECK(0 <= to && to < NumNodes());
    RPQI_CHECK_GE(relation, 0);
    out_[from].push_back({relation, to});
    in_[to].push_back({relation, from});
    ++num_edges_;
    // A mutation invalidates any derived label index rather than updating it
    // (the index is built once, after the graph is complete).
    if (has_csr_) {
      has_csr_ = false;
      csr_ = LabelCsr();
    }
  }

  bool HasEdge(int from, int relation, int to) const;

  /// Outgoing edges of `node`: node --relation--> e.to. Row mode only —
  /// columnar databases carry adjacency exclusively in the label index.
  const std::vector<Edge>& OutEdges(int node) const {
    RPQI_CHECK(!columnar_);
    return out_[node];
  }
  /// Incoming edges of `node`: e.to --relation--> node (e.to is the source).
  const std::vector<Edge>& InEdges(int node) const {
    RPQI_CHECK(!columnar_);
    return in_[node];
  }

  /// True when adjacency is available as per-(relation, direction) CSR spans
  /// (always for columnar databases; after BuildLabelIndex for row ones).
  bool has_label_index() const { return has_csr_; }
  bool columnar() const { return columnar_; }

  /// Sorted targets of `node`'s out-edges labeled `relation`. Requires
  /// has_label_index().
  std::span<const uint32_t> OutTargets(int node, int relation) const {
    return csr_.Out(node, relation);
  }
  /// Sorted sources of `node`'s in-edges labeled `relation`.
  std::span<const uint32_t> InTargets(int node, int relation) const {
    return csr_.In(node, relation);
  }
  const LabelCsr& label_csr() const {
    RPQI_CHECK(has_csr_);
    return csr_;
  }

  /// Builds the LabelCsr view from the row adjacency, covering relation ids
  /// [0, max(num_relations, highest relation seen + 1)). Row mode only; a
  /// later AddEdge drops the index again.
  void BuildLabelIndex(int num_relations);

 private:
  // Row mode (build/import path); empty in columnar mode.
  StringInterner nodes_;
  std::vector<std::vector<Edge>> out_;
  std::vector<std::vector<Edge>> in_;
  /// Cached edge count, maintained by AddEdge — NumEdges() is on the `admin
  /// stats` and reload-response paths, where the old O(nodes) sum showed up.
  int64_t num_edges_ = 0;

  // Columnar mode: node dictionary views into backing_.
  bool columnar_ = false;
  int num_nodes_ = 0;
  const char* name_blob_ = nullptr;
  const uint64_t* name_offsets_ = nullptr;
  const uint32_t* nodes_by_name_ = nullptr;

  // Label index (always present in columnar mode, optional in row mode).
  bool has_csr_ = false;
  LabelCsr csr_;
  /// Keeps an mmapped snapshot alive for as long as any copy of this
  /// database aliases it.
  std::shared_ptr<const void> backing_;
};

}  // namespace rpqi

#endif  // RPQI_GRAPHDB_GRAPH_H_
