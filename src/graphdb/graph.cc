#include "graphdb/graph.h"

#include <algorithm>
#include <utility>

namespace rpqi {

GraphDb GraphDb::FromColumnar(ColumnarGraphView view) {
  GraphDb db;
  db.columnar_ = true;
  db.num_nodes_ = view.num_nodes;
  db.num_edges_ = view.num_edges;
  db.name_blob_ = view.name_blob;
  db.name_offsets_ = view.name_offsets;
  db.nodes_by_name_ = view.nodes_by_name;
  db.has_csr_ = true;
  db.csr_ = std::move(view.csr);
  db.backing_ = std::move(view.backing);
  RPQI_CHECK(db.csr_.num_nodes == db.num_nodes_);
  return db;
}

int GraphDb::NodeId(const std::string& name) const {
  if (!columnar_) return nodes_.Find(name);
  // The dictionary is sorted by name (a validated invariant of the columnar
  // format), so lookup is a binary search over the id permutation.
  std::string_view target(name);
  const uint32_t* begin = nodes_by_name_;
  const uint32_t* end = nodes_by_name_ + num_nodes_;
  const uint32_t* it =
      std::lower_bound(begin, end, target, [this](uint32_t id,
                                                  std::string_view key) {
        return NodeName(static_cast<int>(id)) < key;
      });
  if (it == end || NodeName(static_cast<int>(*it)) != target) return -1;
  return static_cast<int>(*it);
}

bool GraphDb::HasEdge(int from, int relation, int to) const {
  if (has_csr_) {
    std::span<const uint32_t> targets = csr_.Out(from, relation);
    return std::binary_search(targets.begin(), targets.end(),
                              static_cast<uint32_t>(to));
  }
  for (const Edge& e : out_[from]) {
    if (e.relation == relation && e.to == to) return true;
  }
  return false;
}

void GraphDb::BuildLabelIndex(int num_relations) {
  RPQI_CHECK(!columnar_);
  RPQI_CHECK_GE(num_relations, 0);
  int relations = num_relations;
  for (const auto& edges : out_) {
    for (const Edge& e : edges) relations = std::max(relations, e.relation + 1);
  }
  const int n = NumNodes();
  const size_t rows = static_cast<size_t>(relations) * n;
  LabelCsr csr;
  csr.num_nodes = n;
  csr.num_relations = relations;
  csr.out_offsets_store.assign(rows + 1, 0);
  csr.in_offsets_store.assign(rows + 1, 0);
  // Counting pass: offsets[row + 1] accumulates the span length, so the
  // prefix sum below turns the array into span starts in place.
  for (int node = 0; node < n; ++node) {
    for (const Edge& e : out_[node]) {
      ++csr.out_offsets_store[static_cast<size_t>(e.relation) * n + node + 1];
    }
    for (const Edge& e : in_[node]) {
      ++csr.in_offsets_store[static_cast<size_t>(e.relation) * n + node + 1];
    }
  }
  for (size_t row = 0; row < rows; ++row) {
    csr.out_offsets_store[row + 1] += csr.out_offsets_store[row];
    csr.in_offsets_store[row + 1] += csr.in_offsets_store[row];
  }
  csr.out_targets_store.resize(static_cast<size_t>(num_edges_));
  csr.in_targets_store.resize(static_cast<size_t>(num_edges_));
  std::vector<uint64_t> out_cursor(csr.out_offsets_store.begin(),
                                   csr.out_offsets_store.end() - 1);
  std::vector<uint64_t> in_cursor(csr.in_offsets_store.begin(),
                                  csr.in_offsets_store.end() - 1);
  for (int node = 0; node < n; ++node) {
    for (const Edge& e : out_[node]) {
      size_t row = static_cast<size_t>(e.relation) * n + node;
      csr.out_targets_store[out_cursor[row]++] = static_cast<uint32_t>(e.to);
    }
    for (const Edge& e : in_[node]) {
      size_t row = static_cast<size_t>(e.relation) * n + node;
      csr.in_targets_store[in_cursor[row]++] = static_cast<uint32_t>(e.to);
    }
  }
  // Sort within each span: the on-disk format requires it, HasEdge binary
  // searches it, and the validator checks it.
  for (size_t row = 0; row < rows; ++row) {
    std::sort(csr.out_targets_store.begin() + csr.out_offsets_store[row],
              csr.out_targets_store.begin() + csr.out_offsets_store[row + 1]);
    std::sort(csr.in_targets_store.begin() + csr.in_offsets_store[row],
              csr.in_targets_store.begin() + csr.in_offsets_store[row + 1]);
  }
  csr_ = std::move(csr);
  has_csr_ = true;
}

}  // namespace rpqi
