#ifndef RPQI_GRAPHDB_VIEWS_H_
#define RPQI_GRAPHDB_VIEWS_H_

#include <utility>
#include <vector>

#include "automata/nfa.h"
#include "graphdb/graph.h"

namespace rpqi {

/// Materializes a view over a database: ext(V) = ans(def(V), B), as a sorted
/// pair list. This is how benchmarks and examples produce view extensions that
/// are exact by construction.
std::vector<std::pair<int, int>> MaterializeView(const GraphDb& db,
                                                 const Nfa& definition);

/// A "view graph": a database over the view alphabet Σ_E whose edges are the
/// view extensions — pair (a,b) ∈ ext(V_i) becomes an edge a --i--> b. A
/// rewriting (a query over Σ_E±) is evaluated by running it over this graph,
/// which is the second step of view-based query rewriting.
GraphDb BuildViewGraph(int num_objects,
                       const std::vector<std::vector<std::pair<int, int>>>&
                           extensions);

}  // namespace rpqi

#endif  // RPQI_GRAPHDB_VIEWS_H_
