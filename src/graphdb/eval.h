#ifndef RPQI_GRAPHDB_EVAL_H_
#define RPQI_GRAPHDB_EVAL_H_

#include <utility>
#include <vector>

#include "automata/nfa.h"
#include "base/bitset.h"
#include "base/budget.h"
#include "base/status.h"
#include "graphdb/graph.h"

namespace rpqi {

/// Evaluates an RPQI over a database: the set of nodes y such that some
/// semipath from x to y conforms to the query (Section 2 semantics — forward
/// symbols 2k follow edges of relation k, inverse symbols 2k+1 traverse them
/// backwards). Product-graph BFS over (query state, node); O(|states|·|edges|).
Bitset EvalRpqiFrom(const GraphDb& db, const Nfa& query, int start_node);

/// ans(query, db) as a sorted list of node pairs.
std::vector<std::pair<int, int>> EvalRpqiAllPairs(const GraphDb& db,
                                                  const Nfa& query);

/// Membership of one pair in ans(query, db).
bool EvalRpqiPair(const GraphDb& db, const Nfa& query, int from, int to);

/// Budgeted variants: identical semantics, but the product-graph BFS charges
/// one budget unit per discovered (state, node) configuration and honors the
/// budget's deadline / cancellation / state quota. A null budget is unlimited.
StatusOr<Bitset> EvalRpqiFromWithBudget(const GraphDb& db, const Nfa& query,
                                        int start_node, Budget* budget);
StatusOr<std::vector<std::pair<int, int>>> EvalRpqiAllPairsWithBudget(
    const GraphDb& db, const Nfa& query, Budget* budget);
StatusOr<bool> EvalRpqiPairWithBudget(const GraphDb& db, const Nfa& query,
                                      int from, int to, Budget* budget);

}  // namespace rpqi

#endif  // RPQI_GRAPHDB_EVAL_H_
