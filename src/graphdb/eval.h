#ifndef RPQI_GRAPHDB_EVAL_H_
#define RPQI_GRAPHDB_EVAL_H_

#include <utility>
#include <vector>

#include "automata/flat.h"
#include "automata/nfa.h"
#include "base/bitset.h"
#include "base/budget.h"
#include "base/status.h"
#include "graphdb/graph.h"

namespace rpqi {

/// Evaluates an RPQI over a database: the set of nodes y such that some
/// semipath from x to y conforms to the query (Section 2 semantics — forward
/// symbols 2k follow edges of relation k, inverse symbols 2k+1 traverse them
/// backwards). Product-graph BFS over (query state, node); O(|states|·|edges|).
Bitset EvalRpqiFrom(const GraphDb& db, const Nfa& query, int start_node);

/// ans(query, db) as a sorted list of node pairs.
std::vector<std::pair<int, int>> EvalRpqiAllPairs(const GraphDb& db,
                                                  const Nfa& query);

/// Membership of one pair in ans(query, db).
bool EvalRpqiPair(const GraphDb& db, const Nfa& query, int from, int to);

/// CompileFlat plus the `eval.plan_compiles` counter: the one per-query
/// compilation the Nfa entry points below perform before the BFS. Callers
/// that evaluate repeatedly (the serving layer, the all-pairs sweep) compile
/// once and use the FlatNfa overloads — the counter is how tests pin that
/// per-query setup never scales with the number of source nodes.
FlatNfa CompileEvalPlan(const Nfa& query);

/// Budgeted variants: identical semantics, but the product-graph BFS charges
/// one budget unit per discovered (state, node) configuration and honors the
/// budget's deadline / cancellation / state quota. A null budget is
/// unlimited. The Nfa overloads compile the query to its flat plan form
/// (CompileEvalPlan) exactly once and delegate to the FlatNfa overloads.
StatusOr<Bitset> EvalRpqiFromWithBudget(const GraphDb& db, const Nfa& query,
                                        int start_node, Budget* budget);
StatusOr<std::vector<std::pair<int, int>>> EvalRpqiAllPairsWithBudget(
    const GraphDb& db, const Nfa& query, Budget* budget);
StatusOr<bool> EvalRpqiPairWithBudget(const GraphDb& db, const Nfa& query,
                                      int from, int to, Budget* budget);

/// FlatNfa overloads — the eval hot path. The BFS inner loop iterates the
/// plan's contiguous edge spans against the graph's LabelCsr spans; no
/// per-query setup happens here, so a compiled plan is reusable across any
/// number of source nodes and server requests. `plan` must satisfy the
/// FlatNfa invariants (CompileFlat output, or a deserialized plan that
/// passed ValidateFlatNfa).
StatusOr<Bitset> EvalRpqiFromWithBudget(const GraphDb& db, const FlatNfa& plan,
                                        int start_node, Budget* budget);
StatusOr<std::vector<std::pair<int, int>>> EvalRpqiAllPairsWithBudget(
    const GraphDb& db, const FlatNfa& plan, Budget* budget);
StatusOr<bool> EvalRpqiPairWithBudget(const GraphDb& db, const FlatNfa& plan,
                                      int from, int to, Budget* budget);

}  // namespace rpqi

#endif  // RPQI_GRAPHDB_EVAL_H_
