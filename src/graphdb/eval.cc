#include "graphdb/eval.h"

#include <algorithm>
#include <span>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpq/alphabet.h"

namespace rpqi {

namespace {

/// Shared BFS core: reachable (state, node) configurations from `start_node`
/// in all initial states. Returns visited flags indexed [node * states + s].
/// Charges one budget unit per discovered configuration and checks the budget
/// on every expansion; a null budget is unlimited.
///
/// The inner loop walks the plan's contiguous edge span for the expanded
/// state against the graph's per-(relation, direction) CSR span — two flat
/// arrays, no per-state pointer chasing on either side (DESIGN.md §16).
StatusOr<std::vector<char>> ReachableConfigurations(const GraphDb& db,
                                                    const FlatNfa& plan,
                                                    int start_node,
                                                    Budget* budget) {
  // Counters are accumulated in locals and flushed once per BFS: this runs
  // once per (start node, probe) inside the CDA search, so per-config atomic
  // traffic would dominate the loop.
  static const obs::Counter bfs_runs("eval.bfs_runs");
  static const obs::Counter configurations("eval.configurations");
  static const obs::Counter csr_runs("eval.csr_runs");
  static const obs::Counter scan_runs("eval.scan_runs");
  const bool use_csr = db.has_label_index();
  int64_t discovered = 0;
  const int num_states = plan.NumStates();
  std::vector<char> visited(static_cast<size_t>(db.NumNodes()) * num_states,
                            0);
  std::vector<std::pair<int, int>> stack;  // (state, node)
  Status charge_status = Status::Ok();
  auto visit = [&](int state, int node) {
    size_t index = static_cast<size_t>(node) * num_states + state;
    if (!visited[index]) {
      visited[index] = 1;
      ++discovered;
      if (charge_status.ok()) charge_status = BudgetCharge(budget, 1);
      stack.push_back({state, node});
    }
  };
  for (int32_t s : plan.InitialStates()) visit(s, start_node);

  auto flush = [&] {
    bfs_runs.Increment();
    configurations.Add(discovered);
    // Which adjacency path this run took (CSR spans vs filtered row scan) —
    // the pair partitions eval.bfs_runs, so a snapshot unexpectedly serving
    // without its label index shows up in the counter dump.
    (use_csr ? csr_runs : scan_runs).Increment();
  };
  while (!stack.empty()) {
    if (!charge_status.ok()) {
      flush();
      return charge_status;
    }
    if (Status check = BudgetCheck(budget); !check.ok()) {
      flush();
      return check;
    }
    auto [state, node] = stack.back();
    stack.pop_back();
    for (const FlatNfa::Edge& t : plan.Edges(state)) {
      int relation = SignedAlphabet::RelationOfSymbol(t.symbol);
      bool inverse = SignedAlphabet::IsInverseSymbol(t.symbol);
      if (use_csr) {
        // Contiguous span of exactly the edges carrying this label — the
        // whole point of the CSR-by-(relation, direction) layout. Iteration
        // order within a span is sorted rather than insertion order; the
        // visited *set* is order-independent, so results are bit-identical
        // to the scan path.
        std::span<const uint32_t> targets = inverse
                                                ? db.InTargets(node, relation)
                                                : db.OutTargets(node, relation);
        for (uint32_t other : targets) visit(t.to, static_cast<int>(other));
      } else if (inverse) {
        for (const GraphDb::Edge& e : db.InEdges(node)) {
          if (e.relation == relation) visit(t.to, e.to);
        }
      } else {
        for (const GraphDb::Edge& e : db.OutEdges(node)) {
          if (e.relation == relation) visit(t.to, e.to);
        }
      }
    }
  }
  flush();
  RPQI_RETURN_IF_ERROR(charge_status);
  return visited;
}

}  // namespace

FlatNfa CompileEvalPlan(const Nfa& query) {
  // One compile per *query*, never per source node: the all-pairs sweep and
  // the serving layer both hinge on this staying O(1) in the node count, and
  // the counter is the regression tripwire.
  static const obs::Counter plan_compiles("eval.plan_compiles");
  plan_compiles.Increment();
  return CompileFlat(query);
}

StatusOr<Bitset> EvalRpqiFromWithBudget(const GraphDb& db, const FlatNfa& plan,
                                        int start_node, Budget* budget) {
  RPQI_CHECK(0 <= start_node && start_node < db.NumNodes());
  const int num_states = plan.NumStates();
  RPQI_ASSIGN_OR_RETURN(std::vector<char> visited,
                        ReachableConfigurations(db, plan, start_node, budget));

  Bitset answer(db.NumNodes());
  for (int node = 0; node < db.NumNodes(); ++node) {
    for (int s = 0; s < num_states; ++s) {
      if (plan.IsAccepting(s) &&
          visited[static_cast<size_t>(node) * num_states + s]) {
        answer.Set(node);
        break;
      }
    }
  }
  return answer;
}

StatusOr<std::vector<std::pair<int, int>>> EvalRpqiAllPairsWithBudget(
    const GraphDb& db, const FlatNfa& plan, Budget* budget) {
  // Per-pair/per-start spans would flood the trace (the CDA search calls the
  // single-source variants thousands of times); only the all-pairs sweep is
  // coarse enough to be worth a span.
  obs::Span span("eval.all_pairs");
  std::vector<std::pair<int, int>> answer;
  for (int x = 0; x < db.NumNodes(); ++x) {
    RPQI_ASSIGN_OR_RETURN(Bitset reachable,
                          EvalRpqiFromWithBudget(db, plan, x, budget));
    for (int y = reachable.NextSetBit(0); y >= 0;
         y = reachable.NextSetBit(y + 1)) {
      answer.push_back({x, y});
    }
  }
  std::sort(answer.begin(), answer.end());
  return answer;
}

StatusOr<bool> EvalRpqiPairWithBudget(const GraphDb& db, const FlatNfa& plan,
                                      int from, int to, Budget* budget) {
  RPQI_CHECK(0 <= to && to < db.NumNodes());
  RPQI_ASSIGN_OR_RETURN(Bitset reachable,
                        EvalRpqiFromWithBudget(db, plan, from, budget));
  return reachable.Test(to);
}

StatusOr<Bitset> EvalRpqiFromWithBudget(const GraphDb& db,
                                        const Nfa& query_input, int start_node,
                                        Budget* budget) {
  const FlatNfa plan = CompileEvalPlan(query_input);
  return EvalRpqiFromWithBudget(db, plan, start_node, budget);
}

StatusOr<std::vector<std::pair<int, int>>> EvalRpqiAllPairsWithBudget(
    const GraphDb& db, const Nfa& query_input, Budget* budget) {
  // Compile once, sweep every source with the same plan. (This used to
  // re-run the ε-closure inside the per-source loop — O(nodes) redundant
  // query setup per sweep.)
  const FlatNfa plan = CompileEvalPlan(query_input);
  return EvalRpqiAllPairsWithBudget(db, plan, budget);
}

StatusOr<bool> EvalRpqiPairWithBudget(const GraphDb& db, const Nfa& query,
                                      int from, int to, Budget* budget) {
  const FlatNfa plan = CompileEvalPlan(query);
  return EvalRpqiPairWithBudget(db, plan, from, to, budget);
}

Bitset EvalRpqiFrom(const GraphDb& db, const Nfa& query, int start_node) {
  StatusOr<Bitset> result =
      EvalRpqiFromWithBudget(db, query, start_node, nullptr);
  RPQI_CHECK(result.ok());
  return std::move(result).value();
}

std::vector<std::pair<int, int>> EvalRpqiAllPairs(const GraphDb& db,
                                                  const Nfa& query) {
  StatusOr<std::vector<std::pair<int, int>>> result =
      EvalRpqiAllPairsWithBudget(db, query, nullptr);
  RPQI_CHECK(result.ok());
  return std::move(result).value();
}

bool EvalRpqiPair(const GraphDb& db, const Nfa& query, int from, int to) {
  StatusOr<bool> result = EvalRpqiPairWithBudget(db, query, from, to, nullptr);
  RPQI_CHECK(result.ok());
  return *result;
}

}  // namespace rpqi
