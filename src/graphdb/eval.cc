#include "graphdb/eval.h"

#include <algorithm>
#include <span>

#include "automata/ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpq/alphabet.h"

namespace rpqi {

namespace {

/// Shared BFS core: reachable (state, node) configurations from `start_node`
/// in all initial states. Returns visited flags indexed [node * states + s].
/// Charges one budget unit per discovered configuration and checks the budget
/// on every expansion; a null budget is unlimited.
StatusOr<std::vector<char>> ReachableConfigurations(const GraphDb& db,
                                                    const Nfa& query,
                                                    int start_node,
                                                    Budget* budget) {
  // Counters are accumulated in locals and flushed once per BFS: this runs
  // once per (start node, probe) inside the CDA search, so per-config atomic
  // traffic would dominate the loop.
  static const obs::Counter bfs_runs("eval.bfs_runs");
  static const obs::Counter configurations("eval.configurations");
  static const obs::Counter csr_runs("eval.csr_runs");
  static const obs::Counter scan_runs("eval.scan_runs");
  const bool use_csr = db.has_label_index();
  int64_t discovered = 0;
  const int num_states = query.NumStates();
  std::vector<char> visited(static_cast<size_t>(db.NumNodes()) * num_states,
                            0);
  std::vector<std::pair<int, int>> stack;  // (state, node)
  Status charge_status = Status::Ok();
  auto visit = [&](int state, int node) {
    size_t index = static_cast<size_t>(node) * num_states + state;
    if (!visited[index]) {
      visited[index] = 1;
      ++discovered;
      if (charge_status.ok()) charge_status = BudgetCharge(budget, 1);
      stack.push_back({state, node});
    }
  };
  for (int s : query.InitialStates()) visit(s, start_node);

  auto flush = [&] {
    bfs_runs.Increment();
    configurations.Add(discovered);
    // Which adjacency path this run took (CSR spans vs filtered row scan) —
    // the pair partitions eval.bfs_runs, so a snapshot unexpectedly serving
    // without its label index shows up in the counter dump.
    (use_csr ? csr_runs : scan_runs).Increment();
  };
  while (!stack.empty()) {
    if (!charge_status.ok()) {
      flush();
      return charge_status;
    }
    if (Status check = BudgetCheck(budget); !check.ok()) {
      flush();
      return check;
    }
    auto [state, node] = stack.back();
    stack.pop_back();
    for (const Nfa::Transition& t : query.TransitionsFrom(state)) {
      int relation = SignedAlphabet::RelationOfSymbol(t.symbol);
      bool inverse = SignedAlphabet::IsInverseSymbol(t.symbol);
      if (use_csr) {
        // Contiguous span of exactly the edges carrying this label — the
        // whole point of the CSR-by-(relation, direction) layout. Iteration
        // order within a span is sorted rather than insertion order; the
        // visited *set* is order-independent, so results are bit-identical
        // to the scan path.
        std::span<const uint32_t> targets = inverse
                                                ? db.InTargets(node, relation)
                                                : db.OutTargets(node, relation);
        for (uint32_t other : targets) visit(t.to, static_cast<int>(other));
      } else if (inverse) {
        for (const GraphDb::Edge& e : db.InEdges(node)) {
          if (e.relation == relation) visit(t.to, e.to);
        }
      } else {
        for (const GraphDb::Edge& e : db.OutEdges(node)) {
          if (e.relation == relation) visit(t.to, e.to);
        }
      }
    }
  }
  flush();
  RPQI_RETURN_IF_ERROR(charge_status);
  return visited;
}

}  // namespace

StatusOr<Bitset> EvalRpqiFromWithBudget(const GraphDb& db,
                                        const Nfa& query_input, int start_node,
                                        Budget* budget) {
  RPQI_CHECK(0 <= start_node && start_node < db.NumNodes());
  const Nfa query = RemoveEpsilon(query_input);
  const int num_states = query.NumStates();
  RPQI_ASSIGN_OR_RETURN(
      std::vector<char> visited,
      ReachableConfigurations(db, query, start_node, budget));

  Bitset answer(db.NumNodes());
  for (int node = 0; node < db.NumNodes(); ++node) {
    for (int s = 0; s < num_states; ++s) {
      if (query.IsAccepting(s) &&
          visited[static_cast<size_t>(node) * num_states + s]) {
        answer.Set(node);
        break;
      }
    }
  }
  return answer;
}

StatusOr<std::vector<std::pair<int, int>>> EvalRpqiAllPairsWithBudget(
    const GraphDb& db, const Nfa& query_input, Budget* budget) {
  // Per-pair/per-start spans would flood the trace (the CDA search calls the
  // single-source variants thousands of times); only the all-pairs sweep is
  // coarse enough to be worth a span.
  obs::Span span("eval.all_pairs");
  const Nfa query = RemoveEpsilon(query_input);
  std::vector<std::pair<int, int>> answer;
  for (int x = 0; x < db.NumNodes(); ++x) {
    RPQI_ASSIGN_OR_RETURN(Bitset reachable,
                          EvalRpqiFromWithBudget(db, query, x, budget));
    for (int y = reachable.NextSetBit(0); y >= 0;
         y = reachable.NextSetBit(y + 1)) {
      answer.push_back({x, y});
    }
  }
  std::sort(answer.begin(), answer.end());
  return answer;
}

StatusOr<bool> EvalRpqiPairWithBudget(const GraphDb& db, const Nfa& query,
                                      int from, int to, Budget* budget) {
  RPQI_CHECK(0 <= to && to < db.NumNodes());
  RPQI_ASSIGN_OR_RETURN(Bitset reachable,
                        EvalRpqiFromWithBudget(db, query, from, budget));
  return reachable.Test(to);
}

Bitset EvalRpqiFrom(const GraphDb& db, const Nfa& query, int start_node) {
  StatusOr<Bitset> result =
      EvalRpqiFromWithBudget(db, query, start_node, nullptr);
  RPQI_CHECK(result.ok());
  return std::move(result).value();
}

std::vector<std::pair<int, int>> EvalRpqiAllPairs(const GraphDb& db,
                                                  const Nfa& query) {
  StatusOr<std::vector<std::pair<int, int>>> result =
      EvalRpqiAllPairsWithBudget(db, query, nullptr);
  RPQI_CHECK(result.ok());
  return std::move(result).value();
}

bool EvalRpqiPair(const GraphDb& db, const Nfa& query, int from, int to) {
  StatusOr<bool> result = EvalRpqiPairWithBudget(db, query, from, to, nullptr);
  RPQI_CHECK(result.ok());
  return *result;
}

}  // namespace rpqi
