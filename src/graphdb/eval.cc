#include "graphdb/eval.h"

#include <algorithm>

#include "automata/ops.h"
#include "rpq/alphabet.h"

namespace rpqi {

namespace {

/// Shared BFS core: reachable (state, node) configurations from `start_node`
/// in all initial states. Returns visited flags indexed [node * states + s].
std::vector<char> ReachableConfigurations(const GraphDb& db, const Nfa& query,
                                          int start_node) {
  const int num_states = query.NumStates();
  std::vector<char> visited(static_cast<size_t>(db.NumNodes()) * num_states,
                            0);
  std::vector<std::pair<int, int>> stack;  // (state, node)
  auto visit = [&](int state, int node) {
    size_t index = static_cast<size_t>(node) * num_states + state;
    if (!visited[index]) {
      visited[index] = 1;
      stack.push_back({state, node});
    }
  };
  for (int s : query.InitialStates()) visit(s, start_node);

  while (!stack.empty()) {
    auto [state, node] = stack.back();
    stack.pop_back();
    for (const Nfa::Transition& t : query.TransitionsFrom(state)) {
      if (SignedAlphabet::IsInverseSymbol(t.symbol)) {
        int relation = SignedAlphabet::RelationOfSymbol(t.symbol);
        for (const GraphDb::Edge& e : db.InEdges(node)) {
          if (e.relation == relation) visit(t.to, e.to);
        }
      } else {
        int relation = SignedAlphabet::RelationOfSymbol(t.symbol);
        for (const GraphDb::Edge& e : db.OutEdges(node)) {
          if (e.relation == relation) visit(t.to, e.to);
        }
      }
    }
  }
  return visited;
}

}  // namespace

Bitset EvalRpqiFrom(const GraphDb& db, const Nfa& query_input,
                    int start_node) {
  RPQI_CHECK(0 <= start_node && start_node < db.NumNodes());
  const Nfa query = RemoveEpsilon(query_input);
  const int num_states = query.NumStates();
  std::vector<char> visited = ReachableConfigurations(db, query, start_node);

  Bitset answer(db.NumNodes());
  for (int node = 0; node < db.NumNodes(); ++node) {
    for (int s = 0; s < num_states; ++s) {
      if (query.IsAccepting(s) &&
          visited[static_cast<size_t>(node) * num_states + s]) {
        answer.Set(node);
        break;
      }
    }
  }
  return answer;
}

std::vector<std::pair<int, int>> EvalRpqiAllPairs(const GraphDb& db,
                                                  const Nfa& query_input) {
  const Nfa query = RemoveEpsilon(query_input);
  std::vector<std::pair<int, int>> answer;
  for (int x = 0; x < db.NumNodes(); ++x) {
    Bitset reachable = EvalRpqiFrom(db, query, x);
    for (int y = reachable.NextSetBit(0); y >= 0;
         y = reachable.NextSetBit(y + 1)) {
      answer.push_back({x, y});
    }
  }
  std::sort(answer.begin(), answer.end());
  return answer;
}

bool EvalRpqiPair(const GraphDb& db, const Nfa& query, int from, int to) {
  RPQI_CHECK(0 <= to && to < db.NumNodes());
  return EvalRpqiFrom(db, query, from).Test(to);
}

}  // namespace rpqi
