#include "graphdb/views.h"

#include "graphdb/eval.h"

namespace rpqi {

std::vector<std::pair<int, int>> MaterializeView(const GraphDb& db,
                                                 const Nfa& definition) {
  return EvalRpqiAllPairs(db, definition);
}

GraphDb BuildViewGraph(
    int num_objects,
    const std::vector<std::vector<std::pair<int, int>>>& extensions) {
  GraphDb graph;
  for (int i = 0; i < num_objects; ++i) {
    graph.AddNode("obj" + std::to_string(i));
  }
  for (size_t view = 0; view < extensions.size(); ++view) {
    for (const auto& [a, b] : extensions[view]) {
      graph.AddEdge(a, static_cast<int>(view), b);
    }
  }
  return graph;
}

}  // namespace rpqi
