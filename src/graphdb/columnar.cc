#include "graphdb/columnar.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <utility>

#include "base/hash.h"
#include "base/logging.h"
#include "fault/fault.h"

namespace rpqi {

namespace {

/// The fixed on-disk header. Field order keeps every member naturally
/// aligned, so the struct layout is the wire layout with no packing pragma;
/// the static_asserts below pin that (a compiler inserting padding would
/// change sizeof and fail the build, not corrupt files).
struct ColumnarSection {
  uint64_t offset = 0;
  uint64_t bytes = 0;
};

struct ColumnarHeader {
  char magic[8];
  uint32_t version;
  uint32_t endian_tag;
  uint64_t file_bytes;
  uint64_t payload_checksum;
  uint64_t fingerprint;
  uint32_t num_nodes;
  uint32_t num_relations;
  uint64_t num_edges;
  ColumnarSection sections[kColumnarSectionCount];
};

static_assert(sizeof(ColumnarHeader) == 200,
              "on-disk header layout changed; bump kColumnarVersion");
static_assert(alignof(ColumnarHeader) == 8, "header must be 8-byte aligned");
static_assert(std::is_trivially_copyable_v<ColumnarHeader>,
              "header is memcpy'd to/from disk");
static_assert(sizeof(ColumnarHeader) % 8 == 0,
              "payload must start 8-byte aligned");

constexpr size_t kHeaderBytes = sizeof(ColumnarHeader);

size_t Align8(size_t n) { return (n + 7) & ~size_t{7}; }

/// Folds `size` bytes into a running checksum, 8 at a time via memcpy
/// (alignment-free) with the length folded in first.
uint64_t ChecksumSpan(uint64_t h, const char* data, size_t size) {
  h = HashCombine(h, size);
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, 8);
    h = HashCombine(h, word);
  }
  for (; i < size; ++i) {
    h = HashCombine(h, static_cast<unsigned char>(data[i]));
  }
  return h;
}

constexpr size_t kChecksumFieldOffset = 16 /* magic + version + endian */ + 8;
static_assert(kChecksumFieldOffset == offsetof(ColumnarHeader,
                                               payload_checksum));

/// Checksum of the whole file except the 8 checksum bytes themselves: the
/// header fields (fingerprint, counts, section table) are covered too, so a
/// bit flip *anywhere* in the file is detected, not only in the payload.
uint64_t FileChecksum(const char* data, size_t size) {
  uint64_t h = 0x52505149434f4c31ULL;  // "RPQICOL1"
  h = ChecksumSpan(h, data, kChecksumFieldOffset);
  h = ChecksumSpan(h, data + kChecksumFieldOffset + 8,
                   size - kChecksumFieldOffset - 8);
  return h;
}

std::string Ctx(std::string_view source_name) {
  if (source_name.empty()) return "columnar: ";
  return std::string(source_name) + ": ";
}

std::string Num(uint64_t n) { return std::to_string(n); }

/// Read-only MAP_PRIVATE mapping; unmapped when the last shared_ptr holder
/// (ColumnarParts::backing, and through it any derived GraphDb) drops.
class MappedFile {
 public:
  MappedFile(const char* data, size_t size) : data_(data), size_(size) {}
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (data_ != nullptr) {
      ::munmap(const_cast<char*>(data_), size_);
    }
  }
  const char* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  const char* data_;
  size_t size_;
};

std::string ErrnoSuffix() { return " (errno " + std::to_string(errno) + ")"; }

/// Appends `count` elements of `src` to `out` as raw little-endian bytes.
template <typename T>
void AppendArray(std::string* out, const T* src, size_t count) {
  size_t bytes = count * sizeof(T);
  size_t at = out->size();
  out->resize(at + bytes);
  if (bytes > 0) std::memcpy(out->data() + at, src, bytes);
}

}  // namespace

bool IsColumnarSnapshot(std::string_view prefix) {
  return prefix.size() >= sizeof(kColumnarMagic) &&
         std::memcmp(prefix.data(), kColumnarMagic, sizeof(kColumnarMagic)) ==
             0;
}

StatusOr<std::string> EncodeColumnar(const GraphDb& db,
                                     const SignedAlphabet& alphabet,
                                     uint64_t fingerprint) {
  const int num_relations = alphabet.NumRelations();
  // The encoder reads adjacency through the label index; derive it on a
  // scratch copy when the caller has not built one (offline path — compact
  // and the snapshot loader both index before encoding).
  GraphDb scratch;
  const GraphDb* src = &db;
  if (!db.has_label_index()) {
    scratch = db;
    scratch.BuildLabelIndex(num_relations);
    src = &scratch;
  }
  const LabelCsr& csr = src->label_csr();
  if (csr.num_relations > num_relations) {
    return Status::InvalidArgument(
        "columnar: graph names relation id " + Num(csr.num_relations - 1) +
        " but the alphabet declares only " + Num(num_relations) +
        " relations");
  }
  const int n = src->NumNodes();
  const int64_t num_edges = src->NumEdges();

  // Node dictionary: names in id order plus the sorted-by-name permutation.
  std::string name_blob;
  std::vector<uint64_t> name_offsets(1, 0);
  for (int id = 0; id < n; ++id) {
    name_blob.append(src->NodeName(id));
    name_offsets.push_back(name_blob.size());
  }
  std::vector<uint32_t> by_name(n);
  for (int id = 0; id < n; ++id) by_name[id] = static_cast<uint32_t>(id);
  std::sort(by_name.begin(), by_name.end(), [&](uint32_t a, uint32_t b) {
    return src->NodeName(static_cast<int>(a)) <
           src->NodeName(static_cast<int>(b));
  });

  std::string relation_blob;
  std::vector<uint64_t> relation_offsets(1, 0);
  for (int r = 0; r < num_relations; ++r) {
    relation_blob.append(alphabet.RelationName(r));
    relation_offsets.push_back(relation_blob.size());
  }

  // CSR sections, rebuilt row by row so an index narrower than the alphabet
  // (relations registered after the graph loaded) pads with empty spans.
  const size_t rows = static_cast<size_t>(num_relations) * n;
  std::vector<uint64_t> out_offsets(rows + 1, 0);
  std::vector<uint64_t> in_offsets(rows + 1, 0);
  std::vector<uint32_t> out_targets;
  std::vector<uint32_t> in_targets;
  out_targets.reserve(static_cast<size_t>(num_edges));
  in_targets.reserve(static_cast<size_t>(num_edges));
  for (int r = 0; r < num_relations; ++r) {
    for (int node = 0; node < n; ++node) {
      size_t row = static_cast<size_t>(r) * n + node;
      for (uint32_t to : csr.Out(node, r)) out_targets.push_back(to);
      out_offsets[row + 1] = out_targets.size();
      for (uint32_t from : csr.In(node, r)) in_targets.push_back(from);
      in_offsets[row + 1] = in_targets.size();
    }
  }
  RPQI_CHECK(static_cast<int64_t>(out_targets.size()) == num_edges);
  RPQI_CHECK(static_cast<int64_t>(in_targets.size()) == num_edges);

  ColumnarHeader header{};
  std::memcpy(header.magic, kColumnarMagic, sizeof(kColumnarMagic));
  header.version = kColumnarVersion;
  header.endian_tag = kColumnarEndianTag;
  header.fingerprint = fingerprint;
  header.num_nodes = static_cast<uint32_t>(n);
  header.num_relations = static_cast<uint32_t>(num_relations);
  header.num_edges = static_cast<uint64_t>(num_edges);

  std::string out(kHeaderBytes, '\0');
  auto add_section = [&out](int id, ColumnarHeader* h, auto&& append) {
    out.resize(Align8(out.size()), '\0');
    h->sections[id].offset = out.size();
    append();
    h->sections[id].bytes = out.size() - h->sections[id].offset;
  };
  add_section(kSectionNodeNameBlob, &header,
              [&] { out.append(name_blob); });
  add_section(kSectionNodeNameOffsets, &header, [&] {
    AppendArray(&out, name_offsets.data(), name_offsets.size());
  });
  add_section(kSectionNodesByName, &header,
              [&] { AppendArray(&out, by_name.data(), by_name.size()); });
  add_section(kSectionRelationNameBlob, &header,
              [&] { out.append(relation_blob); });
  add_section(kSectionRelationNameOffsets, &header, [&] {
    AppendArray(&out, relation_offsets.data(), relation_offsets.size());
  });
  add_section(kSectionOutOffsets, &header, [&] {
    AppendArray(&out, out_offsets.data(), out_offsets.size());
  });
  add_section(kSectionOutTargets, &header, [&] {
    AppendArray(&out, out_targets.data(), out_targets.size());
  });
  add_section(kSectionInOffsets, &header, [&] {
    AppendArray(&out, in_offsets.data(), in_offsets.size());
  });
  add_section(kSectionInTargets, &header, [&] {
    AppendArray(&out, in_targets.data(), in_targets.size());
  });
  out.resize(Align8(out.size()), '\0');

  header.file_bytes = out.size();
  header.payload_checksum = 0;
  std::memcpy(out.data(), &header, kHeaderBytes);
  header.payload_checksum = FileChecksum(out.data(), out.size());
  std::memcpy(out.data(), &header, kHeaderBytes);
  return out;
}

Status WriteColumnarFile(const std::string& path, const GraphDb& db,
                         const SignedAlphabet& alphabet,
                         uint64_t fingerprint) {
  RPQI_ASSIGN_OR_RETURN(std::string encoded,
                        EncodeColumnar(db, alphabet, fingerprint));
  // Models write(2)/fsync failing mid-compact; the temp file is the only
  // casualty, never a torn snapshot under the final name.
  RPQI_FAULT_POINT("graphdb.compact_write",
                   Status::InvalidArgument("cannot write '" + path +
                                           "': injected write failure"));
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open '" + tmp + "' for writing" +
                                   ErrnoSuffix());
  }
  auto fail = [&](const std::string& msg) {
    Status failure = Status::InvalidArgument(msg + ErrnoSuffix());
    if (fd >= 0) ::close(fd);
    // The write failure is the error being reported; removing the orphaned
    // tmp file is best-effort cleanup.
    (void)std::remove(tmp.c_str());  // lint: allow-discard cleanup only
    return failure;
  };
  size_t written = 0;
  while (written < encoded.size()) {
    ssize_t n =
        ::write(fd, encoded.data() + written, encoded.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("error writing '" + tmp + "'");
    }
    written += static_cast<size_t>(n);
  }
  // Durability before visibility: the data must reach the disk before the
  // rename can, or a power loss could persist the rename alone and leave a
  // garbage file under the final name.
  if (::fsync(fd) != 0) {
    return fail("cannot fsync '" + tmp + "'");
  }
  if (::close(fd) != 0) {
    fd = -1;
    return fail("error closing '" + tmp + "'");
  }
  fd = -1;
  // Atomic replace: a reader (or a crash, thanks to the fsync ordering
  // above) observes either the old file or the complete new one, never a
  // prefix.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail("cannot rename '" + tmp + "' to '" + path + "'");
  }
  // Persist the rename itself: fsync the parent directory. Best-effort —
  // the snapshot is already valid in this boot; a lost rename merely
  // resurfaces the old file.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? std::string("/")
                                            : path.substr(0, slash));
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);  // lint: allow-discard best-effort durability
    ::close(dir_fd);
  }
  return Status::Ok();
}

StatusOr<ColumnarParts> ParseColumnarView(const char* data, size_t size,
                                          std::shared_ptr<const void> backing,
                                          std::string_view source_name) {
  const std::string ctx = Ctx(source_name);
  if (reinterpret_cast<uintptr_t>(data) % 8 != 0) {
    return Status::InvalidArgument(ctx +
                                   "buffer is not 8-byte aligned; the "
                                   "columnar arrays are pointer-cast views");
  }
  if (size < kHeaderBytes) {
    return Status::InvalidArgument(ctx + "truncated: " + Num(size) +
                                   " bytes, but the header alone is " +
                                   Num(kHeaderBytes));
  }
  ColumnarHeader header;
  std::memcpy(&header, data, kHeaderBytes);
  if (!IsColumnarSnapshot({data, size})) {
    return Status::InvalidArgument(ctx + "byte 0: bad magic (not a columnar "
                                         "snapshot)");
  }
  if (header.version != kColumnarVersion) {
    return Status::InvalidArgument(
        ctx + "byte " + Num(offsetof(ColumnarHeader, version)) +
        ": unsupported version " + Num(header.version) + " (this build reads " +
        Num(kColumnarVersion) + ")");
  }
  if (header.endian_tag != kColumnarEndianTag) {
    return Status::InvalidArgument(
        ctx + "byte " + Num(offsetof(ColumnarHeader, endian_tag)) +
        ": endianness tag mismatch (written on a foreign byte order)");
  }
  if (header.file_bytes != size) {
    return Status::InvalidArgument(
        ctx + "byte " + Num(offsetof(ColumnarHeader, file_bytes)) +
        ": header declares " + Num(header.file_bytes) +
        " bytes but the file holds " + Num(size) +
        " (truncated or torn write)");
  }
  const uint64_t n = header.num_nodes;
  const uint64_t r = header.num_relations;
  const uint64_t e = header.num_edges;
  // The absolute caps keep every byte-size product below from wrapping
  // uint64 (e < 2^61 so e*4 < 2^63; r, n <= 2^31 so r*n <= 2^62 computes
  // exactly, and r*n+1 <= 2^60 so (r*n+1)*8 <= 2^63). Belt and suspenders:
  // each count-derived section must also fit in the mapped file, so the
  // counts are additionally capped by `size` — a crafted header cannot make
  // the expected-size arithmetic wrap and then smuggle tiny sections past
  // the table check below.
  if (n > (uint64_t{1} << 31) || r > (uint64_t{1} << 31) ||
      e >= (uint64_t{1} << 61) || r * n + 1 > (uint64_t{1} << 60) ||
      e > size / 4 || r * n + 1 > size / 8 || n + 1 > size / 8) {
    return Status::InvalidArgument(
        ctx + "byte " + Num(offsetof(ColumnarHeader, num_nodes)) +
        ": implausible counts (nodes " + Num(n) + ", relations " + Num(r) +
        ", edges " + Num(e) + ")");
  }

  // Section table: every section 8-byte aligned and inside the file, with
  // the byte size the counts dictate. After these checks the pointer-cast
  // views below cannot read out of bounds.
  const uint64_t expected_bytes[kColumnarSectionCount] = {
      header.sections[kSectionNodeNameBlob].bytes,  // blob: any size
      (n + 1) * 8,
      n * 4,
      header.sections[kSectionRelationNameBlob].bytes,
      (r + 1) * 8,
      (r * n + 1) * 8,
      e * 4,
      (r * n + 1) * 8,
      e * 4,
  };
  for (int s = 0; s < kColumnarSectionCount; ++s) {
    const ColumnarSection& section = header.sections[s];
    const uint64_t table_at = offsetof(ColumnarHeader, sections) +
                              static_cast<uint64_t>(s) * sizeof(ColumnarSection);
    if (section.offset % 8 != 0) {
      return Status::InvalidArgument(
          ctx + "byte " + Num(table_at) + ": section " + Num(s) + " offset " +
          Num(section.offset) + " is not 8-byte aligned");
    }
    if (section.offset < kHeaderBytes || section.offset > size ||
        section.bytes > size - section.offset) {
      return Status::InvalidArgument(
          ctx + "byte " + Num(table_at) + ": section " + Num(s) + " spans [" +
          Num(section.offset) + ", " + Num(section.offset + section.bytes) +
          ") outside the file's " + Num(size) + " bytes");
    }
    if (section.bytes != expected_bytes[s]) {
      return Status::InvalidArgument(
          ctx + "byte " + Num(table_at) + ": section " + Num(s) + " holds " +
          Num(section.bytes) + " bytes, expected " + Num(expected_bytes[s]));
    }
  }

  const uint64_t computed = FileChecksum(data, size);
  if (computed != header.payload_checksum) {
    return Status::InvalidArgument(
        ctx + "byte " + Num(offsetof(ColumnarHeader, payload_checksum)) +
        ": checksum mismatch over the file's " + Num(size) +
        " bytes: stored " + Num(header.payload_checksum) + ", computed " +
        Num(computed) + " (corrupt or torn write)");
  }

  ColumnarParts parts;
  parts.backing = std::move(backing);
  parts.fingerprint = header.fingerprint;
  parts.file_bytes = static_cast<int64_t>(size);
  parts.num_nodes = static_cast<int>(n);
  parts.num_relations = static_cast<int>(r);
  parts.num_edges = static_cast<int64_t>(e);
  auto section_ptr = [&](int s) {
    return data + header.sections[s].offset;
  };
  parts.name_blob = section_ptr(kSectionNodeNameBlob);
  parts.name_offsets =
      reinterpret_cast<const uint64_t*>(section_ptr(kSectionNodeNameOffsets));
  parts.nodes_by_name =
      reinterpret_cast<const uint32_t*>(section_ptr(kSectionNodesByName));
  parts.relation_blob = section_ptr(kSectionRelationNameBlob);
  parts.relation_offsets = reinterpret_cast<const uint64_t*>(
      section_ptr(kSectionRelationNameOffsets));
  parts.out_offsets =
      reinterpret_cast<const uint64_t*>(section_ptr(kSectionOutOffsets));
  parts.out_targets =
      reinterpret_cast<const uint32_t*>(section_ptr(kSectionOutTargets));
  parts.in_offsets =
      reinterpret_cast<const uint64_t*>(section_ptr(kSectionInOffsets));
  parts.in_targets =
      reinterpret_cast<const uint32_t*>(section_ptr(kSectionInTargets));

  // Structural invariants the checksum cannot express (they guard against a
  // buggy or hostile *encoder*, not bit rot): offset monotonicity, target
  // bounds, per-span sortedness, dictionary order. All linear scans.
  auto check_offsets = [&](int s, const uint64_t* offsets, uint64_t count,
                           uint64_t limit, const char* what) -> Status {
    const uint64_t base = header.sections[s].offset;
    if (offsets[0] != 0) {
      return Status::InvalidArgument(ctx + "byte " + Num(base) + ": " + what +
                                     " offsets start at " + Num(offsets[0]) +
                                     ", expected 0");
    }
    for (uint64_t i = 0; i < count; ++i) {
      if (offsets[i + 1] < offsets[i]) {
        return Status::InvalidArgument(
            ctx + "byte " + Num(base + (i + 1) * 8) + ": " + what +
            " offsets decrease at index " + Num(i + 1));
      }
    }
    if (offsets[count] != limit) {
      return Status::InvalidArgument(
          ctx + "byte " + Num(base + count * 8) + ": " + what +
          " offsets end at " + Num(offsets[count]) + ", expected " +
          Num(limit));
    }
    return Status::Ok();
  };
  RPQI_RETURN_IF_ERROR(
      check_offsets(kSectionNodeNameOffsets, parts.name_offsets, n,
                    header.sections[kSectionNodeNameBlob].bytes, "node name"));
  RPQI_RETURN_IF_ERROR(check_offsets(
      kSectionRelationNameOffsets, parts.relation_offsets, r,
      header.sections[kSectionRelationNameBlob].bytes, "relation name"));
  RPQI_RETURN_IF_ERROR(check_offsets(kSectionOutOffsets, parts.out_offsets,
                                     r * n, e, "out adjacency"));
  RPQI_RETURN_IF_ERROR(check_offsets(kSectionInOffsets, parts.in_offsets,
                                     r * n, e, "in adjacency"));

  auto check_targets = [&](const uint64_t* offsets, int targets_section,
                           const uint32_t* targets,
                           const char* what) -> Status {
    const uint64_t base = header.sections[targets_section].offset;
    for (uint64_t row = 0; row < r * n; ++row) {
      for (uint64_t i = offsets[row]; i < offsets[row + 1]; ++i) {
        if (targets[i] >= n) {
          return Status::InvalidArgument(
              ctx + "byte " + Num(base + i * 4) + ": " + what + " target " +
              Num(targets[i]) + " out of range [0, " + Num(n) + ")");
        }
        if (i > offsets[row] && targets[i] < targets[i - 1]) {
          return Status::InvalidArgument(
              ctx + "byte " + Num(base + i * 4) + ": " + what +
              " span for row " + Num(row) + " is not sorted");
        }
      }
    }
    return Status::Ok();
  };
  RPQI_RETURN_IF_ERROR(check_targets(parts.out_offsets, kSectionOutTargets,
                                     parts.out_targets, "out"));
  RPQI_RETURN_IF_ERROR(check_targets(parts.in_offsets, kSectionInTargets,
                                     parts.in_targets, "in"));

  // Dictionary order: nodes_by_name lists strictly increasing names; N
  // in-range entries with distinct names is necessarily a permutation.
  {
    const uint64_t base = header.sections[kSectionNodesByName].offset;
    auto name_at = [&](uint32_t id) {
      return std::string_view(parts.name_blob + parts.name_offsets[id],
                              static_cast<size_t>(parts.name_offsets[id + 1] -
                                                  parts.name_offsets[id]));
    };
    for (uint64_t i = 0; i < n; ++i) {
      if (parts.nodes_by_name[i] >= n) {
        return Status::InvalidArgument(
            ctx + "byte " + Num(base + i * 4) + ": dictionary entry " +
            Num(parts.nodes_by_name[i]) + " out of range [0, " + Num(n) + ")");
      }
      if (i > 0 &&
          name_at(parts.nodes_by_name[i]) <= name_at(parts.nodes_by_name[i - 1])) {
        return Status::InvalidArgument(
            ctx + "byte " + Num(base + i * 4) +
            ": dictionary names not strictly increasing at index " + Num(i));
      }
    }
  }
  return parts;
}

StatusOr<ColumnarParts> OpenColumnarFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open '" + path + "'" +
                                   ErrnoSuffix());
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status failure = Status::InvalidArgument("cannot stat '" + path + "'" +
                                             ErrnoSuffix());
    ::close(fd);
    return failure;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    return Status::InvalidArgument(
        Ctx(path) + "truncated: " + Num(size) +
        " bytes, but the header alone is " + Num(kHeaderBytes));
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the file
  if (addr == MAP_FAILED) {
    return Status::InvalidArgument("cannot mmap '" + path + "'" +
                                   ErrnoSuffix());
  }
  auto mapping =
      std::make_shared<MappedFile>(static_cast<const char*>(addr), size);
  // Read data/size before the move: argument evaluation order is
  // unspecified, so `mapping->data()` must not race the move in one call.
  const char* base = mapping->data();
  const size_t mapped_size = mapping->size();
  return ParseColumnarView(base, mapped_size, std::move(mapping), path);
}

StatusOr<ColumnarParts> DecodeColumnar(std::shared_ptr<const std::string> bytes,
                                       std::string_view source_name) {
  RPQI_CHECK(bytes != nullptr);
  const char* data = bytes->data();
  size_t size = bytes->size();
  return ParseColumnarView(data, size, std::move(bytes), source_name);
}

GraphDb MakeColumnarGraphDb(const ColumnarParts& parts,
                            const std::vector<int>& relation_ids,
                            int num_relations) {
  RPQI_CHECK(static_cast<int>(relation_ids.size()) == parts.num_relations);
  RPQI_CHECK_GE(num_relations, parts.num_relations);
  bool identity = num_relations == parts.num_relations;
  for (int i = 0; identity && i < parts.num_relations; ++i) {
    identity = relation_ids[i] == i;
  }

  ColumnarGraphView view;
  view.num_nodes = parts.num_nodes;
  view.num_edges = parts.num_edges;
  view.name_blob = parts.name_blob;
  view.name_offsets = parts.name_offsets;
  view.nodes_by_name = parts.nodes_by_name;
  view.backing = parts.backing;
  view.csr.num_nodes = parts.num_nodes;
  if (identity) {
    view.csr.num_relations = parts.num_relations;
    view.csr.ext_out_offsets = parts.out_offsets;
    view.csr.ext_out_targets = parts.out_targets;
    view.csr.ext_in_offsets = parts.in_offsets;
    view.csr.ext_in_targets = parts.in_targets;
    return GraphDb::FromColumnar(std::move(view));
  }

  // Remapped relation ids (the caller's alphabet numbered them differently):
  // copy each file-relation row block into its mapped row. Within-span order
  // is untouched, so sortedness survives. Rare path — only pre-populated
  // alphabets (e.g. `rewrite --db` after registering view relations) land
  // here — so the in-memory copy is acceptable.
  const size_t n = static_cast<size_t>(parts.num_nodes);
  const size_t rows = static_cast<size_t>(num_relations) * n;
  LabelCsr& csr = view.csr;
  csr.num_relations = num_relations;
  csr.out_offsets_store.assign(rows + 1, 0);
  csr.in_offsets_store.assign(rows + 1, 0);
  for (int file_r = 0; file_r < parts.num_relations; ++file_r) {
    const size_t src_base = static_cast<size_t>(file_r) * n;
    const size_t dst_base = static_cast<size_t>(relation_ids[file_r]) * n;
    for (size_t node = 0; node < n; ++node) {
      uint64_t len = parts.out_offsets[src_base + node + 1] -
                     parts.out_offsets[src_base + node];
      csr.out_offsets_store[dst_base + node + 1] = len;
      len = parts.in_offsets[src_base + node + 1] -
            parts.in_offsets[src_base + node];
      csr.in_offsets_store[dst_base + node + 1] = len;
    }
  }
  for (size_t row = 0; row < rows; ++row) {
    csr.out_offsets_store[row + 1] += csr.out_offsets_store[row];
    csr.in_offsets_store[row + 1] += csr.in_offsets_store[row];
  }
  csr.out_targets_store.resize(static_cast<size_t>(parts.num_edges));
  csr.in_targets_store.resize(static_cast<size_t>(parts.num_edges));
  for (int file_r = 0; file_r < parts.num_relations; ++file_r) {
    const size_t src_base = static_cast<size_t>(file_r) * n;
    const size_t dst_base = static_cast<size_t>(relation_ids[file_r]) * n;
    for (size_t node = 0; node < n; ++node) {
      uint64_t src_at = parts.out_offsets[src_base + node];
      uint64_t count = parts.out_offsets[src_base + node + 1] - src_at;
      std::copy_n(parts.out_targets + src_at, count,
                  csr.out_targets_store.begin() +
                      static_cast<int64_t>(
                          csr.out_offsets_store[dst_base + node]));
      src_at = parts.in_offsets[src_base + node];
      count = parts.in_offsets[src_base + node + 1] - src_at;
      std::copy_n(parts.in_targets + src_at, count,
                  csr.in_targets_store.begin() +
                      static_cast<int64_t>(
                          csr.in_offsets_store[dst_base + node]));
    }
  }
  return GraphDb::FromColumnar(std::move(view));
}

namespace {

/// Per-node out-edges as (relation name, target name) pairs, sorted — the
/// representation CheckGraphEquivalence compares, independent of node ids
/// and storage mode.
std::vector<std::pair<std::string_view, std::string_view>> OutEdgeNames(
    const GraphDb& db, const SignedAlphabet& alphabet, int node) {
  std::vector<std::pair<std::string_view, std::string_view>> edges;
  if (db.has_label_index()) {
    for (int r = 0; r < db.label_csr().num_relations; ++r) {
      for (uint32_t to : db.OutTargets(node, r)) {
        edges.emplace_back(alphabet.RelationName(r),
                           db.NodeName(static_cast<int>(to)));
      }
    }
  } else {
    for (const GraphDb::Edge& e : db.OutEdges(node)) {
      edges.emplace_back(alphabet.RelationName(e.relation), db.NodeName(e.to));
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

}  // namespace

Status CheckGraphEquivalence(const GraphDb& a, const SignedAlphabet& alpha_a,
                             const GraphDb& b, const SignedAlphabet& alpha_b) {
  if (a.NumNodes() != b.NumNodes()) {
    return Status::InvalidArgument(
        "round-trip mismatch: " + std::to_string(a.NumNodes()) + " vs " +
        std::to_string(b.NumNodes()) + " nodes");
  }
  if (a.NumEdges() != b.NumEdges()) {
    return Status::InvalidArgument(
        "round-trip mismatch: " + std::to_string(a.NumEdges()) + " vs " +
        std::to_string(b.NumEdges()) + " edges");
  }
  for (int node = 0; node < a.NumNodes(); ++node) {
    const std::string name(a.NodeName(node));
    int other = b.NodeId(name);
    if (other < 0) {
      return Status::InvalidArgument("round-trip mismatch: node '" + name +
                                     "' missing from the reloaded graph");
    }
    auto ours = OutEdgeNames(a, alpha_a, node);
    auto theirs = OutEdgeNames(b, alpha_b, other);
    if (ours != theirs) {
      return Status::InvalidArgument(
          "round-trip mismatch: node '" + name + "' has " +
          std::to_string(ours.size()) + " out-edges vs " +
          std::to_string(theirs.size()) +
          " in the reloaded graph (or differing labels/targets)");
    }
  }
  return Status::Ok();
}

}  // namespace rpqi
