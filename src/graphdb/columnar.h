#ifndef RPQI_GRAPHDB_COLUMNAR_H_
#define RPQI_GRAPHDB_COLUMNAR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "graphdb/graph.h"
#include "rpq/alphabet.h"

namespace rpqi {

/// Binary columnar snapshot format ("RPQICOL1"), the on-disk twin of
/// GraphDb's columnar mode (DESIGN.md §15 has the layout diagram):
///
///   * a fixed 200-byte little-endian header — magic, version, endianness
///     tag, total size, payload checksum, content fingerprint, counts, and a
///     section table;
///   * a dictionary-encoded node table: names concatenated in id order plus
///     a u64 offset array, and a u32 permutation of ids sorted by name (so
///     the read path needs no hash map — NodeId is a binary search);
///   * relation names, same blob + offsets encoding;
///   * one CSR per (relation, direction): a u64 offsets array of
///     num_relations * num_nodes + 1 entries indexed
///     `relation * num_nodes + node`, and a u32 targets array with each span
///     sorted ascending. The inverse direction is materialized, not
///     recomputed.
///
/// Every section offset is 8-byte aligned, so a page-aligned mmap can serve
/// the u64/u32 arrays by pointer cast; the static_asserts in columnar.cc pin
/// the header layout. Multi-byte fields are little-endian; the endian tag
/// rejects a snapshot written by a foreign byte order instead of
/// misinterpreting it. Validation errors name the absolute byte offset of the
/// offending field.

inline constexpr char kColumnarMagic[8] = {'R', 'P', 'Q', 'I',
                                           'C', 'O', 'L', '1'};
inline constexpr uint32_t kColumnarVersion = 1;
inline constexpr uint32_t kColumnarEndianTag = 0x01020304;

/// True when `prefix` (the first bytes of a file) starts with the columnar
/// magic — the sniff LoadGraphSnapshot uses to route binary snapshots to the
/// mmap loader while text stays on the parse path.
bool IsColumnarSnapshot(std::string_view prefix);

enum ColumnarSectionId : int {
  kSectionNodeNameBlob = 0,
  kSectionNodeNameOffsets,    // u64[num_nodes + 1]
  kSectionNodesByName,        // u32[num_nodes]
  kSectionRelationNameBlob,
  kSectionRelationNameOffsets,  // u64[num_relations + 1]
  kSectionOutOffsets,           // u64[num_relations * num_nodes + 1]
  kSectionOutTargets,           // u32[num_edges]
  kSectionInOffsets,
  kSectionInTargets,
  kColumnarSectionCount
};

/// Validated, zero-copy view of one columnar snapshot: raw pointers into
/// `backing` (an mmapped file or an in-memory buffer) whose bounds,
/// alignment, monotonicity, and dictionary order have all been checked by
/// ParseColumnarView — the pointer-cast accessors are safe to iterate.
struct ColumnarParts {
  std::shared_ptr<const void> backing;
  uint64_t fingerprint = 0;
  int64_t file_bytes = 0;
  int num_nodes = 0;
  int num_relations = 0;
  int64_t num_edges = 0;
  const char* name_blob = nullptr;
  const uint64_t* name_offsets = nullptr;
  const uint32_t* nodes_by_name = nullptr;
  const char* relation_blob = nullptr;
  const uint64_t* relation_offsets = nullptr;
  const uint64_t* out_offsets = nullptr;
  const uint32_t* out_targets = nullptr;
  const uint64_t* in_offsets = nullptr;
  const uint32_t* in_targets = nullptr;

  std::string_view RelationName(int relation) const {
    return {relation_blob + relation_offsets[relation],
            static_cast<size_t>(relation_offsets[relation + 1] -
                                relation_offsets[relation])};
  }
};

/// Serializes `db` (either mode) to the binary format. `fingerprint` is
/// stored in the header and becomes the plan-cache content fingerprint of
/// every load of the file — pass the source text's fingerprint
/// (FingerprintGraphText) when converting, so a text snapshot and its
/// compacted twin share plan-cache keys.
StatusOr<std::string> EncodeColumnar(const GraphDb& db,
                                     const SignedAlphabet& alphabet,
                                     uint64_t fingerprint);

/// EncodeColumnar + atomic file replace (write to `path`.tmp, then rename).
/// Carries the `graphdb.compact_write` fault site.
Status WriteColumnarFile(const std::string& path, const GraphDb& db,
                         const SignedAlphabet& alphabet, uint64_t fingerprint);

/// Validates `size` bytes at `data` (which `backing` keeps alive) as a
/// columnar snapshot. `data` must be 8-byte aligned (mmap always is; the
/// in-memory overload checks). Errors carry `source_name` and the byte
/// offset of the offending field.
StatusOr<ColumnarParts> ParseColumnarView(const char* data, size_t size,
                                          std::shared_ptr<const void> backing,
                                          std::string_view source_name);

/// mmaps `path` (MAP_PRIVATE, read-only) and parses it. The mapping lives as
/// long as any ColumnarParts/GraphDb derived from it.
StatusOr<ColumnarParts> OpenColumnarFile(const std::string& path);

/// ParseColumnarView over an owned in-memory buffer (tests, corruption
/// harnesses); rejects misaligned buffers.
StatusOr<ColumnarParts> DecodeColumnar(std::shared_ptr<const std::string> bytes,
                                       std::string_view source_name);

/// Builds the GraphDb for `parts` under the caller's relation numbering:
/// `relation_ids[i]` is the alphabet id assigned to file relation i (from
/// SignedAlphabet::AddRelation in file order) and `num_relations` the
/// alphabet's total. With the identity mapping the adjacency is zero-copy
/// views into the backing; a caller whose alphabet already numbered the
/// relations differently (e.g. `rewrite --db` after registering view
/// relations) gets a remapped in-memory CSR instead — rare, but correct.
GraphDb MakeColumnarGraphDb(const ColumnarParts& parts,
                            const std::vector<int>& relation_ids,
                            int num_relations);

/// Semantic equality of two databases under their own alphabets, matching
/// nodes and relations by name: same node-name set, same edge multiset
/// {(from, relation, to)}. This is the `rpqi compact --validate` round-trip
/// check (node ids may legitimately differ after a binary -> text -> parse
/// cycle, so ids are not compared).
Status CheckGraphEquivalence(const GraphDb& a, const SignedAlphabet& alpha_a,
                             const GraphDb& b, const SignedAlphabet& alpha_b);

}  // namespace rpqi

#endif  // RPQI_GRAPHDB_COLUMNAR_H_
