#include "graphdb/io.h"

#include "base/strings.h"

namespace rpqi {

StatusOr<GraphDb> LoadGraphText(std::string_view text,
                                SignedAlphabet* alphabet) {
  GraphDb db;
  int line_number = 0;
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    ++line_number;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = StrSplit(line, ' ');
    // Tolerate repeated separators by dropping empties (StrSplit already does).
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": expected '<from> <relation> <to>', got '" + std::string(line) +
          "'");
    }
    int from = db.AddNode(fields[0]);
    int relation = alphabet->AddRelation(fields[1]);
    int to = db.AddNode(fields[2]);
    db.AddEdge(from, relation, to);
  }
  return db;
}

std::string SaveGraphText(const GraphDb& db, const SignedAlphabet& alphabet) {
  std::string out;
  for (int node = 0; node < db.NumNodes(); ++node) {
    for (const GraphDb::Edge& e : db.OutEdges(node)) {
      out += db.NodeName(node);
      out += ' ';
      out += alphabet.RelationName(e.relation);
      out += ' ';
      out += db.NodeName(e.to);
      out += '\n';
    }
  }
  return out;
}

}  // namespace rpqi
