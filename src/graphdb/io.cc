#include "graphdb/io.h"

#include "base/hash.h"
#include "base/strings.h"
#include "fault/fault.h"

namespace rpqi {

namespace {

/// "<source>: line N (byte B): " — the context every parse error carries.
std::string ErrorContext(const GraphTextLimits& limits, int line_number,
                         size_t byte_offset) {
  std::string prefix;
  if (!limits.source_name.empty()) {
    prefix.append(limits.source_name);
    prefix += ": ";
  }
  prefix += "line " + std::to_string(line_number) + " (byte " +
            std::to_string(byte_offset) + "): ";
  return prefix;
}

/// Truncates adversarially long lines before they end up inside an error
/// message (the message itself must stay one readable line).
std::string Excerpt(std::string_view line) {
  constexpr size_t kMaxExcerpt = 80;
  if (line.size() <= kMaxExcerpt) return std::string(line);
  return std::string(line.substr(0, kMaxExcerpt)) + "...";
}

}  // namespace

StatusOr<GraphDb> LoadGraphText(std::string_view text, SignedAlphabet* alphabet,
                                const GraphTextLimits& limits) {
  GraphDb db;
  int line_number = 0;
  int64_t num_edges = 0;
  // Split lines by hand (StrSplit drops empty pieces, which would make the
  // reported line numbers drift past any blank line).
  for (size_t start = 0; start <= text.size();) {
    size_t line_start = start;
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view raw_line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    // Models the read(2) that fails halfway through a streamed parse: the
    // error carries the same file/line/byte context as a real one.
    RPQI_FAULT_POINT("graphdb.parse_io",
                     Status::InvalidArgument(
                         ErrorContext(limits, line_number, line_start) +
                         "injected I/O error while parsing"));
    std::vector<std::string> fields = StrSplit(line, ' ');
    // Tolerate repeated separators by dropping empties (StrSplit already does).
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          ErrorContext(limits, line_number, line_start) +
          "expected '<from> <relation> <to>', got '" + Excerpt(line) + "'");
    }
    for (const std::string& field : fields) {
      if (field.size() > limits.max_name_length) {
        return Status::InvalidArgument(
            ErrorContext(limits, line_number, line_start) + "name '" +
            Excerpt(field) + "' exceeds " +
            std::to_string(limits.max_name_length) + " characters");
      }
    }
    if (++num_edges > limits.max_edges) {
      return Status::InvalidArgument(
          ErrorContext(limits, line_number, line_start) + "graph exceeds " +
          std::to_string(limits.max_edges) + " edges");
    }
    int from = db.AddNode(fields[0]);
    int relation = alphabet->AddRelation(fields[1]);
    int to = db.AddNode(fields[2]);
    if (db.NumNodes() > limits.max_nodes) {
      return Status::InvalidArgument(
          ErrorContext(limits, line_number, line_start) + "graph exceeds " +
          std::to_string(limits.max_nodes) + " nodes");
    }
    db.AddEdge(from, relation, to);
  }
  return db;
}

std::string SaveGraphText(const GraphDb& db, const SignedAlphabet& alphabet) {
  std::string out;
  if (db.columnar()) {
    // Columnar databases carry adjacency only in the label index; emit each
    // relation's spans. Isolated nodes are not representable in the text
    // format either way (a line is an edge), so nothing extra is lost.
    const int num_relations = db.label_csr().num_relations;
    for (int node = 0; node < db.NumNodes(); ++node) {
      for (int r = 0; r < num_relations; ++r) {
        for (uint32_t to : db.OutTargets(node, r)) {
          out += db.NodeName(node);
          out += ' ';
          out += alphabet.RelationName(r);
          out += ' ';
          out += db.NodeName(static_cast<int>(to));
          out += '\n';
        }
      }
    }
    return out;
  }
  for (int node = 0; node < db.NumNodes(); ++node) {
    for (const GraphDb::Edge& e : db.OutEdges(node)) {
      out += db.NodeName(node);
      out += ' ';
      out += alphabet.RelationName(e.relation);
      out += ' ';
      out += db.NodeName(e.to);
      out += '\n';
    }
  }
  return out;
}

uint64_t FingerprintGraphText(std::string_view text) {
  // Hash 8 bytes at a time plus a length term; the tail bytes are folded in
  // one by one. Content-addressed, so identical text => identical key space.
  // The algorithm is part of the columnar format (headers persist the source
  // text's fingerprint), so it must stay byte-stable across builds.
  uint64_t h = HashCombine(0x5349474e41505348ULL, text.size());
  size_t i = 0;
  for (; i + 8 <= text.size(); i += 8) {
    uint64_t word = 0;
    for (int b = 0; b < 8; ++b) {
      word |= static_cast<uint64_t>(static_cast<unsigned char>(text[i + b]))
              << (8 * b);
    }
    h = HashCombine(h, word);
  }
  for (; i < text.size(); ++i) {
    h = HashCombine(h, static_cast<unsigned char>(text[i]));
  }
  return h;
}

}  // namespace rpqi
