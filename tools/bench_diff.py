#!/usr/bin/env python3
"""Compare two bench runs (BENCH_*.json files written by the bench binaries).

Usage:
  bench_diff.py BASELINE NEW [--threshold 0.20] [--min-time-ms 0.05]
                [--fail-on-regression] [--counters warn|fail]

BASELINE and NEW are either single BENCH_*.json files or directories that are
scanned for BENCH_*.json. Entries are matched by benchmark name; a wall-time
increase beyond the threshold (default 20%) is flagged as a regression, a
matching decrease as an improvement. Entries whose baseline time is below
--min-time-ms are skipped for timing comparison (a ratio against a
near-zero denominator is noise, and a zero denominator is undefined).

The exit code is 0 unless --fail-on-regression is given (CI runs timings
warn-only: quick-mode timings on shared runners are too noisy to gate a
build on).

Counters — every numeric entry key except the timing bookkeeping
(median_ms, iterations, n) — are deterministic, so any drift usually means
an algorithmic change, not noise. With --counters fail the script exits 1
on any counter drift, which CI uses as a hard gate; the default (warn)
only reports them. A counter present in only one of the two runs is
reported as added/removed rather than treated as a drift.
"""

import argparse
import json
import os
import sys

# Entry keys that describe the run rather than the computation: never
# compared as counters.
NON_COUNTER_KEYS = {"name", "series", "n", "median_ms", "iterations"}


def load_entries(path):
    """Returns {benchmark name: entry dict} from a file or directory."""
    files = []
    if os.path.isdir(path):
        for name in sorted(os.listdir(path)):
            if name.startswith("BENCH_") and name.endswith(".json"):
                files.append(os.path.join(path, name))
    else:
        files.append(path)
    if not files:
        sys.exit(f"bench_diff: no BENCH_*.json under {path}")
    entries = {}
    for file_path in files:
        with open(file_path) as handle:
            data = json.load(handle)
        for entry in data.get("entries", []):
            entries[entry["name"]] = entry
    return entries


def counter_keys(entry):
    """Numeric counter keys of one entry."""
    return {key for key, value in entry.items()
            if key not in NON_COUNTER_KEYS
            and isinstance(value, (int, float))}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative wall-time change that counts as a "
                             "regression/improvement (default 0.20)")
    parser.add_argument("--min-time-ms", type=float, default=0.05,
                        help="skip timing comparison when the baseline "
                             "median is below this floor (default 0.05)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when any timing regression is flagged "
                             "(default: warn only)")
    parser.add_argument("--counters", choices=("warn", "fail"),
                        default="warn",
                        help="fail: exit 1 on any counter drift; "
                             "warn (default): report only")
    args = parser.parse_args()

    baseline = load_entries(args.baseline)
    new = load_entries(args.new)

    regressions = []
    improvements = []
    skipped_fast = []
    counter_drifts = []
    counter_changes = []  # added/removed counter keys: informational
    for name in sorted(set(baseline) & set(new)):
        old_ms = baseline[name].get("median_ms")
        new_ms = new[name].get("median_ms")
        if isinstance(old_ms, (int, float)) and isinstance(new_ms,
                                                           (int, float)):
            if old_ms < args.min_time_ms:
                skipped_fast.append(
                    f"{name}: baseline {old_ms:.4f} ms below floor")
            else:
                ratio = new_ms / old_ms
                line = (f"{name}: {old_ms:.3f} ms -> {new_ms:.3f} ms "
                        f"({ratio:.2f}x)")
                if ratio > 1 + args.threshold:
                    regressions.append(line)
                elif ratio < 1 - args.threshold:
                    improvements.append(line)
        old_keys = counter_keys(baseline[name])
        new_keys = counter_keys(new[name])
        for key in sorted(old_keys & new_keys):
            if baseline[name][key] != new[name][key]:
                counter_drifts.append(
                    f"{name}: {key} {baseline[name][key]:g} -> "
                    f"{new[name][key]:g}")
        for key in sorted(old_keys - new_keys):
            counter_changes.append(f"{name}: counter removed: {key}")
        for key in sorted(new_keys - old_keys):
            counter_changes.append(f"{name}: counter added: {key}")

    only_old = sorted(set(baseline) - set(new))
    only_new = sorted(set(new) - set(baseline))

    print(f"compared {len(set(baseline) & set(new))} benchmarks "
          f"(threshold {args.threshold:.0%})")
    for title, lines in (("REGRESSIONS", regressions),
                         ("improvements", improvements),
                         ("below min-time floor", skipped_fast),
                         ("counter drifts", counter_drifts),
                         ("counter set changes", counter_changes),
                         ("only in baseline", only_old),
                         ("only in new run", only_new)):
        if lines:
            print(f"\n{title}:")
            for line in lines:
                print(f"  {line}")
    if not regressions:
        print("\nno regressions beyond threshold")

    failed = False
    if regressions and args.fail_on_regression:
        failed = True
    if counter_drifts and args.counters == "fail":
        print("\ncounter drift with --counters fail: failing")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
