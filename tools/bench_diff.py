#!/usr/bin/env python3
"""Compare two bench runs (BENCH_*.json files written by the bench binaries).

Usage:
  bench_diff.py BASELINE NEW [--threshold 0.20] [--fail-on-regression]

BASELINE and NEW are either single BENCH_*.json files or directories that are
scanned for BENCH_*.json. Entries are matched by benchmark name; a wall-time
increase beyond the threshold (default 20%) is flagged as a regression, a
matching decrease as an improvement. The exit code is 0 unless
--fail-on-regression is given (CI runs warn-only: quick-mode timings on
shared runners are too noisy to gate a build on).

Counter drifts (states_explored, antichain_size, ...) are reported
informationally: they are deterministic, so an unexpected change usually
means an algorithmic change, not noise.
"""

import argparse
import json
import os
import sys


def load_entries(path):
    """Returns {benchmark name: entry dict} from a file or directory."""
    files = []
    if os.path.isdir(path):
        for name in sorted(os.listdir(path)):
            if name.startswith("BENCH_") and name.endswith(".json"):
                files.append(os.path.join(path, name))
    else:
        files.append(path)
    if not files:
        sys.exit(f"bench_diff: no BENCH_*.json under {path}")
    entries = {}
    for file_path in files:
        with open(file_path) as handle:
            data = json.load(handle)
        for entry in data.get("entries", []):
            entries[entry["name"]] = entry
    return entries


COUNTER_KEYS = ("states_explored", "antichain_size", "states_pruned")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative wall-time change that counts as a "
                             "regression/improvement (default 0.20)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when any regression is flagged "
                             "(default: warn only)")
    args = parser.parse_args()

    baseline = load_entries(args.baseline)
    new = load_entries(args.new)

    regressions = []
    improvements = []
    counter_drifts = []
    for name in sorted(set(baseline) & set(new)):
        old_ms = baseline[name].get("median_ms")
        new_ms = new[name].get("median_ms")
        if old_ms and new_ms and old_ms > 0:
            ratio = new_ms / old_ms
            line = f"{name}: {old_ms:.3f} ms -> {new_ms:.3f} ms ({ratio:.2f}x)"
            if ratio > 1 + args.threshold:
                regressions.append(line)
            elif ratio < 1 - args.threshold:
                improvements.append(line)
        for key in COUNTER_KEYS:
            if key in baseline[name] and key in new[name]:
                if baseline[name][key] != new[name][key]:
                    counter_drifts.append(
                        f"{name}: {key} {baseline[name][key]:g} -> "
                        f"{new[name][key]:g}")

    only_old = sorted(set(baseline) - set(new))
    only_new = sorted(set(new) - set(baseline))

    print(f"compared {len(set(baseline) & set(new))} benchmarks "
          f"(threshold {args.threshold:.0%})")
    for title, lines in (("REGRESSIONS", regressions),
                         ("improvements", improvements),
                         ("counter drifts", counter_drifts),
                         ("only in baseline", only_old),
                         ("only in new run", only_new)):
        if lines:
            print(f"\n{title}:")
            for line in lines:
                print(f"  {line}")
    if not regressions:
        print("\nno regressions beyond threshold")

    if regressions and args.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
