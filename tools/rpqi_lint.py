#!/usr/bin/env python3
"""Project lint for the rpqi tree, run from CTest and CI.

Checks that complement the compiler's own enforcement:

  discard        Status/StatusOr are [[nodiscard]] (and -Werror=unused-result
                 is on), so the *compiler* rejects silent drops. This rule
                 polices the escape hatch: every `(void)` discard cast must
                 carry a written justification on the same line:
                     (void)expr;  // lint: allow-discard <why>
                 and base/status.h must keep its [[nodiscard]] annotations.

  no-terminate   Library code under src/ must not call abort/exit/_Exit/
                 quick_exit or use a naked `new` — errors travel as Status,
                 ownership as containers/smart pointers. The single allowed
                 location is base/logging.h (RPQI_CHECK's sink).

  include-guard  Every header under src/ uses the canonical guard
                 RPQI_<DIR>_<FILE>_H_ derived from its path.

  budget-loop    Any loop that grows an automaton (calls AddState or a
                 Determinize variant) must live in a function that charges a
                 Budget, or carry an explicit waiver:
                     // lint: allow-unbudgeted <why>
                 Unbounded construction loops are how the pipeline used to
                 hang before execution budgets existed (see base/budget.h).

  fault-site     Every fault-injection site named in src/ via
                 RPQI_FAULT_POINT / RPQI_FAULT_FIRED / RPQI_FAULT_STALL must
                 (a) follow the [a-z0-9_.]+ grammar, (b) be unique across code
                 locations (one name == one failure point, so chaos specs and
                 obs counters stay unambiguous), (c) keep the site name on the
                 same line as the macro so greps and this lint can find it,
                 and (d) appear in the kKnownSites catalog in
                 tests/fault_test.cc — and vice versa, so the catalog test
                 cannot rot as sites come and go.

  service-io     Code under src/service/ and src/net/ must not write to
                 stdout/stderr directly (printf/fprintf/puts/fputs/
                 std::cout/std::cerr):
                 the serving layer speaks NDJSON on stdout, and a stray
                 diagnostic line corrupts the protocol stream. All responses
                 go through the Server's serialized writer. Waiver:
                     // lint: allow-direct-io <why>
                 (In-memory formatting like snprintf is fine.)

  lock-order     src/base/thread_annotations.h declares the project lock
                 hierarchy between the RPQI_LOCK_ORDER_BEGIN/END markers
                 (one mutex name per line, outermost first). Within a
                 function, nested lock scopes (MutexLock, std::lock_guard,
                 std::unique_lock, std::scoped_lock) over *ranked* mutexes
                 must acquire strictly downward in that order — acquiring
                 upward or acquiring the same rank twice is how AB/BA
                 deadlocks are born. RPQI_REQUIRES(mu) annotations count as
                 already holding `mu` for the whole function body. Unranked
                 mutex names are ignored (rank yours by adding it to the
                 hierarchy). Waiver, on the acquisition line or the line
                 above:
                     // lint: allow-lock-order <why>
                 The rule also polices the analysis escape hatch: every
                 RPQI_NO_THREAD_SAFETY_ANALYSIS use needs a written waiver
                 on the same or the preceding line:
                     // lint: allow-no-tsa <why>

  memory-order   Every non-default std::memory_order_* argument in src/ must
                 justify itself with an `order: <why>` comment on the same
                 line, an earlier line of the same statement, or a comment
                 block immediately above the statement (either `//` or
                 `/* */` form — macro bodies can only use the latter).
                 Explicit memory_order_seq_cst is exempt (it is the
                 default); memory_order_consume is banned outright — its
                 specification is unimplementable and every compiler
                 silently promotes it.

Usage: tools/rpqi_lint.py [REPO_ROOT]
Exit status: 0 clean, 1 findings (one `file:line: rule: message` per line).
"""

import os
import re
import sys

LINT_SKIP_FILES = set()  # relative paths exempt from all rules

DISCARD_RE = re.compile(r"\(void\)\s*[A-Za-z_(]")
ALLOW_DISCARD_RE = re.compile(r"//\s*lint:\s*allow-discard\s+\S")
ALLOW_UNBUDGETED_RE = re.compile(r"//\s*lint:\s*allow-unbudgeted\s+\S")
TERMINATE_RE = re.compile(
    r"(?<![\w.])(?:std::)?(abort|_Exit|quick_exit|exit)\s*\(")
NAKED_NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_(:]")
GROWTH_CALL_RE = re.compile(r"\b(AddState|Determinize\w*)\s*\(")
DIRECT_IO_RE = re.compile(
    r"(?<![\w.])(?:std::)?(printf|fprintf|puts|fputs|cout|cerr)\b")
ALLOW_DIRECT_IO_RE = re.compile(r"//\s*lint:\s*allow-direct-io\s+\S")
LOOP_HEADER_RE = re.compile(r"(?<![\w.])(for|while)\s*\(")
BUDGET_MENTION_RE = re.compile(r"[Bb]udget")
FAULT_MACRO_RE = re.compile(r"\bRPQI_FAULT_(?:POINT|FIRED|STALL)\s*\(")
FAULT_SITE_RE = re.compile(
    r"\bRPQI_FAULT_(?:POINT|FIRED|STALL)\s*\(\s*\"([^\"]*)\"")
FAULT_NAME_RE = re.compile(r"[a-z0-9_.]+\Z")
FAULT_CATALOG_PATH = os.path.join("tests", "fault_test.cc")
LOCK_HIERARCHY_PATH = os.path.join("src", "base", "thread_annotations.h")
ACQUIRE_RE = re.compile(
    r"\b(?:MutexLock|std::lock_guard|std::unique_lock|std::scoped_lock)"
    r"\s*(?:<[^<>]*>)?\s+\w+\s*[({]\s*([^(),;{}]+)")
REQUIRES_RE = re.compile(r"\bRPQI_REQUIRES\s*\(([^()]*)\)")
TRAILING_IDENT_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*$")
ALLOW_LOCK_ORDER_RE = re.compile(r"//\s*lint:\s*allow-lock-order\s+\S")
NO_TSA_RE = re.compile(r"\bRPQI_NO_THREAD_SAFETY_ANALYSIS\b")
ALLOW_NO_TSA_RE = re.compile(r"//\s*lint:\s*allow-no-tsa\s+\S")
MEMORY_ORDER_RE = re.compile(r"\bmemory_order_(\w+)")
ORDER_COMMENT_RE = re.compile(r"(?://|/\*)\s*order:\s*\S")


def strip_code_line(line):
    """Removes string/char literals and // comments from one line.

    Good enough for lint purposes: the codebase has no multi-line raw strings
    in library code (the CLI usage text lives in tools/, where only the
    discard rule runs, keyed on `(void)` which the usage text never contains).
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def strip_block_comments(lines):
    """Returns code-only lines with /* */ regions and literals removed."""
    stripped = []
    in_block = False
    for line in lines:
        if in_block:
            end = line.find("*/")
            if end < 0:
                stripped.append("")
                continue
            line = line[end + 2:]
            in_block = False
        code = strip_code_line(line)
        while True:
            start = code.find("/*")
            if start < 0:
                break
            end = code.find("*/", start + 2)
            if end < 0:
                code = code[:start]
                in_block = True
                break
            code = code[:start] + " " + code[end + 2:]
        stripped.append(code)
    return stripped


def iter_source_files(root, subdirs, exts):
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if os.path.splitext(name)[1] in exts:
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    if rel not in LINT_SKIP_FILES:
                        yield rel


def check_discards(rel, raw_lines, code_lines, findings):
    for lineno, (raw, code) in enumerate(zip(raw_lines, code_lines), 1):
        if DISCARD_RE.search(code) and not ALLOW_DISCARD_RE.search(raw):
            findings.append(
                (rel, lineno, "discard",
                 "`(void)` discard without `// lint: allow-discard <why>`"))


def check_nodiscard_annotations(root, findings):
    rel = os.path.join("src", "base", "status.h")
    with open(os.path.join(root, rel), encoding="utf-8") as f:
        text = f.read()
    for cls in ("Status", "StatusOr"):
        if not re.search(r"class \[\[nodiscard\]\] " + cls + r"\b", text):
            findings.append(
                (rel, 1, "discard",
                 f"class {cls} lost its [[nodiscard]] annotation"))


def check_terminate(rel, code_lines, findings):
    if rel == os.path.join("src", "base", "logging.h"):
        return
    for lineno, code in enumerate(code_lines, 1):
        m = TERMINATE_RE.search(code)
        if m:
            findings.append(
                (rel, lineno, "no-terminate",
                 f"call to {m.group(1)}() in library code "
                 "(return a Status instead)"))
        m = NAKED_NEW_RE.search(code)
        if m:
            findings.append(
                (rel, lineno, "no-terminate",
                 "naked `new` in library code "
                 "(use containers or std::make_unique)"))


def check_service_io(rel, raw_lines, code_lines, findings):
    for lineno, (raw, code) in enumerate(zip(raw_lines, code_lines), 1):
        m = DIRECT_IO_RE.search(code)
        if m and not ALLOW_DIRECT_IO_RE.search(raw):
            findings.append(
                (rel, lineno, "service-io",
                 f"direct {m.group(1)} in the serving layer corrupts the "
                 "NDJSON stream; route output through the Server writer or "
                 "add `// lint: allow-direct-io <why>`"))


def check_include_guard(rel, code_lines, findings):
    stem = re.sub(r"[^A-Za-z0-9]", "_", os.path.relpath(rel, "src"))
    guard = "RPQI_" + stem.upper() + "_"
    text = "\n".join(code_lines)
    if f"#ifndef {guard}" not in text or f"#define {guard}" not in text:
        findings.append(
            (rel, 1, "include-guard",
             f"expected include guard {guard} (#ifndef + #define)"))


def enclosing_function_region(code_lines, index):
    """Approximates the enclosing function of line `index` (0-based).

    Functions in this codebase close with a `}` at column zero, so the region
    runs from just after the previous such line to the next one.
    """
    start = 0
    for i in range(index - 1, -1, -1):
        if code_lines[i].startswith("}"):
            start = i + 1
            break
    end = len(code_lines)
    for i in range(index, len(code_lines)):
        if code_lines[i].startswith("}"):
            end = i + 1
            break
    return start, end


def check_budget_loops(rel, raw_lines, code_lines, findings):
    # Track which open braces belong to loop constructs; a growth call is
    # "in a loop" when any enclosing brace is a loop brace. Brace-free
    # single-statement loops are caught by the pending-header state.
    loop_stack = []  # True for braces opened by a for/while header
    pending_loop_header = False
    for lineno, code in enumerate(code_lines, 1):
        is_loop_line = bool(LOOP_HEADER_RE.search(code))
        in_loop = (any(loop_stack) or pending_loop_header or is_loop_line)
        m = GROWTH_CALL_RE.search(code)
        if m and in_loop:
            index = lineno - 1
            start, end = enclosing_function_region(code_lines, index)
            region_code = "\n".join(code_lines[start:end])
            region_raw = "\n".join(raw_lines[start:end])
            if not (BUDGET_MENTION_RE.search(region_code)
                    or ALLOW_UNBUDGETED_RE.search(region_raw)):
                findings.append(
                    (rel, lineno, "budget-loop",
                     f"loop calls {m.group(1)}() but the enclosing function "
                     "neither charges a Budget nor carries "
                     "`// lint: allow-unbudgeted <why>`"))
        for c in code:
            if c == "{":
                loop_stack.append(is_loop_line or pending_loop_header)
                pending_loop_header = False
            elif c == "}" and loop_stack:
                loop_stack.pop()
        if is_loop_line and "{" not in code:
            pending_loop_header = True
        elif code.strip() and not is_loop_line:
            pending_loop_header = False


def check_fault_sites(rel, raw_lines, code_lines, fault_sites, findings):
    """Collects RPQI_FAULT_* site names into `fault_sites` (name -> (rel,
    lineno) of first sighting), flagging grammar breaks, duplicates, and
    names split off the macro line. Matches run on the raw line (string
    literals survive there) gated on the stripped line (so the worked
    example in fault.h's doc comment is not a site)."""
    for lineno, (raw, code) in enumerate(zip(raw_lines, code_lines), 1):
        macro = FAULT_MACRO_RE.search(code)
        if not macro:
            continue
        m = FAULT_SITE_RE.search(raw)
        if not m:
            # The macro definitions themselves (`#define RPQI_FAULT_...`)
            # take an unquoted parameter; only call sites must inline a
            # string literal.
            if not code.lstrip().startswith("#define"):
                findings.append(
                    (rel, lineno, "fault-site",
                     "fault site name must be a string literal on the same "
                     "line as the RPQI_FAULT_* macro"))
            continue
        name = m.group(1)
        if not FAULT_NAME_RE.match(name):
            findings.append(
                (rel, lineno, "fault-site",
                 f'site "{name}" breaks the [a-z0-9_.]+ grammar'))
            continue
        if name in fault_sites:
            first_rel, first_line = fault_sites[name]
            findings.append(
                (rel, lineno, "fault-site",
                 f'site "{name}" already used at {first_rel}:{first_line}; '
                 "one name means one failure point"))
        else:
            fault_sites[name] = (rel, lineno)


def check_fault_catalog(root, fault_sites, findings):
    """Cross-checks code sites against kKnownSites in tests/fault_test.cc."""
    rel = FAULT_CATALOG_PATH
    try:
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            text = f.read()
    except OSError:
        findings.append(
            (rel, 1, "fault-site",
             "missing fault-site catalog (kKnownSites) test file"))
        return
    m = re.search(r"kKnownSites\[\]\s*=\s*\{(.*?)\}", text, re.DOTALL)
    if not m:
        findings.append(
            (rel, 1, "fault-site", "kKnownSites array not found"))
        return
    start_line = text[:m.start()].count("\n") + 1
    catalog = {}
    for offset, line in enumerate(m.group(1).splitlines()):
        for name in re.findall(r'"([^"]*)"', line):
            catalog[name] = start_line + offset
    for name, (site_rel, site_line) in sorted(fault_sites.items()):
        if name not in catalog:
            findings.append(
                (site_rel, site_line, "fault-site",
                 f'site "{name}" is missing from kKnownSites in {rel}'))
    for name, lineno in sorted(catalog.items()):
        if name not in fault_sites:
            findings.append(
                (rel, lineno, "fault-site",
                 f'catalog entry "{name}" has no RPQI_FAULT_* call site '
                 "under src/"))


def load_lock_hierarchy(root, findings):
    """Parses the declared lock order from thread_annotations.h.

    Returns {mutex_name: rank} with 0 = outermost. A missing file or marker
    block is itself a finding: the hierarchy is the rule's source of truth,
    so losing it must fail the lint rather than silently disable it.
    """
    rel = LOCK_HIERARCHY_PATH
    try:
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError:
        findings.append(
            (rel, 1, "lock-order", "missing lock-hierarchy header"))
        return {}
    ranks = {}
    in_block = False
    for line in lines:
        if "RPQI_LOCK_ORDER_BEGIN" in line:
            in_block = True
            continue
        if "RPQI_LOCK_ORDER_END" in line:
            return ranks
        if in_block:
            tokens = line.lstrip("/ \t").split()
            if tokens:
                ranks[tokens[0]] = len(ranks)
    findings.append(
        (rel, 1, "lock-order",
         "RPQI_LOCK_ORDER_BEGIN/END hierarchy block not found"))
    return {}


def line_has_waiver(raw_lines, index, waiver_re):
    """True when `waiver_re` matches line `index` (0-based) or the line
    immediately above it (the 80-column escape)."""
    if waiver_re.search(raw_lines[index]):
        return True
    return index > 0 and waiver_re.search(raw_lines[index - 1])


def ranked_names(arg_text, ranks):
    """Mutex names from an annotation/constructor argument list, keeping only
    ranked ones. `&reg.fault_mu, shard->shard_mu` -> [fault_mu, shard_mu]."""
    names = []
    for arg in arg_text.split(","):
        m = TRAILING_IDENT_RE.search(arg.strip())
        if m and m.group(1) in ranks:
            names.append(m.group(1))
    return names


def check_lock_order(rel, raw_lines, code_lines, ranks, findings):
    """Lexically tracks nested lock scopes per brace depth and flags
    acquisitions that violate the declared hierarchy, plus unjustified
    RPQI_NO_THREAD_SAFETY_ANALYSIS waivers."""
    held = []  # (name, rank, depth) — popped when depth drops below `depth`
    depth = 0
    pending_requires = []  # REQUIRES names awaiting the function's open brace
    for lineno, (raw, code) in enumerate(zip(raw_lines, code_lines), 1):
        stripped = code.lstrip()
        if stripped.startswith("#"):
            continue  # the macros' own definitions are not uses
        if NO_TSA_RE.search(code) and not line_has_waiver(
                raw_lines, lineno - 1, ALLOW_NO_TSA_RE):
            findings.append(
                (rel, lineno, "lock-order",
                 "RPQI_NO_THREAD_SAFETY_ANALYSIS without "
                 "`// lint: allow-no-tsa <why>` on this or the line above"))
        for m in REQUIRES_RE.finditer(code):
            pending_requires.extend(ranked_names(m.group(1), ranks))
        acquisitions = []
        for m in ACQUIRE_RE.finditer(code):
            acquisitions.extend(ranked_names(m.group(1), ranks))
        waived = line_has_waiver(raw_lines, lineno - 1, ALLOW_LOCK_ORDER_RE)
        for name in acquisitions:
            rank = ranks[name]
            for held_name, held_rank, _ in held:
                if waived:
                    continue
                if held_name == name:
                    findings.append(
                        (rel, lineno, "lock-order",
                         f"acquires `{name}` while already holding it "
                         "(double acquisition of a non-reentrant mutex)"))
                elif rank <= held_rank:
                    findings.append(
                        (rel, lineno, "lock-order",
                         f"acquires `{name}` (rank {rank}) while holding "
                         f"`{held_name}` (rank {held_rank}); the declared "
                         "order in base/thread_annotations.h is "
                         "outermost-first"))
            held.append((name, rank, depth))
        for c in code:
            if c == "{":
                depth += 1
                if pending_requires:
                    for name in pending_requires:
                        held.append((name, ranks[name], depth))
                    pending_requires = []
            elif c == "}":
                depth = max(0, depth - 1)
                held = [h for h in held if h[2] <= depth]
        # A declaration (`... RPQI_REQUIRES(mu);`) has no body to hold the
        # lock in: a `;` that arrives before the open brace cancels it.
        if pending_requires and ";" in code:
            pending_requires = []


def statement_start(code_lines, index):
    """First line (0-based) of the statement containing line `index`: walks
    up while the previous line is a non-terminated code line."""
    while index > 0:
        prev = code_lines[index - 1].strip()
        if not prev or prev[-1] in ";{}" or prev.startswith("#"):
            return index
        index -= 1
    return index


def has_order_comment(raw_lines, code_lines, index):
    """True when an `order: <why>` comment covers line `index` (0-based):
    on any line of the enclosing statement, or in the comment block
    immediately above it."""
    start = statement_start(code_lines, index)
    for i in range(start, index + 1):
        if ORDER_COMMENT_RE.search(raw_lines[i]):
            return True
    i = start - 1
    while i >= 0 and code_lines[i].strip() == "" and raw_lines[i].strip():
        if ORDER_COMMENT_RE.search(raw_lines[i]):
            return True
        i -= 1
    return False


def check_memory_order(rel, raw_lines, code_lines, findings):
    for lineno, code in enumerate(code_lines, 1):
        for m in MEMORY_ORDER_RE.finditer(code):
            order = m.group(1)
            if order == "consume":
                findings.append(
                    (rel, lineno, "memory-order",
                     "memory_order_consume is banned (unimplementable; "
                     "compilers silently promote it) — use acquire"))
            elif order != "seq_cst" and not has_order_comment(
                    raw_lines, code_lines, lineno - 1):
                findings.append(
                    (rel, lineno, "memory-order",
                     f"memory_order_{order} without an `order: <why>` "
                     "comment on the statement or immediately above it"))


def main(argv):
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = []
    fault_sites = {}
    lock_ranks = load_lock_hierarchy(root, findings)

    for rel in iter_source_files(root, ["src", "tools"], {".h", ".cc"}):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            raw_lines = f.read().splitlines()
        code_lines = strip_block_comments(raw_lines)
        check_discards(rel, raw_lines, code_lines, findings)
        if rel.startswith("src" + os.sep):
            check_terminate(rel, code_lines, findings)
            check_fault_sites(rel, raw_lines, code_lines, fault_sites,
                              findings)
            check_lock_order(rel, raw_lines, code_lines, lock_ranks,
                             findings)
            check_memory_order(rel, raw_lines, code_lines, findings)
            if rel.endswith(".h"):
                check_include_guard(rel, code_lines, findings)
            if rel.endswith(".cc"):
                check_budget_loops(rel, raw_lines, code_lines, findings)
            if (rel.startswith(os.path.join("src", "service") + os.sep)
                    or rel.startswith(os.path.join("src", "net") + os.sep)):
                check_service_io(rel, raw_lines, code_lines, findings)

    check_nodiscard_annotations(root, findings)
    check_fault_catalog(root, fault_sites, findings)

    for rel, lineno, rule, message in sorted(findings):
        print(f"{rel}:{lineno}: {rule}: {message}")
    if findings:
        print(f"rpqi_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("rpqi_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
