#!/usr/bin/env python3
"""Tests for tools/rpqi_lint.py.

Usage: rpqi_lint_test.py PATH_TO_RPQI_LINT

Builds throwaway mini-repos (src/ + tests/ fixtures in a tempdir) and runs
the lint against them, asserting that every rule both fires on a violation
and stays quiet on the idiomatic form:

  discard        (void) casts need a waiver; status.h keeps [[nodiscard]].
  no-terminate   abort/exit and naked `new` are banned in library code.
  include-guard  RPQI_<PATH>_H_ guards derived from the file path.
  budget-loop    growth calls inside loops need a Budget or a waiver.
  fault-site     grammar, uniqueness, same-line names, catalog sync.
  service-io     no stdout/stderr writes under src/service/ or src/net/.
  lock-order     hierarchy violations, double acquisition, REQUIRES-held
                 locks, allow-lock-order waivers, allow-no-tsa waivers,
                 and a missing hierarchy block.
  memory-order   non-seq_cst orders need `order:` comments; consume banned.
"""

import os
import subprocess
import sys
import tempfile

FAILURES = []

# A minimal status.h satisfying the lint's [[nodiscard]] cross-check; every
# fixture repo carries it because check_nodiscard_annotations always runs.
STATUS_H = """\
#ifndef RPQI_BASE_STATUS_H_
#define RPQI_BASE_STATUS_H_
namespace rpqi {
class [[nodiscard]] Status {};
template <typename T>
class [[nodiscard]] StatusOr {};
}  // namespace rpqi
#endif  // RPQI_BASE_STATUS_H_
"""

# A minimal thread_annotations.h with a 3-level hierarchy for the lock-order
# rule. outer_mu > middle_mu > inner_mu.
THREAD_ANNOTATIONS_H = """\
#ifndef RPQI_BASE_THREAD_ANNOTATIONS_H_
#define RPQI_BASE_THREAD_ANNOTATIONS_H_
// RPQI_LOCK_ORDER_BEGIN
//   outer_mu    fixture outermost lock
//   middle_mu   fixture middle lock
//   inner_mu    fixture innermost lock
// RPQI_LOCK_ORDER_END
#define RPQI_REQUIRES(...)
#define RPQI_NO_THREAD_SAFETY_ANALYSIS
#endif  // RPQI_BASE_THREAD_ANNOTATIONS_H_
"""

FAULT_CATALOG = """\
const char* const kKnownSites[] = {};
"""

FAULT_CATALOG_GOOD_SITE = """\
const char* const kKnownSites[] = {
    "good.site",
};
"""


def check(label, condition, detail=""):
    if condition:
        print(f"ok: {label}")
    else:
        FAILURES.append(label)
        print(f"FAIL: {label} {detail}")


def run_lint(lint_py, files):
    """Writes `files` ({relpath: text}) into a fresh repo root and lints it.

    Every fixture gets the baseline status.h / thread_annotations.h /
    fault-catalog files unless the caller overrides them.
    """
    root = tempfile.mkdtemp(prefix="rpqi_lint_fix_")
    merged = {
        os.path.join("src", "base", "status.h"): STATUS_H,
        os.path.join("src", "base", "thread_annotations.h"):
            THREAD_ANNOTATIONS_H,
        os.path.join("tests", "fault_test.cc"): FAULT_CATALOG,
    }
    merged.update(files)
    for rel, text in merged.items():
        if text is None:
            continue  # caller removed a baseline file
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    result = subprocess.run([sys.executable, lint_py, root],
                            capture_output=True, text=True)
    return result.returncode, result.stdout


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: rpqi_lint_test.py RPQI_LINT_PY")
    lint = sys.argv[1]

    # --- baseline ----------------------------------------------------------
    code, out = run_lint(lint, {})
    check("baseline fixture is clean", code == 0, out)

    # --- discard -----------------------------------------------------------
    code, out = run_lint(lint, {
        "src/base/a.cc": "void F() {\n  (void)G();\n}\n",
    })
    check("bare (void) discard fires", code == 1 and "discard" in out, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            "void F() {\n"
            "  (void)G();  // lint: allow-discard result checked upstream\n"
            "}\n",
    })
    check("waived (void) discard passes", code == 0, out)
    code, out = run_lint(lint, {
        "src/base/status.h": STATUS_H.replace("class [[nodiscard]] Status",
                                              "class Status"),
    })
    check("stripped [[nodiscard]] on Status fires",
          code == 1 and "lost its [[nodiscard]]" in out, out)

    # --- no-terminate ------------------------------------------------------
    code, out = run_lint(lint, {
        "src/base/a.cc": "void F() {\n  abort();\n}\n",
    })
    check("abort() in library code fires",
          code == 1 and "no-terminate" in out, out)
    code, out = run_lint(lint, {
        "src/base/a.cc": "void F() {\n  auto* p = new int;\n}\n",
    })
    check("naked new fires", code == 1 and "naked `new`" in out, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            "void F() {\n  auto p = std::make_unique<int>();\n}\n",
    })
    check("make_unique passes", code == 0, out)

    # --- include-guard -----------------------------------------------------
    code, out = run_lint(lint, {
        "src/base/widget.h": "#pragma once\nint x;\n",
    })
    check("pragma once instead of guard fires",
          code == 1 and "include-guard" in out
          and "RPQI_BASE_WIDGET_H_" in out, out)
    code, out = run_lint(lint, {
        "src/base/widget.h":
            "#ifndef RPQI_BASE_WIDGET_H_\n"
            "#define RPQI_BASE_WIDGET_H_\n"
            "#endif  // RPQI_BASE_WIDGET_H_\n",
    })
    check("canonical guard passes", code == 0, out)

    # --- budget-loop -------------------------------------------------------
    code, out = run_lint(lint, {
        "src/automata/grow.cc":
            "void Grow(Nfa* nfa) {\n"
            "  while (true) {\n"
            "    nfa->AddState();\n"
            "  }\n"
            "}\n",
    })
    check("unbudgeted growth loop fires",
          code == 1 and "budget-loop" in out, out)
    code, out = run_lint(lint, {
        "src/automata/grow.cc":
            "Status Grow(Nfa* nfa, Budget* budget) {\n"
            "  while (true) {\n"
            "    RPQI_RETURN_IF_ERROR(budget->Check());\n"
            "    nfa->AddState();\n"
            "  }\n"
            "}\n",
    })
    check("budget-charging growth loop passes", code == 0, out)

    # --- fault-site --------------------------------------------------------
    code, out = run_lint(lint, {
        "src/base/a.cc":
            'void F() {\n  if (RPQI_FAULT_FIRED("Bad.Site")) return;\n}\n',
        "tests/fault_test.cc":
            'const char* const kKnownSites[] = {\n    "Bad.Site",\n};\n',
    })
    check("uppercase fault-site name fires",
          code == 1 and "fault-site" in out and "grammar" in out, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            'void F() {\n  if (RPQI_FAULT_FIRED("good.site")) return;\n}\n',
        "src/base/b.cc":
            'void G() {\n  if (RPQI_FAULT_FIRED("good.site")) return;\n}\n',
        "tests/fault_test.cc": FAULT_CATALOG_GOOD_SITE,
    })
    check("duplicate fault-site fires",
          code == 1 and "already used" in out, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            'void F() {\n  if (RPQI_FAULT_FIRED("good.site")) return;\n}\n',
        "tests/fault_test.cc": FAULT_CATALOG_GOOD_SITE,
    })
    check("cataloged unique fault-site passes", code == 0, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            'void F() {\n  if (RPQI_FAULT_FIRED("other.site")) return;\n}\n',
        "tests/fault_test.cc": FAULT_CATALOG_GOOD_SITE,
    })
    check("uncataloged fault-site fires (both directions)",
          code == 1 and "missing from kKnownSites" in out
          and "has no RPQI_FAULT_* call site" in out, out)

    # --- service-io --------------------------------------------------------
    code, out = run_lint(lint, {
        "src/service/a.cc":
            '#include <cstdio>\nvoid F() {\n  printf("hi\\n");\n}\n',
    })
    check("printf under src/service fires",
          code == 1 and "service-io" in out, out)
    code, out = run_lint(lint, {
        "src/net/a.cc":
            '#include <cstdio>\nvoid F() {\n  printf("hi\\n");\n}\n',
    })
    check("printf under src/net fires",
          code == 1 and "service-io" in out, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            '#include <cstdio>\nvoid F() {\n  printf("hi\\n");\n}\n',
    })
    check("printf outside src/service passes (service-io scope)",
          "service-io" not in out, out)

    # --- lock-order --------------------------------------------------------
    code, out = run_lint(lint, {
        "src/base/a.cc":
            "void F() {\n"
            "  MutexLock lock(&inner_mu);\n"
            "  MutexLock inner(&outer_mu);\n"
            "}\n",
    })
    check("inverted lock order fires",
          code == 1 and "lock-order" in out and "rank" in out, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            "void F() {\n"
            "  MutexLock lock(&outer_mu);\n"
            "  MutexLock inner(&inner_mu);\n"
            "}\n",
    })
    check("declared-order nesting passes", code == 0, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            "void F() {\n"
            "  MutexLock lock(&middle_mu);\n"
            "  {\n"
            "    MutexLock again(&middle_mu);\n"
            "  }\n"
            "}\n",
    })
    check("double acquisition fires",
          code == 1 and "already holding it" in out, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            "void F() {\n"
            "  for (auto& shard : shards) {\n"
            "    MutexLock lock(&middle_mu);\n"
            "  }\n"
            "  MutexLock after(&middle_mu);\n"
            "}\n",
    })
    check("sequential (non-nested) same-lock scopes pass", code == 0, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            "void F() RPQI_REQUIRES(middle_mu) {\n"
            "  MutexLock lock(&outer_mu);\n"
            "}\n",
    })
    check("REQUIRES counts as held", code == 1 and "lock-order" in out, out)
    code, out = run_lint(lint, {
        "src/base/a.h":
            "#ifndef RPQI_BASE_A_H_\n"
            "#define RPQI_BASE_A_H_\n"
            "void F() RPQI_REQUIRES(middle_mu);\n"
            "void G() {\n"
            "  MutexLock lock(&outer_mu);\n"
            "}\n"
            "#endif  // RPQI_BASE_A_H_\n",
    })
    check("REQUIRES on a declaration does not leak into the next function",
          code == 0, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            "void F() {\n"
            "  MutexLock lock(&inner_mu);\n"
            "  // lint: allow-lock-order fixture justification\n"
            "  MutexLock inner(&outer_mu);\n"
            "}\n",
    })
    check("allow-lock-order waiver passes", code == 0, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            "void F() RPQI_NO_THREAD_SAFETY_ANALYSIS {\n}\n",
    })
    check("bare NO_THREAD_SAFETY_ANALYSIS fires",
          code == 1 and "allow-no-tsa" in out, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            "// lint: allow-no-tsa fixture protocol justification\n"
            "void F() RPQI_NO_THREAD_SAFETY_ANALYSIS {\n}\n",
    })
    check("waived NO_THREAD_SAFETY_ANALYSIS passes", code == 0, out)
    code, out = run_lint(lint, {
        os.path.join("src", "base", "thread_annotations.h"):
            "#ifndef RPQI_BASE_THREAD_ANNOTATIONS_H_\n"
            "#define RPQI_BASE_THREAD_ANNOTATIONS_H_\n"
            "#endif  // RPQI_BASE_THREAD_ANNOTATIONS_H_\n",
    })
    check("missing hierarchy block fires",
          code == 1 and "hierarchy block not found" in out, out)

    # --- memory-order ------------------------------------------------------
    code, out = run_lint(lint, {
        "src/base/a.cc":
            "void F() {\n"
            "  flag.load(std::memory_order_relaxed);\n"
            "}\n",
    })
    check("unjustified relaxed order fires",
          code == 1 and "memory-order" in out, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            "void F() {\n"
            "  flag.load(std::memory_order_relaxed);  // order: gate only\n"
            "}\n",
    })
    check("same-line order comment passes", code == 0, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            "void F() {\n"
            "  // order: pairs with the release store in G; the comment\n"
            "  // may span lines\n"
            "  flag.load(\n"
            "      std::memory_order_acquire);\n"
            "}\n",
    })
    check("preceding-comment + wrapped statement passes", code == 0, out)
    code, out = run_lint(lint, {
        "src/base/a.h":
            "#ifndef RPQI_BASE_A_H_\n"
            "#define RPQI_BASE_A_H_\n"
            "#define GATE()                                             \\\n"
            "  (g_on.load(                                              \\\n"
            "       std::memory_order_relaxed /* order: gate only */))\n"
            "#endif  // RPQI_BASE_A_H_\n",
    })
    check("block-comment order waiver in a macro passes", code == 0, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            "void F() {\n"
            "  flag.load(std::memory_order_seq_cst);\n"
            "}\n",
    })
    check("explicit seq_cst needs no comment", code == 0, out)
    code, out = run_lint(lint, {
        "src/base/a.cc":
            "void F() {\n"
            "  // order: no justification saves consume\n"
            "  flag.load(std::memory_order_consume);\n"
            "}\n",
    })
    check("memory_order_consume is banned outright",
          code == 1 and "consume" in out, out)

    print()
    if FAILURES:
        print(f"{len(FAILURES)} failure(s): {FAILURES}")
        return 1
    print("rpqi_lint_test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
