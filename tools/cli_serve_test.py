#!/usr/bin/env python3
"""CLI-level tests for the `rpqi serve` NDJSON protocol.

Usage: cli_serve_test.py PATH_TO_RPQI_BINARY

Drives the built `rpqi` binary end to end:
  * a mixed batch of eval/rewrite/answer/admin requests, each answered
    exactly once with the request id echoed, exit 0 on clean EOF drain;
  * plan-cache hit/miss transitions and per-request counter deltas;
  * deterministic queue-full rejection (--threads 1 --queue-depth 1 with an
    `admin sleep` occupying the worker) producing `overloaded` responses
    in-band, not a process exit;
  * `admin reload` hot-swapping the snapshot mid-batch: requests before and
    after the swap all answered, snapshot_version advances;
  * binary columnar snapshots: `rpqi compact` conversion, live reload onto
    the mmap path with identical answers, torn-file reloads degrading to
    structured `unavailable` responses;
  * `admin shutdown` stops reading further input and still drains cleanly;
  * the ParseFlags regression: a trailing flag with no value exits 2 with a
    "requires a value" diagnostic (not "unexpected argument");
  * fault injection end to end: `--fault snapshot.open=once:2` makes the
    first reload fail with a structured `unavailable` response, the retry
    succeeds and serving recovers; `--reload-retries` absorbs the same fault
    inside one request; RPQI_FAULT in the environment behaves like the flag;
    a malformed spec exits 2 before serving starts.
"""

import json
import os
import subprocess
import sys
import tempfile

FAILURES = []


def check(label, condition, detail=""):
    if condition:
        print(f"ok: {label}")
    else:
        FAILURES.append(label)
        print(f"FAIL: {label} {detail}")


def serve(binary, lines, *flags, env=None):
    """Runs `rpqi serve` with the given stdin lines; returns (proc, records)."""
    run_env = None
    if env:
        run_env = dict(os.environ)
        run_env.update(env)
    proc = subprocess.run(
        [binary, "serve"] + list(flags),
        input="".join(line + "\n" for line in lines),
        capture_output=True, text=True, timeout=120, env=run_env)
    records = []
    for line in proc.stdout.splitlines():
        if line.strip():
            records.append(json.loads(line))  # raises on malformed JSON
    return proc, records


def by_id(records):
    ids = {}
    for record in records:
        ids.setdefault(record.get("id"), []).append(record)
    return ids


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: cli_serve_test.py RPQI_BINARY")
    binary = sys.argv[1]
    tmp = tempfile.mkdtemp(prefix="rpqi_cli_serve_")

    db1 = os.path.join(tmp, "g1.txt")
    with open(db1, "w") as handle:
        handle.write("a r b\nb r c\nc s d\n")
    db2 = os.path.join(tmp, "g2.txt")
    with open(db2, "w") as handle:
        handle.write("a r b\nb r c\nc s d\nd r e\n")

    # --- mixed batch, clean drain ----------------------------------------
    batch = [
        '{"id":1,"op":"eval","query":"r* s"}',
        '{"id":2,"op":"eval","query":"r* s"}',
        '{"id":3,"op":"rewrite","query":"r r","views":{"v1":"r"}}',
        ('{"id":4,"op":"answer","mode":"oda","objects":2,"query":"r",'
         '"views":[{"name":"v","expr":"r","assumption":"exact",'
         '"extension":[[0,1]]}],"pairs":[[0,1],[1,0]]}'),
        'this is not json',
        '{"id":5,"op":"admin","action":"stats"}',
    ]
    proc, records = serve(binary, batch, "--db", db1)
    check("mixed batch exits 0 on EOF drain", proc.returncode == 0,
          proc.stderr)
    ids = by_id(records)
    check("every request answered exactly once",
          sorted(k for k in ids if k is not None) == [1, 2, 3, 4, 5]
          and all(len(v) == 1 for v in ids.values()),
          proc.stdout)
    check("invalid json answered in-band with id null",
          len(ids.get(None, [])) == 1
          and ids[None][0]["code"] == "invalid_request")
    check("first eval is a cache miss", ids[1][0].get("cache") == "miss")
    check("second eval is a cache hit", ids[2][0].get("cache") == "hit")
    check("eval answers are node-name pairs",
          sorted(ids[1][0]["answers"]) == [["a", "d"], ["b", "d"], ["c", "d"]])
    check("rewrite reports exactness",
          ids[3][0]["rewriting"] == "v1 v1" and ids[3][0]["exact"] is True)
    check("oda results per pair",
          [r["certain"] for r in ids[4][0]["results"]] == [True, False])
    check("responses carry per-request counter deltas",
          ids[1][0]["counters"].get("service.requests") == 1
          and ids[2][0]["counters"].get("service.plan_cache.hit") == 1)
    check("admin stats sees cache and snapshot",
          ids[5][0]["plan_cache"]["hits"] >= 1
          and ids[5][0]["snapshot"]["version"] == 1)

    # --- deterministic queue-full rejection ------------------------------
    # One worker, queue depth 1: the sleep occupies the worker (or the queue
    # slot) and the burst behind it must overflow into `overloaded`.
    burst = ['{"id":0,"op":"admin","action":"sleep","ms":1500}']
    burst += ['{"id":%d,"op":"eval","query":"r"}' % i for i in range(1, 9)]
    proc, records = serve(binary, burst, "--db", db1,
                          "--threads", "1", "--queue-depth", "1")
    check("overload run still exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    rejected = [r for rs in ids.values() for r in rs
                if r.get("code") == "overloaded"]
    completed = [r for rs in ids.values() for r in rs
                 if r.get("status") == "ok"]
    # The worker sleeps 1.5s; the queue holds one request. At most one eval
    # is accepted (whichever lands after the worker dequeues the sleep), so
    # at least 7 of the 8 must be rejected.
    check("queue-full rejections are structured responses",
          len(rejected) >= 7, proc.stdout)
    check("accepted requests still complete", len(completed) >= 1)
    check("rejections echo their request ids",
          all(isinstance(r.get("id"), int) for r in rejected))
    check("every burst request answered exactly once",
          sorted(ids) == list(range(9))
          and all(len(v) == 1 for v in ids.values()))

    # --- reload during a stream of queries -------------------------------
    stream = ['{"id":%d,"op":"eval","query":"r* s"}' % i for i in range(10)]
    stream.insert(5, '{"id":100,"op":"admin","action":"reload","db":"%s"}'
                  % db2)
    proc, records = serve(binary, stream, "--db", db1, "--threads", "4")
    check("reload run exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("zero requests lost across reload",
          sorted(ids) == list(range(10)) + [100]
          and all(len(v) == 1 for v in ids.values()), proc.stdout)
    check("reload response advances the snapshot version",
          ids[100][0]["snapshot_version"] == 2)
    versions = {ids[i][0]["snapshot_version"] for i in range(10)}
    check("eval requests pin version 1 or 2, nothing else",
          versions <= {1, 2}, str(versions))
    check("all evals succeeded across the swap",
          all(ids[i][0]["status"] == "ok" for i in range(10)))

    # --- binary columnar snapshot: compact + live reload ------------------
    # `rpqi compact` converts the text graph to the mmap-loaded columnar
    # format; `admin reload` hot-swaps to it and answers must be identical
    # to the text snapshot's, with the mmap counters recording the open.
    db2_bin = os.path.join(tmp, "g2.rpqicol")
    proc = subprocess.run(
        [binary, "compact", "--in", db2, "--out", db2_bin, "--validate", "1"],
        capture_output=True, text=True, timeout=60)
    check("compact text -> binary exits 0", proc.returncode == 0, proc.stderr)
    check("compact reports validation", "validate: ok" in proc.stdout,
          proc.stdout)

    text_proc, text_records = serve(binary, [
        '{"id":1,"op":"eval","query":"r* s"}'], "--db", db2)
    bin_batch = [
        '{"id":1,"op":"admin","action":"reload","db":"%s"}' % db2_bin,
        '{"id":2,"op":"eval","query":"r* s"}',
        '{"id":3,"op":"admin","action":"stats"}',
    ]
    proc, records = serve(binary, bin_batch, "--db", db1, "--threads", "2")
    check("binary reload run exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("reload onto a columnar snapshot succeeds",
          ids[1][0]["status"] == "ok"
          and ids[1][0]["snapshot_version"] == 2, proc.stdout)
    check("columnar snapshot serves identical answers",
          sorted(ids[2][0]["answers"])
          == sorted(by_id(text_records)[1][0]["answers"]), proc.stdout)
    check("mmap open is recorded in the reload counters",
          ids[1][0]["counters"].get("service.snapshot.mmap_opens") == 1,
          proc.stdout)

    # A torn binary file (truncated mid-write) must surface as a structured
    # `unavailable` reload error while the old snapshot keeps serving.
    torn = os.path.join(tmp, "torn.rpqicol")
    with open(db2_bin, "rb") as handle:
        full = handle.read()
    with open(torn, "wb") as handle:
        handle.write(full[:len(full) // 2])
    proc, records = serve(binary, [
        '{"id":1,"op":"admin","action":"reload","db":"%s"}' % torn,
        '{"id":2,"op":"eval","query":"r* s"}',
    ], "--db", db2, "--threads", "1")
    check("torn binary reload run exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("torn binary reload is `unavailable`",
          ids[1][0]["status"] == "error"
          and ids[1][0]["code"] == "unavailable", proc.stdout)
    check("old snapshot keeps serving after torn reload",
          ids[2][0]["status"] == "ok", proc.stdout)

    # --- persistent plan cache across a restart ---------------------------
    # First process: cold miss compiles, evals, and persists the plan to
    # --plan-cache-dir. Second process (fresh in-memory cache, same dir):
    # the same query is served from disk — cache=="disk", the disk_hit
    # counter fires, and no compile work appears in the response delta.
    plan_dir = os.path.join(tmp, "plans")
    os.makedirs(plan_dir, exist_ok=True)
    proc, records = serve(binary, [
        '{"id":1,"op":"eval","query":"r* s"}',
    ], "--db", db1, "--plan-cache-dir", plan_dir)
    check("plan-dir run exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("cold eval with a plan dir is a miss",
          ids[1][0].get("cache") == "miss", proc.stdout)
    check("cold eval persists a plan file",
          any(name.endswith(".rpqiplan") for name in os.listdir(plan_dir))
          and ids[1][0]["counters"].get("service.plan_cache.disk_write") == 1,
          proc.stdout)
    cold_answers = sorted(ids[1][0]["answers"])

    proc, records = serve(binary, [
        '{"id":1,"op":"eval","query":"r* s"}',
        '{"id":2,"op":"eval","query":"r* s"}',
    ], "--db", db1, "--plan-cache-dir", plan_dir)
    check("restarted plan-dir run exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("restarted server serves the query from disk",
          ids[1][0].get("cache") == "disk"
          and ids[1][0]["counters"].get("service.plan_cache.disk_hit") == 1,
          proc.stdout)
    check("disk-served answers match the cold run",
          sorted(ids[1][0]["answers"]) == cold_answers, proc.stdout)
    check("disk hit skips compilation",
          "eval.plan_compiles" not in ids[1][0]["counters"], proc.stdout)
    check("second query after restart is an in-memory hit",
          ids[2][0].get("cache") == "hit", proc.stdout)

    # --- shutdown stops the reader ---------------------------------------
    proc, records = serve(binary, [
        '{"id":1,"op":"eval","query":"r"}',
        '{"id":2,"op":"admin","action":"shutdown"}',
        '{"id":3,"op":"eval","query":"r"}',
    ], "--db", db1)
    check("shutdown run exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("requests before shutdown answered", 1 in ids and 2 in ids)
    check("input after shutdown is not consumed", 3 not in ids, proc.stdout)

    # --- structured error classes ----------------------------------------
    proc, records = serve(binary, [
        '{"id":1,"op":"eval","query":"r"}',
        '{"id":2,"op":"nope"}',
    ])
    check("no-snapshot server exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("eval without snapshot is `unavailable`",
          ids[1][0]["code"] == "unavailable")
    check("unknown op is `invalid_request`",
          ids[2][0]["code"] == "invalid_request")

    proc, records = serve(
        binary, ['{"id":1,"op":"eval","query":"r*","max_states":1}'],
        "--db", db1)
    check("state quota maps to `resource_exhausted`",
          by_id(records)[1][0]["code"] == "resource_exhausted", proc.stdout)

    # --- bad --db fails fast with exit 2, not a serving loop -------------
    proc = subprocess.run([binary, "serve", "--db",
                           os.path.join(tmp, "missing.txt")],
                          input="", capture_output=True, text=True,
                          timeout=60)
    check("unreadable --db exits 2", proc.returncode == 2, proc.stderr)

    # --- fault injection end to end --------------------------------------
    # once:2 — the initial --db load is the first hit on snapshot.open, so
    # the *reload* is the one that fails. Single attempt (default): the
    # failure surfaces as a structured `unavailable`, no version is burned,
    # and the retried request succeeds.
    fault_batch = [
        '{"id":1,"op":"eval","query":"r* s"}',
        '{"id":2,"op":"admin","action":"reload","db":"%s"}' % db2,
        '{"id":3,"op":"admin","action":"reload","db":"%s"}' % db2,
        '{"id":4,"op":"eval","query":"r* s"}',
    ]
    proc, records = serve(binary, fault_batch, "--db", db1, "--threads", "1",
                          "--fault", "snapshot.open=once:2")
    check("faulted run exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("eval before the fault is ok", ids[1][0]["status"] == "ok")
    check("injected reload failure is `unavailable`",
          ids[2][0]["status"] == "error"
          and ids[2][0]["code"] == "unavailable", proc.stdout)
    check("injected failure names the fault",
          "injected" in ids[2][0].get("message", ""), proc.stdout)
    check("retried reload succeeds without a burned version",
          ids[3][0]["status"] == "ok"
          and ids[3][0]["snapshot_version"] == 2, proc.stdout)
    check("serving recovers after the fault", ids[4][0]["status"] == "ok")

    # With --reload-retries the same transient fault is absorbed inside the
    # one request; the counter delta records the retry.
    proc, records = serve(binary, [
        '{"id":1,"op":"admin","action":"reload","db":"%s"}' % db2,
    ], "--db", db1, "--threads", "1", "--reload-retries", "3",
        "--fault", "snapshot.open=once:2")
    check("reload retry absorbs a transient fault", proc.returncode == 0
          and by_id(records)[1][0]["status"] == "ok", proc.stdout)
    check("retry shows up in the counter delta",
          by_id(records)[1][0]["counters"]
          .get("service.snapshot.retries") == 1, proc.stdout)

    # RPQI_FAULT in the environment arms the same spec as the flag.
    proc, records = serve(binary, [
        '{"id":1,"op":"admin","action":"reload","db":"%s"}' % db2,
    ], "--db", db1, "--threads", "1",
        env={"RPQI_FAULT": "snapshot.open=once:2"})
    check("RPQI_FAULT env arms fault sites",
          by_id(records)[1][0].get("code") == "unavailable", proc.stdout)

    # A malformed spec is a usage error: exit 2 before serving starts.
    proc = subprocess.run(
        [binary, "serve", "--db", db1, "--fault", "snapshot.open=sometimes"],
        input="", capture_output=True, text=True, timeout=60)
    check("malformed --fault spec exits 2", proc.returncode == 2, proc.stderr)
    check("malformed --fault spec is diagnosed",
          "snapshot.open" in proc.stderr, proc.stderr)

    # --- ParseFlags regression (satellite): trailing flag ----------------
    proc = subprocess.run([binary, "eval", "--db"], capture_output=True,
                          text=True, timeout=60)
    check("trailing --db exits 2", proc.returncode == 2)
    check("trailing --db says 'requires a value'",
          "flag --db requires a value" in proc.stderr, proc.stderr)
    check("trailing flag is not 'unexpected argument'",
          "unexpected argument" not in proc.stderr, proc.stderr)

    print(f"\n{len(FAILURES)} failure(s)")
    sys.exit(1 if FAILURES else 0)


if __name__ == "__main__":
    main()
