#!/usr/bin/env python3
"""CLI-level tests for the `rpqi serve` NDJSON protocol.

Usage: cli_serve_test.py PATH_TO_RPQI_BINARY

Drives the built `rpqi` binary end to end:
  * a mixed batch of eval/rewrite/answer/admin requests, each answered
    exactly once with the request id echoed, exit 0 on clean EOF drain;
  * plan-cache hit/miss transitions and per-request counter deltas;
  * deterministic queue-full rejection (--threads 1 --queue-depth 1 with an
    `admin sleep` occupying the worker) producing `overloaded` responses
    in-band, not a process exit;
  * `admin reload` hot-swapping the snapshot mid-batch: requests before and
    after the swap all answered, snapshot_version advances;
  * binary columnar snapshots: `rpqi compact` conversion, live reload onto
    the mmap path with identical answers, torn-file reloads degrading to
    structured `unavailable` responses;
  * `admin shutdown` stops reading further input and still drains cleanly;
  * the ParseFlags regression: a trailing flag with no value exits 2 with a
    "requires a value" diagnostic (not "unexpected argument");
  * fault injection end to end: `--fault snapshot.open=once:2` makes the
    first reload fail with a structured `unavailable` response, the retry
    succeeds and serving recovers; `--reload-retries` absorbs the same fault
    inside one request; RPQI_FAULT in the environment behaves like the flag;
    a malformed spec exits 2 before serving starts;
  * the TCP transport (`--transport tcp --port 0 --port-file`): concurrent
    clients each answered in order, a stdio-vs-TCP differential (identical
    responses modulo timing/counters), slow-writer partial-line framing, a
    batched stream proving snapshot-pin amortization via
    service.batch.snapshot_pins_saved, `--max-conns` shedding with one
    structured `overloaded` line, `--max-line-bytes` oversized-line
    rejection with the connection surviving, and the cross-connection
    shutdown drain (admin shutdown on one connection never truncates
    another connection's in-flight request).
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time

FAILURES = []


def check(label, condition, detail=""):
    if condition:
        print(f"ok: {label}")
    else:
        FAILURES.append(label)
        print(f"FAIL: {label} {detail}")


def serve(binary, lines, *flags, env=None):
    """Runs `rpqi serve` with the given stdin lines; returns (proc, records)."""
    run_env = None
    if env:
        run_env = dict(os.environ)
        run_env.update(env)
    proc = subprocess.run(
        [binary, "serve"] + list(flags),
        input="".join(line + "\n" for line in lines),
        capture_output=True, text=True, timeout=120, env=run_env)
    records = []
    for line in proc.stdout.splitlines():
        if line.strip():
            records.append(json.loads(line))  # raises on malformed JSON
    return proc, records


def by_id(records):
    ids = {}
    for record in records:
        ids.setdefault(record.get("id"), []).append(record)
    return ids


class TcpServer:
    """`rpqi serve --transport tcp --port 0` as a context manager: waits for
    the ephemeral port via --port-file, kills the process on exit if the
    scenario didn't shut it down via the protocol."""

    def __init__(self, binary, tmp, *flags):
        self.port_file = tempfile.mktemp(prefix="port_", dir=tmp)
        self.proc = subprocess.Popen(
            [binary, "serve", "--transport", "tcp", "--port", "0",
             "--port-file", self.port_file] + list(flags),
            stdin=subprocess.DEVNULL, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        self.port = None

    def __enter__(self):
        deadline = time.time() + 20
        while time.time() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError("server exited early: "
                                   + self.proc.stderr.read())
            try:
                with open(self.port_file) as handle:
                    text = handle.read().strip()
                if text:
                    self.port = int(text)
                    return self
            except FileNotFoundError:
                pass
            time.sleep(0.02)
        raise RuntimeError("server never wrote its port file")

    def __exit__(self, *exc):
        try:
            self.proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()

    def connect(self):
        return socket.create_connection(("127.0.0.1", self.port), timeout=10)


def read_tcp_lines(sock, count, timeout=20):
    """Reads until `count` JSON lines arrive, EOF, or timeout."""
    sock.settimeout(0.2)
    buf = b""
    lines = []
    deadline = time.time() + timeout
    while len(lines) < count and time.time() < deadline:
        try:
            data = sock.recv(65536)
        except socket.timeout:
            continue
        if not data:
            break
        buf += data
        while b"\n" in buf:
            raw, buf = buf.split(b"\n", 1)
            if raw.strip():
                lines.append(json.loads(raw))
    return lines


def strip_varying(record):
    """Drops timing and counter fields, which legitimately differ between
    transports (the TCP batch path reports its own amortization counters)."""
    return {k: v for k, v in record.items() if k not in ("us", "counters")}


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: cli_serve_test.py RPQI_BINARY")
    binary = sys.argv[1]
    tmp = tempfile.mkdtemp(prefix="rpqi_cli_serve_")

    db1 = os.path.join(tmp, "g1.txt")
    with open(db1, "w") as handle:
        handle.write("a r b\nb r c\nc s d\n")
    db2 = os.path.join(tmp, "g2.txt")
    with open(db2, "w") as handle:
        handle.write("a r b\nb r c\nc s d\nd r e\n")

    # --- mixed batch, clean drain ----------------------------------------
    batch = [
        '{"id":1,"op":"eval","query":"r* s"}',
        '{"id":2,"op":"eval","query":"r* s"}',
        '{"id":3,"op":"rewrite","query":"r r","views":{"v1":"r"}}',
        ('{"id":4,"op":"answer","mode":"oda","objects":2,"query":"r",'
         '"views":[{"name":"v","expr":"r","assumption":"exact",'
         '"extension":[[0,1]]}],"pairs":[[0,1],[1,0]]}'),
        'this is not json',
        '{"id":5,"op":"admin","action":"stats"}',
    ]
    proc, records = serve(binary, batch, "--db", db1)
    check("mixed batch exits 0 on EOF drain", proc.returncode == 0,
          proc.stderr)
    ids = by_id(records)
    check("every request answered exactly once",
          sorted(k for k in ids if k is not None) == [1, 2, 3, 4, 5]
          and all(len(v) == 1 for v in ids.values()),
          proc.stdout)
    check("invalid json answered in-band with id null",
          len(ids.get(None, [])) == 1
          and ids[None][0]["code"] == "invalid_request")
    check("first eval is a cache miss", ids[1][0].get("cache") == "miss")
    check("second eval is a cache hit", ids[2][0].get("cache") == "hit")
    check("eval answers are node-name pairs",
          sorted(ids[1][0]["answers"]) == [["a", "d"], ["b", "d"], ["c", "d"]])
    check("rewrite reports exactness",
          ids[3][0]["rewriting"] == "v1 v1" and ids[3][0]["exact"] is True)
    check("oda results per pair",
          [r["certain"] for r in ids[4][0]["results"]] == [True, False])
    check("responses carry per-request counter deltas",
          ids[1][0]["counters"].get("service.requests") == 1
          and ids[2][0]["counters"].get("service.plan_cache.hit") == 1)
    check("admin stats sees cache and snapshot",
          ids[5][0]["plan_cache"]["hits"] >= 1
          and ids[5][0]["snapshot"]["version"] == 1)

    # --- deterministic queue-full rejection ------------------------------
    # One worker, queue depth 1: the sleep occupies the worker (or the queue
    # slot) and the burst behind it must overflow into `overloaded`.
    burst = ['{"id":0,"op":"admin","action":"sleep","ms":1500}']
    burst += ['{"id":%d,"op":"eval","query":"r"}' % i for i in range(1, 9)]
    proc, records = serve(binary, burst, "--db", db1,
                          "--threads", "1", "--queue-depth", "1")
    check("overload run still exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    rejected = [r for rs in ids.values() for r in rs
                if r.get("code") == "overloaded"]
    completed = [r for rs in ids.values() for r in rs
                 if r.get("status") == "ok"]
    # The worker sleeps 1.5s; the queue holds one request. At most one eval
    # is accepted (whichever lands after the worker dequeues the sleep), so
    # at least 7 of the 8 must be rejected.
    check("queue-full rejections are structured responses",
          len(rejected) >= 7, proc.stdout)
    check("accepted requests still complete", len(completed) >= 1)
    check("rejections echo their request ids",
          all(isinstance(r.get("id"), int) for r in rejected))
    check("every burst request answered exactly once",
          sorted(ids) == list(range(9))
          and all(len(v) == 1 for v in ids.values()))

    # --- reload during a stream of queries -------------------------------
    stream = ['{"id":%d,"op":"eval","query":"r* s"}' % i for i in range(10)]
    stream.insert(5, '{"id":100,"op":"admin","action":"reload","db":"%s"}'
                  % db2)
    proc, records = serve(binary, stream, "--db", db1, "--threads", "4")
    check("reload run exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("zero requests lost across reload",
          sorted(ids) == list(range(10)) + [100]
          and all(len(v) == 1 for v in ids.values()), proc.stdout)
    check("reload response advances the snapshot version",
          ids[100][0]["snapshot_version"] == 2)
    versions = {ids[i][0]["snapshot_version"] for i in range(10)}
    check("eval requests pin version 1 or 2, nothing else",
          versions <= {1, 2}, str(versions))
    check("all evals succeeded across the swap",
          all(ids[i][0]["status"] == "ok" for i in range(10)))

    # --- binary columnar snapshot: compact + live reload ------------------
    # `rpqi compact` converts the text graph to the mmap-loaded columnar
    # format; `admin reload` hot-swaps to it and answers must be identical
    # to the text snapshot's, with the mmap counters recording the open.
    db2_bin = os.path.join(tmp, "g2.rpqicol")
    proc = subprocess.run(
        [binary, "compact", "--in", db2, "--out", db2_bin, "--validate", "1"],
        capture_output=True, text=True, timeout=60)
    check("compact text -> binary exits 0", proc.returncode == 0, proc.stderr)
    check("compact reports validation", "validate: ok" in proc.stdout,
          proc.stdout)

    text_proc, text_records = serve(binary, [
        '{"id":1,"op":"eval","query":"r* s"}'], "--db", db2)
    bin_batch = [
        '{"id":1,"op":"admin","action":"reload","db":"%s"}' % db2_bin,
        '{"id":2,"op":"eval","query":"r* s"}',
        '{"id":3,"op":"admin","action":"stats"}',
    ]
    proc, records = serve(binary, bin_batch, "--db", db1, "--threads", "2")
    check("binary reload run exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("reload onto a columnar snapshot succeeds",
          ids[1][0]["status"] == "ok"
          and ids[1][0]["snapshot_version"] == 2, proc.stdout)
    check("columnar snapshot serves identical answers",
          sorted(ids[2][0]["answers"])
          == sorted(by_id(text_records)[1][0]["answers"]), proc.stdout)
    check("mmap open is recorded in the reload counters",
          ids[1][0]["counters"].get("service.snapshot.mmap_opens") == 1,
          proc.stdout)

    # A torn binary file (truncated mid-write) must surface as a structured
    # `unavailable` reload error while the old snapshot keeps serving.
    torn = os.path.join(tmp, "torn.rpqicol")
    with open(db2_bin, "rb") as handle:
        full = handle.read()
    with open(torn, "wb") as handle:
        handle.write(full[:len(full) // 2])
    proc, records = serve(binary, [
        '{"id":1,"op":"admin","action":"reload","db":"%s"}' % torn,
        '{"id":2,"op":"eval","query":"r* s"}',
    ], "--db", db2, "--threads", "1")
    check("torn binary reload run exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("torn binary reload is `unavailable`",
          ids[1][0]["status"] == "error"
          and ids[1][0]["code"] == "unavailable", proc.stdout)
    check("old snapshot keeps serving after torn reload",
          ids[2][0]["status"] == "ok", proc.stdout)

    # --- persistent plan cache across a restart ---------------------------
    # First process: cold miss compiles, evals, and persists the plan to
    # --plan-cache-dir. Second process (fresh in-memory cache, same dir):
    # the same query is served from disk — cache=="disk", the disk_hit
    # counter fires, and no compile work appears in the response delta.
    plan_dir = os.path.join(tmp, "plans")
    os.makedirs(plan_dir, exist_ok=True)
    proc, records = serve(binary, [
        '{"id":1,"op":"eval","query":"r* s"}',
    ], "--db", db1, "--plan-cache-dir", plan_dir)
    check("plan-dir run exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("cold eval with a plan dir is a miss",
          ids[1][0].get("cache") == "miss", proc.stdout)
    check("cold eval persists a plan file",
          any(name.endswith(".rpqiplan") for name in os.listdir(plan_dir))
          and ids[1][0]["counters"].get("service.plan_cache.disk_write") == 1,
          proc.stdout)
    cold_answers = sorted(ids[1][0]["answers"])

    proc, records = serve(binary, [
        '{"id":1,"op":"eval","query":"r* s"}',
        '{"id":2,"op":"eval","query":"r* s"}',
    ], "--db", db1, "--plan-cache-dir", plan_dir)
    check("restarted plan-dir run exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("restarted server serves the query from disk",
          ids[1][0].get("cache") == "disk"
          and ids[1][0]["counters"].get("service.plan_cache.disk_hit") == 1,
          proc.stdout)
    check("disk-served answers match the cold run",
          sorted(ids[1][0]["answers"]) == cold_answers, proc.stdout)
    check("disk hit skips compilation",
          "eval.plan_compiles" not in ids[1][0]["counters"], proc.stdout)
    check("second query after restart is an in-memory hit",
          ids[2][0].get("cache") == "hit", proc.stdout)

    # --- shutdown stops the reader ---------------------------------------
    proc, records = serve(binary, [
        '{"id":1,"op":"eval","query":"r"}',
        '{"id":2,"op":"admin","action":"shutdown"}',
        '{"id":3,"op":"eval","query":"r"}',
    ], "--db", db1)
    check("shutdown run exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("requests before shutdown answered", 1 in ids and 2 in ids)
    check("input after shutdown is not consumed", 3 not in ids, proc.stdout)

    # --- structured error classes ----------------------------------------
    proc, records = serve(binary, [
        '{"id":1,"op":"eval","query":"r"}',
        '{"id":2,"op":"nope"}',
    ])
    check("no-snapshot server exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("eval without snapshot is `unavailable`",
          ids[1][0]["code"] == "unavailable")
    check("unknown op is `invalid_request`",
          ids[2][0]["code"] == "invalid_request")

    proc, records = serve(
        binary, ['{"id":1,"op":"eval","query":"r*","max_states":1}'],
        "--db", db1)
    check("state quota maps to `resource_exhausted`",
          by_id(records)[1][0]["code"] == "resource_exhausted", proc.stdout)

    # --- bad --db fails fast with exit 2, not a serving loop -------------
    proc = subprocess.run([binary, "serve", "--db",
                           os.path.join(tmp, "missing.txt")],
                          input="", capture_output=True, text=True,
                          timeout=60)
    check("unreadable --db exits 2", proc.returncode == 2, proc.stderr)

    # --- fault injection end to end --------------------------------------
    # once:2 — the initial --db load is the first hit on snapshot.open, so
    # the *reload* is the one that fails. Single attempt (default): the
    # failure surfaces as a structured `unavailable`, no version is burned,
    # and the retried request succeeds.
    fault_batch = [
        '{"id":1,"op":"eval","query":"r* s"}',
        '{"id":2,"op":"admin","action":"reload","db":"%s"}' % db2,
        '{"id":3,"op":"admin","action":"reload","db":"%s"}' % db2,
        '{"id":4,"op":"eval","query":"r* s"}',
    ]
    proc, records = serve(binary, fault_batch, "--db", db1, "--threads", "1",
                          "--fault", "snapshot.open=once:2")
    check("faulted run exits 0", proc.returncode == 0, proc.stderr)
    ids = by_id(records)
    check("eval before the fault is ok", ids[1][0]["status"] == "ok")
    check("injected reload failure is `unavailable`",
          ids[2][0]["status"] == "error"
          and ids[2][0]["code"] == "unavailable", proc.stdout)
    check("injected failure names the fault",
          "injected" in ids[2][0].get("message", ""), proc.stdout)
    check("retried reload succeeds without a burned version",
          ids[3][0]["status"] == "ok"
          and ids[3][0]["snapshot_version"] == 2, proc.stdout)
    check("serving recovers after the fault", ids[4][0]["status"] == "ok")

    # With --reload-retries the same transient fault is absorbed inside the
    # one request; the counter delta records the retry.
    proc, records = serve(binary, [
        '{"id":1,"op":"admin","action":"reload","db":"%s"}' % db2,
    ], "--db", db1, "--threads", "1", "--reload-retries", "3",
        "--fault", "snapshot.open=once:2")
    check("reload retry absorbs a transient fault", proc.returncode == 0
          and by_id(records)[1][0]["status"] == "ok", proc.stdout)
    check("retry shows up in the counter delta",
          by_id(records)[1][0]["counters"]
          .get("service.snapshot.retries") == 1, proc.stdout)

    # RPQI_FAULT in the environment arms the same spec as the flag.
    proc, records = serve(binary, [
        '{"id":1,"op":"admin","action":"reload","db":"%s"}' % db2,
    ], "--db", db1, "--threads", "1",
        env={"RPQI_FAULT": "snapshot.open=once:2"})
    check("RPQI_FAULT env arms fault sites",
          by_id(records)[1][0].get("code") == "unavailable", proc.stdout)

    # A malformed spec is a usage error: exit 2 before serving starts.
    proc = subprocess.run(
        [binary, "serve", "--db", db1, "--fault", "snapshot.open=sometimes"],
        input="", capture_output=True, text=True, timeout=60)
    check("malformed --fault spec exits 2", proc.returncode == 2, proc.stderr)
    check("malformed --fault spec is diagnosed",
          "snapshot.open" in proc.stderr, proc.stderr)

    # --- ParseFlags regression (satellite): trailing flag ----------------
    proc = subprocess.run([binary, "eval", "--db"], capture_output=True,
                          text=True, timeout=60)
    check("trailing --db exits 2", proc.returncode == 2)
    check("trailing --db says 'requires a value'",
          "flag --db requires a value" in proc.stderr, proc.stderr)
    check("trailing flag is not 'unexpected argument'",
          "unexpected argument" not in proc.stderr, proc.stderr)

    # --- TCP: concurrent clients ------------------------------------------
    with TcpServer(binary, tmp, "--db", db1, "--threads", "2") as server:
        results = {}

        def client(idx):
            sock = server.connect()
            try:
                for i in range(10):
                    sock.sendall(
                        b'{"id":%d,"op":"eval","query":"r* s"}\n'
                        % (idx * 100 + i))
                results[idx] = read_tcp_lines(sock, 10)
            finally:
                sock.close()

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        check("tcp concurrent clients all fully answered",
              all(len(results.get(i, [])) == 10 for i in range(4)),
              str({i: len(v) for i, v in results.items()}))
        check("tcp responses stay on their own connection in order",
              all([r["id"] for r in results[i]]
                  == [i * 100 + j for j in range(10)] for i in range(4)))
        check("tcp responses are ok with answers",
              all(r["status"] == "ok" and "answers" in r
                  for v in results.values() for r in v))

        # Batched stream on one connection: adjacent lines in one send are
        # admitted as a batch sharing one snapshot pin; the amortization is
        # observable in the per-response counter deltas.
        sock = server.connect()
        sock.sendall(b"".join(
            b'{"id":%d,"op":"eval","query":"r* s"}\n' % i
            for i in range(200, 206)))
        batched = read_tcp_lines(sock, 6)
        sock.close()
        check("tcp batched stream fully answered", len(batched) == 6)
        pins_saved = sum(
            r.get("counters", {}).get("service.batch.snapshot_pins_saved", 0)
            for r in batched)
        check("tcp batch amortizes snapshot pins "
              "(service.batch.snapshot_pins_saved > 0)",
              pins_saved > 0, json.dumps(batched))

        # Protocol shutdown so __exit__ sees a clean exit.
        sock = server.connect()
        sock.sendall(b'{"id":"q","op":"admin","action":"shutdown"}\n')
        read_tcp_lines(sock, 1)
        sock.close()
    check("tcp server exits 0 after protocol shutdown",
          server.proc.returncode == 0, server.proc.stderr.read())

    # --- TCP: stdio differential ------------------------------------------
    # The same request stream through both transports must produce identical
    # responses modulo timing/counters — one protocol, two framings.
    diff_batch = [
        '{"id":1,"op":"eval","query":"r* s"}',
        '{"id":2,"op":"eval","query":"r* s"}',
        '{"id":3,"op":"rewrite","query":"r r","views":{"v1":"r"}}',
        '{"id":4,"op":"nope"}',
        'not json at all',
        '{"id":5,"op":"eval","query":"r*","max_states":1}',
    ]
    _, stdio_records = serve(binary, diff_batch, "--db", db1)
    with TcpServer(binary, tmp, "--db", db1) as server:
        sock = server.connect()
        tcp_records = []
        # One request at a time, awaiting each response: the differential
        # isolates framing, keeping batch-context effects out of the
        # comparison (batch parity is asserted separately above).
        for line in diff_batch:
            sock.sendall(line.encode() + b"\n")
            tcp_records += read_tcp_lines(sock, 1)
        sock.sendall(b'{"op":"admin","action":"shutdown"}\n')
        read_tcp_lines(sock, 1)
        sock.close()
    check("tcp differential: same number of responses",
          len(tcp_records) == len(stdio_records))
    # Compare order-independently: the protocol promises one response per
    # request, not a global ordering (stdio answers invalid lines inline
    # while queued work completes on workers).
    tcp_canon = sorted(json.dumps(strip_varying(r), sort_keys=True)
                       for r in tcp_records)
    stdio_canon = sorted(json.dumps(strip_varying(r), sort_keys=True)
                         for r in stdio_records)
    check("tcp differential: responses identical modulo timing/counters",
          tcp_canon == stdio_canon,
          json.dumps(tcp_canon) + " vs " + json.dumps(stdio_canon))

    # --- TCP: slow-writer partial-line framing ----------------------------
    with TcpServer(binary, tmp, "--db", db1) as server:
        sock = server.connect()
        request = b'{"id":77,"op":"eval","query":"r* s"}\n'
        for i in range(0, len(request), 5):
            sock.sendall(request[i:i + 5])
            time.sleep(0.02)
        framed = read_tcp_lines(sock, 1)
        check("tcp slow writer: fragmented request framed and answered",
              len(framed) == 1 and framed[0]["id"] == 77
              and framed[0]["status"] == "ok", json.dumps(framed))
        # Two requests coalesced into one segment both answered.
        sock.sendall(b'{"id":78,"op":"eval","query":"r"}\n'
                     b'{"id":79,"op":"eval","query":"r"}\n')
        pair = read_tcp_lines(sock, 2)
        check("tcp coalesced segment: both requests answered",
              sorted(r["id"] for r in pair) == [78, 79], json.dumps(pair))
        sock.sendall(b'{"op":"admin","action":"shutdown"}\n')
        read_tcp_lines(sock, 1)
        sock.close()

    # --- TCP: connection-limit shedding -----------------------------------
    with TcpServer(binary, tmp, "--db", db1, "--max-conns", "1") as server:
        first = server.connect()
        first.sendall(b'{"id":1,"op":"eval","query":"r"}\n')
        check("tcp shed: first connection serves",
              read_tcp_lines(first, 1)[0]["status"] == "ok")
        second = server.connect()
        shed = read_tcp_lines(second, 1)
        check("tcp shed: excess connection gets one `overloaded` line",
              len(shed) == 1 and shed[0].get("code") == "overloaded",
              json.dumps(shed))
        check("tcp shed: excess connection is then closed",
              second.recv(1024) == b"" if not shed else True)
        second.close()
        first.sendall(b'{"id":2,"op":"eval","query":"r"}\n')
        check("tcp shed: surviving connection unaffected",
              read_tcp_lines(first, 1)[0]["status"] == "ok")
        first.sendall(b'{"op":"admin","action":"shutdown"}\n')
        read_tcp_lines(first, 1)
        first.close()

    # --- TCP: oversized-line rejection ------------------------------------
    with TcpServer(binary, tmp, "--db", db1,
                   "--max-line-bytes", "128") as server:
        sock = server.connect()
        sock.sendall(b"x" * 400 + b"\n")
        oversized = read_tcp_lines(sock, 1)
        check("tcp oversized line is a structured invalid_request",
              len(oversized) == 1
              and oversized[0].get("code") == "invalid_request",
              json.dumps(oversized))
        sock.sendall(b'{"id":1,"op":"eval","query":"r"}\n')
        check("tcp connection survives an oversized line",
              read_tcp_lines(sock, 1)[0]["status"] == "ok")
        sock.sendall(b'{"op":"admin","action":"shutdown"}\n')
        read_tcp_lines(sock, 1)
        sock.close()

    # --- TCP: cross-connection shutdown drain (regression) ----------------
    # `admin shutdown` on connection B while connection A has an in-flight
    # request: A's response must still be delivered before the server exits.
    with TcpServer(binary, tmp, "--db", db1, "--threads", "2") as server:
        slow = server.connect()
        slow.sendall(b'{"id":"slow","op":"admin","action":"sleep",'
                     b'"ms":800}\n')
        time.sleep(0.2)  # the sleep is on a worker before shutdown arrives
        admin = server.connect()
        admin.sendall(b'{"id":"bye","op":"admin","action":"shutdown"}\n')
        bye = read_tcp_lines(admin, 1)
        check("tcp drain: shutdown acknowledged on its own connection",
              len(bye) == 1 and bye[0]["status"] == "ok", json.dumps(bye))
        drained = read_tcp_lines(slow, 1)
        check("tcp drain: in-flight request on another connection "
              "is answered, not truncated",
              len(drained) == 1 and drained[0]["status"] == "ok"
              and drained[0].get("slept_ms") == 800, json.dumps(drained))
        slow.close()
        admin.close()
    check("tcp drain: server exits 0 after the drain",
          server.proc.returncode == 0, server.proc.stderr.read())

    print(f"\n{len(FAILURES)} failure(s)")
    sys.exit(1 if FAILURES else 0)


if __name__ == "__main__":
    main()
