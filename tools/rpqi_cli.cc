// rpqi — command-line front end to the library.
//
// Subcommands:
//   eval        evaluate an RPQI over a graph database
//   rewrite     compute the maximal rewriting of a query w.r.t. views
//   satisfies   decide word satisfaction (Theorem 2)
//   contains    decide RPQI containment
//   answer      certain answers from view extensions (CDA or ODA)
//
// Graph databases use the text format of graphdb/io.h (one `from rel to` per
// line). View definitions are `name=expression` arguments; extensions are
// `name:obj1,obj2` pair arguments. Run with no arguments for usage.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "answer/cda.h"
#include "answer/oda.h"
#include "graphdb/eval.h"
#include "graphdb/io.h"
#include "graphdb/views.h"
#include "regex/parser.h"
#include "regex/printer.h"
#include "rewrite/eval.h"
#include "rewrite/exactness.h"
#include "rewrite/rewriter.h"
#include "rpq/compile.h"
#include "rpq/containment.h"
#include "rpq/satisfaction.h"

namespace rpqi {
namespace {

int Usage() {
  std::fprintf(stderr, R"USAGE(usage:
  rpqi eval --db FILE --query EXPR
  rpqi rewrite --query EXPR --view NAME=EXPR [--view NAME=EXPR ...]
               [--db FILE]           evaluate the rewriting over materialized views
  rpqi satisfies --query EXPR --word "r1 r2^- ..."
  rpqi contains --query EXPR --in EXPR
  rpqi answer --mode cda|oda --objects N --query EXPR
              --view 'NAME=EXPR;sound|complete|exact;a,b a,b ...'
              [--pair c,d]           all pairs when omitted

expression syntax: identifiers, juxtaposition = concatenation, |, *, +, ?,
^- (inverse), %%eps, %%empty. Example: "(hasSubmodule^-)* (containsVar | hasSubmodule)"
)USAGE");
  return 2;
}

std::map<std::string, std::vector<std::string>> ParseFlags(int argc,
                                                           char** argv,
                                                           int first) {
  std::map<std::string, std::vector<std::string>> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      flags[arg.substr(2)].push_back(argv[++i]);
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      std::exit(2);
    }
  }
  return flags;
}

std::string Single(const std::map<std::string, std::vector<std::string>>& flags,
                   const std::string& name) {
  auto it = flags.find(name);
  if (it == flags.end() || it->second.size() != 1) {
    std::fprintf(stderr, "missing or repeated --%s\n", name.c_str());
    std::exit(2);
  }
  return it->second[0];
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

RegexPtr ParseOrDie(const std::string& text) {
  StatusOr<RegexPtr> parsed = ParseRegex(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    std::exit(1);
  }
  return parsed.value();
}

int CmdEval(const std::map<std::string, std::vector<std::string>>& flags) {
  SignedAlphabet alphabet;
  StatusOr<GraphDb> db = LoadGraphText(ReadFileOrDie(Single(flags, "db")),
                                       &alphabet);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  RegexPtr expr = ParseOrDie(Single(flags, "query"));
  RegisterRelations({expr}, &alphabet);
  StatusOr<Nfa> query = CompileRegex(expr, alphabet);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  // The database was loaded before the query may have added relations; the
  // graph only stores relation ids, which remain valid under widening.
  for (const auto& [x, y] : EvalRpqiAllPairs(*db, *query)) {
    std::printf("%s\t%s\n", db->NodeName(x).c_str(), db->NodeName(y).c_str());
  }
  return 0;
}

int CmdRewrite(const std::map<std::string, std::vector<std::string>>& flags) {
  RegexPtr query_expr = ParseOrDie(Single(flags, "query"));
  std::vector<std::string> view_names;
  std::vector<RegexPtr> view_exprs;
  auto it = flags.find("view");
  if (it == flags.end() || it->second.empty()) return Usage();
  for (const std::string& spec : it->second) {
    size_t eq = spec.find('=');
    if (eq == std::string::npos) return Usage();
    view_names.push_back(spec.substr(0, eq));
    view_exprs.push_back(ParseOrDie(spec.substr(eq + 1)));
  }

  SignedAlphabet alphabet;
  RegisterRelations({query_expr}, &alphabet);
  RegisterRelations(view_exprs, &alphabet);
  Nfa query = MustCompileRegex(query_expr, alphabet);
  std::vector<Nfa> views;
  for (const RegexPtr& expr : view_exprs) {
    views.push_back(MustCompileRegex(expr, alphabet));
  }

  StatusOr<MaximalRewriting> rewriting = ComputeMaximalRewriting(query, views);
  if (!rewriting.ok()) {
    std::fprintf(stderr, "%s\n", rewriting.status().ToString().c_str());
    return 1;
  }
  if (rewriting->empty) {
    std::printf("rewriting: %%empty\n");
  } else {
    std::printf("rewriting: %s\n",
                RewritingToString(rewriting->dfa, view_names).c_str());
    std::printf("exact: %s\n",
                IsExactRewriting(query, views, rewriting->dfa) ? "yes" : "no");
  }
  std::printf("stats: |A1|=%d |A3|=%d A2-discovered=%lld |A2xA3|=%d |A4|=%d "
              "|R|=%d\n",
              rewriting->stats.a1_states, rewriting->stats.a3_states,
              static_cast<long long>(rewriting->stats.a2_states_discovered),
              rewriting->stats.product_states, rewriting->stats.a4_states,
              rewriting->stats.rewriting_states);

  if (flags.count("db")) {
    SignedAlphabet db_alphabet = alphabet;
    StatusOr<GraphDb> db =
        LoadGraphText(ReadFileOrDie(Single(flags, "db")), &db_alphabet);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    std::vector<std::vector<std::pair<int, int>>> extensions;
    for (const Nfa& view : views) {
      extensions.push_back(MaterializeView(*db, view));
    }
    std::printf("answers from views:\n");
    for (const auto& [x, y] :
         EvaluateRewriting(rewriting->dfa, db->NumNodes(), extensions)) {
      std::printf("%s\t%s\n", db->NodeName(x).c_str(),
                  db->NodeName(y).c_str());
    }
  }
  return 0;
}

int CmdSatisfies(const std::map<std::string, std::vector<std::string>>& flags) {
  RegexPtr query_expr = ParseOrDie(Single(flags, "query"));
  SignedAlphabet alphabet;
  RegisterRelations({query_expr}, &alphabet);

  // Parse the word: whitespace-separated atoms, each `name` or `name^-`.
  std::vector<int> word;
  std::istringstream stream(Single(flags, "word"));
  std::string token;
  while (stream >> token) {
    bool inverse = false;
    if (token.size() > 2 && token.substr(token.size() - 2) == "^-") {
      inverse = true;
      token = token.substr(0, token.size() - 2);
    }
    alphabet.AddRelation(token);
    word.push_back(alphabet.SymbolId(token, inverse));
  }
  Nfa query = MustCompileRegex(query_expr, alphabet);
  bool satisfied = WordSatisfies(query, word);
  std::printf("%s\n", satisfied ? "satisfies" : "does not satisfy");
  return satisfied ? 0 : 1;
}

int CmdContains(const std::map<std::string, std::vector<std::string>>& flags) {
  RegexPtr q1 = ParseOrDie(Single(flags, "query"));
  RegexPtr q2 = ParseOrDie(Single(flags, "in"));
  SignedAlphabet alphabet;
  RegisterRelations({q1, q2}, &alphabet);
  bool contained = RpqiContained(MustCompileRegex(q1, alphabet),
                                 MustCompileRegex(q2, alphabet));
  std::printf("%s\n", contained ? "contained" : "not contained");
  return contained ? 0 : 1;
}

int CmdAnswer(const std::map<std::string, std::vector<std::string>>& flags) {
  std::string mode = Single(flags, "mode");
  int num_objects = std::atoi(Single(flags, "objects").c_str());
  RegexPtr query_expr = ParseOrDie(Single(flags, "query"));

  struct ViewSpec {
    std::string name;
    RegexPtr expr;
    ViewAssumption assumption;
    std::vector<std::pair<int, int>> extension;
  };
  std::vector<ViewSpec> specs;
  auto it = flags.find("view");
  if (it == flags.end()) return Usage();
  for (const std::string& raw : it->second) {
    // NAME=EXPR;assumption;a,b a,b ...
    ViewSpec spec;
    size_t eq = raw.find('=');
    size_t semi1 = raw.find(';');
    size_t semi2 = raw.find(';', semi1 + 1);
    if (eq == std::string::npos || semi1 == std::string::npos ||
        semi2 == std::string::npos || eq > semi1) {
      return Usage();
    }
    spec.name = raw.substr(0, eq);
    spec.expr = ParseOrDie(raw.substr(eq + 1, semi1 - eq - 1));
    std::string assumption = raw.substr(semi1 + 1, semi2 - semi1 - 1);
    if (assumption == "sound") {
      spec.assumption = ViewAssumption::kSound;
    } else if (assumption == "complete") {
      spec.assumption = ViewAssumption::kComplete;
    } else if (assumption == "exact") {
      spec.assumption = ViewAssumption::kExact;
    } else {
      return Usage();
    }
    std::istringstream pairs(raw.substr(semi2 + 1));
    std::string pair_text;
    while (pairs >> pair_text) {
      size_t comma = pair_text.find(',');
      if (comma == std::string::npos) return Usage();
      spec.extension.push_back(
          {std::atoi(pair_text.substr(0, comma).c_str()),
           std::atoi(pair_text.substr(comma + 1).c_str())});
    }
    specs.push_back(std::move(spec));
  }

  SignedAlphabet alphabet;
  RegisterRelations({query_expr}, &alphabet);
  for (const ViewSpec& spec : specs) RegisterRelations({spec.expr}, &alphabet);

  AnsweringInstance instance;
  instance.num_objects = num_objects;
  instance.query = MustCompileRegex(query_expr, alphabet);
  for (const ViewSpec& spec : specs) {
    View view;
    view.definition = MustCompileRegex(spec.expr, alphabet);
    view.extension = spec.extension;
    view.assumption = spec.assumption;
    instance.views.push_back(std::move(view));
  }

  std::vector<std::pair<int, int>> probes;
  if (flags.count("pair")) {
    for (const std::string& pair_text : flags.at("pair")) {
      size_t comma = pair_text.find(',');
      if (comma == std::string::npos) return Usage();
      probes.push_back({std::atoi(pair_text.substr(0, comma).c_str()),
                        std::atoi(pair_text.substr(comma + 1).c_str())});
    }
  } else {
    for (int c = 0; c < num_objects; ++c) {
      for (int d = 0; d < num_objects; ++d) probes.push_back({c, d});
    }
  }

  for (const auto& [c, d] : probes) {
    bool certain = false;
    if (mode == "cda") {
      StatusOr<CdaResult> result = CertainAnswerCda(instance, c, d);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      certain = result->certain;
    } else if (mode == "oda") {
      StatusOr<OdaResult> result = CertainAnswerOda(instance, c, d);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      certain = result->certain;
    } else {
      return Usage();
    }
    std::printf("(%d,%d): %s\n", c, d, certain ? "certain" : "not certain");
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (command == "eval") return CmdEval(flags);
  if (command == "rewrite") return CmdRewrite(flags);
  if (command == "satisfies") return CmdSatisfies(flags);
  if (command == "contains") return CmdContains(flags);
  if (command == "answer") return CmdAnswer(flags);
  return Usage();
}

}  // namespace
}  // namespace rpqi

int main(int argc, char** argv) { return rpqi::Main(argc, argv); }
