// rpqi — command-line front end to the library.
//
// Subcommands:
//   eval        evaluate an RPQI over a graph database
//   rewrite     compute the maximal rewriting of a query w.r.t. views
//   satisfies   decide word satisfaction (Theorem 2)
//   contains    decide RPQI containment
//   answer      certain answers from view extensions (CDA or ODA)
//   validate    structural validation of queries / views / databases
//   compact     convert a graph text <-> binary columnar snapshot
//   serve       long-lived NDJSON query server (src/service/server.h),
//               over stdio or TCP (src/net/tcp_server.h)
//   loadgen     TCP saturation client replaying src/workload scenarios
//               against a serve --transport tcp instance
//
// Graph databases use the text format of graphdb/io.h (one `from rel to` per
// line). View definitions are `name=expression` arguments; extensions are
// `name:obj1,obj2` pair arguments. Run with no arguments for usage.
//
// Exit codes (see ExitCodeForStatus in base/status.h):
//   0  success (positive decision for satisfies/contains; clean drain for
//      serve — per-request failures are in-band error responses, not exits)
//   1  negative decision (does not satisfy / not contained)
//   2  invalid input or usage, including unusable --trace-out/--metrics-out
//   3  resource limit (state quota) exhausted
//   4  wall-clock deadline exceeded
//   5  execution cancelled

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/validate.h"
#include "answer/cda.h"
#include "answer/oda.h"
#include "base/budget.h"
#include "base/flags.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "fault/fault.h"
#include "graphdb/columnar.h"
#include "graphdb/eval.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "graphdb/io.h"
#include "graphdb/views.h"
#include "net/loadgen.h"
#include "net/tcp_server.h"
#include "regex/parser.h"
#include "regex/printer.h"
#include "rewrite/eval.h"
#include "rewrite/exactness.h"
#include "rewrite/rewriter.h"
#include "rpq/compile.h"
#include "rpq/containment.h"
#include "rpq/satisfaction.h"
#include "service/server.h"
#include "service/snapshot.h"

namespace rpqi {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitNegative = 1;
constexpr int kExitInvalidInput = 2;

int Usage() {
  std::fprintf(stderr, R"USAGE(usage:
  rpqi eval --db FILE --query EXPR
  rpqi rewrite --query EXPR --view NAME=EXPR [--view NAME=EXPR ...]
               [--db FILE]           evaluate the rewriting over materialized views
  rpqi satisfies --query EXPR --word "r1 r2^- ..."
  rpqi contains --query EXPR --in EXPR
  rpqi answer --mode cda|oda --objects N --query EXPR
              --view 'NAME=EXPR;sound|complete|exact;a,b a,b ...'
              [--pair c,d]           all pairs when omitted
  rpqi compact --in FILE --out FILE [--validate 1]
              convert a graph between the text format and the binary columnar
              snapshot ("RPQICOL1", DESIGN.md §15); the direction follows the
              input's magic bytes. --validate reloads the output and checks
              round-trip equivalence and fingerprint stability
  rpqi validate [--query EXPR] [--view NAME=EXPR ...] [--db FILE]
              check each artifact against the structural invariants of
              src/analysis; prints one `ok` line per artifact, exit 2 with a
              diagnostic naming the offending id otherwise
  rpqi serve [--db FILE] [--queue-depth N] [--plan-cache-mb MB]
             [--plan-cache-dir DIR]
             [--default-timeout-ms MS] [--max-timeout-ms MS]
             [--default-max-states N] [--max-states-cap N]
             [--breaker-failures K] [--breaker-cooldown-ms MS]
             [--reload-retries N] [--reload-backoff-ms MS]
             [--transport stdio|tcp] [--host ADDR] [--port N]
             [--port-file FILE] [--max-conns N] [--max-batch N]
             [--max-line-bytes N]
             [--namespace NAME=DB[:VIEWS[:MAX_INFLIGHT]] ...]
              long-lived server: NDJSON requests in, one response line per
              request out (protocol reference in README); worker count comes
              from the global --threads flag; exits 0 after a clean drain on
              EOF or {"op":"admin","action":"shutdown"};
              --plan-cache-dir persists compiled eval plans ("RPQIPLAN1")
              to an existing DIR so a restarted server answers repeated
              queries at warm-cache latency.
              --transport tcp serves the same protocol over a socket
              (--port 0 = ephemeral; the bound port goes to --port-file and
              stderr); adjacent lines in one read execute as a batch sharing
              snapshot pins and plan lookups; past --max-conns connections new
              ones are shed with one `overloaded` line. --namespace mounts a
              named snapshot with an optional view file ('NAME=EXPR' lines)
              and admission quota; requests select it with "ns":"NAME"
  rpqi loadgen --port N [--host ADDR] [--qps N] [--duration-ms MS]
               [--connections N] [--mode closed|open]
               [--scenario modules|hard] [--seed N]
               [--emit-db FILE] [--out FILE]
              replay a src/workload scenario over TCP against `rpqi serve
              --transport tcp` and report client-side latency percentiles
              (p50/p95/p99), achieved QPS, and per-code error counts as one
              JSON object on stdout (also to --out FILE). closed mode keeps
              one request in flight per connection; open mode sends on an
              absolute schedule so server queueing shows up in the measured
              latency. --emit-db writes the scenario's graph (start the
              server on it); with --emit-db and no --port it only writes the
              graph and exits

global flags (any subcommand):
  --timeout-ms MS     wall-clock deadline; `rewrite` degrades to a certified
                      partial rewriting, other commands fail with exit code 4
  --max-states N      state/node quota shared by all pipeline stages (exit 3)
  --threads N         worker threads for the parallel subset-construction /
                      product frontiers (default 1 = serial; results are
                      bit-identical either way)
  --trace-out FILE    write one NDJSON span record per pipeline stage (see
                      DESIGN.md, "Observability"); unusable FILE is exit 2
  --metrics-out FILE  write the process-wide counter/gauge/histogram snapshot
                      as NDJSON when the command finishes; unusable FILE is
                      exit 2
  --fault SPEC        arm deterministic fault injection (testing only):
                      comma-separated site=policy entries, policy one of
                      every:N | once[:N] | prob:P[:SEED], optionally ;ms=N
                      for stall sites; also read from the RPQI_FAULT
                      environment variable (flag entries append to it);
                      a malformed SPEC is exit 2 (see DESIGN.md §13)

expression syntax: identifiers, juxtaposition = concatenation, |, *, +, ?,
^- (inverse), %%eps, %%empty. Example: "(hasSubmodule^-)* (containsVar | hasSubmodule)"
)USAGE");
  return kExitInvalidInput;
}

// FlagMap / ParseFlags / SingleFlag / ParseInt64 live in base/flags.h, shared
// with the other front ends.

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// NodeName returns a string_view (possibly a slice of an mmapped blob, not
/// NUL-terminated), so answer printing goes through %.*s.
void PrintAnswerPair(std::string_view x, std::string_view y) {
  std::printf("%.*s\t%.*s\n", static_cast<int>(x.size()), x.data(),
              static_cast<int>(y.size()), y.data());
}

StatusOr<RegexPtr> ParseExpr(const std::string& text) {
  StatusOr<RegexPtr> parsed = ParseRegex(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument("in expression '" + text +
                                   "': " + parsed.status().message());
  }
  return parsed;
}

/// The optional execution budget built from --timeout-ms / --max-states.
/// Owns the Budget so `get()` stays valid for the command's lifetime.
struct RunBudget {
  std::optional<Budget> budget;
  Budget* get() { return budget.has_value() ? &budget.value() : nullptr; }
};

StatusOr<RunBudget> BudgetFromFlags(const FlagMap& flags) {
  RunBudget run;
  if (!flags.count("timeout-ms") && !flags.count("max-states")) return run;
  Budget budget;
  if (flags.count("timeout-ms")) {
    RPQI_ASSIGN_OR_RETURN(std::string text, SingleFlag(flags, "timeout-ms"));
    RPQI_ASSIGN_OR_RETURN(
        int64_t ms, ParseInt64(text, "--timeout-ms", 1, int64_t{1} << 40));
    budget.set_deadline(budget.start_time() + std::chrono::milliseconds(ms));
  }
  if (flags.count("max-states")) {
    RPQI_ASSIGN_OR_RETURN(std::string text, SingleFlag(flags, "max-states"));
    RPQI_ASSIGN_OR_RETURN(
        int64_t n, ParseInt64(text, "--max-states", 1, int64_t{1} << 50));
    budget.set_max_states(n);
  }
  run.budget = budget;
  return run;
}

StatusOr<std::pair<int, int>> ParsePair(const std::string& text) {
  size_t comma = text.find(',');
  if (comma == std::string::npos) {
    return Status::InvalidArgument("pair '" + text + "': expected 'a,b'");
  }
  RPQI_ASSIGN_OR_RETURN(
      int64_t a, ParseInt64(text.substr(0, comma), "pair '" + text + "'", 0,
                            int64_t{1} << 30));
  RPQI_ASSIGN_OR_RETURN(
      int64_t b, ParseInt64(text.substr(comma + 1), "pair '" + text + "'", 0,
                            int64_t{1} << 30));
  return std::pair<int, int>{static_cast<int>(a), static_cast<int>(b)};
}

StatusOr<int> CmdEval(const FlagMap& flags) {
  RPQI_ASSIGN_OR_RETURN(RunBudget run, BudgetFromFlags(flags));
  RPQI_ASSIGN_OR_RETURN(std::string db_path, SingleFlag(flags, "db"));
  // Same load-and-validate entry point the serving layer uses.
  RPQI_ASSIGN_OR_RETURN(std::shared_ptr<const service::GraphSnapshot> snapshot,
                        service::LoadGraphSnapshot(db_path));
  RPQI_ASSIGN_OR_RETURN(std::string query_text, SingleFlag(flags, "query"));
  RPQI_ASSIGN_OR_RETURN(RegexPtr expr, ParseExpr(query_text));
  SignedAlphabet alphabet = snapshot->alphabet;
  RegisterRelations({expr}, &alphabet);
  RPQI_ASSIGN_OR_RETURN(Nfa query, CompileRegex(expr, alphabet));
  // The database was loaded before the query may have added relations; the
  // graph only stores relation ids, which remain valid under widening.
  RPQI_ASSIGN_OR_RETURN(
      auto pairs, EvalRpqiAllPairsWithBudget(snapshot->db, query, run.get()));
  for (const auto& [x, y] : pairs) {
    PrintAnswerPair(snapshot->db.NodeName(x), snapshot->db.NodeName(y));
  }
  return kExitOk;
}

StatusOr<int> CmdRewrite(const FlagMap& flags) {
  RPQI_ASSIGN_OR_RETURN(RunBudget run, BudgetFromFlags(flags));
  RPQI_ASSIGN_OR_RETURN(std::string query_text, SingleFlag(flags, "query"));
  RPQI_ASSIGN_OR_RETURN(RegexPtr query_expr, ParseExpr(query_text));
  std::vector<std::string> view_names;
  std::vector<RegexPtr> view_exprs;
  auto it = flags.find("view");
  if (it == flags.end() || it->second.empty()) return Usage();
  for (const std::string& spec : it->second) {
    size_t eq = spec.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("view '" + spec +
                                     "': expected NAME=EXPR");
    }
    view_names.push_back(spec.substr(0, eq));
    RPQI_ASSIGN_OR_RETURN(RegexPtr expr, ParseExpr(spec.substr(eq + 1)));
    view_exprs.push_back(std::move(expr));
  }

  SignedAlphabet alphabet;
  RegisterRelations({query_expr}, &alphabet);
  RegisterRelations(view_exprs, &alphabet);
  Nfa query = MustCompileRegex(query_expr, alphabet);
  std::vector<Nfa> views;
  for (const RegexPtr& expr : view_exprs) {
    views.push_back(MustCompileRegex(expr, alphabet));
  }

  RewritingOptions options;
  options.budget = run.get();
  options.threads = GlobalThreadCount();
  if (run.budget.has_value()) {
    options.max_subset_states = run.budget->max_states();
    options.max_product_states = run.budget->max_states();
  }
  RPQI_ASSIGN_OR_RETURN(MaximalRewriting rewriting,
                        ComputeMaximalRewriting(query, views, options));
  if (rewriting.empty) {
    std::printf("rewriting: %%empty\n");
  } else {
    std::printf("rewriting: %s\n",
                RewritingToString(rewriting.dfa, view_names).c_str());
    if (rewriting.exhaustive) {
      std::printf("exact: %s\n",
                  IsExactRewriting(query, views, rewriting.dfa) ? "yes" : "no");
    }
  }
  if (!rewriting.exhaustive) {
    std::printf(
        "partial: certified under-approximation, all view words up to length "
        "%d examined (%lld certified checks); cause: %s\n",
        rewriting.partial_word_length,
        static_cast<long long>(rewriting.stats.partial_words_checked),
        rewriting.degradation_cause.ToString().c_str());
  }
  std::printf("stats: |A1|=%d |A3|=%d A2-discovered=%lld |A2xA3|=%d |A4|=%d "
              "|R|=%d\n",
              rewriting.stats.a1_states, rewriting.stats.a3_states,
              static_cast<long long>(rewriting.stats.a2_states_discovered),
              rewriting.stats.product_states, rewriting.stats.a4_states,
              rewriting.stats.rewriting_states);

  if (flags.count("db")) {
    RPQI_ASSIGN_OR_RETURN(std::string db_path, SingleFlag(flags, "db"));
    // Same load-and-validate entry point the serving layer uses; passing the
    // query+views alphabet as the base keeps relation ids aligned with the
    // automata compiled above.
    RPQI_ASSIGN_OR_RETURN(
        std::shared_ptr<const service::GraphSnapshot> snapshot,
        service::LoadGraphSnapshot(db_path, alphabet));
    const GraphDb& db = snapshot->db;
    std::vector<std::vector<std::pair<int, int>>> extensions;
    for (const Nfa& view : views) {
      extensions.push_back(MaterializeView(db, view));
    }
    if (rewriting.exhaustive) {
      std::printf("answers from views:\n");
      for (const auto& [x, y] :
           EvaluateRewriting(rewriting.dfa, db.NumNodes(), extensions)) {
        PrintAnswerPair(db.NodeName(x), db.NodeName(y));
      }
    } else {
      // Degraded answering: the materialized rewriting is incomplete, so
      // certify view words directly against the view graph instead. Runs
      // under a grace budget so the overall wall clock stays within ~2x the
      // requested deadline.
      std::optional<Budget> grace;
      DirectViewAnswersOptions direct_options;
      if (run.budget.has_value()) {
        grace = run.budget->GraceBudget(2.0);
        direct_options.budget = &grace.value();
      }
      RPQI_ASSIGN_OR_RETURN(
          DirectViewAnswersResult direct,
          DirectViewAnswers(query, views, db.NumNodes(), extensions,
                            direct_options));
      std::printf("answers from views (direct certification%s):\n",
                  direct.exhaustive_to_length ? "" : ", truncated");
      for (const auto& [x, y] : direct.answers) {
        PrintAnswerPair(db.NodeName(x), db.NodeName(y));
      }
    }
  }
  return kExitOk;
}

StatusOr<int> CmdSatisfies(const FlagMap& flags) {
  RPQI_ASSIGN_OR_RETURN(std::string query_text, SingleFlag(flags, "query"));
  RPQI_ASSIGN_OR_RETURN(RegexPtr query_expr, ParseExpr(query_text));
  SignedAlphabet alphabet;
  RegisterRelations({query_expr}, &alphabet);

  // Parse the word: whitespace-separated atoms, each `name` or `name^-`.
  std::vector<int> word;
  RPQI_ASSIGN_OR_RETURN(std::string word_text, SingleFlag(flags, "word"));
  std::istringstream stream(word_text);
  std::string token;
  while (stream >> token) {
    bool inverse = false;
    if (token.size() > 2 && token.substr(token.size() - 2) == "^-") {
      inverse = true;
      token = token.substr(0, token.size() - 2);
    }
    alphabet.AddRelation(token);
    word.push_back(alphabet.SymbolId(token, inverse));
  }
  Nfa query = MustCompileRegex(query_expr, alphabet);
  bool satisfied = WordSatisfies(query, word);
  std::printf("%s\n", satisfied ? "satisfies" : "does not satisfy");
  return satisfied ? kExitOk : kExitNegative;
}

StatusOr<int> CmdContains(const FlagMap& flags) {
  RPQI_ASSIGN_OR_RETURN(RunBudget run, BudgetFromFlags(flags));
  RPQI_ASSIGN_OR_RETURN(std::string q1_text, SingleFlag(flags, "query"));
  RPQI_ASSIGN_OR_RETURN(std::string q2_text, SingleFlag(flags, "in"));
  RPQI_ASSIGN_OR_RETURN(RegexPtr q1, ParseExpr(q1_text));
  RPQI_ASSIGN_OR_RETURN(RegexPtr q2, ParseExpr(q2_text));
  SignedAlphabet alphabet;
  RegisterRelations({q1, q2}, &alphabet);
  RPQI_ASSIGN_OR_RETURN(
      bool contained,
      RpqiContainedWithBudget(MustCompileRegex(q1, alphabet),
                              MustCompileRegex(q2, alphabet), run.get()));
  std::printf("%s\n", contained ? "contained" : "not contained");
  return contained ? kExitOk : kExitNegative;
}

StatusOr<int> CmdAnswer(const FlagMap& flags) {
  RPQI_ASSIGN_OR_RETURN(RunBudget run, BudgetFromFlags(flags));
  RPQI_ASSIGN_OR_RETURN(std::string mode, SingleFlag(flags, "mode"));
  if (mode != "cda" && mode != "oda") {
    return Status::InvalidArgument("--mode must be 'cda' or 'oda', got '" +
                                   mode + "'");
  }
  RPQI_ASSIGN_OR_RETURN(std::string objects_text,
                        SingleFlag(flags, "objects"));
  RPQI_ASSIGN_OR_RETURN(int64_t num_objects_64,
                        ParseInt64(objects_text, "--objects", 1, 1 << 20));
  int num_objects = static_cast<int>(num_objects_64);
  RPQI_ASSIGN_OR_RETURN(std::string query_text, SingleFlag(flags, "query"));
  RPQI_ASSIGN_OR_RETURN(RegexPtr query_expr, ParseExpr(query_text));

  struct ViewSpec {
    std::string name;
    RegexPtr expr;
    ViewAssumption assumption;
    std::vector<std::pair<int, int>> extension;
  };
  std::vector<ViewSpec> specs;
  auto it = flags.find("view");
  if (it == flags.end()) return Usage();
  for (const std::string& raw : it->second) {
    // NAME=EXPR;assumption;a,b a,b ...
    ViewSpec spec;
    size_t eq = raw.find('=');
    size_t semi1 = raw.find(';');
    size_t semi2 = raw.find(';', semi1 + 1);
    if (eq == std::string::npos || semi1 == std::string::npos ||
        semi2 == std::string::npos || eq > semi1) {
      return Status::InvalidArgument(
          "view '" + raw + "': expected 'NAME=EXPR;assumption;a,b ...'");
    }
    spec.name = raw.substr(0, eq);
    RPQI_ASSIGN_OR_RETURN(spec.expr,
                          ParseExpr(raw.substr(eq + 1, semi1 - eq - 1)));
    std::string assumption = raw.substr(semi1 + 1, semi2 - semi1 - 1);
    if (assumption == "sound") {
      spec.assumption = ViewAssumption::kSound;
    } else if (assumption == "complete") {
      spec.assumption = ViewAssumption::kComplete;
    } else if (assumption == "exact") {
      spec.assumption = ViewAssumption::kExact;
    } else {
      return Status::InvalidArgument("view '" + raw +
                                     "': unknown assumption '" + assumption +
                                     "'");
    }
    std::istringstream pairs(raw.substr(semi2 + 1));
    std::string pair_text;
    while (pairs >> pair_text) {
      RPQI_ASSIGN_OR_RETURN(auto pair, ParsePair(pair_text));
      if (pair.first >= num_objects || pair.second >= num_objects) {
        return Status::InvalidArgument("view '" + spec.name + "': pair '" +
                                       pair_text + "' names an object >= " +
                                       std::to_string(num_objects));
      }
      spec.extension.push_back(pair);
    }
    specs.push_back(std::move(spec));
  }

  SignedAlphabet alphabet;
  RegisterRelations({query_expr}, &alphabet);
  for (const ViewSpec& spec : specs) RegisterRelations({spec.expr}, &alphabet);

  AnsweringInstance instance;
  instance.num_objects = num_objects;
  instance.query = MustCompileRegex(query_expr, alphabet);
  for (const ViewSpec& spec : specs) {
    View view;
    view.definition = MustCompileRegex(spec.expr, alphabet);
    view.extension = spec.extension;
    view.assumption = spec.assumption;
    instance.views.push_back(std::move(view));
  }

  std::vector<std::pair<int, int>> probes;
  if (flags.count("pair")) {
    for (const std::string& pair_text : flags.at("pair")) {
      RPQI_ASSIGN_OR_RETURN(auto pair, ParsePair(pair_text));
      if (pair.first >= num_objects || pair.second >= num_objects) {
        return Status::InvalidArgument("--pair '" + pair_text +
                                       "' names an object >= " +
                                       std::to_string(num_objects));
      }
      probes.push_back(pair);
    }
  } else {
    for (int c = 0; c < num_objects; ++c) {
      for (int d = 0; d < num_objects; ++d) probes.push_back({c, d});
    }
  }

  for (const auto& [c, d] : probes) {
    bool certain = false;
    if (mode == "cda") {
      CdaOptions options;
      options.budget = run.get();
      RPQI_ASSIGN_OR_RETURN(CdaResult result,
                            CertainAnswerCda(instance, c, d, options));
      certain = result.certain;
    } else {
      OdaOptions options;
      options.budget = run.get();
      RPQI_ASSIGN_OR_RETURN(OdaResult result,
                            CertainAnswerOda(instance, c, d, options));
      certain = result.certain;
    }
    std::printf("(%d,%d): %s\n", c, d, certain ? "certain" : "not certain");
  }
  return kExitOk;
}

StatusOr<int> CmdValidate(const FlagMap& flags) {
  if (!flags.count("query") && !flags.count("view") && !flags.count("db")) {
    return Usage();
  }
  SignedAlphabet alphabet;

  // Parse everything first so the shared Σ± covers all artifacts; relation
  // ids registered later would otherwise make earlier automata look narrow.
  RegexPtr query_expr;
  if (flags.count("query")) {
    RPQI_ASSIGN_OR_RETURN(std::string query_text, SingleFlag(flags, "query"));
    RPQI_ASSIGN_OR_RETURN(query_expr, ParseExpr(query_text));
    RPQI_RETURN_IF_ERROR(ValidateRegexAst(query_expr));
    RegisterRelations({query_expr}, &alphabet);
  }
  std::vector<std::string> view_names;
  std::vector<RegexPtr> view_exprs;
  if (flags.count("view")) {
    for (const std::string& spec : flags.at("view")) {
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("view '" + spec +
                                       "': expected NAME=EXPR");
      }
      view_names.push_back(spec.substr(0, eq));
      RPQI_ASSIGN_OR_RETURN(RegexPtr expr, ParseExpr(spec.substr(eq + 1)));
      RPQI_RETURN_IF_ERROR(ValidateRegexAst(expr));
      view_exprs.push_back(std::move(expr));
    }
    RPQI_RETURN_IF_ERROR(ValidateViewNames(view_names, view_names));
    RegisterRelations(view_exprs, &alphabet);
  }

  NfaValidateOptions nfa_options;
  nfa_options.require_initial_state = true;
  nfa_options.require_signed_alphabet = true;
  nfa_options.expected_num_symbols = alphabet.NumSymbols();

  if (query_expr != nullptr) {
    RPQI_ASSIGN_OR_RETURN(Nfa query, CompileRegex(query_expr, alphabet));
    RPQI_RETURN_IF_ERROR(ValidateNfa(query, nfa_options));
    std::printf("query: ok (%d states, %d transitions, %d symbols)\n",
                query.NumStates(), query.NumTransitions(),
                query.num_symbols());
  }
  std::vector<Nfa> views;
  for (size_t i = 0; i < view_exprs.size(); ++i) {
    RPQI_ASSIGN_OR_RETURN(Nfa view, CompileRegex(view_exprs[i], alphabet));
    Status status = ValidateNfa(view, nfa_options);
    if (!status.ok()) {
      return Status::InvalidArgument("view '" + view_names[i] +
                                     "': " + status.message());
    }
    std::printf("view %s: ok (%d states, %d transitions, %d symbols)\n",
                view_names[i].c_str(), view.NumStates(), view.NumTransitions(),
                view.num_symbols());
    views.push_back(std::move(view));
  }
  if (!views.empty()) {
    RPQI_RETURN_IF_ERROR(
        ValidateViewExtensions(alphabet.NumSymbols(), views, {}, 0));
  }

  if (flags.count("db")) {
    RPQI_ASSIGN_OR_RETURN(std::string db_path, SingleFlag(flags, "db"));
    RPQI_ASSIGN_OR_RETURN(std::string db_text, ReadFile(db_path));
    RPQI_ASSIGN_OR_RETURN(GraphDb db, LoadGraphText(db_text, &alphabet));
    RPQI_RETURN_IF_ERROR(ValidateGraphDb(db, alphabet.NumRelations()));
    std::printf("db %s: ok (%d nodes, %lld edges, %d relations)\n",
                db_path.c_str(), db.NumNodes(),
                static_cast<long long>(db.NumEdges()),
                alphabet.NumRelations());
  }
  return kExitOk;
}

/// `rpqi compact --in FILE --out FILE [--validate]` — converts between the
/// text format and the binary columnar snapshot format, sniffing the input's
/// magic bytes to pick the direction. Text -> binary stores the text's
/// content fingerprint in the header, so serving the compacted file keeps the
/// plan cache warm across the format switch. --validate reloads the output
/// and checks semantic round-trip equality (same node-name set, same edge
/// multiset) plus fingerprint agreement.
StatusOr<int> CmdCompact(const FlagMap& flags) {
  RPQI_ASSIGN_OR_RETURN(std::string in_path, SingleFlag(flags, "in"));
  RPQI_ASSIGN_OR_RETURN(std::string out_path, SingleFlag(flags, "out"));
  const bool validate = flags.count("validate") > 0;

  SignedAlphabet alphabet;
  GraphDb db;
  uint64_t fingerprint = 0;
  bool input_is_binary = false;
  {
    RPQI_ASSIGN_OR_RETURN(std::string bytes, ReadFile(in_path));
    if (IsColumnarSnapshot(bytes)) {
      input_is_binary = true;
      RPQI_ASSIGN_OR_RETURN(ColumnarParts parts, OpenColumnarFile(in_path));
      fingerprint = parts.fingerprint;
      std::vector<int> relation_ids;
      relation_ids.reserve(parts.num_relations);
      for (int r = 0; r < parts.num_relations; ++r) {
        relation_ids.push_back(
            alphabet.AddRelation(std::string(parts.RelationName(r))));
      }
      db = MakeColumnarGraphDb(parts, relation_ids, alphabet.NumRelations());
    } else {
      GraphTextLimits limits;
      limits.source_name = in_path;
      RPQI_ASSIGN_OR_RETURN(db, LoadGraphText(bytes, &alphabet, limits));
      db.BuildLabelIndex(alphabet.NumRelations());
      fingerprint = FingerprintGraphText(bytes);
    }
    RPQI_RETURN_IF_ERROR(ValidateGraphDb(db, alphabet.NumRelations()));
  }

  if (input_is_binary) {
    // binary -> text: decompact for inspection / re-import.
    std::string text = SaveGraphText(db, alphabet);
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::InvalidArgument("cannot open '" + out_path +
                                     "' for writing");
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) {
      return Status::InvalidArgument("error writing '" + out_path + "'");
    }
  } else {
    RPQI_RETURN_IF_ERROR(
        WriteColumnarFile(out_path, db, alphabet, fingerprint));
  }

  if (validate) {
    SignedAlphabet reloaded_alphabet;
    GraphDb reloaded;
    uint64_t reloaded_fingerprint = 0;
    if (input_is_binary) {
      RPQI_ASSIGN_OR_RETURN(std::string text, ReadFile(out_path));
      GraphTextLimits limits;
      limits.source_name = out_path;
      RPQI_ASSIGN_OR_RETURN(reloaded,
                            LoadGraphText(text, &reloaded_alphabet, limits));
      // Text has no fingerprint header; recompute from the emitted bytes the
      // way the snapshot loader would.
      reloaded_fingerprint = fingerprint;  // text direction: nothing to compare
    } else {
      RPQI_ASSIGN_OR_RETURN(ColumnarParts parts, OpenColumnarFile(out_path));
      reloaded_fingerprint = parts.fingerprint;
      std::vector<int> relation_ids;
      relation_ids.reserve(parts.num_relations);
      for (int r = 0; r < parts.num_relations; ++r) {
        relation_ids.push_back(reloaded_alphabet.AddRelation(
            std::string(parts.RelationName(r))));
      }
      reloaded = MakeColumnarGraphDb(parts, relation_ids,
                                     reloaded_alphabet.NumRelations());
    }
    RPQI_RETURN_IF_ERROR(
        ValidateGraphDb(reloaded, reloaded_alphabet.NumRelations()));
    RPQI_RETURN_IF_ERROR(
        CheckGraphEquivalence(db, alphabet, reloaded, reloaded_alphabet));
    if (reloaded_fingerprint != fingerprint) {
      return Status::InvalidArgument(
          "round-trip mismatch: fingerprint " +
          std::to_string(reloaded_fingerprint) + " after reload, expected " +
          std::to_string(fingerprint));
    }
    std::printf("validate: ok (round-trip equivalent, fingerprint stable)\n");
  }
  std::printf("compact: %s -> %s (%d nodes, %lld edges, %d relations, %s)\n",
              in_path.c_str(), out_path.c_str(), db.NumNodes(),
              static_cast<long long>(db.NumEdges()), alphabet.NumRelations(),
              input_is_binary ? "binary -> text" : "text -> binary");
  return kExitOk;
}

StatusOr<int> CmdServe(const FlagMap& flags) {
  service::ServerOptions options;
  options.threads = GlobalThreadCount();
  if (flags.count("db")) {
    RPQI_ASSIGN_OR_RETURN(options.initial_db_path, SingleFlag(flags, "db"));
  }
  if (flags.count("plan-cache-dir")) {
    RPQI_ASSIGN_OR_RETURN(options.plan_cache_dir,
                          SingleFlag(flags, "plan-cache-dir"));
  }
  struct IntFlag {
    const char* name;
    int64_t min;
    int64_t max;
    int64_t* target;
  };
  int64_t queue_depth = options.admission.queue_depth;
  int64_t plan_cache_mb = options.plan_cache_bytes >> 20;
  int64_t breaker_failures = options.breaker_failure_threshold;
  int64_t reload_retries = options.reload_retry.attempts;
  const IntFlag int_flags[] = {
      {"queue-depth", 1, int64_t{1} << 16, &queue_depth},
      {"plan-cache-mb", 0, int64_t{1} << 16, &plan_cache_mb},
      {"default-timeout-ms", 1, int64_t{1} << 40,
       &options.admission.default_timeout_ms},
      {"max-timeout-ms", 1, int64_t{1} << 40,
       &options.admission.max_timeout_ms},
      {"default-max-states", 1, int64_t{1} << 50,
       &options.admission.default_max_states},
      {"max-states-cap", 1, int64_t{1} << 50,
       &options.admission.max_states_cap},
      {"breaker-failures", 0, int64_t{1} << 20, &breaker_failures},
      {"breaker-cooldown-ms", 1, int64_t{1} << 40,
       &options.breaker_cooldown_ms},
      {"reload-retries", 1, 100, &reload_retries},
      {"reload-backoff-ms", 0, int64_t{1} << 20,
       &options.reload_retry.backoff_ms},
  };
  for (const IntFlag& spec : int_flags) {
    if (!flags.count(spec.name)) continue;
    RPQI_ASSIGN_OR_RETURN(std::string text, SingleFlag(flags, spec.name));
    RPQI_ASSIGN_OR_RETURN(
        *spec.target, ParseInt64(text, std::string("--") + spec.name, spec.min,
                                 spec.max));
  }
  options.admission.queue_depth = static_cast<int>(queue_depth);
  options.plan_cache_bytes = plan_cache_mb << 20;
  options.breaker_failure_threshold = static_cast<int>(breaker_failures);
  options.reload_retry.attempts = static_cast<int>(reload_retries);

  // --namespace NAME=DB[:VIEWS[:MAX_INFLIGHT]], repeatable.
  if (auto it = flags.find("namespace"); it != flags.end()) {
    for (const std::string& spec : it->second) {
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Status::InvalidArgument(
            "--namespace '" + spec +
            "': expected NAME=DB[:VIEWS[:MAX_INFLIGHT]]");
      }
      service::NamespaceOptions ns;
      ns.name = spec.substr(0, eq);
      std::string rest = spec.substr(eq + 1);
      size_t first_colon = rest.find(':');
      ns.db_path = rest.substr(0, first_colon);
      if (first_colon != std::string::npos) {
        std::string tail = rest.substr(first_colon + 1);
        size_t second_colon = tail.find(':');
        ns.views_path = tail.substr(0, second_colon);
        if (second_colon != std::string::npos) {
          RPQI_ASSIGN_OR_RETURN(
              ns.max_inflight,
              ParseInt64(tail.substr(second_colon + 1),
                         "--namespace '" + ns.name + "' max_inflight", 0,
                         int64_t{1} << 20));
        }
      }
      options.namespaces.push_back(std::move(ns));
    }
  }

  std::string transport = "stdio";
  if (flags.count("transport")) {
    RPQI_ASSIGN_OR_RETURN(transport, SingleFlag(flags, "transport"));
  }
  if (transport != "stdio" && transport != "tcp") {
    return Status::InvalidArgument("--transport must be stdio or tcp");
  }

  service::Server server(options);
  RPQI_RETURN_IF_ERROR(server.Init());
  if (transport == "stdio") {
    RPQI_RETURN_IF_ERROR(server.Serve(std::cin, std::cout));
    return kExitOk;
  }

  net::TcpTransportOptions tcp;
  if (flags.count("host")) {
    RPQI_ASSIGN_OR_RETURN(tcp.bind_address, SingleFlag(flags, "host"));
  }
  int64_t port = 0;
  int64_t max_conns = tcp.max_connections;
  int64_t max_batch = tcp.max_batch;
  int64_t max_line_bytes = static_cast<int64_t>(tcp.max_line_bytes);
  const IntFlag tcp_flags[] = {
      {"port", 0, 65535, &port},
      {"max-conns", 1, int64_t{1} << 16, &max_conns},
      {"max-batch", 1, int64_t{1} << 12, &max_batch},
      {"max-line-bytes", 64, int64_t{1} << 30, &max_line_bytes},
  };
  for (const IntFlag& spec : tcp_flags) {
    if (!flags.count(spec.name)) continue;
    RPQI_ASSIGN_OR_RETURN(std::string text, SingleFlag(flags, spec.name));
    RPQI_ASSIGN_OR_RETURN(
        *spec.target, ParseInt64(text, std::string("--") + spec.name, spec.min,
                                 spec.max));
  }
  tcp.port = static_cast<int>(port);
  tcp.max_connections = static_cast<int>(max_conns);
  tcp.max_batch = static_cast<int>(max_batch);
  tcp.max_line_bytes = static_cast<size_t>(max_line_bytes);

  net::TcpTransport tcp_server(&server, tcp);
  RPQI_RETURN_IF_ERROR(tcp_server.Listen());
  if (flags.count("port-file")) {
    RPQI_ASSIGN_OR_RETURN(std::string port_file,
                          SingleFlag(flags, "port-file"));
    std::ofstream out(port_file, std::ios::trunc);
    out << tcp_server.port() << "\n";
    out.close();
    if (!out) {
      return Status::InvalidArgument("cannot write port file '" + port_file +
                                     "'");
    }
  }
  // Stderr, not stdout: the port announcement must never mix into a piped
  // NDJSON stream.
  std::fprintf(stderr, "listening on %s:%d\n", tcp.bind_address.c_str(),
               tcp_server.port());
  RPQI_RETURN_IF_ERROR(tcp_server.Serve());
  return kExitOk;
}

StatusOr<int> CmdLoadgen(const FlagMap& flags) {
  net::LoadGenOptions options;
  if (flags.count("host")) {
    RPQI_ASSIGN_OR_RETURN(options.host, SingleFlag(flags, "host"));
  }
  if (flags.count("scenario")) {
    RPQI_ASSIGN_OR_RETURN(options.scenario, SingleFlag(flags, "scenario"));
  }
  if (flags.count("emit-db")) {
    RPQI_ASSIGN_OR_RETURN(options.emit_db_path, SingleFlag(flags, "emit-db"));
  }
  if (flags.count("mode")) {
    RPQI_ASSIGN_OR_RETURN(std::string mode, SingleFlag(flags, "mode"));
    if (mode != "open" && mode != "closed") {
      return Status::InvalidArgument("--mode must be open or closed");
    }
    options.open_loop = mode == "open";
  }
  if (flags.count("qps")) {
    RPQI_ASSIGN_OR_RETURN(std::string text, SingleFlag(flags, "qps"));
    char* end = nullptr;
    options.qps = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0' || !(options.qps > 0)) {
      return Status::InvalidArgument("--qps must be a positive number");
    }
  }
  struct IntFlag {
    const char* name;
    int64_t min;
    int64_t max;
    int64_t* target;
  };
  int64_t port = 0;
  int64_t connections = options.connections;
  int64_t seed = static_cast<int64_t>(options.seed);
  const IntFlag int_flags[] = {
      {"port", 1, 65535, &port},
      {"duration-ms", 1, int64_t{1} << 30, &options.duration_ms},
      {"connections", 1, 1024, &connections},
      {"seed", 0, int64_t{1} << 50, &seed},
  };
  for (const IntFlag& spec : int_flags) {
    if (!flags.count(spec.name)) continue;
    RPQI_ASSIGN_OR_RETURN(std::string text, SingleFlag(flags, spec.name));
    RPQI_ASSIGN_OR_RETURN(
        *spec.target, ParseInt64(text, std::string("--") + spec.name, spec.min,
                                 spec.max));
  }
  options.port = static_cast<int>(port);
  options.connections = static_cast<int>(connections);
  options.seed = static_cast<uint64_t>(seed);

  if (options.port == 0 && !options.emit_db_path.empty()) {
    // Emit-only mode: write the scenario graph so a server can be started on
    // it, then exit without generating load.
    RPQI_RETURN_IF_ERROR(net::EmitScenarioDb(options.scenario, options.seed,
                                             options.emit_db_path));
    std::printf("{\"emitted_db\":\"%s\"}\n", options.emit_db_path.c_str());
    return kExitOk;
  }

  RPQI_ASSIGN_OR_RETURN(net::LoadGenReport report, net::RunLoadGen(options));
  std::string json = net::LoadGenReportJson(report);
  if (flags.count("out")) {
    RPQI_ASSIGN_OR_RETURN(std::string out_path, SingleFlag(flags, "out"));
    std::ofstream out(out_path, std::ios::trunc);
    out << json << "\n";
    out.close();
    if (!out) {
      return Status::InvalidArgument("cannot write report to '" + out_path +
                                     "'");
    }
  }
  std::printf("%s\n", json.c_str());
  return kExitOk;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  StatusOr<FlagMap> flags = ParseFlags(argc, argv, 2);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\n", flags.status().ToString().c_str());
    return ExitCodeForStatus(flags.status());
  }
  if (flags->count("threads")) {
    StatusOr<std::string> text = SingleFlag(*flags, "threads");
    StatusOr<int64_t> threads =
        text.ok() ? ParseInt64(*text, "--threads", 1, 256)
                  : StatusOr<int64_t>(text.status());
    if (!threads.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   threads.status().ToString().c_str());
      return ExitCodeForStatus(threads.status());
    }
    SetGlobalThreadCount(static_cast<int>(*threads));
    flags->erase("threads");
  }
  if (flags->count("trace-out")) {
    StatusOr<std::string> path = SingleFlag(*flags, "trace-out");
    if (!path.ok()) {
      std::fprintf(stderr, "error: %s\n", path.status().ToString().c_str());
      return ExitCodeForStatus(path.status());
    }
    if (!obs::Tracer::StartToFile(*path)) {
      std::fprintf(stderr, "error: cannot open trace output '%s'\n",
                   path->c_str());
      return kExitInvalidInput;
    }
    flags->erase("trace-out");
  }
  {
    // RPQI_FAULT arms the fault-injection layer for the whole process; a
    // --fault flag appends to (never replaces) the environment's spec so a
    // wrapper script's faults survive ad-hoc additions.
    const char* env_spec = std::getenv("RPQI_FAULT");
    std::string fault_spec = env_spec == nullptr ? "" : env_spec;
    if (flags->count("fault")) {
      StatusOr<std::string> spec = SingleFlag(*flags, "fault");
      if (!spec.ok()) {
        std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
        return ExitCodeForStatus(spec.status());
      }
      if (!fault_spec.empty()) fault_spec += ",";
      fault_spec += *spec;
      flags->erase("fault");
    }
    if (!fault_spec.empty()) {
      Status configured = fault::Configure(fault_spec);
      if (!configured.ok()) {
        std::fprintf(stderr, "error: %s\n", configured.ToString().c_str());
        return ExitCodeForStatus(configured);
      }
    }
  }
  std::string metrics_out;
  if (flags->count("metrics-out")) {
    StatusOr<std::string> path = SingleFlag(*flags, "metrics-out");
    if (!path.ok()) {
      std::fprintf(stderr, "error: %s\n", path.status().ToString().c_str());
      return ExitCodeForStatus(path.status());
    }
    metrics_out = *path;
    flags->erase("metrics-out");
  }
  StatusOr<int> code = Status::InvalidArgument("unknown command");
  if (command == "eval") {
    code = CmdEval(*flags);
  } else if (command == "rewrite") {
    code = CmdRewrite(*flags);
  } else if (command == "satisfies") {
    code = CmdSatisfies(*flags);
  } else if (command == "contains") {
    code = CmdContains(*flags);
  } else if (command == "answer") {
    code = CmdAnswer(*flags);
  } else if (command == "validate") {
    code = CmdValidate(*flags);
  } else if (command == "compact") {
    code = CmdCompact(*flags);
  } else if (command == "serve") {
    code = CmdServe(*flags);
  } else if (command == "loadgen") {
    code = CmdLoadgen(*flags);
  } else {
    return Usage();
  }
  int exit_code;
  if (code.ok()) {
    exit_code = *code;
  } else {
    std::fprintf(stderr, "error: %s\n", code.status().ToString().c_str());
    exit_code = ExitCodeForStatus(code.status());
  }
  // Flush observability sinks even when the command failed: a trace of the
  // failing run is precisely the interesting one.
  obs::Tracer::Stop();
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (out) obs::TakeMetricsSnapshot().WriteNdjson(out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write metrics output '%s'\n",
                   metrics_out.c_str());
      return kExitInvalidInput;
    }
  }
  return exit_code;
}

}  // namespace
}  // namespace rpqi

int main(int argc, char** argv) { return rpqi::Main(argc, argv); }
