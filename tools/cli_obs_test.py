#!/usr/bin/env python3
"""CLI-level tests for exit codes and the observability flags.

Usage: cli_obs_test.py PATH_TO_RPQI_BINARY

Drives the built `rpqi` binary end to end:
  * exit codes 0/1/2/3/4 through real commands (5, cancellation, has no CLI
    trigger — its mapping is covered by the base_test unit test);
  * --trace-out produces valid NDJSON whose spans cover every rewrite stage
    (rewrite.A1 .. rewrite.R) with positive ids, well-formed parent links,
    and durations;
  * answer commands emit answer.CDA.probe / answer.ODA.probe spans;
  * --metrics-out produces NDJSON counter records consistent with the run;
  * unusable --trace-out/--metrics-out paths exit 2.
"""

import json
import os
import subprocess
import sys
import tempfile

FAILURES = []


def check(label, condition, detail=""):
    if condition:
        print(f"ok: {label}")
    else:
        FAILURES.append(label)
        print(f"FAIL: {label} {detail}")


def run(binary, *args):
    return subprocess.run([binary] + list(args), capture_output=True,
                          text=True)


def load_ndjson(path):
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))  # raises on malformed JSON
    return records


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: cli_obs_test.py RPQI_BINARY")
    binary = sys.argv[1]
    tmp = tempfile.mkdtemp(prefix="rpqi_cli_obs_")

    # --- exit codes -------------------------------------------------------
    check("exit 0 on positive decision",
          run(binary, "satisfies", "--query", "a", "--word", "a")
          .returncode == 0)
    check("exit 1 on negative decision",
          run(binary, "satisfies", "--query", "a", "--word", "b")
          .returncode == 1)
    check("exit 2 on parse error",
          run(binary, "rewrite", "--query", "((", "--view", "v=a")
          .returncode == 2)
    check("exit 2 on unknown command",
          run(binary, "frobnicate").returncode == 2)
    # Self-containment of the exponential family: deciding "contained" must
    # exhaust the lazy complement product (~2^22 subset states), so tiny
    # budgets reliably trip. (The rewrite command degrades to a certified
    # partial result instead of failing, by design, so it cannot exit 3.)
    hard = ("(a|b)* a" + " (a|b)" * 22)
    check("exit 3 on state-quota exhaustion",
          run(binary, "contains", "--query", hard, "--in", hard,
              "--max-states", "100").returncode == 3)
    check("exit 4 on deadline",
          run(binary, "contains", "--query", hard, "--in", hard,
              "--timeout-ms", "1").returncode == 4)

    # --- trace NDJSON over the rewrite pipeline ---------------------------
    trace_path = os.path.join(tmp, "trace.ndjson")
    metrics_path = os.path.join(tmp, "metrics.ndjson")
    result = run(binary, "rewrite", "--query", "a b", "--view", "v1=a",
                 "--view", "v2=b", "--trace-out", trace_path,
                 "--metrics-out", metrics_path)
    check("traced rewrite run succeeds", result.returncode == 0,
          result.stderr)
    spans = load_ndjson(trace_path)
    check("trace records are span-typed",
          spans and all(r.get("type") == "span" for r in spans))
    names = {r["name"] for r in spans}
    for stage in ("compile.regex", "rewrite.pipeline", "rewrite.A1",
                  "rewrite.A3", "rewrite.A2xA3", "rewrite.A4", "rewrite.R",
                  "automata.materialize", "automata.determinize",
                  "emptiness.search"):
        check(f"trace has a {stage} span", stage in names, sorted(names))
    ids = [r["id"] for r in spans]
    check("span ids are unique and positive",
          len(set(ids)) == len(ids) and all(i > 0 for i in ids))
    by_id = {r["id"]: r for r in spans}
    check("parents are emitted spans or root",
          all(r["parent"] == 0 or r["parent"] in by_id for r in spans))
    pipeline_id = next(r["id"] for r in spans
                       if r["name"] == "rewrite.pipeline")
    stage_parents = {r["parent"] for r in spans
                     if r["name"].startswith("rewrite.A")}
    check("rewrite stages nest under rewrite.pipeline",
          stage_parents == {pipeline_id}, stage_parents)
    check("spans carry sane timings",
          all(r["dur_us"] >= 0 and r["start_us"] >= 0 for r in spans))

    # --- metrics NDJSON ---------------------------------------------------
    metrics = load_ndjson(metrics_path)
    counters = {r["name"]: r["value"] for r in metrics
                if r.get("type") == "counter"}
    check("metrics include the rewrite run",
          counters.get("rewrite.exact_runs") == 1, counters)
    check("metrics include compile counters",
          counters.get("compile.regexes", 0) >= 3, counters)

    # --- answer spans -----------------------------------------------------
    for mode, span_name in (("cda", "answer.CDA.probe"),
                            ("oda", "answer.ODA.probe")):
        mode_trace = os.path.join(tmp, f"{mode}.ndjson")
        result = run(binary, "answer", "--mode", mode, "--objects", "2",
                     "--query", "p", "--view", "v=p;sound;0,1",
                     "--pair", "0,1", "--trace-out", mode_trace)
        check(f"{mode} answer run succeeds", result.returncode == 0,
              result.stderr)
        mode_names = {r["name"] for r in load_ndjson(mode_trace)}
        check(f"{mode} trace has {span_name}", span_name in mode_names,
              sorted(mode_names))

    # --- unusable sink paths ----------------------------------------------
    bad = os.path.join(tmp, "missing-dir", "out.ndjson")
    check("unwritable --trace-out exits 2",
          run(binary, "satisfies", "--query", "a", "--word", "a",
              "--trace-out", bad).returncode == 2)
    check("unwritable --metrics-out exits 2",
          run(binary, "satisfies", "--query", "a", "--word", "a",
              "--metrics-out", bad).returncode == 2)

    if FAILURES:
        print(f"\n{len(FAILURES)} failure(s): {FAILURES}")
        return 1
    print("\nall CLI observability checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
