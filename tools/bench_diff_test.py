#!/usr/bin/env python3
"""Tests for tools/bench_diff.py.

Usage: bench_diff_test.py PATH_TO_BENCH_DIFF

Exercises the hardening this tool grew alongside the observability layer:
  * zero / near-zero baseline medians are skipped (no ZeroDivisionError);
  * counters present in only one run report as added/removed, never crash;
  * counter drift exits 1 under --counters fail, 0 under the warn default;
  * --fail-on-regression still gates timing regressions;
  * non-numeric entry values are ignored rather than compared.
"""

import json
import os
import subprocess
import sys
import tempfile

FAILURES = []


def check(label, condition, detail=""):
    if condition:
        print(f"ok: {label}")
    else:
        FAILURES.append(label)
        print(f"FAIL: {label} {detail}")


def write_bench(directory, filename, entries):
    path = os.path.join(directory, filename)
    with open(path, "w") as handle:
        json.dump({"bench": filename, "entries": entries}, handle)
    return path


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: bench_diff_test.py BENCH_DIFF_PY")
    bench_diff = sys.argv[1]
    tmp = tempfile.mkdtemp(prefix="rpqi_bench_diff_")

    def run(old_entries, new_entries, *extra):
        old_dir = tempfile.mkdtemp(dir=tmp)
        new_dir = tempfile.mkdtemp(dir=tmp)
        write_bench(old_dir, "BENCH_t.json", old_entries)
        write_bench(new_dir, "BENCH_t.json", new_entries)
        return subprocess.run(
            [sys.executable, bench_diff, old_dir, new_dir] + list(extra),
            capture_output=True, text=True)

    # --- near-zero baselines ----------------------------------------------
    result = run([{"name": "fast", "median_ms": 0.0, "states": 5}],
                 [{"name": "fast", "median_ms": 9.9, "states": 5}])
    check("zero baseline median does not crash", result.returncode == 0,
          result.stderr)
    check("zero baseline is reported as skipped",
          "below min-time floor" in result.stdout, result.stdout)
    result = run([{"name": "fast", "median_ms": 0.01}],
                 [{"name": "fast", "median_ms": 5.0}],
                 "--fail-on-regression")
    check("sub-floor baseline never flags a regression",
          result.returncode == 0 and "REGRESSIONS" not in result.stdout,
          result.stdout)
    result = run([{"name": "fast", "median_ms": 0.01}],
                 [{"name": "fast", "median_ms": 5.0}],
                 "--fail-on-regression", "--min-time-ms", "0")
    check("floor of 0 restores the comparison", result.returncode == 1,
          result.stdout)

    # --- added/removed counters -------------------------------------------
    result = run([{"name": "b", "median_ms": 1.0, "old_only": 3}],
                 [{"name": "b", "median_ms": 1.0, "new_only": 7}],
                 "--counters", "fail")
    check("disjoint counter sets are not a drift", result.returncode == 0,
          result.stdout)
    check("removed counter is reported",
          "counter removed: old_only" in result.stdout, result.stdout)
    check("added counter is reported",
          "counter added: new_only" in result.stdout, result.stdout)

    # --- counter drift gating ---------------------------------------------
    old = [{"name": "b", "median_ms": 1.0, "states_explored": 100}]
    drifted = [{"name": "b", "median_ms": 1.0, "states_explored": 101}]
    result = run(old, drifted, "--counters", "fail")
    check("counter drift with --counters fail exits 1",
          result.returncode == 1, result.stdout)
    check("drift names the counter and both values",
          "states_explored 100 -> 101" in result.stdout, result.stdout)
    result = run(old, drifted)
    check("counter drift defaults to warn-only exit 0",
          result.returncode == 0 and "counter drifts" in result.stdout,
          result.stdout)
    result = run(old, list(old), "--counters", "fail")
    check("identical counters pass --counters fail",
          result.returncode == 0, result.stdout)

    # --- timing regressions unchanged -------------------------------------
    slow = [{"name": "b", "median_ms": 10.0}]
    slower = [{"name": "b", "median_ms": 20.0}]
    result = run(slow, slower)
    check("timing regression warns by default",
          result.returncode == 0 and "REGRESSIONS" in result.stdout,
          result.stdout)
    result = run(slow, slower, "--fail-on-regression")
    check("timing regression fails when asked", result.returncode == 1,
          result.stdout)

    # --- non-numeric values and disjoint benchmark sets --------------------
    result = run([{"name": "b", "median_ms": 1.0, "series": "hard",
                   "label": "x"}],
                 [{"name": "c", "median_ms": 1.0, "label": "y"}],
                 "--counters", "fail")
    check("string-valued keys and disjoint names do not crash",
          result.returncode == 0, result.stderr)
    check("unmatched benchmarks are listed",
          "only in baseline" in result.stdout
          and "only in new run" in result.stdout, result.stdout)

    if FAILURES:
        print(f"\n{len(FAILURES)} failure(s): {FAILURES}")
        return 1
    print("\nall bench_diff checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
