// Shared main for every bench binary: runs Google Benchmark with the normal
// console output, then writes BENCH_<name>.json — a machine-readable summary
// (per series point: median wall time in ms plus every user counter, e.g.
// states_explored / antichain_size) consumed by tools/bench_diff.py and the
// CI perf-smoke job.
//
// Flags understood on top of the benchmark library's own:
//   --quick           smoke mode: implies --benchmark_min_time=0.01 unless an
//                     explicit min time was passed
//   --bench_out=FILE  where to write the JSON (default: BENCH_<name>.json in
//                     the working directory, <name> = binary basename with
//                     any bench_ prefix stripped)
//   --metrics-out=FILE  write the final process-wide obs counter snapshot as
//                     NDJSON after all benchmarks ran (CI uploads these as
//                     artifacts next to the BENCH_*.json files)

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_main.h"
#include "obs/metrics.h"

namespace rpqi {
namespace {

bool g_quick_mode = false;

/// Console reporter that additionally keeps every finished run for the JSON
/// summary.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (!run.error_occurred) collected_.push_back(run);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Run>& collected() const { return collected_; }

 private:
  std::vector<Run> collected_;
};

double RunTimeMs(const benchmark::BenchmarkReporter::Run& run) {
  const double t = run.GetAdjustedRealTime();  // in run.time_unit
  switch (run.time_unit) {
    case benchmark::kNanosecond:
      return t * 1e-6;
    case benchmark::kMicrosecond:
      return t * 1e-3;
    case benchmark::kMillisecond:
      return t;
    case benchmark::kSecond:
      return t * 1e3;
  }
  return t;
}

/// "BM_Family/variant/7" -> series "BM_Family/variant", n = 7. When the last
/// path component is not a plain integer, n is -1 and the series is the full
/// name.
void SplitSeries(const std::string& name, std::string* series, long* n) {
  *series = name;
  *n = -1;
  size_t slash = name.rfind('/');
  if (slash == std::string::npos || slash + 1 == name.size()) return;
  const std::string last = name.substr(slash + 1);
  char* end = nullptr;
  long value = std::strtol(last.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return;
  *series = name.substr(0, slash);
  *n = value;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Picks one representative run per benchmark name: the "median" aggregate
/// when repetitions produced one, the plain iteration run otherwise (its
/// reported time is already the per-iteration mean, the benchmark library's
/// stable default).
std::vector<benchmark::BenchmarkReporter::Run> SelectRuns(
    const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  using Run = benchmark::BenchmarkReporter::Run;
  std::vector<Run> selected;
  std::map<std::string, size_t> index_of;  // run_name -> slot in `selected`
  for (const Run& run : runs) {
    const bool is_aggregate =
        run.run_type == Run::RT_Aggregate;
    if (is_aggregate && run.aggregate_name != "median") continue;
    const std::string name = run.benchmark_name();
    auto [it, inserted] = index_of.try_emplace(name, selected.size());
    if (inserted) {
      selected.push_back(run);
    } else if (is_aggregate) {
      selected[it->second] = run;  // a median aggregate beats the raw run
    }
  }
  return selected;
}

void WriteJson(const std::string& path, const std::string& bench_name,
               const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_main: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"" << JsonEscape(bench_name) << "\",\n"
      << "  \"quick\": " << (g_quick_mode ? "true" : "false") << ",\n"
      << "  \"entries\": [\n";
  bool first = true;
  for (const auto& run : SelectRuns(runs)) {
    std::string series;
    long n = -1;
    const std::string name = run.benchmark_name();
    SplitSeries(name, &series, &n);
    if (!first) out << ",\n";
    first = false;
    out << "    {\"name\": \"" << JsonEscape(name) << "\", \"series\": \""
        << JsonEscape(series) << "\", \"n\": " << n << ", \"median_ms\": "
        << RunTimeMs(run) << ", \"iterations\": " << run.iterations;
    for (const auto& [counter_name, counter] : run.counters) {
      out << ", \"" << JsonEscape(counter_name)
          << "\": " << static_cast<double>(counter.value);
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
}

std::string BenchName(const char* argv0) {
  std::string name = argv0;
  size_t slash = name.find_last_of("/\\");
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  return name;
}

}  // namespace

bool BenchQuickMode() { return g_quick_mode; }

ScopedMetricsCounters::ScopedMetricsCounters(benchmark::State& state)
    : state_(state), before_(obs::TakeMetricsSnapshot()) {}

ScopedMetricsCounters::~ScopedMetricsCounters() {
  const obs::MetricsSnapshot delta =
      obs::TakeMetricsSnapshot().DeltaSince(before_);
  const double iterations =
      static_cast<double>(std::max<int64_t>(1, state_.iterations()));
  for (const auto& [name, value] : delta.counters()) {
    if (value == 0) continue;  // keep the counter column set stable and small
    state_.counters["m_" + name] =
        benchmark::Counter(static_cast<double>(value) / iterations);
  }
}

}  // namespace rpqi

int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string out_path;
  std::string metrics_path;
  bool min_time_given = false;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      rpqi::g_quick_mode = true;
    } else if (arg.rfind("--bench_out=", 0) == 0) {
      out_path = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_path = arg.substr(14);
    } else {
      if (arg.rfind("--benchmark_min_time", 0) == 0) min_time_given = true;
      args.push_back(arg);
    }
  }
  if (rpqi::g_quick_mode && !min_time_given) {
    args.push_back("--benchmark_min_time=0.01");
  }
  std::vector<char*> c_args;
  c_args.reserve(args.size());
  for (std::string& arg : args) c_args.push_back(arg.data());
  int c_argc = static_cast<int>(c_args.size());
  benchmark::Initialize(&c_argc, c_args.data());
  if (benchmark::ReportUnrecognizedArguments(c_argc, c_args.data())) return 1;

  const std::string bench_name = rpqi::BenchName(argv[0]);
  if (out_path.empty()) out_path = "BENCH_" + bench_name + ".json";
  rpqi::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  rpqi::WriteJson(out_path, bench_name, reporter.collected());
  if (!metrics_path.empty()) {
    std::ofstream metrics_out(metrics_path);
    if (metrics_out) {
      rpqi::obs::TakeMetricsSnapshot().WriteNdjson(metrics_out);
    } else {
      std::fprintf(stderr, "bench_main: cannot write %s\n",
                   metrics_path.c_str());
    }
  }
  benchmark::Shutdown();
  return 0;
}
