#ifndef RPQI_BENCH_BENCH_MAIN_H_
#define RPQI_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include "obs/metrics.h"

namespace rpqi {

/// True when the bench binary was invoked with --quick (the CI perf-smoke
/// mode): the benchmark min time is dropped to a few iterations per series so
/// the whole suite finishes in seconds. Timings from quick runs are noisy by
/// design — bench_diff.py treats them as warn-only.
bool BenchQuickMode();

/// Attaches the process-wide obs counters to a benchmark as `m_<name>` user
/// counters: takes a metrics snapshot at construction and, at destruction,
/// reports each counter's delta divided by the iteration count.
///
/// Construct AFTER setup and BEFORE the `for (auto _ : state)` loop, so setup
/// work is excluded. The per-iteration values are deterministic across
/// machines and iteration counts only when every iteration performs identical
/// work (e.g. builds a fresh engine); do not add this to benchmarks that
/// amortize setup across iterations inside the timed loop.
class ScopedMetricsCounters {
 public:
  explicit ScopedMetricsCounters(benchmark::State& state);
  ~ScopedMetricsCounters();

  ScopedMetricsCounters(const ScopedMetricsCounters&) = delete;
  ScopedMetricsCounters& operator=(const ScopedMetricsCounters&) = delete;

 private:
  benchmark::State& state_;
  obs::MetricsSnapshot before_;
};

}  // namespace rpqi

#endif  // RPQI_BENCH_BENCH_MAIN_H_
