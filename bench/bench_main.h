#ifndef RPQI_BENCH_BENCH_MAIN_H_
#define RPQI_BENCH_BENCH_MAIN_H_

namespace rpqi {

/// True when the bench binary was invoked with --quick (the CI perf-smoke
/// mode): the benchmark min time is dropped to a few iterations per series so
/// the whole suite finishes in seconds. Timings from quick runs are noisy by
/// design — bench_diff.py treats them as warn-only.
bool BenchQuickMode();

}  // namespace rpqi

#endif  // RPQI_BENCH_BENCH_MAIN_H_
