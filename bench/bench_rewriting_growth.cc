// THM7 bench: maximal-rewriting generation (2EXPTIME, Theorem 7). Reports
// wall time plus the size of every pipeline object (A1, lazily discovered A2
// fragment, A2∩A3 product, A4, final rewriting DFA) as the query grows, on
// (a) the crafted worst-case family (a|b)* a (a|b)^k whose rewriting inherits
// an exponential blowup, and (b) benign random RPQIs.

#include <benchmark/benchmark.h>

#include <random>

#include "rewrite/rewriter.h"
#include "rpq/compile.h"
#include "workload/regex_gen.h"
#include "workload/scenario.h"

#include "bench_main.h"

namespace rpqi {
namespace {

void BM_HardFamily(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  HardRewritingInstance instance = MakeHardRewritingInstance(k);
  Nfa query = MustCompileRegex(instance.query, instance.alphabet);
  std::vector<Nfa> views;
  for (const RegexPtr& def : instance.view_definitions) {
    views.push_back(MustCompileRegex(def, instance.alphabet));
  }
  RewritingOptions options;
  options.max_product_states = int64_t{1} << 22;
  options.max_subset_states = int64_t{1} << 22;

  RewritingStats stats;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<MaximalRewriting> rewriting =
        ComputeMaximalRewriting(query, views, options);
    if (!rewriting.ok()) {
      state.SkipWithError(rewriting.status().ToString().c_str());
      return;
    }
    stats = rewriting->stats;
    benchmark::DoNotOptimize(rewriting->empty);
  }
  state.counters["k"] = k;
  state.counters["a1_states"] = stats.a1_states;
  state.counters["a2_discovered"] = static_cast<double>(stats.a2_states_discovered);
  state.counters["product_states"] = stats.product_states;
  state.counters["a4_states"] = stats.a4_states;
  state.counters["rewriting_states"] = stats.rewriting_states;
}

void BM_RandomInstances(benchmark::State& state) {
  int query_size = static_cast<int>(state.range(0));
  std::mt19937_64 rng(1234);
  RandomRegexOptions regex_options;
  regex_options.relation_names = {"a", "b"};
  regex_options.target_size = query_size;
  regex_options.inverse_probability = 0.3;
  SignedAlphabet alphabet;
  alphabet.AddRelation("a");
  alphabet.AddRelation("b");
  Nfa query = MustCompileRegex(RandomRegex(rng, regex_options), alphabet);
  RandomRegexOptions view_options = regex_options;
  view_options.target_size = 3;
  std::vector<Nfa> views = {
      MustCompileRegex(RandomRegex(rng, view_options), alphabet),
      MustCompileRegex(RandomRegex(rng, view_options), alphabet)};
  RewritingOptions options;
  options.max_product_states = int64_t{1} << 22;
  options.max_subset_states = int64_t{1} << 22;

  RewritingStats stats;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<MaximalRewriting> rewriting =
        ComputeMaximalRewriting(query, views, options);
    if (!rewriting.ok()) {
      state.SkipWithError(rewriting.status().ToString().c_str());
      return;
    }
    stats = rewriting->stats;
  }
  state.counters["query_size"] = query_size;
  state.counters["product_states"] = stats.product_states;
  state.counters["rewriting_states"] = stats.rewriting_states;
}

BENCHMARK(BM_HardFamily)->DenseRange(0, 5, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RandomInstances)
    ->DenseRange(3, 11, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rpqi
