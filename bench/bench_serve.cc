// Serving-layer bench: request latency and throughput through the Server
// (`rpqi serve`). Two axes matter for the roadmap's scaling story:
//   * cold vs. warm plan cache — a warm `eval` skips regex compilation and
//     the all-pairs product BFS entirely (the cached plan carries the answer
//     set), so its median must sit well below (>= 5x) the cold median;
//   * worker-pool throughput — a 1000-request mixed NDJSON stream with
//     periodic `admin reload` requests, at 1/4/8 threads.

#include <benchmark/benchmark.h>

#include <sys/socket.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/socket.h"
#include "graphdb/columnar.h"
#include "graphdb/io.h"
#include "net/framing.h"
#include "net/tcp_server.h"
#include "rpq/alphabet.h"
#include "service/server.h"
#include "service/snapshot.h"
#include "workload/graph_gen.h"

#include "bench_main.h"

namespace rpqi {
namespace {

// A fixed labeled path keeps the answer set small (response rendering stays
// cheap on both paths) while the cold eval still pays compilation plus the
// product BFS over every source node.
constexpr char kEvalRequest[] =
    R"({"id":1,"op":"eval","query":"r0 r0 r1 r0"})";

// Deterministic random graph shared by every benchmark in this binary,
// serialized once to a temp file so Server::Init exercises the real snapshot
// loader. 512 nodes / out-degree 3 keeps --quick runs fast.
const std::string& GraphPath() {
  static const std::string* path = [] {
    std::mt19937_64 rng(7);
    RandomGraphOptions options;
    options.num_nodes = 512;
    options.num_relations = 2;
    options.average_out_degree = 3.0;
    GraphDb db = RandomGraph(rng, options);
    SignedAlphabet alphabet;
    alphabet.AddRelation("r0");
    alphabet.AddRelation("r1");
    auto file = std::filesystem::temp_directory_path() / "rpqi_bench_serve.txt";
    std::ofstream(file) << SaveGraphText(db, alphabet);
    return new std::string(file.string());
  }();
  return *path;
}

service::ServerOptions BaseOptions() {
  service::ServerOptions options;
  options.initial_db_path = GraphPath();
  return options;
}

// A larger graph for the snapshot-open benches: 4096 nodes / out-degree 8,
// written once in both formats. Text parsing re-tokenizes and re-interns
// every line; the columnar open is an mmap plus a checksum pass, so its
// median must sit far (>= 10x) below the text median at this size.
struct SnapshotOpenFixture {
  std::string text_path;
  std::string columnar_path;
};

const SnapshotOpenFixture& OpenFixture() {
  static const SnapshotOpenFixture* fixture = [] {
    std::mt19937_64 rng(11);
    RandomGraphOptions options;
    options.num_nodes = 4096;
    options.num_relations = 4;
    options.average_out_degree = 8.0;
    GraphDb db = RandomGraph(rng, options);
    SignedAlphabet alphabet;
    for (int r = 0; r < options.num_relations; ++r) {
      alphabet.AddRelation("r" + std::to_string(r));
    }
    auto* out = new SnapshotOpenFixture;
    auto dir = std::filesystem::temp_directory_path();
    out->text_path = (dir / "rpqi_bench_open.txt").string();
    std::string text = SaveGraphText(db, alphabet);
    std::ofstream(out->text_path) << text;
    out->columnar_path = (dir / "rpqi_bench_open.rpqicol").string();
    Status written = WriteColumnarFile(out->columnar_path, db, alphabet,
                                       FingerprintGraphText(text));
    if (!written.ok()) out->columnar_path.clear();
    return out;
  }();
  return *fixture;
}

// One full LoadGraphSnapshot per iteration — read, parse/validate, intern —
// through exactly the code path `admin reload` takes.
void BM_SnapshotOpenText(benchmark::State& state) {
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    auto snapshot = service::LoadGraphSnapshot(OpenFixture().text_path);
    if (!snapshot.ok()) {
      state.SkipWithError("text snapshot load failed");
      break;
    }
    benchmark::DoNotOptimize((*snapshot)->db.NumEdges());
  }
}
BENCHMARK(BM_SnapshotOpenText);

// Same graph through the mmap path: open + header/checksum validation +
// pointer-cast CSR views; no per-edge parsing, no interning.
void BM_SnapshotOpenColumnar(benchmark::State& state) {
  if (OpenFixture().columnar_path.empty()) {
    state.SkipWithError("columnar fixture write failed");
    return;
  }
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    auto snapshot = service::LoadGraphSnapshot(OpenFixture().columnar_path);
    if (!snapshot.ok()) {
      state.SkipWithError("columnar snapshot load failed");
      break;
    }
    benchmark::DoNotOptimize((*snapshot)->db.NumEdges());
  }
}
BENCHMARK(BM_SnapshotOpenColumnar);

// Cold path: a fresh Server (empty plan cache) per iteration; only the
// HandleLine call is timed, so the measurement is parse + compile + eval +
// render without snapshot-load noise.
void BM_ServeEvalCold(benchmark::State& state) {
  // Every iteration does identical work (fresh server, one miss), so the
  // m_* columns are deterministic: expect compile + eval + cache-insert.
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    state.PauseTiming();
    auto server = std::make_unique<service::Server>(BaseOptions());
    if (!server->Init().ok()) {
      state.SkipWithError("snapshot init failed");
      break;
    }
    state.ResumeTiming();
    std::string response = server->HandleLine(kEvalRequest);
    benchmark::DoNotOptimize(response.data());
    state.PauseTiming();
    server.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ServeEvalCold);

// Warm path: same request against a pre-warmed cache — parse + shard lookup +
// render. The >= 5x cold/warm separation asserted in EXPERIMENTS.md lives in
// the ratio of these two medians.
void BM_ServeEvalWarm(benchmark::State& state) {
  service::Server server(BaseOptions());
  if (!server.Init().ok()) {
    state.SkipWithError("snapshot init failed");
    return;
  }
  std::string warmup = server.HandleLine(kEvalRequest);
  benchmark::DoNotOptimize(warmup.data());
  // Every iteration is one cache hit — the m_* columns document what the
  // warm path skips (no compile.*, no eval.*).
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    std::string response = server.HandleLine(kEvalRequest);
    benchmark::DoNotOptimize(response.data());
  }
}
BENCHMARK(BM_ServeEvalWarm);

// Restart path: a fresh Server per iteration, but --plan-cache-dir points at
// a directory pre-warmed with the persisted plan, so the timed HandleLine is
// a disk hit — decode + validate the "RPQIPLAN1" payload, no compile, no BFS.
// Its median must sit well below the cold median (that gap is the restart
// win the persistent plan cache buys) while staying above the pure in-memory
// warm median (the decode + admission-validation tax).
void BM_ServeEvalWarmRestart(benchmark::State& state) {
  auto dir = std::filesystem::temp_directory_path() / "rpqi_bench_serve_plans";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    state.SkipWithError("plan dir setup failed");
    return;
  }
  service::ServerOptions options = BaseOptions();
  options.plan_cache_dir = dir.string();
  {
    service::Server warmer(options);
    if (!warmer.Init().ok()) {
      state.SkipWithError("snapshot init failed");
      return;
    }
    std::string warmup = warmer.HandleLine(kEvalRequest);
    benchmark::DoNotOptimize(warmup.data());
  }
  // Every iteration is one disk hit (fresh in-memory cache, persisted plan
  // present), so the m_* columns are deterministic: expect
  // service.plan_cache.disk_hit with no compile.* or eval.* work.
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    state.PauseTiming();
    auto server = std::make_unique<service::Server>(options);
    if (!server->Init().ok()) {
      state.SkipWithError("snapshot init failed");
      break;
    }
    state.ResumeTiming();
    std::string response = server->HandleLine(kEvalRequest);
    benchmark::DoNotOptimize(response.data());
    state.PauseTiming();
    server.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ServeEvalWarmRestart);

// Full serve loop: a 1000-request mixed stream (eight distinct eval queries
// cycling, an admin reload every 100 requests) drained by N workers. The
// Server persists across iterations, so after the first pass the cache is
// warm — this measures admission + dispatch + hit-path throughput, with the
// reloads exercising snapshot pinning under load.
void BM_ServeMixedStream(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kRequests = 1000;
  service::ServerOptions options = BaseOptions();
  options.threads = threads;
  options.admission.queue_depth = kRequests;
  service::Server server(options);
  if (!server.Init().ok()) {
    state.SkipWithError("snapshot init failed");
    return;
  }

  const std::vector<std::string> queries = {
      "r0", "r1", "r0 r1", "r1 r0", "r0 r0 r1", "r0 r1^-", "r1^- r0",
      "r0 r0 r1 r0"};
  std::string input;
  for (int i = 0; i < kRequests; ++i) {
    if (i % 100 == 99) {
      input += "{\"id\":" + std::to_string(i) +
               ",\"op\":\"admin\",\"action\":\"reload\",\"db\":\"" +
               GraphPath() + "\"}\n";
    } else {
      input += "{\"id\":" + std::to_string(i) +
               ",\"op\":\"eval\",\"query\":\"" +
               queries[i % queries.size()] + "\"}\n";
    }
  }

  for (auto _ : state) {
    std::istringstream in(input);
    std::ostringstream out;
    if (!server.Serve(in, out).ok()) {
      state.SkipWithError("serve loop failed");
      break;
    }
    benchmark::DoNotOptimize(out.str().data());
  }
  // bench_diff gates every extra numeric column with --counters fail, so only
  // the deterministic thread count is exported; throughput lives in
  // median_ms (1000 requests per iteration) and hit/miss rates are
  // thread-race-dependent by design.
  state.counters["threads"] = threads;
}
BENCHMARK(BM_ServeMixedStream)->Arg(1)->Arg(4)->Arg(8)->UseRealTime();

// The same mixed stream through the TCP transport: one loopback connection
// sends 500 pipelined requests and reads every response back. Relative to
// BM_ServeMixedStream this adds the poll loop, line framing, batch admission,
// and two socket copies per request — the delta between the two medians is
// the transport tax the roadmap's scale-out story pays. The stream is
// pipelined, so the transport's request batching (shared snapshot pins, plan
// lookups resolved once per batch) is on the measured path.
void BM_ServeTcpThroughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kRequests = 500;
  service::ServerOptions options = BaseOptions();
  options.threads = threads;
  options.admission.queue_depth = kRequests;
  service::Server server(options);
  if (!server.Init().ok()) {
    state.SkipWithError("snapshot init failed");
    return;
  }
  net::TcpTransport transport(&server, {});
  if (!transport.Listen().ok()) {
    state.SkipWithError("listen failed");
    return;
  }
  std::thread serve_thread([&transport] {
    // lint: allow-discard — failures surface as truncated streams below
    (void)transport.Serve();
  });

  const std::vector<std::string> queries = {
      "r0", "r1", "r0 r1", "r1 r0", "r0 r0 r1", "r0 r1^-", "r1^- r0",
      "r0 r0 r1 r0"};
  std::string input;
  for (int i = 0; i < kRequests; ++i) {
    input += "{\"id\":" + std::to_string(i) + ",\"op\":\"eval\",\"query\":\"" +
             queries[i % queries.size()] + "\"}\n";
  }

  bool failed = false;
  for (auto _ : state) {
    StatusOr<UniqueFd> fd = ConnectTcp("127.0.0.1", transport.port());
    if (!fd.ok()) {
      state.SkipWithError("connect failed");
      failed = true;
      break;
    }
    size_t sent = 0;
    while (sent < input.size()) {
      ssize_t n = ::send(fd->get(), input.data() + sent, input.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    net::LineFramer framer(size_t{1} << 20);
    std::vector<std::string> lines;
    char buf[1 << 16];
    while (lines.size() < size_t{kRequests}) {
      ssize_t n = ::recv(fd->get(), buf, sizeof(buf), 0);
      if (n <= 0) break;
      framer.Feed(buf, static_cast<size_t>(n), &lines);
    }
    if (sent < input.size() || lines.size() < size_t{kRequests}) {
      state.SkipWithError("tcp stream truncated");
      failed = true;
      break;
    }
    benchmark::DoNotOptimize(lines.data());
  }
  transport.RequestShutdown();
  serve_thread.join();
  // Only the deterministic thread count is exported (bench_diff gates every
  // extra numeric column); throughput lives in median_ms — 500 requests per
  // iteration, same convention as BM_ServeMixedStream.
  if (!failed) state.counters["threads"] = threads;
}
BENCHMARK(BM_ServeTcpThroughput)->Arg(1)->Arg(4)->UseRealTime();

}  // namespace
}  // namespace rpqi
