// ABL bench: design ablations called out in DESIGN.md.
//   1. A_ODA emptiness: pure on-the-fly flat product (the paper's PSPACE
//      procedure, part_materialize_budget = 0) vs the fold-and-minimize
//      strategy (materialize each component, Hopcroft-minimize, pairwise
//      product) — same answers, very different constants.
//   2. Rewriting membership: deciding e-words one at a time on the fly
//      (IsWordInMaximalRewriting) vs materializing the full rewriting DFA
//      once and running words through it.

#include <benchmark/benchmark.h>

#include "answer/oda.h"
#include "regex/parser.h"
#include "rewrite/rewriter.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"

#include "bench_main.h"

namespace rpqi {
namespace {

AnsweringInstance SmallInstance(SignedAlphabet* alphabet) {
  alphabet->AddRelation("p");
  AnsweringInstance instance;
  instance.num_objects = 2;
  instance.query = MustCompileRegex(MustParseRegex("p p"), *alphabet);
  View view;
  view.definition = MustCompileRegex(MustParseRegex("p"), *alphabet);
  view.extension = {{0, 1}};
  view.assumption = ViewAssumption::kSound;
  instance.views.push_back(std::move(view));
  return instance;
}

void BM_OdaStrategy(benchmark::State& state, bool fold_and_minimize) {
  SignedAlphabet alphabet;
  AnsweringInstance instance = SmallInstance(&alphabet);
  OdaOptions options;
  options.part_materialize_budget =
      fold_and_minimize ? (int64_t{1} << 22) : 0;
  // (0,1) is not certain (the p p path may bypass object 1): witness search.
  bool certain = true;
  int64_t states = 0;
  int64_t pruned = 0;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<OdaResult> result = CertainAnswerOda(instance, 0, 1, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    certain = result->certain;
    states = result->states_explored;
    pruned = result->states_pruned;
  }
  state.counters["certain"] = certain;
  state.counters["states_explored"] = static_cast<double>(states);
  state.counters["states_pruned"] = static_cast<double>(pruned);
}

void BM_OdaStrategyExhaustive(benchmark::State& state, bool fold_and_minimize) {
  // A chain of promised edges and the query walking it: (0,2) is certain, so
  // the check must exhaust the counterexample space — the regime where
  // folding pays off and the flat on-the-fly product degrades (the flat
  // reachable space here is ~10^6 states; folded, a few hundred).
  SignedAlphabet alphabet;
  alphabet.AddRelation("p");
  AnsweringInstance instance;
  instance.num_objects = 3;
  instance.query = MustCompileRegex(MustParseRegex("p p"), alphabet);
  View view;
  view.definition = MustCompileRegex(MustParseRegex("p"), alphabet);
  view.extension = {{0, 1}, {1, 2}};
  view.assumption = ViewAssumption::kSound;
  instance.views.push_back(std::move(view));
  OdaOptions options;
  options.part_materialize_budget =
      fold_and_minimize ? (int64_t{1} << 22) : 0;
  options.max_states = int64_t{1} << 23;
  bool certain = false;
  int64_t states = 0;
  int64_t pruned = 0;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<OdaResult> result = CertainAnswerOda(instance, 0, 2, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    certain = result->certain;  // true: the chain exists in every model
    states = result->states_explored;
    pruned = result->states_pruned;
  }
  state.counters["certain"] = certain;
  state.counters["states_explored"] = static_cast<double>(states);
  state.counters["states_pruned"] = static_cast<double>(pruned);
}

void BM_RewritingMembership(benchmark::State& state, bool materialize) {
  SignedAlphabet alphabet;
  alphabet.AddRelation("a");
  alphabet.AddRelation("b");
  Nfa query =
      MustCompileRegex(MustParseRegex("(a | b)* a (a | b)"), alphabet);
  std::vector<Nfa> views = {MustCompileRegex(MustParseRegex("a"), alphabet),
                            MustCompileRegex(MustParseRegex("b"), alphabet)};
  // 16 probe words of length 4 over the 4 signed view symbols.
  std::vector<std::vector<int>> probes;
  for (int i = 0; i < 16; ++i) {
    probes.push_back({(i >> 0) & 3, (i >> 2) & 3, 0, 2});
  }
  if (materialize) {
    StatusOr<MaximalRewriting> rewriting =
        ComputeMaximalRewriting(query, views);
    if (!rewriting.ok()) {
      state.SkipWithError(rewriting.status().ToString().c_str());
      return;
    }
    ScopedMetricsCounters metrics(state);
    for (auto _ : state) {
      int hits = 0;
      for (const auto& word : probes) {
        hits += rewriting->dfa.Accepts(word) ? 1 : 0;
      }
      benchmark::DoNotOptimize(hits);
    }
  } else {
    ScopedMetricsCounters metrics(state);
    for (auto _ : state) {
      int hits = 0;
      for (const auto& word : probes) {
        hits += IsWordInMaximalRewriting(query, views, word) ? 1 : 0;
      }
      benchmark::DoNotOptimize(hits);
    }
  }
}

BENCHMARK_CAPTURE(BM_OdaStrategy, fold_minimize, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OdaStrategy, pure_on_the_fly, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OdaStrategyExhaustive, fold_minimize, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OdaStrategyExhaustive, pure_on_the_fly, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RewritingMembership, on_the_fly_per_word, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RewritingMembership, materialized_dfa, true)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rpqi
