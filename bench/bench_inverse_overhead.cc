// INV bench: the paper's headline claim — adding the inverse operator does
// not increase the complexity of view-based query processing. Three series:
//   1. rewriting: matched RPQ vs RPQI workloads of equal size through the
//      two-way pipeline;
//   2. rewriting: the two-way pipeline vs the one-way baseline of [10] on
//      identical inverse-free inputs (the price of generality);
//   3. answering (CDA): matched RPQ vs RPQI instances.

#include <benchmark/benchmark.h>

#include <random>

#include "answer/cda.h"
#include "regex/parser.h"
#include "rewrite/baseline_rpq.h"
#include "rewrite/rewriter.h"
#include "rpq/compile.h"
#include "workload/regex_gen.h"

#include "bench_main.h"

namespace rpqi {
namespace {

struct Workload {
  SignedAlphabet alphabet;
  Nfa query{0};
  std::vector<Nfa> views;
};

/// Matched chain workloads: the query walks a length-k chain of a-steps —
/// forward for the RPQ variant, alternating forward/backward for the RPQI
/// variant — and the views expose the two-step building blocks, so the
/// rewriting is nonempty in both variants and exercises the same pipeline
/// depth. `inverse_probability > 0` selects the RPQI variant.
Workload MakeWorkload(int k, double inverse_probability, uint64_t seed) {
  (void)seed;
  Workload workload;
  workload.alphabet.AddRelation("a");
  workload.alphabet.AddRelation("b");
  bool with_inverse = inverse_probability > 0;
  std::string step = with_inverse ? "a b^- " : "a b ";
  std::string query_text;
  for (int i = 0; i < k; ++i) query_text += step;
  workload.query =
      MustCompileRegex(MustParseRegex(query_text), workload.alphabet);
  workload.views = {
      MustCompileRegex(MustParseRegex(step), workload.alphabet),
      MustCompileRegex(MustParseRegex("a"), workload.alphabet)};
  return workload;
}

void BM_RewriteRpqVsRpqi(benchmark::State& state, double inverse_probability) {
  Workload workload = MakeWorkload(static_cast<int>(state.range(0)),
                                   inverse_probability, 99);
  RewritingOptions options;
  options.max_product_states = int64_t{1} << 22;
  options.max_subset_states = int64_t{1} << 22;
  int rewriting_states = 0;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<MaximalRewriting> rewriting =
        ComputeMaximalRewriting(workload.query, workload.views, options);
    if (!rewriting.ok()) {
      state.SkipWithError(rewriting.status().ToString().c_str());
      return;
    }
    rewriting_states = rewriting->stats.rewriting_states;
  }
  state.counters["rewriting_states"] = rewriting_states;
}

void BM_TwoWayVsBaselineOnRpq(benchmark::State& state, bool use_baseline) {
  Workload workload =
      MakeWorkload(static_cast<int>(state.range(0)), 0.0, 1717);
  RewritingOptions options;
  options.max_product_states = int64_t{1} << 22;
  options.max_subset_states = int64_t{1} << 22;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<MaximalRewriting> rewriting =
        use_baseline
            ? ComputeBaselineRpqRewriting(workload.query, workload.views,
                                          options)
            : ComputeMaximalRewriting(workload.query, workload.views, options);
    if (!rewriting.ok()) {
      state.SkipWithError(rewriting.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rewriting->empty);
  }
}

void BM_AnswerCdaRpqVsRpqi(benchmark::State& state,
                           double inverse_probability) {
  Workload workload = MakeWorkload(2, inverse_probability, 2121);
  AnsweringInstance instance;
  instance.num_objects = static_cast<int>(state.range(0));
  instance.query = workload.query;
  View view;
  view.definition = workload.views[0];
  for (int i = 0; i + 1 < instance.num_objects; ++i) {
    view.extension.push_back({i, i + 1});
  }
  view.assumption = ViewAssumption::kSound;
  instance.views.push_back(std::move(view));
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<CdaResult> result = CertainAnswerCda(instance, 0, 1);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->certain);
  }
}

BENCHMARK_CAPTURE(BM_RewriteRpqVsRpqi, rpq_no_inverse, 0.0)
    ->DenseRange(3, 9, 2)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RewriteRpqVsRpqi, rpqi_with_inverse, 0.4)
    ->DenseRange(3, 9, 2)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TwoWayVsBaselineOnRpq, two_way_pipeline, false)
    ->DenseRange(3, 9, 2)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TwoWayVsBaselineOnRpq, one_way_baseline, true)
    ->DenseRange(3, 9, 2)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AnswerCdaRpqVsRpqi, rpq_no_inverse, 0.0)
    ->DenseRange(2, 4, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AnswerCdaRpqVsRpqi, rpqi_with_inverse, 0.4)
    ->DenseRange(2, 4, 1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rpqi
