// THM8 bench: nonemptiness of the maximal rewriting (EXPSPACE-complete,
// Theorem 8), comparing the fully on-the-fly decision (lazy image-subset over
// the lazy A2∩A3 product; nothing materialized) with deciding via the fully
// materialized rewriting. Series: nonempty instances (early witness) vs empty
// instances (full-space proof) as the query grows.

#include <benchmark/benchmark.h>

#include <string>

#include "regex/parser.h"
#include "rewrite/rewriter.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"

#include "bench_main.h"

namespace rpqi {
namespace {

struct Instance {
  SignedAlphabet alphabet;
  Nfa query{0};
  std::vector<Nfa> views;
};

/// Query a^k with view a^m: the maximal rewriting is {v^(k/m)} when m | k and
/// empty otherwise (inverse view symbols cannot help — a backwards detour
/// strands the directed evaluation). m = k gives the nonempty series, m = k+1
/// the empty series, at matching input sizes.
Instance Divisibility(int k, bool nonempty) {
  Instance instance;
  instance.alphabet.AddRelation("a");
  std::string query_text;
  for (int i = 0; i < k; ++i) query_text += "a ";
  instance.query =
      MustCompileRegex(MustParseRegex(query_text), instance.alphabet);
  int view_len = nonempty ? k : k + 1;
  std::string view_text;
  for (int i = 0; i < view_len; ++i) view_text += "a ";
  instance.views.push_back(
      MustCompileRegex(MustParseRegex(view_text), instance.alphabet));
  return instance;
}

void BM_OnTheFly(benchmark::State& state, bool nonempty) {
  Instance instance = Divisibility(static_cast<int>(state.range(0)), nonempty);
  RewritingOptions options;
  options.max_subset_states = int64_t{1} << 22;
  bool result = false;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<bool> check =
        MaximalRewritingNonEmpty(instance.query, instance.views, options);
    if (!check.ok()) {
      state.SkipWithError(check.status().ToString().c_str());
      return;
    }
    result = *check;
  }
  state.counters["nonempty"] = result;
}

void BM_ViaMaterialization(benchmark::State& state, bool nonempty) {
  Instance instance = Divisibility(static_cast<int>(state.range(0)), nonempty);
  RewritingOptions options;
  options.max_product_states = int64_t{1} << 22;
  options.max_subset_states = int64_t{1} << 22;
  bool result = false;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<MaximalRewriting> rewriting =
        ComputeMaximalRewriting(instance.query, instance.views, options);
    if (!rewriting.ok()) {
      state.SkipWithError(rewriting.status().ToString().c_str());
      return;
    }
    result = !rewriting->empty;
  }
  state.counters["nonempty"] = result;
}

BENCHMARK_CAPTURE(BM_OnTheFly, nonempty_family, true)
    ->DenseRange(1, 6, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OnTheFly, empty_family, false)
    ->DenseRange(1, 6, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ViaMaterialization, nonempty_family, true)
    ->DenseRange(1, 6, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ViaMaterialization, empty_family, false)
    ->DenseRange(1, 6, 1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rpqi
