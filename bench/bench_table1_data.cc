// T1-data bench: Table 1, data-complexity column. Fixed query and view
// definitions; the view extensions (and object domain) grow. One series per
// table row: {CDA, ODA} × {all sound, all exact, arbitrary}. Each series
// reports the decision time for a certain pair (requires exhausting the
// counterexample space — the co-NP direction) and for a non-certain pair
// (a witness terminates the search early).

#include <benchmark/benchmark.h>

#include "answer/cda.h"
#include "answer/oda.h"
#include "regex/parser.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"

#include "bench_main.h"

namespace rpqi {
namespace {

enum class Mix { kAllSound, kAllExact, kArbitrary };

/// Chain instance: objects 0..n-1, one view with def p and extension
/// {(i,i+1)}, query p^(n-1); (0, n-1) is certain, (n-1, 0) is not.
AnsweringInstance ChainInstance(int num_objects, Mix mix,
                                SignedAlphabet* alphabet) {
  alphabet->AddRelation("p");
  AnsweringInstance instance;
  instance.num_objects = num_objects;
  std::string query_text;
  for (int i = 0; i + 1 < num_objects; ++i) query_text += "p ";
  instance.query = MustCompileRegex(MustParseRegex(query_text), *alphabet);

  View view;
  view.definition = MustCompileRegex(MustParseRegex("p"), *alphabet);
  for (int i = 0; i + 1 < num_objects; ++i) view.extension.push_back({i, i + 1});
  switch (mix) {
    case Mix::kAllSound:
      view.assumption = ViewAssumption::kSound;
      break;
    case Mix::kAllExact:
      view.assumption = ViewAssumption::kExact;
      break;
    case Mix::kArbitrary: {
      view.assumption = ViewAssumption::kSound;
      // Add a complete view alongside (the "arbitrary" row mixes SVA/CVA/EVA).
      View complete;
      complete.definition = MustCompileRegex(MustParseRegex("p p"), *alphabet);
      for (int i = 0; i + 2 < num_objects; ++i) {
        complete.extension.push_back({i, i + 2});
      }
      complete.assumption = ViewAssumption::kComplete;
      instance.views.push_back(std::move(complete));
      break;
    }
  }
  instance.views.push_back(std::move(view));
  return instance;
}

void BM_Cda(benchmark::State& state, Mix mix, bool certain_pair) {
  SignedAlphabet alphabet;
  int n = static_cast<int>(state.range(0));
  AnsweringInstance instance = ChainInstance(n, mix, &alphabet);
  int c = certain_pair ? 0 : n - 1;
  int d = certain_pair ? n - 1 : 0;
  bool certain = false;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<CdaResult> result = CertainAnswerCda(instance, c, d);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    certain = result->certain;
  }
  state.counters["objects"] = n;
  state.counters["ext_pairs"] = n - 1;
  state.counters["certain"] = certain;
}

void BM_Oda(benchmark::State& state, Mix mix, bool certain_pair) {
  SignedAlphabet alphabet;
  int n = static_cast<int>(state.range(0));
  AnsweringInstance instance = ChainInstance(n, mix, &alphabet);
  int c = certain_pair ? 0 : n - 1;
  int d = certain_pair ? n - 1 : 0;
  bool certain = false;
  int64_t states = 0;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<OdaResult> result = CertainAnswerOda(instance, c, d);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    certain = result->certain;
    states = result->states_explored;
  }
  state.counters["objects"] = n;
  state.counters["certain"] = certain;
  state.counters["states_explored"] = static_cast<double>(states);
}

BENCHMARK_CAPTURE(BM_Cda, sound_certain, Mix::kAllSound, true)
    ->DenseRange(2, 5, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Cda, sound_refuted, Mix::kAllSound, false)
    ->DenseRange(2, 5, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Cda, exact_certain, Mix::kAllExact, true)
    ->DenseRange(2, 5, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Cda, exact_refuted, Mix::kAllExact, false)
    ->DenseRange(2, 5, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Cda, arbitrary_certain, Mix::kArbitrary, true)
    ->DenseRange(2, 4, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Cda, arbitrary_refuted, Mix::kArbitrary, false)
    ->DenseRange(2, 4, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Oda, sound_certain, Mix::kAllSound, true)
    ->DenseRange(2, 3, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Oda, sound_refuted, Mix::kAllSound, false)
    ->DenseRange(2, 3, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Oda, exact_certain, Mix::kAllExact, true)
    ->DenseRange(2, 3, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Oda, exact_refuted, Mix::kAllExact, false)
    ->DenseRange(2, 3, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Oda, arbitrary_certain, Mix::kArbitrary, true)
    ->Arg(2)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Oda, arbitrary_refuted, Mix::kArbitrary, false)
    ->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rpqi
