// EVAL substrate bench: throughput of the ans(E,B) evaluator (Section 2
// semantics) as graph size, density, and query shape vary. Every result in
// the paper is defined relative to this oracle, so its scaling is reported
// first in EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include <random>

#include "automata/flat.h"
#include "graphdb/eval.h"
#include "regex/parser.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"
#include "workload/graph_gen.h"

#include "bench_main.h"

namespace rpqi {
namespace {

Nfa MakeQuery(const std::string& text, SignedAlphabet* alphabet) {
  alphabet->AddRelation("r0");
  alphabet->AddRelation("r1");
  return MustCompileRegex(MustParseRegex(text), *alphabet);
}

void BM_EvalAllPairs(benchmark::State& state, const std::string& query_text) {
  std::mt19937_64 rng(42);
  RandomGraphOptions options;
  options.num_nodes = static_cast<int>(state.range(0));
  options.num_relations = 2;
  options.average_out_degree = 3.0;
  GraphDb db = RandomGraph(rng, options);
  SignedAlphabet alphabet;
  Nfa query = MakeQuery(query_text, &alphabet);

  int64_t answers = 0;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    answers = static_cast<int64_t>(EvalRpqiAllPairs(db, query).size());
    benchmark::DoNotOptimize(answers);
  }
  state.counters["nodes"] = options.num_nodes;
  state.counters["edges"] = db.NumEdges();
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_EvalSingleSource(benchmark::State& state,
                         const std::string& query_text) {
  std::mt19937_64 rng(42);
  RandomGraphOptions options;
  options.num_nodes = static_cast<int>(state.range(0));
  options.num_relations = 2;
  options.average_out_degree = 3.0;
  GraphDb db = RandomGraph(rng, options);
  SignedAlphabet alphabet;
  Nfa query = MakeQuery(query_text, &alphabet);

  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    Bitset reachable = EvalRpqiFrom(db, query, 0);
    benchmark::DoNotOptimize(reachable.Count());
  }
  state.counters["nodes"] = options.num_nodes;
}

// Pure BFS cost: the flat plan is compiled once outside the loop, so every
// iteration is only the product BFS over the contiguous edge arrays — the
// serving layer's steady state, where CachedPlan already holds the FlatNfa.
// The gap to BM_EvalAllPairs (which includes the per-call CompileEvalPlan)
// is the per-query setup cost the plan cache amortizes away.
void BM_EvalAllPairsPrecompiled(benchmark::State& state,
                                const std::string& query_text) {
  std::mt19937_64 rng(42);
  RandomGraphOptions options;
  options.num_nodes = static_cast<int>(state.range(0));
  options.num_relations = 2;
  options.average_out_degree = 3.0;
  GraphDb db = RandomGraph(rng, options);
  SignedAlphabet alphabet;
  Nfa query = MakeQuery(query_text, &alphabet);
  const FlatNfa plan = CompileFlat(query);

  int64_t answers = 0;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<std::vector<std::pair<int, int>>> result =
        EvalRpqiAllPairsWithBudget(db, plan, nullptr);
    if (!result.ok()) {
      state.SkipWithError("eval failed");
      break;
    }
    answers = static_cast<int64_t>(result->size());
    benchmark::DoNotOptimize(answers);
  }
  state.counters["nodes"] = options.num_nodes;
  state.counters["edges"] = db.NumEdges();
  state.counters["answers"] = static_cast<double>(answers);
}

// Label-skew scenario: 16 relations at ~128 average out-degree, querying a
// single label. The filtered row scan touches all ~128 out-edges per visited
// node and keeps ~8; the CSR label index (DESIGN.md §15) jumps straight to
// the per-(node,relation) span. The csr/filtered_scan median ratio is the
// headline number for the columnar snapshot work in EXPERIMENTS.md.
void BM_EvalLabelSkew(benchmark::State& state, bool use_csr) {
  std::mt19937_64 rng(42);
  RandomGraphOptions options;
  options.num_nodes = static_cast<int>(state.range(0));
  options.num_relations = 16;
  options.average_out_degree = 128.0;
  GraphDb db = RandomGraph(rng, options);
  SignedAlphabet alphabet;
  for (int r = 0; r < options.num_relations; ++r) {
    alphabet.AddRelation("r" + std::to_string(r));
  }
  Nfa query = MustCompileRegex(MustParseRegex("r0*"), alphabet);
  if (use_csr) db.BuildLabelIndex(alphabet.NumRelations());

  int64_t answers = 0;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    answers = static_cast<int64_t>(EvalRpqiAllPairs(db, query).size());
    benchmark::DoNotOptimize(answers);
  }
  state.counters["nodes"] = options.num_nodes;
  state.counters["edges"] = db.NumEdges();
  state.counters["answers"] = static_cast<double>(answers);
}

BENCHMARK_CAPTURE(BM_EvalAllPairs, forward_star, std::string("r0*"))
    ->Arg(32)->Arg(128)->Arg(512)->Arg(2048);
BENCHMARK_CAPTURE(BM_EvalAllPairs, with_inverse,
                  std::string("(r0 r1^-)* r0"))
    ->Arg(32)->Arg(128)->Arg(512)->Arg(2048);
BENCHMARK_CAPTURE(BM_EvalAllPairs, two_way_closure,
                  std::string("(r0 | r0^- | r1)*"))
    ->Arg(32)->Arg(128)->Arg(512);
BENCHMARK_CAPTURE(BM_EvalAllPairsPrecompiled, forward_star,
                  std::string("r0*"))
    ->Arg(32)->Arg(128)->Arg(512)->Arg(2048);
BENCHMARK_CAPTURE(BM_EvalAllPairsPrecompiled, with_inverse,
                  std::string("(r0 r1^-)* r0"))
    ->Arg(32)->Arg(128)->Arg(512)->Arg(2048);
BENCHMARK_CAPTURE(BM_EvalSingleSource, forward_star, std::string("r0*"))
    ->Arg(1024)->Arg(4096)->Arg(16384);
BENCHMARK_CAPTURE(BM_EvalSingleSource, with_inverse,
                  std::string("(r0 r1^-)* r0"))
    ->Arg(1024)->Arg(4096)->Arg(16384);
BENCHMARK_CAPTURE(BM_EvalLabelSkew, filtered_scan, false)
    ->Arg(128)->Arg(512);
BENCHMARK_CAPTURE(BM_EvalLabelSkew, csr, true)
    ->Arg(128)->Arg(512);

}  // namespace
}  // namespace rpqi
