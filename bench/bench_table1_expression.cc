// T1-expr bench: Table 1, expression-complexity column — co-NP under CDA,
// PSPACE under ODA. Extensions stay fixed and tiny (two objects, one pair);
// the query (and symmetrically the view definition) grows. The expected
// shape: CDA times stay flat in the expression (the search space is the
// fixed edge set), while ODA times grow with the expression (the automata —
// and their translations — do).

#include <benchmark/benchmark.h>

#include <string>

#include "answer/cda.h"
#include "answer/oda.h"
#include "regex/parser.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"

#include "bench_main.h"

namespace rpqi {
namespace {

/// Two objects, one sound view pair (0,1) with definition p^k. The certain
/// variant queries p^k itself; the refuted variant appends a relation q that
/// no view promises, so (0,1) is never certain and a counterexample is found
/// quickly — separating witness-search cost from exhaustion cost.
AnsweringInstance PowerInstance(int k, bool certain_variant,
                                SignedAlphabet* alphabet,
                                ViewAssumption assumption) {
  alphabet->AddRelation("p");
  alphabet->AddRelation("q");
  AnsweringInstance instance;
  instance.num_objects = 2;
  std::string def_text, query_text;
  for (int i = 0; i < k; ++i) def_text += "p ";
  query_text = def_text;
  if (!certain_variant) query_text += "q ";
  instance.query = MustCompileRegex(MustParseRegex(query_text), *alphabet);
  View view;
  view.definition = MustCompileRegex(MustParseRegex(def_text), *alphabet);
  view.extension = {{0, 1}};
  view.assumption = assumption;
  instance.views.push_back(std::move(view));
  return instance;
}

void BM_CdaExpression(benchmark::State& state, bool certain_variant,
                      ViewAssumption assumption) {
  SignedAlphabet alphabet;
  AnsweringInstance instance = PowerInstance(
      static_cast<int>(state.range(0)), certain_variant, &alphabet, assumption);
  bool certain = false;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<CdaResult> result = CertainAnswerCda(instance, 0, 1);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    certain = result->certain;
  }
  state.counters["k"] = static_cast<double>(state.range(0));
  state.counters["certain"] = certain;
}

void BM_OdaExpression(benchmark::State& state, bool certain_variant,
                      ViewAssumption assumption) {
  SignedAlphabet alphabet;
  AnsweringInstance instance = PowerInstance(
      static_cast<int>(state.range(0)), certain_variant, &alphabet, assumption);
  bool certain = false;
  int64_t states = 0;
  int64_t pruned = 0;
  int64_t antichain = 0;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<OdaResult> result = CertainAnswerOda(instance, 0, 1);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    certain = result->certain;
    states = result->states_explored;
    pruned = result->states_pruned;
    antichain = result->antichain_size;
  }
  state.counters["k"] = static_cast<double>(state.range(0));
  state.counters["certain"] = certain;
  state.counters["states_explored"] = static_cast<double>(states);
  state.counters["states_pruned"] = static_cast<double>(pruned);
  state.counters["antichain_size"] = static_cast<double>(antichain);
}

BENCHMARK_CAPTURE(BM_CdaExpression, sound_certain, true,
                  ViewAssumption::kSound)
    ->DenseRange(1, 6, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CdaExpression, sound_refuted, false,
                  ViewAssumption::kSound)
    ->DenseRange(1, 6, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CdaExpression, exact_certain, true,
                  ViewAssumption::kExact)
    ->DenseRange(1, 6, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OdaExpression, sound_certain, true,
                  ViewAssumption::kSound)
    ->DenseRange(1, 3, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OdaExpression, sound_refuted, false,
                  ViewAssumption::kSound)
    ->DenseRange(1, 3, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OdaExpression, exact_certain, true,
                  ViewAssumption::kExact)
    ->DenseRange(1, 3, 1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rpqi
