// 2WAY bench: cost of the two-way → one-way translations that power every
// construction in the paper (Section 3 cites the classical 2^O(n log n) /
// 2^O(n) bounds). Measures (a) the deterministic table translation used by
// the pipelines — reachable states and per-word stepping cost — and (b) the
// eager Vardi pair-of-sets complement, as automaton size grows.

#include <benchmark/benchmark.h>

#include <random>

#include "automata/lazy.h"
#include "automata/ops.h"
#include "automata/pair_complement.h"
#include "automata/random.h"
#include "automata/table_dfa.h"
#include "automata/two_way.h"

#include "bench_main.h"

namespace rpqi {
namespace {

TwoWayNfa MakeAutomaton(int num_states, uint64_t seed) {
  std::mt19937_64 rng(seed);
  RandomAutomatonOptions options;
  options.num_states = num_states;
  options.num_symbols = 2;
  options.transition_density = 1.3;
  return RandomTwoWayNfa(rng, options);
}

void BM_DirectSimulation(benchmark::State& state) {
  TwoWayNfa automaton = MakeAutomaton(static_cast<int>(state.range(0)), 1);
  std::mt19937_64 rng(2);
  std::vector<int> word = RandomWord(rng, 2, 64);
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulateTwoWay(automaton, word));
  }
  state.counters["two_way_states"] = automaton.NumStates();
}

void BM_TableTranslationStepping(benchmark::State& state) {
  TwoWayNfa automaton = MakeAutomaton(static_cast<int>(state.range(0)), 1);
  std::mt19937_64 rng(3);
  std::vector<int> word = RandomWord(rng, 2, 64);
  int64_t discovered = 0;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    LazyTableDfa table(automaton);
    int s = table.StartState();
    for (int symbol : word) s = table.Step(s, symbol);
    benchmark::DoNotOptimize(table.IsAccepting(s));
    discovered = table.NumDiscoveredStates();
  }
  state.counters["two_way_states"] = automaton.NumStates();
  state.counters["table_states_discovered"] = static_cast<double>(discovered);
}

void BM_TableReachableStates(benchmark::State& state) {
  // Exhaustive reachable-state count of the table DFA (complement flavour):
  // the empirical analogue of the 2^O(n²) worst case, usually far smaller.
  TwoWayNfa automaton = MakeAutomaton(static_cast<int>(state.range(0)), 1);
  int64_t states = 0;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    LazyTableDfa table(automaton, /*complement=*/true);
    StatusOr<Dfa> dfa = MaterializeLazyDfa(&table, int64_t{1} << 18);
    states = dfa.ok() ? dfa->NumStates() : -1;
    benchmark::DoNotOptimize(states);
  }
  state.counters["two_way_states"] = automaton.NumStates();
  state.counters["one_way_states"] = static_cast<double>(states);
}

void BM_VardiComplement(benchmark::State& state) {
  TwoWayNfa automaton = MakeAutomaton(static_cast<int>(state.range(0)), 1);
  int64_t states = 0;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<Nfa> complement = VardiComplement(automaton, int64_t{1} << 20);
    states = complement.ok() ? complement->NumStates() : -1;
    benchmark::DoNotOptimize(states);
  }
  state.counters["two_way_states"] = automaton.NumStates();
  state.counters["complement_states"] = static_cast<double>(states);
}

BENCHMARK(BM_DirectSimulation)->DenseRange(2, 12, 2);
BENCHMARK(BM_TableTranslationStepping)->DenseRange(2, 12, 2);
BENCHMARK(BM_TableReachableStates)->DenseRange(2, 8, 1);
BENCHMARK(BM_VardiComplement)->DenseRange(2, 7, 1);

}  // namespace
}  // namespace rpqi
