// T1-comb bench: Table 1, combined-complexity column — joint scaling in the
// expressions AND the extensions (co-NP under CDA, PSPACE under ODA). A
// (k × n) grid: query/view p^k over an n-object chain extension.

#include <benchmark/benchmark.h>

#include <string>

#include "answer/cda.h"
#include "answer/oda.h"
#include "regex/parser.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"

#include "bench_main.h"

namespace rpqi {
namespace {

AnsweringInstance GridInstance(int k, int n, SignedAlphabet* alphabet) {
  alphabet->AddRelation("p");
  AnsweringInstance instance;
  instance.num_objects = n;
  std::string def_text;
  for (int i = 0; i < k; ++i) def_text += "p ";
  // Query: k·(n−1) p-steps — certain for the pair (0, n−1).
  std::string query_text;
  for (int i = 0; i < k * (n - 1); ++i) query_text += "p ";
  instance.query = MustCompileRegex(MustParseRegex(query_text), *alphabet);
  View view;
  view.definition = MustCompileRegex(MustParseRegex(def_text), *alphabet);
  for (int i = 0; i + 1 < n; ++i) view.extension.push_back({i, i + 1});
  view.assumption = ViewAssumption::kSound;
  instance.views.push_back(std::move(view));
  return instance;
}

void BM_CdaCombined(benchmark::State& state) {
  SignedAlphabet alphabet;
  int k = static_cast<int>(state.range(0));
  int n = static_cast<int>(state.range(1));
  AnsweringInstance instance = GridInstance(k, n, &alphabet);
  bool certain = false;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<CdaResult> result = CertainAnswerCda(instance, 0, n - 1);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    certain = result->certain;
  }
  state.counters["k"] = k;
  state.counters["objects"] = n;
  state.counters["certain"] = certain;
}

void BM_OdaCombined(benchmark::State& state) {
  SignedAlphabet alphabet;
  int k = static_cast<int>(state.range(0));
  int n = static_cast<int>(state.range(1));
  AnsweringInstance instance = GridInstance(k, n, &alphabet);
  bool certain = false;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<OdaResult> result = CertainAnswerOda(instance, 0, n - 1);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    certain = result->certain;
  }
  state.counters["k"] = k;
  state.counters["objects"] = n;
  state.counters["certain"] = certain;
}

BENCHMARK(BM_CdaCombined)
    ->ArgsProduct({{1, 2, 3}, {2, 3, 4}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OdaCombined)
    ->Args({1, 2})->Args({2, 2})->Args({1, 3})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rpqi
