// THM9 bench: exactness of the maximal rewriting (2EXPSPACE-complete,
// Theorem 9). Measures the containment check query ⊑ expand(R) on families
// where the exact rewriting exists (decomposable queries) and where it does
// not (coverage gaps), as the query grows. Also reports the expansion size.

#include <benchmark/benchmark.h>

#include <string>

#include "regex/parser.h"
#include "rewrite/exactness.h"
#include "rewrite/expansion.h"
#include "rewrite/rewriter.h"
#include "rpq/alphabet.h"
#include "rpq/compile.h"

#include "bench_main.h"

namespace rpqi {
namespace {

struct Instance {
  SignedAlphabet alphabet;
  Nfa query{0};
  std::vector<Nfa> views;
};

/// Query (up⁻)^k (c | d): with views {up⁻, c | d} the rewriting is exact;
/// with only {up⁻, c} it is maximal but not exact (d-branch uncovered).
Instance Visibility(int k, bool exact) {
  Instance instance;
  instance.alphabet.AddRelation("up");
  instance.alphabet.AddRelation("c");
  instance.alphabet.AddRelation("d");
  std::string query_text;
  for (int i = 0; i < k; ++i) query_text += "up^- ";
  query_text += "(c | d)";
  instance.query =
      MustCompileRegex(MustParseRegex(query_text), instance.alphabet);
  instance.views.push_back(
      MustCompileRegex(MustParseRegex("up^-"), instance.alphabet));
  instance.views.push_back(MustCompileRegex(
      MustParseRegex(exact ? "c | d" : "c"), instance.alphabet));
  return instance;
}

void BM_ExactnessCheck(benchmark::State& state, bool exact) {
  Instance instance = Visibility(static_cast<int>(state.range(0)), exact);
  StatusOr<MaximalRewriting> rewriting =
      ComputeMaximalRewriting(instance.query, instance.views);
  if (!rewriting.ok()) {
    state.SkipWithError(rewriting.status().ToString().c_str());
    return;
  }
  bool result = false;
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    result = IsExactRewriting(instance.query, instance.views, rewriting->dfa);
    benchmark::DoNotOptimize(result);
  }
  Nfa expansion = ExpandRewriting(rewriting->dfa, instance.views);
  state.counters["is_exact"] = result;
  state.counters["rewriting_states"] = rewriting->dfa.NumStates();
  state.counters["expansion_states"] = expansion.NumStates();
}

void BM_FullPipelineWithExactness(benchmark::State& state) {
  Instance instance = Visibility(static_cast<int>(state.range(0)), true);
  ScopedMetricsCounters metrics(state);
  for (auto _ : state) {
    StatusOr<MaximalRewriting> rewriting =
        ComputeMaximalRewriting(instance.query, instance.views);
    if (!rewriting.ok()) {
      state.SkipWithError(rewriting.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(
        IsExactRewriting(instance.query, instance.views, rewriting->dfa));
  }
}

BENCHMARK_CAPTURE(BM_ExactnessCheck, exact_family, true)
    ->DenseRange(1, 6, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExactnessCheck, inexact_family, false)
    ->DenseRange(1, 6, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullPipelineWithExactness)
    ->DenseRange(1, 5, 1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rpqi
