# Empty dependencies file for module_visibility.
# This may be replaced when dependencies are built.
