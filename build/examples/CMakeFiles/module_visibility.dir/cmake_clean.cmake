file(REMOVE_RECURSE
  "CMakeFiles/module_visibility.dir/module_visibility.cpp.o"
  "CMakeFiles/module_visibility.dir/module_visibility.cpp.o.d"
  "module_visibility"
  "module_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
