# Empty dependencies file for rpqi_automata.
# This may be replaced when dependencies are built.
