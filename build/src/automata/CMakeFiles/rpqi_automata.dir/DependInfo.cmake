
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/dfa.cc" "src/automata/CMakeFiles/rpqi_automata.dir/dfa.cc.o" "gcc" "src/automata/CMakeFiles/rpqi_automata.dir/dfa.cc.o.d"
  "/root/repo/src/automata/dot.cc" "src/automata/CMakeFiles/rpqi_automata.dir/dot.cc.o" "gcc" "src/automata/CMakeFiles/rpqi_automata.dir/dot.cc.o.d"
  "/root/repo/src/automata/lazy.cc" "src/automata/CMakeFiles/rpqi_automata.dir/lazy.cc.o" "gcc" "src/automata/CMakeFiles/rpqi_automata.dir/lazy.cc.o.d"
  "/root/repo/src/automata/ops.cc" "src/automata/CMakeFiles/rpqi_automata.dir/ops.cc.o" "gcc" "src/automata/CMakeFiles/rpqi_automata.dir/ops.cc.o.d"
  "/root/repo/src/automata/pair_complement.cc" "src/automata/CMakeFiles/rpqi_automata.dir/pair_complement.cc.o" "gcc" "src/automata/CMakeFiles/rpqi_automata.dir/pair_complement.cc.o.d"
  "/root/repo/src/automata/random.cc" "src/automata/CMakeFiles/rpqi_automata.dir/random.cc.o" "gcc" "src/automata/CMakeFiles/rpqi_automata.dir/random.cc.o.d"
  "/root/repo/src/automata/state_elim.cc" "src/automata/CMakeFiles/rpqi_automata.dir/state_elim.cc.o" "gcc" "src/automata/CMakeFiles/rpqi_automata.dir/state_elim.cc.o.d"
  "/root/repo/src/automata/table_dfa.cc" "src/automata/CMakeFiles/rpqi_automata.dir/table_dfa.cc.o" "gcc" "src/automata/CMakeFiles/rpqi_automata.dir/table_dfa.cc.o.d"
  "/root/repo/src/automata/two_way.cc" "src/automata/CMakeFiles/rpqi_automata.dir/two_way.cc.o" "gcc" "src/automata/CMakeFiles/rpqi_automata.dir/two_way.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/rpqi_base.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/rpqi_regex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
