file(REMOVE_RECURSE
  "CMakeFiles/rpqi_automata.dir/dfa.cc.o"
  "CMakeFiles/rpqi_automata.dir/dfa.cc.o.d"
  "CMakeFiles/rpqi_automata.dir/dot.cc.o"
  "CMakeFiles/rpqi_automata.dir/dot.cc.o.d"
  "CMakeFiles/rpqi_automata.dir/lazy.cc.o"
  "CMakeFiles/rpqi_automata.dir/lazy.cc.o.d"
  "CMakeFiles/rpqi_automata.dir/ops.cc.o"
  "CMakeFiles/rpqi_automata.dir/ops.cc.o.d"
  "CMakeFiles/rpqi_automata.dir/pair_complement.cc.o"
  "CMakeFiles/rpqi_automata.dir/pair_complement.cc.o.d"
  "CMakeFiles/rpqi_automata.dir/random.cc.o"
  "CMakeFiles/rpqi_automata.dir/random.cc.o.d"
  "CMakeFiles/rpqi_automata.dir/state_elim.cc.o"
  "CMakeFiles/rpqi_automata.dir/state_elim.cc.o.d"
  "CMakeFiles/rpqi_automata.dir/table_dfa.cc.o"
  "CMakeFiles/rpqi_automata.dir/table_dfa.cc.o.d"
  "CMakeFiles/rpqi_automata.dir/two_way.cc.o"
  "CMakeFiles/rpqi_automata.dir/two_way.cc.o.d"
  "librpqi_automata.a"
  "librpqi_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqi_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
