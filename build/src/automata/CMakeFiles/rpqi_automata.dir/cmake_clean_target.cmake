file(REMOVE_RECURSE
  "librpqi_automata.a"
)
