file(REMOVE_RECURSE
  "librpqi_crpq.a"
)
