# Empty compiler generated dependencies file for rpqi_crpq.
# This may be replaced when dependencies are built.
