# Empty dependencies file for rpqi_crpq.
# This may be replaced when dependencies are built.
