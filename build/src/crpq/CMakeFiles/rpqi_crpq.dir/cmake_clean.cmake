file(REMOVE_RECURSE
  "CMakeFiles/rpqi_crpq.dir/crpq.cc.o"
  "CMakeFiles/rpqi_crpq.dir/crpq.cc.o.d"
  "librpqi_crpq.a"
  "librpqi_crpq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqi_crpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
