file(REMOVE_RECURSE
  "CMakeFiles/rpqi_graphdb.dir/eval.cc.o"
  "CMakeFiles/rpqi_graphdb.dir/eval.cc.o.d"
  "CMakeFiles/rpqi_graphdb.dir/io.cc.o"
  "CMakeFiles/rpqi_graphdb.dir/io.cc.o.d"
  "CMakeFiles/rpqi_graphdb.dir/views.cc.o"
  "CMakeFiles/rpqi_graphdb.dir/views.cc.o.d"
  "librpqi_graphdb.a"
  "librpqi_graphdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqi_graphdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
