# Empty compiler generated dependencies file for rpqi_graphdb.
# This may be replaced when dependencies are built.
