file(REMOVE_RECURSE
  "librpqi_graphdb.a"
)
