file(REMOVE_RECURSE
  "librpqi_base.a"
)
