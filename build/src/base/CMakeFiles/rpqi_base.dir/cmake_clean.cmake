file(REMOVE_RECURSE
  "CMakeFiles/rpqi_base.dir/strings.cc.o"
  "CMakeFiles/rpqi_base.dir/strings.cc.o.d"
  "librpqi_base.a"
  "librpqi_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqi_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
