# Empty dependencies file for rpqi_base.
# This may be replaced when dependencies are built.
