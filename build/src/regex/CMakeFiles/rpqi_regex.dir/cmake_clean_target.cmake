file(REMOVE_RECURSE
  "librpqi_regex.a"
)
