# Empty compiler generated dependencies file for rpqi_regex.
# This may be replaced when dependencies are built.
