
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regex/ast.cc" "src/regex/CMakeFiles/rpqi_regex.dir/ast.cc.o" "gcc" "src/regex/CMakeFiles/rpqi_regex.dir/ast.cc.o.d"
  "/root/repo/src/regex/parser.cc" "src/regex/CMakeFiles/rpqi_regex.dir/parser.cc.o" "gcc" "src/regex/CMakeFiles/rpqi_regex.dir/parser.cc.o.d"
  "/root/repo/src/regex/printer.cc" "src/regex/CMakeFiles/rpqi_regex.dir/printer.cc.o" "gcc" "src/regex/CMakeFiles/rpqi_regex.dir/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/rpqi_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
