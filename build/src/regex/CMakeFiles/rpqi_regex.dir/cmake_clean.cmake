file(REMOVE_RECURSE
  "CMakeFiles/rpqi_regex.dir/ast.cc.o"
  "CMakeFiles/rpqi_regex.dir/ast.cc.o.d"
  "CMakeFiles/rpqi_regex.dir/parser.cc.o"
  "CMakeFiles/rpqi_regex.dir/parser.cc.o.d"
  "CMakeFiles/rpqi_regex.dir/printer.cc.o"
  "CMakeFiles/rpqi_regex.dir/printer.cc.o.d"
  "librpqi_regex.a"
  "librpqi_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqi_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
