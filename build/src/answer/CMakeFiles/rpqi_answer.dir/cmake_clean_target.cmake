file(REMOVE_RECURSE
  "librpqi_answer.a"
)
