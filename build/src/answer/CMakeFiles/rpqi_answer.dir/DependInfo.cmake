
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/answer/cda.cc" "src/answer/CMakeFiles/rpqi_answer.dir/cda.cc.o" "gcc" "src/answer/CMakeFiles/rpqi_answer.dir/cda.cc.o.d"
  "/root/repo/src/answer/certificates.cc" "src/answer/CMakeFiles/rpqi_answer.dir/certificates.cc.o" "gcc" "src/answer/CMakeFiles/rpqi_answer.dir/certificates.cc.o.d"
  "/root/repo/src/answer/linearize.cc" "src/answer/CMakeFiles/rpqi_answer.dir/linearize.cc.o" "gcc" "src/answer/CMakeFiles/rpqi_answer.dir/linearize.cc.o.d"
  "/root/repo/src/answer/oda.cc" "src/answer/CMakeFiles/rpqi_answer.dir/oda.cc.o" "gcc" "src/answer/CMakeFiles/rpqi_answer.dir/oda.cc.o.d"
  "/root/repo/src/answer/views.cc" "src/answer/CMakeFiles/rpqi_answer.dir/views.cc.o" "gcc" "src/answer/CMakeFiles/rpqi_answer.dir/views.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graphdb/CMakeFiles/rpqi_graphdb.dir/DependInfo.cmake"
  "/root/repo/build/src/rpq/CMakeFiles/rpqi_rpq.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/rpqi_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rpqi_base.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/rpqi_regex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
