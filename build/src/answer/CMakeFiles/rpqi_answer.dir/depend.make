# Empty dependencies file for rpqi_answer.
# This may be replaced when dependencies are built.
