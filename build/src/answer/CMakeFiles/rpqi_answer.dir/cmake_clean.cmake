file(REMOVE_RECURSE
  "CMakeFiles/rpqi_answer.dir/cda.cc.o"
  "CMakeFiles/rpqi_answer.dir/cda.cc.o.d"
  "CMakeFiles/rpqi_answer.dir/certificates.cc.o"
  "CMakeFiles/rpqi_answer.dir/certificates.cc.o.d"
  "CMakeFiles/rpqi_answer.dir/linearize.cc.o"
  "CMakeFiles/rpqi_answer.dir/linearize.cc.o.d"
  "CMakeFiles/rpqi_answer.dir/oda.cc.o"
  "CMakeFiles/rpqi_answer.dir/oda.cc.o.d"
  "CMakeFiles/rpqi_answer.dir/views.cc.o"
  "CMakeFiles/rpqi_answer.dir/views.cc.o.d"
  "librpqi_answer.a"
  "librpqi_answer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqi_answer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
