file(REMOVE_RECURSE
  "CMakeFiles/rpqi_rpq.dir/compile.cc.o"
  "CMakeFiles/rpqi_rpq.dir/compile.cc.o.d"
  "CMakeFiles/rpqi_rpq.dir/containment.cc.o"
  "CMakeFiles/rpqi_rpq.dir/containment.cc.o.d"
  "CMakeFiles/rpqi_rpq.dir/satisfaction.cc.o"
  "CMakeFiles/rpqi_rpq.dir/satisfaction.cc.o.d"
  "librpqi_rpq.a"
  "librpqi_rpq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqi_rpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
