# Empty compiler generated dependencies file for rpqi_rpq.
# This may be replaced when dependencies are built.
