file(REMOVE_RECURSE
  "librpqi_rpq.a"
)
