
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpq/compile.cc" "src/rpq/CMakeFiles/rpqi_rpq.dir/compile.cc.o" "gcc" "src/rpq/CMakeFiles/rpqi_rpq.dir/compile.cc.o.d"
  "/root/repo/src/rpq/containment.cc" "src/rpq/CMakeFiles/rpqi_rpq.dir/containment.cc.o" "gcc" "src/rpq/CMakeFiles/rpqi_rpq.dir/containment.cc.o.d"
  "/root/repo/src/rpq/satisfaction.cc" "src/rpq/CMakeFiles/rpqi_rpq.dir/satisfaction.cc.o" "gcc" "src/rpq/CMakeFiles/rpqi_rpq.dir/satisfaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/automata/CMakeFiles/rpqi_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/rpqi_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rpqi_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
