file(REMOVE_RECURSE
  "librpqi_rewrite.a"
)
