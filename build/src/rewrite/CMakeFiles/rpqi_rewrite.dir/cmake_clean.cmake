file(REMOVE_RECURSE
  "CMakeFiles/rpqi_rewrite.dir/baseline_rpq.cc.o"
  "CMakeFiles/rpqi_rewrite.dir/baseline_rpq.cc.o.d"
  "CMakeFiles/rpqi_rewrite.dir/eval.cc.o"
  "CMakeFiles/rpqi_rewrite.dir/eval.cc.o.d"
  "CMakeFiles/rpqi_rewrite.dir/exactness.cc.o"
  "CMakeFiles/rpqi_rewrite.dir/exactness.cc.o.d"
  "CMakeFiles/rpqi_rewrite.dir/expansion.cc.o"
  "CMakeFiles/rpqi_rewrite.dir/expansion.cc.o.d"
  "CMakeFiles/rpqi_rewrite.dir/rewriter.cc.o"
  "CMakeFiles/rpqi_rewrite.dir/rewriter.cc.o.d"
  "librpqi_rewrite.a"
  "librpqi_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqi_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
