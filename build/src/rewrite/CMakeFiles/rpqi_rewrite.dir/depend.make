# Empty dependencies file for rpqi_rewrite.
# This may be replaced when dependencies are built.
