
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/baseline_rpq.cc" "src/rewrite/CMakeFiles/rpqi_rewrite.dir/baseline_rpq.cc.o" "gcc" "src/rewrite/CMakeFiles/rpqi_rewrite.dir/baseline_rpq.cc.o.d"
  "/root/repo/src/rewrite/eval.cc" "src/rewrite/CMakeFiles/rpqi_rewrite.dir/eval.cc.o" "gcc" "src/rewrite/CMakeFiles/rpqi_rewrite.dir/eval.cc.o.d"
  "/root/repo/src/rewrite/exactness.cc" "src/rewrite/CMakeFiles/rpqi_rewrite.dir/exactness.cc.o" "gcc" "src/rewrite/CMakeFiles/rpqi_rewrite.dir/exactness.cc.o.d"
  "/root/repo/src/rewrite/expansion.cc" "src/rewrite/CMakeFiles/rpqi_rewrite.dir/expansion.cc.o" "gcc" "src/rewrite/CMakeFiles/rpqi_rewrite.dir/expansion.cc.o.d"
  "/root/repo/src/rewrite/rewriter.cc" "src/rewrite/CMakeFiles/rpqi_rewrite.dir/rewriter.cc.o" "gcc" "src/rewrite/CMakeFiles/rpqi_rewrite.dir/rewriter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpq/CMakeFiles/rpqi_rpq.dir/DependInfo.cmake"
  "/root/repo/build/src/graphdb/CMakeFiles/rpqi_graphdb.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/rpqi_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/rpqi_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rpqi_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
