# Empty compiler generated dependencies file for rpqi_workload.
# This may be replaced when dependencies are built.
