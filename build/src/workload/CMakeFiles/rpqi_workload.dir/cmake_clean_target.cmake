file(REMOVE_RECURSE
  "librpqi_workload.a"
)
