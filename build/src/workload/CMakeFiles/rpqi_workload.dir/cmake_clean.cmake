file(REMOVE_RECURSE
  "CMakeFiles/rpqi_workload.dir/graph_gen.cc.o"
  "CMakeFiles/rpqi_workload.dir/graph_gen.cc.o.d"
  "CMakeFiles/rpqi_workload.dir/regex_gen.cc.o"
  "CMakeFiles/rpqi_workload.dir/regex_gen.cc.o.d"
  "CMakeFiles/rpqi_workload.dir/scenario.cc.o"
  "CMakeFiles/rpqi_workload.dir/scenario.cc.o.d"
  "librpqi_workload.a"
  "librpqi_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqi_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
