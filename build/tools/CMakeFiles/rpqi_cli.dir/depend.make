# Empty dependencies file for rpqi_cli.
# This may be replaced when dependencies are built.
