file(REMOVE_RECURSE
  "CMakeFiles/rpqi_cli.dir/rpqi_cli.cc.o"
  "CMakeFiles/rpqi_cli.dir/rpqi_cli.cc.o.d"
  "rpqi"
  "rpqi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
